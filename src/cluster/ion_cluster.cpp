#include "cluster/ion_cluster.hpp"

#include <cassert>
#include <string>

namespace iofwd::cluster {

IonCluster::IonCluster(const BackendFactory& make_backend, IonClusterConfig cfg)
    : cfg_(std::move(cfg)), map_(cfg_.shards) {
  assert(make_backend && "IonCluster needs a backend factory");
  if (cfg_.cluster_bb_bytes > 0) {
    budget_ = std::make_unique<ClusterBbBudget>(
        cfg_.cluster_bb_bytes, cfg_.cluster_bb_high_watermark, cfg_.cluster_bb_low_watermark);
  }
  const int n = map_.shards();
  registries_.reserve(static_cast<std::size_t>(n));
  servers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    registries_.push_back(std::make_unique<obs::MetricRegistry>());
    rt::ServerConfig scfg = cfg_.server;
    scfg.registry = registries_.back().get();
    scfg.bb_cluster_budget = budget_.get();
    servers_.push_back(std::make_unique<rt::IonServer>(make_backend(i), scfg));
  }
}

IonCluster::~IonCluster() { stop(); }

void IonCluster::serve(int shard_idx, std::unique_ptr<rt::ByteStream> stream) {
  shard(shard_idx).serve(std::move(stream));
}

void IonCluster::serve_listener(int shard_idx, std::unique_ptr<rt::Listener> listener) {
  shard(shard_idx).serve_listener(std::move(listener));
}

void IonCluster::drain_shard(int i) { shard(i).drain(); }

void IonCluster::stop() {
  // Servers stop in shard order; each stop() drains its own burst buffer, so
  // the shared budget is fully unstaged once the loop completes.
  for (auto& s : servers_) s->stop();
}

obs::Snapshot IonCluster::metrics() const {
  obs::Snapshot out;
  for (int i = 0; i < shards(); ++i) {
    obs::merge_prefixed(out, shard(i).metrics(),
                        "cluster.shard." + std::to_string(i) + ".");
  }
  out.gauges["cluster.shards"] = shards();
  out.gauges["cluster.epoch"] = static_cast<std::int64_t>(map_.epoch());
  if (budget_) {
    out.gauges["cluster.bb.capacity"] = static_cast<std::int64_t>(budget_->capacity());
    out.gauges["cluster.bb.staged_bytes"] = static_cast<std::int64_t>(budget_->staged_bytes());
    out.gauges["cluster.bb.staged_high_watermark"] =
        static_cast<std::int64_t>(budget_->staged_high_water());
    out.counters["cluster.bb.denials"] = budget_->denials();
  }
  return out;
}

}  // namespace iofwd::cluster
