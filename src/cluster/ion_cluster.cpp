#include "cluster/ion_cluster.hpp"

#include <cassert>
#include <string>
#include <utility>

namespace iofwd::cluster {

IonCluster::IonCluster(BackendFactory make_backend, IonClusterConfig cfg)
    : cfg_(std::move(cfg)), make_backend_(std::move(make_backend)), map_(cfg_.shards) {
  assert(make_backend_ && "IonCluster needs a backend factory");
  if (cfg_.cluster_bb_bytes > 0) {
    budget_ = std::make_unique<ClusterBbBudget>(
        cfg_.cluster_bb_bytes, cfg_.cluster_bb_high_watermark, cfg_.cluster_bb_low_watermark);
  }
  const int n = map_.shards();
  registries_.reserve(static_cast<std::size_t>(n));
  servers_.reserve(static_cast<std::size_t>(n));
  states_.assign(static_cast<std::size_t>(n), HealthState::healthy);
  for (int i = 0; i < n; ++i) {
    registries_.push_back(std::make_unique<obs::MetricRegistry>());
    servers_.push_back(std::make_unique<rt::IonServer>(make_backend_(i), shard_server_config(i)));
  }
}

IonCluster::~IonCluster() { stop(); }

rt::ServerConfig IonCluster::shard_server_config(int i) {
  rt::ServerConfig scfg = cfg_.server;
  scfg.registry = registries_.at(static_cast<std::size_t>(i)).get();
  scfg.bb_cluster_budget = budget_.get();
  if (!cfg_.server.bb_journal_dir.empty()) {
    // Per-shard crash images: shard i journals under <root>/shard<i>, so a
    // restart replays exactly its own acked extents and never a sibling's.
    scfg.bb_journal_dir = cfg_.server.bb_journal_dir + "/shard" + std::to_string(i);
  }
  return scfg;
}

void IonCluster::serve(int shard_idx, std::unique_ptr<rt::ByteStream> stream) {
  shard(shard_idx).serve(std::move(stream));
}

void IonCluster::serve_listener(int shard_idx, std::unique_ptr<rt::Listener> listener) {
  shard(shard_idx).serve_listener(std::move(listener));
}

void IonCluster::drain_shard(int i) { shard(i).drain(); }

void IonCluster::kill_shard(int i) {
  // Crash semantics: connections drop and staged state evaporates without a
  // drain; the journal directory on disk is the only survivor. The global
  // budget is released inside crash_discard(), so siblings regain headroom
  // immediately.
  shard(i).crash_stop();
  std::scoped_lock lk(health_mu_);
  states_.at(static_cast<std::size_t>(i)) = HealthState::down;
  ++kills_;
}

void IonCluster::restart_shard(int i) {
  const auto k = static_cast<std::size_t>(i);
  // Destroy the old server BEFORE replacing its registry: the server (and
  // its burst buffer) hold Counter/Gauge references into the registry, so
  // the registry must outlive it.
  servers_.at(k).reset();
  registries_.at(k) = std::make_unique<obs::MetricRegistry>();
  // The fresh server's burst buffer replays the shard's journal during
  // construction — every extent acked before the crash is re-staged (or
  // written through) before the shard can see traffic.
  servers_.at(k) = std::make_unique<rt::IonServer>(make_backend_(i), shard_server_config(i));
  // Routers comparing epochs see the generation move even though the
  // key->shard function is unchanged.
  map_.bump_epoch();
  std::scoped_lock lk(health_mu_);
  states_.at(k) = HealthState::healthy;
  ++restarts_;
}

HealthState IonCluster::shard_state(int i) const {
  std::scoped_lock lk(health_mu_);
  return states_.at(static_cast<std::size_t>(i));
}

void IonCluster::stop() {
  // Servers stop in shard order; each stop() drains its own burst buffer, so
  // the shared budget is fully unstaged once the loop completes. A crashed
  // shard's stop() is a no-op (stopping_ already set).
  for (auto& s : servers_) s->stop();
}

obs::Snapshot IonCluster::metrics() const {
  obs::Snapshot out;
  for (int i = 0; i < shards(); ++i) {
    obs::merge_prefixed(out, shard(i).metrics(),
                        "cluster.shard." + std::to_string(i) + ".");
  }
  out.gauges["cluster.shards"] = shards();
  out.gauges["cluster.epoch"] = static_cast<std::int64_t>(map_.epoch());
  if (budget_) {
    out.gauges["cluster.bb.capacity"] = static_cast<std::int64_t>(budget_->capacity());
    out.gauges["cluster.bb.staged_bytes"] = static_cast<std::int64_t>(budget_->staged_bytes());
    out.gauges["cluster.bb.staged_high_watermark"] =
        static_cast<std::int64_t>(budget_->staged_high_water());
    out.counters["cluster.bb.denials"] = budget_->denials();
    out.counters["cluster.bb.over_releases"] = budget_->over_releases();
  }
  {
    std::scoped_lock lk(health_mu_);
    for (int i = 0; i < shards(); ++i) {
      out.gauges["cluster.health.shard." + std::to_string(i)] =
          static_cast<std::int64_t>(states_.at(static_cast<std::size_t>(i)));
    }
    out.counters["cluster.health.kills"] = kills_;
    out.counters["cluster.health.restarts"] = restarts_;
  }
  return out;
}

}  // namespace iofwd::cluster
