#include "cluster/shard_map.hpp"

namespace iofwd::cluster {

namespace {

// splitmix64 finalizer: a full-avalanche 64-bit mix. Fixed constants keep
// shard_of() identical across builds and platforms, which the routing
// protocol depends on (client and server compute the map independently).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ShardMap::ShardMap(int shards, std::uint32_t epoch)
    : shards_(shards < 1 ? 1 : shards), epoch_(epoch) {}

std::uint64_t ShardMap::weight(std::uint64_t key, int shard) {
  // Two mix rounds decorrelate (key, shard) pairs; one round leaves enough
  // linear structure that adjacent shards track each other on small keys.
  return mix64(mix64(key) ^ (0xA0B1C2D3E4F50617ull + static_cast<std::uint64_t>(shard)));
}

int ShardMap::shard_of(std::uint64_t key) const {
  int best = 0;
  std::uint64_t best_w = weight(key, 0);
  for (int i = 1; i < shards_; ++i) {
    const std::uint64_t w = weight(key, i);
    if (w > best_w) {
      best_w = w;
      best = i;
    }
  }
  return best;
}

}  // namespace iofwd::cluster
