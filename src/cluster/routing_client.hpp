// RoutingClient: one ForwardingClient surface over N ION shards.
//
// Wraps one rt::Client per shard and routes every forwarded call by the
// ShardMap (descriptor id -> shard), so an application programs against the
// same open/write/read/fsync/close surface whether one ION or a fleet
// stands behind it. Everything resilience-related is reused per shard, not
// reinvented: each inner Client keeps its own redial factory, reconnect
// budget, watchdog, and replay log, so a dead shard connection
// reconnects-and-replays exactly that shard's in-flight ops while the other
// shards' traffic never notices (DESIGN.md §10, §14).
//
// Failover routing (DESIGN.md §16): every forwarded op passes through a
// per-shard ShardHealth breaker before touching the wire. A shard whose
// connection-shaped failures exceed the threshold is marked down; ops routed
// at it fail fast with not_connected instead of each burning a full
// reconnect-with-backoff budget. After probe_after_ms one caller is elected
// to ping the shard first — rt::Client::ping() re-dials and replays opens,
// so a successful probe readmits the shard in one step. Siblings' traffic is
// untouched throughout: health is tracked per shard.
//
// Stats attribution: every inner Client runs against its own private
// registry, so shard_client(k).stats() shows only shard k's
// reconnects/replays/CRC detections — and its breaker's
// client.breaker.{opens,fast_fails,probes,closes} live there too; stats()
// sums the fleet.
//
// Thread safety: same contract as rt::Client — calls are serialized per
// shard by the inner clients; calls routed to different shards proceed
// concurrently. For full concurrency, open one RoutingClient per
// application thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/health.hpp"
#include "cluster/shard_map.hpp"
#include "rt/client.hpp"
#include "rt/transport.hpp"

namespace iofwd::cluster {

class RoutingClient final : public rt::ForwardingClient {
 public:
  // One connected stream (and optional redial factory) per shard, in shard
  // order; the ShardMap covers links.size() shards at epoch 0.
  struct ShardLink {
    std::unique_ptr<rt::ByteStream> stream;
    rt::StreamFactory factory;  // null = this shard never reconnects
  };

  // `cfg` applies to every inner client, except `registry`, which is forced
  // to null so each shard keeps its own (see header comment). `health`
  // parameterizes the per-shard breakers; the breaker is always on — its
  // defaults only bite after an inner client has already exhausted a full
  // reconnect budget, so a healthy fleet never sees it.
  RoutingClient(std::vector<ShardLink> links, rt::ClientConfig cfg = {},
                HealthConfig health = {});

  Status open(int fd, const std::string& path) override;
  Status write(int fd, std::uint64_t offset, std::span<const std::byte> data) override;
  Result<std::vector<std::byte>> read(int fd, std::uint64_t offset,
                                      std::uint64_t len) override;
  Status fsync(int fd) override;
  Result<std::uint64_t> fstat_size(int fd) override;
  Status close(int fd) override;

  // Polite disconnect on every shard; returns the first failure (but always
  // visits every shard). Not breaker-gated: shutdown is a teardown courtesy,
  // and its failure on a dead shard must not poison the health view.
  Status shutdown() override;

  [[nodiscard]] bool last_write_was_staged() const override;

  // Fleet-wide sums of the per-shard counters (breaker fields included).
  [[nodiscard]] rt::ClientStats stats() const override;

  [[nodiscard]] int shards() const { return static_cast<int>(clients_.size()); }
  [[nodiscard]] const ShardMap& shard_map() const { return map_; }
  [[nodiscard]] int shard_of(int fd) const {
    return map_.shard_of(static_cast<std::uint64_t>(static_cast<std::uint32_t>(fd)));
  }
  [[nodiscard]] rt::Client& shard_client(int i) {
    return *clients_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] const rt::Client& shard_client(int i) const {
    return *clients_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] ShardHealth& shard_health(int i) {
    return *health_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] const ShardHealth& shard_health(int i) const {
    return *health_.at(static_cast<std::size_t>(i));
  }

 private:
  [[nodiscard]] rt::Client& route(int fd) { return shard_client(shard_of(fd)); }
  // Breaker gate for shard k: ok() to proceed (running the half-open ping
  // inline when elected), or the fast-fail status.
  Status admit(int shard);
  // Feed an op's outcome back into shard k's breaker. Only connection-shaped
  // errors count as failures; everything else (including honest backend
  // errors) proves the shard alive.
  void note(int shard, const Status& st);

  ShardMap map_;
  std::vector<std::unique_ptr<rt::Client>> clients_;
  std::vector<std::unique_ptr<ShardHealth>> health_;
  std::atomic<int> last_write_shard_{-1};
};

}  // namespace iofwd::cluster
