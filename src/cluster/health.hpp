// Per-shard health state machine + circuit breaker (DESIGN.md §16).
//
// The SLAC survey's lesson (PAPERS.md, 1109.0742): failure detection in a
// parallel-I/O fleet must be first-class, not emergent from TCP timeouts.
// Without it, every op routed at a dead shard burns a full
// reconnect-with-backoff budget before failing — a fleet-wide stall radiating
// from one crash. ShardHealth gives RoutingClient the classic breaker:
//
//   healthy --failure--> suspect --more failures--> down (breaker OPEN)
//      ^                                              |
//      |                                    probe_after_ms elapsed
//      +-- probe ok (breaker CLOSES) -- probing <-----+
//                                          |
//                             probe fails: back to down
//
// While down, admit() fails fast (no wire traffic, no backoff stall); after
// probe_after_ms one caller is elected to send a half-open ping probe —
// rt::Client::ping() re-dials through its StreamFactory, so a successful
// probe IS the readmission: connection re-established, opens replayed,
// breaker closed. Only connection-shaped failures (not_connected, shutdown,
// timed_out) feed the machine; a backend io_error is a healthy shard
// reporting honest bad news.
//
// Counted in the owning shard client's registry: client.breaker.opens /
// fast_fails / probes / closes.
//
// Header-only, like bb_budget.hpp: small enough, and it keeps the
// cluster <-> rt library graph acyclic.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

#include "core/status.hpp"
#include "obs/metrics.hpp"

namespace iofwd::cluster {

enum class HealthState : std::uint8_t { healthy = 0, suspect = 1, down = 2, probing = 3 };

inline const char* health_state_name(HealthState s) {
  switch (s) {
    case HealthState::healthy: return "healthy";
    case HealthState::suspect: return "suspect";
    case HealthState::down: return "down";
    case HealthState::probing: return "probing";
  }
  return "?";
}

struct HealthConfig {
  // Consecutive connection-shaped failures before healthy -> suspect. The
  // suspect state is advisory (ops still flow); it exists so dashboards see
  // a shard wobbling before the breaker opens.
  int suspect_after = 1;
  // Consecutive failures before the breaker opens (-> down). Each counted
  // failure already exhausted the inner client's reconnect budget, so this
  // is not trigger-happy at its default.
  int down_after = 3;
  // Open time before a half-open probe is allowed. Short by design: a probe
  // is one ping, and an early probe against a still-dead shard just reopens
  // the breaker.
  std::uint32_t probe_after_ms = 50;
};

// One shard's breaker. Thread-safe; shared by every op RoutingClient routes
// at that shard.
class ShardHealth {
 public:
  enum class Admit : std::uint8_t {
    yes,        // proceed with the op
    probe,      // breaker half-open: this caller was elected to ping first
    fast_fail,  // breaker open: bounce without touching the wire
  };

  ShardHealth(HealthConfig cfg, obs::MetricRegistry& reg)
      : cfg_(cfg),
        c_opens_(reg.counter("client.breaker.opens")),
        c_fast_fails_(reg.counter("client.breaker.fast_fails")),
        c_probes_(reg.counter("client.breaker.probes")),
        c_closes_(reg.counter("client.breaker.closes")) {
    if (cfg_.suspect_after < 1) cfg_.suspect_after = 1;
    if (cfg_.down_after < cfg_.suspect_after) cfg_.down_after = cfg_.suspect_after;
  }

  Admit admit() {
    std::scoped_lock lk(mu_);
    switch (state_) {
      case HealthState::healthy:
      case HealthState::suspect:
        return Admit::yes;
      case HealthState::probing:
        // Someone else holds the half-open slot; fail fast rather than pile
        // a thundering herd onto a maybe-recovering shard.
        c_fast_fails_.inc();
        return Admit::fast_fail;
      case HealthState::down:
        break;
    }
    if (std::chrono::steady_clock::now() - opened_at_ >=
        std::chrono::milliseconds(cfg_.probe_after_ms)) {
      state_ = HealthState::probing;
      c_probes_.inc();
      return Admit::probe;
    }
    c_fast_fails_.inc();
    return Admit::fast_fail;
  }

  void on_success() {
    std::scoped_lock lk(mu_);
    if (state_ == HealthState::down || state_ == HealthState::probing) c_closes_.inc();
    state_ = HealthState::healthy;
    fails_ = 0;
  }

  void on_failure() {
    std::scoped_lock lk(mu_);
    ++fails_;
    if (state_ == HealthState::probing) {
      // The half-open probe failed: straight back to open, fresh timer.
      state_ = HealthState::down;
      opened_at_ = std::chrono::steady_clock::now();
      return;
    }
    if (state_ != HealthState::down && fails_ >= cfg_.down_after) {
      state_ = HealthState::down;
      opened_at_ = std::chrono::steady_clock::now();
      c_opens_.inc();
    } else if (state_ == HealthState::healthy && fails_ >= cfg_.suspect_after) {
      state_ = HealthState::suspect;
    }
  }

  // True for the error shapes that mean "the shard (or the path to it) is
  // gone", as opposed to a live shard returning an honest error.
  [[nodiscard]] static bool connection_shaped(Errc e) {
    return e == Errc::not_connected || e == Errc::shutdown || e == Errc::timed_out;
  }

  [[nodiscard]] HealthState state() const {
    std::scoped_lock lk(mu_);
    return state_;
  }
  [[nodiscard]] int consecutive_failures() const {
    std::scoped_lock lk(mu_);
    return fails_;
  }
  [[nodiscard]] const HealthConfig& config() const { return cfg_; }

 private:
  HealthConfig cfg_;
  mutable std::mutex mu_;
  HealthState state_ = HealthState::healthy;
  int fails_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
  obs::Counter& c_opens_;
  obs::Counter& c_fast_fails_;
  obs::Counter& c_probes_;
  obs::Counter& c_closes_;
};

}  // namespace iofwd::cluster
