// ShardMap: descriptor-space partitioning for a multi-ION cluster.
//
// Rendezvous (highest-random-weight) hashing assigns every descriptor id to
// exactly one ION shard: shard_of(key) = argmax_i weight(key, i). The weight
// function depends only on (key, shard index), so growing or shrinking the
// fleet moves the theoretical minimum of keys — on a resize N -> N+1 only
// the keys whose new shard wins the argmax move (expected 1/(N+1) of the
// space), and every key that stays mapped stays on the same shard. That is
// the property that lets a resize proceed as per-shard drains instead of a
// whole-cluster flush.
//
// The map carries an explicit epoch: a monotonically increasing generation
// stamp bumped by resized(). Client and cluster compare epochs to detect a
// stale routing view deterministically (same epoch => byte-identical
// routing), which keeps replay after a resize well-defined instead of
// heuristic.
//
// Pure and unit-testable: no I/O, no clocks, no globals. The sim side
// (tests/cluster/sim_topology_test.cpp) uses the same map to lay CNs out
// across simulated IONs, so the runtime cluster and the deterministic model
// agree on the partitioning by construction.
#pragma once

#include <atomic>
#include <cstdint>

namespace iofwd::cluster {

class ShardMap {
 public:
  // A map over `shards` shards (clamped to >= 1) at generation `epoch`.
  explicit ShardMap(int shards, std::uint32_t epoch = 0);

  // The epoch is atomic so bump_epoch() may race lookups (failover bumps
  // generations far more often than resize did); copies snapshot it.
  ShardMap(const ShardMap& o) : shards_(o.shards_), epoch_(o.epoch_.load()) {}
  ShardMap& operator=(const ShardMap& o) {
    shards_ = o.shards_;
    epoch_.store(o.epoch_.load());
    return *this;
  }

  // The shard owning `key` (a descriptor id widened to u64). Deterministic
  // across processes and platforms: the weight is a fixed 64-bit mix.
  [[nodiscard]] int shard_of(std::uint64_t key) const;

  [[nodiscard]] int shards() const { return shards_; }
  [[nodiscard]] std::uint32_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Advance the generation in place without changing the shard count — a
  // shard was killed/restarted, so routers must notice their view moved even
  // though the key->shard function is unchanged. Safe to race shard_of().
  void bump_epoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  // The same key space over a different shard count, one generation later.
  // Minimal-movement: keys keep their shard unless the argmax changes.
  [[nodiscard]] ShardMap resized(int new_shards) const {
    return ShardMap(new_shards, epoch() + 1);
  }

  // The HRW weight of `key` on `shard` — exposed so tests (and the sim-side
  // topology validation) can cross-check the argmax independently.
  [[nodiscard]] static std::uint64_t weight(std::uint64_t key, int shard);

 private:
  int shards_;
  std::atomic<std::uint32_t> epoch_;
};

}  // namespace iofwd::cluster
