// IonCluster: a fleet of IonServer shards managed as one unit.
//
// The paper scales one ION serving a pset of compute nodes; production scale
// (ROADMAP open item 2) means many IONs with the descriptor space
// partitioned across them. IonCluster owns N shards — each a full IonServer
// with its own backend, burst buffer, worker pool, and epoll receiver lanes
// — plus the two pieces of genuinely shared state:
//
//   * the ShardMap every router agrees on (descriptor id -> shard), and
//   * the ClusterBbBudget, so aggregate staged bytes across every shard's
//     burst buffer respect one global watermark (DESIGN.md §14).
//
// Observability: each shard runs against a cluster-owned private registry
// (metric names like "server.ops" are fixed, so shards cannot share one),
// and metrics() merges the per-shard snapshots under
// "cluster.shard.<i>.*" plus cluster-level "cluster.*" values.
//
// Lifecycle: shards start at construction, stop() quiesces the whole fleet;
// drain_shard(i) quiesces exactly one shard (queue + burst buffer) while its
// siblings keep serving — the building block for rolling maintenance.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/bb_budget.hpp"
#include "cluster/shard_map.hpp"
#include "obs/metrics.hpp"
#include "rt/server.hpp"
#include "rt/transport.hpp"

namespace iofwd::cluster {

struct IonClusterConfig {
  int shards = 1;  // clamped to >= 1
  // Template applied to every shard. Per-shard fields the cluster overrides:
  // `registry` (cluster-owned private registry per shard) and
  // `bb_cluster_budget` (pointed at the shared budget when enabled).
  rt::ServerConfig server;
  // Global staging budget across every shard's burst buffer. 0 disables the
  // budget (shards enforce only their local watermarks).
  std::uint64_t cluster_bb_bytes = 0;
  double cluster_bb_high_watermark = 0.75;
  double cluster_bb_low_watermark = 0.50;
};

class IonCluster {
 public:
  // Builds the backend for shard i (called once per shard, in order).
  using BackendFactory = std::function<std::unique_ptr<rt::IoBackend>(int shard)>;

  IonCluster(const BackendFactory& make_backend, IonClusterConfig cfg);
  ~IonCluster();  // stop()
  IonCluster(const IonCluster&) = delete;
  IonCluster& operator=(const IonCluster&) = delete;

  [[nodiscard]] int shards() const { return static_cast<int>(servers_.size()); }
  [[nodiscard]] const ShardMap& shard_map() const { return map_; }
  [[nodiscard]] rt::IonServer& shard(int i) { return *servers_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const rt::IonServer& shard(int i) const {
    return *servers_.at(static_cast<std::size_t>(i));
  }
  // The shared staging accountant, or nullptr when cluster_bb_bytes == 0.
  [[nodiscard]] ClusterBbBudget* budget() { return budget_.get(); }

  // Hand a connected stream / listener to one shard.
  void serve(int shard_idx, std::unique_ptr<rt::ByteStream> stream);
  void serve_listener(int shard_idx, std::unique_ptr<rt::Listener> listener);

  // Quiesce shard i — its task queue drains and its burst buffer flushes —
  // while every other shard keeps serving. Connections to shard i stay open.
  void drain_shard(int i);

  // Stop the whole fleet (drain + join every shard). Idempotent.
  void stop();

  // Merged point-in-time view: every shard's registry under
  // "cluster.shard.<i>.*" plus cluster-level gauges/counters —
  //   cluster.shards, cluster.epoch,
  //   cluster.bb.capacity, cluster.bb.staged_bytes,
  //   cluster.bb.staged_high_watermark, cluster.bb.denials.
  [[nodiscard]] obs::Snapshot metrics() const;

 private:
  IonClusterConfig cfg_;
  ShardMap map_;
  std::unique_ptr<ClusterBbBudget> budget_;
  std::vector<std::unique_ptr<obs::MetricRegistry>> registries_;
  std::vector<std::unique_ptr<rt::IonServer>> servers_;
};

}  // namespace iofwd::cluster
