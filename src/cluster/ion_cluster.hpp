// IonCluster: a fleet of IonServer shards managed as one unit.
//
// The paper scales one ION serving a pset of compute nodes; production scale
// (ROADMAP open item 2) means many IONs with the descriptor space
// partitioned across them. IonCluster owns N shards — each a full IonServer
// with its own backend, burst buffer, worker pool, and epoll receiver lanes
// — plus the two pieces of genuinely shared state:
//
//   * the ShardMap every router agrees on (descriptor id -> shard), and
//   * the ClusterBbBudget, so aggregate staged bytes across every shard's
//     burst buffer respect one global watermark (DESIGN.md §14).
//
// Crash survival (DESIGN.md §16): kill_shard(i) hard-stops one shard the way
// a SIGKILL would — in-memory staged state is discarded, connections drop,
// nothing is drained — while its journal directory survives as the crash
// image. restart_shard(i) rebuilds that shard from scratch; the fresh
// IonServer's burst buffer replays the journal before accepting traffic, so
// every write acked before the kill is readable after the restart. Each
// shard's journal lives in its own subdirectory of the configured root
// (bb_journal_dir/shard<i>), so crash images never cross shards.
//
// Observability: each shard runs against a cluster-owned private registry
// (metric names like "server.ops" are fixed, so shards cannot share one),
// and metrics() merges the per-shard snapshots under
// "cluster.shard.<i>.*" plus cluster-level "cluster.*" values.
//
// Lifecycle: shards start at construction, stop() quiesces the whole fleet;
// drain_shard(i) quiesces exactly one shard (queue + burst buffer) while its
// siblings keep serving — the building block for rolling maintenance.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/bb_budget.hpp"
#include "cluster/health.hpp"
#include "cluster/shard_map.hpp"
#include "obs/metrics.hpp"
#include "rt/server.hpp"
#include "rt/transport.hpp"

namespace iofwd::cluster {

struct IonClusterConfig {
  int shards = 1;  // clamped to >= 1
  // Template applied to every shard. Per-shard fields the cluster overrides:
  // `registry` (cluster-owned private registry per shard),
  // `bb_cluster_budget` (pointed at the shared budget when enabled), and
  // `bb_journal_dir` (suffixed with "/shard<i>" so crash images stay
  // per-shard).
  rt::ServerConfig server;
  // Global staging budget across every shard's burst buffer. 0 disables the
  // budget (shards enforce only their local watermarks).
  std::uint64_t cluster_bb_bytes = 0;
  double cluster_bb_high_watermark = 0.75;
  double cluster_bb_low_watermark = 0.50;
};

class IonCluster {
 public:
  // Builds the backend for shard i. Called once per shard at construction,
  // in order — and again by restart_shard(i), so a factory that wants
  // crash-survivable *backend* state (e.g. tests' path-keyed MemBackend)
  // must return a view over storage it keeps outside the server.
  using BackendFactory = std::function<std::unique_ptr<rt::IoBackend>(int shard)>;

  IonCluster(BackendFactory make_backend, IonClusterConfig cfg);
  ~IonCluster();  // stop()
  IonCluster(const IonCluster&) = delete;
  IonCluster& operator=(const IonCluster&) = delete;

  [[nodiscard]] int shards() const { return static_cast<int>(servers_.size()); }
  [[nodiscard]] const ShardMap& shard_map() const { return map_; }
  [[nodiscard]] rt::IonServer& shard(int i) { return *servers_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const rt::IonServer& shard(int i) const {
    return *servers_.at(static_cast<std::size_t>(i));
  }
  // The shared staging accountant, or nullptr when cluster_bb_bytes == 0.
  [[nodiscard]] ClusterBbBudget* budget() { return budget_.get(); }

  // Hand a connected stream / listener to one shard.
  void serve(int shard_idx, std::unique_ptr<rt::ByteStream> stream);
  void serve_listener(int shard_idx, std::unique_ptr<rt::Listener> listener);

  // Quiesce shard i — its task queue drains and its burst buffer flushes —
  // while every other shard keeps serving. Connections to shard i stay open.
  void drain_shard(int i);

  // Crash shard i: connections drop, staged state is discarded, the global
  // budget is released, the journal directory is left as the crash image.
  // The shard stays down (ops routed at it fail) until restart_shard(i).
  void kill_shard(int i);

  // Rebuild shard i from its backend factory and journal: the old server is
  // destroyed, a fresh one constructed in its place (its burst buffer
  // replays the journal during construction), the map epoch is bumped so
  // routers notice the generation change. Safe after kill_shard(i) or on a
  // cleanly stopped shard.
  void restart_shard(int i);

  // The cluster's view of shard i's health (driven by kill/restart, not by
  // traffic — RoutingClient's breakers track the client side independently).
  [[nodiscard]] HealthState shard_state(int i) const;

  // Stop the whole fleet (drain + join every shard). Idempotent.
  void stop();

  // Merged point-in-time view: every shard's registry under
  // "cluster.shard.<i>.*" plus cluster-level gauges/counters —
  //   cluster.shards, cluster.epoch,
  //   cluster.bb.capacity, cluster.bb.staged_bytes,
  //   cluster.bb.staged_high_watermark, cluster.bb.denials,
  //   cluster.health.shard.<i> (HealthState as integer),
  //   cluster.health.kills, cluster.health.restarts.
  [[nodiscard]] obs::Snapshot metrics() const;

 private:
  // The per-shard ServerConfig: template + registry + shared budget + the
  // shard's private journal subdirectory.
  [[nodiscard]] rt::ServerConfig shard_server_config(int i);

  IonClusterConfig cfg_;
  BackendFactory make_backend_;  // kept for restart_shard()
  ShardMap map_;
  std::unique_ptr<ClusterBbBudget> budget_;
  std::vector<std::unique_ptr<obs::MetricRegistry>> registries_;
  std::vector<std::unique_ptr<rt::IonServer>> servers_;

  mutable std::mutex health_mu_;
  std::vector<HealthState> states_;  // per shard; healthy | down only
  std::uint64_t kills_ = 0;
  std::uint64_t restarts_ = 0;
};

}  // namespace iofwd::cluster
