// ClusterBbBudget: cluster-wide burst-buffer capacity accounting.
//
// Each shard's BurstBufferBackend admits a write only after reserving the
// bytes here (try_stage), and releases them whenever an extent leaves its
// cache (unstage) — flush, eviction, write-through consolidation, or close.
// The aggregate staged byte count therefore never exceeds the global
// capacity, no matter how skewed the per-shard load is. This is the shared
// burst-buffer contention model of Kopanski & Rzadca made concrete: local
// per-shard watermarks still drive each shard's flusher hysteresis, but the
// *cluster* watermarks are ORed in, so a hot shard's pressure wakes the
// whole fleet's flushers via the pressure-poke subscription.
//
// Header-only on purpose: iofwd_bb consults the budget through a pointer in
// its config, and a header keeps the static-library graph acyclic
// (iofwd_cluster links iofwd_rt links iofwd_bb; a .cpp here would make
// iofwd_bb link iofwd_cluster right back).
//
// Thread-safety: stage/unstage are lock-free atomics on the hot path; the
// subscriber list takes a small mutex only on subscribe/unsubscribe and on
// the (rare) high-watermark crossing that fires the pokes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

namespace iofwd::cluster {

class ClusterBbBudget {
 public:
  // `capacity` bytes shared by every shard; high/low are fractions of it
  // (same convention as the per-shard BurstBufferConfig watermarks).
  explicit ClusterBbBudget(std::uint64_t capacity, double high_watermark = 0.75,
                           double low_watermark = 0.5)
      : capacity_(capacity),
        high_bytes_(static_cast<std::uint64_t>(static_cast<double>(capacity) * high_watermark)),
        low_bytes_(static_cast<std::uint64_t>(static_cast<double>(capacity) * low_watermark)) {}

  ClusterBbBudget(const ClusterBbBudget&) = delete;
  ClusterBbBudget& operator=(const ClusterBbBudget&) = delete;

  // Reserve `n` bytes of cluster capacity. Fails (and counts a denial)
  // when the reservation would push aggregate staged bytes past capacity.
  [[nodiscard]] bool try_stage(std::uint64_t n) {
    std::uint64_t cur = staged_.load(std::memory_order_relaxed);
    for (;;) {
      if (cur + n > capacity_) {
        denials_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (staged_.compare_exchange_weak(cur, cur + n, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        break;
      }
    }
    const std::uint64_t now = cur + n;
    // Track the high-water mark of aggregate staging (monotone; raced CAS
    // losers just retry with a larger candidate).
    std::uint64_t hw = staged_high_water_.load(std::memory_order_relaxed);
    while (now > hw &&
           !staged_high_water_.compare_exchange_weak(hw, now, std::memory_order_relaxed)) {
    }
    // Crossing the global high watermark turns every shard's flusher on.
    if (cur < high_bytes_ && now >= high_bytes_) poke_all();
    return true;
  }

  // Release `n` previously staged bytes. Clamped against the current
  // reservation: a release racing a crash-discard's bulk release (or any
  // accounting bug upstream) must not wrap the counter to ~2^64, which would
  // silently disable admission control fleet-wide. Excess bytes are dropped
  // and counted in over_releases() instead.
  void unstage(std::uint64_t n) {
    std::uint64_t cur = staged_.load(std::memory_order_relaxed);
    std::uint64_t take;
    do {
      take = cur < n ? cur : n;
    } while (!staged_.compare_exchange_weak(cur, cur - take, std::memory_order_acq_rel,
                                            std::memory_order_relaxed));
    if (take < n) over_releases_.fetch_add(1, std::memory_order_relaxed);
    if (take == 0) return;
    const std::uint64_t prev = cur;
    // Dropping below low turns the hysteresis back off; waking waiters once
    // more lets stalled writers past the (now clear) global gate.
    if (prev >= low_bytes_ && prev - take < low_bytes_) poke_all();
  }

  // Hysteresis terms a shard ORs into its own over_high()/over_low():
  // the fleet flushes while the *aggregate* is hot, even on cold shards.
  [[nodiscard]] bool over_high() const {
    return staged_.load(std::memory_order_acquire) >= high_bytes_;
  }
  [[nodiscard]] bool over_low() const {
    return staged_.load(std::memory_order_acquire) >= low_bytes_;
  }

  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t staged_bytes() const {
    return staged_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t staged_high_water() const {
    return staged_high_water_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t denials() const {
    return denials_.load(std::memory_order_relaxed);
  }
  // Releases (partially) dropped by the clamp above — nonzero means some
  // caller double-released or released after a crash-discard already
  // returned its bytes.
  [[nodiscard]] std::uint64_t over_releases() const {
    return over_releases_.load(std::memory_order_relaxed);
  }

  // Register a pressure poke (a shard's "notify my flushers" hook).
  // Returns a token for unsubscribe(); shards unsubscribe before teardown.
  std::uint64_t subscribe(std::function<void()> poke) {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint64_t token = next_token_++;
    subs_.emplace_back(token, std::move(poke));
    return token;
  }

  void unsubscribe(std::uint64_t token) {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = subs_.begin(); it != subs_.end(); ++it) {
      if (it->first == token) {
        subs_.erase(it);
        return;
      }
    }
  }

 private:
  void poke_all() {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [token, poke] : subs_) poke();
  }

  const std::uint64_t capacity_;
  const std::uint64_t high_bytes_;
  const std::uint64_t low_bytes_;
  std::atomic<std::uint64_t> staged_{0};
  std::atomic<std::uint64_t> staged_high_water_{0};
  std::atomic<std::uint64_t> denials_{0};
  std::atomic<std::uint64_t> over_releases_{0};

  std::mutex mu_;
  std::uint64_t next_token_ = 1;
  std::vector<std::pair<std::uint64_t, std::function<void()>>> subs_;
};

}  // namespace iofwd::cluster
