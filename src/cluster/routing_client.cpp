#include "cluster/routing_client.hpp"

#include <cassert>

namespace iofwd::cluster {

RoutingClient::RoutingClient(std::vector<ShardLink> links, rt::ClientConfig cfg)
    : map_(static_cast<int>(links.size())) {
  assert(!links.empty() && "RoutingClient needs at least one shard link");
  cfg.registry = nullptr;  // per-shard private registries (stats attribution)
  clients_.reserve(links.size());
  for (auto& link : links) {
    clients_.push_back(
        std::make_unique<rt::Client>(std::move(link.stream), cfg, std::move(link.factory)));
  }
}

Status RoutingClient::open(int fd, const std::string& path) { return route(fd).open(fd, path); }

Status RoutingClient::write(int fd, std::uint64_t offset, std::span<const std::byte> data) {
  const int shard = shard_of(fd);
  Status st = shard_client(shard).write(fd, offset, data);
  last_write_shard_.store(shard, std::memory_order_relaxed);
  return st;
}

Result<std::vector<std::byte>> RoutingClient::read(int fd, std::uint64_t offset,
                                                   std::uint64_t len) {
  return route(fd).read(fd, offset, len);
}

Status RoutingClient::fsync(int fd) { return route(fd).fsync(fd); }

Result<std::uint64_t> RoutingClient::fstat_size(int fd) { return route(fd).fstat_size(fd); }

Status RoutingClient::close(int fd) { return route(fd).close(fd); }

Status RoutingClient::shutdown() {
  Status first = Status::ok();
  for (auto& c : clients_) {
    if (Status st = c->shutdown(); !st.is_ok() && first.is_ok()) first = st;
  }
  return first;
}

bool RoutingClient::last_write_was_staged() const {
  const int shard = last_write_shard_.load(std::memory_order_relaxed);
  return shard >= 0 && shard_client(shard).last_write_was_staged();
}

rt::ClientStats RoutingClient::stats() const {
  rt::ClientStats sum;
  for (const auto& c : clients_) {
    const rt::ClientStats s = c->stats();
    sum.reconnects += s.reconnects;
    sum.replays += s.replays;
    sum.timeouts += s.timeouts;
    sum.giveups += s.giveups;
    sum.header_crc_errors += s.header_crc_errors;
    sum.payload_crc_errors += s.payload_crc_errors;
    sum.request_bounces += s.request_bounces;
  }
  return sum;
}

}  // namespace iofwd::cluster
