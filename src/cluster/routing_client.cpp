#include "cluster/routing_client.hpp"

#include <cassert>
#include <utility>

namespace iofwd::cluster {

RoutingClient::RoutingClient(std::vector<ShardLink> links, rt::ClientConfig cfg,
                             HealthConfig health)
    : map_(static_cast<int>(links.size())) {
  assert(!links.empty() && "RoutingClient needs at least one shard link");
  cfg.registry = nullptr;  // per-shard private registries (stats attribution)
  clients_.reserve(links.size());
  health_.reserve(links.size());
  for (auto& link : links) {
    clients_.push_back(
        std::make_unique<rt::Client>(std::move(link.stream), cfg, std::move(link.factory)));
    // The breaker's counters live in this shard client's private registry,
    // so per-shard metric snapshots attribute them correctly.
    health_.push_back(std::make_unique<ShardHealth>(health, clients_.back()->registry()));
  }
}

Status RoutingClient::admit(int shard) {
  switch (shard_health(shard).admit()) {
    case ShardHealth::Admit::yes:
      return Status::ok();
    case ShardHealth::Admit::fast_fail:
      return {Errc::not_connected,
              "shard " + std::to_string(shard) + " circuit open (failing fast)"};
    case ShardHealth::Admit::probe:
      break;
  }
  // Half-open: this caller was elected to probe. ping() runs through the
  // inner client's reconnect machinery, so success means the connection was
  // re-dialed and every tracked open was replayed — the shard is readmitted
  // in full, and the op that triggered the probe proceeds normally.
  Status st = shard_client(shard).ping();
  note(shard, st);
  if (!st.is_ok()) {
    return {Errc::not_connected,
            "shard " + std::to_string(shard) + " probe failed: " + st.message()};
  }
  return Status::ok();
}

void RoutingClient::note(int shard, const Status& st) {
  if (st.is_ok() || !ShardHealth::connection_shaped(st.code())) {
    shard_health(shard).on_success();
  } else {
    shard_health(shard).on_failure();
  }
}

Status RoutingClient::open(int fd, const std::string& path) {
  const int shard = shard_of(fd);
  if (Status gate = admit(shard); !gate.is_ok()) return gate;
  Status st = shard_client(shard).open(fd, path);
  note(shard, st);
  return st;
}

Status RoutingClient::write(int fd, std::uint64_t offset, std::span<const std::byte> data) {
  const int shard = shard_of(fd);
  if (Status gate = admit(shard); !gate.is_ok()) return gate;
  Status st = shard_client(shard).write(fd, offset, data);
  last_write_shard_.store(shard, std::memory_order_relaxed);
  note(shard, st);
  return st;
}

Result<std::vector<std::byte>> RoutingClient::read(int fd, std::uint64_t offset,
                                                   std::uint64_t len) {
  const int shard = shard_of(fd);
  if (Status gate = admit(shard); !gate.is_ok()) return gate;
  Result<std::vector<std::byte>> r = shard_client(shard).read(fd, offset, len);
  note(shard, r.is_ok() ? Status::ok() : r.status());
  return r;
}

Status RoutingClient::fsync(int fd) {
  const int shard = shard_of(fd);
  if (Status gate = admit(shard); !gate.is_ok()) return gate;
  Status st = shard_client(shard).fsync(fd);
  note(shard, st);
  return st;
}

Result<std::uint64_t> RoutingClient::fstat_size(int fd) {
  const int shard = shard_of(fd);
  if (Status gate = admit(shard); !gate.is_ok()) return gate;
  Result<std::uint64_t> r = shard_client(shard).fstat_size(fd);
  note(shard, r.is_ok() ? Status::ok() : r.status());
  return r;
}

Status RoutingClient::close(int fd) {
  const int shard = shard_of(fd);
  if (Status gate = admit(shard); !gate.is_ok()) return gate;
  Status st = shard_client(shard).close(fd);
  note(shard, st);
  return st;
}

Status RoutingClient::shutdown() {
  Status first = Status::ok();
  for (auto& c : clients_) {
    if (Status st = c->shutdown(); !st.is_ok() && first.is_ok()) first = st;
  }
  return first;
}

bool RoutingClient::last_write_was_staged() const {
  const int shard = last_write_shard_.load(std::memory_order_relaxed);
  return shard >= 0 && shard_client(shard).last_write_was_staged();
}

rt::ClientStats RoutingClient::stats() const {
  rt::ClientStats sum;
  for (const auto& c : clients_) {
    const rt::ClientStats s = c->stats();
    sum.reconnects += s.reconnects;
    sum.replays += s.replays;
    sum.timeouts += s.timeouts;
    sum.giveups += s.giveups;
    sum.header_crc_errors += s.header_crc_errors;
    sum.payload_crc_errors += s.payload_crc_errors;
    sum.request_bounces += s.request_bounces;
    // Breaker counters live in the same per-shard registries (registered by
    // ShardHealth); read them off the snapshot the inner stats() is built
    // from rather than duplicating state here.
    const obs::Snapshot snap = c->registry().snapshot();
    auto ctr = [&snap](const char* name) -> std::uint64_t {
      auto it = snap.counters.find(name);
      return it == snap.counters.end() ? 0 : it->second;
    };
    sum.breaker_opens += ctr("client.breaker.opens");
    sum.breaker_fast_fails += ctr("client.breaker.fast_fails");
    sum.breaker_probes += ctr("client.breaker.probes");
    sum.breaker_closes += ctr("client.breaker.closes");
  }
  return sum;
}

}  // namespace iofwd::cluster
