#include "obs/metrics.hpp"

#include <algorithm>

namespace iofwd::obs {

namespace {

// Value at quantile q (0..1) given merged bucket counts: find the bucket the
// rank lands in, interpolate linearly across its [lo, hi) width, clamp to the
// observed max so a sparse top bucket cannot overshoot.
double quantile_from_buckets(const std::array<std::uint64_t, Histogram::kBuckets>& buckets,
                             std::uint64_t count, std::uint64_t observed_max, double q) {
  if (count == 0) return 0.0;
  const double rank = q * static_cast<double>(count - 1) + 1.0;  // 1-based
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t prev = cum;
    cum += buckets[b];
    if (static_cast<double>(cum) >= rank) {
      const double lo = static_cast<double>(Histogram::bucket_lo(b));
      const double hi = static_cast<double>(Histogram::bucket_hi(b));
      const double within =
          (rank - static_cast<double>(prev)) / static_cast<double>(buckets[b]);
      const double v = lo + (hi - lo) * within;
      return std::min(v, static_cast<double>(observed_max));
    }
  }
  return static_cast<double>(observed_max);
}

}  // namespace

HistogramSnapshot Histogram::snapshot() const {
  std::array<std::uint64_t, kBuckets> merged{};
  HistogramSnapshot s;
  for (const Shard& sh : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      merged[b] += sh.buckets[b].load(std::memory_order_relaxed);
    }
    s.sum += sh.sum.load(std::memory_order_relaxed);
    s.max = std::max(s.max, sh.max.load(std::memory_order_relaxed));
  }
  for (std::uint64_t c : merged) s.count += c;
  s.p50 = quantile_from_buckets(merged, s.count, s.max, 0.50);
  s.p95 = quantile_from_buckets(merged, s.count, s.max, 0.95);
  s.p99 = quantile_from_buckets(merged, s.count, s.max, 0.99);
  return s;
}

std::uint64_t Snapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it != counters.end() ? it->second : 0;
}

std::int64_t Snapshot::gauge(const std::string& name) const {
  auto it = gauges.find(name);
  return it != gauges.end() ? it->second : 0;
}

const HistogramSnapshot* Snapshot::histogram(const std::string& name) const {
  auto it = histograms.find(name);
  return it != histograms.end() ? &it->second : nullptr;
}

Counter& MetricRegistry::counter(const std::string& name) {
  std::scoped_lock lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  std::scoped_lock lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name) {
  std::scoped_lock lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void merge_prefixed(Snapshot& dst, const Snapshot& src, const std::string& prefix) {
  for (const auto& [name, v] : src.counters) dst.counters[prefix + name] = v;
  for (const auto& [name, v] : src.gauges) dst.gauges[prefix + name] = v;
  for (const auto& [name, v] : src.histograms) dst.histograms[prefix + name] = v;
}

Snapshot MetricRegistry::snapshot() const {
  Snapshot s;
  std::scoped_lock lk(mu_);
  for (const auto& [name, c] : counters_) s.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_) s.histograms.emplace(name, h->snapshot());
  return s;
}

}  // namespace iofwd::obs
