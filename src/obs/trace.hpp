// Wall-clock Chrome-trace exporter for real runs.
//
// The simulator already writes Trace Event Format JSON against simulated
// time (src/sim/chrome_trace.hpp); RuntimeTracer produces the same format
// against std::chrono::steady_clock, so Perfetto / chrome://tracing load
// traces from the real ION daemon exactly like simulated ones: per-op server
// spans on worker-lane tids, queue-depth and BML-in-use counter tracks.
//
//   obs::RuntimeTracer tracer;
//   tracer.set_thread_name(0, "worker 0");
//   { auto s = tracer.span("write", "op", /*tid=*/0); ...execute...; }
//   tracer.counter("queue_depth", depth);
//   tracer.write_json("trace.json");
//
// Thread safety: every recording call takes one mutex; tracing is opt-in
// (ion_daemon --trace-out) and off the hot path when disabled, so a mutex —
// not sharding — is the right cost/complexity point here.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.hpp"

namespace iofwd::obs {

class RuntimeTracer {
 public:
  RuntimeTracer() : epoch_(std::chrono::steady_clock::now()) {}
  RuntimeTracer(const RuntimeTracer&) = delete;
  RuntimeTracer& operator=(const RuntimeTracer&) = delete;

  // Microseconds since tracer construction (the trace's time origin).
  [[nodiscard]] std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                          std::chrono::steady_clock::now() - epoch_)
                                          .count());
  }

  // RAII span: emits a complete ("X") event covering construction to
  // destruction in wall-clock time.
  class Span {
   public:
    Span(Span&& o) noexcept
        : tracer_(o.tracer_), name_(std::move(o.name_)), cat_(std::move(o.cat_)),
          tid_(o.tid_), start_(o.start_) {
      o.tracer_ = nullptr;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span& operator=(Span&&) = delete;
    ~Span() { finish(); }

    void finish() {
      if (tracer_ != nullptr) {
        tracer_->complete(name_, cat_, tid_, start_, tracer_->now_us());
        tracer_ = nullptr;
      }
    }

   private:
    friend class RuntimeTracer;
    Span(RuntimeTracer* t, std::string name, std::string cat, int tid)
        : tracer_(t), name_(std::move(name)), cat_(std::move(cat)), tid_(tid),
          start_(t->now_us()) {}
    RuntimeTracer* tracer_;
    std::string name_;
    std::string cat_;
    int tid_;
    std::uint64_t start_;
  };

  [[nodiscard]] Span span(std::string name, std::string cat, int tid) {
    return Span(this, std::move(name), std::move(cat), tid);
  }

  void instant(const std::string& name, const std::string& cat, int tid);
  void counter(const std::string& name, double value);
  void complete(const std::string& name, const std::string& cat, int tid,
                std::uint64_t start_us, std::uint64_t end_us);

  // Label a tid lane in the trace viewer ("worker 3", "receiver"). Last call
  // for a tid wins; emitted as thread_name metadata events.
  void set_thread_name(int tid, const std::string& name);

  [[nodiscard]] std::size_t event_count() const;

  // Serialize to the Trace Event Format (JSON array form).
  [[nodiscard]] std::string to_json() const;
  Status write_json(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'X' complete, 'i' instant, 'C' counter
    std::string name;
    std::string cat;
    int tid;
    std::uint64_t ts_us;
    std::uint64_t dur_us;  // X only
    double value;          // C only
  };

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<int, std::string> thread_names_;
};

}  // namespace iofwd::obs
