#include "obs/trace.hpp"

#include <fstream>
#include <sstream>

namespace iofwd::obs {

void RuntimeTracer::instant(const std::string& name, const std::string& cat, int tid) {
  const std::uint64_t ts = now_us();
  std::scoped_lock lk(mu_);
  events_.push_back(Event{'i', name, cat, tid, ts, 0, 0});
}

void RuntimeTracer::counter(const std::string& name, double value) {
  const std::uint64_t ts = now_us();
  std::scoped_lock lk(mu_);
  events_.push_back(Event{'C', name, "counter", 0, ts, 0, value});
}

void RuntimeTracer::complete(const std::string& name, const std::string& cat, int tid,
                             std::uint64_t start_us, std::uint64_t end_us) {
  std::scoped_lock lk(mu_);
  events_.push_back(
      Event{'X', name, cat, tid, start_us, end_us >= start_us ? end_us - start_us : 0, 0});
}

void RuntimeTracer::set_thread_name(int tid, const std::string& name) {
  std::scoped_lock lk(mu_);
  thread_names_[tid] = name;
}

std::size_t RuntimeTracer::event_count() const {
  std::scoped_lock lk(mu_);
  return events_.size();
}

namespace {
void escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}
}  // namespace

std::string RuntimeTracer::to_json() const {
  std::scoped_lock lk(mu_);
  std::ostringstream os;
  os << "[";
  bool first = true;
  // Lane labels first: thread_name metadata events tell the viewer what each
  // tid is (worker lanes, the inline/receiver lane).
  for (const auto& [tid, name] : thread_names_) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"ph":"M","name":"thread_name","pid":1,"tid":)" << tid << R"(,"args":{"name":")";
    escape(os, name);
    os << R"("}})";
  }
  for (const auto& e : events_) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"ph":")" << e.phase << R"(","name":")";
    escape(os, e.name);
    os << R"(","cat":")";
    escape(os, e.cat);
    os << R"(","pid":1,"tid":)" << e.tid << R"(,"ts":)" << e.ts_us;
    if (e.phase == 'X') {
      os << R"(,"dur":)" << e.dur_us;
    } else if (e.phase == 'C') {
      os << R"(,"args":{"value":)" << e.value << "}";
    } else if (e.phase == 'i') {
      os << R"(,"s":"t")";
    }
    os << "}";
  }
  os << "]\n";
  return os.str();
}

Status RuntimeTracer::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status(Errc::io_error, "cannot open " + path);
  const std::string json = to_json();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return f.good() ? Status::ok() : Status(Errc::io_error, "short write to " + path);
}

}  // namespace iofwd::obs
