#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>

#include "core/status.hpp"
#include "core/table.hpp"

namespace iofwd::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      epoch_(std::chrono::steady_clock::now()),
      ring_(capacity_) {}

void FlightRecorder::record(const char* op, int fd, std::uint64_t bytes,
                            std::uint64_t latency_us, int status) {
  const auto end_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            epoch_)
          .count());
  std::scoped_lock lk(mu_);
  if (ring_.full()) (void)ring_.pop();  // overwrite oldest
  (void)ring_.push(FlightRecord{end_us, op, fd, bytes, latency_us, status});
  ++recorded_;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::scoped_lock lk(mu_);
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) out.push_back(ring_.at(i));
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  std::scoped_lock lk(mu_);
  return recorded_;
}

std::string FlightRecorder::dump() const {
  const auto recs = snapshot();
  std::uint64_t total = 0;
  {
    std::scoped_lock lk(mu_);
    total = recorded_;
  }
  std::string out = "-- flight recorder: last " + std::to_string(recs.size()) + " of " +
                    std::to_string(total) + " ops --\n";
  Table t({"t_end_us", "op", "fd", "bytes", "lat_us", "status"});
  for (const auto& r : recs) {
    t.add_row({std::to_string(r.end_us), r.op, std::to_string(r.fd), std::to_string(r.bytes),
               std::to_string(r.latency_us),
               std::string(errc_name(static_cast<Errc>(r.status)))});
  }
  out += t.render();
  return out;
}

}  // namespace iofwd::obs
