// Flight recorder: a ring of the last N completed operations.
//
// When a production ION misbehaves, the question is always "what was it
// doing right before?". The recorder keeps a bounded in-memory ledger of
// completed ops (kind, fd, size, latency, status) that costs one short
// mutex hold per op and can be dumped on error, on SIGUSR1 (ion_daemon), or
// from a debugger — no tracing session required.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/ring_buffer.hpp"

namespace iofwd::obs {

struct FlightRecord {
  std::uint64_t end_us = 0;  // completion time, µs since recorder creation
  const char* op = "";       // static string ("write", "read", "fsync", ...)
  int fd = -1;
  std::uint64_t bytes = 0;
  std::uint64_t latency_us = 0;
  int status = 0;  // Errc as int; 0 = ok
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // `op` must point at storage outliving the recorder (string literals).
  void record(const char* op, int fd, std::uint64_t bytes, std::uint64_t latency_us,
              int status);

  // Oldest-to-newest copy of the ring.
  [[nodiscard]] std::vector<FlightRecord> snapshot() const;

  // Human-readable table of the ring, newest last.
  [[nodiscard]] std::string dump() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  // Total ops ever recorded (>= ring occupancy once wrapped).
  [[nodiscard]] std::uint64_t recorded() const;

 private:
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  RingBuffer<FlightRecord> ring_;
  std::uint64_t recorded_ = 0;
};

}  // namespace iofwd::obs
