// Runtime metric registry: the one place every subsystem's counters live.
//
// The runtime stack (rt/, bb/, fault/, the simulated proto/ forwarders) used
// to keep five hand-rolled snapshot structs, each behind its own mutex. The
// registry replaces them with cheap shared handles:
//
//   * Counter   — monotonically increasing, thread-sharded so concurrent
//     writers on the op hot path never contend on one cache line.
//   * Gauge     — instantaneous signed value (set/add), plus a max-tracking
//     update for high-watermark style metrics.
//   * Histogram — log2-bucketed value distribution (latencies, sizes) with
//     p50/p95/p99/max snapshots; recording is two relaxed atomic adds.
//
// Handles are registered by name ("server.ops", "bb.flushed_bytes", ...) and
// live as long as the registry; subsystems cache references at construction
// so the hot path never touches the registration mutex. The legacy *Stats
// structs survive as snapshot views assembled from registry values, and
// analysis::metrics_table renders any registry Snapshot as a DiagTable.
//
// Overhead budget: <2% on the server op path versus no instrumentation,
// gated by bench/ext_obs_overhead.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace iofwd::obs {

// Shard count for Counter/Histogram. Each shard sits on its own cache line;
// a thread picks its shard once (thread-local) so writers spread out.
inline constexpr std::size_t kMetricShards = 8;

namespace detail {
// Stable per-thread shard index, assigned round-robin on first use.
[[nodiscard]] inline std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return mine;
}
}  // namespace detail

// Monotonic counter. add() is one relaxed fetch_add on a thread-local shard.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t d) noexcept {
    cells_[detail::shard_index()].v.fetch_add(d, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kMetricShards> cells_{};
};

// Instantaneous signed value. Single atomic: gauges are read/written rarely
// compared to counters (queue depth samples, high watermarks).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  // Raise the gauge to `v` if above its current value (high watermarks).
  void update_max(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Point-in-time view of one Histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  // Percentiles interpolated within log2 buckets (approximate by design;
  // exact for the bucket they land in, linear across its width).
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  [[nodiscard]] double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
};

// Log2-bucketed histogram: bucket 0 holds value 0, bucket i (i >= 1) holds
// [2^(i-1), 2^i). record() is a relaxed add into a thread-local shard plus a
// sum update; snapshot() merges shards and interpolates percentiles.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t x) noexcept {
    Shard& s = shards_[detail::shard_index()];
    s.buckets[bucket_of(x)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(x, std::memory_order_relaxed);
    std::uint64_t cur = s.max.load(std::memory_order_relaxed);
    while (x > cur && !s.max.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t x) noexcept {
    if (x == 0) return 0;
    return std::min<std::size_t>(static_cast<std::size_t>(64 - std::countl_zero(x)),
                                 kBuckets - 1);
  }
  // Inclusive lower / exclusive upper value bound of bucket b.
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t b) noexcept {
    return b == 0 ? 0 : (b == 1 ? 1 : 1ull << (b - 1));
  }
  [[nodiscard]] static std::uint64_t bucket_hi(std::size_t b) noexcept {
    return b == 0 ? 1 : (b >= 63 ? ~0ull : 1ull << b);
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

// Point-in-time view of a whole registry: plain values, safe to ship across
// layers (analysis/ renders these without depending on who produced them).
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // 0 / nullptr when the name was never registered.
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] std::int64_t gauge(const std::string& name) const;
  [[nodiscard]] const HistogramSnapshot* histogram(const std::string& name) const;
};

// Merge `src` into `dst` with every metric name prefixed — the mechanism
// behind cluster snapshots, where shard i's registry lands under
// "cluster.shard.<i>.*". Prefixed names that already exist are overwritten.
void merge_prefixed(Snapshot& dst, const Snapshot& src, const std::string& prefix);

// Named handle registry. Registration (first lookup of a name) takes a
// mutex; the returned references are stable for the registry's lifetime, so
// hot paths cache them and never look up again. Lookups of an existing name
// return the same handle — sharing a registry across subsystems aggregates
// into one namespace ("server.*", "client.*", "bb.*", "retry.*", "fwd.*").
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace iofwd::obs
