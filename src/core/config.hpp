// Key-value configuration with environment-variable overrides.
//
// The paper controls the worker-pool size and the BML memory budget through
// environment variables at job-submission time (Sec. IV); we mirror that:
// any config key "foo.bar" can be overridden by the environment variable
// IOFWD_FOO_BAR.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace iofwd {

class Config {
 public:
  Config() = default;

  void set(const std::string& key, std::string value) { kv_[key] = std::move(value); }
  void set_int(const std::string& key, std::int64_t v) { kv_[key] = std::to_string(v); }
  void set_double(const std::string& key, double v);

  // Lookup order: environment (IOFWD_<KEY> with '.'->'_', uppercased),
  // then explicit entries, then the supplied default.
  [[nodiscard]] std::string get(const std::string& key, const std::string& def = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  [[nodiscard]] bool contains(const std::string& key) const;

  // Parses "k=v" command-line style overrides; returns false on bad syntax.
  bool parse_override(const std::string& kv);

 private:
  static std::optional<std::string> env_lookup(const std::string& key);
  std::map<std::string, std::string> kv_;
};

}  // namespace iofwd
