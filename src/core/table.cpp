#include "core/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace iofwd {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  if (std::isnan(v)) return "-";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double v, int precision) {
  if (std::isnan(v)) return "-";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto hline = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      s += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = hline();
  out += render_row(headers_);
  out += hline();
  for (const auto& row : rows_) out += render_row(row);
  out += hline();
  return out;
}

void BarChart::add(std::string label, double value) {
  bars_.emplace_back(std::move(label), value);
}

std::string BarChart::render() const {
  double vmax = 0;
  std::size_t lmax = 0;
  for (const auto& [label, v] : bars_) {
    vmax = std::max(vmax, v);
    lmax = std::max(lmax, label.size());
  }
  std::ostringstream os;
  os << title_ << "\n";
  for (const auto& [label, v] : bars_) {
    const int n = vmax > 0 ? static_cast<int>(std::lround(v / vmax * width_)) : 0;
    os << "  " << label << std::string(lmax - label.size(), ' ') << " |"
       << std::string(static_cast<std::size_t>(n), '#') << " " << Table::num(v) << "\n";
  }
  return os.str();
}

GroupedChart::GroupedChart(std::string title, std::vector<std::string> series_names, int width)
    : title_(std::move(title)), series_(std::move(series_names)), width_(width) {}

void GroupedChart::add_group(std::string x_label, std::vector<double> values) {
  values.resize(series_.size());
  groups_.emplace_back(std::move(x_label), std::move(values));
}

std::string GroupedChart::render() const {
  double vmax = 0;
  std::size_t lmax = 0;
  for (const auto& s : series_) lmax = std::max(lmax, s.size());
  for (const auto& [x, vals] : groups_) {
    for (double v : vals) vmax = std::max(vmax, v);
  }
  std::ostringstream os;
  os << title_ << "\n";
  for (const auto& [x, vals] : groups_) {
    os << x << "\n";
    for (std::size_t i = 0; i < series_.size(); ++i) {
      const double v = vals[i];
      const int n = vmax > 0 ? static_cast<int>(std::lround(v / vmax * width_)) : 0;
      os << "  " << series_[i] << std::string(lmax - series_[i].size(), ' ') << " |"
         << std::string(static_cast<std::size_t>(n), '#') << " " << Table::num(v) << "\n";
    }
  }
  return os.str();
}

}  // namespace iofwd
