// Unified knob parsing for the example daemons and bench binaries.
//
// Every binary in this repo historically hand-rolled the same loop over
// `key=value` tokens; this helper is that loop, once. Accepted forms:
//
//   key=value      the bench/daemon convention (workers=4, iters=200)
//   --key=value    the same knob, GNU style
//   --flag         bare boolean, reads as "1" (--quick)
//   anything else  a positional operand (socket path), in order
//
// Key lookup normalizes '-' to '_' so `--bml-wait-ms` and `bml_wait_ms=`
// are the same knob. When a knob was not given on the command line, the
// environment variable `IOFWD_<UPPERCASED_KEY>` is consulted before the
// default — the paper notes the worker count "can be controlled via an
// environment variable during job submission", and every knob gets that
// treatment for free.
//
// Queried keys are tracked: after pulling all known knobs, call unknown()
// to warn about leftovers (typo'd knob names fail loudly instead of
// silently running defaults).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace iofwd::flags {

class Parser {
 public:
  // Parses argv[first..argc). Binaries with fixed leading positionals (the
  // daemon's socket path) still pass first=1 and read positional(0).
  Parser(int argc, char** argv, int first = 1);

  // Knob accessors; each marks the key as known for unknown() reporting.
  [[nodiscard]] std::string get(const std::string& key, const std::string& dflt) const;
  [[nodiscard]] int get_int(const std::string& key, int dflt) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key, std::uint64_t dflt) const;
  [[nodiscard]] double get_double(const std::string& key, double dflt) const;
  // True for `--key`, `key=1`, `--key=true`; false for absent/`0`/`false`.
  [[nodiscard]] bool get_flag(const std::string& key) const;
  // True if the knob appeared on the command line or in the environment.
  [[nodiscard]] bool has(const std::string& key) const;

  // Operands that were neither `key=value` nor `--...`, in order.
  [[nodiscard]] const std::vector<std::string>& positionals() const { return positionals_; }
  [[nodiscard]] std::string positional(std::size_t i, const std::string& dflt = "") const {
    return i < positionals_.size() ? positionals_[i] : dflt;
  }

  // Command-line keys never queried by any accessor — likely typos. Call
  // after all knobs have been read.
  [[nodiscard]] std::vector<std::string> unknown() const;

  // IOFWD_* environment variables whose (lowercased) key was never queried —
  // the environment-side typo check. Variables on a small allowlist
  // (IOFWD_TEST_SEED, read directly by the test harness rather than through
  // a Parser) are exempt.
  [[nodiscard]] std::vector<std::string> unknown_env() const;

  // Fail-loud gate: after every knob has been read, returns false and prints
  // one clear line per leftover — unknown command-line knobs and IOFWD_* env
  // typos, each with a did-you-mean suggestion against the queried knob set.
  // Binaries exit non-zero on false, so `shardz=4` can never silently run
  // with default sharding.
  [[nodiscard]] bool check_strict(const char* prog) const;

 private:
  static std::string normalize(const std::string& key);
  // Command-line value, else IOFWD_<KEY> from the environment, else null.
  [[nodiscard]] const std::string* lookup(const std::string& key) const;

  std::map<std::string, std::string> kv_;
  std::vector<std::string> positionals_;
  mutable std::map<std::string, std::string> env_cache_;
  mutable std::set<std::string> queried_;
};

}  // namespace iofwd::flags
