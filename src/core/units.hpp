// Units and literals used throughout iofwd++.
//
// Conventions (matching the paper, Sec. III-A footnote 1):
//   * "MiB" is 1024*1024 bytes; the paper's "MB" in rate contexts means MiB.
//   * Simulated time is kept in integer nanoseconds (see sim/time.hpp).
//   * Rates are double MiB/s at API boundaries, bytes/ns internally.
#pragma once

#include <cstdint>
#include <string>

namespace iofwd {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * 1024ull;
inline constexpr std::uint64_t GiB = 1024ull * 1024ull * 1024ull;

// Integer-literal helpers: 4_KiB, 2_MiB, 1_GiB.
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * KiB; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * MiB; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * GiB; }

// Nanosecond literals for simulated durations: 5_us, 3_ms, 2_s.
constexpr std::int64_t operator""_ns(unsigned long long v) { return static_cast<std::int64_t>(v); }
constexpr std::int64_t operator""_us(unsigned long long v) { return static_cast<std::int64_t>(v) * 1000; }
constexpr std::int64_t operator""_ms(unsigned long long v) { return static_cast<std::int64_t>(v) * 1000000; }
constexpr std::int64_t operator""_sec(unsigned long long v) { return static_cast<std::int64_t>(v) * 1000000000; }

// Rate conversions. A rate expressed as MiB/s converted to bytes per
// nanosecond (the unit the fluid-flow models integrate over).
constexpr double mib_per_s_to_bytes_per_ns(double mib_s) {
  return mib_s * static_cast<double>(MiB) / 1e9;
}
constexpr double bytes_per_ns_to_mib_per_s(double b_ns) {
  return b_ns * 1e9 / static_cast<double>(MiB);
}

// Human-readable byte count, e.g. "4 KiB", "2.5 MiB".
std::string format_bytes(std::uint64_t bytes);

// Human-readable duration from nanoseconds, e.g. "1.25 ms".
std::string format_duration_ns(std::int64_t ns);

// Round `v` up to the next power of two (min 1). Used by the buffer
// management layer, which allocates power-of-two buffers (paper Sec. IV).
constexpr std::uint64_t next_pow2(std::uint64_t v) {
  if (v <= 1) return 1;
  --v;
  v |= v >> 1; v |= v >> 2; v |= v >> 4;
  v |= v >> 8; v |= v >> 16; v |= v >> 32;
  return v + 1;
}

constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace iofwd
