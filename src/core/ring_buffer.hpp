// Fixed-capacity ring buffer.
//
// Used by the runtime's per-worker task queues and by the simulator's
// channels when bounded. Not thread-safe by itself; the runtime wraps it in
// a mutex+condvar (see rt/task_queue.hpp).
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace iofwd {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    assert(capacity > 0 && "RingBuffer capacity must be positive");
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] bool full() const { return count_ == buf_.size(); }

  // Returns false when full.
  bool push(T v) {
    if (full()) return false;
    buf_[tail_] = std::move(v);
    tail_ = advance(tail_);
    ++count_;
    return true;
  }

  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T v = std::move(buf_[head_]);
    head_ = advance(head_);
    --count_;
    return v;
  }

  // Peek at the oldest element. Precondition: !empty().
  [[nodiscard]] const T& front() const {
    assert(!empty());
    return buf_[head_];
  }

  // Element i positions past the oldest (at(0) == front()). Precondition:
  // i < size().
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < count_);
    const std::size_t idx = head_ + i;
    return buf_[idx >= buf_.size() ? idx - buf_.size() : idx];
  }

  void clear() {
    head_ = tail_ = 0;
    count_ = 0;
  }

 private:
  [[nodiscard]] std::size_t advance(std::size_t i) const {
    return i + 1 == buf_.size() ? 0 : i + 1;
  }
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t count_ = 0;
};

}  // namespace iofwd
