// Deterministic random number generation.
//
// Everything that varies in the simulator (workload jitter, pset placement,
// heuristic tie-breaking) draws from a seeded xoshiro256** stream so that an
// experiment is reproducible bit-for-bit from its seed.
#pragma once

#include <cstdint>

namespace iofwd {

// SplitMix64 — used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : x_(seed) {}
  constexpr std::uint64_t next() {
    std::uint64_t z = (x_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t x_;
};

// xoshiro256** 1.0 (Blackman & Vigna), a fast, high-quality 64-bit PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x1005dull) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const auto x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * static_cast<__uint128_t>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  constexpr double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  // Uniform in [lo, hi] inclusive.
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  // Derive an independent child stream (for per-node RNGs).
  [[nodiscard]] constexpr Rng fork() { return Rng(next() ^ 0xa5a5a5a5deadbeefull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace iofwd
