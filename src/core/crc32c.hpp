// CRC32C (Castagnoli, polynomial 0x1EDC6F41) for end-to-end data integrity.
//
// The runtime wire protocol checksums every frame header and (when protocol
// v1 is negotiated) every payload with CRC32C — the same polynomial iSCSI,
// ext4, and btrfs use, because commodity CPUs accelerate it: SSE4.2 has a
// dedicated crc32 instruction and ARMv8 an optional CRC32 extension. This
// module picks the fastest available implementation once at startup
// (resolved the first time any checksum is computed) and falls back to a
// slicing-by-8 table implementation everywhere else; both produce identical
// results, unit-tested against the RFC 3720 reference vectors. Large buffers
// run three interleaved hardware streams to hide the crc32 instruction's
// 3-cycle latency (~3x the serial chain on wire-payload-sized buffers).
//
// Conventions: crc32c(data) is the standard reflected CRC with initial value
// and final xor of 0xFFFFFFFF (so crc32c("123456789") == 0xE3069283).
// Streaming callers use crc32c_extend(prev, ...) where `prev` is the result
// of an earlier crc32c/crc32c_extend call over the preceding bytes; the
// composition equals the one-shot CRC of the concatenation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace iofwd {

// One-shot CRC32C of a byte range.
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t n) noexcept;
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> data) noexcept;

// Continue a CRC32C over the next chunk: `prev` is the CRC of everything
// before `data`. crc32c(x) == crc32c_extend(crc32c(prefix), rest) when
// x == prefix + rest; crc32c(x) == crc32c_extend(0, x).
[[nodiscard]] std::uint32_t crc32c_extend(std::uint32_t prev, const void* data,
                                          std::size_t n) noexcept;
[[nodiscard]] std::uint32_t crc32c_extend(std::uint32_t prev,
                                          std::span<const std::byte> data) noexcept;

// True when a hardware CRC32C instruction is available and selected.
[[nodiscard]] bool crc32c_hw_available() noexcept;

// The selected implementation: "sse4.2", "armv8-crc", or "software".
[[nodiscard]] const char* crc32c_impl() noexcept;

// The portable slicing-by-8 implementation, exposed so tests can cross-check
// hardware against software and benchmarks can report both dispatch paths.
// Takes and returns the *raw* (non-inverted) CRC state like crc32c_extend.
[[nodiscard]] std::uint32_t crc32c_sw_extend(std::uint32_t prev, const void* data,
                                             std::size_t n) noexcept;

}  // namespace iofwd
