#include "core/status.hpp"

namespace iofwd {

std::string_view errc_name(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::bad_descriptor: return "bad_descriptor";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::no_memory: return "no_memory";
    case Errc::io_error: return "io_error";
    case Errc::not_connected: return "not_connected";
    case Errc::would_block: return "would_block";
    case Errc::message_too_large: return "message_too_large";
    case Errc::protocol_error: return "protocol_error";
    case Errc::shutdown: return "shutdown";
    case Errc::timed_out: return "timed_out";
    case Errc::deferred_io_error: return "deferred_io_error";
    case Errc::unsupported: return "unsupported";
    case Errc::internal: return "internal";
    case Errc::checksum_error: return "checksum_error";
  }
  return "unknown";
}

std::optional<Errc> errc_from_name(std::string_view name) {
  for (std::int32_t c = 0; c < kErrcCount; ++c) {
    const auto e = static_cast<Errc>(c);
    if (errc_name(e) == name) return e;
  }
  return std::nullopt;
}

std::string Status::to_string() const {
  std::string s{errc_name(code_)};
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace iofwd
