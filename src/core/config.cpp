#include "core/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace iofwd {

void Config::set_double(const std::string& key, double v) {
  std::ostringstream os;
  os << v;
  kv_[key] = os.str();
}

std::optional<std::string> Config::env_lookup(const std::string& key) {
  std::string env = "IOFWD_";
  for (char c : key) {
    env += (c == '.') ? '_' : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  if (const char* v = std::getenv(env.c_str())) return std::string(v);
  return std::nullopt;
}

std::string Config::get(const std::string& key, const std::string& def) const {
  if (auto env = env_lookup(key)) return *env;
  if (auto it = kv_.find(key); it != kv_.end()) return it->second;
  return def;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  const std::string s = get(key);
  if (s.empty()) return def;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str()) return def;
  return v;
}

double Config::get_double(const std::string& key, double def) const {
  const std::string s = get(key);
  if (s.empty()) return def;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == s.c_str()) return def;
  return v;
}

bool Config::get_bool(const std::string& key, bool def) const {
  std::string s = get(key);
  if (s.empty()) return def;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return def;
}

bool Config::contains(const std::string& key) const {
  return env_lookup(key).has_value() || kv_.contains(key);
}

bool Config::parse_override(const std::string& kv) {
  const auto eq = kv.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  set(kv.substr(0, eq), kv.substr(eq + 1));
  return true;
}

}  // namespace iofwd
