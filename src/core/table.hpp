// ASCII table and chart rendering for the benchmark harness.
//
// Every bench binary prints the paper's series next to the measured series in
// a fixed-width table, plus an optional unicode bar chart so the *shape* of a
// figure is visible in a terminal.
#pragma once

#include <string>
#include <vector>

namespace iofwd {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision, "-" for NaN.
  static std::string num(double v, int precision = 1);
  static std::string pct(double v, int precision = 0);  // e.g. "95%"

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Horizontal bar chart: one bar per (label, value). Bars scale to max value.
class BarChart {
 public:
  explicit BarChart(std::string title, int width = 50) : title_(std::move(title)), width_(width) {}
  void add(std::string label, double value);
  [[nodiscard]] std::string render() const;

 private:
  std::string title_;
  int width_;
  std::vector<std::pair<std::string, double>> bars_;
};

// Grouped series chart: x-categories on rows, one bar per series per row.
// This mirrors the grouped-bar figures in the paper (Figs. 9-13).
class GroupedChart {
 public:
  GroupedChart(std::string title, std::vector<std::string> series_names, int width = 44);
  void add_group(std::string x_label, std::vector<double> values);
  [[nodiscard]] std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> series_;
  int width_;
  std::vector<std::pair<std::string, std::vector<double>>> groups_;
};

}  // namespace iofwd
