// Error model for iofwd++.
//
// The forwarding layer ships POSIX-like calls across machines, so errors are
// represented as portable error codes (a subset of errno) plus a message.
// `Result<T>` is a lightweight expected-like carrier used on every fallible
// public API.  The async-staging path additionally *defers* errors: a failed
// asynchronous write is recorded in the descriptor database and surfaced on
// the next operation on that descriptor (paper Sec. IV).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace iofwd {

enum class Errc : std::int32_t {
  ok = 0,
  bad_descriptor,    // EBADF: unknown or closed descriptor
  invalid_argument,  // EINVAL
  no_memory,         // ENOMEM: BML pool exhausted and blocking disabled
  io_error,          // EIO: backend I/O failure
  not_connected,     // ENOTCONN: socket peer gone
  would_block,       // EWOULDBLOCK
  message_too_large, // EMSGSIZE: exceeds transport frame limit
  protocol_error,    // wire-format violation
  shutdown,          // server shutting down
  timed_out,         // ETIMEDOUT
  deferred_io_error, // an earlier async operation on this descriptor failed
  unsupported,       // ENOSYS
  internal,          // invariant violation (bug)
  checksum_error,    // CRC mismatch on a received frame (retryable)
};

std::string_view errc_name(Errc e);

// Inverse of errc_name (config files, fault plans, CLI knobs). nullopt for
// anything errc_name would not produce.
std::optional<Errc> errc_from_name(std::string_view name);

// One past the last enumerator: lets tests and tables sweep every code.
inline constexpr std::int32_t kErrcCount = static_cast<std::int32_t>(Errc::checksum_error) + 1;

// A status: an error code plus an optional human-readable message.
class Status {
 public:
  Status() = default;  // ok
  Status(Errc code, std::string message) : code_(code), message_(std::move(message)) {}
  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == Errc::ok; }
  explicit operator bool() const { return is_ok(); }
  [[nodiscard]] Errc code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  Errc code_ = Errc::ok;
  std::string message_;
};

// Minimal expected<T, Status>. We deliberately avoid exceptions on I/O paths
// (they are expected outcomes, not exceptional ones) per the Core Guidelines'
// advice to reserve exceptions for genuinely exceptional conditions.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {}  // NOLINT(google-explicit-constructor)
  Result(Errc code, std::string msg) : v_(Status(code, std::move(msg))) {}

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] T& value() & { return std::get<T>(v_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(v_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(v_)); }

  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(v_);
  }
  [[nodiscard]] Errc code() const { return is_ok() ? Errc::ok : std::get<Status>(v_).code(); }

  // value_or for cheap defaulting in tests and examples.
  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace iofwd
