// Streaming statistics and series helpers used by the benchmark harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace iofwd {

// Welford's online mean/variance plus min/max. O(1) space.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double total = static_cast<double>(n_ + o.n_);
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) / total;
    mean_ = (mean_ * static_cast<double>(n_) + o.mean_ * static_cast<double>(o.n_)) / total;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Exact percentile over a stored sample, linearly interpolated between the
// two nearest order statistics (the rank is p/100 * (n-1); a 1-element
// sample returns that element for every p, a 2-element sample interpolates
// between the two). The paper reports "maximum of five runs" everywhere;
// percentiles are used by the extra ablation benches.
class Sample {
 public:
  void add(double x) { xs_.push_back(x); sorted_ = false; }
  [[nodiscard]] std::size_t count() const { return xs_.size(); }

  [[nodiscard]] double percentile(double p) {
    if (xs_.empty()) return 0.0;
    sort_once();
    const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
  }
  [[nodiscard]] double median() { return percentile(50.0); }
  [[nodiscard]] double max() {
    if (xs_.empty()) return 0.0;
    sort_once();
    return xs_.back();
  }
  [[nodiscard]] double min() {
    if (xs_.empty()) return 0.0;
    sort_once();
    return xs_.front();
  }

 private:
  void sort_once() {
    if (!sorted_) {
      std::sort(xs_.begin(), xs_.end());
      sorted_ = true;
    }
  }
  std::vector<double> xs_;
  bool sorted_ = false;
};

}  // namespace iofwd
