#include "core/flags.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

extern "C" char** environ;

namespace iofwd::flags {

std::string Parser::normalize(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) out.push_back(c == '-' ? '_' : c);
  return out;
}

Parser::Parser(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string tok = argv[i];
    const bool dashed = tok.rfind("--", 0) == 0;
    if (dashed) tok.erase(0, 2);
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      kv_[normalize(tok.substr(0, eq))] = tok.substr(eq + 1);
    } else if (dashed) {
      kv_[normalize(tok)] = "1";  // bare boolean flag
    } else {
      positionals_.push_back(std::move(tok));
    }
  }
}

const std::string* Parser::lookup(const std::string& key) const {
  const std::string k = normalize(key);
  queried_.insert(k);
  if (auto it = kv_.find(k); it != kv_.end()) return &it->second;
  if (auto it = env_cache_.find(k); it != env_cache_.end()) return &it->second;
  std::string env_name = "IOFWD_";
  for (char c : k) env_name.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  if (const char* v = std::getenv(env_name.c_str())) {
    return &env_cache_.emplace(k, v).first->second;
  }
  return nullptr;
}

std::string Parser::get(const std::string& key, const std::string& dflt) const {
  const std::string* v = lookup(key);
  return v != nullptr ? *v : dflt;
}

int Parser::get_int(const std::string& key, int dflt) const {
  const std::string* v = lookup(key);
  return v != nullptr ? std::atoi(v->c_str()) : dflt;
}

std::uint64_t Parser::get_u64(const std::string& key, std::uint64_t dflt) const {
  const std::string* v = lookup(key);
  return v != nullptr ? std::strtoull(v->c_str(), nullptr, 10) : dflt;
}

double Parser::get_double(const std::string& key, double dflt) const {
  const std::string* v = lookup(key);
  return v != nullptr ? std::atof(v->c_str()) : dflt;
}

bool Parser::get_flag(const std::string& key) const {
  const std::string* v = lookup(key);
  return v != nullptr && *v != "0" && *v != "false" && !v->empty();
}

bool Parser::has(const std::string& key) const { return lookup(key) != nullptr; }

std::vector<std::string> Parser::unknown() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    if (queried_.find(k) == queried_.end()) out.push_back(k);
  }
  return out;
}

namespace {

// Environment variables read outside any Parser (the test harness pulls its
// seed with getenv directly) — exempt from the typo scan.
constexpr const char* kEnvAllowlist[] = {"IOFWD_TEST_SEED"};

// Classic edit distance, small inputs only (knob names).
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

std::vector<std::string> Parser::unknown_env() const {
  std::vector<std::string> out;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const char* entry = *e;
    if (std::strncmp(entry, "IOFWD_", 6) != 0) continue;
    const char* eq = std::strchr(entry, '=');
    const std::string name(entry, eq != nullptr ? static_cast<std::size_t>(eq - entry)
                                                : std::strlen(entry));
    if (std::any_of(std::begin(kEnvAllowlist), std::end(kEnvAllowlist),
                    [&](const char* a) { return name == a; })) {
      continue;
    }
    std::string key;
    for (std::size_t i = 6; i < name.size(); ++i) {
      key.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(name[i]))));
    }
    if (queried_.find(normalize(key)) == queried_.end()) out.push_back(name);
  }
  return out;
}

bool Parser::check_strict(const char* prog) const {
  // Suggest the closest queried knob when it is plausibly a typo (distance
  // scaled to the knob length, so "shardz" -> "shards" but "foo" suggests
  // nothing).
  const auto suggest = [this](const std::string& key) -> std::string {
    std::string best;
    std::size_t best_d = key.size();
    for (const std::string& q : queried_) {
      const std::size_t d = edit_distance(key, q);
      if (d < best_d) {
        best_d = d;
        best = q;
      }
    }
    if (!best.empty() && best_d <= std::max<std::size_t>(2, key.size() / 4)) {
      return " (did you mean '" + best + "'?)";
    }
    return "";
  };

  bool ok = true;
  for (const std::string& k : unknown()) {
    std::fprintf(stderr, "%s: error: unknown knob '%s'%s\n", prog, k.c_str(),
                 suggest(k).c_str());
    ok = false;
  }
  for (const std::string& name : unknown_env()) {
    std::string key;
    for (std::size_t i = 6; i < name.size(); ++i) {
      key.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(name[i]))));
    }
    std::fprintf(stderr, "%s: error: environment variable %s matches no knob%s\n", prog,
                 name.c_str(), suggest(normalize(key)).c_str());
    ok = false;
  }
  return ok;
}

}  // namespace iofwd::flags
