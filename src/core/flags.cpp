#include "core/flags.hpp"

#include <cctype>
#include <cstdlib>

namespace iofwd::flags {

std::string Parser::normalize(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) out.push_back(c == '-' ? '_' : c);
  return out;
}

Parser::Parser(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string tok = argv[i];
    const bool dashed = tok.rfind("--", 0) == 0;
    if (dashed) tok.erase(0, 2);
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      kv_[normalize(tok.substr(0, eq))] = tok.substr(eq + 1);
    } else if (dashed) {
      kv_[normalize(tok)] = "1";  // bare boolean flag
    } else {
      positionals_.push_back(std::move(tok));
    }
  }
}

const std::string* Parser::lookup(const std::string& key) const {
  const std::string k = normalize(key);
  queried_.insert(k);
  if (auto it = kv_.find(k); it != kv_.end()) return &it->second;
  if (auto it = env_cache_.find(k); it != env_cache_.end()) return &it->second;
  std::string env_name = "IOFWD_";
  for (char c : k) env_name.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  if (const char* v = std::getenv(env_name.c_str())) {
    return &env_cache_.emplace(k, v).first->second;
  }
  return nullptr;
}

std::string Parser::get(const std::string& key, const std::string& dflt) const {
  const std::string* v = lookup(key);
  return v != nullptr ? *v : dflt;
}

int Parser::get_int(const std::string& key, int dflt) const {
  const std::string* v = lookup(key);
  return v != nullptr ? std::atoi(v->c_str()) : dflt;
}

std::uint64_t Parser::get_u64(const std::string& key, std::uint64_t dflt) const {
  const std::string* v = lookup(key);
  return v != nullptr ? std::strtoull(v->c_str(), nullptr, 10) : dflt;
}

double Parser::get_double(const std::string& key, double dflt) const {
  const std::string* v = lookup(key);
  return v != nullptr ? std::atof(v->c_str()) : dflt;
}

bool Parser::get_flag(const std::string& key) const {
  const std::string* v = lookup(key);
  return v != nullptr && *v != "0" && *v != "false" && !v->empty();
}

bool Parser::has(const std::string& key) const { return lookup(key) != nullptr; }

std::vector<std::string> Parser::unknown() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    if (queried_.find(k) == queried_.end()) out.push_back(k);
  }
  return out;
}

}  // namespace iofwd::flags
