#include "core/units.hpp"

#include <array>
#include <cstdio>

namespace iofwd {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 4> suffix = {"B", "KiB", "MiB", "GiB"};
  double v = static_cast<double>(bytes);
  std::size_t s = 0;
  while (v >= 1024.0 && s + 1 < suffix.size()) {
    v /= 1024.0;
    ++s;
  }
  char buf[48];
  if (v == static_cast<std::uint64_t>(v)) {
    std::snprintf(buf, sizeof buf, "%llu %s", static_cast<unsigned long long>(v), suffix[s]);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", v, suffix[s]);
  }
  return buf;
}

std::string format_duration_ns(std::int64_t ns) {
  char buf[48];
  const double v = static_cast<double>(ns);
  if (ns < 1000) {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(ns));
  } else if (ns < 1000000) {
    std::snprintf(buf, sizeof buf, "%.2f us", v / 1e3);
  } else if (ns < 1000000000) {
    std::snprintf(buf, sizeof buf, "%.2f ms", v / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", v / 1e9);
  }
  return buf;
}

}  // namespace iofwd
