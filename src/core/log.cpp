#include "core/log.hpp"

#include <string>

namespace iofwd {
namespace {
constexpr std::string_view level_tag(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void Log::write(LogLevel lvl, const char* fmt, ...) {
  if (!enabled(lvl)) return;
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  instance().emit(lvl, buf);
}

void Log::emit(LogLevel lvl, std::string_view body) {
  std::scoped_lock lock(mu_);
  std::fprintf(stderr, "[iofwd %.*s] %.*s\n", static_cast<int>(level_tag(lvl).size()),
               level_tag(lvl).data(), static_cast<int>(body.size()), body.data());
}

}  // namespace iofwd
