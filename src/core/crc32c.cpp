#include "core/crc32c.hpp"

#include <atomic>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define IOFWD_CRC32C_X86 1
#endif

#if defined(__aarch64__)
#if defined(__linux__)
#include <sys/auxv.h>
#endif
#if defined(__ARM_FEATURE_CRC32) || defined(__GNUC__)
#include <arm_acle.h>
#define IOFWD_CRC32C_ARM 1
#endif
#endif

namespace iofwd {

namespace {

// ---------------------------------------------------------------------------
// Software path: slicing-by-8 over compile-time-generated tables.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kPolyReflected = 0x82F63B78u;  // 0x1EDC6F41 bit-reversed

struct Crc32cTables {
  std::uint32_t t[8][256];
};

constexpr Crc32cTables make_tables() {
  Crc32cTables tb{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    tb.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tb.t[0][i];
    for (int s = 1; s < 8; ++s) {
      crc = tb.t[0][crc & 0xffu] ^ (crc >> 8);
      tb.t[s][i] = crc;
    }
  }
  return tb;
}

constexpr Crc32cTables kTables = make_tables();

std::uint32_t sw_update(std::uint32_t state, const unsigned char* p, std::size_t n) noexcept {
  // Head: byte-at-a-time until 8-byte alignment of the *data* pointer.
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    state = kTables.t[0][(state ^ *p++) & 0xffu] ^ (state >> 8);
    --n;
  }
  // Body: 8 bytes per step through the 8 slice tables.
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= state;  // little-endian: CRC folds into the low 4 bytes
    state = kTables.t[7][word & 0xffu] ^ kTables.t[6][(word >> 8) & 0xffu] ^
            kTables.t[5][(word >> 16) & 0xffu] ^ kTables.t[4][(word >> 24) & 0xffu] ^
            kTables.t[3][(word >> 32) & 0xffu] ^ kTables.t[2][(word >> 40) & 0xffu] ^
            kTables.t[1][(word >> 48) & 0xffu] ^ kTables.t[0][(word >> 56) & 0xffu];
    p += 8;
    n -= 8;
  }
  // Tail.
  while (n > 0) {
    state = kTables.t[0][(state ^ *p++) & 0xffu] ^ (state >> 8);
    --n;
  }
  return state;
}

// ---------------------------------------------------------------------------
// Zero-block shift operator for interleaved hardware CRCs.
//
// The hardware crc32 instruction has a 3-cycle latency but single-cycle
// throughput, so one serial chain runs at ~8 bytes / 3 cycles. Running three
// independent chains over adjacent 4 KiB lanes fills the pipeline (~3x), at
// the cost of recombining the three lane CRCs afterwards. Recombination uses
// the linearity of CRC: state_after(A||B, s) = shift(state_after(A, s)) ^
// state_after(B, 0), where shift multiplies the raw state by x^(8*|B|) mod P
// — i.e. runs |B| zero bytes through the register. That operator is linear
// on the 32-bit state, so it collapses to four 256-entry lookup tables,
// built once by squaring the one-zero-byte step log2(kLane) times.
// ---------------------------------------------------------------------------

#if defined(IOFWD_CRC32C_X86) || defined(IOFWD_CRC32C_ARM)
constexpr std::size_t kLane = 4096;  // bytes per interleaved stream

struct ShiftOp {
  std::uint32_t t[4][256];
  std::uint32_t apply(std::uint32_t s) const noexcept {
    return t[0][s & 0xffu] ^ t[1][(s >> 8) & 0xffu] ^ t[2][(s >> 16) & 0xffu] ^ t[3][s >> 24];
  }
};

// Operator advancing a raw CRC state across kLane zero bytes.
const ShiftOp& lane_shift() noexcept {
  static const ShiftOp op = [] {
    ShiftOp one;  // one zero byte: s' = t0[s & 0xff] ^ (s >> 8), tabulated per state byte
    for (int j = 0; j < 4; ++j) {
      for (std::uint32_t b = 0; b < 256; ++b) {
        const std::uint32_t s = b << (8 * j);
        one.t[j][b] = kTables.t[0][s & 0xffu] ^ (s >> 8);
      }
    }
    ShiftOp acc = one;
    for (std::size_t len = 1; len < kLane; len <<= 1) {  // square: len -> 2*len zero bytes
      ShiftOp sq;
      for (int j = 0; j < 4; ++j) {
        for (std::uint32_t b = 0; b < 256; ++b) sq.t[j][b] = acc.apply(acc.t[j][b]);
      }
      acc = sq;
    }
    return acc;
  }();
  return op;
}
#endif  // IOFWD_CRC32C_X86 || IOFWD_CRC32C_ARM

// ---------------------------------------------------------------------------
// Hardware paths.
// ---------------------------------------------------------------------------

#if defined(IOFWD_CRC32C_X86)
__attribute__((target("sse4.2"))) std::uint32_t hw_update_serial(std::uint32_t state,
                                                                 const unsigned char* p,
                                                                 std::size_t n) noexcept {
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    state = _mm_crc32_u8(state, *p++);
    --n;
  }
#if defined(__x86_64__)
  std::uint64_t state64 = state;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    state64 = _mm_crc32_u64(state64, word);
    p += 8;
    n -= 8;
  }
  state = static_cast<std::uint32_t>(state64);
#endif
  while (n > 0) {
    state = _mm_crc32_u8(state, *p++);
    --n;
  }
  return state;
}

__attribute__((target("sse4.2"))) std::uint32_t hw_update(std::uint32_t state,
                                                          const unsigned char* p,
                                                          std::size_t n) noexcept {
#if defined(__x86_64__)
  if (n >= 3 * kLane) {
    const ShiftOp& shift = lane_shift();
    do {
      std::uint64_t a = state, b = 0, c = 0;
      for (std::size_t i = 0; i < kLane; i += 8) {
        std::uint64_t wa, wb, wc;
        std::memcpy(&wa, p + i, 8);
        std::memcpy(&wb, p + kLane + i, 8);
        std::memcpy(&wc, p + 2 * kLane + i, 8);
        a = _mm_crc32_u64(a, wa);
        b = _mm_crc32_u64(b, wb);
        c = _mm_crc32_u64(c, wc);
      }
      state = shift.apply(shift.apply(static_cast<std::uint32_t>(a)) ^
                          static_cast<std::uint32_t>(b)) ^
              static_cast<std::uint32_t>(c);
      p += 3 * kLane;
      n -= 3 * kLane;
    } while (n >= 3 * kLane);
  }
#endif
  return hw_update_serial(state, p, n);
}

bool detect_hw() noexcept { return __builtin_cpu_supports("sse4.2") != 0; }
const char* hw_name() noexcept { return "sse4.2"; }
#elif defined(IOFWD_CRC32C_ARM)
__attribute__((target("+crc"))) std::uint32_t hw_update_serial(std::uint32_t state,
                                                               const unsigned char* p,
                                                               std::size_t n) noexcept {
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    state = __crc32cb(state, *p++);
    --n;
  }
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    state = __crc32cd(state, word);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    state = __crc32cb(state, *p++);
    --n;
  }
  return state;
}

__attribute__((target("+crc"))) std::uint32_t hw_update(std::uint32_t state,
                                                        const unsigned char* p,
                                                        std::size_t n) noexcept {
  if (n >= 3 * kLane) {
    const ShiftOp& shift = lane_shift();
    do {
      std::uint32_t a = state, b = 0, c = 0;
      for (std::size_t i = 0; i < kLane; i += 8) {
        std::uint64_t wa, wb, wc;
        std::memcpy(&wa, p + i, 8);
        std::memcpy(&wb, p + kLane + i, 8);
        std::memcpy(&wc, p + 2 * kLane + i, 8);
        a = __crc32cd(a, wa);
        b = __crc32cd(b, wb);
        c = __crc32cd(c, wc);
      }
      state = shift.apply(shift.apply(a) ^ b) ^ c;
      p += 3 * kLane;
      n -= 3 * kLane;
    } while (n >= 3 * kLane);
  }
  return hw_update_serial(state, p, n);
}

bool detect_hw() noexcept {
#if defined(__linux__) && defined(HWCAP_CRC32)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#elif defined(__ARM_FEATURE_CRC32)
  return true;  // baked into the target at compile time
#else
  return false;
#endif
}
const char* hw_name() noexcept { return "armv8-crc"; }
#else
std::uint32_t hw_update(std::uint32_t state, const unsigned char* p, std::size_t n) noexcept {
  return sw_update(state, p, n);
}
bool detect_hw() noexcept { return false; }
const char* hw_name() noexcept { return "software"; }
#endif

// Dispatch is resolved once; the result never changes for the process.
bool hw_selected() noexcept {
  static const bool selected = detect_hw();
  return selected;
}

std::uint32_t update(std::uint32_t state, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  return hw_selected() ? hw_update(state, p, n) : sw_update(state, p, n);
}

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t prev, const void* data, std::size_t n) noexcept {
  return ~update(~prev, data, n);
}

std::uint32_t crc32c_extend(std::uint32_t prev, std::span<const std::byte> data) noexcept {
  return crc32c_extend(prev, data.data(), data.size());
}

std::uint32_t crc32c(const void* data, std::size_t n) noexcept {
  return crc32c_extend(0, data, n);
}

std::uint32_t crc32c(std::span<const std::byte> data) noexcept {
  return crc32c_extend(0, data.data(), data.size());
}

std::uint32_t crc32c_sw_extend(std::uint32_t prev, const void* data, std::size_t n) noexcept {
  return ~sw_update(~prev, static_cast<const unsigned char*>(data), n);
}

bool crc32c_hw_available() noexcept { return hw_selected(); }

const char* crc32c_impl() noexcept { return hw_selected() ? hw_name() : "software"; }

}  // namespace iofwd
