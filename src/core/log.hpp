// Minimal leveled logger (printf-style; gcc 12 lacks <format>).
//
// Both the simulator and the real runtime log through this sink.  The level
// is process-global and read once per call; logging from concurrent runtime
// threads is serialized by an internal mutex so lines never interleave.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <string_view>

namespace iofwd {

enum class LogLevel : int { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

class Log {
 public:
  static void set_level(LogLevel lvl) { instance().level_ = lvl; }
  static LogLevel level() { return instance().level_; }
  static bool enabled(LogLevel lvl) {
    return static_cast<int>(lvl) >= static_cast<int>(instance().level_);
  }

  [[gnu::format(printf, 2, 3)]]
  static void write(LogLevel lvl, const char* fmt, ...);

 private:
  static Log& instance() {
    static Log log;
    return log;
  }
  void emit(LogLevel lvl, std::string_view body);

  LogLevel level_ = LogLevel::warn;
  std::mutex mu_;
};

#define IOFWD_LOG_TRACE(...) ::iofwd::Log::write(::iofwd::LogLevel::trace, __VA_ARGS__)
#define IOFWD_LOG_DEBUG(...) ::iofwd::Log::write(::iofwd::LogLevel::debug, __VA_ARGS__)
#define IOFWD_LOG_INFO(...) ::iofwd::Log::write(::iofwd::LogLevel::info, __VA_ARGS__)
#define IOFWD_LOG_WARN(...) ::iofwd::Log::write(::iofwd::LogLevel::warn, __VA_ARGS__)
#define IOFWD_LOG_ERROR(...) ::iofwd::Log::write(::iofwd::LogLevel::error, __VA_ARGS__)

}  // namespace iofwd
