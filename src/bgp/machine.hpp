// The simulated machine: psets of compute nodes with their tree links, I/O
// nodes, the external 10 GbE network, data-analysis nodes, and storage.
//
// The Machine owns every shared resource; forwarder implementations (proto/)
// compose awaitables on these resources to model their data paths.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bgp/config.hpp"
#include "sim/engine.hpp"
#include "sim/fluid.hpp"
#include "sim/sync.hpp"

namespace iofwd::bgp {

// One I/O node: 4 slow cores, 2 GB of memory, a 10 GbE NIC.
// Two CPU pools would be wrong (it is one physical CPU), so the pool's
// switch penalty is the *thread* one; CIOD's dearer process switches are
// modeled as an additional per-wake CPU charge (see proto/ciod.cpp).
class IonNode {
 public:
  IonNode(sim::Engine& eng, const MachineConfig& cfg, int id);

  sim::CpuPool& cpu() { return cpu_; }
  sim::Link& nic() { return nic_; }
  sim::SimSemaphore& memory() { return memory_; }
  [[nodiscard]] int id() const { return id_; }

 private:
  int id_;
  sim::CpuPool cpu_;
  sim::Link nic_;
  sim::SimSemaphore memory_;  // bytes of buffer memory
};

// One pset: the shared collective (tree) link feeding its ION, plus the
// slice of the 3-D torus its CNs use for point-to-point redistribution
// (two-phase collective I/O).
class Pset {
 public:
  Pset(sim::Engine& eng, const MachineConfig& cfg, int id);

  sim::Link& tree() { return tree_; }
  sim::Link& torus() { return torus_; }
  IonNode& ion() { return ion_; }
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int num_cns() const { return num_cns_; }

 private:
  int id_;
  int num_cns_;
  sim::Link tree_;
  sim::Link torus_;
  IonNode ion_;
};

// One data-analysis (Eureka) node: fast cores + its own 10 GbE NIC.
class DaNode {
 public:
  DaNode(sim::Engine& eng, const MachineConfig& cfg, int id);

  sim::CpuPool& cpu() { return cpu_; }
  sim::Link& nic() { return nic_; }
  [[nodiscard]] int id() const { return id_; }

 private:
  int id_;
  sim::CpuPool cpu_;
  sim::Link nic_;
};

// The clusterwide file system: per-FSN ingest links in front of an
// aggregate service capacity (DDN arrays). Files are striped round-robin
// across FSNs by the caller picking fsn_for(block).
class Storage {
 public:
  Storage(sim::Engine& eng, const MachineConfig& cfg);

  // Serve `bytes` of file I/O through FSN `fsn` (both directions modeled
  // symmetrically — the paper's MADbench2 pattern is successive large
  // contiguous writes and reads).
  sim::Proc<void> serve(int fsn, std::uint64_t bytes);

  [[nodiscard]] int num_fsns() const { return static_cast<int>(fsn_links_.size()); }
  [[nodiscard]] int fsn_for(std::uint64_t block_index) const {
    return static_cast<int>(block_index % fsn_links_.size());
  }

 private:
  sim::Proc<void> consume_aggregate(std::uint64_t bytes);

  sim::Engine& eng_;
  sim::SimTime latency_ns_;
  std::vector<std::unique_ptr<sim::Link>> fsn_links_;
  sim::FluidResource aggregate_;
};

// The whole machine. Construction wires everything; the engine must outlive
// the Machine.
class Machine {
 public:
  Machine(sim::Engine& eng, MachineConfig cfg);

  [[nodiscard]] const MachineConfig& config() const { return cfg_; }
  sim::Engine& engine() { return eng_; }

  Pset& pset(int i) { return *psets_.at(static_cast<std::size_t>(i)); }
  DaNode& da(int i) { return *das_.at(static_cast<std::size_t>(i)); }
  Storage& storage() { return *storage_; }
  [[nodiscard]] int num_psets() const { return static_cast<int>(psets_.size()); }
  [[nodiscard]] int num_das() const { return static_cast<int>(das_.size()); }

  // The MxN sink distribution used by the weak-scaling experiment (Sec.
  // V-A4): connections from compute nodes are spread across DA nodes.
  DaNode& da_for_cn(int pset_id, int cn_id) {
    const int global = pset_id * cfg_.cns_per_pset + cn_id;
    return *das_[static_cast<std::size_t>(global) % das_.size()];
  }

 private:
  sim::Engine& eng_;
  MachineConfig cfg_;
  std::vector<std::unique_ptr<Pset>> psets_;
  std::vector<std::unique_ptr<DaNode>> das_;
  std::unique_ptr<Storage> storage_;
};

}  // namespace iofwd::bgp
