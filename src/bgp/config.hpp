// Machine model configuration.
//
// Defaults describe Intrepid, the 40-rack BG/P at the Argonne Leadership
// Computing Facility, as published in the paper (Sec. II) plus a small set
// of calibration constants derived from the paper's own measurements
// (Sec. III). Every derived constant notes the measurement it comes from;
// EXPERIMENTS.md discusses the calibration in detail.
#pragma once

#include <cstdint>
#include <string>

#include "core/units.hpp"
#include "sim/time.hpp"

namespace iofwd::bgp {

struct MachineConfig {
  // ---- Topology (paper Sec. II-A) -----------------------------------------
  int num_psets = 1;       // 1 pset = 64 CNs + 1 ION
  int cns_per_pset = 64;
  int num_da_nodes = 1;    // Eureka analysis nodes participating
  int num_fsns = 128;      // file server nodes behind GPFS

  // ---- Collective (tree) network (Sec. III-A) -----------------------------
  // Raw 850 MB/s (decimal); 16 B forwarding + 10 B hardware header per 256 B
  // payload gives the paper's ~731 MiB/s effective peak.
  double tree_raw_mb_s = 850.0;
  double tree_header_bytes = 26.0;
  double tree_payload_unit_bytes = 256.0;
  sim::SimTime tree_latency_ns = 3500;  // one-way CN->ION message latency
  // Tree packet-arbitration contention: aggregate link capacity degrades
  // once more than `free` CNs stream concurrently (Fig. 4 degrades beyond
  // 32 CNs; at 64 concurrent senders the sustained rate is ~650 MiB/s, the
  // bound Fig. 9's 95% refers to).
  double tree_contention_per_flow = 0.0035;
  int tree_contention_free_flows = 32;

  // ---- Torus network (Sec. II-A: 3-D torus for CN point-to-point) ---------
  // Used by the two-phase collective-I/O extension: per-node injection
  // bandwidth (6 links x 425 MB/s on BG/P, of which a redistribution uses a
  // fraction) and an aggregate per-pset exchange capacity.
  double torus_node_mib_s = 1200.0;
  double torus_aggregate_mib_s = 16000.0;
  sim::SimTime torus_latency_ns = 2000;

  // ---- I/O node (Sec. II-A, III-B) ----------------------------------------
  int ion_cores = 4;  // 850 MHz PPC450
  std::uint64_t ion_memory_bytes = 2ull * 1024 * 1024 * 1024;
  // Cache/memory-bus contention between co-running ION tasks. Calibrated so
  // that 4 concurrent TCP senders reach the measured 791 MiB/s instead of a
  // linear 4 x 307 = 1228: 4/(1+3*g) * 307 = 791  =>  g ~ 0.184.
  double ion_share_penalty = 0.184;
  // Scheduling overhead per runnable task beyond the core count. Thread
  // switches (ZOID) are cheap; CIOD's process switches cost noticeably more
  // -- the paper attributes ZOID's ~2% edge to exactly this (Sec. III-A).
  double ion_switch_penalty_thread = 0.005;
  double ion_switch_penalty_process = 0.009;
  double ion_switch_saturation = 32.0;
  // Per-byte CPU costs on the ION (ns per byte of payload):
  // a single ION core sustains 307 MiB/s of TCP send (Fig. 5) =>
  // 1e9 / (307 * 2^20) ~ 3.106 ns/B.
  double ion_tcp_send_cost_ns_b = 3.106;
  // Collective-network reception + copy into the forwarder's buffer. Cheaper
  // than TCP (hardware-assisted tree reception); calibrated so one pset
  // sustains the measured ~680 MiB/s at 4-8 CNs (Fig. 4).
  double ion_tree_recv_cost_ns_b = 0.80;
  // Tree-reception congestion: with many CNs streaming at once the per-byte
  // reception cost inflates (interrupt dispatch and cache thrash across many
  // receiver threads). This is what makes Fig. 4 peak at 4-8 CNs and
  // degrade beyond 32: cost *= 1 + k * max(0, active_flows - free).
  double tree_recv_congestion_per_flow = 0.015;
  int tree_recv_congestion_free = 16;
  // One extra memcpy on the CIOD path (collective buffer -> shared memory
  // region -> I/O proxy process; Sec. II-B1).
  double ion_memcpy_cost_ns_b = 0.50;
  // CN-side packetization/injection cost: the compute node's single 850 MHz
  // core must ship the payload into the tree in 256 B packets, which caps
  // what one CN can inject — the reason Fig. 4 starts low at 1 CN.
  double cn_inject_cost_ns_b = 2.20;
  // The synchronous forwarders stream a request through fixed-size internal
  // buffers, so reception of chunk i+1 overlaps delivery of chunk i within
  // one operation (cut-through). CIOD's I/O proxies use 256 KiB buffers.
  std::uint64_t forward_chunk_bytes = 256ull * 1024;
  // Fixed per-operation CPU costs:
  sim::SimTime ion_wake_thread_ns = 4000;    // unblock+dispatch a ZOID thread
  sim::SimTime ion_wake_process_ns = 12000;  // unblock+dispatch a CIOD proxy
  sim::SimTime ion_syscall_ns = 1800;        // issuing the actual I/O syscall
  sim::SimTime ion_poll_pass_ns = 2500;      // one poll() pass in a worker's event loop
  sim::SimTime ion_enqueue_ns = 600;         // work-queue push/pop + bookkeeping

  // ---- External 10 GbE network (Sec. III-B) -------------------------------
  double eth_mib_s = 1190.0;          // 10 Gbps
  sim::SimTime eth_latency_ns = 30000;  // ION->switch->DA one-way

  // ---- Data-analysis nodes (Eureka; Sec. II-A) ----------------------------
  int da_cores = 8;  // dual quad-core 2 GHz Xeon
  // One DA thread sustains 1110 MiB/s (Fig. 5) => ~0.859 ns/B.
  double da_tcp_cost_ns_b = 0.859;
  double da_share_penalty = 0.02;
  double da_switch_penalty = 0.01;

  // ---- Storage (Sec. II-A; Lang et al. for aggregate numbers) -------------
  // 128 FSNs over IB to 16 DDN 9900 couplets. Per-ION view: what matters for
  // the MADbench2 experiment is that storage outruns the forwarding layer.
  double fsn_mib_s_each = 350.0;
  double storage_aggregate_mib_s = 45000.0;
  sim::SimTime storage_latency_ns = 150000;  // GPFS client + server round trip

  // ---- Forwarding protocol framing (Sec. III-A, V-A2) ---------------------
  std::uint64_t control_msg_bytes = 256;  // request/ack message size
  // CIOD/ZOID use a two-step exchange: function parameters first, then the
  // payload. This is the small-message gating factor the paper points out.
  int control_steps = 2;

  // The Intrepid defaults above.
  static MachineConfig intrepid() { return {}; }

  // A multi-ION sharded deployment at fixed total compute-node count: `ions`
  // psets splitting `total_cns` CNs evenly — the CNs -> many IONs -> FSN
  // topology the runtime cluster (src/cluster/, DESIGN.md §14) deploys, as a
  // deterministic simulation config. Shared Storage keeps modeling the FSN
  // tier, so adding IONs scales the forwarding layer against a fixed file
  // system, exactly the production question.
  static MachineConfig intrepid_cluster(int ions, int total_cns = 64) {
    MachineConfig c;
    c.num_psets = ions < 1 ? 1 : ions;
    c.cns_per_pset = total_cns / c.num_psets;
    if (c.cns_per_pset < 1) c.cns_per_pset = 1;
    return c;
  }

  // Derived: effective tree peak (payload MiB/s) after header overhead.
  [[nodiscard]] double tree_effective_peak_mib_s() const {
    const double raw_mib_s = tree_raw_mb_s * 1e6 / static_cast<double>(MiB);
    return raw_mib_s / (1.0 + tree_header_bytes / tree_payload_unit_bytes);
  }

  // Derived: the end-to-end bound the paper compares against (Sec. III-C):
  // min(sustained tree ~680, sustained external ~791) ~= 650 MiB/s.
  [[nodiscard]] double end_to_end_bound_mib_s() const;

  // Peak external throughput with n concurrent ION sender threads (Fig. 5
  // reproduction): min(NIC, effective_cores(n)/tcp_cost).
  [[nodiscard]] double external_peak_mib_s(int threads) const;

  [[nodiscard]] int total_cns() const { return num_psets * cns_per_pset; }

  // Validation: returns false (and a reason) on nonsensical configs.
  [[nodiscard]] bool validate(std::string* why = nullptr) const;
};

}  // namespace iofwd::bgp
