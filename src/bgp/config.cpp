#include "bgp/config.hpp"

#include <algorithm>
#include <cmath>

namespace iofwd::bgp {

namespace {
// Mirrors CpuPool::effective_cores for config-level predictions.
double effective_cores(int runnable, int cores, double share_penalty, double switch_penalty,
                       double switch_saturation) {
  if (runnable <= 0) return 0;
  const int on_core = std::min(runnable, cores);
  double cap = static_cast<double>(on_core) /
               (1.0 + share_penalty * static_cast<double>(on_core - 1));
  if (runnable > cores) {
    const double excess = static_cast<double>(runnable - cores);
    const double sat = switch_saturation > 0 ? excess / switch_saturation : 0.0;
    cap /= 1.0 + switch_penalty * excess / (1.0 + sat);
  }
  return cap;
}
}  // namespace

double MachineConfig::external_peak_mib_s(int threads) const {
  const double cores = effective_cores(threads, ion_cores, ion_share_penalty,
                                       ion_switch_penalty_thread, ion_switch_saturation);
  const double cpu_rate_mib_s = cores / ion_tcp_send_cost_ns_b * 1e9 / static_cast<double>(MiB);
  return std::min(eth_mib_s, cpu_rate_mib_s);
}

double MachineConfig::end_to_end_bound_mib_s() const {
  // The paper's Fig. 6 "maximum" line: min of the sustained collective
  // throughput (93% of effective peak, Sec. III-A) and the sustained
  // external throughput at the best thread count (Fig. 5).
  const double tree_sustained = 0.93 * tree_effective_peak_mib_s();
  double ext_best = 0;
  for (int t = 1; t <= ion_cores * 2; ++t) ext_best = std::max(ext_best, external_peak_mib_s(t));
  return std::min(tree_sustained, ext_best);
}

bool MachineConfig::validate(std::string* why) const {
  auto fail = [&](const char* msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (num_psets < 1) return fail("num_psets must be >= 1");
  if (cns_per_pset < 1) return fail("cns_per_pset must be >= 1");
  if (num_da_nodes < 1) return fail("num_da_nodes must be >= 1");
  if (num_fsns < 1) return fail("num_fsns must be >= 1");
  if (ion_cores < 1) return fail("ion_cores must be >= 1");
  if (tree_raw_mb_s <= 0) return fail("tree_raw_mb_s must be positive");
  if (eth_mib_s <= 0) return fail("eth_mib_s must be positive");
  if (ion_tcp_send_cost_ns_b <= 0) return fail("ion_tcp_send_cost_ns_b must be positive");
  if (ion_tree_recv_cost_ns_b < 0) return fail("ion_tree_recv_cost_ns_b must be >= 0");
  if (ion_share_penalty < 0 || ion_switch_penalty_thread < 0 || ion_switch_penalty_process < 0) {
    return fail("penalties must be >= 0");
  }
  if (control_steps < 1) return fail("control_steps must be >= 1");
  if (ion_memory_bytes == 0) return fail("ion_memory_bytes must be positive");
  return true;
}

}  // namespace iofwd::bgp
