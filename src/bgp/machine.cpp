#include "bgp/machine.hpp"

#include <cassert>
#include <stdexcept>

namespace iofwd::bgp {

namespace {

sim::LinkSpec tree_spec(const MachineConfig& cfg) {
  sim::LinkSpec s;
  s.bandwidth_mib_s = cfg.tree_raw_mb_s * 1e6 / static_cast<double>(MiB);
  s.header_bytes_per_unit = cfg.tree_header_bytes;
  s.payload_unit_bytes = cfg.tree_payload_unit_bytes;
  s.latency_ns = cfg.tree_latency_ns;
  s.contention_per_flow = cfg.tree_contention_per_flow;
  s.contention_free_flows = cfg.tree_contention_free_flows;
  return s;
}

sim::LinkSpec eth_spec(const MachineConfig& cfg) {
  sim::LinkSpec s;
  s.bandwidth_mib_s = cfg.eth_mib_s;
  s.header_bytes_per_unit = 0;  // negligible at 1 MiB frames vs the CPU cost
  s.latency_ns = cfg.eth_latency_ns;
  return s;
}

}  // namespace

IonNode::IonNode(sim::Engine& eng, const MachineConfig& cfg, int id)
    : id_(id),
      cpu_(eng,
           sim::CpuSpec{.cores = cfg.ion_cores,
                        .share_penalty = cfg.ion_share_penalty,
                        .switch_penalty = cfg.ion_switch_penalty_thread,
                        .switch_saturation = cfg.ion_switch_saturation},
           "ion" + std::to_string(id) + ".cpu"),
      nic_(eng, eth_spec(cfg), "ion" + std::to_string(id) + ".nic"),
      memory_(eng, static_cast<std::int64_t>(cfg.ion_memory_bytes)) {}

namespace {
sim::LinkSpec torus_spec(const MachineConfig& cfg) {
  sim::LinkSpec s;
  s.bandwidth_mib_s = cfg.torus_aggregate_mib_s;
  s.per_flow_cap_mib_s = cfg.torus_node_mib_s;
  s.latency_ns = cfg.torus_latency_ns;
  return s;
}
}  // namespace

Pset::Pset(sim::Engine& eng, const MachineConfig& cfg, int id)
    : id_(id),
      num_cns_(cfg.cns_per_pset),
      tree_(eng, tree_spec(cfg), "pset" + std::to_string(id) + ".tree"),
      torus_(eng, torus_spec(cfg), "pset" + std::to_string(id) + ".torus"),
      ion_(eng, cfg, id) {}

DaNode::DaNode(sim::Engine& eng, const MachineConfig& cfg, int id)
    : id_(id),
      cpu_(eng,
           sim::CpuSpec{.cores = cfg.da_cores,
                        .share_penalty = cfg.da_share_penalty,
                        .switch_penalty = cfg.da_switch_penalty},
           "da" + std::to_string(id) + ".cpu"),
      nic_(eng, eth_spec(cfg), "da" + std::to_string(id) + ".nic") {}

Storage::Storage(sim::Engine& eng, const MachineConfig& cfg)
    : eng_(eng),
      latency_ns_(cfg.storage_latency_ns),
      aggregate_(
          eng,
          [rate = mib_per_s_to_bytes_per_ns(cfg.storage_aggregate_mib_s)](int) { return rate; },
          "storage.aggregate") {
  fsn_links_.reserve(static_cast<std::size_t>(cfg.num_fsns));
  sim::LinkSpec fsn;
  fsn.bandwidth_mib_s = cfg.fsn_mib_s_each;
  for (int i = 0; i < cfg.num_fsns; ++i) {
    fsn_links_.push_back(std::make_unique<sim::Link>(eng, fsn, "fsn" + std::to_string(i)));
  }
}

sim::Proc<void> Storage::serve(int fsn, std::uint64_t bytes) {
  assert(fsn >= 0 && fsn < num_fsns());
  if (latency_ns_ > 0) co_await sim::Delay{eng_, latency_ns_};
  // The FSN's ingest link and the backing array capacity progress together.
  co_await sim::when_all(eng_, fsn_links_[static_cast<std::size_t>(fsn)]->transfer(bytes),
                         consume_aggregate(bytes));
}

sim::Proc<void> Storage::consume_aggregate(std::uint64_t bytes) {
  co_await aggregate_.consume(static_cast<double>(bytes));
}

Machine::Machine(sim::Engine& eng, MachineConfig cfg) : eng_(eng), cfg_(cfg) {
  std::string why;
  if (!cfg_.validate(&why)) {
    throw std::invalid_argument("bad MachineConfig: " + why);
  }
  psets_.reserve(static_cast<std::size_t>(cfg_.num_psets));
  for (int i = 0; i < cfg_.num_psets; ++i) {
    psets_.push_back(std::make_unique<Pset>(eng, cfg_, i));
  }
  das_.reserve(static_cast<std::size_t>(cfg_.num_da_nodes));
  for (int i = 0; i < cfg_.num_da_nodes; ++i) {
    das_.push_back(std::make_unique<DaNode>(eng, cfg_, i));
  }
  storage_ = std::make_unique<Storage>(eng, cfg_);
}

}  // namespace iofwd::bgp
