#include "rt/backend.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace iofwd::rt {

// ---------------------------------------------------------------------------
// MemBackend
// ---------------------------------------------------------------------------

Status MemBackend::open(int fd, const std::string& path) {
  std::unique_lock lock(mu_);
  if (auto it = open_.find(fd); it != open_.end()) {
    // Idempotent on the identical binding: a restarted ION replays its opens
    // over a backend whose handle table survived the crash (the PFS does not
    // die with the ION). Re-binding fd to the same path is a no-op; binding
    // it to a different path is still a caller bug.
    if (it->second->path == path) return Status::ok();
    return Status(Errc::invalid_argument, "fd already open");
  }
  auto& file = by_path_[path];
  if (!file) {
    file = std::make_shared<File>();
    file->path = path;
  }
  open_[fd] = file;
  return Status::ok();
}

Result<std::uint64_t> MemBackend::write(int fd, std::uint64_t offset,
                                        std::span<const std::byte> data) {
  std::shared_ptr<File> file;
  {
    std::shared_lock lock(mu_);
    auto it = open_.find(fd);
    if (it == open_.end()) return Status(Errc::bad_descriptor, "unknown fd");
    file = it->second;
  }
  std::unique_lock lock(mu_);  // file data guarded by the same lock
  if (file->data.size() < offset + data.size()) file->data.resize(offset + data.size());
  std::copy(data.begin(), data.end(), file->data.begin() + static_cast<std::ptrdiff_t>(offset));
  return static_cast<std::uint64_t>(data.size());
}

Result<std::uint64_t> MemBackend::read(int fd, std::uint64_t offset, std::span<std::byte> out) {
  std::shared_lock lock(mu_);
  auto it = open_.find(fd);
  if (it == open_.end()) return Status(Errc::bad_descriptor, "unknown fd");
  const auto& data = it->second->data;
  if (offset >= data.size()) return 0ull;
  const std::uint64_t n = std::min<std::uint64_t>(out.size(), data.size() - offset);
  std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(offset), n, out.begin());
  return n;
}

Status MemBackend::fsync(int fd) {
  std::shared_lock lock(mu_);
  return open_.contains(fd) ? Status::ok() : Status(Errc::bad_descriptor, "unknown fd");
}

Status MemBackend::close(int fd) {
  std::unique_lock lock(mu_);
  return open_.erase(fd) > 0 ? Status::ok() : Status(Errc::bad_descriptor, "unknown fd");
}

Result<std::uint64_t> MemBackend::size(int fd) {
  std::shared_lock lock(mu_);
  auto it = open_.find(fd);
  if (it == open_.end()) return Status(Errc::bad_descriptor, "unknown fd");
  return static_cast<std::uint64_t>(it->second->data.size());
}

std::vector<std::byte> MemBackend::snapshot(const std::string& path) const {
  std::shared_lock lock(mu_);
  auto it = by_path_.find(path);
  return it != by_path_.end() ? it->second->data : std::vector<std::byte>{};
}

// ---------------------------------------------------------------------------
// FileBackend
// ---------------------------------------------------------------------------

Result<int> FileBackend::host_fd(int fd) const {
  std::shared_lock lock(mu_);
  auto it = open_.find(fd);
  if (it == open_.end()) return Status(Errc::bad_descriptor, "unknown fd");
  return it->second;
}

Status FileBackend::open(int fd, const std::string& path) {
  if (path.find("..") != std::string::npos) {
    return Status(Errc::invalid_argument, "path escapes the backend root");
  }
  std::unique_lock lock(mu_);
  if (open_.contains(fd)) return Status(Errc::invalid_argument, "fd already open");
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  const std::string full = root_ + "/" + path;
  const int hfd = ::open(full.c_str(), O_RDWR | O_CREAT, 0644);
  if (hfd < 0) return Status(Errc::io_error, std::string("open: ") + std::strerror(errno));
  open_[fd] = hfd;
  return Status::ok();
}

Result<std::uint64_t> FileBackend::write(int fd, std::uint64_t offset,
                                         std::span<const std::byte> data) {
  auto hfd = host_fd(fd);
  if (!hfd.is_ok()) return hfd.status();
  std::size_t put = 0;
  while (put < data.size()) {
    const ssize_t r = ::pwrite(hfd.value(), data.data() + put, data.size() - put,
                               static_cast<off_t>(offset + put));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status(Errc::io_error, std::string("pwrite: ") + std::strerror(errno));
    }
    put += static_cast<std::size_t>(r);
  }
  return static_cast<std::uint64_t>(put);
}

Result<std::uint64_t> FileBackend::read(int fd, std::uint64_t offset, std::span<std::byte> out) {
  auto hfd = host_fd(fd);
  if (!hfd.is_ok()) return hfd.status();
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t r = ::pread(hfd.value(), out.data() + got, out.size() - got,
                              static_cast<off_t>(offset + got));
    if (r == 0) break;  // EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status(Errc::io_error, std::string("pread: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return static_cast<std::uint64_t>(got);
}

Status FileBackend::fsync(int fd) {
  auto hfd = host_fd(fd);
  if (!hfd.is_ok()) return hfd.status();
  if (::fsync(hfd.value()) != 0) {
    return Status(Errc::io_error, std::string("fsync: ") + std::strerror(errno));
  }
  return Status::ok();
}

Result<std::uint64_t> FileBackend::size(int fd) {
  auto hfd = host_fd(fd);
  if (!hfd.is_ok()) return hfd.status();
  struct stat st{};
  if (::fstat(hfd.value(), &st) != 0) {
    return Status(Errc::io_error, std::string("fstat: ") + std::strerror(errno));
  }
  return static_cast<std::uint64_t>(st.st_size);
}

Status FileBackend::close(int fd) {
  std::unique_lock lock(mu_);
  auto it = open_.find(fd);
  if (it == open_.end()) return Status(Errc::bad_descriptor, "unknown fd");
  ::close(it->second);
  open_.erase(it);
  return Status::ok();
}

}  // namespace iofwd::rt
