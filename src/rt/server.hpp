// IonServer: the real I/O-forwarding daemon.
//
// Pluggable execution models mirror the paper's mechanisms:
//   * thread_per_client  — ZOID's baseline: the per-client receiver thread
//     executes each operation inline and replies (synchronous).
//   * work_queue         — I/O scheduling: receivers enqueue tasks into the
//     shared FIFO; a worker pool drains it with batched multiplexing; the
//     client still blocks until completion (synchronous staging).
//   * work_queue_async   — adds asynchronous data staging: writes are
//     copied into a BML buffer and acknowledged immediately ("staged");
//     completion status is recorded in the descriptor database and
//     surfaced on the next operation on that descriptor (deferred errors),
//     on fsync, or on close.
//
// Semantics notes (documented guarantees):
//   * open/close/fsync are always synchronous (paper Sec. IV).
//   * In async mode, a read on a descriptor first drains that descriptor's
//     in-flight writes (read barrier), so read-after-write is consistent.
//   * Overlapping async writes to the same region may complete in any
//     order (as with POSIX AIO).
//   * A deferred error is returned by the next operation on the
//     descriptor, which is then NOT executed; the error is consumed.
//   * With the burst buffer enabled (ServerConfig::bb_bytes > 0), staged
//     writes additionally land in a write-back extent cache (src/bb/) that
//     serves read-your-writes directly from cached extents and drains to the
//     inner backend in the background; its flush errors follow the same
//     deferred-error rules.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include <functional>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/descriptor_db.hpp"
#include "rt/backend.hpp"
#include "rt/event_loop.hpp"
#include "rt/filter.hpp"
#include "rt/frame_assembler.hpp"
#include "rt/bml.hpp"
#include "rt/qos.hpp"
#include "rt/scheduler.hpp"
#include "rt/task_queue.hpp"
#include "rt/transport.hpp"
#include "rt/wire.hpp"

namespace iofwd::bb {
class BurstBufferBackend;
struct BurstBufferStats;
}  // namespace iofwd::bb

namespace iofwd::cluster {
class ClusterBbBudget;
}  // namespace iofwd::cluster

namespace iofwd::rt {

enum class ExecModel { thread_per_client, work_queue, work_queue_async };

[[nodiscard]] const char* to_string(ExecModel m);

struct ServerConfig {
  ExecModel exec = ExecModel::work_queue_async;
  int workers = 4;           // paper's sweet spot on a 4-core ION (Fig. 11)
  int multiplex_depth = 8;   // tasks per event-loop pass
  bool balanced_batches = true;
  // Receiver lanes (DESIGN.md §13): a fixed pool of epoll event-loop threads
  // that multiplex every pollable connection, replacing thread-per-connection
  // receive. New connections go to the lane with the fewest — the paper's
  // least-loaded-worker heuristic. 0 = min(4, hardware_concurrency). Streams
  // without a readiness fd still get a blocking receiver thread each.
  int recv_lanes = 0;
  // Per-connection bound on queued-but-unsent reply bytes (headers +
  // payloads) in the asynchronous send path (DESIGN.md §15). A connection
  // whose peer stops reading accumulates gather descriptors until this cap,
  // then is dropped (counted in server.reply.queue_full) — bounding server
  // memory against slow readers the same way the BML pool bounds receives.
  std::uint64_t send_queue_bytes = 4ull << 20;
  std::uint64_t bml_bytes = 256ull << 20;
  std::uint64_t bml_min_class = 4096;
  SizeClassPolicy bml_policy = SizeClassPolicy::pow2;
  // Burst-buffer staging cache (src/bb/): when bb_bytes > 0 the backend is
  // wrapped in a write-back extent cache with its own flusher pool, which
  // absorbs non-sequential checkpoint bursts and drains in the background.
  std::uint64_t bb_bytes = 0;  // 0 = disabled
  double bb_high_watermark = 0.75;
  double bb_low_watermark = 0.50;
  int bb_flushers = 2;
  // Cluster-wide staging budget (src/cluster/, DESIGN.md §14): when set, the
  // burst buffer reserves every cached byte against this shared accountant,
  // so the fleet's aggregate staged bytes respect one global watermark. Null
  // = standalone server (per-shard watermarks only). Must outlive the server.
  cluster::ClusterBbBudget* bb_cluster_budget = nullptr;
  // Burst-buffer write-ahead journal (DESIGN.md §16): when non-empty (and
  // bb_bytes > 0), every staged extent is journaled in this directory before
  // its ack and replayed into the cache on startup, making a shard crash
  // recoverable with zero acked-data loss. Empty = no journal.
  std::string bb_journal_dir;
  std::uint64_t bb_journal_segment_bytes = 8ull << 20;
  bool bb_journal_fsync = false;  // fdatasync per append (host-crash durability)
  // Graceful degradation (DESIGN.md §10). A writer that cannot lease BML
  // staging space within bml_wait_ms falls back to synchronous pass-through
  // execution on the receiver thread instead of blocking forever (0 = wait
  // forever, the pre-resilience behavior). A burst-buffer writer stalled
  // longer than bb_max_stall_ms bypasses the cache the same way.
  std::uint32_t bml_wait_ms = 100;
  std::uint32_t bb_max_stall_ms = 100;
  // Async staging switches to synchronous staging when the task-queue depth
  // reaches degraded_high_watermark and back once it falls to
  // degraded_low_watermark (0 = never degrade).
  std::uint64_t degraded_high_watermark = 0;
  std::uint64_t degraded_low_watermark = 0;
  // Work-queue dispatch policy (DESIGN.md §17): fifo (the paper's order,
  // default), prio (header priority classes), edf (earliest deadline_ms
  // first), fair (deficit round-robin on bytes across tenants). FIFO is
  // byte-for-byte the pre-scheduler behavior.
  SchedPolicy sched = SchedPolicy::fifo;
  std::uint64_t sched_quantum_bytes = kDefaultDrrQuantum;  // fair policy only
  // Per-tenant admission control (DESIGN.md §17): token buckets on bytes and
  // ops per tenant. A data op that exceeds its tenant's budget is not
  // rejected — it is demoted to synchronous staging exactly like the
  // queue-depth hysteresis, so the hot tenant absorbs its own backpressure.
  // Both rates zero = QoS off.
  QosConfig qos;
  // Fault hook consulted per admission decision (tenant, payload bytes);
  // returning true forces a throttle. Lets a fault::FaultPlan drive QoS
  // chaos without rt depending on the fault library (which depends on rt).
  std::function<bool(std::uint64_t, std::uint64_t)> qos_fault_hook;
  // Observability (src/obs/, DESIGN.md §11). Every server counter lives in
  // an obs::MetricRegistry under the "server." prefix; ServerStats is just a
  // snapshot view of it. A null registry means the server creates a private
  // one; pass a shared registry to aggregate several subsystems (retry, bb,
  // client) into a single namespace for analysis::metrics_table.
  obs::MetricRegistry* registry = nullptr;
  // Wall-clock Chrome-trace sink (ion_daemon --trace-out): per-op spans on
  // worker-lane tids plus queue-depth and BML-in-use counter tracks. Null =
  // tracing off (zero hot-path cost beyond one branch).
  obs::RuntimeTracer* tracer = nullptr;
  // Completed-op flight-recorder ring (dumped on SIGUSR1). 0 = disabled.
  std::size_t flight_recorder_ops = 256;
  // Highest wire-protocol version offered during hello negotiation
  // (DESIGN.md §12). kProtoVersion enables per-payload CRC32C with v1
  // clients; 0 emulates a legacy server (checksums stay off).
  std::uint16_t max_wire_version = kProtoVersion;
};

// Snapshot view over the server's metric registry, assembled by stats().
// Kept as a plain struct (deprecated as an API surface, retained so existing
// tests and benches read fields unchanged); new code should prefer
// IonServer::metrics() and the registry names in DESIGN.md §11.
struct ServerStats {
  std::uint64_t ops = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t deferred_errors = 0;
  std::uint64_t queue_batches = 0;
  std::uint64_t queue_max_depth = 0;
  std::uint64_t bml_blocked = 0;
  std::uint64_t bml_high_watermark = 0;
  // Data-filtering offload: payload bytes before/after the filter chain.
  std::uint64_t filter_bytes_in = 0;
  std::uint64_t filter_bytes_out = 0;
  // Burst-buffer cache (populated when ServerConfig::bb_bytes > 0).
  std::uint64_t bb_cached_bytes = 0;
  std::uint64_t bb_flushed_bytes = 0;
  std::uint64_t bb_backend_writes = 0;
  std::uint64_t bb_stall_ns = 0;
  double bb_hit_rate = 0.0;
  double bb_coalesce_ratio = 0.0;
  // Resilience counters (DESIGN.md §10).
  std::uint64_t deadline_expired = 0;        // ops bounced with timed_out
  std::uint64_t bml_timeouts = 0;            // bounded BML waits that expired
  std::uint64_t degraded_passthrough_ops = 0;  // writes executed BML-less, inline
  std::uint64_t degraded_sync_writes = 0;    // staged writes forced synchronous
  std::uint64_t degraded_enters = 0;         // async->sync staging transitions
  std::uint64_t degraded_ns = 0;             // time spent in sync-staging mode
  std::uint64_t bml_in_use = 0;              // leased BML bytes right now
  std::uint64_t bb_degraded_writes = 0;      // cache writes that fell through
  // Integrity counters (DESIGN.md §12).
  std::uint64_t hellos = 0;                  // version negotiations completed
  std::uint64_t header_crc_errors = 0;       // corrupted headers (client dropped)
  std::uint64_t payload_crc_errors = 0;      // corrupted payloads (op bounced)
  std::uint64_t frames_rejected = 0;         // protocol violations (client dropped)
  // Async send path (DESIGN.md §15).
  std::uint64_t replies_enqueued = 0;        // replies accepted into send queues
  std::uint64_t replies_sent = 0;            // replies fully written to the wire
  std::uint64_t reply_queue_full = 0;        // conns dropped at send_queue_bytes
  std::uint64_t reply_peer_gone = 0;         // replies dropped: peer went away
  std::uint64_t reply_sync_fallback = 0;     // replies via the blocking path
  std::uint64_t reply_payload_copy_bytes = 0;  // reply payload bytes memcpy'd
  // Scheduling/QoS (DESIGN.md §17).
  std::uint64_t qos_throttled_ops = 0;       // ops demoted by a token bucket
  std::uint64_t qos_admitted_bytes = 0;      // bytes admitted on the fast path
};

class IonServer {
 public:
  IonServer(std::unique_ptr<IoBackend> backend, ServerConfig cfg);
  ~IonServer();
  IonServer(const IonServer&) = delete;
  IonServer& operator=(const IonServer&) = delete;

  // Serve a connected stream. Pollable streams (read_readiness_fd() >= 0)
  // are registered with the least-loaded receiver lane; anything else falls
  // back to a dedicated blocking receiver thread. Replies to lane-served
  // connections whose stream also exposes write_readiness_fd() go through
  // the asynchronous send path (bounded per-connection gather queues drained
  // by the lane under EPOLLOUT, DESIGN.md §15); everything else replies via
  // the blocking write_all fallback.
  void serve(std::unique_ptr<ByteStream> stream);

  // Accept clients from a listener (UNIX or TCP) until stop() (spawns a
  // thread).
  void serve_listener(std::unique_ptr<Listener> listener);

  // Fuzz/robustness entry point (DESIGN.md §12): runs the receiver loop
  // synchronously, in the calling thread, over an in-memory stream that
  // delivers exactly `bytes` then EOF (replies are discarded). This is the
  // precise code path a hostile or bit-flipped peer reaches, minus the
  // socket — tests/fuzz/server_bytes_fuzz.cpp drives it with arbitrary
  // inputs and the checked-in corpus replays through it under ctest.
  void feed_bytes(std::span<const std::byte> bytes);

  // Install a data-filtering chain (in-situ analytics / data reduction,
  // paper Sec. VII). Must be called before clients are served; applied to
  // every forwarded write by the executing worker.
  void set_filter_chain(FilterChain chain) { filters_ = std::move(chain); }

  // Drain the queue, close client streams, join every thread. Idempotent.
  void stop();

  // Simulate a process crash (DESIGN.md §16): tear down connections and
  // threads like stop(), but DISCARD every staged burst-buffer extent
  // instead of flushing it — in-memory state dies, the write-ahead journal
  // files stay on disk as the crash image a restarted server recovers from.
  // Idempotent with stop(); whichever runs first wins.
  void crash_stop();

  // Quiesce without shutting down: wait until the task queue and every
  // in-flight worker task have drained, then flush the burst buffer.
  // Connections stay open and new ops keep flowing afterward — this is the
  // shard-aware drain a cluster uses to quiesce one ION while its siblings
  // keep serving. Callers stop issuing ops to this server first (the quiesce
  // assumption); concurrent traffic just keeps drain() polling longer.
  void drain();

  // Deprecated-style snapshot view (kept for tests/benches); assembled from
  // the metric registry plus queue/pool/burst-buffer instantaneous state.
  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServerConfig& config() const { return cfg_; }

  // The registry backing stats() — server-owned unless ServerConfig::registry
  // was set. Shared handles stay valid for the server's lifetime.
  [[nodiscard]] obs::MetricRegistry& registry() const { return *reg_; }
  // Unified point-in-time view of every metric (refreshes queue/pool gauges
  // first so the snapshot is self-contained).
  [[nodiscard]] obs::Snapshot metrics() const;
  // Completed-op ring, or nullptr when flight_recorder_ops == 0.
  [[nodiscard]] const obs::FlightRecorder* flight_recorder() const { return fr_.get(); }

  // The burst-buffer cache wrapping the backend, or nullptr when disabled.
  [[nodiscard]] const bb::BurstBufferBackend* burst_buffer() const { return bb_; }

 private:
  struct Lane;  // receiver lane: epoll loop + its connections (server.cpp)

  // Receive-side state of the op currently being reassembled. Only the one
  // lane (or blocking receiver) thread that owns the connection touches it,
  // so it needs no locking. Staging is chosen at header time — exactly where
  // the old blocking receiver chose it — so BML backpressure still lands
  // before the payload bytes are consumed.
  struct RxPending {
    enum class Staging { none, bml, heap, discard };
    FrameHeader req{};
    std::chrono::steady_clock::time_point arrival{};
    Staging staging = Staging::none;
    Buffer bml;                    // staged write payload (BML lease)
    std::vector<std::byte> heap;   // open path / degraded pass-through payload
    Status bounce;                 // discard: replied once the bytes are consumed
    bool degraded = false;         // heap staging came from a BML timeout
  };

  // One queued reply awaiting transmission: an encoded header plus a view of
  // the payload bytes, pinned by whichever lease backs them. The payload is
  // never copied onto the queue — `bml` (a pool lease moved off the read
  // path) or `bb_pin` (a burst-buffer extent pin) keeps the viewed bytes
  // alive until the last byte is accepted by the kernel; `copy` is the one
  // exception, for tiny fixed-size payloads like fstat's 8-byte size.
  struct SendEntry {
    std::array<std::byte, FrameHeader::kWireSize> hdr{};
    Buffer bml;
    std::shared_ptr<Buffer> bb_pin;
    std::vector<std::byte> copy;
    std::span<const std::byte> payload;
    std::size_t sent = 0;  // bytes of hdr+payload already accepted

    [[nodiscard]] std::size_t total() const { return FrameHeader::kWireSize + payload.size(); }
  };

  // What a reply carries and what keeps it alive (see SendEntry). Move-only
  // because it may own a BML lease.
  struct ReplyPayload {
    std::span<const std::byte> bytes{};
    Buffer bml{};
    std::shared_ptr<Buffer> bb_pin{};
    bool copy = false;  // memcpy bytes at enqueue (counted, tiny payloads only)
  };

  struct ClientConn {
    std::unique_ptr<ByteStream> stream;
    std::mutex write_mu;  // serializes sync-fallback reply frames
    // Negotiated wire version: 0 until (unless) the client sends `hello`,
    // then min(client, server). Atomic because workers stamp replies while
    // the receiver thread negotiates.
    std::atomic<std::uint16_t> version{0};
    // Tenant (client/job) id from the hello handshake's offset field; 0 for
    // v0 clients (one shared "anonymous" tenant). Keys the fair scheduler
    // and the QoS buckets. Atomic for the same negotiation race as version.
    std::atomic<std::uint64_t> tenant{0};
    // Receiver-lane state (owned by the lane/receiver thread).
    FrameAssembler assembler;
    RxPending rx;
    Lane* lane = nullptr;        // null: served by a blocking receiver thread
    std::uint64_t lane_key = 0;  // epoll registration key within that lane
    int rfd = -1;                // cached stream->read_readiness_fd()
    int wfd = -1;                // cached stream->write_readiness_fd()
    // Asynchronous send queue (DESIGN.md §15), guarded by send_mu. Entries
    // are drained by whoever holds send_mu — enqueuer or lane thread — with
    // gathered writev_some calls; on would_block the connection arms write
    // interest with its lane and the lane resumes the drain on EPOLLOUT.
    std::mutex send_mu;
    std::deque<SendEntry> sendq;
    std::uint64_t sendq_bytes = 0;    // unsent bytes queued (hdr + payload)
    bool epollout_armed = false;      // same-fd: registration is read_write
    bool shim_registered = false;     // distinct write shim fd added to loop
    bool peer_gone = false;           // sends are futile; drop new replies
  };

  struct Task {
    std::shared_ptr<ClientConn> conn;
    FrameHeader req;
    Buffer payload;            // staged write data (owned)
    bool reply_on_completion = false;  // sync staging
    bool record_in_db = false;         // async staging
    std::uint64_t db_seq = 0;
    // Arrival time at the server; the req.deadline_ms budget counts from
    // here while the task waits in the queue.
    std::chrono::steady_clock::time_point arrival{};
  };

  // Trace tid for ops executed inline on a receiver thread (thread-per-client
  // mode, degraded pass-through, open/close/fsync/fstat). Worker lanes use
  // their pool index 0..workers-1.
  static constexpr int kInlineLane = 99;

  // Receiver path (DESIGN.md §13). Lanes poll; both lane and blocking
  // receivers funnel raw bytes through the same on_bytes -> FrameAssembler ->
  // on_header/on_frame pipeline, so decode is byte-for-byte identical.
  void lane_loop(Lane& lane);
  void drop_lane_conn(Lane& lane, std::uint64_t key, ClientConn& conn, Errc reason);
  void blocking_receiver_loop(std::shared_ptr<ClientConn> conn);
  Status on_bytes(const std::shared_ptr<ClientConn>& conn, std::span<const std::byte> bytes);
  Result<FrameAssembler::Sink> on_header(
      ClientConn& conn, std::span<const std::byte, FrameHeader::kWireSize> hdr_bytes);
  Status on_frame(const std::shared_ptr<ClientConn>& conn);
  // Spawn the lane pool on first pollable connection (threads_mu_ held).
  void ensure_lanes_locked();

  void worker_loop(int lane);
  void execute_task(Task& t, int lane);
  // Apply the filter chain (if any) and issue the backend write.
  Status do_write(const FrameHeader& req, std::span<const std::byte> data);
  // True if the op's deadline budget has run out (deadline_ms > 0 only).
  [[nodiscard]] static bool past_deadline(const FrameHeader& req,
                                          std::chrono::steady_clock::time_point arrival);
  // Queue-depth hysteresis: decides (and accounts) sync-staging degradation.
  bool degraded_now(std::size_t queue_depth);
  // Scheduling metadata for a queued data op (DESIGN.md §17).
  [[nodiscard]] static SchedMeta sched_meta(const ClientConn& conn, const FrameHeader& req,
                                            std::chrono::steady_clock::time_point arrival);

  // Shared thread/connection teardown behind stop() and crash_stop(); the
  // two differ only in what happens to the burst buffer afterwards.
  void teardown_for_stop();

  // Completed-op bookkeeping: latency histogram (write/read) + flight ring.
  void observe_op(const FrameHeader& req, std::chrono::steady_clock::time_point arrival,
                  const Status& st);

  // Inline op handlers (lane or blocking-receiver thread). Payload-carrying
  // ops receive their fully assembled payload; the others run at frame
  // completion exactly as before.
  void handle_hello(ClientConn& conn, const FrameHeader& req);
  void handle_ping(ClientConn& conn, const FrameHeader& req);
  void handle_open(ClientConn& conn, const FrameHeader& req,
                   std::span<const std::byte> path_bytes,
                   std::chrono::steady_clock::time_point arrival);
  void handle_close(ClientConn& conn, const FrameHeader& req,
                    std::chrono::steady_clock::time_point arrival);
  void handle_fsync(ClientConn& conn, const FrameHeader& req,
                    std::chrono::steady_clock::time_point arrival);
  void handle_fstat(ClientConn& conn, const FrameHeader& req,
                    std::chrono::steady_clock::time_point arrival);
  void handle_write(const std::shared_ptr<ClientConn>& conn, RxPending& rx);
  void handle_read(const std::shared_ptr<ClientConn>& conn, const FrameHeader& req,
                   std::chrono::steady_clock::time_point arrival);

  // Reply path (DESIGN.md §15). enqueue_reply builds the reply header
  // (stamping the payload CRC straight from the lease bytes), then either
  // queues a gather descriptor on the connection's send queue (lane-served
  // pollable streams) or falls back to blocking write_all under write_mu.
  // Failures are accounted in server.reply.*, never returned: a reply that
  // cannot be delivered means the peer is gone or hopelessly slow, and the
  // connection is dropped.
  void enqueue_reply(ClientConn& conn, const FrameHeader& req, Status status);
  void enqueue_reply(ClientConn& conn, const FrameHeader& req, Status status,
                     ReplyPayload payload, bool staged = false);
  // Drain the queue with gathered writev_some until empty or would_block
  // (conn.send_mu must be held). Arms/disarms lane write interest.
  void drain_send_queue_locked(ClientConn& conn);
  void arm_write_interest_locked(ClientConn& conn);
  // Discard every queued entry (releases leases) and mark the peer gone.
  void abort_send_queue_locked(ClientConn& conn);
  // Lane EPOLLOUT/shim-tick dispatch: resume the drain for this connection.
  void on_send_ready(ClientConn& conn);
  // Block (politely, with poll) until the queue flushes — used for the
  // shutdown goodbye so the reply beats the connection teardown.
  void flush_send_queue_blocking(ClientConn& conn);

  // Deferred-error gate: non-ok means the op must bounce without executing.
  Status consume_deferred(int fd);
  void drain_descriptor(int fd);
  void note_completed(int fd, std::uint64_t seq, const Status& st);

  std::unique_ptr<IoBackend> backend_;
  bb::BurstBufferBackend* bb_ = nullptr;  // owned via backend_ when enabled
  ServerConfig cfg_;
  FilterChain filters_;
  BufferPool pool_;
  TaskQueue<Task> queue_;
  std::unique_ptr<QosGovernor> qos_;  // null when QoS is off

  // Observability: registry-backed counters replace the old mutex-guarded
  // ServerStats member. Handles are registered once here; the hot path only
  // does relaxed atomic adds.
  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::MetricRegistry* reg_;              // never null
  obs::RuntimeTracer* tracer_;            // null = tracing off
  std::unique_ptr<obs::FlightRecorder> fr_;
  obs::Counter& c_ops_;
  obs::Counter& c_bytes_in_;
  obs::Counter& c_bytes_out_;
  obs::Counter& c_deferred_errors_;
  obs::Counter& c_filter_bytes_in_;
  obs::Counter& c_filter_bytes_out_;
  obs::Counter& c_deadline_expired_;
  obs::Counter& c_bml_timeouts_;
  obs::Counter& c_degraded_passthrough_;
  obs::Counter& c_degraded_sync_writes_;
  obs::Counter& c_degraded_enters_;
  obs::Counter& c_degraded_ns_;
  obs::Counter& c_hellos_;
  obs::Counter& c_header_crc_errors_;
  obs::Counter& c_payload_crc_errors_;
  obs::Counter& c_frames_rejected_;
  obs::Counter& c_replies_enqueued_;
  obs::Counter& c_replies_sent_;
  obs::Counter& c_reply_queue_full_;
  obs::Counter& c_reply_peer_gone_;
  obs::Counter& c_reply_sync_fallback_;
  obs::Counter& c_reply_copy_bytes_;
  obs::Histogram& h_write_lat_us_;
  obs::Histogram& h_read_lat_us_;
  obs::Histogram& h_queue_wait_us_;  // server.sched.queue_wait_us
  // Instantaneous queue/pool state, refreshed by metrics().
  obs::Gauge& g_queue_depth_;
  obs::Gauge& g_queue_max_depth_;
  obs::Gauge& g_bml_in_use_;
  obs::Gauge& g_bml_blocked_;
  obs::Gauge& g_bml_high_watermark_;

  std::mutex db_mu_;
  std::condition_variable db_cv_;
  proto::DescriptorDb db_;

  std::mutex threads_mu_;
  std::vector<std::jthread> threads_;
  std::vector<std::shared_ptr<ClientConn>> conns_;
  std::unique_ptr<Listener> listener_;
  std::atomic<bool> stopping_{false};
  // Tasks popped from the queue but not yet executed to completion; drain()
  // waits for queue empty AND this zero before flushing the burst buffer.
  std::atomic<std::uint64_t> tasks_in_flight_{0};

  // Receiver lanes, spawned lazily on the first pollable connection
  // (guarded by threads_mu_ until then; immutable afterwards).
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::uint64_t next_conn_key_ = 1;  // threads_mu_ held

  // Sync-staging degradation state (hysteresis), guarded by degraded_mu_.
  mutable std::mutex degraded_mu_;
  bool degraded_mode_ = false;
  std::chrono::steady_clock::time_point degraded_since_{};
};

}  // namespace iofwd::rt
