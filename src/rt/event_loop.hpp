// A thin epoll(7) wrapper: the readiness core of a receiver lane.
//
// Each lane owns one EventLoop and registers every connection's readiness fd
// edge-triggered (EPOLLIN | EPOLLET | EPOLLRDHUP). wait() blocks until at
// least one fd fires (or wake()/close() is called) and reports the opaque
// 64-bit keys the caller registered — the loop never dereferences anything.
// Edge-triggered means the caller must drain each ready stream to
// would_block before the next edge will fire; that contract is documented on
// ByteStream::read_some and enforced by the lane's drain loop (DESIGN.md §13).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/status.hpp"

namespace iofwd::rt {

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // False if epoll/eventfd creation failed at construction (no fds left);
  // callers fall back to blocking receiver threads.
  [[nodiscard]] bool valid() const { return ep_fd_ >= 0 && wake_fd_ >= 0; }

  // Register `fd` edge-triggered; `key` comes back verbatim from wait().
  Status add(int fd, std::uint64_t key);
  void remove(int fd);

  // Wake a blocked wait() without any fd being ready (used by close() and
  // for shutdown nudges). Safe from any thread.
  void wake();

  // Mark the loop closed and wake it; wait() returns false from then on.
  void close();

  // Blocks until readiness or a wake; appends ready keys (possibly none, on
  // a bare wake()). Returns false once the loop is closed.
  bool wait(std::vector<std::uint64_t>& ready);

 private:
  int ep_fd_ = -1;
  int wake_fd_ = -1;  // eventfd; registered with kWakeKey
  std::atomic<bool> closed_{false};

  static constexpr std::uint64_t kWakeKey = ~std::uint64_t{0};
};

}  // namespace iofwd::rt
