// A thin epoll(7) wrapper: the readiness core of a receiver/send lane.
//
// Each lane owns one EventLoop and registers every connection's readiness fd
// edge-triggered. Read interest maps to EPOLLIN | EPOLLRDHUP, write interest
// to EPOLLOUT (DESIGN.md §15: armed only while a send queue is parked on
// would_block), and both are always EPOLLET. wait() blocks until at least one
// fd fires (or wake()/close() is called) and reports the opaque 64-bit keys
// the caller registered plus the direction(s) that fired — the loop never
// dereferences anything. Edge-triggered means the caller must drain each
// ready stream to would_block before the next edge will fire; that contract
// is documented on ByteStream::read_some/write_some and enforced by the
// lane's drain loops (DESIGN.md §13/§15).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/status.hpp"

namespace iofwd::rt {

// Which readiness direction(s) a registration asks for.
enum class Interest : std::uint8_t { read = 1, write = 2, read_write = 3 };

// One readiness report. EPOLLERR/EPOLLHUP are folded into both directions so
// a drain loop in either direction notices closure promptly.
struct Event {
  std::uint64_t key = 0;
  bool readable = false;
  bool writable = false;
};

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // False if epoll/eventfd creation failed at construction (no fds left);
  // callers fall back to blocking receiver threads.
  [[nodiscard]] bool valid() const { return ep_fd_ >= 0 && wake_fd_ >= 0; }

  // Register `fd` edge-triggered; `key` comes back verbatim from wait().
  Status add(int fd, std::uint64_t key, Interest interest = Interest::read);
  // Re-arm an existing registration with a (possibly different) interest set.
  // EPOLL_CTL_MOD re-evaluates readiness, so a condition already true at the
  // time of the call produces an event — no lost edge between a would_block
  // result and arming write interest.
  Status modify(int fd, std::uint64_t key, Interest interest);
  void remove(int fd);

  // Wake a blocked wait() without any fd being ready (used by close() and
  // for shutdown nudges). Safe from any thread.
  void wake();

  // Mark the loop closed and wake it; wait() returns false from then on.
  void close();

  // Blocks until readiness or a wake; appends ready events (possibly none,
  // on a bare wake()). Returns false once the loop is closed.
  bool wait(std::vector<Event>& ready);

 private:
  [[nodiscard]] static std::uint32_t epoll_mask(Interest interest);

  int ep_fd_ = -1;
  int wake_fd_ = -1;  // eventfd; registered with kWakeKey
  std::atomic<bool> closed_{false};

  static constexpr std::uint64_t kWakeKey = ~std::uint64_t{0};
};

}  // namespace iofwd::rt
