#include "rt/client.hpp"

#include <cstring>

namespace iofwd::rt {

Client::Client(std::unique_ptr<ByteStream> stream) : stream_(std::move(stream)) {}

Client::~Client() {
  if (stream_) stream_->close();
}

Result<Client::Reply> Client::roundtrip(FrameHeader req, std::span<const std::byte> payload) {
  std::scoped_lock lock(mu_);
  req.type = MsgType::request;
  req.seq = next_seq_++;
  // For reads the caller presets payload_len to the requested length and
  // sends no payload; for everything else it is the payload size.
  if (!payload.empty()) req.payload_len = payload.size();

  std::byte buf[FrameHeader::kWireSize];
  req.encode(std::span<std::byte, FrameHeader::kWireSize>(buf));
  if (Status st = stream_->write_all(buf, sizeof buf); !st.is_ok()) return st;
  if (!payload.empty()) {
    if (Status st = stream_->write_all(payload.data(), payload.size()); !st.is_ok()) return st;
  }

  std::byte rep_buf[FrameHeader::kWireSize];
  if (Status st = stream_->read_exact(rep_buf, sizeof rep_buf); !st.is_ok()) return st;
  auto hdr = FrameHeader::decode(std::span<const std::byte, FrameHeader::kWireSize>(rep_buf));
  if (!hdr.is_ok()) return hdr.status();
  Reply r;
  r.header = hdr.value();
  if (r.header.type != MsgType::reply || r.header.seq != req.seq) {
    return Status(Errc::protocol_error, "mismatched reply");
  }
  if (r.header.payload_len > 0) {
    r.payload.resize(r.header.payload_len);
    if (Status st = stream_->read_exact(r.payload.data(), r.payload.size()); !st.is_ok()) {
      return st;
    }
  }
  return r;
}

namespace {
Status status_of(const FrameHeader& h) {
  const auto code = static_cast<Errc>(h.status);
  return code == Errc::ok ? Status::ok() : Status(code, "");
}
}  // namespace

Status Client::open(int fd, const std::string& path) {
  FrameHeader req;
  req.op = OpCode::open;
  req.fd = fd;
  auto r = roundtrip(req, std::as_bytes(std::span(path.data(), path.size())));
  return r.is_ok() ? status_of(r.value().header) : r.status();
}

Status Client::write(int fd, std::uint64_t offset, std::span<const std::byte> data) {
  FrameHeader req;
  req.op = OpCode::write;
  req.fd = fd;
  req.offset = offset;
  auto r = roundtrip(req, data);
  if (!r.is_ok()) return r.status();
  last_staged_ = (r.value().header.flags & FrameHeader::kFlagStaged) != 0;
  return status_of(r.value().header);
}

Result<std::vector<std::byte>> Client::read(int fd, std::uint64_t offset, std::uint64_t len) {
  FrameHeader req;
  req.op = OpCode::read;
  req.fd = fd;
  req.offset = offset;
  req.payload_len = len;  // requested length travels in the header
  auto r = roundtrip(req, {});
  if (!r.is_ok()) return r.status();
  if (Status st = status_of(r.value().header); !st.is_ok()) return st;
  return std::move(r.value().payload);
}

Status Client::fsync(int fd) {
  FrameHeader req;
  req.op = OpCode::fsync;
  req.fd = fd;
  auto r = roundtrip(req, {});
  return r.is_ok() ? status_of(r.value().header) : r.status();
}

Result<std::uint64_t> Client::fstat_size(int fd) {
  FrameHeader req;
  req.op = OpCode::fstat;
  req.fd = fd;
  auto r = roundtrip(req, {});
  if (!r.is_ok()) return r.status();
  if (Status st = status_of(r.value().header); !st.is_ok()) return st;
  if (r.value().payload.size() != 8) return Status(Errc::protocol_error, "bad fstat reply");
  std::uint64_t v;
  std::memcpy(&v, r.value().payload.data(), 8);
  return v;
}

Status Client::close(int fd) {
  FrameHeader req;
  req.op = OpCode::close;
  req.fd = fd;
  auto r = roundtrip(req, {});
  return r.is_ok() ? status_of(r.value().header) : r.status();
}

Status Client::shutdown() {
  FrameHeader req;
  req.op = OpCode::shutdown;
  auto r = roundtrip(req, {});
  return r.is_ok() ? status_of(r.value().header) : r.status();
}

}  // namespace iofwd::rt
