#include "rt/client.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

namespace iofwd::rt {

Client::Client(std::unique_ptr<ByteStream> stream, ClientConfig cfg, StreamFactory factory)
    : stream_(std::move(stream)),
      cfg_(cfg),
      factory_(std::move(factory)),
      owned_registry_(cfg.registry != nullptr ? nullptr
                                              : std::make_unique<obs::MetricRegistry>()),
      reg_(cfg.registry != nullptr ? cfg.registry : owned_registry_.get()),
      c_reconnects_(reg_->counter("client.reconnects")),
      c_replays_(reg_->counter("client.replays")),
      c_timeouts_(reg_->counter("client.timeouts")),
      c_giveups_(reg_->counter("client.giveups")),
      c_header_crc_errors_(reg_->counter("client.integrity.header_crc_errors")),
      c_payload_crc_errors_(reg_->counter("client.integrity.payload_crc_errors")),
      c_request_bounces_(reg_->counter("client.integrity.request_bounces")) {
  cfg_.reconnect_attempts = std::max(0, cfg_.reconnect_attempts);
  if (cfg_.roundtrip_timeout_ms > 0) {
    wd_thread_ = std::thread([this] { watchdog_loop(); });
  }
}

Client::~Client() {
  if (wd_thread_.joinable()) {
    {
      std::scoped_lock lock(wd_mu_);
      wd_quit_ = true;
    }
    wd_cv_.notify_all();
    wd_thread_.join();
  }
  if (stream_) stream_->close();
}

// ---------------------------------------------------------------------------
// Watchdog: bounds a roundtrip by closing the stream from the outside, which
// unblocks the reader with `shutdown` (both transports guarantee this).
// ---------------------------------------------------------------------------

void Client::watchdog_loop() {
  std::unique_lock lock(wd_mu_);
  for (;;) {
    wd_cv_.wait(lock, [&] { return wd_quit_ || wd_armed_; });
    if (wd_quit_) return;
    if (wd_cv_.wait_until(lock, wd_deadline_, [&] { return wd_quit_ || !wd_armed_; })) {
      if (wd_quit_) return;
      continue;  // disarmed in time
    }
    // Deadline passed with the roundtrip still in flight: kill the stream.
    wd_fired_ = true;
    wd_armed_ = false;
    if (wd_target_ != nullptr) wd_target_->close();
  }
}

void Client::watchdog_arm() {
  if (cfg_.roundtrip_timeout_ms == 0) return;
  {
    std::scoped_lock lock(wd_mu_);
    wd_armed_ = true;
    wd_fired_ = false;
    wd_deadline_ =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(cfg_.roundtrip_timeout_ms);
    wd_target_ = stream_.get();
  }
  wd_cv_.notify_all();
}

bool Client::watchdog_disarm() {
  if (cfg_.roundtrip_timeout_ms == 0) return false;
  bool fired;
  {
    std::scoped_lock lock(wd_mu_);
    wd_armed_ = false;
    fired = wd_fired_;
    wd_fired_ = false;
    wd_target_ = nullptr;
  }
  wd_cv_.notify_all();
  return fired;
}

// ---------------------------------------------------------------------------
// Roundtrips
// ---------------------------------------------------------------------------

bool Client::connection_lost(Errc e) {
  // Transport-level failures: the reply (if any) is unrecoverable on this
  // connection, but every forwarded op is idempotent, so a fresh connection
  // may replay it. A checksum mismatch is the same class of fault — the
  // bytes, not the peer, are wrong — so corrupted replies are also redialed
  // and replayed. Protocol violations are not retried.
  return e == Errc::not_connected || e == Errc::shutdown || e == Errc::io_error ||
         e == Errc::timed_out || e == Errc::checksum_error;
}

Result<Client::Reply> Client::roundtrip_once(FrameHeader req, std::span<const std::byte> payload) {
  req.seq = next_seq_++;
  if (req.op == OpCode::hello) {
    req.version = cfg_.max_wire_version;  // advertise our best; server clamps
  } else {
    req.version = neg_version_;
    // Priority classes ride the v1 reserved byte; a v0 conversation must
    // keep it zero (the server rejects nonzero reserved bits from v0 peers).
    if (neg_version_ >= 1) {
      req.klass = std::min(cfg_.priority, kMaxPriorityClass);
    }
    if (neg_version_ >= 1 && !payload.empty()) req.stamp_payload_crc(payload);
  }

  watchdog_arm();
  auto finish = [&](Result<Reply> r) -> Result<Reply> {
    const bool fired = watchdog_disarm();
    if (fired && !r.is_ok()) {
      c_timeouts_.inc();
      return Status(Errc::timed_out, "roundtrip timed out");
    }
    return r;
  };

  std::byte buf[FrameHeader::kWireSize];
  req.encode(std::span<std::byte, FrameHeader::kWireSize>(buf));
  if (Status st = stream_->write_all(buf, sizeof buf); !st.is_ok()) return finish(st);
  if (!payload.empty()) {
    if (Status st = stream_->write_all(payload.data(), payload.size()); !st.is_ok()) {
      return finish(st);
    }
  }

  std::byte rep_buf[FrameHeader::kWireSize];
  if (Status st = stream_->read_exact(rep_buf, sizeof rep_buf); !st.is_ok()) return finish(st);
  auto hdr = FrameHeader::decode(std::span<const std::byte, FrameHeader::kWireSize>(rep_buf));
  if (!hdr.is_ok()) {
    if (hdr.code() == Errc::checksum_error) c_header_crc_errors_.inc();
    return finish(hdr.status());
  }
  Reply r;
  r.header = hdr.value();
  if (r.header.type != MsgType::reply || r.header.seq != req.seq) {
    return finish(Status(Errc::protocol_error, "mismatched reply"));
  }
  if (r.header.payload_len > 0) {
    r.payload.resize(r.header.payload_len);
    if (Status st = stream_->read_exact(r.payload.data(), r.payload.size()); !st.is_ok()) {
      return finish(st);
    }
  }
  // Verify the reply payload against its checksum (flag-driven: a v0 server
  // never sets kFlagPayloadCrc and is accepted unchecked). A mismatch is a
  // transport fault — the caller redials and replays the idempotent op.
  if (!r.header.payload_crc_ok(r.payload)) {
    c_payload_crc_errors_.inc();
    return finish(Status(Errc::checksum_error, "reply payload crc mismatch"));
  }
  return finish(std::move(r));
}

Status Client::hello_locked() {
  if (hello_done_ || cfg_.max_wire_version == 0) return Status::ok();
  FrameHeader req;
  req.type = MsgType::request;
  req.op = OpCode::hello;
  req.deadline_ms = cfg_.deadline_ms;
  // hello has no file offset; the field carries the tenant id (§17).
  req.offset = cfg_.tenant;
  auto r = roundtrip_once(req, {});
  if (!r.is_ok()) return r.status();
  const auto code = static_cast<Errc>(r.value().header.status);
  if (code != Errc::ok) return Status(code, "hello rejected");
  neg_version_ = std::min(r.value().header.version, cfg_.max_wire_version);
  hello_done_ = true;
  return Status::ok();
}

Status Client::reconnect_locked(int attempt) {
  // Capped exponential backoff before dialing again.
  if (attempt >= 1 && cfg_.reconnect_backoff_ms > 0) {
    const std::uint64_t shift = static_cast<std::uint64_t>(std::min(attempt - 1, 16));
    const std::uint64_t backoff =
        std::min<std::uint64_t>(static_cast<std::uint64_t>(cfg_.reconnect_backoff_ms) << shift,
                                cfg_.reconnect_backoff_max_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
  auto fresh = factory_();
  if (!fresh.is_ok()) return fresh.status();
  stream_ = std::move(fresh).value();

  // Each connection negotiates its own wire version — redo the hello before
  // anything else so the open replays below already travel checksummed.
  hello_done_ = false;
  neg_version_ = 0;
  if (Status st = hello_locked(); !st.is_ok()) {
    stream_->close();
    stream_.reset();
    return st;
  }

  // Replay the descriptor table. The server's descriptor database survives
  // the dead connection, so "fd already open" means the descriptor (and any
  // deferred state) is still there — that is success, not failure.
  for (const auto& [fd, path] : open_paths_) {
    FrameHeader req;
    req.type = MsgType::request;
    req.op = OpCode::open;
    req.fd = fd;
    req.deadline_ms = cfg_.deadline_ms;
    req.payload_len = path.size();
    auto r = roundtrip_once(req, std::as_bytes(std::span(path.data(), path.size())));
    if (!r.is_ok()) {
      stream_->close();
      stream_.reset();
      return r.status();
    }
    const auto code = static_cast<Errc>(r.value().header.status);
    if (code != Errc::ok && code != Errc::invalid_argument) {
      return Status(code, "open replay failed");
    }
  }
  c_reconnects_.inc();
  return Status::ok();
}

Result<Client::Reply> Client::roundtrip(FrameHeader req, std::span<const std::byte> payload) {
  std::scoped_lock lock(mu_);
  req.type = MsgType::request;
  if (req.deadline_ms == 0) req.deadline_ms = cfg_.deadline_ms;
  // For reads the caller presets payload_len to the requested length and
  // sends no payload; for everything else it is the payload size.
  if (!payload.empty()) req.payload_len = payload.size();

  const bool reconnectable = factory_ != nullptr && req.op != OpCode::shutdown;
  const int max_tries = 1 + (reconnectable ? cfg_.reconnect_attempts : 0);
  Status last(Errc::not_connected, "no stream");
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    if (attempt > 0 || !stream_) {
      if (!reconnectable) break;
      if (Status st = reconnect_locked(attempt); !st.is_ok()) {
        last = st;
        if (stream_) {
          stream_->close();
          stream_.reset();
        }
        continue;
      }
    }
    // First traffic on a fresh initial stream: negotiate the wire version
    // (reconnect_locked already did this for redialed streams; shutdown
    // needs no negotiation — it carries no payload either way).
    if (req.op != OpCode::shutdown) {
      if (Status st = hello_locked(); !st.is_ok()) {
        last = st;
        if (!reconnectable || !connection_lost(st.code())) return st;
        stream_->close();
        stream_.reset();
        continue;
      }
    }
    auto r = roundtrip_once(req, payload);
    if (r.is_ok()) {
      // A checksum_error *status* means our request arrived corrupted and
      // the server bounced it without executing. The connection itself is
      // fine, but redial-and-replay is the one recovery path that handles
      // every corruption uniformly.
      if (static_cast<Errc>(r.value().header.status) == Errc::checksum_error &&
          reconnectable) {
        c_request_bounces_.inc();
        last = Status(Errc::checksum_error, "request bounced by server");
        stream_->close();
        stream_.reset();
        continue;
      }
      if (attempt > 0) c_replays_.inc();
      return r;
    }
    last = r.status();
    if (!reconnectable || !connection_lost(last.code())) return last;
    // The connection is gone; drop it so the next attempt redials.
    stream_->close();
    stream_.reset();
  }
  c_giveups_.inc();
  return Status(last.code(), "reconnect attempts exhausted: " + last.to_string());
}

namespace {
Status status_of(const FrameHeader& h) {
  const auto code = static_cast<Errc>(h.status);
  return code == Errc::ok ? Status::ok() : Status(code, "");
}
}  // namespace

Status Client::open(int fd, const std::string& path) {
  FrameHeader req;
  req.op = OpCode::open;
  req.fd = fd;
  auto r = roundtrip(req, std::as_bytes(std::span(path.data(), path.size())));
  if (!r.is_ok()) return r.status();
  Status st = status_of(r.value().header);
  if (st.is_ok()) {
    std::scoped_lock lock(mu_);
    open_paths_[fd] = path;
  }
  return st;
}

Status Client::write(int fd, std::uint64_t offset, std::span<const std::byte> data) {
  FrameHeader req;
  req.op = OpCode::write;
  req.fd = fd;
  req.offset = offset;
  auto r = roundtrip(req, data);
  if (!r.is_ok()) return r.status();
  last_staged_ = (r.value().header.flags & FrameHeader::kFlagStaged) != 0;
  return status_of(r.value().header);
}

Result<std::vector<std::byte>> Client::read(int fd, std::uint64_t offset, std::uint64_t len) {
  FrameHeader req;
  req.op = OpCode::read;
  req.fd = fd;
  req.offset = offset;
  req.payload_len = len;  // requested length travels in the header
  auto r = roundtrip(req, {});
  if (!r.is_ok()) return r.status();
  if (Status st = status_of(r.value().header); !st.is_ok()) return st;
  return std::move(r.value().payload);
}

Status Client::fsync(int fd) {
  FrameHeader req;
  req.op = OpCode::fsync;
  req.fd = fd;
  auto r = roundtrip(req, {});
  return r.is_ok() ? status_of(r.value().header) : r.status();
}

Result<std::uint64_t> Client::fstat_size(int fd) {
  FrameHeader req;
  req.op = OpCode::fstat;
  req.fd = fd;
  auto r = roundtrip(req, {});
  if (!r.is_ok()) return r.status();
  if (Status st = status_of(r.value().header); !st.is_ok()) return st;
  if (r.value().payload.size() != 8) return Status(Errc::protocol_error, "bad fstat reply");
  std::uint64_t v;
  std::memcpy(&v, r.value().payload.data(), 8);
  return v;
}

Status Client::close(int fd) {
  FrameHeader req;
  req.op = OpCode::close;
  req.fd = fd;
  auto r = roundtrip(req, {});
  {
    std::scoped_lock lock(mu_);
    open_paths_.erase(fd);
  }
  return r.is_ok() ? status_of(r.value().header) : r.status();
}

Status Client::shutdown() {
  FrameHeader req;
  req.op = OpCode::shutdown;
  auto r = roundtrip(req, {});
  return r.is_ok() ? status_of(r.value().header) : r.status();
}

Status Client::ping() {
  FrameHeader req;
  req.op = OpCode::ping;
  // Goes through roundtrip(), so a ping against a recovered-but-disconnected
  // server re-dials via the factory and replays opens — success here means
  // the connection is fully usable again, which is what the half-open
  // breaker probe needs to know.
  auto r = roundtrip(req, {});
  return r.is_ok() ? status_of(r.value().header) : r.status();
}

ClientStats Client::stats() const {
  ClientStats s;
  s.reconnects = c_reconnects_.value();
  s.replays = c_replays_.value();
  s.timeouts = c_timeouts_.value();
  s.giveups = c_giveups_.value();
  s.header_crc_errors = c_header_crc_errors_.value();
  s.payload_crc_errors = c_payload_crc_errors_.value();
  s.request_bounces = c_request_bounces_.value();
  return s;
}

std::uint16_t Client::negotiated_version() const {
  std::scoped_lock lock(mu_);
  return neg_version_;
}

}  // namespace iofwd::rt
