// Incremental frame reassembly for event-driven receivers (DESIGN.md §13).
//
// An epoll lane reads whatever bytes a socket has and must rebuild frames
// across arbitrary read boundaries: a header may arrive one byte at a time,
// a payload across many readiness events. FrameAssembler is that state
// machine. It is deliberately policy-free: it buffers exactly one header,
// asks the caller (via on_header) where the payload bytes should land —
// a BML buffer, heap memory, or nowhere (an oversize bounce swallows them) —
// and fires on_frame once the payload is complete. Header decoding,
// validation, counters, and dispatch all stay in the caller, so the blocking
// receiver path (feed_bytes, non-pollable streams) reuses the identical
// byte-for-byte decode by pumping the same feed() from read_exact chunks.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>

#include "core/status.hpp"
#include "rt/wire.hpp"

namespace iofwd::rt {

class FrameAssembler {
 public:
  // Where the payload bytes of the current frame go. dest == nullptr means
  // "consume len bytes but store nothing" (bounced oversize writes).
  struct Sink {
    std::uint64_t len = 0;
    std::byte* dest = nullptr;
  };

  // Bytes required to finish the current unit (header or payload). Never 0:
  // a zero-length payload completes inside feed() without a new read. Used
  // by the blocking receiver to size its next read_exact.
  [[nodiscard]] std::size_t needed() const {
    if (!in_payload_) return FrameHeader::kWireSize - have_;
    return static_cast<std::size_t>(sink_.len - filled_);
  }

  // Drop any partial frame (connection teardown / reuse).
  void reset() {
    have_ = 0;
    filled_ = 0;
    in_payload_ = false;
    sink_ = {};
  }

  // Pump bytes through the state machine.
  //   on_header: Result<Sink>(std::span<const std::byte, kWireSize>) —
  //     decode + validate + choose payload staging; an error status drops
  //     the connection (the caller has already classified and counted it).
  //   on_frame: Status() — a full frame (header + payload) is assembled;
  //     a non-ok status stops this connection (shutdown opcode, stop()).
  // Returns ok when all bytes were consumed and more are welcome.
  template <typename OnHeader, typename OnFrame>
  Status feed(std::span<const std::byte> bytes, OnHeader&& on_header, OnFrame&& on_frame) {
    std::size_t pos = 0;
    while (true) {
      if (!in_payload_) {
        const std::size_t take =
            std::min(bytes.size() - pos, FrameHeader::kWireSize - have_);
        std::memcpy(header_.data() + have_, bytes.data() + pos, take);
        have_ += take;
        pos += take;
        if (have_ < FrameHeader::kWireSize) return Status::ok();  // need more bytes
        auto plan =
            on_header(std::span<const std::byte, FrameHeader::kWireSize>(header_));
        if (!plan.is_ok()) return plan.status();
        sink_ = plan.value();
        filled_ = 0;
        have_ = 0;
        in_payload_ = true;
      }
      const std::uint64_t want = sink_.len - filled_;
      const std::size_t take =
          static_cast<std::size_t>(std::min<std::uint64_t>(want, bytes.size() - pos));
      if (sink_.dest != nullptr && take > 0) {
        std::memcpy(sink_.dest + filled_, bytes.data() + pos, take);
      }
      filled_ += take;
      pos += take;
      if (filled_ < sink_.len) return Status::ok();  // payload still partial
      in_payload_ = false;
      if (Status st = on_frame(); !st.is_ok()) return st;
      if (pos >= bytes.size()) return Status::ok();
    }
  }

 private:
  std::array<std::byte, FrameHeader::kWireSize> header_{};
  std::size_t have_ = 0;
  Sink sink_{};
  std::uint64_t filled_ = 0;
  bool in_payload_ = false;
};

}  // namespace iofwd::rt
