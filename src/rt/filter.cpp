#include "rt/filter.hpp"

#include <algorithm>
#include <cstring>

namespace iofwd::rt {

// ---------------------------------------------------------------------------
// DownsampleFilter
// ---------------------------------------------------------------------------

DownsampleFilter::DownsampleFilter(std::uint32_t stride, std::uint32_t element_bytes)
    : stride_(std::max(1u, stride)), element_bytes_(std::max(1u, element_bytes)) {}

std::string DownsampleFilter::name() const {
  return "downsample/" + std::to_string(stride_);
}

Status DownsampleFilter::apply(int /*fd*/, std::uint64_t /*offset*/,
                               std::vector<std::byte>& data) {
  if (stride_ == 1) return Status::ok();  // passthrough
  if (data.size() % element_bytes_ != 0) {
    return Status(Errc::invalid_argument, "payload is not a whole number of elements");
  }
  const std::size_t elems = data.size() / element_bytes_;
  std::vector<std::byte> out;
  out.reserve((elems / stride_ + 1) * element_bytes_);
  for (std::size_t e = 0; e < elems; e += stride_) {
    const auto* p = data.data() + e * element_bytes_;
    out.insert(out.end(), p, p + element_bytes_);
  }
  data = std::move(out);
  return Status::ok();
}

// ---------------------------------------------------------------------------
// ZeroRleFilter
// ---------------------------------------------------------------------------

namespace {
constexpr std::uint32_t kZeroRunFlag = 0x80000000u;
constexpr std::uint32_t kMaxRun = 0x7fffffffu;

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const auto n = out.size();
  out.resize(n + 4);
  std::memcpy(out.data() + n, &v, 4);
}
}  // namespace

Status ZeroRleFilter::apply(int /*fd*/, std::uint64_t /*offset*/,
                            std::vector<std::byte>& data) {
  std::span<const std::byte> in(data);
  std::vector<std::byte> out;
  out.reserve(in.size() / 4 + 16);
  std::size_t i = 0;
  while (i < in.size()) {
    if (in[i] == std::byte{0}) {
      std::size_t run = 0;
      while (i + run < in.size() && in[i + run] == std::byte{0} && run < kMaxRun) ++run;
      put_u32(out, static_cast<std::uint32_t>(run) | kZeroRunFlag);
      i += run;
    } else {
      std::size_t run = 0;
      while (i + run < in.size() && in[i + run] != std::byte{0} && run < kMaxRun) ++run;
      put_u32(out, static_cast<std::uint32_t>(run));
      out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(i),
                 in.begin() + static_cast<std::ptrdiff_t>(i + run));
      i += run;
    }
  }
  bytes_in_ += in.size();
  bytes_out_ += out.size();
  data = std::move(out);
  return Status::ok();
}

Result<std::vector<std::byte>> ZeroRleFilter::decode(std::span<const std::byte> in) {
  std::vector<std::byte> out;
  std::size_t i = 0;
  while (i < in.size()) {
    if (i + 4 > in.size()) return Status(Errc::protocol_error, "truncated RLE header");
    std::uint32_t v;
    std::memcpy(&v, in.data() + i, 4);
    i += 4;
    const std::uint32_t run = v & kMaxRun;
    if ((v & kZeroRunFlag) != 0) {
      out.insert(out.end(), run, std::byte{0});
    } else {
      if (i + run > in.size()) return Status(Errc::protocol_error, "truncated RLE literal");
      out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(i),
                 in.begin() + static_cast<std::ptrdiff_t>(i + run));
      i += run;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// MomentsFilter
// ---------------------------------------------------------------------------

Status MomentsFilter::apply(int /*fd*/, std::uint64_t /*offset*/,
                            std::vector<std::byte>& data) {
  const std::span<const std::byte> in(data);  // observe only
  const std::size_t n = in.size() / sizeof(double);
  if (n == 0) return Status::ok();
  double lo = 0, hi = 0, sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double v;
    std::memcpy(&v, in.data() + i * sizeof(double), sizeof(double));
    if (i == 0) {
      lo = hi = v;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    sum += v;
  }
  std::scoped_lock lock(mu_);
  if (!any_) {
    m_.min = lo;
    m_.max = hi;
    any_ = true;
  } else {
    m_.min = std::min(m_.min, lo);
    m_.max = std::max(m_.max, hi);
  }
  m_.sum += sum;
  m_.count += n;
  return Status::ok();
}

MomentsFilter::Moments MomentsFilter::moments() const {
  std::scoped_lock lock(mu_);
  return m_;
}

// ---------------------------------------------------------------------------
// FilterChain
// ---------------------------------------------------------------------------

Status FilterChain::apply(int fd, std::uint64_t offset, std::vector<std::byte>& data) const {
  std::uint64_t off = offset;
  for (const auto& f : filters_) {
    if (Status st = f->apply(fd, off, data); !st.is_ok()) return st;
    off = f->map_offset(off);
  }
  return Status::ok();
}

std::uint64_t FilterChain::map_offset(std::uint64_t offset) const {
  std::uint64_t off = offset;
  for (const auto& f : filters_) off = f->map_offset(off);
  return off;
}

}  // namespace iofwd::rt
