#include "rt/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

namespace iofwd::rt {

EventLoop::EventLoop() {
  ep_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep_fd_ < 0) return;
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(ep_fd_);
    ep_fd_ = -1;
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: a pending wake survives re-entry
  ev.data.u64 = kWakeKey;
  if (::epoll_ctl(ep_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(ep_fd_);
    wake_fd_ = ep_fd_ = -1;
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (ep_fd_ >= 0) ::close(ep_fd_);
}

std::uint32_t EventLoop::epoll_mask(Interest interest) {
  std::uint32_t events = EPOLLET;
  if (interest == Interest::read || interest == Interest::read_write) {
    events |= EPOLLIN | EPOLLRDHUP;
  }
  if (interest == Interest::write || interest == Interest::read_write) {
    events |= EPOLLOUT;
  }
  return events;
}

Status EventLoop::add(int fd, std::uint64_t key, Interest interest) {
  epoll_event ev{};
  ev.events = epoll_mask(interest);
  ev.data.u64 = key;
  if (::epoll_ctl(ep_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status(Errc::io_error, std::string("epoll_ctl(ADD): ") + std::strerror(errno));
  }
  return Status::ok();
}

Status EventLoop::modify(int fd, std::uint64_t key, Interest interest) {
  epoll_event ev{};
  ev.events = epoll_mask(interest);
  ev.data.u64 = key;
  if (::epoll_ctl(ep_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status(Errc::io_error, std::string("epoll_ctl(MOD): ") + std::strerror(errno));
  }
  return Status::ok();
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(ep_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::close() {
  closed_.store(true, std::memory_order_release);
  wake();
}

bool EventLoop::wait(std::vector<Event>& ready) {
  if (closed_.load(std::memory_order_acquire)) return false;
  std::array<epoll_event, 64> evs{};
  int n = 0;
  do {
    n = ::epoll_wait(ep_fd_, evs.data(), static_cast<int>(evs.size()), -1);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return false;  // epoll itself broke; treat as closed
  for (int i = 0; i < n; ++i) {
    const epoll_event& ev = evs[static_cast<std::size_t>(i)];
    if (ev.data.u64 == kWakeKey) {
      std::uint64_t v = 0;
      [[maybe_unused]] const ssize_t r = ::read(wake_fd_, &v, sizeof v);
      continue;
    }
    Event e;
    e.key = ev.data.u64;
    // Errors and hangups count as both directions: whichever drain loop runs
    // next hits the failure and drops the connection.
    const bool broken = (ev.events & (EPOLLERR | EPOLLHUP)) != 0;
    e.readable = broken || (ev.events & (EPOLLIN | EPOLLRDHUP)) != 0;
    e.writable = broken || (ev.events & EPOLLOUT) != 0;
    ready.push_back(e);
  }
  return !closed_.load(std::memory_order_acquire);
}

}  // namespace iofwd::rt
