// AggregatingBackend: ION-side write-back aggregation.
//
// Isaila et al. [8 in the paper] showed that aggregating data on the I/O
// node to issue larger writes improves parallel-file-system performance —
// but used a single aggregation thread, which cannot saturate the external
// network. Here aggregation is a backend *decorator*: it composes with the
// worker-pool execution model, so any number of workers feed it and the
// flushes themselves are executed by the calling worker.
//
// Behaviour:
//   * strictly sequential appends to the current per-descriptor window are
//     coalesced in a buffer of `window_bytes`;
//   * a write that is not contiguous with the window, a full window, fsync,
//     and close all flush;
//   * reads flush first (read-your-writes).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "rt/backend.hpp"

namespace iofwd::rt {

class AggregatingBackend final : public IoBackend {
 public:
  AggregatingBackend(std::unique_ptr<IoBackend> inner, std::uint64_t window_bytes);

  Status open(int fd, const std::string& path) override;
  Result<std::uint64_t> write(int fd, std::uint64_t offset,
                              std::span<const std::byte> data) override;
  Result<std::uint64_t> read(int fd, std::uint64_t offset, std::span<std::byte> out) override;
  Status fsync(int fd) override;
  Status close(int fd) override;
  Result<std::uint64_t> size(int fd) override;

  // Observability: how many writes reached the inner backend vs arrived.
  [[nodiscard]] std::uint64_t writes_in() const;
  [[nodiscard]] std::uint64_t writes_out() const;

  [[nodiscard]] IoBackend& inner() { return *inner_; }

 private:
  struct Window {
    std::uint64_t base = 0;  // file offset of buf[0]
    std::vector<std::byte> buf;
    [[nodiscard]] bool empty() const { return buf.empty(); }
    [[nodiscard]] std::uint64_t end() const { return base + buf.size(); }
  };

  Status flush_locked(int fd);  // mu_ held

  std::unique_ptr<IoBackend> inner_;
  std::uint64_t window_bytes_;

  mutable std::mutex mu_;
  std::map<int, Window> windows_;
  std::uint64_t writes_in_ = 0;
  std::uint64_t writes_out_ = 0;
};

}  // namespace iofwd::rt
