// Pluggable I/O scheduling for the server work queue (DESIGN.md §17).
//
// The paper's forwarding queue is strictly FIFO; once many compute-node
// clients share one ION that is a fairness liability — one hot client's
// backlog sits in front of everyone else's ops. This header promotes the
// dispatch order to a first-class extension point: TaskQueue owns a
// Scheduler and every push carries a SchedMeta describing the op (tenant,
// priority class, deadline, bytes), so the queue's dispatch order is policy.
//
// Four policies ship:
//   fifo  — arrival order (the paper's behavior; the default).
//   prio  — strict priority classes from the frame header (kMaxPriorityClass
//           highest), FIFO within a class.
//   edf   — earliest deadline first on arrival + deadline_ms; ops without a
//           deadline run after every op that has one, FIFO among themselves.
//   fair  — deficit round-robin on bytes across tenants: each active tenant
//           in turn spends a byte quantum, so a tenant's share of served
//           bytes tracks 1/N(active) regardless of its arrival rate.
//
// Schedulers are deliberately NOT thread-safe: TaskQueue drives one under
// its own mutex. That keeps policies trivially testable against reference
// models (tests/rt/sched_model_test.cpp) — a policy is a pure data
// structure, and the conformance suite replays randomized op streams
// against a golden model of each.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rt/wire.hpp"

namespace iofwd::rt {

enum class SchedPolicy : std::uint8_t {
  fifo = 0,
  prio = 1,
  edf = 2,
  fair = 3,
};

[[nodiscard]] inline const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::fifo: return "fifo";
    case SchedPolicy::prio: return "prio";
    case SchedPolicy::edf: return "edf";
    case SchedPolicy::fair: return "fair";
  }
  return "?";
}

// Parses a policy name; accepts "priority" as an alias for "prio" (the name
// proto/sched_policy.hpp historically used for the simulator's policy knob).
[[nodiscard]] inline std::optional<SchedPolicy> parse_sched_policy(const std::string& s) {
  if (s == "fifo") return SchedPolicy::fifo;
  if (s == "prio" || s == "priority") return SchedPolicy::prio;
  if (s == "edf") return SchedPolicy::edf;
  if (s == "fair") return SchedPolicy::fair;
  return std::nullopt;
}

// Everything a policy may order by. Fields default to the values a
// metadata-less push implies (tenant 0, class 0, no deadline, zero bytes,
// arrival = push time), so FIFO callers need not build one.
struct SchedMeta {
  std::uint64_t tenant = 0;    // client/job id from the hello handshake
  std::uint8_t klass = 0;      // frame priority class, <= kMaxPriorityClass
  std::uint32_t deadline_ms = 0;  // per-op budget; 0 = none
  std::uint64_t bytes = 0;     // payload size, the DRR cost unit
  std::chrono::steady_clock::time_point arrival{};  // deadline anchor
};

// Default byte quantum one tenant may spend per DRR visit. Large enough
// that a 256 KiB op (the paper's sweet-spot transfer) fits in one credit,
// small enough that a tenant with a deep backlog yields every ~one op.
inline constexpr std::uint64_t kDefaultDrrQuantum = 256u << 10;

// Dispatch-order policy under TaskQueue. Not thread-safe — the owning
// queue serializes access. pop() on an empty scheduler is forbidden
// (callers check size() under the same lock).
template <typename T>
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual void push(const SchedMeta& meta, T item) = 0;
  [[nodiscard]] virtual T pop() = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual SchedPolicy policy() const = 0;
};

// Arrival order. This is exactly the deque the queue used before the
// scheduler existed, so the default config is behavior-compatible.
template <typename T>
class FifoScheduler final : public Scheduler<T> {
 public:
  void push(const SchedMeta&, T item) override { q_.push_back(std::move(item)); }
  T pop() override {
    T v = std::move(q_.front());
    q_.pop_front();
    return v;
  }
  [[nodiscard]] std::size_t size() const override { return q_.size(); }
  [[nodiscard]] SchedPolicy policy() const override { return SchedPolicy::fifo; }

 private:
  std::deque<T> q_;
};

// Strict priority classes, highest class first, FIFO within a class. A
// steady stream of high-class ops CAN starve lower classes — that is the
// policy's contract; tenants needing a floor use `fair`.
template <typename T>
class PriorityScheduler final : public Scheduler<T> {
 public:
  void push(const SchedMeta& meta, T item) override {
    const std::size_t k = std::min<std::size_t>(meta.klass, kMaxPriorityClass);
    classes_[k].push_back(std::move(item));
    ++size_;
  }
  T pop() override {
    for (std::size_t k = kMaxPriorityClass + 1; k-- > 0;) {
      if (!classes_[k].empty()) {
        T v = std::move(classes_[k].front());
        classes_[k].pop_front();
        --size_;
        return v;
      }
    }
    __builtin_unreachable();
  }
  [[nodiscard]] std::size_t size() const override { return size_; }
  [[nodiscard]] SchedPolicy policy() const override { return SchedPolicy::prio; }

 private:
  std::array<std::deque<T>, kMaxPriorityClass + 1> classes_;
  std::size_t size_ = 0;
};

// Earliest deadline first on the absolute deadline (arrival + deadline_ms).
// Ops without a deadline sort after every op with one; equal deadlines tie-
// break on push order, so a deadline-free stream degenerates to FIFO. A
// binary min-heap (std::push_heap over a vector) rather than a
// priority_queue, because tasks are move-only.
template <typename T>
class EdfScheduler final : public Scheduler<T> {
 public:
  void push(const SchedMeta& meta, T item) override {
    Entry e;
    e.deadline_us = deadline_key(meta);
    e.seq = next_seq_++;
    e.item = std::move(item);
    heap_.push_back(std::move(e));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  T pop() override {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    T v = std::move(heap_.back().item);
    heap_.pop_back();
    return v;
  }
  [[nodiscard]] std::size_t size() const override { return heap_.size(); }
  [[nodiscard]] SchedPolicy policy() const override { return SchedPolicy::edf; }

  // The sort key: microseconds-since-epoch of the absolute deadline, or
  // "never" when the op carries none. Exposed so the reference model in the
  // conformance test computes keys identically.
  [[nodiscard]] static std::uint64_t deadline_key(const SchedMeta& meta) {
    if (meta.deadline_ms == 0) return UINT64_MAX;
    const auto abs = meta.arrival + std::chrono::milliseconds(meta.deadline_ms);
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(abs.time_since_epoch()).count());
  }

 private:
  struct Entry {
    std::uint64_t deadline_us = 0;
    std::uint64_t seq = 0;
    T item;
  };
  // std::push_heap builds a max-heap; "later deadline sorts as greater"
  // therefore keeps the EARLIEST deadline at the top.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.deadline_us != b.deadline_us) return a.deadline_us > b.deadline_us;
      return a.seq > b.seq;
    }
  };
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

// Deficit round-robin on bytes across tenants. Each tenant owns a FIFO
// backlog; active tenants rotate, and on its first visit of a round a
// tenant is credited `quantum` bytes of deficit. It serves ops while the
// deficit covers the head op's bytes, then rotates. A tenant that empties
// forfeits its remaining deficit (work-conserving: an idle tenant cannot
// bank credit and later burst past its share).
template <typename T>
class DrrScheduler final : public Scheduler<T> {
 public:
  explicit DrrScheduler(std::uint64_t quantum_bytes = kDefaultDrrQuantum)
      : quantum_(std::max<std::uint64_t>(1, quantum_bytes)) {}

  void push(const SchedMeta& meta, T item) override {
    Tenant& t = tenants_[meta.tenant];
    t.q.emplace_back(std::max<std::uint64_t>(1, meta.bytes), std::move(item));
    ++size_;
    if (!t.in_active) {
      t.in_active = true;
      t.credited = false;
      active_.push_back(meta.tenant);
    }
  }

  T pop() override {
    for (;;) {
      const std::uint64_t id = active_.front();
      Tenant& t = tenants_[id];
      if (!t.credited) {
        t.credited = true;
        t.deficit += quantum_;
      }
      const std::uint64_t cost = t.q.front().first;
      if (t.deficit >= cost) {
        t.deficit -= cost;
        T v = std::move(t.q.front().second);
        t.q.pop_front();
        --size_;
        if (t.q.empty()) {
          // Forfeit leftover credit and leave the rotation.
          t.deficit = 0;
          t.in_active = false;
          t.credited = false;
          active_.pop_front();
        }
        return v;
      }
      // Quantum exhausted: rotate to the back, keep the deficit, and take a
      // fresh quantum on the next visit.
      t.credited = false;
      active_.pop_front();
      active_.push_back(id);
    }
  }

  [[nodiscard]] std::size_t size() const override { return size_; }
  [[nodiscard]] SchedPolicy policy() const override { return SchedPolicy::fair; }
  [[nodiscard]] std::uint64_t quantum_bytes() const { return quantum_; }

 private:
  struct Tenant {
    std::deque<std::pair<std::uint64_t, T>> q;  // (bytes, item)
    std::uint64_t deficit = 0;
    bool credited = false;   // got its quantum for the current visit
    bool in_active = false;
  };
  std::unordered_map<std::uint64_t, Tenant> tenants_;
  std::deque<std::uint64_t> active_;
  std::uint64_t quantum_;
  std::size_t size_ = 0;
};

template <typename T>
[[nodiscard]] std::unique_ptr<Scheduler<T>> make_scheduler(
    SchedPolicy policy, std::uint64_t drr_quantum_bytes = kDefaultDrrQuantum) {
  switch (policy) {
    case SchedPolicy::fifo: return std::make_unique<FifoScheduler<T>>();
    case SchedPolicy::prio: return std::make_unique<PriorityScheduler<T>>();
    case SchedPolicy::edf: return std::make_unique<EdfScheduler<T>>();
    case SchedPolicy::fair: return std::make_unique<DrrScheduler<T>>(drr_quantum_bytes);
  }
  return std::make_unique<FifoScheduler<T>>();
}

}  // namespace iofwd::rt
