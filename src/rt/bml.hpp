// Real buffer management layer: the runtime twin of proto::Bml.
//
// Hands out actual power-of-two buffers from a capped pool; acquire blocks
// (FIFO-fair via the ticket check) when the pool is exhausted, exactly like
// the simulated BML and the paper's description (Sec. IV). Freed buffers are
// cached per size class and reused, which is the whole point of a buffer
// manager on a memory-constrained ION.
#pragma once

#include <chrono>
#include <condition_variable>
#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "core/status.hpp"
#include "core/units.hpp"

namespace iofwd::rt {

class BufferPool;

// RAII buffer lease. Movable; returns the buffer to the pool on destruction.
class Buffer {
 public:
  Buffer() = default;
  Buffer(Buffer&& o) noexcept;
  Buffer& operator=(Buffer&& o) noexcept;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  ~Buffer();

  [[nodiscard]] std::byte* data() { return data_; }
  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] std::uint64_t size() const { return class_bytes_; }  // pow2 class
  [[nodiscard]] bool valid() const { return pool_ != nullptr; }

  void release();

 private:
  friend class BufferPool;
  Buffer(BufferPool* pool, std::byte* data, std::uint64_t class_bytes)
      : pool_(pool), data_(data), class_bytes_(class_bytes) {}
  BufferPool* pool_ = nullptr;
  std::byte* data_ = nullptr;
  std::uint64_t class_bytes_ = 0;
};

// Size-class policy. The paper's implementation used powers of two and
// planned "to support arbitrary message sizes by using memory allocators
// such as tcmalloc and hoard" (Sec. IV). `quarter` implements the
// tcmalloc-style refinement: classes at 1, 1.25, 1.5 and 1.75 x 2^k, which
// bounds internal fragmentation at 25% instead of 100% and therefore packs
// more staged payloads into the same pool.
enum class SizeClassPolicy { pow2, quarter };

class BufferPool {
 public:
  explicit BufferPool(std::uint64_t total_bytes, std::uint64_t min_class_bytes = 4096,
                      SizeClassPolicy policy = SizeClassPolicy::pow2);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  [[nodiscard]] std::uint64_t size_class(std::uint64_t bytes) const;

  // Blocking acquire; fails only if the request exceeds the whole pool.
  Result<Buffer> acquire(std::uint64_t bytes);
  // Non-blocking; would_block if the pool cannot serve the request now.
  Result<Buffer> try_acquire(std::uint64_t bytes);
  // Bounded wait: blocks up to `timeout`, then fails with timed_out so an
  // exhausted pool becomes a degraded-mode fallback instead of a hang.
  Result<Buffer> acquire_for(std::uint64_t bytes, std::chrono::milliseconds timeout);

  [[nodiscard]] std::uint64_t capacity() const { return total_; }
  [[nodiscard]] SizeClassPolicy policy() const { return policy_; }
  [[nodiscard]] std::uint64_t in_use() const;
  [[nodiscard]] std::uint64_t high_watermark() const;
  [[nodiscard]] std::uint64_t blocked_acquires() const;

 private:
  friend class Buffer;
  void give_back(std::byte* data, std::uint64_t class_bytes);
  std::byte* take_storage(std::uint64_t class_bytes);  // mu_ held

  std::uint64_t total_;
  std::uint64_t min_class_;
  SizeClassPolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t in_use_ = 0;
  std::uint64_t high_watermark_ = 0;
  std::uint64_t blocked_ = 0;
  // Free-list cache per size class.
  std::map<std::uint64_t, std::vector<std::byte*>> free_;
};

}  // namespace iofwd::rt
