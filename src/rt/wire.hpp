// Wire protocol for the real (host-threaded) forwarding runtime.
//
// Frames are a fixed little-endian header followed by an optional payload.
// The same framing serves requests (client -> ION server) and replies. The
// two-step semantics of the BG/P protocol (parameters first, payload next)
// map onto header+payload of a single frame here; the async-staging "early
// reply" is a reply frame with the `staged` flag set.
//
// Protocol v1 frame layout (56 bytes, little-endian):
//
//   offset size field        notes
//        0    4 magic        "IOFW" (0x494f4657)
//        4    1 type         MsgType: 1=request 2=reply
//        5    1 op           OpCode: 1..kMaxOpCode
//        6    2 flags        bit 0 staged, bit 1 payload_crc; others reserved
//        8    2 version      sender's protocol version (0 or 1)
//       10    1 klass        priority class 0..kMaxPriorityClass (0 = default)
//       11    1 reserved     must be zero
//       12    4 fd
//       16    4 status       Errc as i32 (replies)
//       20    8 seq
//       28    8 offset
//       36    8 payload_len  bounded by kMaxPayload at decode
//       44    4 deadline_ms
//       48    4 payload_crc  CRC32C of the payload (valid iff kFlagPayloadCrc)
//       52    4 header_crc   CRC32C of bytes [0, 52)
//
// The header CRC is unconditional: encode always stamps it and decode always
// verifies it (before anything else), so a single flipped header bit is
// classified as a checksum fault rather than a confusing protocol error.
// Payload checksums are negotiated: a client opens each connection with a
// `hello` request carrying its highest supported version; the server clamps
// to min(client, server) and both sides checksum payloads only when the
// negotiated version is >= 1. A v0 peer never sends `hello` and never sets
// kFlagPayloadCrc, so old binaries interoperate with checksums off.
//
// The priority class byte was carved out of the v1 reserved field (which a
// v0 peer always sends as zero), so class 0 — the default — is byte-for-byte
// what every pre-class binary already emits: old captures still decode, and
// old receivers reject classes they don't understand via the reserved check.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/status.hpp"

namespace iofwd::rt {

enum class MsgType : std::uint8_t {
  request = 1,
  reply = 2,
};

enum class OpCode : std::uint8_t {
  open = 1,
  write = 2,
  read = 3,
  close = 4,
  fsync = 5,
  shutdown = 6,  // client asks the server to stop serving it
  fstat = 7,     // query attributes (size); always synchronous (Sec. IV)
  hello = 8,     // version negotiation; first request on a connection
  ping = 9,      // liveness probe: replied inline, never queued (DESIGN.md §16)
};

// Highest opcode the protocol defines. decode() and opcode_name() are tied
// to this bound by static_asserts/tests so adding an opcode forces both to
// be updated in the same change.
inline constexpr std::uint8_t kMaxOpCode = static_cast<std::uint8_t>(OpCode::ping);

// Highest protocol version this build speaks. v0 = the original unchecked
// framing (44-byte headers are gone, but v0 semantics = no payload CRCs).
inline constexpr std::uint16_t kProtoVersion = 1;

// Highest priority class a frame may carry (4 classes, 0 = default/lowest
// urgency by convention of the priority scheduler, which serves the HIGHEST
// class first). Bounded at decode so schedulers can index by class safely.
inline constexpr std::uint8_t kMaxPriorityClass = 3;

struct FrameHeader {
  static constexpr std::uint32_t kMagic = 0x494f4657;  // "IOFW"
  static constexpr std::size_t kWireSize = 56;
  // Bytes covered by header_crc: everything before the trailing CRC field.
  static constexpr std::size_t kCrcCoverage = kWireSize - 4;

  std::uint32_t magic = kMagic;
  MsgType type = MsgType::request;
  OpCode op = OpCode::open;
  std::uint16_t flags = 0;        // see kFlag* below
  std::uint16_t version = 0;      // sender's protocol version
  std::uint8_t klass = 0;         // priority class, <= kMaxPriorityClass
  std::uint8_t reserved = 0;      // must be zero on the wire
  std::int32_t fd = -1;
  std::int32_t status = 0;        // Errc as i32 (replies)
  std::uint64_t seq = 0;          // client-assigned request id
  std::uint64_t offset = 0;       // file offset for read/write
  std::uint64_t payload_len = 0;  // bytes following the header
  // Per-op deadline budget in ms, counted from arrival at the server; an op
  // still unexecuted when it expires bounces with timed_out. 0 = none.
  std::uint32_t deadline_ms = 0;
  std::uint32_t payload_crc = 0;  // CRC32C of payload; valid iff kFlagPayloadCrc
  std::uint32_t header_crc = 0;   // CRC32C of the first kCrcCoverage bytes

  static constexpr std::uint16_t kFlagStaged = 1;      // async early reply
  static constexpr std::uint16_t kFlagPayloadCrc = 2;  // payload_crc is set
  static constexpr std::uint16_t kFlagMask = kFlagStaged | kFlagPayloadCrc;

  // Serialises the header and stamps header_crc over the encoded bytes
  // (the in-memory header_crc field is ignored; payload_crc is written
  // verbatim — call stamp_payload_crc first when sending a checksummed
  // payload).
  void encode(std::span<std::byte, kWireSize> out) const;

  // Returns checksum_error when the stored header_crc does not match the
  // received bytes (checked first — a flipped bit anywhere in the header
  // lands here, not on a field check), and protocol_error on bad magic,
  // unknown type/op, undefined flag bits, a priority class above
  // kMaxPriorityClass, nonzero reserved field, or a version above
  // kProtoVersion. payload_len is bounded by kMaxPayload before returning,
  // so callers may allocate based on it.
  static Result<FrameHeader> decode(std::span<const std::byte, kWireSize> in);
  // Same, for buffers whose extent is only known at runtime (fuzzers,
  // stream readers): rejects spans != kWireSize with protocol_error.
  static Result<FrameHeader> decode(std::span<const std::byte> in);

  // Computes the payload CRC, stores it, and sets kFlagPayloadCrc.
  void stamp_payload_crc(std::span<const std::byte> payload);
  // True when the payload matches payload_crc. Headers without
  // kFlagPayloadCrc accept any payload (unchecked, v0 semantics).
  [[nodiscard]] bool payload_crc_ok(std::span<const std::byte> payload) const;
};

// Sanity limit: a single forwarded operation may carry at most 256 MiB
// (far beyond any ION buffer the paper considers).
inline constexpr std::uint64_t kMaxPayload = 256ull << 20;

[[nodiscard]] const char* opcode_name(OpCode op);

}  // namespace iofwd::rt
