// Wire protocol for the real (host-threaded) forwarding runtime.
//
// Frames are a fixed little-endian header followed by an optional payload.
// The same framing serves requests (client -> ION server) and replies. The
// two-step semantics of the BG/P protocol (parameters first, payload next)
// map onto header+payload of a single frame here; the async-staging "early
// reply" is a reply frame with the `staged` flag set.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/status.hpp"

namespace iofwd::rt {

enum class MsgType : std::uint8_t {
  request = 1,
  reply = 2,
};

enum class OpCode : std::uint8_t {
  open = 1,
  write = 2,
  read = 3,
  close = 4,
  fsync = 5,
  shutdown = 6,  // client asks the server to stop serving it
  fstat = 7,     // query attributes (size); always synchronous (Sec. IV)
};

struct FrameHeader {
  static constexpr std::uint32_t kMagic = 0x494f4657;  // "IOFW"
  static constexpr std::size_t kWireSize = 44;

  std::uint32_t magic = kMagic;
  MsgType type = MsgType::request;
  OpCode op = OpCode::open;
  std::uint16_t flags = 0;        // bit 0: staged (async early reply)
  std::int32_t fd = -1;
  std::int32_t status = 0;        // Errc as i32 (replies)
  std::uint64_t seq = 0;          // client-assigned request id
  std::uint64_t offset = 0;       // file offset for read/write
  std::uint64_t payload_len = 0;  // bytes following the header
  // Per-op deadline budget in ms, counted from arrival at the server; an op
  // still unexecuted when it expires bounces with timed_out. 0 = none.
  std::uint32_t deadline_ms = 0;

  static constexpr std::uint16_t kFlagStaged = 1;

  void encode(std::span<std::byte, kWireSize> out) const;
  // Returns protocol_error on bad magic or unknown type/op.
  static Result<FrameHeader> decode(std::span<const std::byte, kWireSize> in);
};

// Sanity limit: a single forwarded operation may carry at most 256 MiB
// (far beyond any ION buffer the paper considers).
inline constexpr std::uint64_t kMaxPayload = 256ull << 20;

[[nodiscard]] const char* opcode_name(OpCode op);

}  // namespace iofwd::rt
