#include "rt/aggregator.hpp"

#include <algorithm>
#include <cassert>

namespace iofwd::rt {

AggregatingBackend::AggregatingBackend(std::unique_ptr<IoBackend> inner,
                                       std::uint64_t window_bytes)
    : inner_(std::move(inner)), window_bytes_(std::max<std::uint64_t>(window_bytes, 1)) {
  assert(inner_);
}

Status AggregatingBackend::open(int fd, const std::string& path) {
  std::scoped_lock lock(mu_);
  windows_.erase(fd);
  return inner_->open(fd, path);
}

Status AggregatingBackend::flush_locked(int fd) {
  auto it = windows_.find(fd);
  if (it == windows_.end() || it->second.empty()) return Status::ok();
  Window& w = it->second;
  auto r = inner_->write(fd, w.base, w.buf);
  w.buf.clear();
  if (!r.is_ok()) return r.status();
  ++writes_out_;
  return Status::ok();
}

Result<std::uint64_t> AggregatingBackend::write(int fd, std::uint64_t offset,
                                                std::span<const std::byte> data) {
  std::scoped_lock lock(mu_);
  ++writes_in_;
  Window& w = windows_[fd];

  // Not contiguous with the buffered window: flush it first.
  if (!w.empty() && offset != w.end()) {
    if (Status st = flush_locked(fd); !st.is_ok()) return st;
  }
  if (w.empty()) w.base = offset;

  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::uint64_t room = window_bytes_ - w.buf.size();
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(room, data.size() - consumed));
    w.buf.insert(w.buf.end(), data.begin() + static_cast<std::ptrdiff_t>(consumed),
                 data.begin() + static_cast<std::ptrdiff_t>(consumed + take));
    consumed += take;
    if (w.buf.size() >= window_bytes_) {
      const std::uint64_t next_base = w.end();
      if (Status st = flush_locked(fd); !st.is_ok()) return st;
      w.base = next_base;
    }
  }
  return static_cast<std::uint64_t>(data.size());
}

Result<std::uint64_t> AggregatingBackend::read(int fd, std::uint64_t offset,
                                               std::span<std::byte> out) {
  std::scoped_lock lock(mu_);
  if (Status st = flush_locked(fd); !st.is_ok()) return st;  // read-your-writes
  return inner_->read(fd, offset, out);
}

Status AggregatingBackend::fsync(int fd) {
  std::scoped_lock lock(mu_);
  if (Status st = flush_locked(fd); !st.is_ok()) return st;
  return inner_->fsync(fd);
}

Status AggregatingBackend::close(int fd) {
  std::scoped_lock lock(mu_);
  if (Status st = flush_locked(fd); !st.is_ok()) return st;
  windows_.erase(fd);
  return inner_->close(fd);
}

Result<std::uint64_t> AggregatingBackend::size(int fd) {
  std::scoped_lock lock(mu_);
  if (Status st = flush_locked(fd); !st.is_ok()) return st;
  return inner_->size(fd);
}

std::uint64_t AggregatingBackend::writes_in() const {
  std::scoped_lock lock(mu_);
  return writes_in_;
}

std::uint64_t AggregatingBackend::writes_out() const {
  std::scoped_lock lock(mu_);
  return writes_out_;
}

}  // namespace iofwd::rt
