#include "rt/transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

namespace iofwd::rt {

// ---------------------------------------------------------------------------
// ByteStream defaults
// ---------------------------------------------------------------------------

Result<std::size_t> ByteStream::writev_some(std::span<const std::span<const std::byte>> iov) {
  std::size_t total = 0;
  for (const auto& s : iov) {
    if (s.empty()) continue;
    auto r = write_some(s.data(), s.size());
    if (!r.is_ok()) {
      // Partial progress wins over the error: the accepted bytes are on the
      // wire, so report them; the error resurfaces on the next call.
      if (total > 0) return total;
      return r;
    }
    total += r.value();
    if (r.value() < s.size()) return total;
  }
  return total;
}

// ---------------------------------------------------------------------------
// InProcPipe
// ---------------------------------------------------------------------------

InProcPipe::~InProcPipe() {
  if (event_fd_ >= 0) ::close(event_fd_);
  if (write_event_fd_ >= 0) ::close(write_event_fd_);
}

void InProcPipe::signal_locked() {
  if (event_fd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = ::write(event_fd_, &one, sizeof one);
}

void InProcPipe::signal_write_locked() {
  if (write_event_fd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = ::write(write_event_fd_, &one, sizeof one);
}

int InProcPipe::read_readiness_fd() {
  std::scoped_lock lock(mu_);
  if (event_fd_ < 0) {
    event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    // Bytes (or a close) may already be buffered: signal immediately so an
    // edge-triggered loop that registers this fd now still wakes up.
    if (count_ > 0 || closed_) signal_locked();
  }
  return event_fd_;
}

int InProcPipe::write_readiness_fd() {
  std::scoped_lock lock(mu_);
  if (write_event_fd_ < 0) {
    write_event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    // Space may already be free (or the pipe closed): signal immediately so
    // an edge-triggered loop that registers this fd now still wakes up.
    if (count_ < capacity_ || closed_) signal_write_locked();
  }
  return write_event_fd_;
}

Result<std::size_t> InProcPipe::read_some(void* buf, std::size_t n) {
  auto* out = static_cast<std::byte*>(buf);
  std::scoped_lock lock(mu_);
  if (ring_.empty()) ring_.resize(capacity_);
  if (count_ == 0) {
    if (closed_) return Status(Errc::shutdown, "pipe closed by peer");
    // Drain the eventfd under mu_: writers also signal under mu_, so any
    // byte arriving after this drain re-ticks the fd — no lost wakeups.
    if (event_fd_ >= 0) {
      std::uint64_t v = 0;
      [[maybe_unused]] const ssize_t r = ::read(event_fd_, &v, sizeof v);
    }
    return Status(Errc::would_block, "pipe empty");
  }
  const bool was_full = count_ == capacity_;
  const std::size_t take = std::min(n, count_);
  const std::size_t first = std::min(take, capacity_ - head_);
  std::memcpy(out, ring_.data() + head_, first);
  if (take > first) std::memcpy(out + first, ring_.data(), take - first);
  head_ = (head_ + take) % capacity_;
  count_ -= take;
  cv_.notify_all();  // writers may be waiting for space
  if (was_full) signal_write_locked();  // a would_block write can retry now
  return take;
}

Status InProcPipe::read_exact(void* buf, std::size_t n) {
  auto* out = static_cast<std::byte*>(buf);
  std::unique_lock lock(mu_);
  if (ring_.empty()) ring_.resize(capacity_);
  std::size_t got = 0;
  while (got < n) {
    cv_.wait(lock, [&] { return count_ > 0 || closed_; });
    if (count_ == 0 && closed_) {
      return Status(Errc::shutdown, "pipe closed by peer");
    }
    const bool was_full = count_ == capacity_;
    const std::size_t take = std::min(n - got, count_);
    const std::size_t first = std::min(take, capacity_ - head_);
    std::memcpy(out + got, ring_.data() + head_, first);
    if (take > first) std::memcpy(out + got + first, ring_.data(), take - first);
    head_ = (head_ + take) % capacity_;
    count_ -= take;
    got += take;
    cv_.notify_all();  // writers may be waiting for space
    if (was_full) signal_write_locked();  // a would_block write can retry now
  }
  return Status::ok();
}

Status InProcPipe::write_all(const void* buf, std::size_t n) {
  const auto* in = static_cast<const std::byte*>(buf);
  std::unique_lock lock(mu_);
  if (ring_.empty()) ring_.resize(capacity_);
  std::size_t put = 0;
  while (put < n) {
    cv_.wait(lock, [&] { return count_ < capacity_ || closed_; });
    if (closed_) return Status(Errc::shutdown, "pipe closed");
    const std::size_t space = capacity_ - count_;
    const std::size_t take = std::min(n - put, space);
    const std::size_t tail = (head_ + count_) % capacity_;
    const std::size_t first = std::min(take, capacity_ - tail);
    std::memcpy(ring_.data() + tail, in + put, first);
    if (take > first) std::memcpy(ring_.data(), in + put + first, take - first);
    count_ += take;
    put += take;
    cv_.notify_all();
    signal_locked();  // wake an event-loop reader, if one is attached
  }
  return Status::ok();
}

Result<std::size_t> InProcPipe::write_some(const void* buf, std::size_t n) {
  const auto* in = static_cast<const std::byte*>(buf);
  std::scoped_lock lock(mu_);
  if (closed_) return Status(Errc::shutdown, "pipe closed");
  if (ring_.empty()) ring_.resize(capacity_);
  if (count_ == capacity_) {
    // Drain the write eventfd under mu_: readers signal full -> not-full
    // transitions under mu_ too, so any space freed after this drain
    // re-ticks the fd — no lost wakeups.
    if (write_event_fd_ >= 0) {
      std::uint64_t v = 0;
      [[maybe_unused]] const ssize_t r = ::read(write_event_fd_, &v, sizeof v);
    }
    return Status(Errc::would_block, "pipe full");
  }
  const std::size_t take = std::min(n, capacity_ - count_);
  const std::size_t tail = (head_ + count_) % capacity_;
  const std::size_t first = std::min(take, capacity_ - tail);
  std::memcpy(ring_.data() + tail, in, first);
  if (take > first) std::memcpy(ring_.data(), in + first, take - first);
  count_ += take;
  cv_.notify_all();
  signal_locked();  // wake an event-loop reader, if one is attached
  return take;
}

void InProcPipe::close() {
  std::scoped_lock lock(mu_);
  closed_ = true;
  cv_.notify_all();
  signal_locked();        // an event-loop reader must observe EOF promptly
  signal_write_locked();  // and a parked event-loop writer must observe it too
}

std::pair<std::unique_ptr<InProcTransport>, std::unique_ptr<InProcTransport>>
InProcTransport::make_pair(std::size_t capacity) {
  auto ab = std::make_shared<InProcPipe>(capacity);
  auto ba = std::make_shared<InProcPipe>(capacity);
  auto a = std::unique_ptr<InProcTransport>(new InProcTransport(ba, ab));
  auto b = std::unique_ptr<InProcTransport>(new InProcTransport(ab, ba));
  return {std::move(a), std::move(b)};
}

// ---------------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------------

SocketTransport::~SocketTransport() {
  close();
  // The fd itself is released only here, once no thread can still be blocked
  // inside read(2)/write(2) on it (callers join I/O threads before dropping
  // the stream). Closing it in close() instead would race with those
  // syscalls and risk the kernel reusing the fd number under them.
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

Result<std::pair<std::unique_ptr<SocketTransport>, std::unique_ptr<SocketTransport>>>
SocketTransport::make_socketpair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status(Errc::io_error, std::string("socketpair: ") + std::strerror(errno));
  }
  return std::make_pair(std::make_unique<SocketTransport>(fds[0]),
                        std::make_unique<SocketTransport>(fds[1]));
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status(Errc::io_error, std::string("socket: ") + std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    return Status(Errc::invalid_argument, "unix path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    return Status(Errc::not_connected, std::string("connect: ") + std::strerror(err));
  }
  return std::make_unique<SocketTransport>(fd);
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::connect_tcp(const std::string& host,
                                                                      std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &res) != 0 || res == nullptr) {
    return Status(Errc::not_connected, "cannot resolve " + host);
  }
  const int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return Status(Errc::io_error, std::string("socket: ") + std::strerror(errno));
  }
  const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0) {
    const int err = errno;
    ::close(fd);
    return Status(Errc::not_connected, std::string("connect: ") + std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::make_unique<SocketTransport>(fd);
}

Status SocketTransport::read_exact(void* buf, std::size_t n) {
  auto* p = static_cast<std::byte*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd_.load(), p + got, n - got);
    if (r == 0) return Status(Errc::shutdown, "peer closed");
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status(Errc::io_error, std::string("read: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return Status::ok();
}

Result<std::size_t> SocketTransport::read_some(void* buf, std::size_t n) {
  while (true) {
    const ssize_t r = ::recv(fd_.load(), buf, n, MSG_DONTWAIT);
    if (r > 0) return static_cast<std::size_t>(r);
    if (r == 0) return Status(Errc::shutdown, "peer closed");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status(Errc::would_block, "socket empty");
    }
    if (errno == ECONNRESET) return Status(Errc::shutdown, "connection reset");
    return Status(Errc::io_error, std::string("recv: ") + std::strerror(errno));
  }
}

Result<std::size_t> SocketTransport::write_some(const void* buf, std::size_t n) {
  while (true) {
    const ssize_t r = ::send(fd_.load(), buf, n, MSG_DONTWAIT | MSG_NOSIGNAL);
    if (r >= 0) return static_cast<std::size_t>(r);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status(Errc::would_block, "socket full");
    }
    if (errno == EPIPE || errno == ECONNRESET) return Status(Errc::shutdown, "peer closed");
    return Status(Errc::io_error, std::string("send: ") + std::strerror(errno));
  }
}

Result<std::size_t> SocketTransport::writev_some(
    std::span<const std::span<const std::byte>> iov) {
  // One sendmsg(2) for the whole gather: a framed reply (header + payload
  // lease) leaves in a single syscall without being copied together first.
  std::array<::iovec, 16> vec{};
  std::size_t nvec = 0;
  for (const auto& s : iov) {
    if (s.empty()) continue;
    if (nvec == vec.size()) break;  // remainder goes out on the next call
    vec[nvec].iov_base = const_cast<std::byte*>(s.data());
    vec[nvec].iov_len = s.size();
    ++nvec;
  }
  if (nvec == 0) return std::size_t{0};
  ::msghdr msg{};
  msg.msg_iov = vec.data();
  msg.msg_iovlen = nvec;
  while (true) {
    const ssize_t r = ::sendmsg(fd_.load(), &msg, MSG_DONTWAIT | MSG_NOSIGNAL);
    if (r >= 0) return static_cast<std::size_t>(r);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status(Errc::would_block, "socket full");
    }
    if (errno == EPIPE || errno == ECONNRESET) return Status(Errc::shutdown, "peer closed");
    return Status(Errc::io_error, std::string("sendmsg: ") + std::strerror(errno));
  }
}

Status SocketTransport::write_all(const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::byte*>(buf);
  std::size_t put = 0;
  while (put < n) {
    const ssize_t r = ::write(fd_.load(), p + put, n - put);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE) return Status(Errc::shutdown, "peer closed");
      return Status(Errc::io_error, std::string("write: ") + std::strerror(errno));
    }
    put += static_cast<std::size_t>(r);
  }
  return Status::ok();
}

void SocketTransport::close() {
  // Wake any thread blocked in read_exact/write_all: they see EOF/EPIPE and
  // return shutdown. The fd stays valid until the destructor.
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

TcpListener::~TcpListener() {
  close();
  if (fd_ >= 0) {
    ::close(fd_);  // deferred from close(): accept() may still be blocked there
    fd_ = -1;
  }
}

Result<std::unique_ptr<TcpListener>> TcpListener::bind(std::uint16_t port,
                                                       const std::string& bind_addr) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status(Errc::io_error, std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status(Errc::invalid_argument, "bad bind address: " + bind_addr);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    return Status(Errc::io_error, std::string("bind/listen: ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd);
    return Status(Errc::io_error, std::string("getsockname: ") + std::strerror(err));
  }
  return std::unique_ptr<TcpListener>(new TcpListener(fd, ntohs(bound.sin_port)));
}

Result<std::unique_ptr<SocketTransport>> TcpListener::accept() {
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) {
    if (errno == EBADF || errno == EINVAL) return Status(Errc::shutdown, "listener closed");
    return Status(Errc::io_error, std::string("accept: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::make_unique<SocketTransport>(cfd);
}

void TcpListener::close() {
  // shutdown(2) on a listening socket wakes a blocked accept(2) with EINVAL
  // (Linux); the fd is released in the destructor, after the accept loop
  // has exited.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

// ---------------------------------------------------------------------------
// UnixListener
// ---------------------------------------------------------------------------

UnixListener::~UnixListener() {
  close();
  if (fd_ >= 0) {
    ::close(fd_);  // deferred from close(): accept() may still be blocked there
    fd_ = -1;
  }
}

Result<std::unique_ptr<UnixListener>> UnixListener::bind(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status(Errc::io_error, std::string("socket: ") + std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    return Status(Errc::invalid_argument, "unix path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    return Status(Errc::io_error, std::string("bind/listen: ") + std::strerror(err));
  }
  return std::unique_ptr<UnixListener>(new UnixListener(fd, path));
}

Result<std::unique_ptr<SocketTransport>> UnixListener::accept() {
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) {
    if (errno == EBADF || errno == EINVAL) return Status(Errc::shutdown, "listener closed");
    return Status(Errc::io_error, std::string("accept: ") + std::strerror(errno));
  }
  return std::make_unique<SocketTransport>(cfd);
}

void UnixListener::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    if (!path_.empty()) ::unlink(path_.c_str());
  }
}

}  // namespace iofwd::rt
