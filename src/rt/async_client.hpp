// AsyncClient: a pipelined client with multiple outstanding requests.
//
// The plain Client is strictly request/reply. AsyncClient decouples the two
// sides: requests are sent under a window limit and a dispatcher thread
// matches replies to futures by sequence number, so a single connection can
// keep the forwarding pipeline full — the client-side analogue of what
// asynchronous data staging does on the ION. With the async-staging server,
// a write future resolves at the *staged* acknowledgement; fsync/close
// still collect deferred errors.
//
//   AsyncClient c(std::move(stream), /*window=*/16);
//   c.open(1, "f").get();
//   std::vector<std::future<Status>> fs;
//   for (...) fs.push_back(c.write(1, off, data));
//   for (auto& f : fs) check(f.get());
//   c.fsync(1).get();
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/status.hpp"
#include "rt/transport.hpp"
#include "rt/wire.hpp"

namespace iofwd::rt {

class AsyncClient {
 public:
  // `window`: maximum outstanding requests before send() blocks.
  explicit AsyncClient(std::unique_ptr<ByteStream> stream, int window = 16);
  ~AsyncClient();
  AsyncClient(const AsyncClient&) = delete;
  AsyncClient& operator=(const AsyncClient&) = delete;

  std::future<Status> open(int fd, const std::string& path);
  std::future<Status> write(int fd, std::uint64_t offset, std::span<const std::byte> data);
  // The read future carries the data (or the error).
  std::future<Result<std::vector<std::byte>>> read(int fd, std::uint64_t offset,
                                                   std::uint64_t len);
  std::future<Status> fsync(int fd);
  std::future<Status> close_fd(int fd);

  // Fail all pending futures and close the connection. Called by the
  // destructor; safe to call twice.
  void shutdown();

  [[nodiscard]] std::size_t outstanding() const;

 private:
  struct Pending {
    std::promise<Status> status;                         // non-read ops
    std::promise<Result<std::vector<std::byte>>> data;   // read ops
    bool is_read = false;
  };

  std::future<Status> submit(FrameHeader req, std::span<const std::byte> payload);
  std::future<Result<std::vector<std::byte>>> submit_read(FrameHeader req);
  Status send_frame(FrameHeader& req, std::span<const std::byte> payload, bool is_read,
                    std::shared_ptr<Pending>& out);
  void dispatcher_loop();
  void fail_all(const Status& why);

  std::unique_ptr<ByteStream> stream_;
  const int window_;

  mutable std::mutex mu_;
  std::condition_variable window_cv_;
  std::uint64_t next_seq_ = 1;
  std::map<std::uint64_t, std::shared_ptr<Pending>> pending_;
  bool closed_ = false;

  std::jthread dispatcher_;
};

}  // namespace iofwd::rt
