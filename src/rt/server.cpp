#include "rt/server.hpp"

#include <poll.h>

#include <algorithm>
#include <cassert>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_map>

#include "bb/burst_buffer.hpp"
#include "core/log.hpp"

namespace iofwd::rt {

const char* to_string(ExecModel m) {
  switch (m) {
    case ExecModel::thread_per_client: return "thread_per_client";
    case ExecModel::work_queue: return "work_queue";
    case ExecModel::work_queue_async: return "work_queue_async";
  }
  return "?";
}

namespace {
std::uint64_t us_since(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}

int default_recv_lanes() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(4u, std::max(1u, hw)));
}

// Epoll keys with this bit set are write-readiness shim registrations (a
// stream whose write_readiness_fd() differs from its read fd); the low bits
// are the owning connection's lane key. Connection keys count up from 1 and
// never reach the bit; the wake key (~0) is handled before dispatch.
constexpr std::uint64_t kSendKeyBit = 1ull << 63;

// Gather width per writev_some call: enough for 8 queued replies
// (header + payload each) without a heap allocation.
constexpr std::size_t kMaxGatherSpans = 16;
}  // namespace

// A receiver lane (DESIGN.md §13): one epoll event loop multiplexing many
// connections on one thread — the paper's poll-based worker structure applied
// to the receive side. Connections are keyed by an opaque 64-bit id; serve()
// inserts under mu, the lane thread drops under mu, and n_conns feeds the
// least-connections balancer without any lock.
struct IonServer::Lane {
  Lane(obs::MetricRegistry& reg, int idx)
      : index(idx),
        c_connections(reg.counter(prefix(idx) + "connections")),
        c_wakeups(reg.counter(prefix(idx) + "wakeups")),
        c_bytes(reg.counter(prefix(idx) + "bytes")),
        c_send_bytes(reg.counter(prefix(idx) + "send.bytes")),
        c_send_writev_calls(reg.counter(prefix(idx) + "send.writev_calls")),
        c_send_would_blocks(reg.counter(prefix(idx) + "send.would_blocks")),
        h_loop_us(reg.histogram(prefix(idx) + "loop_us")),
        g_open_connections(reg.gauge(prefix(idx) + "open_connections")),
        g_send_queued(reg.gauge(prefix(idx) + "send.queued_bytes")) {}

  static std::string prefix(int idx) { return "server.rt.lane." + std::to_string(idx) + "."; }

  void note_send_queued(std::int64_t delta) {
    g_send_queued.set(send_queued.fetch_add(delta, std::memory_order_relaxed) + delta);
  }

  int index;
  EventLoop loop;
  std::mutex mu;
  std::unordered_map<std::uint64_t, std::shared_ptr<ClientConn>> conns;
  std::atomic<std::size_t> n_conns{0};
  std::atomic<std::int64_t> send_queued{0};  // unsent reply bytes on this lane
  obs::Counter& c_connections;       // total registrations
  obs::Counter& c_wakeups;           // event-loop wakeups
  obs::Counter& c_bytes;             // raw bytes drained by this lane
  obs::Counter& c_send_bytes;        // reply bytes written by the async path
  obs::Counter& c_send_writev_calls; // gathered writev_some calls
  obs::Counter& c_send_would_blocks; // drains paused awaiting write readiness
  obs::Histogram& h_loop_us;         // time servicing one ready batch
  obs::Gauge& g_open_connections;    // currently registered connections
  obs::Gauge& g_send_queued;         // send-queue depth in bytes, lane-wide
  std::jthread thread;               // started by ensure_lanes_locked
};

IonServer::IonServer(std::unique_ptr<IoBackend> backend, ServerConfig cfg)
    : backend_(std::move(backend)),
      cfg_(cfg),
      pool_(cfg.bml_bytes, cfg.bml_min_class, cfg.bml_policy),
      queue_(cfg.workers, cfg.sched, cfg.sched_quantum_bytes),
      owned_registry_(cfg.registry != nullptr ? nullptr
                                              : std::make_unique<obs::MetricRegistry>()),
      reg_(cfg.registry != nullptr ? cfg.registry : owned_registry_.get()),
      tracer_(cfg.tracer),
      fr_(cfg.flight_recorder_ops > 0
              ? std::make_unique<obs::FlightRecorder>(cfg.flight_recorder_ops)
              : nullptr),
      c_ops_(reg_->counter("server.ops")),
      c_bytes_in_(reg_->counter("server.bytes_in")),
      c_bytes_out_(reg_->counter("server.bytes_out")),
      c_deferred_errors_(reg_->counter("server.deferred_errors")),
      c_filter_bytes_in_(reg_->counter("server.filter_bytes_in")),
      c_filter_bytes_out_(reg_->counter("server.filter_bytes_out")),
      c_deadline_expired_(reg_->counter("server.deadline_expired")),
      c_bml_timeouts_(reg_->counter("server.bml_timeouts")),
      c_degraded_passthrough_(reg_->counter("server.degraded_passthrough_ops")),
      c_degraded_sync_writes_(reg_->counter("server.degraded_sync_writes")),
      c_degraded_enters_(reg_->counter("server.degraded_enters")),
      c_degraded_ns_(reg_->counter("server.degraded_ns")),
      c_hellos_(reg_->counter("server.integrity.hellos")),
      c_header_crc_errors_(reg_->counter("server.integrity.header_crc_errors")),
      c_payload_crc_errors_(reg_->counter("server.integrity.payload_crc_errors")),
      c_frames_rejected_(reg_->counter("server.integrity.frames_rejected")),
      c_replies_enqueued_(reg_->counter("server.reply.enqueued")),
      c_replies_sent_(reg_->counter("server.reply.sent")),
      c_reply_queue_full_(reg_->counter("server.reply.queue_full")),
      c_reply_peer_gone_(reg_->counter("server.reply.peer_gone")),
      c_reply_sync_fallback_(reg_->counter("server.reply.sync_fallback")),
      c_reply_copy_bytes_(reg_->counter("server.reply.payload_copy_bytes")),
      h_write_lat_us_(reg_->histogram("server.write_latency_us")),
      h_read_lat_us_(reg_->histogram("server.read_latency_us")),
      h_queue_wait_us_(reg_->histogram("server.sched.queue_wait_us")),
      g_queue_depth_(reg_->gauge("server.queue_depth")),
      g_queue_max_depth_(reg_->gauge("server.queue_max_depth")),
      g_bml_in_use_(reg_->gauge("server.bml_in_use")),
      g_bml_blocked_(reg_->gauge("server.bml_blocked")),
      g_bml_high_watermark_(reg_->gauge("server.bml_high_watermark")) {
  assert(backend_ && "IonServer needs a backend");
  reg_->gauge("server.sched.policy").set(static_cast<std::int64_t>(cfg_.sched));
  if (cfg_.qos.enabled()) qos_ = std::make_unique<QosGovernor>(cfg_.qos, *reg_);
  if (cfg_.bb_bytes > 0) {
    bb::BurstBufferConfig bcfg;
    bcfg.capacity_bytes = cfg_.bb_bytes;
    bcfg.high_watermark = cfg_.bb_high_watermark;
    bcfg.low_watermark = cfg_.bb_low_watermark;
    bcfg.flushers = cfg_.bb_flushers;
    bcfg.max_stall_ms = cfg_.bb_max_stall_ms;
    bcfg.registry = reg_;  // one namespace: "server.*" + "bb.*"
    bcfg.cluster_budget = cfg_.bb_cluster_budget;
    bcfg.journal_dir = cfg_.bb_journal_dir;
    bcfg.journal_segment_bytes = cfg_.bb_journal_segment_bytes;
    bcfg.journal_fsync = cfg_.bb_journal_fsync;
    auto wrapped = std::make_unique<bb::BurstBufferBackend>(std::move(backend_), bcfg);
    bb_ = wrapped.get();
    backend_ = std::move(wrapped);
  }
  if (cfg_.exec != ExecModel::thread_per_client) {
    std::scoped_lock lock(threads_mu_);
    for (int i = 0; i < cfg_.workers; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i); });
    }
  }
  if (tracer_ != nullptr) tracer_->set_thread_name(kInlineLane, "inline (receivers)");
}

IonServer::~IonServer() { stop(); }

void IonServer::ensure_lanes_locked() {
  if (!lanes_.empty()) return;
  const int n = cfg_.recv_lanes > 0 ? cfg_.recv_lanes : default_recv_lanes();
  for (int i = 0; i < n; ++i) {
    auto lane = std::make_unique<Lane>(*reg_, i);
    if (!lane->loop.valid()) break;  // out of fds: serve() falls back to threads
    lanes_.push_back(std::move(lane));
  }
  for (auto& lane : lanes_) {
    lane->thread = std::jthread([this, l = lane.get()] { lane_loop(*l); });
  }
}

void IonServer::serve(std::unique_ptr<ByteStream> stream) {
  auto conn = std::make_shared<ClientConn>();
  conn->stream = std::move(stream);
  std::scoped_lock lock(threads_mu_);
  if (stopping_) {
    conn->stream->close();
    return;
  }
  conns_.push_back(conn);
  conn->rfd = conn->stream->read_readiness_fd();
  // Resolve the write shim up front: InProcPipe creates its eventfd lazily,
  // and doing it here (single-threaded, pre-traffic) keeps the hot path free
  // of setup work.
  conn->wfd = conn->stream->write_readiness_fd();
  const int rfd = conn->rfd;
  if (rfd >= 0) {
    ensure_lanes_locked();
    if (!lanes_.empty()) {
      // Least-connections balancing across the lane pool (the paper's
      // least-loaded-worker heuristic applied to receive).
      Lane* lane = lanes_.front().get();
      for (const auto& l : lanes_) {
        if (l->n_conns.load(std::memory_order_relaxed) <
            lane->n_conns.load(std::memory_order_relaxed)) {
          lane = l.get();
        }
      }
      const std::uint64_t key = next_conn_key_++;
      conn->lane = lane;
      conn->lane_key = key;
      {
        std::scoped_lock lane_lock(lane->mu);
        lane->conns.emplace(key, conn);
      }
      lane->n_conns.fetch_add(1, std::memory_order_relaxed);
      if (lane->loop.add(rfd, key).is_ok()) {
        lane->c_connections.inc();
        lane->g_open_connections.set(
            static_cast<std::int64_t>(lane->n_conns.load(std::memory_order_relaxed)));
        return;
      }
      // Registration failed (fd limit?): unwind and fall back to a thread.
      {
        std::scoped_lock lane_lock(lane->mu);
        lane->conns.erase(key);
      }
      lane->n_conns.fetch_sub(1, std::memory_order_relaxed);
      conn->lane = nullptr;
    }
  }
  threads_.emplace_back([this, conn] { blocking_receiver_loop(conn); });
}

namespace {

// In-memory one-shot stream for feed_bytes: reads drain a fixed buffer then
// report EOF; writes (replies) are swallowed. No locking — feed_bytes runs
// the receiver inline and workers only ever write_all, which is a no-op.
class ScriptedStream final : public ByteStream {
 public:
  explicit ScriptedStream(std::span<const std::byte> bytes) : bytes_(bytes) {}

  Status read_exact(void* buf, std::size_t n) override {
    if (closed_.load(std::memory_order_relaxed) || bytes_.size() - pos_ < n) {
      return Status(Errc::shutdown, "script exhausted");
    }
    std::memcpy(buf, bytes_.data() + pos_, n);
    pos_ += n;
    return Status::ok();
  }
  Status write_all(const void*, std::size_t) override { return Status::ok(); }
  void close() override { closed_.store(true, std::memory_order_relaxed); }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
  std::atomic<bool> closed_{false};
};

}  // namespace

void IonServer::feed_bytes(std::span<const std::byte> bytes) {
  auto conn = std::make_shared<ClientConn>();
  conn->stream = std::make_unique<ScriptedStream>(bytes);
  blocking_receiver_loop(std::move(conn));
}

void IonServer::serve_listener(std::unique_ptr<Listener> listener) {
  std::scoped_lock lock(threads_mu_);
  listener_ = std::move(listener);
  threads_.emplace_back([this] {
    while (!stopping_) {
      auto t = listener_->accept();
      if (!t.is_ok()) break;
      serve(std::move(t).value());
    }
  });
}

void IonServer::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Second caller: wait for the first to have finished by taking the lock.
    std::scoped_lock lock(threads_mu_);
    return;
  }
  teardown_for_stop();
  if (bb_) bb_->drain_all();  // shutdown drains every descriptor's extents
}

void IonServer::crash_stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    std::scoped_lock lock(threads_mu_);
    return;
  }
  // Same orderly thread/connection teardown as stop() — the "crash" is about
  // state, not threads: once every worker is joined, the burst buffer drops
  // its staged extents unflushed and freezes the journal as the crash image.
  teardown_for_stop();
  if (bb_) bb_->crash_discard();
}

void IonServer::teardown_for_stop() {
  if (listener_) listener_->close();
  {
    std::scoped_lock lock(threads_mu_);
    for (auto& c : conns_) c->stream->close();
  }
  // Join receiver lanes before closing the queue: a lane mid-handler may
  // still depend on workers making progress (BML releases, drain barriers).
  // stopping_ is set and serve() checks it under threads_mu_, so lanes_ is
  // immutable from here on.
  for (auto& lane : lanes_) lane->loop.close();
  for (auto& lane : lanes_) {
    if (lane->thread.joinable()) lane->thread.join();
  }
  queue_.close();
  std::vector<std::jthread> to_join;
  {
    std::scoped_lock lock(threads_mu_);
    to_join.swap(threads_);
  }
  to_join.clear();  // jthread joins on destruction
  // Every producer is joined: discard undeliverable queued replies so their
  // BML leases and burst-buffer pins return before the pool/cache teardown
  // invariants (bml_in_use == 0, cached bytes drainable) are checked.
  {
    std::scoped_lock lock(threads_mu_);
    for (auto& c : conns_) {
      std::scoped_lock lk(c->send_mu);
      abort_send_queue_locked(*c);
    }
  }
}

void IonServer::drain() {
  // Two consecutive quiet observations guard the window between a worker
  // popping a batch and bumping tasks_in_flight_.
  for (int stable = 0; stable < 2;) {
    if (queue_.size() == 0 && tasks_in_flight_.load(std::memory_order_acquire) == 0) {
      ++stable;
    } else {
      stable = 0;
    }
    if (stable < 2) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  if (bb_) bb_->drain_all();
}

ServerStats IonServer::stats() const {
  ServerStats s;
  s.ops = c_ops_.value();
  s.bytes_in = c_bytes_in_.value();
  s.bytes_out = c_bytes_out_.value();
  s.deferred_errors = c_deferred_errors_.value();
  s.filter_bytes_in = c_filter_bytes_in_.value();
  s.filter_bytes_out = c_filter_bytes_out_.value();
  s.deadline_expired = c_deadline_expired_.value();
  s.bml_timeouts = c_bml_timeouts_.value();
  s.degraded_passthrough_ops = c_degraded_passthrough_.value();
  s.degraded_sync_writes = c_degraded_sync_writes_.value();
  s.degraded_enters = c_degraded_enters_.value();
  s.degraded_ns = c_degraded_ns_.value();
  s.hellos = c_hellos_.value();
  s.header_crc_errors = c_header_crc_errors_.value();
  s.payload_crc_errors = c_payload_crc_errors_.value();
  s.frames_rejected = c_frames_rejected_.value();
  s.replies_enqueued = c_replies_enqueued_.value();
  s.replies_sent = c_replies_sent_.value();
  s.reply_queue_full = c_reply_queue_full_.value();
  s.reply_peer_gone = c_reply_peer_gone_.value();
  s.reply_sync_fallback = c_reply_sync_fallback_.value();
  s.reply_payload_copy_bytes = c_reply_copy_bytes_.value();
  s.qos_throttled_ops = reg_->counter("server.qos.throttled_ops").value();
  s.qos_admitted_bytes = reg_->counter("server.qos.admitted_bytes").value();
  s.queue_batches = queue_.batches();
  s.queue_max_depth = queue_.max_depth();
  s.bml_blocked = pool_.blocked_acquires();
  s.bml_high_watermark = pool_.high_watermark();
  s.bml_in_use = pool_.in_use();
  {
    std::scoped_lock lock(degraded_mu_);
    if (degraded_mode_) {
      s.degraded_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                               degraded_since_)
              .count());
    }
  }
  if (bb_) {
    const bb::BurstBufferStats b = bb_->stats();
    s.bb_cached_bytes = b.cached_bytes;
    s.bb_flushed_bytes = b.flushed_bytes;
    s.bb_backend_writes = b.backend_writes;
    s.bb_stall_ns = b.stall_ns;
    s.bb_hit_rate = b.hit_rate();
    s.bb_coalesce_ratio = b.coalesce_ratio();
    s.bb_degraded_writes = b.degraded_writes;
  }
  return s;
}

obs::Snapshot IonServer::metrics() const {
  // Queue/pool state lives outside the registry; mirror it into gauges so
  // one Snapshot is self-contained for rendering and shipping.
  g_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
  g_queue_max_depth_.set(static_cast<std::int64_t>(queue_.max_depth()));
  g_bml_in_use_.set(static_cast<std::int64_t>(pool_.in_use()));
  g_bml_blocked_.set(static_cast<std::int64_t>(pool_.blocked_acquires()));
  g_bml_high_watermark_.set(static_cast<std::int64_t>(pool_.high_watermark()));
  if (bb_) bb_->refresh_gauges();
  return reg_->snapshot();
}

void IonServer::observe_op(const FrameHeader& req,
                           std::chrono::steady_clock::time_point arrival, const Status& st) {
  const std::uint64_t lat_us = us_since(arrival);
  if (req.op == OpCode::write) {
    h_write_lat_us_.record(lat_us);
  } else if (req.op == OpCode::read) {
    h_read_lat_us_.record(lat_us);
  }
  if (fr_) {
    fr_->record(opcode_name(req.op), req.fd, req.payload_len, lat_us,
                static_cast<int>(st.code()));
  }
}

SchedMeta IonServer::sched_meta(const ClientConn& conn, const FrameHeader& req,
                                std::chrono::steady_clock::time_point arrival) {
  SchedMeta m;
  m.tenant = conn.tenant.load(std::memory_order_relaxed);
  m.klass = req.klass;
  m.deadline_ms = req.deadline_ms;
  m.bytes = req.payload_len;
  m.arrival = arrival;
  return m;
}

bool IonServer::past_deadline(const FrameHeader& req,
                              std::chrono::steady_clock::time_point arrival) {
  if (req.deadline_ms == 0) return false;
  return std::chrono::steady_clock::now() - arrival >= std::chrono::milliseconds(req.deadline_ms);
}

bool IonServer::degraded_now(std::size_t queue_depth) {
  if (cfg_.degraded_high_watermark == 0) return false;
  const auto now = std::chrono::steady_clock::now();
  std::scoped_lock lock(degraded_mu_);
  if (!degraded_mode_) {
    if (queue_depth >= cfg_.degraded_high_watermark) {
      degraded_mode_ = true;
      degraded_since_ = now;
      c_degraded_enters_.inc();
    }
  } else if (queue_depth <= cfg_.degraded_low_watermark) {
    degraded_mode_ = false;
    c_degraded_ns_.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - degraded_since_).count()));
  }
  return degraded_mode_;
}

// ---------------------------------------------------------------------------
// Receiver path
// ---------------------------------------------------------------------------

void IonServer::lane_loop(Lane& lane) {
  std::vector<Event> ready;
  std::vector<std::byte> scratch(64 * 1024);
  while (true) {
    ready.clear();
    if (!lane.loop.wait(ready)) break;
    lane.c_wakeups.inc();
    if (ready.empty()) continue;  // bare wake
    const auto t0 = std::chrono::steady_clock::now();
    for (const Event& ev : ready) {
      const std::uint64_t key = ev.key & ~kSendKeyBit;
      std::shared_ptr<ClientConn> conn;
      {
        std::scoped_lock lock(lane.mu);
        auto it = lane.conns.find(key);
        if (it == lane.conns.end()) continue;  // dropped earlier this pass
        conn = it->second;
      }
      if ((ev.key & kSendKeyBit) != 0) {
        // Write-readiness shim tick (eventfd): resume the send drain only.
        on_send_ready(*conn);
        continue;
      }
      // Same-fd streams (sockets) deliver EPOLLOUT on the connection key.
      if (ev.writable) on_send_ready(*conn);
      if (!ev.readable) continue;
      // Edge-triggered contract: drain to would_block before re-arming.
      while (true) {
        auto r = conn->stream->read_some(scratch.data(), scratch.size());
        if (!r.is_ok()) {
          if (r.code() == Errc::would_block) break;
          drop_lane_conn(lane, key, *conn, r.code());  // EOF or hard error
          break;
        }
        lane.c_bytes.add(r.value());
        if (Status st = on_bytes(conn, std::span<const std::byte>(scratch.data(), r.value()));
            !st.is_ok()) {
          drop_lane_conn(lane, key, *conn, st.code());
          break;
        }
      }
    }
    lane.h_loop_us.record(us_since(t0));
  }
}

void IonServer::drop_lane_conn(Lane& lane, std::uint64_t key, ClientConn& conn, Errc reason) {
  if (conn.rfd >= 0) lane.loop.remove(conn.rfd);
  {
    // Undeliverable replies die with the connection; their leases return.
    std::scoped_lock lk(conn.send_mu);
    if (conn.shim_registered && conn.wfd >= 0) {
      lane.loop.remove(conn.wfd);
      conn.shim_registered = false;
    }
    abort_send_queue_locked(conn);
  }
  // Dropping a client (corrupt header, protocol violation, peer EOF) must
  // close our endpoint too: an in-process peer blocked in read_exact only
  // wakes when the shared pipe is marked closed — without this, a client
  // waiting for a reply to its (corrupted, never-executed) request would
  // hang instead of redialing.
  conn.stream->close();
  conn.assembler.reset();
  conn.rx = RxPending{};  // releases any staged BML lease / heap payload
  bool erased = false;
  {
    std::scoped_lock lock(lane.mu);
    erased = lane.conns.erase(key) > 0;
  }
  if (erased) {
    lane.n_conns.fetch_sub(1, std::memory_order_relaxed);
    lane.g_open_connections.set(
        static_cast<std::int64_t>(lane.n_conns.load(std::memory_order_relaxed)));
    if (fr_) fr_->record("lane_drop", lane.index, 0, 0, static_cast<int>(reason));
  }
}

void IonServer::blocking_receiver_loop(std::shared_ptr<ClientConn> conn) {
  // Fallback for streams without a readiness fd (feed_bytes' scripted
  // stream, exotic transports): same assembler, same callbacks, same bytes —
  // just pumped by blocking reads of exactly what the state machine needs.
  std::vector<std::byte> scratch(64 * 1024);
  while (!stopping_) {
    const std::size_t need = std::min(conn->assembler.needed(), scratch.size());
    if (!conn->stream->read_exact(scratch.data(), need).is_ok()) break;
    if (!on_bytes(conn, std::span<const std::byte>(scratch.data(), need)).is_ok()) break;
  }
  // See drop_lane_conn: our endpoint must close so an in-process peer
  // blocked in read_exact wakes up and redials.
  conn->stream->close();
}

Status IonServer::on_bytes(const std::shared_ptr<ClientConn>& conn,
                           std::span<const std::byte> bytes) {
  return conn->assembler.feed(
      bytes,
      [&](std::span<const std::byte, FrameHeader::kWireSize> hdr) {
        return on_header(*conn, hdr);
      },
      [&] { return on_frame(conn); });
}

Result<FrameAssembler::Sink> IonServer::on_header(
    ClientConn& conn, std::span<const std::byte, FrameHeader::kWireSize> hdr_bytes) {
  auto hdr = FrameHeader::decode(hdr_bytes);
  if (!hdr.is_ok()) {
    // A corrupted header is unrecoverable on this connection: the framing
    // is lost (payload_len is untrustworthy), so drop the client and let
    // its reconnect-and-replay path recover. Protocol violations (valid
    // CRC, bad fields) are a hostile or broken peer — also dropped.
    if (hdr.code() == Errc::checksum_error) {
      c_header_crc_errors_.inc();
      if (fr_) fr_->record("hdr_crc_error", -1, 0, 0, static_cast<int>(hdr.code()));
    } else {
      c_frames_rejected_.inc();
      if (fr_) fr_->record("frame_rejected", -1, 0, 0, static_cast<int>(hdr.code()));
    }
    IOFWD_LOG_WARN("dropping client: %s", hdr.status().to_string().c_str());
    return hdr.status();
  }
  const FrameHeader req = hdr.value();
  const auto arrival = std::chrono::steady_clock::now();
  if (req.type != MsgType::request) {
    c_frames_rejected_.inc();
    IOFWD_LOG_WARN("unexpected frame type from client");
    return Status(Errc::protocol_error, "unexpected frame type");
  }
  // Ops that carry no request payload must say so: a nonzero payload_len
  // would desynchronize the stream (those bytes were never sent, or worse,
  // are a smuggled frame). `read` passes the requested length here and
  // `open`/`write` legitimately carry payloads.
  if (req.payload_len != 0 &&
      (req.op == OpCode::close || req.op == OpCode::fsync || req.op == OpCode::fstat ||
       req.op == OpCode::shutdown || req.op == OpCode::hello || req.op == OpCode::ping)) {
    c_frames_rejected_.inc();
    IOFWD_LOG_WARN("dropping client: unexpected payload on %s", opcode_name(req.op));
    return Status(Errc::protocol_error, "unexpected payload");
  }
  // hello is control-plane: it gets its own counter and stays out of
  // server.ops so op accounting still means "forwarded I/O calls".
  // Protocol chatter (hello negotiation, ping probes) is not forwarded I/O.
  if (req.op != OpCode::hello && req.op != OpCode::ping) c_ops_.inc();

  RxPending& rx = conn.rx;
  rx = RxPending{};
  rx.req = req;
  rx.arrival = arrival;

  FrameAssembler::Sink sink;
  switch (req.op) {
    case OpCode::open:
      rx.staging = RxPending::Staging::heap;
      rx.heap.resize(req.payload_len);
      sink = {req.payload_len, rx.heap.data()};
      break;
    case OpCode::write: {
      // Staging space comes from the BML pool under a bounded wait, chosen
      // before the payload bytes are consumed (same ordering as the old
      // blocking receiver, so backpressure semantics are unchanged):
      // exhaustion degrades to a BML-less synchronous pass-through instead
      // of blocking the lane forever.
      auto buf = pool_.try_acquire(req.payload_len);
      if (!buf.is_ok() && buf.code() == Errc::would_block) {
        buf = cfg_.bml_wait_ms > 0
                  ? pool_.acquire_for(req.payload_len,
                                      std::chrono::milliseconds(cfg_.bml_wait_ms))
                  : pool_.acquire(req.payload_len);
      }
      if (buf.is_ok()) {
        rx.staging = RxPending::Staging::bml;
        rx.bml = std::move(buf).value();
        sink = {req.payload_len, rx.bml.data()};
      } else if (buf.code() == Errc::timed_out) {
        // Degraded mode: receive into plain heap memory and execute inline,
        // synchronously — slower, but bounded and correct.
        rx.staging = RxPending::Staging::heap;
        rx.degraded = true;
        rx.heap.resize(req.payload_len);
        sink = {req.payload_len, rx.heap.data()};
      } else {
        // Oversize request: swallow the payload without storing it, bounce
        // at frame completion.
        rx.staging = RxPending::Staging::discard;
        rx.bounce = buf.status();
        sink = {req.payload_len, nullptr};
      }
      break;
    }
    default:
      // read's payload_len is the requested length, not wire bytes; the
      // zero-payload ops were validated above.
      sink = {0, nullptr};
      break;
  }
  return sink;
}

Status IonServer::on_frame(const std::shared_ptr<ClientConn>& conn) {
  RxPending& rx = conn->rx;
  const FrameHeader req = rx.req;
  switch (req.op) {
    case OpCode::hello:
      handle_hello(*conn, req);
      break;
    case OpCode::ping:
      handle_ping(*conn, req);
      break;
    case OpCode::open:
      handle_open(*conn, req, rx.heap, rx.arrival);
      break;
    case OpCode::write:
      handle_write(conn, rx);
      break;
    case OpCode::read:
      handle_read(conn, req, rx.arrival);
      break;
    case OpCode::fsync:
      handle_fsync(*conn, req, rx.arrival);
      break;
    case OpCode::fstat:
      handle_fstat(*conn, req, rx.arrival);
      break;
    case OpCode::close:
      handle_close(*conn, req, rx.arrival);
      break;
    case OpCode::shutdown:
      enqueue_reply(*conn, req, Status::ok());
      // The goodbye must beat the teardown: drop_lane_conn closes the stream
      // as soon as we return shutdown, so flush the queue first.
      flush_send_queue_blocking(*conn);
      rx = RxPending{};
      return Status(Errc::shutdown, "client requested shutdown");
  }
  rx = RxPending{};  // drop payload staging before the next frame
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Reply path (DESIGN.md §15)
// ---------------------------------------------------------------------------

void IonServer::enqueue_reply(ClientConn& conn, const FrameHeader& req, Status status) {
  enqueue_reply(conn, req, std::move(status), ReplyPayload{});
}

void IonServer::enqueue_reply(ClientConn& conn, const FrameHeader& req, Status status,
                              ReplyPayload payload, bool staged) {
  FrameHeader rep;
  rep.type = MsgType::reply;
  rep.op = req.op;
  rep.fd = req.fd;
  rep.seq = req.seq;
  rep.offset = req.offset;
  rep.status = static_cast<std::int32_t>(status.code());
  rep.payload_len = payload.bytes.size();
  if (staged) rep.flags |= FrameHeader::kFlagStaged;
  rep.version = conn.version.load(std::memory_order_relaxed);
  // The CRC is computed straight from the lease bytes — the single pass the
  // payload takes through the CPU before the kernel gathers it.
  if (rep.version >= 1 && !payload.bytes.empty()) rep.stamp_payload_crc(payload.bytes);

  if (conn.lane == nullptr || conn.wfd < 0) {
    // Blocking fallback: streams without write readiness (feed_bytes'
    // scripted stream, blocking receiver conns, exotic transports) reply
    // inline exactly as the pre-async server did.
    c_reply_sync_fallback_.inc();
    std::byte buf[FrameHeader::kWireSize];
    rep.encode(std::span<std::byte, FrameHeader::kWireSize>(buf));
    std::scoped_lock lock(conn.write_mu);
    if (!conn.stream->write_all(buf, sizeof buf).is_ok()) return;
    if (!payload.bytes.empty()) {
      if (!conn.stream->write_all(payload.bytes.data(), payload.bytes.size()).is_ok()) return;
      c_bytes_out_.add(payload.bytes.size());
    }
    return;
  }

  SendEntry e;
  rep.encode(std::span<std::byte, FrameHeader::kWireSize>(e.hdr));
  if (payload.copy) {
    e.copy.assign(payload.bytes.begin(), payload.bytes.end());
    e.payload = e.copy;
    c_reply_copy_bytes_.add(e.copy.size());
  } else {
    e.bml = std::move(payload.bml);
    e.bb_pin = std::move(payload.bb_pin);
    e.payload = payload.bytes;
  }

  std::scoped_lock lk(conn.send_mu);
  if (conn.peer_gone) {
    c_reply_peer_gone_.inc();
    return;  // entry destructor releases the lease
  }
  if (conn.sendq_bytes + e.total() > cfg_.send_queue_bytes) {
    // The peer has stopped reading and the bound is hit: drop the client
    // rather than buffer without limit. Closing our end wakes the lane via
    // the read side (EOF edge), which reaps the registration.
    c_reply_queue_full_.inc();
    abort_send_queue_locked(conn);
    conn.stream->close();
    return;
  }
  const std::size_t total = e.total();
  conn.sendq.push_back(std::move(e));
  conn.sendq_bytes += total;
  conn.lane->note_send_queued(static_cast<std::int64_t>(total));
  c_replies_enqueued_.inc();
  drain_send_queue_locked(conn);
}

void IonServer::drain_send_queue_locked(ClientConn& conn) {
  Lane& lane = *conn.lane;
  while (!conn.sendq.empty()) {
    // Gather the front entries' unsent header/payload slices.
    std::array<std::span<const std::byte>, kMaxGatherSpans> spans;
    std::size_t nspans = 0;
    for (const SendEntry& e : conn.sendq) {
      if (nspans + 2 > spans.size()) break;
      if (e.sent < FrameHeader::kWireSize) {
        spans[nspans++] = std::span<const std::byte>(e.hdr).subspan(e.sent);
      }
      const std::size_t psent =
          e.sent > FrameHeader::kWireSize ? e.sent - FrameHeader::kWireSize : 0;
      if (psent < e.payload.size()) spans[nspans++] = e.payload.subspan(psent);
    }
    lane.c_send_writev_calls.inc();
    auto r = conn.stream->writev_some(std::span<const std::span<const std::byte>>(
        spans.data(), nspans));
    if (!r.is_ok() || r.value() == 0) {
      if (r.is_ok() || r.code() == Errc::would_block) {
        arm_write_interest_locked(conn);
        return;
      }
      abort_send_queue_locked(conn);
      conn.stream->close();
      return;
    }
    std::size_t n = r.value();
    lane.c_send_bytes.add(n);
    conn.sendq_bytes -= n;
    lane.note_send_queued(-static_cast<std::int64_t>(n));
    while (n > 0) {
      SendEntry& e = conn.sendq.front();
      const std::size_t take = std::min(n, e.total() - e.sent);
      e.sent += take;
      n -= take;
      if (e.sent == e.total()) {
        c_replies_sent_.inc();
        c_bytes_out_.add(e.payload.size());
        conn.sendq.pop_front();  // releases the BML lease / bb pin
      }
    }
  }
  // Queue drained: same-fd connections drop write interest so an idle open
  // socket stops waking the lane on every send-buffer transition.
  if (conn.epollout_armed && conn.wfd == conn.rfd) {
    if (lane.loop.modify(conn.rfd, conn.lane_key, Interest::read).is_ok()) {
      conn.epollout_armed = false;
    }
  }
}

void IonServer::arm_write_interest_locked(ClientConn& conn) {
  Lane& lane = *conn.lane;
  lane.c_send_would_blocks.inc();
  if (conn.wfd == conn.rfd) {
    // Socket-style: one fd carries both directions; widen the registration.
    // EPOLL_CTL_MOD re-evaluates readiness, so a buffer that drained between
    // our would_block and this call still delivers an immediate EPOLLOUT.
    if (conn.epollout_armed) return;
    if (lane.loop.modify(conn.rfd, conn.lane_key, Interest::read_write).is_ok()) {
      conn.epollout_armed = true;
      return;
    }
  } else {
    // Shim-style (InProcPipe): a separate eventfd ticks when the full pipe
    // gains space. Registered once, read-interest, keyed with the send bit.
    if (conn.shim_registered) return;
    if (lane.loop.add(conn.wfd, conn.lane_key | kSendKeyBit).is_ok()) {
      conn.shim_registered = true;
      return;
    }
  }
  // Could not arm (fd limit?): the reply cannot ever complete — drop it.
  abort_send_queue_locked(conn);
  conn.stream->close();
}

void IonServer::abort_send_queue_locked(ClientConn& conn) {
  if (!conn.sendq.empty()) {
    c_reply_peer_gone_.add(conn.sendq.size());
    if (conn.lane != nullptr) {
      conn.lane->note_send_queued(-static_cast<std::int64_t>(conn.sendq_bytes));
    }
  }
  conn.sendq.clear();  // SendEntry destructors release leases and pins
  conn.sendq_bytes = 0;
  conn.peer_gone = true;
}

void IonServer::on_send_ready(ClientConn& conn) {
  std::scoped_lock lk(conn.send_mu);
  if (conn.peer_gone || conn.sendq.empty()) return;
  drain_send_queue_locked(conn);
}

void IonServer::flush_send_queue_blocking(ClientConn& conn) {
  while (!stopping_) {
    {
      std::scoped_lock lk(conn.send_mu);
      if (conn.sendq.empty() || conn.peer_gone) return;
      drain_send_queue_locked(conn);
      if (conn.sendq.empty() || conn.peer_gone) return;
    }
    // Still blocked: wait for write readiness off-lock. Same-fd streams wait
    // for POLLOUT on the fd itself; shim fds tick readable.
    ::pollfd p{};
    p.fd = conn.wfd;
    p.events = static_cast<short>(conn.wfd == conn.rfd ? POLLOUT : POLLIN);
    (void)::poll(&p, 1, 10);
  }
}

Status IonServer::consume_deferred(int fd) {
  std::scoped_lock lock(db_mu_);
  Status st = db_.consume_pending_error(fd);
  if (!st.is_ok() && st.code() != Errc::bad_descriptor) {
    c_deferred_errors_.inc();
  }
  return st;
}

void IonServer::drain_descriptor(int fd) {
  std::unique_lock lock(db_mu_);
  db_cv_.wait(lock, [&] { return db_.in_flight(fd) == 0; });
}

void IonServer::note_completed(int fd, std::uint64_t seq, const Status& st) {
  std::scoped_lock lock(db_mu_);
  db_.complete_op(fd, seq, st);
  db_cv_.notify_all();
}

void IonServer::handle_hello(ClientConn& conn, const FrameHeader& req) {
  // Version negotiation (DESIGN.md §12): the client advertises its highest
  // supported version; both sides settle on the minimum. The reply header's
  // version field carries the verdict. A v0 client never sends hello and
  // the connection simply stays at version 0 (no payload checksums).
  const std::uint16_t negotiated = std::min(req.version, cfg_.max_wire_version);
  conn.version.store(negotiated, std::memory_order_relaxed);
  // hello carries no file offset; the field doubles as the tenant (client/
  // job) id that keys fair-share scheduling and the QoS buckets (§17). A v0
  // client never says hello and stays tenant 0.
  conn.tenant.store(req.offset, std::memory_order_relaxed);
  c_hellos_.inc();
  enqueue_reply(conn, req, Status::ok());
}

void IonServer::handle_ping(ClientConn& conn, const FrameHeader& req) {
  // Liveness probe (DESIGN.md §16): answered inline on the receiver, never
  // queued behind forwarded I/O — a wedged work queue still answers pings,
  // which is exactly what the health layer wants to distinguish "slow" from
  // "gone". No descriptor, no payload, no deferred-error gate.
  enqueue_reply(conn, req, Status::ok());
}

void IonServer::handle_open(ClientConn& conn, const FrameHeader& req,
                            std::span<const std::byte> path_bytes,
                            std::chrono::steady_clock::time_point arrival) {
  if (!req.payload_crc_ok(path_bytes)) {
    // Framing is intact (the header CRC passed), so the connection is still
    // usable: bounce just this op and let the client replay it.
    c_payload_crc_errors_.inc();
    if (fr_) fr_->record("payload_crc_error", req.fd, req.payload_len, 0,
                         static_cast<int>(Errc::checksum_error));
    const Status st(Errc::checksum_error, "open path crc mismatch");
    observe_op(req, arrival, st);
    enqueue_reply(conn, req, st);
    return;
  }
  std::string path;
  if (!path_bytes.empty()) {
    path.assign(reinterpret_cast<const char*>(path_bytes.data()), path_bytes.size());
  }
  Status st;
  {
    std::scoped_lock lock(db_mu_);
    if (!db_.open_descriptor(req.fd)) {
      st = Status(Errc::invalid_argument, "fd already open");
    }
  }
  if (st.is_ok()) {
    st = backend_->open(req.fd, path);
    if (!st.is_ok()) {
      std::scoped_lock lock(db_mu_);
      (void)db_.close_descriptor(req.fd);
    }
  }
  observe_op(req, arrival, st);
  enqueue_reply(conn, req, st);
}

void IonServer::handle_close(ClientConn& conn, const FrameHeader& req,
                             std::chrono::steady_clock::time_point arrival) {
  std::optional<obs::RuntimeTracer::Span> sp;
  if (tracer_ != nullptr) sp.emplace(tracer_->span(opcode_name(req.op), "op", kInlineLane));
  // Close drains: all async operations must land so the final status
  // (including deferred errors) is accurate.
  drain_descriptor(req.fd);
  Status deferred;
  {
    std::scoped_lock lock(db_mu_);
    deferred = db_.close_descriptor(req.fd);
  }
  if (!deferred.is_ok() && deferred.code() != Errc::bad_descriptor) {
    c_deferred_errors_.inc();
  }
  Status be = backend_->close(req.fd);
  const Status final_st = deferred.is_ok() ? be : deferred;
  observe_op(req, arrival, final_st);
  enqueue_reply(conn, req, final_st);
}

void IonServer::handle_fsync(ClientConn& conn, const FrameHeader& req,
                             std::chrono::steady_clock::time_point arrival) {
  std::optional<obs::RuntimeTracer::Span> sp;
  if (tracer_ != nullptr) sp.emplace(tracer_->span(opcode_name(req.op), "op", kInlineLane));
  drain_descriptor(req.fd);
  if (Status deferred = consume_deferred(req.fd); !deferred.is_ok()) {
    observe_op(req, arrival, deferred);
    enqueue_reply(conn, req, deferred);
    return;
  }
  if (past_deadline(req, arrival)) {
    // The drain barrier outlived the op's budget: bounce without executing.
    c_deadline_expired_.inc();
    const Status st(Errc::timed_out, "deadline expired in drain");
    observe_op(req, arrival, st);
    enqueue_reply(conn, req, st);
    return;
  }
  const Status st = backend_->fsync(req.fd);
  observe_op(req, arrival, st);
  enqueue_reply(conn, req, st);
}

void IonServer::handle_fstat(ClientConn& conn, const FrameHeader& req,
                             std::chrono::steady_clock::time_point arrival) {
  // Attribute queries are synchronous (Sec. IV): drain in-flight async
  // writes so the size is accurate, surface deferred errors first.
  drain_descriptor(req.fd);
  if (Status deferred = consume_deferred(req.fd); !deferred.is_ok()) {
    observe_op(req, arrival, deferred);
    enqueue_reply(conn, req, deferred);
    return;
  }
  if (past_deadline(req, arrival)) {
    c_deadline_expired_.inc();
    const Status st(Errc::timed_out, "deadline expired in drain");
    observe_op(req, arrival, st);
    enqueue_reply(conn, req, st);
    return;
  }
  auto sz = backend_->size(req.fd);
  if (!sz.is_ok()) {
    observe_op(req, arrival, sz.status());
    enqueue_reply(conn, req, sz.status());
    return;
  }
  std::byte payload[8];
  const std::uint64_t v = sz.value();
  std::memcpy(payload, &v, 8);
  observe_op(req, arrival, Status::ok());
  // The 8-byte size lives on this stack frame: the one reply whose payload
  // is copied onto the queue (counted in server.reply.payload_copy_bytes).
  ReplyPayload p;
  p.bytes = std::span<const std::byte>(payload, 8);
  p.copy = true;
  enqueue_reply(conn, req, Status::ok(), std::move(p));
}

void IonServer::handle_write(const std::shared_ptr<ClientConn>& conn, RxPending& rx) {
  const FrameHeader req = rx.req;
  const auto arrival = rx.arrival;
  if (rx.staging == RxPending::Staging::discard) {
    // Oversize request: the assembler already swallowed the payload; bounce.
    observe_op(req, arrival, rx.bounce);
    enqueue_reply(*conn, req, rx.bounce);
    return;
  }
  c_bytes_in_.add(req.payload_len);
  const std::span<const std::byte> data =
      rx.staging == RxPending::Staging::bml
          ? std::span<const std::byte>(rx.bml.data(), req.payload_len)
          : std::span<const std::byte>(rx.heap.data(), rx.heap.size());

  // Verify the payload checksum before the bytes reach the BML staging path
  // or the descriptor database — a flipped bit bounces here, synchronously,
  // so the staged early-ack can never acknowledge corrupt data.
  if (!req.payload_crc_ok(data)) {
    rx.bml.release();
    c_payload_crc_errors_.inc();
    if (fr_) fr_->record("payload_crc_error", req.fd, req.payload_len, 0,
                         static_cast<int>(Errc::checksum_error));
    const Status st(Errc::checksum_error, "write payload crc mismatch");
    observe_op(req, arrival, st);
    enqueue_reply(*conn, req, st);
    return;
  }

  if (rx.degraded) {
    // Degraded pass-through (BML wait expired at header time): execute
    // inline, synchronously — slower, but bounded and correct.
    c_bml_timeouts_.inc();
    c_degraded_passthrough_.inc();
    if (cfg_.exec == ExecModel::work_queue_async) {
      if (Status deferred = consume_deferred(req.fd); !deferred.is_ok()) {
        observe_op(req, arrival, deferred);
        enqueue_reply(*conn, req, deferred);
        return;
      }
    }
    std::optional<obs::RuntimeTracer::Span> sp;
    if (tracer_ != nullptr) sp.emplace(tracer_->span("write (passthrough)", "op", kInlineLane));
    const Status st = do_write(req, data);
    observe_op(req, arrival, st);
    enqueue_reply(*conn, req, st);
    return;
  }

  // Deferred-error gate (async mode): surface the oldest unreported error
  // instead of executing this operation.
  if (cfg_.exec == ExecModel::work_queue_async) {
    if (Status deferred = consume_deferred(req.fd); !deferred.is_ok()) {
      observe_op(req, arrival, deferred);
      enqueue_reply(*conn, req, deferred);
      return;
    }
  }

  Task t;
  t.conn = conn;
  t.req = req;
  t.payload = std::move(rx.bml);
  t.arrival = arrival;

  const SchedMeta meta = sched_meta(*conn, req, arrival);

  // Per-tenant admission (§17): an over-budget write is demoted to sync
  // staging — same lever as the overload hysteresis below, but keyed to the
  // ONE tenant that blew its token bucket, so only that tenant self-throttles.
  bool throttled = qos_ && !qos_->admit(meta.tenant, req.payload_len);
  if (cfg_.qos_fault_hook && cfg_.qos_fault_hook(meta.tenant, req.payload_len)) {
    throttled = true;
  }

  // Overload hysteresis: past the queue-depth high watermark, staged writes
  // are acknowledged at completion (sync staging) so clients self-throttle.
  ExecModel exec = cfg_.exec;
  if (exec == ExecModel::work_queue_async && (throttled || degraded_now(queue_.size()))) {
    exec = ExecModel::work_queue;
    c_degraded_sync_writes_.inc();
  }

  switch (exec) {
    case ExecModel::thread_per_client:
      execute_task(t, kInlineLane);  // inline, synchronous
      break;
    case ExecModel::work_queue:
      t.reply_on_completion = true;
      if (!queue_.push(std::move(t), meta)) {
        enqueue_reply(*conn, req, Status(Errc::shutdown, "server stopping"));
      }
      break;
    case ExecModel::work_queue_async: {
      std::uint64_t seq_val = 0;
      {
        std::scoped_lock lock(db_mu_);
        auto seq = db_.begin_op(req.fd);
        if (!seq) {
          enqueue_reply(*conn, req, Status(Errc::bad_descriptor, "fd not open"));
          return;
        }
        seq_val = *seq;
      }
      t.db_seq = seq_val;
      t.record_in_db = true;
      // Early acknowledgement: the application is unblocked as soon as the
      // payload sits in the BML buffer.
      enqueue_reply(*conn, req, Status::ok(), {}, /*staged=*/true);
      if (!queue_.push(std::move(t), meta)) {
        // Server stopping: mark the op completed so close-drain cannot hang.
        note_completed(req.fd, seq_val, Status(Errc::shutdown, "server stopping"));
      }
      break;
    }
  }
  if (tracer_ != nullptr && exec != ExecModel::thread_per_client) {
    tracer_->counter("queue_depth", static_cast<double>(queue_.size()));
    tracer_->counter("bml_in_use", static_cast<double>(pool_.in_use()));
  }
}

void IonServer::handle_read(const std::shared_ptr<ClientConn>& conn, const FrameHeader& req,
                            std::chrono::steady_clock::time_point arrival) {
  if (cfg_.exec == ExecModel::work_queue_async) {
    // Read barrier: in-flight writes on this descriptor land first.
    drain_descriptor(req.fd);
    if (Status deferred = consume_deferred(req.fd); !deferred.is_ok()) {
      observe_op(req, arrival, deferred);
      enqueue_reply(*conn, req, deferred);
      return;
    }
  }
  Task t;
  t.conn = conn;
  t.req = req;
  t.reply_on_completion = true;
  t.arrival = arrival;
  const SchedMeta meta = sched_meta(*conn, req, arrival);
  if (cfg_.exec == ExecModel::thread_per_client) {
    execute_task(t, kInlineLane);
  } else if (!queue_.push(std::move(t), meta)) {
    enqueue_reply(*conn, req, Status(Errc::shutdown, "server stopping"));
  }
}

// ---------------------------------------------------------------------------
// Execution path (receiver thread or worker pool)
// ---------------------------------------------------------------------------

void IonServer::worker_loop(int lane) {
  if (tracer_ != nullptr) tracer_->set_thread_name(lane, "worker " + std::to_string(lane));
  while (true) {
    auto batch = queue_.pop_batch(cfg_.multiplex_depth, cfg_.balanced_batches);
    if (batch.empty()) return;  // queue closed and drained
    tasks_in_flight_.fetch_add(batch.size(), std::memory_order_acq_rel);
    if (tracer_ != nullptr) {
      tracer_->counter("queue_depth", static_cast<double>(queue_.size()));
    }
    for (auto& t : batch) {
      h_queue_wait_us_.record(us_since(t.arrival));
      execute_task(t, lane);
      tasks_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

Status IonServer::do_write(const FrameHeader& req, std::span<const std::byte> data) {
  if (!filters_.empty()) {
    // Data-filtering offload: transform on the ION's otherwise idle cycles,
    // then write the (possibly reduced) payload at the mapped offset.
    std::vector<std::byte> transformed(data.begin(), data.end());
    const std::uint64_t before = transformed.size();
    Status st = filters_.apply(req.fd, req.offset, transformed);
    if (!st.is_ok()) return st;
    c_filter_bytes_in_.add(before);
    c_filter_bytes_out_.add(transformed.size());
    auto r = backend_->write(req.fd, filters_.map_offset(req.offset), transformed);
    return r.is_ok() ? Status::ok() : r.status();
  }
  auto r = backend_->write(req.fd, req.offset, data);
  return r.is_ok() ? Status::ok() : r.status();
}

void IonServer::execute_task(Task& t, int lane) {
  std::optional<obs::RuntimeTracer::Span> sp;
  if (tracer_ != nullptr) sp.emplace(tracer_->span(opcode_name(t.req.op), "op", lane));
  // Deadline enforcement: an op whose budget ran out while queued bounces
  // with timed_out without touching the backend. For async-staged writes the
  // bounce follows the deferred-error path (the staged ack already went out).
  if (past_deadline(t.req, t.arrival)) {
    t.payload.release();
    c_deadline_expired_.inc();
    const Status st(Errc::timed_out, "deadline expired in queue");
    // Observe before note_completed: completion releases fsync/close drain
    // barriers, so recording first keeps op metrics and flight-recorder
    // entries ordered before anything the barrier unblocks.
    observe_op(t.req, t.arrival, st);
    if (t.record_in_db) note_completed(t.req.fd, t.db_seq, st);
    if (t.reply_on_completion || cfg_.exec == ExecModel::thread_per_client) {
      enqueue_reply(*t.conn, t.req, st);
    }
    return;
  }
  if (t.req.op == OpCode::write) {
    Status st;
    if (!filters_.empty()) {
      // The filter path copies out of BML anyway; release the lease early.
      std::vector<std::byte> data(t.payload.data(), t.payload.data() + t.req.payload_len);
      t.payload.release();
      st = do_write(t.req, data);
    } else {
      st = do_write(t.req,
                    std::span<const std::byte>(t.payload.data(), t.req.payload_len));
      t.payload.release();  // back to the BML pool as early as possible
    }
    observe_op(t.req, t.arrival, st);  // before note_completed — see above
    if (t.record_in_db) {
      note_completed(t.req.fd, t.db_seq, st);
    }
    if (t.reply_on_completion || cfg_.exec == ExecModel::thread_per_client) {
      enqueue_reply(*t.conn, t.req, st);
    }
    return;
  }
  assert(t.req.op == OpCode::read);
  // Zero-copy fast path: a read fully covered by one staged extent pins the
  // extent's lease and replies straight out of the cache — the payload is
  // never copied, and the pin keeps the bytes alive until the lane's last
  // writev for this reply is accepted (DESIGN.md §15).
  if (bb_ != nullptr) {
    if (auto pin = bb_->read_pinned(t.req.fd, t.req.offset, t.req.payload_len)) {
      observe_op(t.req, t.arrival, Status::ok());
      ReplyPayload p;
      p.bytes = pin->bytes;
      p.bb_pin = std::move(pin->lease);
      enqueue_reply(*t.conn, t.req, Status::ok(), std::move(p));
      return;
    }
  }
  auto buf = pool_.acquire(t.req.payload_len);
  if (!buf.is_ok()) {
    observe_op(t.req, t.arrival, buf.status());
    enqueue_reply(*t.conn, t.req, buf.status());
    return;
  }
  Buffer out = std::move(buf).value();
  auto r = backend_->read(t.req.fd, t.req.offset,
                          std::span<std::byte>(out.data(), t.req.payload_len));
  if (!r.is_ok()) {
    observe_op(t.req, t.arrival, r.status());
    enqueue_reply(*t.conn, t.req, r.status());
    return;
  }
  observe_op(t.req, t.arrival, Status::ok());
  // The BML lease rides the queue with the reply: the backend read landed in
  // `out`, the entry views it, and the pool gets the buffer back only after
  // the kernel has gathered the last byte. No reply memcpy.
  ReplyPayload p;
  p.bytes = std::span<const std::byte>(out.data(), r.value());
  p.bml = std::move(out);
  enqueue_reply(*t.conn, t.req, Status::ok(), std::move(p));
}

}  // namespace iofwd::rt
