#include "rt/wire.hpp"

#include "core/crc32c.hpp"

namespace iofwd::rt {

namespace {

template <typename T>
void put(std::byte*& p, T v) {
  std::memcpy(p, &v, sizeof v);
  p += sizeof v;
}

template <typename T>
T take(const std::byte*& p) {
  T v;
  std::memcpy(&v, p, sizeof v);
  p += sizeof v;
  return v;
}

// An opcode is valid iff opcode_name() knows it; the switch below and the
// enum are kept in lock-step by kMaxOpCode.
bool valid_opcode(std::uint8_t op) {
  switch (static_cast<OpCode>(op)) {
    case OpCode::open:
    case OpCode::write:
    case OpCode::read:
    case OpCode::close:
    case OpCode::fsync:
    case OpCode::shutdown:
    case OpCode::fstat:
    case OpCode::hello:
    case OpCode::ping:
      return true;
  }
  return false;
}

static_assert(static_cast<std::uint8_t>(OpCode::ping) == kMaxOpCode,
              "kMaxOpCode must track the highest OpCode; update valid_opcode() "
              "and opcode_name() together");

}  // namespace

void FrameHeader::encode(std::span<std::byte, kWireSize> out) const {
  std::byte* p = out.data();
  put(p, magic);
  put(p, static_cast<std::uint8_t>(type));
  put(p, static_cast<std::uint8_t>(op));
  put(p, flags);
  put(p, version);
  put(p, klass);
  put(p, reserved);
  put(p, fd);
  put(p, status);
  put(p, seq);
  put(p, offset);
  put(p, payload_len);
  put(p, deadline_ms);
  put(p, payload_crc);
  put(p, crc32c(out.data(), kCrcCoverage));
}

Result<FrameHeader> FrameHeader::decode(std::span<const std::byte, kWireSize> in) {
  // Integrity first: any flipped bit in the header — including inside the
  // magic or opcode — is a checksum fault, not a protocol violation.
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, in.data() + kCrcCoverage, sizeof stored_crc);
  if (stored_crc != crc32c(in.data(), kCrcCoverage)) {
    return Status(Errc::checksum_error, "header crc mismatch");
  }

  const std::byte* p = in.data();
  FrameHeader h;
  h.magic = take<std::uint32_t>(p);
  if (h.magic != kMagic) return Status(Errc::protocol_error, "bad magic");
  const auto type = take<std::uint8_t>(p);
  if (type != 1 && type != 2) return Status(Errc::protocol_error, "bad type");
  h.type = static_cast<MsgType>(type);
  const auto op = take<std::uint8_t>(p);
  if (!valid_opcode(op)) return Status(Errc::protocol_error, "bad opcode");
  h.op = static_cast<OpCode>(op);
  h.flags = take<std::uint16_t>(p);
  if ((h.flags & ~kFlagMask) != 0) return Status(Errc::protocol_error, "undefined flag bits");
  h.version = take<std::uint16_t>(p);
  // hello carries the sender's *highest* version (possibly above ours — the
  // receiver clamps); every other frame must carry a version we speak.
  if (h.version > kProtoVersion && h.op != OpCode::hello) {
    return Status(Errc::protocol_error, "unsupported version");
  }
  h.klass = take<std::uint8_t>(p);
  if (h.klass > kMaxPriorityClass) {
    return Status(Errc::protocol_error, "priority class out of range");
  }
  h.reserved = take<std::uint8_t>(p);
  if (h.reserved != 0) return Status(Errc::protocol_error, "reserved field not zero");
  h.fd = take<std::int32_t>(p);
  h.status = take<std::int32_t>(p);
  h.seq = take<std::uint64_t>(p);
  h.offset = take<std::uint64_t>(p);
  h.payload_len = take<std::uint64_t>(p);
  if (h.payload_len > kMaxPayload) return Status(Errc::message_too_large, "payload too large");
  h.deadline_ms = take<std::uint32_t>(p);
  h.payload_crc = take<std::uint32_t>(p);
  h.header_crc = stored_crc;
  return h;
}

Result<FrameHeader> FrameHeader::decode(std::span<const std::byte> in) {
  if (in.size() != kWireSize) return Status(Errc::protocol_error, "truncated header");
  return decode(std::span<const std::byte, kWireSize>(in.data(), kWireSize));
}

void FrameHeader::stamp_payload_crc(std::span<const std::byte> payload) {
  payload_crc = crc32c(payload);
  flags |= kFlagPayloadCrc;
}

bool FrameHeader::payload_crc_ok(std::span<const std::byte> payload) const {
  if ((flags & kFlagPayloadCrc) == 0) return true;
  return crc32c(payload) == payload_crc;
}

const char* opcode_name(OpCode op) {
  switch (op) {
    case OpCode::open: return "open";
    case OpCode::write: return "write";
    case OpCode::read: return "read";
    case OpCode::close: return "close";
    case OpCode::fsync: return "fsync";
    case OpCode::shutdown: return "shutdown";
    case OpCode::fstat: return "fstat";
    case OpCode::hello: return "hello";
    case OpCode::ping: return "ping";
  }
  return "?";
}

}  // namespace iofwd::rt
