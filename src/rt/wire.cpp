#include "rt/wire.hpp"

namespace iofwd::rt {

namespace {

template <typename T>
void put(std::byte*& p, T v) {
  std::memcpy(p, &v, sizeof v);
  p += sizeof v;
}

template <typename T>
T take(const std::byte*& p) {
  T v;
  std::memcpy(&v, p, sizeof v);
  p += sizeof v;
  return v;
}

}  // namespace

void FrameHeader::encode(std::span<std::byte, kWireSize> out) const {
  std::byte* p = out.data();
  put(p, magic);
  put(p, static_cast<std::uint8_t>(type));
  put(p, static_cast<std::uint8_t>(op));
  put(p, flags);
  put(p, fd);
  put(p, status);
  put(p, seq);
  put(p, offset);
  put(p, payload_len);
  put(p, deadline_ms);
}

Result<FrameHeader> FrameHeader::decode(std::span<const std::byte, kWireSize> in) {
  const std::byte* p = in.data();
  FrameHeader h;
  h.magic = take<std::uint32_t>(p);
  if (h.magic != kMagic) return Status(Errc::protocol_error, "bad magic");
  const auto type = take<std::uint8_t>(p);
  if (type != 1 && type != 2) return Status(Errc::protocol_error, "bad type");
  h.type = static_cast<MsgType>(type);
  const auto op = take<std::uint8_t>(p);
  if (op < 1 || op > 7) return Status(Errc::protocol_error, "bad opcode");
  h.op = static_cast<OpCode>(op);
  h.flags = take<std::uint16_t>(p);
  h.fd = take<std::int32_t>(p);
  h.status = take<std::int32_t>(p);
  h.seq = take<std::uint64_t>(p);
  h.offset = take<std::uint64_t>(p);
  h.payload_len = take<std::uint64_t>(p);
  h.deadline_ms = take<std::uint32_t>(p);
  if (h.payload_len > kMaxPayload) return Status(Errc::message_too_large, "payload too large");
  return h;
}

const char* opcode_name(OpCode op) {
  switch (op) {
    case OpCode::open: return "open";
    case OpCode::write: return "write";
    case OpCode::read: return "read";
    case OpCode::close: return "close";
    case OpCode::fsync: return "fsync";
    case OpCode::shutdown: return "shutdown";
    case OpCode::fstat: return "fstat";
  }
  return "?";
}

}  // namespace iofwd::rt
