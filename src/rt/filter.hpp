// Data-filtering offload on the I/O node.
//
// The paper's conclusion proposes exactly this: "Since the compute
// capabilities of the I/O forwarding nodes are usually underutilized, we
// are investigating techniques to offload data filtering onto the I/O
// forwarding nodes in order to reduce the amount of data written to storage
// as well as to facilitate in situ analytics."
//
// A DataFilter transforms a staged write payload on the ION before it
// reaches the backend — executed by the worker pool (or inline in the
// thread-per-client model), i.e. on exactly the CPU the paper observes to
// be underutilized. Filters may shrink the payload (data reduction) and may
// remap the file offset accordingly (e.g. a k:1 downsampler maps offset/k).
//
// Built-ins:
//   * DownsampleFilter — keep every k-th `element_bytes`-sized element.
//   * ZeroRleFilter    — run-length encodes zero bytes (sparse data).
//   * MomentsFilter    — in-situ analytics: min/max/sum/count of doubles,
//                        passthrough payload.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/status.hpp"

namespace iofwd::rt {

class DataFilter {
 public:
  virtual ~DataFilter() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // Transform the payload of a forwarded write in place. Analytics-style
  // filters simply observe; reducing filters replace the contents.
  virtual Status apply(int fd, std::uint64_t offset, std::vector<std::byte>& data) = 0;

  // Where the (possibly reduced) payload lands. Default: unchanged.
  [[nodiscard]] virtual std::uint64_t map_offset(std::uint64_t offset) const { return offset; }
};

// Keep the first element of every group of `stride` elements.
class DownsampleFilter final : public DataFilter {
 public:
  DownsampleFilter(std::uint32_t stride, std::uint32_t element_bytes = 8);

  [[nodiscard]] std::string name() const override;
  Status apply(int fd, std::uint64_t offset, std::vector<std::byte>& data) override;
  [[nodiscard]] std::uint64_t map_offset(std::uint64_t offset) const override {
    return offset / stride_;
  }

 private:
  std::uint32_t stride_;
  std::uint32_t element_bytes_;
};

// Run-length encodes runs of zero bytes:
//   literal run: u32 length with MSB clear, followed by the bytes;
//   zero run:    u32 length with MSB set, no bytes.
// decode() reverses it (used by tests and by readers of filtered files).
class ZeroRleFilter final : public DataFilter {
 public:
  [[nodiscard]] std::string name() const override { return "zero_rle"; }
  Status apply(int fd, std::uint64_t offset, std::vector<std::byte>& data) override;

  static Result<std::vector<std::byte>> decode(std::span<const std::byte> in);

  [[nodiscard]] std::uint64_t bytes_in() const { return bytes_in_; }
  [[nodiscard]] std::uint64_t bytes_out() const { return bytes_out_; }

 private:
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
};

// In-situ analytics: running min/max/sum/count over IEEE doubles streaming
// past; payload passes through untouched.
class MomentsFilter final : public DataFilter {
 public:
  struct Moments {
    double min = 0;
    double max = 0;
    double sum = 0;
    std::uint64_t count = 0;
    [[nodiscard]] double mean() const { return count ? sum / static_cast<double>(count) : 0; }
  };

  [[nodiscard]] std::string name() const override { return "moments"; }
  Status apply(int fd, std::uint64_t offset, std::vector<std::byte>& data) override;

  [[nodiscard]] Moments moments() const;

 private:
  mutable std::mutex mu_;
  Moments m_;
  bool any_ = false;
};

// Chain: applies filters in order, threading payload and offset mapping.
class FilterChain {
 public:
  void add(std::shared_ptr<DataFilter> f) { filters_.push_back(std::move(f)); }
  [[nodiscard]] bool empty() const { return filters_.empty(); }

  // Applies every filter; `data` is replaced when a filter transforms it.
  Status apply(int fd, std::uint64_t offset, std::vector<std::byte>& data) const;
  [[nodiscard]] std::uint64_t map_offset(std::uint64_t offset) const;

 private:
  std::vector<std::shared_ptr<DataFilter>> filters_;
};

}  // namespace iofwd::rt
