#include "rt/async_client.hpp"

#include <cstring>

namespace iofwd::rt {

AsyncClient::AsyncClient(std::unique_ptr<ByteStream> stream, int window)
    : stream_(std::move(stream)), window_(std::max(1, window)) {
  dispatcher_ = std::jthread([this] { dispatcher_loop(); });
}

AsyncClient::~AsyncClient() { shutdown(); }

void AsyncClient::shutdown() {
  {
    std::scoped_lock lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  stream_->close();  // unblocks the dispatcher
  window_cv_.notify_all();
}

std::size_t AsyncClient::outstanding() const {
  std::scoped_lock lock(mu_);
  return pending_.size();
}

Status AsyncClient::send_frame(FrameHeader& req, std::span<const std::byte> payload, bool is_read,
                               std::shared_ptr<Pending>& out) {
  std::unique_lock lock(mu_);
  window_cv_.wait(lock, [&] { return closed_ || static_cast<int>(pending_.size()) < window_; });
  if (closed_) return Status(Errc::shutdown, "client closed");

  req.type = MsgType::request;
  req.seq = next_seq_++;
  if (!payload.empty()) req.payload_len = payload.size();

  out = std::make_shared<Pending>();
  out->is_read = is_read;
  pending_[req.seq] = out;

  // Serialize the wire write under the same lock: frames must not interleave.
  std::byte buf[FrameHeader::kWireSize];
  req.encode(std::span<std::byte, FrameHeader::kWireSize>(buf));
  Status st = stream_->write_all(buf, sizeof buf);
  if (st.is_ok() && !payload.empty()) {
    st = stream_->write_all(payload.data(), payload.size());
  }
  if (!st.is_ok()) {
    pending_.erase(req.seq);
    out.reset();
  }
  return st;
}

std::future<Status> AsyncClient::submit(FrameHeader req, std::span<const std::byte> payload) {
  std::shared_ptr<Pending> p;
  if (Status st = send_frame(req, payload, /*is_read=*/false, p); !st.is_ok()) {
    std::promise<Status> failed;
    failed.set_value(st);
    return failed.get_future();
  }
  return p->status.get_future();
}

std::future<Result<std::vector<std::byte>>> AsyncClient::submit_read(FrameHeader req) {
  std::shared_ptr<Pending> p;
  if (Status st = send_frame(req, {}, /*is_read=*/true, p); !st.is_ok()) {
    std::promise<Result<std::vector<std::byte>>> failed;
    failed.set_value(st);
    return failed.get_future();
  }
  return p->data.get_future();
}

std::future<Status> AsyncClient::open(int fd, const std::string& path) {
  FrameHeader req;
  req.op = OpCode::open;
  req.fd = fd;
  return submit(req, std::as_bytes(std::span(path.data(), path.size())));
}

std::future<Status> AsyncClient::write(int fd, std::uint64_t offset,
                                       std::span<const std::byte> data) {
  FrameHeader req;
  req.op = OpCode::write;
  req.fd = fd;
  req.offset = offset;
  return submit(req, data);
}

std::future<Result<std::vector<std::byte>>> AsyncClient::read(int fd, std::uint64_t offset,
                                                              std::uint64_t len) {
  FrameHeader req;
  req.op = OpCode::read;
  req.fd = fd;
  req.offset = offset;
  req.payload_len = len;
  return submit_read(req);
}

std::future<Status> AsyncClient::fsync(int fd) {
  FrameHeader req;
  req.op = OpCode::fsync;
  req.fd = fd;
  return submit(req, {});
}

std::future<Status> AsyncClient::close_fd(int fd) {
  FrameHeader req;
  req.op = OpCode::close;
  req.fd = fd;
  return submit(req, {});
}

void AsyncClient::dispatcher_loop() {
  while (true) {
    std::byte buf[FrameHeader::kWireSize];
    if (!stream_->read_exact(buf, sizeof buf).is_ok()) {
      fail_all(Status(Errc::shutdown, "connection closed"));
      return;
    }
    auto hdr = FrameHeader::decode(std::span<const std::byte, FrameHeader::kWireSize>(buf));
    if (!hdr.is_ok() || hdr.value().type != MsgType::reply) {
      fail_all(Status(Errc::protocol_error, "bad reply frame"));
      return;
    }
    const FrameHeader rep = hdr.value();
    std::vector<std::byte> payload(rep.payload_len);
    if (rep.payload_len > 0 &&
        !stream_->read_exact(payload.data(), payload.size()).is_ok()) {
      fail_all(Status(Errc::shutdown, "connection closed mid-payload"));
      return;
    }

    std::shared_ptr<Pending> p;
    {
      std::scoped_lock lock(mu_);
      auto it = pending_.find(rep.seq);
      if (it != pending_.end()) {
        p = std::move(it->second);
        pending_.erase(it);
      }
    }
    window_cv_.notify_all();
    if (!p) continue;  // stale/unknown seq: ignore

    const auto code = static_cast<Errc>(rep.status);
    const Status st = code == Errc::ok ? Status::ok() : Status(code, "");
    if (p->is_read) {
      if (st.is_ok()) {
        p->data.set_value(std::move(payload));
      } else {
        p->data.set_value(st);
      }
    } else {
      p->status.set_value(st);
    }
  }
}

void AsyncClient::fail_all(const Status& why) {
  std::map<std::uint64_t, std::shared_ptr<Pending>> doomed;
  {
    std::scoped_lock lock(mu_);
    doomed.swap(pending_);
    closed_ = true;
  }
  window_cv_.notify_all();
  for (auto& [seq, p] : doomed) {
    if (p->is_read) {
      p->data.set_value(why);
    } else {
      p->status.set_value(why);
    }
  }
}

}  // namespace iofwd::rt
