// The shared work queue drained by the worker pool (paper Fig. 7).
//
// MPMC, mutex + condition variable, with the batch dequeue that implements
// the paper's per-worker I/O multiplexing: a worker takes up to `max_batch`
// tasks in one pass, optionally balanced against the backlog so one worker
// does not starve the others (the "simple load-balancing heuristic").
//
// Dispatch ORDER is delegated to a Scheduler (DESIGN.md §17): the default
// FIFO scheduler reproduces the old deque byte-for-byte, while prio/edf/fair
// reorder dequeues by the SchedMeta each push carries. The queue owns the
// lock and the blocking; the scheduler is a plain data structure under it.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "rt/scheduler.hpp"

namespace iofwd::rt {

template <typename T>
class TaskQueue {
 public:
  explicit TaskQueue(int workers_hint = 4, SchedPolicy policy = SchedPolicy::fifo,
                     std::uint64_t drr_quantum_bytes = kDefaultDrrQuantum)
      : workers_hint_(std::max(1, workers_hint)),
        sched_(make_scheduler<T>(policy, drr_quantum_bytes)) {}
  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  // Returns false if the queue is already closed.
  bool push(T task) { return push(std::move(task), SchedMeta{}); }

  // Same, with the scheduling metadata the configured policy orders by.
  // FIFO ignores it, so metadata-less callers lose nothing.
  bool push(T task, const SchedMeta& meta) {
    {
      std::scoped_lock lock(mu_);
      if (closed_) return false;
      sched_->push(meta, std::move(task));
      max_depth_ = std::max(max_depth_, sched_->size());
      ++pushed_;
    }
    cv_.notify_one();
    return true;
  }

  // Blocks for at least one task; then drains up to `max_batch` (balanced
  // against backlog when `balanced` is set). Empty result means closed.
  std::vector<T> pop_batch(int max_batch, bool balanced = true) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return sched_->size() != 0 || closed_; });
    std::vector<T> batch;
    if (sched_->size() == 0) return batch;  // closed and drained
    int target = max_batch;
    if (balanced) {
      const auto backlog = static_cast<int>(sched_->size());
      const int share = (backlog + workers_hint_ - 1) / workers_hint_;
      target = std::clamp(share, 1, max_batch);
    }
    while (sched_->size() != 0 && static_cast<int>(batch.size()) < target) {
      batch.push_back(sched_->pop());
    }
    ++batches_;
    popped_ += batch.size();
    return batch;
  }

  std::optional<T> try_pop() {
    std::scoped_lock lock(mu_);
    if (sched_->size() == 0) return std::nullopt;
    T t = sched_->pop();
    ++popped_;
    return t;
  }

  // Close: pending tasks are still handed out; pop_batch returns empty once
  // drained.
  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }
  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mu_);
    return sched_->size();
  }
  [[nodiscard]] std::size_t max_depth() const {
    std::scoped_lock lock(mu_);
    return max_depth_;
  }
  [[nodiscard]] std::uint64_t batches() const {
    std::scoped_lock lock(mu_);
    return batches_;
  }
  [[nodiscard]] std::uint64_t pushed() const {
    std::scoped_lock lock(mu_);
    return pushed_;
  }
  [[nodiscard]] SchedPolicy policy() const { return sched_->policy(); }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  int workers_hint_;
  std::unique_ptr<Scheduler<T>> sched_;
  std::size_t max_depth_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
};

}  // namespace iofwd::rt
