// The shared FIFO work queue drained by the worker pool (paper Fig. 7).
//
// MPMC, mutex + condition variable, with the batch dequeue that implements
// the paper's per-worker I/O multiplexing: a worker takes up to `max_batch`
// tasks in one pass, optionally balanced against the backlog so one worker
// does not starve the others (the "simple load-balancing heuristic").
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace iofwd::rt {

template <typename T>
class TaskQueue {
 public:
  explicit TaskQueue(int workers_hint = 4) : workers_hint_(std::max(1, workers_hint)) {}
  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  // Returns false if the queue is already closed.
  bool push(T task) {
    {
      std::scoped_lock lock(mu_);
      if (closed_) return false;
      q_.push_back(std::move(task));
      max_depth_ = std::max(max_depth_, q_.size());
      ++pushed_;
    }
    cv_.notify_one();
    return true;
  }

  // Blocks for at least one task; then drains up to `max_batch` (balanced
  // against backlog when `balanced` is set). Empty result means closed.
  std::vector<T> pop_batch(int max_batch, bool balanced = true) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !q_.empty() || closed_; });
    std::vector<T> batch;
    if (q_.empty()) return batch;  // closed and drained
    int target = max_batch;
    if (balanced) {
      const auto backlog = static_cast<int>(q_.size());
      const int share = (backlog + workers_hint_ - 1) / workers_hint_;
      target = std::clamp(share, 1, max_batch);
    }
    while (!q_.empty() && static_cast<int>(batch.size()) < target) {
      batch.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    ++batches_;
    popped_ += batch.size();
    return batch;
  }

  std::optional<T> try_pop() {
    std::scoped_lock lock(mu_);
    if (q_.empty()) return std::nullopt;
    T t = std::move(q_.front());
    q_.pop_front();
    ++popped_;
    return t;
  }

  // Close: pending tasks are still handed out; pop_batch returns empty once
  // drained.
  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }
  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mu_);
    return q_.size();
  }
  [[nodiscard]] std::size_t max_depth() const {
    std::scoped_lock lock(mu_);
    return max_depth_;
  }
  [[nodiscard]] std::uint64_t batches() const {
    std::scoped_lock lock(mu_);
    return batches_;
  }
  [[nodiscard]] std::uint64_t pushed() const {
    std::scoped_lock lock(mu_);
    return pushed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> q_;
  bool closed_ = false;
  int workers_hint_;
  std::size_t max_depth_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
};

}  // namespace iofwd::rt
