// I/O backends: what the ION server executes forwarded operations against.
//
//   * MemBackend  — in-memory files; the default for tests and examples,
//                   and the analogue of streaming to analysis-node memory.
//   * FileBackend — real files under a root directory (posix pread/pwrite),
//                   the GPFS-client analogue for a deployment.
//   * NullBackend — /dev/null semantics (the Fig. 4 microbenchmark).
//
// Backends are called concurrently from worker threads and must be
// thread-safe. Failure injection lives in fault/decorators.hpp
// (fault::FaultyBackend), which wraps any of these.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/status.hpp"

namespace iofwd::rt {

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual Status open(int fd, const std::string& path) = 0;
  virtual Result<std::uint64_t> write(int fd, std::uint64_t offset,
                                      std::span<const std::byte> data) = 0;
  virtual Result<std::uint64_t> read(int fd, std::uint64_t offset, std::span<std::byte> out) = 0;
  virtual Status fsync(int fd) = 0;
  virtual Status close(int fd) = 0;
  // Attribute query: current file size in bytes.
  virtual Result<std::uint64_t> size(int fd) = 0;
};

class NullBackend final : public IoBackend {
 public:
  Status open(int, const std::string&) override { return Status::ok(); }
  Result<std::uint64_t> write(int, std::uint64_t, std::span<const std::byte> data) override {
    return static_cast<std::uint64_t>(data.size());
  }
  Result<std::uint64_t> read(int, std::uint64_t, std::span<std::byte> out) override {
    std::fill(out.begin(), out.end(), std::byte{0});
    return static_cast<std::uint64_t>(out.size());
  }
  Status fsync(int) override { return Status::ok(); }
  Status close(int) override { return Status::ok(); }
  Result<std::uint64_t> size(int) override { return 0ull; }
};

class MemBackend final : public IoBackend {
 public:
  Status open(int fd, const std::string& path) override;
  Result<std::uint64_t> write(int fd, std::uint64_t offset,
                              std::span<const std::byte> data) override;
  Result<std::uint64_t> read(int fd, std::uint64_t offset, std::span<std::byte> out) override;
  Status fsync(int fd) override;
  Status close(int fd) override;
  Result<std::uint64_t> size(int fd) override;

  // Test inspection: a copy of the file content (empty if unknown path).
  [[nodiscard]] std::vector<std::byte> snapshot(const std::string& path) const;

 private:
  struct File {
    std::string path;
    std::vector<std::byte> data;
  };
  mutable std::shared_mutex mu_;
  std::map<int, std::shared_ptr<File>> open_;
  std::map<std::string, std::shared_ptr<File>> by_path_;
};

class FileBackend final : public IoBackend {
 public:
  explicit FileBackend(std::string root) : root_(std::move(root)) {}

  Status open(int fd, const std::string& path) override;
  Result<std::uint64_t> write(int fd, std::uint64_t offset,
                              std::span<const std::byte> data) override;
  Result<std::uint64_t> read(int fd, std::uint64_t offset, std::span<std::byte> out) override;
  Status fsync(int fd) override;
  Status close(int fd) override;
  Result<std::uint64_t> size(int fd) override;

 private:
  Result<int> host_fd(int fd) const;

  std::string root_;
  mutable std::shared_mutex mu_;
  std::map<int, int> open_;  // forwarded fd -> host fd
};

}  // namespace iofwd::rt
