// Byte-stream transports for the real forwarding runtime.
//
// The server and client speak FrameHeader-framed messages over a reliable
// byte stream. Two transports are provided:
//
//   * InProcTransport — a pair of bounded byte queues guarded by mutex +
//     condition variables. Used by tests and the in-process examples; it
//     exercises the exact same framing and threading paths as sockets.
//   * SocketTransport — POSIX stream sockets (socketpair(2) or AF_UNIX /
//     AF_INET via the listener below), for running the ION server as a real
//     daemon on a Linux cluster.
//
// All streams are thread-compatible in the usual split sense: one reader
// thread and one writer thread may operate concurrently; two concurrent
// writers must synchronize externally (Client and the server's per-client
// send queue each hold their own write mutex).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/status.hpp"

namespace iofwd::rt {

class ByteStream {
 public:
  virtual ~ByteStream() = default;

  // --- Blocking surface ---------------------------------------------------
  //
  // Error-return convention (DESIGN.md §13/§15): blocking calls are
  // all-or-nothing and return Status; non-blocking calls report partial
  // progress and return Result<std::size_t> — the byte count on progress,
  // Errc::would_block when the stream cannot move right now, Errc::shutdown
  // once the peer is gone.

  // Blocks until exactly n bytes were read, the peer closed (shutdown), or
  // an error occurred.
  virtual Status read_exact(void* buf, std::size_t n) = 0;
  // Blocks until all n bytes were accepted. Kept as the compat wrapper for
  // request paths (Client) and non-pollable streams; the server's reply path
  // uses the non-blocking surface below.
  virtual Status write_all(const void* buf, std::size_t n) = 0;
  // Close this end; concurrent and future reads/writes fail with shutdown.
  virtual void close() = 0;

  // --- Non-blocking readiness surface (receiver/send lanes, §13/§15) -----
  //
  // A stream that can participate in an epoll event loop exposes readiness
  // fds here: edge-triggered EPOLLIN on read_readiness_fd() means
  // read_some() will make progress. Streams without readiness support
  // return -1 and are served by blocking threads instead.
  [[nodiscard]] virtual int read_readiness_fd() { return -1; }
  // Reads up to n bytes without blocking. Returns the count read (> 0),
  // would_block when no bytes are available right now, or shutdown at EOF.
  // The edge-triggered contract: callers must loop until would_block before
  // re-arming, and a would_block result re-arms the readiness fd.
  virtual Result<std::size_t> read_some(void* buf, std::size_t n) {
    (void)buf;
    (void)n;
    return Status(Errc::unsupported, "stream has no non-blocking read");
  }

  // Write-side readiness, symmetric with the read side. Two shapes exist:
  //   * write_readiness_fd() == read_readiness_fd() (sockets): poll EPOLLOUT
  //     on that fd to learn when write_some() can make progress again.
  //   * a distinct fd (the in-proc pipe's eventfd shim): poll it for EPOLLIN;
  //     a tick means space was freed after a would_block.
  // -1 means the stream has no non-blocking write: callers fall back to
  // write_all on a thread that may block.
  [[nodiscard]] virtual int write_readiness_fd() { return -1; }
  // Writes up to n bytes without blocking. Returns the count accepted (> 0),
  // would_block when the stream is full (which re-arms the write readiness
  // fd), or shutdown once the peer is gone.
  virtual Result<std::size_t> write_some(const void* buf, std::size_t n) {
    (void)buf;
    (void)n;
    return Status(Errc::unsupported, "stream has no non-blocking write");
  }
  // Gathered write: accepts bytes from `iov` in order, stopping at the first
  // span that is only partially accepted. Returns the total bytes accepted
  // across spans, would_block when nothing could be accepted, or the error.
  // The default walks write_some() span by span; SocketTransport overrides
  // with a single sendmsg(2) so a framed reply leaves in one syscall.
  virtual Result<std::size_t> writev_some(std::span<const std::span<const std::byte>> iov);
};

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

// One direction of an in-process duplex pipe.
class InProcPipe {
 public:
  explicit InProcPipe(std::size_t capacity = 1 << 20) : capacity_(capacity) {}
  ~InProcPipe();

  Status read_exact(void* buf, std::size_t n);
  Status write_all(const void* buf, std::size_t n);
  void close();

  // Readiness shim: an eventfd signalled whenever bytes (or close) arrive,
  // created lazily on first request so pipes that never join an event loop
  // (the client-read direction) cost no fd. Returns -1 if eventfd(2) fails.
  [[nodiscard]] int read_readiness_fd();
  Result<std::size_t> read_some(void* buf, std::size_t n);

  // Write-side shim, symmetric: an eventfd ticked when the ring transitions
  // full -> not-full (and on close), i.e. exactly when a write_some that
  // reported would_block can make progress again.
  [[nodiscard]] int write_readiness_fd();
  Result<std::size_t> write_some(const void* buf, std::size_t n);

 private:
  void signal_locked();        // mu_ held: tick the read eventfd if one exists
  void signal_write_locked();  // mu_ held: tick the write eventfd if one exists

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::byte> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // ring_ is lazily sized to capacity_
  std::size_t count_ = 0;
  bool closed_ = false;
  int event_fd_ = -1;        // lazily created by read_readiness_fd()
  int write_event_fd_ = -1;  // lazily created by write_readiness_fd()
};

class InProcTransport final : public ByteStream {
 public:
  // Creates a connected pair (a, b): bytes written to a are read from b and
  // vice versa.
  static std::pair<std::unique_ptr<InProcTransport>, std::unique_ptr<InProcTransport>> make_pair(
      std::size_t capacity = 1 << 20);

  Status read_exact(void* buf, std::size_t n) override { return in_->read_exact(buf, n); }
  Status write_all(const void* buf, std::size_t n) override { return out_->write_all(buf, n); }
  void close() override {
    in_->close();
    out_->close();
  }
  [[nodiscard]] int read_readiness_fd() override { return in_->read_readiness_fd(); }
  Result<std::size_t> read_some(void* buf, std::size_t n) override {
    return in_->read_some(buf, n);
  }
  [[nodiscard]] int write_readiness_fd() override { return out_->write_readiness_fd(); }
  Result<std::size_t> write_some(const void* buf, std::size_t n) override {
    return out_->write_some(buf, n);
  }

 private:
  InProcTransport(std::shared_ptr<InProcPipe> in, std::shared_ptr<InProcPipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}
  std::shared_ptr<InProcPipe> in_;
  std::shared_ptr<InProcPipe> out_;
};

// ---------------------------------------------------------------------------
// Socket transport
// ---------------------------------------------------------------------------

class SocketTransport final : public ByteStream {
 public:
  explicit SocketTransport(int fd) : fd_(fd) {}
  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // A connected AF_UNIX socketpair (for tests and same-host deployments).
  static Result<std::pair<std::unique_ptr<SocketTransport>, std::unique_ptr<SocketTransport>>>
  make_socketpair();

  // Client side: connect to a UNIX-domain listener at `path`.
  static Result<std::unique_ptr<SocketTransport>> connect_unix(const std::string& path);

  // Client side: connect to a TCP listener (IPv4 dotted-quad or hostname).
  static Result<std::unique_ptr<SocketTransport>> connect_tcp(const std::string& host,
                                                              std::uint16_t port);

  Status read_exact(void* buf, std::size_t n) override;
  Status write_all(const void* buf, std::size_t n) override;
  void close() override;

  // Sockets are natively pollable in both directions: the same fd serves
  // EPOLLIN and EPOLLOUT interest. The fd itself stays blocking — both
  // read_some (recv) and write_some/writev_some (send/sendmsg) pass
  // MSG_DONTWAIT per call, so write_all keeps its blocking compat semantics
  // while the server's send queues get would_block-based backpressure.
  [[nodiscard]] int read_readiness_fd() override { return fd_.load(); }
  Result<std::size_t> read_some(void* buf, std::size_t n) override;
  [[nodiscard]] int write_readiness_fd() override { return fd_.load(); }
  Result<std::size_t> write_some(const void* buf, std::size_t n) override;
  Result<std::size_t> writev_some(std::span<const std::span<const std::byte>> iov) override;

  [[nodiscard]] int fd() const { return fd_.load(); }

 private:
  // Atomic: close() (e.g. from the server's stop path) races with blocked
  // read_exact/write_all calls on receiver threads by design.
  std::atomic<int> fd_{-1};
};

// Abstract listener: the server accepts clients from either flavor.
class Listener {
 public:
  virtual ~Listener() = default;
  virtual Result<std::unique_ptr<SocketTransport>> accept() = 0;
  virtual void close() = 0;
};

// TCP listener (IPv4): the deployment path between real hosts.
class TcpListener final : public Listener {
 public:
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Port 0 picks an ephemeral port; read it back with port().
  static Result<std::unique_ptr<TcpListener>> bind(std::uint16_t port,
                                                   const std::string& bind_addr = "127.0.0.1");

  Result<std::unique_ptr<SocketTransport>> accept() override;
  void close() override;
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

// UNIX-domain listener: the server binds a path and accepts SocketTransports.
class UnixListener final : public Listener {
 public:
  ~UnixListener();
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  static Result<std::unique_ptr<UnixListener>> bind(const std::string& path);

  // Blocks until a client connects, the listener is closed, or an error.
  Result<std::unique_ptr<SocketTransport>> accept() override;
  void close() override;

 private:
  UnixListener(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  int fd_ = -1;
  std::string path_;
};

}  // namespace iofwd::rt
