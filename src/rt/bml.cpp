#include "rt/bml.hpp"

#include <algorithm>
#include <cassert>
#include <new>

namespace iofwd::rt {

Buffer::Buffer(Buffer&& o) noexcept
    : pool_(o.pool_), data_(o.data_), class_bytes_(o.class_bytes_) {
  o.pool_ = nullptr;
  o.data_ = nullptr;
  o.class_bytes_ = 0;
}

Buffer& Buffer::operator=(Buffer&& o) noexcept {
  if (this != &o) {
    release();
    pool_ = o.pool_;
    data_ = o.data_;
    class_bytes_ = o.class_bytes_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
    o.class_bytes_ = 0;
  }
  return *this;
}

Buffer::~Buffer() { release(); }

void Buffer::release() {
  if (pool_ != nullptr) {
    pool_->give_back(data_, class_bytes_);
    pool_ = nullptr;
    data_ = nullptr;
    class_bytes_ = 0;
  }
}

BufferPool::BufferPool(std::uint64_t total_bytes, std::uint64_t min_class_bytes,
                       SizeClassPolicy policy)
    : total_(total_bytes),
      min_class_(next_pow2(std::max<std::uint64_t>(min_class_bytes, 64))),
      policy_(policy) {
  assert(total_bytes > 0);
}

BufferPool::~BufferPool() {
  std::scoped_lock lock(mu_);
  assert(in_use_ == 0 && "destroying BufferPool with buffers outstanding");
  for (auto& [cls, list] : free_) {
    for (std::byte* p : list) ::operator delete[](p, std::align_val_t{64});
  }
}

std::uint64_t BufferPool::size_class(std::uint64_t bytes) const {
  const std::uint64_t p2 = std::max(min_class_, next_pow2(bytes));
  if (policy_ == SizeClassPolicy::pow2 || p2 <= min_class_) return p2;
  // quarter policy: candidate classes between p2/2 and p2 in 1/4 steps.
  const std::uint64_t base = p2 / 2;
  const std::uint64_t step = base / 4;
  for (int q = 1; q <= 3; ++q) {
    const std::uint64_t cls = base + static_cast<std::uint64_t>(q) * step;
    if (cls >= bytes) return cls;
  }
  return p2;
}

std::byte* BufferPool::take_storage(std::uint64_t class_bytes) {
  auto& list = free_[class_bytes];
  if (!list.empty()) {
    std::byte* p = list.back();
    list.pop_back();
    return p;
  }
  return static_cast<std::byte*>(
      ::operator new[](static_cast<std::size_t>(class_bytes), std::align_val_t{64}));
}

Result<Buffer> BufferPool::acquire(std::uint64_t bytes) {
  const std::uint64_t cls = size_class(bytes);
  if (cls > total_) {
    return Status(Errc::no_memory, "request exceeds BML pool capacity");
  }
  std::unique_lock lock(mu_);
  if (in_use_ + cls > total_) ++blocked_;
  cv_.wait(lock, [&] { return in_use_ + cls <= total_; });
  in_use_ += cls;
  high_watermark_ = std::max(high_watermark_, in_use_);
  std::byte* p = take_storage(cls);
  return Buffer(this, p, cls);
}

Result<Buffer> BufferPool::acquire_for(std::uint64_t bytes, std::chrono::milliseconds timeout) {
  const std::uint64_t cls = size_class(bytes);
  if (cls > total_) return Status(Errc::no_memory, "request exceeds BML pool capacity");
  std::unique_lock lock(mu_);
  if (in_use_ + cls > total_) {
    ++blocked_;
    if (!cv_.wait_for(lock, timeout, [&] { return in_use_ + cls <= total_; })) {
      return Status(Errc::timed_out, "BML pool exhausted past deadline");
    }
  }
  in_use_ += cls;
  high_watermark_ = std::max(high_watermark_, in_use_);
  return Buffer(this, take_storage(cls), cls);
}

Result<Buffer> BufferPool::try_acquire(std::uint64_t bytes) {
  const std::uint64_t cls = size_class(bytes);
  if (cls > total_) return Status(Errc::no_memory, "request exceeds BML pool capacity");
  std::scoped_lock lock(mu_);
  if (in_use_ + cls > total_) return Status(Errc::would_block, "pool exhausted");
  in_use_ += cls;
  high_watermark_ = std::max(high_watermark_, in_use_);
  return Buffer(this, take_storage(cls), cls);
}

void BufferPool::give_back(std::byte* data, std::uint64_t class_bytes) {
  std::scoped_lock lock(mu_);
  assert(in_use_ >= class_bytes);
  in_use_ -= class_bytes;
  free_[class_bytes].push_back(data);
  cv_.notify_all();
}

std::uint64_t BufferPool::in_use() const {
  std::scoped_lock lock(mu_);
  return in_use_;
}

std::uint64_t BufferPool::high_watermark() const {
  std::scoped_lock lock(mu_);
  return high_watermark_;
}

std::uint64_t BufferPool::blocked_acquires() const {
  std::scoped_lock lock(mu_);
  return blocked_;
}

}  // namespace iofwd::rt
