// Client: the compute-node side of the forwarding runtime.
//
// POSIX-like calls are shipped to the ION server over any ByteStream. Calls
// block for the server's reply — which, in the async-staging execution
// model, arrives as soon as the payload is staged in the ION's BML buffer
// (the reply carries the `staged` flag), so write() returns while the
// actual I/O proceeds in the background. Deferred errors from those
// background operations surface on subsequent calls on the same descriptor,
// on fsync(), or on close() — exactly the paper's semantics.
//
// Thread safety: a Client serializes its round trips internally, so it may
// be shared; for concurrency, open one Client per application thread (each
// with its own transport), mirroring one CN process per connection.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "rt/transport.hpp"
#include "rt/wire.hpp"

namespace iofwd::rt {

class Client {
 public:
  explicit Client(std::unique_ptr<ByteStream> stream);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Forwarded calls. `fd` is chosen by the caller (client-managed namespace,
  // like MPI-IO file handles).
  Status open(int fd, const std::string& path);
  Status write(int fd, std::uint64_t offset, std::span<const std::byte> data);
  Result<std::vector<std::byte>> read(int fd, std::uint64_t offset, std::uint64_t len);
  Status fsync(int fd);
  Result<std::uint64_t> fstat_size(int fd);
  Status close(int fd);

  // Polite disconnect (server releases the connection).
  Status shutdown();

  // True if the last write() was acknowledged as staged (async mode).
  [[nodiscard]] bool last_write_was_staged() const { return last_staged_; }

 private:
  struct Reply {
    FrameHeader header;
    std::vector<std::byte> payload;
  };
  Result<Reply> roundtrip(FrameHeader req, std::span<const std::byte> payload);

  std::unique_ptr<ByteStream> stream_;
  std::mutex mu_;
  std::uint64_t next_seq_ = 1;
  bool last_staged_ = false;
};

}  // namespace iofwd::rt
