// Client: the compute-node side of the forwarding runtime.
//
// POSIX-like calls are shipped to the ION server over any ByteStream. Calls
// block for the server's reply — which, in the async-staging execution
// model, arrives as soon as the payload is staged in the ION's BML buffer
// (the reply carries the `staged` flag), so write() returns while the
// actual I/O proceeds in the background. Deferred errors from those
// background operations surface on subsequent calls on the same descriptor,
// on fsync(), or on close() — exactly the paper's semantics.
//
// Resilience (DESIGN.md §10): constructed with a StreamFactory, the client
// survives a dead connection — a roundtrip that fails with a transport
// error reconnects with capped exponential backoff, replays open() for
// every descriptor it tracks (the server keeps descriptor state across
// connections, so an "already open" bounce counts as success), and then
// replays the failed operation, which is safe because every forwarded op is
// offset-based and therefore idempotent. A roundtrip_timeout_ms watchdog
// bounds each roundtrip: a hung ION gets its connection closed from our
// side, surfacing timed_out instead of blocking the CN forever.
//
// Thread safety: a Client serializes its round trips internally, so it may
// be shared; for concurrency, open one Client per application thread (each
// with its own transport), mirroring one CN process per connection.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/status.hpp"
#include "obs/metrics.hpp"
#include "rt/transport.hpp"
#include "rt/wire.hpp"

namespace iofwd::rt {

// Produces a fresh connected stream to the server (used for reconnects).
using StreamFactory = std::function<Result<std::unique_ptr<ByteStream>>()>;

struct ClientConfig {
  // Stamped into every request header; the server bounces ops still
  // unexecuted after this many ms with timed_out. 0 = no deadline.
  std::uint32_t deadline_ms = 0;
  // Client-side watchdog: a roundtrip without a reply within this budget
  // closes the connection and fails with timed_out. 0 = wait forever.
  std::uint32_t roundtrip_timeout_ms = 0;
  // Reconnect attempts per failed roundtrip (requires a StreamFactory).
  int reconnect_attempts = 3;
  std::uint32_t reconnect_backoff_ms = 10;       // base, doubled per attempt
  std::uint32_t reconnect_backoff_max_ms = 500;  // cap
  // Shared metric registry for the "client.*" namespace (null = the client
  // owns a private one). See DESIGN.md §11.
  obs::MetricRegistry* registry = nullptr;
  // Highest wire-protocol version to offer in the hello handshake
  // (DESIGN.md §12). kProtoVersion turns on per-payload CRC32C when the
  // server also speaks v1; 0 emulates a legacy client (no hello is sent and
  // checksums stay off in both directions).
  std::uint16_t max_wire_version = kProtoVersion;
  // Tenant (client/job) id, announced in the hello handshake (DESIGN.md
  // §17): keys the server's fair-share scheduler and QoS token buckets. A
  // RoutingClient passes one config to every shard connection, so the same
  // id tags this tenant consistently across the fleet. 0 = anonymous (and
  // all v0 clients land there).
  std::uint64_t tenant = 0;
  // Priority class stamped into every request header (clamped to
  // kMaxPriorityClass); only the `prio` scheduler orders by it.
  std::uint8_t priority = 0;
};

// Snapshot view over the client's metric registry ("client.*" counters),
// assembled by stats(). Deprecated as an API surface; retained so existing
// tests and benches read fields unchanged.
struct ClientStats {
  std::uint64_t reconnects = 0;  // successful reconnect + open-replay passes
  std::uint64_t replays = 0;     // ops that succeeded on a retry connection
  std::uint64_t timeouts = 0;    // roundtrips killed by the watchdog
  std::uint64_t giveups = 0;     // ops that exhausted the reconnect budget
  // Integrity counters (DESIGN.md §12).
  std::uint64_t header_crc_errors = 0;   // corrupted reply headers
  std::uint64_t payload_crc_errors = 0;  // corrupted reply payloads
  std::uint64_t request_bounces = 0;     // requests the server bounced as corrupt
  // Circuit-breaker counters (DESIGN.md §16). Always zero for a plain
  // rt::Client — only cluster::RoutingClient runs breakers; the fields live
  // here so one stats surface serves both ForwardingClient implementations.
  std::uint64_t breaker_opens = 0;       // healthy/suspect -> down transitions
  std::uint64_t breaker_fast_fails = 0;  // ops bounced without touching the wire
  std::uint64_t breaker_probes = 0;      // half-open pings sent
  std::uint64_t breaker_closes = 0;      // down -> healthy readmissions
};

// The forwarded-call surface a compute-node application programs against,
// independent of how many IONs stand behind it. rt::Client implements it
// over one connection; cluster::RoutingClient implements it over N shards.
// The test harness and fault specs hold this interface, so the same spec
// runs unchanged against a single server or a sharded cluster.
class ForwardingClient {
 public:
  virtual ~ForwardingClient() = default;

  // Forwarded calls. `fd` is chosen by the caller (client-managed namespace,
  // like MPI-IO file handles).
  virtual Status open(int fd, const std::string& path) = 0;
  virtual Status write(int fd, std::uint64_t offset, std::span<const std::byte> data) = 0;
  virtual Result<std::vector<std::byte>> read(int fd, std::uint64_t offset,
                                              std::uint64_t len) = 0;
  virtual Status fsync(int fd) = 0;
  virtual Result<std::uint64_t> fstat_size(int fd) = 0;
  virtual Status close(int fd) = 0;

  // Polite disconnect (server releases the connection). Never reconnects.
  virtual Status shutdown() = 0;

  // Liveness probe (DESIGN.md §16): a no-payload roundtrip the server
  // answers inline on the receiver, bypassing the work queue. The health
  // layer uses it as the half-open breaker probe; on rt::Client it runs
  // through the normal reconnect machinery, so a successful ping against a
  // restarted shard also re-dials and replays opens. Default: unsupported,
  // so decorator-style implementations need not care.
  virtual Status ping() { return {Errc::unsupported, "ping not supported"}; }

  // True if the last write() was acknowledged as staged (async mode).
  [[nodiscard]] virtual bool last_write_was_staged() const = 0;

  [[nodiscard]] virtual ClientStats stats() const = 0;
};

class Client final : public ForwardingClient {
 public:
  explicit Client(std::unique_ptr<ByteStream> stream, ClientConfig cfg = {},
                  StreamFactory factory = nullptr);
  ~Client() override;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status open(int fd, const std::string& path) override;
  Status write(int fd, std::uint64_t offset, std::span<const std::byte> data) override;
  Result<std::vector<std::byte>> read(int fd, std::uint64_t offset,
                                      std::uint64_t len) override;
  Status fsync(int fd) override;
  Result<std::uint64_t> fstat_size(int fd) override;
  Status close(int fd) override;

  Status shutdown() override;
  Status ping() override;

  [[nodiscard]] bool last_write_was_staged() const override { return last_staged_; }

  // The wire version negotiated on the current connection: 0 before the
  // first roundtrip (or when either side is v0), >= 1 when payload
  // checksums are active.
  [[nodiscard]] std::uint16_t negotiated_version() const;

  [[nodiscard]] ClientStats stats() const override;

  // The registry backing stats() — client-owned unless ClientConfig::registry
  // was set.
  [[nodiscard]] obs::MetricRegistry& registry() const { return *reg_; }

 private:
  struct Reply {
    FrameHeader header;
    std::vector<std::byte> payload;
  };
  // Resilient roundtrip: one attempt on the live stream, then up to
  // reconnect_attempts reconnect+replay passes for connection-level errors.
  Result<Reply> roundtrip(FrameHeader req, std::span<const std::byte> payload);
  // One framed request/reply exchange on the current stream (mu_ held).
  Result<Reply> roundtrip_once(FrameHeader req, std::span<const std::byte> payload);
  // Establish a fresh stream via the factory (with backoff for `attempt`
  // >= 1) and replay open() for every tracked descriptor. mu_ held.
  Status reconnect_locked(int attempt);
  // Negotiate the wire version on a fresh connection (mu_ held): sends
  // `hello` with max_wire_version and records the server's clamp. No-op
  // when already negotiated or when configured as a v0 peer.
  Status hello_locked();
  [[nodiscard]] static bool connection_lost(Errc e);

  // Roundtrip watchdog (lazily started when roundtrip_timeout_ms > 0).
  void watchdog_loop();
  void watchdog_arm();
  // Returns true if the watchdog killed the stream since the last arm.
  bool watchdog_disarm();

  std::unique_ptr<ByteStream> stream_;
  ClientConfig cfg_;
  StreamFactory factory_;

  mutable std::mutex mu_;
  std::uint64_t next_seq_ = 1;
  bool last_staged_ = false;
  std::map<int, std::string> open_paths_;  // fd -> path, for reconnect replay
  bool hello_done_ = false;     // version negotiated on the current stream
  std::uint16_t neg_version_ = 0;

  // Registry-backed counters ("client.*"); replaces the old stats_ member.
  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::MetricRegistry* reg_;  // never null
  obs::Counter& c_reconnects_;
  obs::Counter& c_replays_;
  obs::Counter& c_timeouts_;
  obs::Counter& c_giveups_;
  obs::Counter& c_header_crc_errors_;
  obs::Counter& c_payload_crc_errors_;
  obs::Counter& c_request_bounces_;

  std::mutex wd_mu_;
  std::condition_variable wd_cv_;
  bool wd_armed_ = false;
  bool wd_fired_ = false;
  bool wd_quit_ = false;
  std::chrono::steady_clock::time_point wd_deadline_{};
  ByteStream* wd_target_ = nullptr;
  std::thread wd_thread_;
};

}  // namespace iofwd::rt
