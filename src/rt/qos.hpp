// Per-tenant admission control for the server data path (DESIGN.md §17).
//
// Kopanski/Rzadca's burst-buffer contention argument (PAPERS.md) applied to
// the ION ingress: rate-limit each tenant with token buckets on BYTES and
// OPS, and instead of rejecting over-budget work, feed it to the existing
// degradation machinery — an over-budget async write is staged SYNCHRONOUSLY
// (the same demotion the queue-depth hysteresis performs), so the hot tenant
// absorbs its own latency while admitted tenants keep the fast path.
//
// Buckets refill continuously from a steady clock and start full (a burst up
// to the cap is legitimate — that is what a burst buffer is for). A zero
// rate means "unlimited" for that dimension; with both rates zero the
// governor is a no-op and the server skips it entirely.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace iofwd::rt {

struct QosConfig {
  std::uint64_t bytes_per_sec = 0;  // per-tenant byte rate; 0 = unlimited
  std::uint64_t ops_per_sec = 0;    // per-tenant op rate; 0 = unlimited
  // Bucket caps; 0 defaults to one second's worth of the rate.
  std::uint64_t burst_bytes = 0;
  std::uint64_t burst_ops = 0;

  [[nodiscard]] bool enabled() const { return bytes_per_sec != 0 || ops_per_sec != 0; }
};

// Per-tenant token buckets + server.qos.<tenant>.* metrics. Thread-safe;
// called from receiver lanes on every data op.
class QosGovernor {
 public:
  QosGovernor(QosConfig cfg, obs::MetricRegistry& reg)
      : cfg_(cfg),
        reg_(reg),
        admitted_bytes_(reg.counter("server.qos.admitted_bytes")),
        throttled_ops_(reg.counter("server.qos.throttled_ops")) {
    if (cfg_.burst_bytes == 0) cfg_.burst_bytes = std::max<std::uint64_t>(1, cfg_.bytes_per_sec);
    if (cfg_.burst_ops == 0) cfg_.burst_ops = std::max<std::uint64_t>(1, cfg_.ops_per_sec);
  }

  // True when `tenant` may take the fast path for an op of `bytes` payload:
  // both buckets cover it and are debited. False debits NOTHING (the op
  // still runs, demoted — consuming tokens for demoted work would punish
  // the tenant twice) and bumps the throttle counters.
  bool admit(std::uint64_t tenant, std::uint64_t bytes) {
    if (!cfg_.enabled()) return true;
    const auto now = std::chrono::steady_clock::now();
    std::scoped_lock lock(mu_);
    Bucket& b = buckets_[tenant];
    if (!b.init) {
      b.init = true;
      b.bytes = cfg_.burst_bytes;
      b.ops = cfg_.burst_ops;
      b.last = now;
      b.throttled = &reg_.counter("server.qos." + std::to_string(tenant) + ".throttled_ops");
      b.admitted = &reg_.counter("server.qos." + std::to_string(tenant) + ".admitted_bytes");
    }
    refill(b, now);
    const bool bytes_ok = cfg_.bytes_per_sec == 0 || b.bytes >= bytes;
    const bool ops_ok = cfg_.ops_per_sec == 0 || b.ops >= 1;
    if (bytes_ok && ops_ok) {
      if (cfg_.bytes_per_sec != 0) b.bytes -= bytes;
      if (cfg_.ops_per_sec != 0) b.ops -= 1;
      admitted_bytes_.add(bytes);
      b.admitted->add(bytes);
      return true;
    }
    throttled_ops_.inc();
    b.throttled->inc();
    return false;
  }

  [[nodiscard]] std::uint64_t throttled_ops() const { return throttled_ops_.value(); }
  [[nodiscard]] const QosConfig& config() const { return cfg_; }

 private:
  struct Bucket {
    bool init = false;
    std::uint64_t bytes = 0;  // tokens, in bytes
    std::uint64_t ops = 0;    // tokens, in ops
    std::chrono::steady_clock::time_point last{};
    obs::Counter* throttled = nullptr;
    obs::Counter* admitted = nullptr;
  };

  void refill(Bucket& b, std::chrono::steady_clock::time_point now) {
    const auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(now - b.last);
    if (dt.count() <= 0) return;
    b.last = now;
    const auto ns = static_cast<std::uint64_t>(dt.count());
    // rate/sec * ns / 1e9, split into whole seconds + remainder so the
    // product cannot overflow u64 even after a long idle (a saturated earn
    // is fine — the bucket cap clamps it anyway).
    const auto earn = [ns](std::uint64_t rate) -> std::uint64_t {
      const std::uint64_t secs = ns / 1'000'000'000u;
      const std::uint64_t rem = ns % 1'000'000'000u;
      if (rate != 0 && secs > UINT64_MAX / rate) return UINT64_MAX;
      return rate * secs + rate / 1'000'000'000u * rem +
             rate % 1'000'000'000u * rem / 1'000'000'000u;
    };
    const auto sat_add = [](std::uint64_t a, std::uint64_t d) {
      return a > UINT64_MAX - d ? UINT64_MAX : a + d;
    };
    b.bytes = std::min(cfg_.burst_bytes, sat_add(b.bytes, earn(cfg_.bytes_per_sec)));
    b.ops = std::min(cfg_.burst_ops, sat_add(b.ops, earn(cfg_.ops_per_sec)));
  }

  QosConfig cfg_;
  obs::MetricRegistry& reg_;
  obs::Counter& admitted_bytes_;
  obs::Counter& throttled_ops_;
  std::mutex mu_;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
};

}  // namespace iofwd::rt
