#include "bb/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "core/crc32c.hpp"

namespace iofwd::bb {

namespace {

constexpr char kSegmentMagic[Journal::kSegmentMagicLen + 1] = "IOFWDWAL";
// A stage payload can be at most one wire payload (256 MiB); anything bigger
// in a length field is corruption, not data.
constexpr std::uint32_t kMaxBodyLen = (256u << 20) + 64;

void put_u32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
}
void put_u64(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
}
std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

Status write_all(int fd, const std::byte* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return {Errc::io_error, std::string("journal write: ") + std::strerror(errno)};
    }
    off += static_cast<std::size_t>(w);
  }
  return Status::ok();
}

// Insert [off, off+len) into a start->len range map, newest-wins.
void range_erase(std::map<std::uint64_t, std::uint64_t>& m, std::uint64_t off, std::uint64_t len,
                 std::uint64_t& live) {
  if (len == 0) return;
  const std::uint64_t end = off + len;
  auto it = m.lower_bound(off);
  if (it != m.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second > off) it = prev;
  }
  while (it != m.end() && it->first < end) {
    const std::uint64_t s = it->first;
    const std::uint64_t e = s + it->second;
    it = m.erase(it);
    live -= e - s;
    if (s < off) {
      m.emplace(s, off - s);
      live += off - s;
    }
    if (e > end) {
      it = m.emplace(end, e - end).first;
      live += e - end;
      ++it;
    }
  }
}

void range_insert(std::map<std::uint64_t, std::uint64_t>& m, std::uint64_t off, std::uint64_t len,
                  std::uint64_t& live) {
  if (len == 0) return;
  range_erase(m, off, len, live);
  m.emplace(off, len);
  live += len;
}

}  // namespace

Result<std::unique_ptr<Journal>> Journal::open(JournalConfig cfg) {
  if (cfg.dir.empty()) return {Errc::invalid_argument, "journal dir must not be empty"};
  if (cfg.segment_bytes < 4096) cfg.segment_bytes = 4096;
  std::error_code ec;
  std::filesystem::create_directories(cfg.dir, ec);
  if (ec) return {Errc::io_error, "journal mkdir " + cfg.dir + ": " + ec.message()};

  auto j = std::unique_ptr<Journal>(new Journal(std::move(cfg)));
  // Discover existing segments (ascending index order = append order).
  for (const auto& ent : std::filesystem::directory_iterator(j->cfg_.dir, ec)) {
    const std::string name = ent.path().filename().string();
    unsigned idx = 0;
    if (std::sscanf(name.c_str(), "wal-%06u.seg", &idx) == 1) {
      j->segments_.push_back(idx);
      std::error_code sec;
      j->total_size_ += std::filesystem::file_size(ent.path(), sec);
    }
  }
  if (ec) return {Errc::io_error, "journal scan " + j->cfg_.dir + ": " + ec.message()};
  std::sort(j->segments_.begin(), j->segments_.end());

  if (j->segments_.empty()) {
    std::lock_guard lk(j->mu_);
    if (Status st = j->open_segment_locked(1); !st.is_ok()) return st;
  } else {
    // Reopen the last segment for append; replay() reads them all.
    std::lock_guard lk(j->mu_);
    const std::string path = j->segment_path(j->segments_.back());
    int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd < 0) {
      return Status{Errc::io_error, "journal reopen " + path + ": " + std::strerror(errno)};
    }
    j->cur_fd_ = fd;
    std::error_code sec;
    j->cur_size_ = std::filesystem::file_size(path, sec);
  }
  return j;
}

Journal::~Journal() {
  if (cur_fd_ >= 0) ::close(cur_fd_);
}

std::string Journal::segment_path(std::uint32_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06u.seg", index);
  return cfg_.dir + "/" + name;
}

Status Journal::open_segment_locked(std::uint32_t index) {
  const std::string path = segment_path(index);
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    return {Errc::io_error, "journal create " + path + ": " + std::strerror(errno)};
  }
  std::byte magic[kSegmentMagicLen];
  std::memcpy(magic, kSegmentMagic, kSegmentMagicLen);
  if (Status st = write_all(fd, magic, kSegmentMagicLen); !st.is_ok()) {
    ::close(fd);
    return st;
  }
  if (cur_fd_ >= 0) ::close(cur_fd_);
  cur_fd_ = fd;
  cur_size_ = kSegmentMagicLen;
  total_size_ += kSegmentMagicLen;
  segments_.push_back(index);
  return Status::ok();
}

Status Journal::append_locked(RecordType type, int fd, std::uint64_t offset, std::uint64_t len,
                              std::span<const std::byte> payload) {
  const std::size_t body_len = kBodyFixed + payload.size();
  const std::size_t rec_len = kFrameLen + body_len;
  if (cur_fd_ < 0) return {Errc::internal, "journal has no open segment"};
  if (cur_size_ + rec_len > cfg_.segment_bytes && cur_size_ > kSegmentMagicLen) {
    if (Status st = open_segment_locked(segments_.back() + 1); !st.is_ok()) return st;
  }

  std::vector<std::byte> rec(rec_len);
  std::byte* body = rec.data() + kFrameLen;
  body[0] = static_cast<std::byte>(type);
  put_u32(body + 1, static_cast<std::uint32_t>(fd));
  put_u64(body + 5, offset);
  put_u64(body + 13, len);
  if (!payload.empty()) std::memcpy(body + kBodyFixed, payload.data(), payload.size());
  put_u32(rec.data(), static_cast<std::uint32_t>(body_len));
  put_u32(rec.data() + 4, crc32c(body, body_len));

  if (Status st = write_all(cur_fd_, rec.data(), rec.size()); !st.is_ok()) return st;
  if (cfg_.fsync_each) {
    if (::fdatasync(cur_fd_) != 0) {
      return {Errc::io_error, std::string("journal fdatasync: ") + std::strerror(errno)};
    }
  }
  cur_size_ += rec_len;
  total_size_ += rec_len;
  return Status::ok();
}

Status Journal::truncate_all_locked() {
  // Everything staged has been retired: the log is pure garbage except for
  // the descriptor→path bindings, which get re-seeded into a fresh segment.
  const std::uint32_t next = segments_.empty() ? 1 : segments_.back() + 1;
  for (std::uint32_t idx : segments_) {
    std::error_code ec;
    std::filesystem::remove(segment_path(idx), ec);
  }
  segments_.clear();
  total_size_ = 0;
  if (cur_fd_ >= 0) {
    ::close(cur_fd_);
    cur_fd_ = -1;
  }
  if (Status st = open_segment_locked(next); !st.is_ok()) return st;
  ++truncations_;
  for (const auto& [fd, path] : open_paths_) {
    const auto bytes = std::as_bytes(std::span(path.data(), path.size()));
    if (Status st = append_locked(RecordType::open, fd, 0, path.size(), bytes); !st.is_ok()) {
      return st;
    }
  }
  return Status::ok();
}

Status Journal::append_open(int fd, std::string_view path) {
  std::lock_guard lk(mu_);
  open_paths_[fd] = std::string(path);
  const auto bytes = std::as_bytes(std::span(path.data(), path.size()));
  return append_locked(RecordType::open, fd, 0, path.size(), bytes);
}

Status Journal::append_stage(int fd, std::uint64_t offset, std::span<const std::byte> data) {
  std::lock_guard lk(mu_);
  if (Status st = append_locked(RecordType::stage, fd, offset, data.size(), data); !st.is_ok()) {
    return st;
  }
  range_insert(live_[fd], offset, data.size(), live_bytes_);
  return Status::ok();
}

Status Journal::append_retire(int fd, std::uint64_t offset, std::uint64_t len) {
  std::lock_guard lk(mu_);
  if (Status st = append_locked(RecordType::retire, fd, offset, len, {}); !st.is_ok()) return st;
  auto it = live_.find(fd);
  if (it != live_.end()) {
    range_erase(it->second, offset, len, live_bytes_);
    if (it->second.empty()) live_.erase(it);
  }
  if (live_bytes_ == 0 && (segments_.size() > 1 || cur_size_ > kSegmentMagicLen)) {
    return truncate_all_locked();
  }
  return Status::ok();
}

Status Journal::append_close(int fd) {
  std::lock_guard lk(mu_);
  open_paths_.erase(fd);
  if (Status st = append_locked(RecordType::close, fd, 0, 0, {}); !st.is_ok()) return st;
  auto it = live_.find(fd);
  if (it != live_.end()) {
    // Close implies drained; drop any straggler ranges defensively.
    for (const auto& [s, l] : it->second) live_bytes_ -= l;
    live_.erase(it);
  }
  if (live_bytes_ == 0 && (segments_.size() > 1 || cur_size_ > kSegmentMagicLen)) {
    return truncate_all_locked();
  }
  return Status::ok();
}

Result<JournalReplayCounts> Journal::replay(const JournalVisitor& v) {
  std::lock_guard lk(mu_);
  JournalReplayCounts counts;
  std::uint64_t remaining_after = 0;  // bytes in segments after a corrupt one
  bool stopped = false;

  for (std::size_t si = 0; si < segments_.size(); ++si) {
    const std::string path = segment_path(segments_[si]);
    std::vector<std::byte> buf;
    {
      std::error_code ec;
      const auto size = std::filesystem::file_size(path, ec);
      if (ec) return Status{Errc::io_error, "journal stat " + path + ": " + ec.message()};
      buf.resize(size);
      int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
      if (fd < 0) {
        return Status{Errc::io_error, "journal read " + path + ": " + std::strerror(errno)};
      }
      std::size_t off = 0;
      while (off < buf.size()) {
        ssize_t r = ::read(fd, buf.data() + off, buf.size() - off);
        if (r < 0 && errno == EINTR) continue;
        if (r <= 0) break;
        off += static_cast<std::size_t>(r);
      }
      ::close(fd);
      buf.resize(off);
    }

    if (stopped) {
      remaining_after += buf.size();
      continue;
    }

    std::size_t pos = 0;
    if (buf.size() < kSegmentMagicLen ||
        std::memcmp(buf.data(), kSegmentMagic, kSegmentMagicLen) != 0) {
      counts.discarded_bytes += buf.size();
      stopped = true;
      continue;
    }
    pos = kSegmentMagicLen;

    while (pos < buf.size()) {
      if (buf.size() - pos < kFrameLen) break;  // torn frame header
      const std::uint32_t body_len = get_u32(buf.data() + pos);
      const std::uint32_t stored_crc = get_u32(buf.data() + pos + 4);
      if (body_len < kBodyFixed || body_len > kMaxBodyLen) break;
      if (buf.size() - pos - kFrameLen < body_len) break;  // torn body
      const std::byte* body = buf.data() + pos + kFrameLen;
      if (crc32c(body, body_len) != stored_crc) break;

      const auto type = static_cast<RecordType>(body[0]);
      const int fd = static_cast<int>(get_u32(body + 1));
      const std::uint64_t offset = get_u64(body + 5);
      const std::uint64_t len = get_u64(body + 13);
      const std::size_t payload_len = body_len - kBodyFixed;
      bool ok = true;
      switch (type) {
        case RecordType::open:
          ok = payload_len == len;
          if (ok && v.on_open) {
            v.on_open(fd, std::string(reinterpret_cast<const char*>(body + kBodyFixed),
                                      payload_len));
          }
          break;
        case RecordType::stage:
          ok = payload_len == len;
          if (ok && v.on_stage) v.on_stage(fd, offset, {body + kBodyFixed, payload_len});
          break;
        case RecordType::retire:
          ok = payload_len == 0;
          if (ok && v.on_retire) v.on_retire(fd, offset, len);
          break;
        case RecordType::close:
          ok = payload_len == 0;
          if (ok && v.on_close) v.on_close(fd);
          break;
        default:
          ok = false;
      }
      if (!ok) break;  // internally inconsistent record: treat as corruption
      ++counts.applied;
      pos += kFrameLen + body_len;
    }
    if (pos < buf.size()) {
      counts.discarded_bytes += buf.size() - pos;
      stopped = true;
    }
  }
  counts.discarded_bytes += remaining_after;
  counts.torn = stopped;
  return counts;
}

Status Journal::reset() {
  std::lock_guard lk(mu_);
  live_.clear();
  live_bytes_ = 0;
  open_paths_.clear();
  const std::uint32_t next = segments_.empty() ? 1 : segments_.back() + 1;
  for (std::uint32_t idx : segments_) {
    std::error_code ec;
    std::filesystem::remove(segment_path(idx), ec);
  }
  segments_.clear();
  total_size_ = 0;
  if (cur_fd_ >= 0) {
    ::close(cur_fd_);
    cur_fd_ = -1;
  }
  return open_segment_locked(next);
}

std::uint64_t Journal::live_bytes() const {
  std::lock_guard lk(mu_);
  return live_bytes_;
}

std::uint64_t Journal::size_bytes() const {
  std::lock_guard lk(mu_);
  return total_size_;
}

std::uint64_t Journal::truncations() const {
  std::lock_guard lk(mu_);
  return truncations_;
}

// ---------------------------------------------------------------------------
// StagedModel

JournalVisitor StagedModel::visitor() {
  JournalVisitor v;
  v.on_open = [this](int fd, const std::string& path) { open(fd, path); };
  v.on_stage = [this](int fd, std::uint64_t offset, std::span<const std::byte> data) {
    stage(fd, offset, data);
  };
  v.on_retire = [this](int fd, std::uint64_t offset, std::uint64_t len) {
    retire(fd, offset, len);
  };
  v.on_close = [this](int fd) { close(fd); };
  return v;
}

void StagedModel::open(int fd, std::string path) { fds_[fd].path = std::move(path); }

void StagedModel::erase_range(Entry& e, std::uint64_t offset, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t end = offset + len;
  auto it = e.runs.lower_bound(offset);
  if (it != e.runs.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > offset) it = prev;
  }
  while (it != e.runs.end() && it->first < end) {
    const std::uint64_t s = it->first;
    std::vector<std::byte> bytes = std::move(it->second);
    const std::uint64_t re = s + bytes.size();
    it = e.runs.erase(it);
    if (s < offset) {
      std::vector<std::byte> head(bytes.begin(),
                                  bytes.begin() + static_cast<std::ptrdiff_t>(offset - s));
      e.runs.emplace(s, std::move(head));
    }
    if (re > end) {
      std::vector<std::byte> tail(bytes.begin() + static_cast<std::ptrdiff_t>(end - s),
                                  bytes.end());
      it = e.runs.emplace(end, std::move(tail)).first;
      ++it;
    }
  }
}

void StagedModel::stage(int fd, std::uint64_t offset, std::span<const std::byte> data) {
  if (data.empty()) return;
  Entry& e = fds_[fd];
  erase_range(e, offset, data.size());
  e.runs.emplace(offset, std::vector<std::byte>(data.begin(), data.end()));
}

void StagedModel::retire(int fd, std::uint64_t offset, std::uint64_t len) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  erase_range(it->second, offset, len);
}

void StagedModel::close(int fd) { fds_.erase(fd); }

std::map<int, StagedModel::File> StagedModel::files() const {
  std::map<int, File> out;
  for (const auto& [fd, e] : fds_) {
    File f;
    f.path = e.path;
    for (const auto& [start, bytes] : e.runs) f.runs.push_back(Run{start, bytes});
    out.emplace(fd, std::move(f));
  }
  return out;
}

std::uint64_t StagedModel::live_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [fd, e] : fds_) {
    for (const auto& [start, bytes] : e.runs) total += bytes.size();
  }
  return total;
}

}  // namespace iofwd::bb
