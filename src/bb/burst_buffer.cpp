#include "bb/burst_buffer.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>

#include "bb/journal.hpp"
#include "cluster/bb_budget.hpp"

namespace iofwd::bb {

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

BurstBufferBackend::BurstBufferBackend(std::unique_ptr<rt::IoBackend> inner,
                                       BurstBufferConfig cfg)
    : inner_(std::move(inner)),
      cfg_(cfg),
      pool_(cfg.capacity_bytes, cfg.min_class_bytes, cfg.policy),
      owned_registry_(cfg.registry != nullptr ? nullptr
                                              : std::make_unique<obs::MetricRegistry>()),
      reg_(cfg.registry != nullptr ? cfg.registry : owned_registry_.get()),
      c_writes_in_(reg_->counter("bb.writes_in")),
      c_writes_absorbed_(reg_->counter("bb.writes_absorbed")),
      c_backend_writes_(reg_->counter("bb.backend_writes")),
      c_bytes_in_(reg_->counter("bb.bytes_in")),
      c_flushed_bytes_(reg_->counter("bb.flushed_bytes")),
      c_write_through_bytes_(reg_->counter("bb.write_through_bytes")),
      c_read_bytes_(reg_->counter("bb.read_bytes")),
      c_read_hit_bytes_(reg_->counter("bb.read_hit_bytes")),
      c_evictions_(reg_->counter("bb.evictions")),
      c_stall_ns_(reg_->counter("bb.stall_ns")),
      c_stalls_(reg_->counter("bb.stalls")),
      c_degraded_writes_(reg_->counter("bb.degraded_writes")),
      c_deferred_errors_(reg_->counter("bb.deferred_errors")),
      c_drains_(reg_->counter("bb.drains")),
      c_pinned_reads_(reg_->counter("bb.pinned_reads")),
      c_budget_denied_(reg_->counter("bb.budget_denied")),
      c_journal_appends_(reg_->counter("bb.journal.appends")),
      c_journal_append_errors_(reg_->counter("bb.journal.append_errors")),
      c_journal_recovered_(reg_->counter("bb.journal.recovered")),
      c_journal_discarded_(reg_->counter("bb.journal.discarded")),
      g_cached_bytes_(reg_->gauge("bb.cached_bytes")),
      g_cached_high_watermark_(reg_->gauge("bb.cached_high_watermark")),
      g_dirty_bytes_(reg_->gauge("bb.dirty_bytes")),
      g_journal_live_bytes_(reg_->gauge("bb.journal.live_bytes")),
      g_journal_size_bytes_(reg_->gauge("bb.journal.size_bytes")) {
  assert(inner_ && "BurstBufferBackend needs an inner backend");
  if (cfg_.write_through_bytes == 0) {
    cfg_.write_through_bytes = std::max<std::uint64_t>(cfg_.capacity_bytes / 4, 1);
  }
  cfg_.high_watermark = std::clamp(cfg_.high_watermark, 0.0, 1.0);
  cfg_.low_watermark = std::clamp(cfg_.low_watermark, 0.0, cfg_.high_watermark);
  if (cfg_.cluster_budget != nullptr) {
    // A hot sibling shard's pressure wakes this shard's flushers and any
    // stalled writers, so the whole fleet helps drain past the global high
    // watermark even when this cache is locally cold.
    budget_token_ = cfg_.cluster_budget->subscribe([this] {
      std::scoped_lock lk(flush_mu_);
      flush_cv_.notify_all();
      space_cv_.notify_all();
    });
  }
  if (!cfg_.journal_dir.empty()) {
    auto j = Journal::open(JournalConfig{cfg_.journal_dir, cfg_.journal_segment_bytes,
                                         cfg_.journal_fsync});
    if (j.is_ok()) {
      journal_ = std::move(j).value();
      // Replay before the flushers exist: recovery owns the cache exclusively.
      recover_from_journal();
    } else {
      // No journal directory means no durability upgrade, but the cache still
      // serves; the error count is the only trace.
      c_journal_append_errors_.inc();
      journal_dead_.store(true);
    }
  }
  const int n = std::max(1, cfg_.flushers);
  flushers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    flushers_.emplace_back([this] { flusher_loop(); });
  }
  if (dirty_total_.load() != 0) {
    // Recovered extents are dirty: re-enqueue their flushes right away rather
    // than waiting for the next watermark crossing.
    std::scoped_lock lk(flush_mu_);
    flush_cv_.notify_all();
  }
}

BurstBufferBackend::~BurstBufferBackend() {
  if (!crashed_.load()) {
    // Unsubscribe before teardown: no sibling poke may land mid-destruction.
    if (cfg_.cluster_budget != nullptr && budget_token_ != 0) {
      cfg_.cluster_budget->unsubscribe(budget_token_);
    }
    drain_all();
  }
  stop_.store(true);
  {
    std::scoped_lock lk(flush_mu_);
    flush_cv_.notify_all();
    space_cv_.notify_all();
  }
  flushers_.clear();  // jthread joins on destruction
}

void BurstBufferBackend::crash_discard() {
  if (crashed_.exchange(true)) return;
  // Freeze the on-disk log first: whatever is there now IS the crash image.
  journal_dead_.store(true);
  stop_.store(true);
  {
    std::scoped_lock lk(flush_mu_);
    flush_cv_.notify_all();
    space_cv_.notify_all();
  }
  flushers_.clear();
  if (cfg_.cluster_budget != nullptr && budget_token_ != 0) {
    cfg_.cluster_budget->unsubscribe(budget_token_);
    budget_token_ = 0;
  }
  {
    std::unique_lock lk(descs_mu_);
    descs_.clear();  // every staged extent dies with the "process"
  }
  dirty_total_.store(0);
  // Return the whole cluster reservation in one motion; budget_release's
  // clamp keeps any straggling per-extent release from double-counting.
  const std::uint64_t held = budget_held_.exchange(0);
  if (held != 0 && cfg_.cluster_budget != nullptr) cfg_.cluster_budget->unstage(held);
}

bool BurstBufferBackend::over_high() const {
  if (cfg_.cluster_budget != nullptr && cfg_.cluster_budget->over_high()) return true;
  return pool_.in_use() >=
         static_cast<std::uint64_t>(cfg_.high_watermark * static_cast<double>(pool_.capacity()));
}

bool BurstBufferBackend::over_low() const {
  if (cfg_.cluster_budget != nullptr && cfg_.cluster_budget->over_low()) return true;
  return pool_.in_use() >
         static_cast<std::uint64_t>(cfg_.low_watermark * static_cast<double>(pool_.capacity()));
}

bool BurstBufferBackend::budget_reserve(std::uint64_t n) {
  if (cfg_.cluster_budget == nullptr) return true;
  if (crashed_.load(std::memory_order_relaxed)) return false;  // no new reservations
  if (cfg_.cluster_budget->try_stage(n)) {
    budget_held_.fetch_add(n);
    return true;
  }
  c_budget_denied_.inc();
  return false;
}

void BurstBufferBackend::budget_release(std::uint64_t n) {
  if (n == 0 || cfg_.cluster_budget == nullptr) return;
  // Clamp to what this cache actually holds: crash_discard() may have bulk-
  // released the reservation while a straggling caller still unwinds.
  std::uint64_t cur = budget_held_.load();
  std::uint64_t take = 0;
  do {
    take = std::min(n, cur);
  } while (!budget_held_.compare_exchange_weak(cur, cur - take));
  if (take != 0) cfg_.cluster_budget->unstage(take);
}

void BurstBufferBackend::record_deferred(int fd, const Status& st) {
  std::optional<std::uint64_t> seq;
  {
    std::scoped_lock lk(db_mu_);
    seq = db_.begin_op(fd);
    if (seq) (void)db_.complete_op(fd, *seq, st);
  }
  c_deferred_errors_.inc();
}

// ---------------------------------------------------------------------------
// Write-ahead journal (DESIGN.md §16)
// ---------------------------------------------------------------------------

void BurstBufferBackend::journal_append_open(int fd, const std::string& path) {
  if (!journal_ || journal_dead_.load(std::memory_order_relaxed)) return;
  if (Status st = journal_->append_open(fd, path); !st.is_ok()) {
    journal_dead_.store(true);
    c_journal_append_errors_.inc();
  } else {
    c_journal_appends_.inc();
  }
}

void BurstBufferBackend::journal_append_stage(int fd, std::uint64_t offset,
                                              std::span<const std::byte> data) {
  if (!journal_ || journal_dead_.load(std::memory_order_relaxed)) return;
  if (Status st = journal_->append_stage(fd, offset, data); !st.is_ok()) {
    journal_dead_.store(true);
    c_journal_append_errors_.inc();
  } else {
    c_journal_appends_.inc();
  }
}

void BurstBufferBackend::journal_append_retire(int fd, std::uint64_t start, std::uint64_t len) {
  if (!journal_ || journal_dead_.load(std::memory_order_relaxed)) return;
  if (Status st = journal_->append_retire(fd, start, len); !st.is_ok()) {
    journal_dead_.store(true);
    c_journal_append_errors_.inc();
  } else {
    c_journal_appends_.inc();
  }
}

void BurstBufferBackend::journal_append_close(int fd) {
  if (!journal_ || journal_dead_.load(std::memory_order_relaxed)) return;
  if (Status st = journal_->append_close(fd); !st.is_ok()) {
    journal_dead_.store(true);
    c_journal_append_errors_.inc();
  } else {
    c_journal_appends_.inc();
  }
}

void BurstBufferBackend::recover_from_journal() {
  StagedModel model;
  const JournalVisitor visitor = model.visitor();
  auto replayed = journal_->replay(visitor);
  if (!replayed.is_ok()) {
    journal_dead_.store(true);
    c_journal_append_errors_.inc();
    return;
  }
  c_journal_recovered_.add(replayed.value().applied);
  c_journal_discarded_.add(replayed.value().discarded_bytes);
  // Compact: the old segments are garbage once the surviving runs are
  // re-staged (with fresh records) below; anything that cannot be re-staged
  // is written straight through to the inner backend instead, so no path
  // loses bytes silently.
  if (Status st = journal_->reset(); !st.is_ok()) {
    journal_dead_.store(true);
    c_journal_append_errors_.inc();
    return;
  }

  for (auto& [fd, file] : model.files()) {
    if (file.runs.empty() || file.path.empty()) continue;
    // A failed re-open (or one bounced because the shared inner backend still
    // has fd open) surfaces through the write fallback below, as a deferred
    // error — recovery never throws bytes away silently.
    (void)inner_->open(fd, file.path);
    auto d = std::make_shared<Desc>();
    {
      std::unique_lock lk(descs_mu_);
      auto it = descs_.find(fd);
      if (it != descs_.end()) {
        d = it->second;
      } else {
        descs_[fd] = d;
      }
      open_paths_[fd] = file.path;
    }
    {
      std::scoped_lock lk(db_mu_);
      (void)db_.open_descriptor(fd);
    }
    journal_append_open(fd, file.path);
    std::scoped_lock lk(d->mu);
    for (auto& run : file.runs) {
      const std::span<const std::byte> bytes(run.bytes.data(), run.bytes.size());
      bool staged = false;
      if (budget_reserve(bytes.size())) {
        const std::uint64_t d0 = d->index.dirty_bytes();
        const std::uint64_t b0 = d->index.data_bytes();
        auto r = d->index.insert(run.offset, bytes, pool_);
        if (r.is_ok()) {
          const std::uint64_t delta = d->index.data_bytes() - b0;
          if (delta < bytes.size()) budget_release(bytes.size() - delta);
          dirty_total_ += d->index.dirty_bytes() - d0;
          journal_append_stage(fd, run.offset, bytes);
          staged = true;
        } else {
          budget_release(bytes.size());
        }
      }
      if (!staged) {
        // Budget or pool refused the re-stage: durable now beats staged.
        auto r = inner_->write(fd, run.offset, bytes);
        c_backend_writes_.inc();
        if (!r.is_ok()) record_deferred(fd, r.status());
      }
    }
  }
}

std::shared_ptr<BurstBufferBackend::Desc> BurstBufferBackend::find_desc(int fd) const {
  std::shared_lock lk(descs_mu_);
  auto it = descs_.find(fd);
  return it != descs_.end() ? it->second : nullptr;
}

Status BurstBufferBackend::consume_deferred(int fd) {
  std::scoped_lock lk(db_mu_);
  Status st = db_.consume_pending_error(fd);
  if (st.code() == Errc::bad_descriptor) return Status::ok();  // unknown to the db: pass through
  return st;
}

// ---------------------------------------------------------------------------
// IoBackend surface
// ---------------------------------------------------------------------------

Status BurstBufferBackend::open(int fd, const std::string& path) {
  if (Status st = inner_->open(fd, path); !st.is_ok()) {
    // The inner backend can already hold this fd: journal recovery re-opened
    // it before the client's post-restart open-replay arrived. The replay of
    // the same (fd, path) binding must land on the recovered descriptor, not
    // bounce; a different path is still a caller bug.
    std::shared_lock lk(descs_mu_);
    auto it = open_paths_.find(fd);
    if (it == open_paths_.end() || it->second != path) return st;
  }
  {
    std::unique_lock lk(descs_mu_);
    // Reuse an existing Desc: journal recovery may have rebuilt this
    // descriptor's extents before the client's open-replay arrives, and a
    // duplicate open only ever happens as a replay of the same (fd, path)
    // binding — replacing the Desc here would silently drop recovered bytes.
    if (descs_.find(fd) == descs_.end()) descs_[fd] = std::make_shared<Desc>();
    open_paths_[fd] = path;
  }
  {
    std::scoped_lock lk(db_mu_);
    (void)db_.open_descriptor(fd);
  }
  journal_append_open(fd, path);
  return Status::ok();
}

Result<std::uint64_t> BurstBufferBackend::write(int fd, std::uint64_t offset,
                                                std::span<const std::byte> data) {
  auto d = find_desc(fd);
  if (!d) return inner_->write(fd, offset, data);  // not opened through us
  if (Status st = consume_deferred(fd); !st.is_ok()) return st;
  if (data.size() >= cfg_.write_through_bytes) return write_through(fd, d, offset, data);

  bool stalled = false;
  std::uint64_t stall_start = 0;
  for (;;) {
    bool too_large = false;
    {
      std::scoped_lock lk(d->mu);
      const std::uint64_t d0 = d->index.dirty_bytes();
      const std::uint64_t b0 = d->index.data_bytes();
      // Cluster admission first: a denied global reservation is the same
      // backpressure as a full local cache — fall through to the stall
      // machinery (and eventually the degraded write-through) below.
      if (budget_reserve(data.size())) {
        auto r = d->index.insert(offset, data, pool_);
        if (r.is_ok()) {
          // The insert may have overwritten cached bytes, so the index grew
          // by less than we reserved; return the overshoot.
          const std::uint64_t delta = d->index.data_bytes() - b0;
          if (delta < data.size()) budget_release(data.size() - delta);
          dirty_total_ += d->index.dirty_bytes() - d0;
          c_writes_in_.inc();
          c_bytes_in_.add(data.size());
          if (r.value() != ExtentIndex::Insert::fresh) c_writes_absorbed_.inc();
          // Persist before the ack: once this record is down, a crash cannot
          // lose the write (acked ⇒ journaled). Appended under d->mu so the
          // log's per-descriptor record order matches the index mutation
          // order replay reproduces.
          journal_append_stage(fd, offset, data);
          break;
        }
        budget_release(data.size());  // nothing was cached
        if (r.code() == Errc::message_too_large) {
          too_large = true;
        } else if (r.code() != Errc::would_block) {
          return r.status();
        }
      }
    }
    if (too_large) return write_through(fd, d, offset, data);

    // Cache full: kick the flushers, reclaim one run ourselves if possible,
    // otherwise wait briefly for background progress. All stall time is
    // charged to this writer.
    if (!stalled) {
      stalled = true;
      stall_start = now_ns();
    } else if (cfg_.max_stall_ms > 0 &&
               now_ns() - stall_start > std::uint64_t(cfg_.max_stall_ms) * 1'000'000ull) {
      // Bounded stall: degrade to a synchronous write-through rather than
      // blocking this writer indefinitely on cache space.
      c_stalls_.inc();
      c_degraded_writes_.inc();
      c_stall_ns_.add(now_ns() - stall_start);
      return write_through(fd, d, offset, data);
    }
    {
      std::scoped_lock lk(flush_mu_);
      flush_cv_.notify_all();
    }
    if (cfg_.max_stall_ms > 0) {
      // Bounded mode: an inline flush can block this writer for a whole
      // backend round-trip, blowing the stall budget. Wait for background
      // flusher progress instead; the deadline check above degrades us.
      std::unique_lock lk(flush_mu_);
      space_cv_.wait_for(lk, std::chrono::milliseconds(1));
    } else if (!flush_one_step()) {
      std::unique_lock lk(flush_mu_);
      space_cv_.wait_for(lk, std::chrono::milliseconds(1));
    }
  }
  if (stalled) {
    c_stalls_.inc();
    c_stall_ns_.add(now_ns() - stall_start);
  }
  if (over_high()) {
    std::scoped_lock lk(flush_mu_);
    flush_cv_.notify_all();
  }
  return static_cast<std::uint64_t>(data.size());
}

Result<std::uint64_t> BurstBufferBackend::write_through(int fd, const std::shared_ptr<Desc>& d,
                                                        std::uint64_t offset,
                                                        std::span<const std::byte> data) {
  std::scoped_lock lk(d->mu);
  // Any cached extents under the new range are superseded; dirty ones must
  // land first so the bypassing write wins.
  const std::uint64_t d0 = d->index.dirty_bytes();
  const std::uint64_t b0 = d->index.data_bytes();
  auto taken = d->index.take_overlapping(offset, data.size());
  dirty_total_ -= d0 - d->index.dirty_bytes();
  budget_release(b0 - d->index.data_bytes());
  std::uint64_t extra_writes = 0;
  for (auto& e : taken) {
    if (!e.dirty) continue;
    auto r = inner_->write(fd, e.start, std::span<const std::byte>(e.buf->data(), e.len));
    ++extra_writes;
    if (!r.is_ok()) record_deferred(fd, r.status());
    // Off the dirty set either way (flushed, or lost with a deferred error).
    journal_append_retire(fd, e.start, e.len);
  }
  auto r = inner_->write(fd, offset, data);
  c_writes_in_.inc();
  c_bytes_in_.add(data.size());
  c_backend_writes_.add(extra_writes + 1);
  c_write_through_bytes_.add(data.size());
  if (!taken.empty()) c_flushed_bytes_.add(d0 - d->index.dirty_bytes());
  return r;
}

Result<std::uint64_t> BurstBufferBackend::read(int fd, std::uint64_t offset,
                                               std::span<std::byte> out) {
  auto d = find_desc(fd);
  if (!d) return inner_->read(fd, offset, out);
  if (Status st = consume_deferred(fd); !st.is_ok()) return st;

  std::scoped_lock lk(d->mu);
  const auto segs = d->index.segments(offset, out.size());
  std::uint64_t produced = 0;
  std::uint64_t hit = 0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const auto& seg = segs[i];
    auto slice = out.subspan(static_cast<std::size_t>(seg.offset - offset),
                             static_cast<std::size_t>(seg.len));
    if (seg.ext != nullptr) {
      std::memcpy(slice.data(), seg.ext->buf->data() + (seg.offset - seg.ext->start), seg.len);
      hit += seg.len;
      produced = seg.offset + seg.len - offset;
      continue;
    }
    auto r = inner_->read(fd, seg.offset, slice);
    if (!r.is_ok()) return r.status();
    if (r.value() < seg.len) {
      // Short read inside a hole: past EOF. Interior holes (cached data
      // further right) read as zeros; a trailing hole ends the read.
      std::fill(slice.begin() + static_cast<std::ptrdiff_t>(r.value()), slice.end(),
                std::byte{0});
      if (i + 1 == segs.size()) {
        produced = (seg.offset - offset) + r.value();
        break;
      }
    }
    produced = seg.offset + seg.len - offset;
  }
  c_read_bytes_.add(produced);
  c_read_hit_bytes_.add(hit);
  return produced;
}

std::optional<PinnedRead> BurstBufferBackend::read_pinned(int fd, std::uint64_t offset,
                                                          std::uint64_t len) {
  if (len == 0) return std::nullopt;
  auto d = find_desc(fd);
  if (!d) return std::nullopt;
  {
    // Peek only: a pending deferred error must surface (and be consumed) on
    // the regular read() the caller falls back to, never be skipped here.
    std::scoped_lock lk(db_mu_);
    if (db_.has_pending_error(fd)) return std::nullopt;
  }
  std::scoped_lock lk(d->mu);
  const auto segs = d->index.segments(offset, len);
  if (segs.size() != 1 || segs.front().ext == nullptr || segs.front().len != len) {
    return std::nullopt;  // hole or partial coverage: the copying path handles it
  }
  const Extent& e = *segs.front().ext;
  PinnedRead pin;
  pin.lease = e.buf;  // pinned: insert() now treats this extent as immutable
  pin.bytes = std::span<const std::byte>(e.buf->data() + (offset - e.start),
                                         static_cast<std::size_t>(len));
  c_read_bytes_.add(len);
  c_read_hit_bytes_.add(len);
  c_pinned_reads_.inc();
  return pin;
}

Status BurstBufferBackend::fsync(int fd) {
  auto d = find_desc(fd);
  if (!d) return inner_->fsync(fd);
  // Deferred-error gate first: a pending error bounces the op unexecuted.
  if (Status st = consume_deferred(fd); !st.is_ok()) return st;
  {
    std::scoped_lock lk(d->mu);
    drain_locked(fd, *d);
  }
  // Errors produced by this drain surface on the fsync itself (the barrier).
  if (Status st = consume_deferred(fd); !st.is_ok()) return st;
  return inner_->fsync(fd);
}

Status BurstBufferBackend::close(int fd) {
  std::shared_ptr<Desc> d;
  {
    std::unique_lock lk(descs_mu_);
    auto it = descs_.find(fd);
    if (it != descs_.end()) {
      d = it->second;
      descs_.erase(it);  // flushers can no longer pick this descriptor
    }
    open_paths_.erase(fd);
  }
  if (!d) return inner_->close(fd);
  {
    std::scoped_lock lk(d->mu);
    drain_locked(fd, *d);
    budget_release(d->index.data_bytes());  // clean extents about to drop
    d->index.clear();  // releases every lease — nothing may leak past close
    journal_append_close(fd);
  }
  Status deferred;
  {
    std::scoped_lock lk(db_mu_);
    deferred = db_.close_descriptor(fd);
  }
  Status be = inner_->close(fd);
  if (!deferred.is_ok() && deferred.code() != Errc::bad_descriptor) return deferred;
  return be;
}

Result<std::uint64_t> BurstBufferBackend::size(int fd) {
  auto d = find_desc(fd);
  if (!d) return inner_->size(fd);
  if (Status st = consume_deferred(fd); !st.is_ok()) return st;
  auto s = inner_->size(fd);
  if (!s.is_ok()) return s;
  std::scoped_lock lk(d->mu);
  return std::max(s.value(), d->index.max_end());
}

// ---------------------------------------------------------------------------
// Flushing
// ---------------------------------------------------------------------------

void BurstBufferBackend::flush_extent(int fd, Desc& d, Extent& e) {
  const std::uint64_t start = e.start;
  const std::uint64_t len = e.len;
  std::optional<std::uint64_t> seq;
  {
    std::scoped_lock lk(db_mu_);
    seq = db_.begin_op(fd);
  }
  auto r = inner_->write(fd, start, std::span<const std::byte>(e.buf->data(), len));
  const Status st = r.is_ok() ? Status::ok() : r.status();
  {
    std::scoped_lock lk(db_mu_);
    if (seq) (void)db_.complete_op(fd, *seq, st);
  }
  dirty_total_ -= len;
  c_backend_writes_.inc();
  if (st.is_ok()) {
    c_flushed_bytes_.add(len);
  } else {
    c_deferred_errors_.inc();
  }
  if (st.is_ok()) {
    d.index.mark_clean(e);
  } else {
    // The data is lost either way; dropping the lease keeps the error from
    // also leaking pool capacity. The recorded status surfaces on the next
    // operation on this descriptor.
    d.index.evict(start);
  }
  // Retired from the journal's live set on both paths: flushed bytes are
  // durable below, failed bytes are gone and their loss is already recorded
  // as a deferred error — replaying them would resurrect stale data.
  journal_append_retire(fd, start, len);
}

void BurstBufferBackend::drain_locked(int fd, Desc& d) {
  // A successful flush keeps the extent cached (clean) — still staged, still
  // budgeted; only the failure path's evict removes bytes, captured by the
  // data_bytes delta.
  const std::uint64_t b0 = d.index.data_bytes();
  while (Extent* e = d.index.largest_dirty()) {
    flush_extent(fd, d, *e);
  }
  budget_release(b0 - d.index.data_bytes());
  c_drains_.inc();
}

void BurstBufferBackend::drain(int fd) {
  auto d = find_desc(fd);
  if (!d) return;
  std::scoped_lock lk(d->mu);
  drain_locked(fd, *d);
}

void BurstBufferBackend::drain_all() {
  std::vector<std::pair<int, std::shared_ptr<Desc>>> snap;
  {
    std::shared_lock lk(descs_mu_);
    snap.assign(descs_.begin(), descs_.end());
  }
  for (auto& [fd, d] : snap) {
    std::scoped_lock lk(d->mu);
    drain_locked(fd, *d);
  }
}

bool BurstBufferBackend::flush_one_step() {
  std::vector<std::pair<int, std::shared_ptr<Desc>>> snap;
  {
    std::shared_lock lk(descs_mu_);
    snap.assign(descs_.begin(), descs_.end());
  }

  // Largest-dirty-run-first across all descriptors.
  int best_fd = -1;
  std::shared_ptr<Desc> best;
  std::uint64_t best_len = 0;
  for (auto& [fd, d] : snap) {
    std::scoped_lock lk(d->mu);
    if (Extent* e = d->index.largest_dirty(); e != nullptr && e->len > best_len) {
      best_fd = fd;
      best = d;
      best_len = e->len;
    }
  }
  if (best) {
    std::scoped_lock lk(best->mu);
    if (Extent* e = best->index.largest_dirty()) {
      const std::uint64_t start = e->start;
      const std::uint64_t b0 = best->index.data_bytes();
      flush_extent(best_fd, *best, *e);
      // Under memory pressure a flushed run is also evicted — write-back
      // then reclaim, not just write-back.
      best->index.evict(start);
      budget_release(b0 - best->index.data_bytes());
    }
    return true;
  }

  // Nothing dirty anywhere: reclaim the largest clean (read-cache) extent.
  best = nullptr;
  best_len = 0;
  for (auto& [fd, d] : snap) {
    std::scoped_lock lk(d->mu);
    if (Extent* e = d->index.largest_clean(); e != nullptr && e->len > best_len) {
      best = d;
      best_len = e->len;
    }
  }
  if (best) {
    std::scoped_lock lk(best->mu);
    if (Extent* e = best->index.largest_clean()) {
      const std::uint64_t len = e->len;
      best->index.evict(e->start);
      budget_release(len);
      c_evictions_.inc();
      return true;
    }
  }
  return false;
}

void BurstBufferBackend::flusher_loop() {
  for (;;) {
    {
      std::unique_lock lk(flush_mu_);
      const auto woken = [&] { return stop_.load() || over_high(); };
      if (cfg_.flush_idle_ms > 0) {
        // Timed wait: on timeout fall through to the drain loop, which is a
        // no-op unless we are above the low watermark. This is the dirty-age
        // bound — hysteresis handles bursts, the tick handles their tails.
        (void)flush_cv_.wait_for(lk, std::chrono::milliseconds(cfg_.flush_idle_ms), woken);
      } else {
        flush_cv_.wait(lk, woken);
      }
      if (stop_.load()) return;
    }
    bool progressed = false;
    while (!stop_.load() && over_low()) {
      if (!flush_one_step()) break;
      progressed = true;
      std::scoped_lock lk(flush_mu_);
      space_cv_.notify_all();
    }
    {
      std::scoped_lock lk(flush_mu_);
      space_cv_.notify_all();
    }
    if (!progressed) {
      // Over the watermark with nothing flushable is transient (extents
      // mid-mutation); back off instead of spinning on the predicate.
      std::unique_lock lk(flush_mu_);
      flush_cv_.wait_for(lk, std::chrono::milliseconds(1), [&] { return stop_.load(); });
    }
  }
}

BurstBufferStats BurstBufferBackend::stats() const {
  BurstBufferStats s;
  s.writes_in = c_writes_in_.value();
  s.writes_absorbed = c_writes_absorbed_.value();
  s.backend_writes = c_backend_writes_.value();
  s.bytes_in = c_bytes_in_.value();
  s.flushed_bytes = c_flushed_bytes_.value();
  s.write_through_bytes = c_write_through_bytes_.value();
  s.read_bytes = c_read_bytes_.value();
  s.read_hit_bytes = c_read_hit_bytes_.value();
  s.evictions = c_evictions_.value();
  s.stall_ns = c_stall_ns_.value();
  s.stalls = c_stalls_.value();
  s.degraded_writes = c_degraded_writes_.value();
  s.deferred_errors = c_deferred_errors_.value();
  s.drains = c_drains_.value();
  s.pinned_reads = c_pinned_reads_.value();
  s.cached_bytes = pool_.in_use();
  s.cached_high_watermark = pool_.high_watermark();
  s.dirty_bytes = dirty_total_.load();
  return s;
}

void BurstBufferBackend::refresh_gauges() const {
  g_cached_bytes_.set(static_cast<std::int64_t>(pool_.in_use()));
  g_cached_high_watermark_.set(static_cast<std::int64_t>(pool_.high_watermark()));
  g_dirty_bytes_.set(static_cast<std::int64_t>(dirty_total_.load()));
  if (journal_) {
    g_journal_live_bytes_.set(static_cast<std::int64_t>(journal_->live_bytes()));
    g_journal_size_bytes_.set(static_cast<std::int64_t>(journal_->size_bytes()));
  }
}

}  // namespace iofwd::bb
