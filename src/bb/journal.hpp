// Write-ahead journal for the burst-buffer staging cache (DESIGN.md §16).
//
// The async-staging design acks a write as soon as it lands in the cache,
// which makes a process crash silently destructive: every acked-but-unflushed
// extent dies with the ION. The journal closes that hole the BurstMem way —
// log-structured persistence of staged writes. Each staged extent is appended
// here *before* the ack; each flushed (or evicted) extent appends a RETIRE so
// replay knows the bytes are durable in the inner backend; OPEN/CLOSE records
// carry the descriptor→path binding replay needs to rebind files.
//
// On-disk format: a directory of append-only segment files
// (`wal-NNNNNN.seg`), each starting with an 8-byte magic and holding
// CRC32C-framed records:
//
//   u32 body_len | u32 crc32c(body) | body
//   body: u8 type | i32 fd | u64 offset | u64 len | payload[...]
//
// Replay walks the segments in order and stops at the first short or
// corrupt record — a torn tail from a mid-append crash is expected and
// tolerated; everything before it is intact by CRC.
//
// Truncation: the journal tracks the live (staged-minus-retired) byte
// ranges per descriptor under its append lock. The moment live bytes hit
// zero — every staged extent has been flushed — all segments are deleted
// and a fresh one is seeded with OPEN records for the still-open
// descriptors, so a drain-heavy workload keeps the log near-empty. Within a
// busy interval, appends rotate to a new segment past `segment_bytes`.
//
// Thread safety: every operation takes one internal mutex; callers already
// serialize per-descriptor mutation order (the burst buffer appends under
// its per-descriptor lock), which is the order replay depends on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/status.hpp"

namespace iofwd::bb {

struct JournalConfig {
  std::string dir;                           // segment directory (created if absent)
  std::uint64_t segment_bytes = 8ull << 20;  // rotate appends past this size
  // fdatasync after every append: survives host power loss, not just process
  // death. Off by default — the crash model this journal defends against is
  // a dying ION process, and the page cache outlives that.
  bool fsync_each = false;
};

// Replay callbacks, invoked in append order.
struct JournalVisitor {
  std::function<void(int fd, const std::string& path)> on_open;
  std::function<void(int fd, std::uint64_t offset, std::span<const std::byte> data)> on_stage;
  std::function<void(int fd, std::uint64_t offset, std::uint64_t len)> on_retire;
  std::function<void(int fd)> on_close;
};

struct JournalReplayCounts {
  std::uint64_t applied = 0;          // intact records delivered to the visitor
  std::uint64_t discarded_bytes = 0;  // bytes dropped at the first bad record
  bool torn = false;                  // replay stopped before the end of the log
};

class Journal {
 public:
  // Opens (creating if needed) the journal directory. Existing segments are
  // left untouched for replay(); a fresh directory starts with one empty
  // segment. Callers replay() then reset() before the first append.
  static Result<std::unique_ptr<Journal>> open(JournalConfig cfg);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Walk every intact record in segment order. Stops (torn = true) at the
  // first short read or CRC mismatch and reports the bytes left behind.
  Result<JournalReplayCounts> replay(const JournalVisitor& v);

  // Drop every segment and start an empty one — the post-replay compaction
  // baseline (the recovered state is re-appended by the caller).
  Status reset();

  Status append_open(int fd, std::string_view path);
  Status append_stage(int fd, std::uint64_t offset, std::span<const std::byte> data);
  Status append_retire(int fd, std::uint64_t offset, std::uint64_t len);
  Status append_close(int fd);

  // Staged-minus-retired bytes the log currently protects.
  [[nodiscard]] std::uint64_t live_bytes() const;
  // On-disk bytes across every segment.
  [[nodiscard]] std::uint64_t size_bytes() const;
  // Idle truncations performed (live bytes hit zero).
  [[nodiscard]] std::uint64_t truncations() const;
  [[nodiscard]] const std::string& dir() const { return cfg_.dir; }

  static constexpr std::uint64_t kSegmentMagicLen = 8;

 private:
  enum class RecordType : std::uint8_t { open = 1, stage = 2, retire = 3, close = 4 };
  static constexpr std::size_t kBodyFixed = 1 + 4 + 8 + 8;  // type, fd, offset, len
  static constexpr std::size_t kFrameLen = 8;               // body_len + crc

  explicit Journal(JournalConfig cfg) : cfg_(std::move(cfg)) {}

  Status open_segment_locked(std::uint32_t index);
  Status append_locked(RecordType type, int fd, std::uint64_t offset, std::uint64_t len,
                       std::span<const std::byte> payload);
  // Delete every segment and reseed one with OPEN records for open_paths_.
  Status truncate_all_locked();
  [[nodiscard]] std::string segment_path(std::uint32_t index) const;

  JournalConfig cfg_;
  mutable std::mutex mu_;
  std::vector<std::uint32_t> segments_;  // existing segment indices, ascending
  int cur_fd_ = -1;                      // append fd of the last segment
  std::uint64_t cur_size_ = 0;           // bytes in the last segment
  std::uint64_t total_size_ = 0;         // bytes across all segments
  std::uint64_t truncations_ = 0;

  // Live-range model: per descriptor, the staged byte ranges not yet
  // retired. Maintained under mu_ so the idle-truncation decision is atomic
  // with appends (a racing stage can never be dropped by a truncate).
  std::map<int, std::map<std::uint64_t, std::uint64_t>> live_;  // fd -> start -> len
  std::uint64_t live_bytes_ = 0;
  std::map<int, std::string> open_paths_;  // replayed into a fresh segment on truncate
};

// Byte-accurate replay model: the per-descriptor staged contents a journal
// log describes, with newest-wins overwrite semantics matching ExtentIndex.
// Recovery replays the log into one of these, then re-stages the surviving
// runs into the real cache; tests use it to assert replay semantics
// directly. Not thread-safe (replay is single-threaded).
class StagedModel {
 public:
  // A visitor that applies records to this model.
  [[nodiscard]] JournalVisitor visitor();

  void open(int fd, std::string path);
  void stage(int fd, std::uint64_t offset, std::span<const std::byte> data);
  void retire(int fd, std::uint64_t offset, std::uint64_t len);
  void close(int fd);

  struct Run {
    std::uint64_t offset = 0;
    std::vector<std::byte> bytes;
  };
  struct File {
    std::string path;
    std::vector<Run> runs;  // ascending, non-overlapping
  };
  // Every descriptor still open, with its live runs (possibly none).
  [[nodiscard]] std::map<int, File> files() const;
  [[nodiscard]] std::uint64_t live_bytes() const;

 private:
  struct Entry {
    std::string path;
    std::map<std::uint64_t, std::vector<std::byte>> runs;  // start -> bytes
  };
  static void erase_range(Entry& e, std::uint64_t offset, std::uint64_t len);

  std::map<int, Entry> fds_;
};

}  // namespace iofwd::bb
