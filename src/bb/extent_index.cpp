#include "bb/extent_index.hpp"

#include <algorithm>
#include <cstring>

namespace iofwd::bb {

ExtentIndex::Map::iterator ExtentIndex::first_touching(std::uint64_t offset, std::uint64_t len) {
  // Candidate predecessors end at or after `offset` (adjacency counts, so a
  // predecessor ending exactly at `offset` touches); successors start at or
  // before the end of the new range.
  auto it = extents_.upper_bound(offset);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end() >= offset) return prev;
  }
  if (it != extents_.end() && it->first <= offset + len) return it;
  return extents_.end();
}

void ExtentIndex::account_remove(const Extent& e) {
  data_bytes_ -= e.len;
  if (e.dirty) dirty_bytes_ -= e.len;
}

Result<ExtentIndex::Insert> ExtentIndex::insert(std::uint64_t offset,
                                                std::span<const std::byte> data,
                                                rt::BufferPool& pool) {
  const std::uint64_t len = data.size();
  if (len == 0) return Insert::in_place;

  auto touch = first_touching(offset, len);

  if (touch == extents_.end()) {
    // Disjoint from everything cached: a fresh extent.
    auto b = pool.try_acquire(len);
    if (!b.is_ok()) return b.status();
    Extent e;
    e.start = offset;
    e.len = len;
    e.buf = std::make_shared<rt::Buffer>(std::move(b).value());
    e.dirty = true;
    std::memcpy(e.buf->data(), data.data(), len);
    data_bytes_ += len;
    dirty_bytes_ += len;
    extents_.emplace(offset, std::move(e));
    return Insert::fresh;
  }

  // In-place fast path: the write lands entirely inside one extent's leased
  // capacity, at or after its start, and touches no other extent. Sequential
  // appends hit this until the size class is full. A pinned buffer
  // (use_count > 1: an in-flight send still reads it) is immutable — fall
  // through to the merge path, which re-leases and leaves the pinned bytes
  // to the pin holder. Pins are only created under the descriptor mutex the
  // caller already holds, so use_count == 1 here cannot race upward; a
  // concurrent release can only make the copy conservative, never unsafe.
  Extent& first = touch->second;
  const bool single = (std::next(touch) == extents_.end() ||
                       std::next(touch)->first > offset + len);
  if (single && first.buf.use_count() == 1 && offset >= first.start &&
      offset + len <= first.start + first.capacity()) {
    std::memcpy(first.buf->data() + (offset - first.start), data.data(), len);
    const std::uint64_t new_len = std::max(first.len, (offset + len) - first.start);
    data_bytes_ += new_len - first.len;
    if (first.dirty) {
      dirty_bytes_ += new_len - first.len;
    } else {
      first.dirty = true;
      dirty_bytes_ += new_len;
    }
    first.len = new_len;
    return Insert::in_place;
  }

  // General case: merge the union of the new range and every touching extent
  // into one freshly leased buffer. Old leases are released only after the
  // new one is secured, so a failed acquire leaves the index unchanged.
  auto last = touch;
  std::uint64_t merged_start = std::min(offset, touch->second.start);
  std::uint64_t merged_end = offset + len;
  for (auto it = touch; it != extents_.end() && it->first <= offset + len; ++it) {
    merged_end = std::max(merged_end, it->second.end());
    last = it;
  }
  const std::uint64_t merged_len = merged_end - merged_start;
  if (merged_len > pool.capacity()) {
    return Status(Errc::message_too_large, "merged extent exceeds burst-buffer pool");
  }
  auto b = pool.try_acquire(merged_len);
  if (!b.is_ok()) return b.status();

  Extent merged;
  merged.start = merged_start;
  merged.len = merged_len;
  merged.buf = std::make_shared<rt::Buffer>(std::move(b).value());
  merged.dirty = true;
  // Gaps between old extents inside the union are zero-filled (they read as
  // file holes until something lands there).
  std::memset(merged.buf->data(), 0, merged_len);
  for (auto it = touch; it != std::next(last); ++it) {
    const Extent& e = it->second;
    std::memcpy(merged.buf->data() + (e.start - merged_start), e.buf->data(), e.len);
    account_remove(e);
  }
  extents_.erase(touch, std::next(last));
  std::memcpy(merged.buf->data() + (offset - merged_start), data.data(), len);
  data_bytes_ += merged_len;
  dirty_bytes_ += merged_len;
  extents_.emplace(merged_start, std::move(merged));
  return Insert::merged;
}

std::vector<ExtentIndex::Segment> ExtentIndex::segments(std::uint64_t offset,
                                                        std::uint64_t len) const {
  std::vector<Segment> out;
  if (len == 0) return out;
  const std::uint64_t range_end = offset + len;
  std::uint64_t pos = offset;

  auto it = extents_.upper_bound(offset);
  if (it != extents_.begin() && std::prev(it)->second.end() > offset) --it;
  for (; it != extents_.end() && it->second.start < range_end && pos < range_end; ++it) {
    const Extent& e = it->second;
    if (e.end() <= pos) continue;
    if (e.start > pos) {
      out.push_back({pos, e.start - pos, nullptr});
      pos = e.start;
    }
    const std::uint64_t seg_end = std::min(e.end(), range_end);
    out.push_back({pos, seg_end - pos, &e});
    pos = seg_end;
  }
  if (pos < range_end) out.push_back({pos, range_end - pos, nullptr});
  return out;
}

Extent* ExtentIndex::largest_dirty() {
  Extent* best = nullptr;
  for (auto& [_, e] : extents_) {
    if (e.dirty && (best == nullptr || e.len > best->len)) best = &e;
  }
  return best;
}

Extent* ExtentIndex::largest_clean() {
  Extent* best = nullptr;
  for (auto& [_, e] : extents_) {
    if (!e.dirty && (best == nullptr || e.len > best->len)) best = &e;
  }
  return best;
}

void ExtentIndex::mark_clean(Extent& e) {
  if (!e.dirty) return;
  e.dirty = false;
  dirty_bytes_ -= e.len;
}

void ExtentIndex::evict(std::uint64_t start) {
  auto it = extents_.find(start);
  if (it == extents_.end()) return;
  account_remove(it->second);
  extents_.erase(it);
}

std::vector<Extent> ExtentIndex::take_overlapping(std::uint64_t offset, std::uint64_t len) {
  std::vector<Extent> out;
  if (len == 0) return out;
  auto it = extents_.upper_bound(offset);
  if (it != extents_.begin() && std::prev(it)->second.end() > offset) --it;
  while (it != extents_.end() && it->second.start < offset + len) {
    account_remove(it->second);
    out.push_back(std::move(it->second));
    it = extents_.erase(it);
  }
  return out;
}

void ExtentIndex::clear() {
  extents_.clear();  // Buffer destructors return the leases
  dirty_bytes_ = 0;
  data_bytes_ = 0;
}

std::uint64_t ExtentIndex::max_end() const {
  return extents_.empty() ? 0 : extents_.rbegin()->second.end();
}

}  // namespace iofwd::bb
