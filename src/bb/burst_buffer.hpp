// Burst-buffer subsystem: an ION-side write-back staging cache.
//
// Sits between the server's execution models and any IoBackend as a
// decorator (like AggregatingBackend) but absorbs what the sequential
// aggregation window cannot: non-contiguous and out-of-order checkpoint
// bursts. Writes land in per-descriptor extent indexes backed by a capped
// rt::BufferPool; a small background flusher pool — decoupled from the
// request workers — drains dirty extents largest-run-first whenever cached
// bytes cross the high watermark, and stops once below the low watermark.
//
// Semantics (mirroring the server's documented async-staging guarantees):
//   * Read-your-writes is served directly from cached extents; reads never
//     force a flush barrier (holes read through to the inner backend).
//   * A flush error is recorded in a proto::DescriptorDb and surfaces as a
//     deferred error on the next operation on that descriptor — which then
//     does NOT execute — exactly once; the failed extent's lease is released
//     either way, so errors never leak pool capacity.
//   * fsync/close drain only that descriptor; destruction drains everything.
//   * A write that cannot lease cache space stalls (measured) until the
//     flushers or an inline flush of the caller free capacity; writes larger
//     than `write_through_bytes` bypass the cache after invalidating any
//     overlapping extents.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "bb/extent_index.hpp"
#include "obs/metrics.hpp"
#include "proto/descriptor_db.hpp"
#include "rt/backend.hpp"
#include "rt/bml.hpp"

namespace iofwd::cluster {
class ClusterBbBudget;
}  // namespace iofwd::cluster

namespace iofwd::bb {

class Journal;

struct BurstBufferConfig {
  std::uint64_t capacity_bytes = 64ull << 20;  // total staging cache (bb_bytes)
  double high_watermark = 0.75;  // fraction of capacity that wakes the flushers
  double low_watermark = 0.50;   // flushers drain until cached bytes fall below
  int flushers = 2;              // background flusher threads
  // Writes at least this large bypass the cache (0 = capacity / 4).
  std::uint64_t write_through_bytes = 0;
  std::uint64_t min_class_bytes = 4096;
  rt::SizeClassPolicy policy = rt::SizeClassPolicy::pow2;
  // Graceful degradation: a writer stalled on a full cache for longer than
  // this falls back to a synchronous write-through instead of waiting
  // indefinitely (0 = unbounded stall, the pre-resilience behavior).
  std::uint32_t max_stall_ms = 100;
  // Shared metric registry for the "bb.*" namespace (null = the backend owns
  // a private one). IonServer passes its own so the server and its cache
  // share one snapshot. See DESIGN.md §11.
  obs::MetricRegistry* registry = nullptr;
  // Cluster-wide staging budget (src/cluster/bb_budget.hpp, DESIGN.md §14).
  // When set, every cached byte is first reserved against this shared
  // accountant — a denied reservation behaves like a full local cache (stall,
  // then degrade to write-through) — and the global high/low watermarks are
  // ORed into this cache's flusher hysteresis. Must outlive the backend.
  cluster::ClusterBbBudget* cluster_budget = nullptr;
  // Crash-consistent staging journal (DESIGN.md §16). Non-empty = every
  // staged extent is appended to a write-ahead log in this directory before
  // the write is acked, and startup replays any surviving log back into the
  // cache. Empty = no journal (the pre-§16 behavior: a crash loses acked
  // unflushed extents).
  std::string journal_dir;
  std::uint64_t journal_segment_bytes = 8ull << 20;
  bool journal_fsync = false;  // fdatasync per append (host-crash durability)
  // Idle flusher tick. Watermark hysteresis alone can strand dirty bytes: a
  // burst crosses the high watermark, the flushers outrun it and drain below
  // low, and the tail of the burst refills to between the watermarks — no
  // crossing, no wake, dirty data parked forever. Every flush_idle_ms an idle
  // flusher re-checks and drains back below the low watermark. Also bounds
  // the journal's live set (DESIGN.md §16). 0 = pure hysteresis (no tick).
  std::uint32_t flush_idle_ms = 100;
};

// Snapshot view over the registry's "bb.*" counters plus instantaneous pool
// state, assembled by stats(). Deprecated as an API surface; retained so
// existing tests and benches read fields unchanged.
struct BurstBufferStats {
  std::uint64_t writes_in = 0;         // write() calls accepted into the cache
  std::uint64_t writes_absorbed = 0;   // coalesced into an existing extent
  std::uint64_t backend_writes = 0;    // write ops issued to the inner backend
  std::uint64_t bytes_in = 0;
  std::uint64_t flushed_bytes = 0;     // dirty bytes written back
  std::uint64_t write_through_bytes = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t read_hit_bytes = 0;    // served from cached extents
  std::uint64_t evictions = 0;         // clean extents dropped for space
  std::uint64_t stall_ns = 0;          // writer time blocked on a full cache
  std::uint64_t stalls = 0;
  std::uint64_t degraded_writes = 0;   // stalled past max_stall_ms: wrote through
  std::uint64_t deferred_errors = 0;   // flush failures recorded for later
  std::uint64_t drains = 0;            // fsync/close/shutdown drain passes
  std::uint64_t pinned_reads = 0;      // zero-copy reads served via read_pinned
  std::uint64_t cached_bytes = 0;      // pool bytes leased right now
  std::uint64_t cached_high_watermark = 0;
  std::uint64_t dirty_bytes = 0;

  [[nodiscard]] double hit_rate() const {
    return read_bytes ? static_cast<double>(read_hit_bytes) / static_cast<double>(read_bytes)
                      : 0.0;
  }
  // Ingested writes per backend write: >1 means bursts were coalesced.
  [[nodiscard]] double coalesce_ratio() const {
    return backend_writes ? static_cast<double>(writes_in) / static_cast<double>(backend_writes)
                          : static_cast<double>(writes_in);
  }
};

// A zero-copy read lease (DESIGN.md §15): `bytes` views staged data inside
// the pinned pool lease. The pin keeps the lease alive — and its pool bytes
// accounted — even if the cache evicts or rewrites the extent meanwhile, so
// an asynchronous reply may writev from `bytes` until the pin is dropped.
struct PinnedRead {
  std::shared_ptr<rt::Buffer> lease;
  std::span<const std::byte> bytes;
};

class BurstBufferBackend final : public rt::IoBackend {
 public:
  BurstBufferBackend(std::unique_ptr<rt::IoBackend> inner, BurstBufferConfig cfg);
  ~BurstBufferBackend() override;  // drains everything, joins the flushers

  Status open(int fd, const std::string& path) override;
  Result<std::uint64_t> write(int fd, std::uint64_t offset,
                              std::span<const std::byte> data) override;
  Result<std::uint64_t> read(int fd, std::uint64_t offset, std::span<std::byte> out) override;
  Status fsync(int fd) override;
  Status close(int fd) override;
  Result<std::uint64_t> size(int fd) override;

  // Zero-copy read fast path: when a single cached extent fully covers
  // [offset, offset+len), returns a pin on its lease and the covering byte
  // view — no memcpy. Misses (nullopt) on holes, partial coverage, unknown
  // descriptors, or a pending deferred error (deliberately NOT consumed
  // here: the caller's fallback to read() surfaces and consumes it, keeping
  // the deferred-error contract on one path). Counted as a full cache hit.
  [[nodiscard]] std::optional<PinnedRead> read_pinned(int fd, std::uint64_t offset,
                                                      std::uint64_t len);

  // Flush this descriptor's dirty extents (kept cached as clean). Errors are
  // recorded as deferred, not returned.
  void drain(int fd);
  // Flush every descriptor (shutdown barrier). Idempotent.
  void drain_all();

  // Simulate a process crash (DESIGN.md §16): stop the flushers, drop every
  // staged extent WITHOUT flushing, release the cluster-budget reservation,
  // and freeze the journal files exactly as they are on disk — they become
  // the crash image the next BurstBufferBackend over the same journal_dir
  // recovers from. After this, the destructor skips its drain. Idempotent.
  void crash_discard();
  [[nodiscard]] bool crashed() const { return crashed_.load(); }
  // The write-ahead journal, or null when journaling is off (tests/bench).
  [[nodiscard]] Journal* journal() const { return journal_.get(); }

  [[nodiscard]] BurstBufferStats stats() const;
  [[nodiscard]] const BurstBufferConfig& config() const { return cfg_; }
  [[nodiscard]] rt::IoBackend& inner() { return *inner_; }
  // The registry backing stats() — owned unless BurstBufferConfig::registry
  // was set.
  [[nodiscard]] obs::MetricRegistry& registry() const { return *reg_; }
  // Mirror instantaneous pool/dirty state into the "bb.*" gauges so a
  // registry snapshot is self-contained (IonServer::metrics() calls this).
  void refresh_gauges() const;

 private:
  struct Desc {
    std::mutex mu;
    ExtentIndex index;
  };

  [[nodiscard]] std::shared_ptr<Desc> find_desc(int fd) const;
  // Deferred-error gate: non-ok means the op must bounce without executing.
  Status consume_deferred(int fd);
  // Record a failed write as a deferred error on fd (db_mu_ taken inside).
  void record_deferred(int fd, const Status& st);

  // Journal append wrappers: no-ops when journaling is off or the journal
  // went bad (an append failure degrades durability, never availability —
  // counted in bb.journal.append_errors and journaling stops).
  void journal_append_open(int fd, const std::string& path);
  void journal_append_stage(int fd, std::uint64_t offset, std::span<const std::byte> data);
  void journal_append_retire(int fd, std::uint64_t start, std::uint64_t len);
  void journal_append_close(int fd);
  // Startup replay: rebuild descs_/ExtentIndex from the surviving log, then
  // compact the log down to exactly the recovered state.
  void recover_from_journal();

  // Cluster-budget accounting (no-ops when cfg_.cluster_budget is null).
  // Reserve before insert; release the data_bytes() delta whenever extents
  // leave the index (flush-evict, clean eviction, write-through overlap
  // consolidation, close).
  [[nodiscard]] bool budget_reserve(std::uint64_t n);
  void budget_release(std::uint64_t n);

  // Flush one extent to the inner backend; desc->mu must be held. The extent
  // is marked clean on success and evicted on failure (error deferred).
  void flush_extent(int fd, Desc& d, Extent& e);
  void drain_locked(int fd, Desc& d);
  // One step of capacity reclaim: flush the globally largest dirty run, or
  // evict the largest clean extent when nothing is dirty. False = no work.
  bool flush_one_step();
  void flusher_loop();
  [[nodiscard]] bool over_high() const;
  [[nodiscard]] bool over_low() const;

  Result<std::uint64_t> write_through(int fd, const std::shared_ptr<Desc>& d,
                                      std::uint64_t offset, std::span<const std::byte> data);

  std::unique_ptr<rt::IoBackend> inner_;
  BurstBufferConfig cfg_;
  rt::BufferPool pool_;

  mutable std::shared_mutex descs_mu_;  // guards the maps, not the Descs
  std::map<int, std::shared_ptr<Desc>> descs_;
  // fd → path bindings we have opened at the inner backend. open() consults
  // this to recognise a replayed open of the same binding when the inner
  // backend bounces "fd already open" (journal recovery re-opens fds before
  // the client's post-restart open-replay arrives).
  std::map<int, std::string> open_paths_;

  std::mutex db_mu_;
  proto::DescriptorDb db_;

  std::mutex flush_mu_;
  std::condition_variable flush_cv_;  // flushers wait here
  std::condition_variable space_cv_;  // stalled writers wait here
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> dirty_total_{0};
  std::vector<std::jthread> flushers_;

  // Registry-backed counters ("bb.*"); replaces the old mutex-guarded
  // BurstBufferStats member.
  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::MetricRegistry* reg_;  // never null
  obs::Counter& c_writes_in_;
  obs::Counter& c_writes_absorbed_;
  obs::Counter& c_backend_writes_;
  obs::Counter& c_bytes_in_;
  obs::Counter& c_flushed_bytes_;
  obs::Counter& c_write_through_bytes_;
  obs::Counter& c_read_bytes_;
  obs::Counter& c_read_hit_bytes_;
  obs::Counter& c_evictions_;
  obs::Counter& c_stall_ns_;
  obs::Counter& c_stalls_;
  obs::Counter& c_degraded_writes_;
  obs::Counter& c_deferred_errors_;
  obs::Counter& c_drains_;
  obs::Counter& c_pinned_reads_;
  obs::Counter& c_budget_denied_;  // cluster-budget reservations refused
  // Write-ahead journal accounting (DESIGN.md §16).
  obs::Counter& c_journal_appends_;        // records appended
  obs::Counter& c_journal_append_errors_;  // failed appends (journaling stops)
  obs::Counter& c_journal_recovered_;      // intact records replayed at startup
  obs::Counter& c_journal_discarded_;      // torn/corrupt tail bytes dropped
  // Instantaneous cache state, refreshed by refresh_gauges().
  obs::Gauge& g_cached_bytes_;
  obs::Gauge& g_cached_high_watermark_;
  obs::Gauge& g_dirty_bytes_;
  obs::Gauge& g_journal_live_bytes_;
  obs::Gauge& g_journal_size_bytes_;

  // Pressure-poke subscription on the cluster budget (0 = not subscribed).
  std::uint64_t budget_token_ = 0;

  std::unique_ptr<Journal> journal_;
  std::atomic<bool> journal_dead_{false};  // append failed or crash froze it
  std::atomic<bool> crashed_{false};
  // Bytes this cache currently holds reserved in the cluster budget; lets
  // crash_discard() return the whole reservation without replaying the
  // per-extent accounting (and clamps a racing release to zero, not below).
  std::atomic<std::uint64_t> budget_held_{0};
};

}  // namespace iofwd::bb
