// Extent index: the per-descriptor interval map of the burst-buffer cache.
//
// Each extent is one contiguous run of staged bytes backed by a single
// rt::BufferPool lease. The pool hands out size-class buffers whose capacity
// usually exceeds the requested length, so strictly sequential appends fill
// the slack in place; writes that overlap or adjoin existing extents —
// including out-of-order and non-contiguous patterns the sequential
// AggregatingBackend window cannot absorb — are merged into one extent by
// re-leasing a buffer for the union range. Newly written bytes always win
// over previously cached ones.
//
// The index is pure bookkeeping and NOT thread-safe: the burst buffer wraps
// every index operation in its per-descriptor mutex. Buffer acquisition is
// non-blocking (`try_acquire`); a would_block result leaves the index
// untouched so the caller can free space (flush/evict) and retry without
// holding pool capacity hostage.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "core/status.hpp"
#include "rt/bml.hpp"

namespace iofwd::bb {

// One cached run. `buf->size()` is the leased size class (capacity); only
// the first `len` bytes are valid data. The lease is held by shared_ptr so a
// pinned read (BurstBufferBackend::read_pinned, DESIGN.md §15) can keep the
// bytes alive across an asynchronous send after the index dropped or
// replaced the extent; insert() treats a pinned buffer (use_count > 1) as
// immutable and re-leases instead of mutating in place.
struct Extent {
  std::uint64_t start = 0;
  std::uint64_t len = 0;
  std::shared_ptr<rt::Buffer> buf;
  bool dirty = false;

  [[nodiscard]] std::uint64_t end() const { return start + len; }
  [[nodiscard]] std::uint64_t capacity() const { return buf ? buf->size() : 0; }
};

class ExtentIndex {
 public:
  enum class Insert { in_place, fresh, merged };

  // A slice of a read range: `ext` points at the covering extent, or is
  // nullptr for a hole the caller must read through to the inner backend.
  struct Segment {
    std::uint64_t offset = 0;
    std::uint64_t len = 0;
    const Extent* ext = nullptr;
  };

  // Stage `data` at `offset`. Errors: would_block (pool cannot serve the
  // lease right now; index unchanged) or message_too_large (the merged run
  // would exceed the pool — caller should write through instead).
  Result<Insert> insert(std::uint64_t offset, std::span<const std::byte> data,
                        rt::BufferPool& pool);

  // Decompose [offset, offset+len) into cached segments and holes, in order.
  [[nodiscard]] std::vector<Segment> segments(std::uint64_t offset, std::uint64_t len) const;

  // Flush/evict selection. Pointers stay valid until the next mutation.
  [[nodiscard]] Extent* largest_dirty();
  [[nodiscard]] Extent* largest_clean();

  void mark_clean(Extent& e);
  // Remove the extent starting at `start` (the lease is released on return).
  void evict(std::uint64_t start);
  // Remove every extent overlapping [offset, offset+len), returning them in
  // offset order (for the write-through path, which flushes dirty ones).
  std::vector<Extent> take_overlapping(std::uint64_t offset, std::uint64_t len);

  void clear();

  [[nodiscard]] std::uint64_t dirty_bytes() const { return dirty_bytes_; }
  [[nodiscard]] std::uint64_t data_bytes() const { return data_bytes_; }
  [[nodiscard]] std::size_t extent_count() const { return extents_.size(); }
  // Highest staged byte + 1 (0 when empty): the cache's view of file size.
  [[nodiscard]] std::uint64_t max_end() const;

 private:
  using Map = std::map<std::uint64_t, Extent>;  // keyed by Extent::start

  // First extent that overlaps or directly adjoins [offset, offset+len).
  [[nodiscard]] Map::iterator first_touching(std::uint64_t offset, std::uint64_t len);
  void account_remove(const Extent& e);

  Map extents_;
  std::uint64_t dirty_bytes_ = 0;
  std::uint64_t data_bytes_ = 0;
};

}  // namespace iofwd::bb
