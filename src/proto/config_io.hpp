// Bridging MachineConfig and proto::ForwarderConfig to the key-value Config
// layer, so every knob can be set from files, command lines, or IOFWD_*
// environment variables — the paper controls the worker count and the BML
// budget exactly that way at job submission (Sec. IV).
//
// Keys mirror the struct fields, e.g.:
//   machine.num_psets, machine.tree_raw_mb_s, machine.ion_cores, ...
//   forwarder.workers, forwarder.bml_bytes, forwarder.policy (fifo|sjf|priority)
#pragma once

#include "bgp/config.hpp"
#include "core/config.hpp"
#include "core/status.hpp"
#include "proto/forwarder.hpp"

namespace iofwd::proto {

// Overlays any present `machine.*` keys onto `base` (absent keys keep the
// base value). Returns invalid_argument if the result fails validation.
Result<bgp::MachineConfig> apply_machine_config(const Config& cfg, bgp::MachineConfig base);

// Overlays `forwarder.*` keys.
Result<ForwarderConfig> apply_forwarder_config(const Config& cfg, ForwarderConfig base);

}  // namespace iofwd::proto
