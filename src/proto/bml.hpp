// Buffer management layer (BML) for asynchronous data staging (Sec. IV).
//
// "To facilitate asynchronous data staging, we designed a custom buffer
//  management layer in ZOID. ... The total memory managed by BML can be
//  controlled by an environment variable during the application launch. In
//  the current implementation, the buffer management allocates buffers that
//  are powers of 2 bytes. ... If there is insufficient memory to stage the
//  data, the I/O operation is blocked until a number of queued I/O
//  operations complete and sufficient memory is available."
//
// This is the simulator-side BML: it accounts capacity (no real memory) and
// blocks acquirers FIFO on a simulated semaphore. The real runtime's BML
// (rt/bml.hpp) hands out actual buffers with identical size-class and
// blocking semantics; both are covered by equivalent test suites.
#pragma once

#include <cstdint>

#include "core/units.hpp"
#include "sim/process.hpp"
#include "sim/sync.hpp"

namespace iofwd::proto {

class Bml {
 public:
  Bml(sim::Engine& eng, std::uint64_t total_bytes, std::uint64_t min_class_bytes = 4096);

  // The power-of-two size class serving a request of `bytes`.
  [[nodiscard]] std::uint64_t size_class(std::uint64_t bytes) const;

  // Reserve a buffer for `bytes` of payload; blocks (FIFO) until the pool
  // has room. Returns the reserved class size, to be passed to release().
  sim::Proc<std::uint64_t> acquire(std::uint64_t bytes);

  // Non-blocking variant: 0 if the pool cannot serve the request now.
  std::uint64_t try_acquire(std::uint64_t bytes);

  void release(std::uint64_t class_bytes);

  [[nodiscard]] std::uint64_t capacity() const { return total_; }
  [[nodiscard]] std::uint64_t in_use() const { return in_use_; }
  [[nodiscard]] std::uint64_t high_watermark() const { return high_watermark_; }
  [[nodiscard]] std::uint64_t blocked_acquires() const { return blocked_; }

 private:
  std::uint64_t total_;
  std::uint64_t min_class_;
  sim::SimSemaphore pool_;
  std::uint64_t in_use_ = 0;
  std::uint64_t high_watermark_ = 0;
  std::uint64_t blocked_ = 0;
};

}  // namespace iofwd::proto
