#include "proto/queue_forwarder.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

namespace iofwd::proto {

QueueForwarder::QueueForwarder(bgp::Machine& machine, bgp::Pset& pset, RunMetrics& metrics,
                               ForwarderConfig cfg, bool async_staging)
    : Forwarder(machine, pset, metrics, std::move(cfg)),
      async_staging_(async_staging),
      bml_(machine.engine(), cfg_.bml_bytes, cfg_.bml_min_class),
      queue_(machine.engine(), cfg_.policy) {
  assert(cfg_.workers >= 1);
  assert(cfg_.multiplex_depth >= 1);
  // "These worker threads are launched at job startup" (Sec. IV).
  for (int w = 0; w < cfg_.workers; ++w) {
    eng_.spawn(worker_loop(w));
  }
}

QueueForwarder::~QueueForwarder() { shutdown(); }

void QueueForwarder::shutdown() {
  if (!queue_.closed()) queue_.close();
}

void QueueForwarder::enqueue(QTask t) {
  ++outstanding_;
  c_ops_enqueued_.inc();
  queue_.push(std::move(t));
  g_max_queue_depth_.update_max(static_cast<std::int64_t>(queue_.size()));
  if (tracer_) tracer_->counter("queue_depth", static_cast<double>(queue_.size()));
}

int QueueForwarder::batch_target() const {
  if (!cfg_.balanced_batches) return cfg_.multiplex_depth;
  // Load-balancing heuristic: split the backlog evenly over the pool so one
  // worker does not vacuum the queue while the others idle.
  const auto backlog = static_cast<int>(queue_.size()) + 1;
  const int share = (backlog + cfg_.workers - 1) / cfg_.workers;
  return std::clamp(share, 1, cfg_.multiplex_depth);
}

sim::Proc<Status> QueueForwarder::write(int cn_id, int fd, std::uint64_t bytes, SinkTarget sink) {
  if (fd >= 0 && !db_.is_open(fd)) co_return Status(Errc::bad_descriptor, "fd not open");
  auto span = trace_span("write", cn_id);

  // Reception is unchanged ZOID: a per-CN thread handles the control
  // exchange and pulls the payload off the tree.
  co_await control_exchange(mc_.ion_wake_thread_ns);

  if (async_staging_ && fd >= 0) {
    // Deferred-error semantics: surface the oldest unreported failure of an
    // earlier async op on this descriptor *before* accepting new work.
    if (Status pending = db_.consume_pending_error(fd); !pending.is_ok()) {
      co_return pending;
    }
  }

  if (async_staging_) {
    // Stage chunk-by-chunk into BML buffers (the BML hands out power-of-two
    // buffers, so a large request is staged through a sequence of them);
    // each staged chunk is enqueued immediately, letting workers deliver the
    // head of the payload while the tail is still crossing the tree. The
    // application is unblocked as soon as the *copy* finishes — "blocks the
    // computation only for the duration of copying data from CN to ION".
    const std::uint64_t chunk = std::max<std::uint64_t>(mc_.forward_chunk_bytes, 1);
    for (std::uint64_t off = 0; off < bytes; off += chunk) {
      const std::uint64_t n = std::min(chunk, bytes - off);
      QTask t;
      t.cn_id = cn_id;
      t.fd = fd;
      t.type = OpType::write;
      t.bytes = n;
      t.sink = sink;
      // Blocks if the pool is exhausted until queued operations complete.
      t.bml_class = co_await bml_.acquire(n);
      g_bml_blocked_.set(static_cast<std::int64_t>(bml_.blocked_acquires()));
      co_await tree_data_in(n);
      if (fd >= 0) {
        auto seq = db_.begin_op(fd);
        assert(seq.has_value());
        t.seq = *seq;
      }
      co_await consume_cpu(static_cast<double>(mc_.ion_enqueue_ns));
      enqueue(std::move(t));
    }
    co_await tree_ack();  // the application is unblocked here
    co_return Status::ok();
  }

  // Synchronous staging (Fig. 7): the ZOID thread receives the payload into
  // ION buffers — streamed chunk-wise like the baselines — and enqueues each
  // buffered chunk as an I/O task; the CN stays blocked until workers have
  // delivered the whole operation and the status came back.
  auto& mem = pset_.ion().memory();
  if (mem.available() < static_cast<std::int64_t>(bytes) || mem.waiting() > 0) {
    c_memory_blocked_.inc();
  }
  co_await mem.acquire(static_cast<std::int64_t>(bytes));

  const std::uint64_t chunk = std::max<std::uint64_t>(mc_.forward_chunk_bytes, 1);
  const auto nchunks = static_cast<std::size_t>((bytes + chunk - 1) / chunk);
  std::vector<std::unique_ptr<sim::SimEvent>> done;
  std::vector<Status> st(nchunks, Status::ok());
  done.reserve(nchunks);
  std::size_t i = 0;
  for (std::uint64_t off = 0; off < bytes; off += chunk, ++i) {
    const std::uint64_t n = std::min(chunk, bytes - off);
    co_await tree_data_in(n);
    done.push_back(std::make_unique<sim::SimEvent>(eng_));
    QTask t;
    t.cn_id = cn_id;
    t.fd = fd;
    t.type = OpType::write;
    t.bytes = n;
    t.sink = sink;
    t.completion = done.back().get();
    t.out_status = &st[i];
    co_await consume_cpu(static_cast<double>(mc_.ion_enqueue_ns));
    enqueue(std::move(t));
  }
  for (auto& ev : done) co_await ev->wait();
  mem.release(static_cast<std::int64_t>(bytes));
  co_await tree_ack();
  for (const auto& s : st) {
    if (!s.is_ok()) co_return s;
  }
  co_return Status::ok();
}

sim::Proc<Status> QueueForwarder::read(int cn_id, int fd, std::uint64_t bytes, SinkTarget source) {
  if (fd >= 0 && !db_.is_open(fd)) co_return Status(Errc::bad_descriptor, "fd not open");
  auto span = trace_span("read", cn_id);

  co_await control_exchange(mc_.ion_wake_thread_ns);
  if (async_staging_ && fd >= 0) {
    if (Status pending = db_.consume_pending_error(fd); !pending.is_ok()) {
      co_return pending;
    }
  }

  // Reads always complete synchronously from the application's perspective
  // (the data must be present before the app can use it), but they still
  // benefit from the scheduled execution: the read is split into chunk
  // tasks, and each fetched chunk streams down the tree while workers fetch
  // the rest.
  auto& mem = pset_.ion().memory();
  if (mem.available() < static_cast<std::int64_t>(bytes) || mem.waiting() > 0) {
    c_memory_blocked_.inc();
  }
  co_await mem.acquire(static_cast<std::int64_t>(bytes));

  const std::uint64_t chunk = std::max<std::uint64_t>(mc_.forward_chunk_bytes, 1);
  const auto nchunks = static_cast<std::size_t>((bytes + chunk - 1) / chunk);
  std::vector<std::unique_ptr<sim::SimEvent>> done;
  std::vector<Status> st(nchunks, Status::ok());
  done.reserve(nchunks);
  std::size_t i = 0;
  for (std::uint64_t off = 0; off < bytes; off += chunk, ++i) {
    const std::uint64_t n = std::min(chunk, bytes - off);
    done.push_back(std::make_unique<sim::SimEvent>(eng_));
    QTask t;
    t.cn_id = cn_id;
    t.fd = fd;
    t.type = OpType::read;
    t.bytes = n;
    t.sink = source;
    t.completion = done[i].get();
    t.out_status = &st[i];
    co_await consume_cpu(static_cast<double>(mc_.ion_enqueue_ns));
    enqueue(std::move(t));
  }
  // Relay each chunk down the tree as soon as its fetch completed.
  i = 0;
  for (std::uint64_t off = 0; off < bytes; off += chunk, ++i) {
    const std::uint64_t n = std::min(chunk, bytes - off);
    co_await done[i]->wait();
    co_await tree_data_out(n);
  }
  mem.release(static_cast<std::int64_t>(bytes));
  for (const auto& s : st) {
    if (!s.is_ok()) co_return s;
  }
  co_return Status::ok();
}

sim::Proc<Status> QueueForwarder::fstat(int cn_id, int fd) {
  // Attribute queries drain in-flight async operations first so the answer
  // reflects everything the application already issued.
  while (db_.in_flight(fd) > 0) {
    auto tick = std::make_shared<sim::SimEvent>(eng_);
    completion_ticks_.push_back(tick);
    co_await tick->wait();
  }
  co_return co_await Forwarder::fstat(cn_id, fd);
}

sim::Proc<Status> QueueForwarder::close(int cn_id, int fd) {
  // Close drains the descriptor first: all in-flight async operations must
  // complete so the final status (including deferred errors) is accurate.
  while (db_.in_flight(fd) > 0) {
    auto tick = std::make_shared<sim::SimEvent>(eng_);
    completion_ticks_.push_back(tick);
    co_await tick->wait();
  }
  co_return co_await Forwarder::close(cn_id, fd);
}

sim::Proc<void> QueueForwarder::worker_loop(int worker_id) {
  while (true) {
    auto first = co_await queue_.pop();
    if (!first) break;  // shutdown

    std::vector<QTask> batch;
    batch.push_back(std::move(*first));
    const int target = batch_target();
    while (static_cast<int>(batch.size()) < target) {
      auto more = queue_.try_pop();
      if (!more) break;
      batch.push_back(std::move(*more));
    }
    c_worker_batches_.inc();
    c_worker_tasks_.add(batch.size());
    auto batch_span = trace_span("batch", 1000 + worker_id);

    // One poll()-based event-loop pass multiplexes the whole batch.
    co_await consume_cpu(static_cast<double>(mc_.ion_poll_pass_ns));

    for (auto& t : batch) {
      // The worker's CPU work (syscall issue + protocol processing) is
      // serialized on this worker thread; the wire time is not — the event
      // loop moves on while the NIC drains.
      co_await consume_cpu(static_cast<double>(mc_.ion_syscall_ns));
      if (t.type == OpType::write) {
        co_await consume_cpu(sink_cpu_cost_ns(t.sink, t.bytes));
      }
      eng_.spawn(finish_task(std::move(t)));
    }
  }
}

sim::Proc<void> QueueForwarder::finish_task(QTask t) {
  co_await sink_wire(t.sink, t.bytes);
  if (t.type == OpType::read) {
    // Protocol processing for the fetched data (charged here — reads are
    // completion-driven rather than worker-serialized; see DESIGN.md).
    co_await consume_cpu(sink_cpu_cost_ns(t.sink, t.bytes));
  }
  Status st = deliver(t.cn_id, t.bytes);

  if (t.bml_class > 0) bml_.release(t.bml_class);
  if (async_staging_ && t.fd >= 0 && t.type == OpType::write) {
    db_.complete_op(t.fd, t.seq, st);
  }
  if (t.out_status != nullptr) *t.out_status = st;
  if (t.completion != nullptr) t.completion->set();

  assert(outstanding_ > 0);
  --outstanding_;
  notify_op_completed();
}

void QueueForwarder::notify_op_completed() {
  auto ticks = std::move(completion_ticks_);
  completion_ticks_.clear();
  for (auto& ev : ticks) ev->set();
}

sim::Proc<void> QueueForwarder::drain() {
  while (outstanding_ > 0) {
    auto tick = std::make_shared<sim::SimEvent>(eng_);
    completion_ticks_.push_back(tick);
    co_await tick->wait();
  }
}

}  // namespace iofwd::proto
