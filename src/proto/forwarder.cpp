#include "proto/forwarder.hpp"

#include "proto/queue_forwarder.hpp"
#include "proto/thread_forwarder.hpp"

namespace iofwd::proto {

std::string to_string(Mechanism m) {
  switch (m) {
    case Mechanism::ciod: return "CIOD";
    case Mechanism::zoid: return "ZOID";
    case Mechanism::zoid_sched: return "ZOID+sched";
    case Mechanism::zoid_sched_async: return "ZOID+sched+async";
  }
  return "?";
}

Forwarder::Forwarder(bgp::Machine& machine, bgp::Pset& pset, RunMetrics& metrics,
                     ForwarderConfig cfg)
    : machine_(machine),
      pset_(pset),
      metrics_(metrics),
      cfg_(std::move(cfg)),
      owned_registry_(cfg_.registry != nullptr ? nullptr
                                               : std::make_unique<obs::MetricRegistry>()),
      reg_(cfg_.registry != nullptr ? cfg_.registry : owned_registry_.get()),
      c_ops_enqueued_(reg_->counter("fwd.ops_enqueued")),
      c_worker_batches_(reg_->counter("fwd.worker_batches")),
      c_worker_tasks_(reg_->counter("fwd.worker_tasks")),
      c_memory_blocked_(reg_->counter("fwd.memory_blocked")),
      g_max_queue_depth_(reg_->gauge("fwd.max_queue_depth")),
      g_bml_blocked_(reg_->gauge("fwd.bml_blocked")),
      eng_(machine.engine()),
      mc_(machine.config()) {
  if (cfg_.trace_ops) tracer_ = std::make_unique<sim::ChromeTracer>(eng_);
}

ForwarderStats Forwarder::stats() const {
  ForwarderStats s;
  s.ops_enqueued = c_ops_enqueued_.value();
  s.max_queue_depth = static_cast<std::uint64_t>(g_max_queue_depth_.value());
  s.worker_batches = c_worker_batches_.value();
  s.worker_tasks = c_worker_tasks_.value();
  s.bml_blocked = static_cast<std::uint64_t>(g_bml_blocked_.value());
  s.memory_blocked = c_memory_blocked_.value();
  return s;
}

sim::Proc<Status> Forwarder::open(int cn_id, int fd) {
  (void)cn_id;
  // Metadata operations are always synchronous (Sec. IV): a plain control
  // round trip plus the syscall on the ION.
  co_await control_exchange(mc_.ion_wake_thread_ns);
  co_await pset_.ion().cpu().consume(static_cast<double>(mc_.ion_syscall_ns));
  co_await tree_ack();
  if (!db_.open_descriptor(fd)) {
    co_return Status(Errc::invalid_argument, "descriptor already open");
  }
  co_return Status::ok();
}

sim::Proc<Status> Forwarder::close(int cn_id, int fd) {
  (void)cn_id;
  co_await control_exchange(mc_.ion_wake_thread_ns);
  co_await pset_.ion().cpu().consume(static_cast<double>(mc_.ion_syscall_ns));
  co_await tree_ack();
  co_return db_.close_descriptor(fd);
}

sim::Proc<Status> Forwarder::fstat(int cn_id, int fd) {
  (void)cn_id;
  if (!db_.is_open(fd)) co_return Status(Errc::bad_descriptor, "fd not open");
  co_await control_exchange(mc_.ion_wake_thread_ns);
  co_await pset_.ion().cpu().consume(static_cast<double>(mc_.ion_syscall_ns));
  co_await tree_ack();
  co_return db_.consume_pending_error(fd);
}

sim::Proc<void> Forwarder::drain() { co_return; }

sim::Proc<void> Forwarder::control_exchange(sim::SimTime wake_cost_ns) {
  // Step 1: function parameters travel CN -> ION.
  co_await pset_.tree().transfer(mc_.control_msg_bytes);
  // The ION dispatches the handler for this CN (thread or proxy process).
  co_await pset_.ion().cpu().consume(static_cast<double>(wake_cost_ns));
  // Step 2 (two-step protocol, Sec. V-A2): the ION signals ready and the CN
  // starts the payload — one more tree round for the go-ahead.
  if (mc_.control_steps > 1) {
    co_await sim::Delay{eng_, mc_.tree_latency_ns};
  }
}

sim::Proc<void> Forwarder::tree_data_in(std::uint64_t bytes) {
  // Three legs progress concurrently: the CN's injection (its own dedicated
  // core, hence a plain delay), the shared tree wire, and the ION-side
  // reception/copy.
  std::vector<sim::Proc<void>> legs;
  legs.push_back(cn_inject(bytes));
  legs.push_back(pset_.tree().transfer(bytes));
  legs.push_back(consume_cpu(static_cast<double>(bytes) * tree_recv_cost_ns_b()));
  co_await sim::when_all(eng_, std::move(legs));
}

double Forwarder::tree_recv_cost_ns_b() const {
  // Reception congestion (see MachineConfig::tree_recv_congestion_per_flow):
  // the more CNs stream concurrently, the dearer each received byte gets.
  const int excess = pset_.tree().active() - mc_.tree_recv_congestion_free;
  double cost = mc_.ion_tree_recv_cost_ns_b;
  if (excess > 0) cost *= 1.0 + mc_.tree_recv_congestion_per_flow * excess;
  return cost;
}

sim::Proc<void> Forwarder::cn_inject(std::uint64_t bytes) {
  const auto ns = static_cast<sim::SimTime>(static_cast<double>(bytes) * mc_.cn_inject_cost_ns_b);
  co_await sim::Delay{eng_, ns};
}

sim::Proc<void> Forwarder::tree_data_out(std::uint64_t bytes) {
  co_await sim::when_all(
      eng_, pset_.tree().transfer(bytes),
      consume_cpu(static_cast<double>(bytes) * mc_.ion_tree_recv_cost_ns_b));
}

sim::Proc<void> Forwarder::tree_ack() { co_await sim::Delay{eng_, mc_.tree_latency_ns}; }

sim::Proc<void> Forwarder::consume_cpu(double cpu_ns) {
  if (cpu_ns > 0) co_await pset_.ion().cpu().consume(cpu_ns);
}

double Forwarder::sink_cpu_cost_ns(const SinkTarget& sink, std::uint64_t bytes) const {
  switch (sink.kind) {
    case SinkTarget::Kind::dev_null:
      return 0.0;  // write(2) to /dev/null copies nothing further
    case SinkTarget::Kind::da_memory:
      return static_cast<double>(bytes) * mc_.ion_tcp_send_cost_ns_b;
    case SinkTarget::Kind::storage:
      // The GPFS client path exercises the same TCP/IP machinery.
      return static_cast<double>(bytes) * mc_.ion_tcp_send_cost_ns_b;
  }
  return 0.0;
}

sim::Proc<void> Forwarder::sink_wire(SinkTarget sink, std::uint64_t bytes) {
  switch (sink.kind) {
    case SinkTarget::Kind::dev_null:
      co_return;
    case SinkTarget::Kind::da_memory: {
      auto& da = machine_.da(sink.da_id);
      // ION NIC, the DA's NIC, and the DA-side protocol processing all
      // progress concurrently with each other.
      std::vector<sim::Proc<void>> legs;
      legs.push_back(pset_.ion().nic().transfer(bytes));
      legs.push_back(da.nic().transfer(bytes));
      legs.push_back(da_cpu(da, static_cast<double>(bytes) * mc_.da_tcp_cost_ns_b));
      co_await sim::when_all(eng_, std::move(legs));
      co_return;
    }
    case SinkTarget::Kind::storage: {
      auto& st = machine_.storage();
      std::vector<sim::Proc<void>> legs;
      legs.push_back(pset_.ion().nic().transfer(bytes));
      legs.push_back(st.serve(st.fsn_for(sink.block), bytes));
      co_await sim::when_all(eng_, std::move(legs));
      co_return;
    }
  }
}

sim::Proc<void> Forwarder::da_cpu(bgp::DaNode& da, double cpu_ns) {
  if (cpu_ns > 0) co_await da.cpu().consume(cpu_ns);
}

Status Forwarder::deliver(int cn_id, std::uint64_t bytes) {
  metrics_.record(bytes, eng_.now());
  if (cfg_.fault_hook) return cfg_.fault_hook(cn_id, bytes);
  return Status::ok();
}

std::unique_ptr<Forwarder> make_forwarder(Mechanism m, bgp::Machine& machine, bgp::Pset& pset,
                                          RunMetrics& metrics, ForwarderConfig cfg) {
  switch (m) {
    case Mechanism::ciod:
      return std::make_unique<ThreadPerClientForwarder>(machine, pset, metrics, std::move(cfg),
                                                        ThreadFlavor::process_per_client);
    case Mechanism::zoid:
      return std::make_unique<ThreadPerClientForwarder>(machine, pset, metrics, std::move(cfg),
                                                        ThreadFlavor::thread_per_client);
    case Mechanism::zoid_sched:
      return std::make_unique<QueueForwarder>(machine, pset, metrics, std::move(cfg),
                                              /*async_staging=*/false);
    case Mechanism::zoid_sched_async:
      return std::make_unique<QueueForwarder>(machine, pset, metrics, std::move(cfg),
                                              /*async_staging=*/true);
  }
  return nullptr;
}

}  // namespace iofwd::proto
