// The baseline mechanisms: one handler per compute node, synchronous I/O.
//
//  * ThreadFlavor::process_per_client models CIOD (Sec. II-B1): a dedicated
//    I/O proxy *process* per CN, fed through a shared-memory region — one
//    extra payload copy and dearer context switches.
//  * ThreadFlavor::thread_per_client models ZOID (Sec. II-B2): a thread per
//    CN inside one daemon — no extra copy, cheap switches. The paper
//    measures ZOID ~2% ahead of CIOD on the collective network for exactly
//    these reasons.
//
// Both block the application until the I/O operation fully completes.
#pragma once

#include "proto/forwarder.hpp"

namespace iofwd::proto {

enum class ThreadFlavor { thread_per_client, process_per_client };

class ThreadPerClientForwarder final : public Forwarder {
 public:
  ThreadPerClientForwarder(bgp::Machine& machine, bgp::Pset& pset, RunMetrics& metrics,
                           ForwarderConfig cfg, ThreadFlavor flavor);

  sim::Proc<Status> write(int cn_id, int fd, std::uint64_t bytes, SinkTarget sink) override;
  sim::Proc<Status> read(int cn_id, int fd, std::uint64_t bytes, SinkTarget source) override;

  [[nodiscard]] ThreadFlavor flavor() const { return flavor_; }

 private:
  sim::Proc<void> send_chunk(SinkTarget sink, std::uint64_t n);
  [[nodiscard]] sim::SimTime wake_cost() const;
  // CIOD's extra copy through the shared-memory region; zero for ZOID.
  [[nodiscard]] double extra_copy_cost(std::uint64_t bytes) const;

  ThreadFlavor flavor_;
};

}  // namespace iofwd::proto
