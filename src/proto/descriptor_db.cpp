#include "proto/descriptor_db.hpp"

#include <algorithm>
#include <cassert>

namespace iofwd::proto {

bool DescriptorDb::open_descriptor(int fd) {
  return table_.try_emplace(fd).second;
}

std::optional<std::uint64_t> DescriptorDb::begin_op(int fd) {
  auto it = table_.find(fd);
  if (it == table_.end()) return std::nullopt;
  auto& e = it->second;
  const std::uint64_t seq = e.next_seq++;
  e.ops.push_back(OpRecord{seq, false, Status::ok()});
  return seq;
}

bool DescriptorDb::complete_op(int fd, std::uint64_t seq, Status status) {
  auto it = table_.find(fd);
  if (it == table_.end()) return false;
  auto& e = it->second;
  auto op = std::find_if(e.ops.begin(), e.ops.end(),
                         [seq](const OpRecord& r) { return r.seq == seq; });
  if (op == e.ops.end() || op->completed) return false;
  op->completed = true;
  op->status = status;
  if (!status.is_ok()) e.pending_errors.push_back(std::move(status));
  return true;
}

Status DescriptorDb::consume_pending_error(int fd) {
  auto it = table_.find(fd);
  if (it == table_.end()) return Status(Errc::bad_descriptor, "unknown descriptor");
  auto& errs = it->second.pending_errors;
  if (errs.empty()) return Status::ok();
  Status first = std::move(errs.front());
  errs.erase(errs.begin());
  return first;
}

bool DescriptorDb::has_pending_error(int fd) const {
  auto it = table_.find(fd);
  return it != table_.end() && !it->second.pending_errors.empty();
}

Status DescriptorDb::close_descriptor(int fd) {
  auto it = table_.find(fd);
  if (it == table_.end()) return Status(Errc::bad_descriptor, "unknown descriptor");
  assert(in_flight(fd) == 0 && "close with operations still in flight; drain first");
  Status result = it->second.pending_errors.empty() ? Status::ok()
                                                    : std::move(it->second.pending_errors.front());
  table_.erase(it);
  return result;
}

std::size_t DescriptorDb::in_flight(int fd) const {
  auto it = table_.find(fd);
  if (it == table_.end()) return 0;
  return static_cast<std::size_t>(
      std::count_if(it->second.ops.begin(), it->second.ops.end(),
                    [](const OpRecord& r) { return !r.completed; }));
}

std::size_t DescriptorDb::completed_count(int fd) const {
  auto it = table_.find(fd);
  if (it == table_.end()) return 0;
  return static_cast<std::size_t>(
      std::count_if(it->second.ops.begin(), it->second.ops.end(),
                    [](const OpRecord& r) { return r.completed; }));
}

void DescriptorDb::trim_completed(int fd, std::size_t keep_last) {
  auto it = table_.find(fd);
  if (it == table_.end()) return;
  auto& ops = it->second.ops;
  // Keep all in-flight records plus the most recent `keep_last` completed.
  std::vector<OpRecord> kept;
  std::size_t completed_total = 0;
  for (const auto& r : ops) completed_total += r.completed ? 1 : 0;
  std::size_t to_drop = completed_total > keep_last ? completed_total - keep_last : 0;
  for (auto& r : ops) {
    if (r.completed && to_drop > 0 && r.status.is_ok()) {
      --to_drop;
      continue;
    }
    kept.push_back(std::move(r));
  }
  ops = std::move(kept);
}

}  // namespace iofwd::proto
