// Shared types for the simulated I/O-forwarding protocols.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace iofwd::proto {

enum class OpType : std::uint8_t { write, read, open, close, fstat };

[[nodiscard]] constexpr bool is_data_op(OpType t) {
  // Only data operations are staged asynchronously; metadata operations
  // (open/close/stat) remain synchronous (paper Sec. IV).
  return t == OpType::write || t == OpType::read;
}

// Where the ION delivers (or fetches) the payload.
struct SinkTarget {
  enum class Kind : std::uint8_t {
    dev_null,   // executed and discarded on the ION (Fig. 4 benchmark)
    da_memory,  // TCP to a data-analysis node's memory (Figs. 6, 9-12)
    storage,    // GPFS file write/read through the FSNs (Fig. 13)
  };
  Kind kind = Kind::dev_null;
  int da_id = 0;             // for da_memory
  std::uint64_t block = 0;   // for storage: file block index (striping key)
  // Data-stream priority, honored by QueuePolicy::priority (paper Sec. IV:
  // "maintain separate queues based on the priority of data").
  int priority = 0;
};

// Aggregate outcome of a benchmark run, accounted at delivery time.
struct RunMetrics {
  std::uint64_t ops_completed = 0;
  std::uint64_t bytes_delivered = 0;
  sim::SimTime first_delivery = 0;
  sim::SimTime last_delivery = 0;

  void record(std::uint64_t bytes, sim::SimTime now) {
    if (ops_completed == 0) first_delivery = now;
    ++ops_completed;
    bytes_delivered += bytes;
    last_delivery = now;
  }

  // Aggregate delivered throughput in MiB/s over the measured window.
  [[nodiscard]] double throughput_mib_s(sim::SimTime start, sim::SimTime end) const {
    const double secs = sim::to_seconds(end - start);
    if (secs <= 0) return 0;
    return static_cast<double>(bytes_delivered) / (1024.0 * 1024.0) / secs;
  }
};

// Execution-side statistics for ablation benches and tests.
struct ForwarderStats {
  std::uint64_t ops_enqueued = 0;
  std::uint64_t max_queue_depth = 0;
  std::uint64_t worker_batches = 0;
  std::uint64_t worker_tasks = 0;
  std::uint64_t bml_blocked = 0;     // staging waits due to exhausted pool
  std::uint64_t memory_blocked = 0;  // sync path waits for ION memory

  [[nodiscard]] double avg_batch() const {
    return worker_batches > 0
               ? static_cast<double>(worker_tasks) / static_cast<double>(worker_batches)
               : 0.0;
  }
};

[[nodiscard]] std::string to_string(OpType t);
[[nodiscard]] std::string to_string(SinkTarget::Kind k);

}  // namespace iofwd::proto
