#include "proto/thread_forwarder.hpp"

#include <algorithm>

namespace iofwd::proto {

ThreadPerClientForwarder::ThreadPerClientForwarder(bgp::Machine& machine, bgp::Pset& pset,
                                                   RunMetrics& metrics, ForwarderConfig cfg,
                                                   ThreadFlavor flavor)
    : Forwarder(machine, pset, metrics, std::move(cfg)), flavor_(flavor) {}

sim::SimTime ThreadPerClientForwarder::wake_cost() const {
  return flavor_ == ThreadFlavor::process_per_client ? mc_.ion_wake_process_ns
                                                     : mc_.ion_wake_thread_ns;
}

double ThreadPerClientForwarder::extra_copy_cost(std::uint64_t bytes) const {
  if (flavor_ != ThreadFlavor::process_per_client) return 0.0;
  return static_cast<double>(bytes) * mc_.ion_memcpy_cost_ns_b;
}

sim::Proc<Status> ThreadPerClientForwarder::write(int cn_id, int fd, std::uint64_t bytes,
                                                  SinkTarget sink) {
  if (fd >= 0 && !db_.is_open(fd)) co_return Status(Errc::bad_descriptor, "fd not open");
  auto span = trace_span("write", cn_id);

  co_await control_exchange(wake_cost());

  // Reserve ION buffer memory for the in-flight payload. "For large
  // transfers, both CIOD and ZOID block the I/O operation till sufficient
  // memory is present on the I/O Node" (Sec. IV).
  auto& mem = pset_.ion().memory();
  if (mem.available() < static_cast<std::int64_t>(bytes) || mem.waiting() > 0) {
    c_memory_blocked_.inc();
  }
  co_await mem.acquire(static_cast<std::int64_t>(bytes));

  // Cut-through streaming: the payload moves through fixed-size internal
  // buffers, so delivery of chunk i overlaps reception of chunk i+1 within
  // this one operation. CIOD's I/O proxies used 256 KiB buffers; without
  // this, synchronous forwarding would sum every stage per operation and
  // could never reach the measured ~66% end-to-end efficiency (Fig. 6).
  co_await consume_cpu(static_cast<double>(mc_.ion_syscall_ns));
  sim::WaitGroup sends(eng_);
  const std::uint64_t chunk = std::max<std::uint64_t>(mc_.forward_chunk_bytes, 1);
  for (std::uint64_t off = 0; off < bytes; off += chunk) {
    const std::uint64_t n = std::min(chunk, bytes - off);
    co_await tree_data_in(n);
    sends.add(1);
    eng_.spawn(sim::detail::run_into_group(send_chunk(sink, n), sends));
  }
  co_await sends.wait();

  mem.release(static_cast<std::int64_t>(bytes));
  const Status st = deliver(cn_id, bytes);
  co_await tree_ack();  // completion + return value back to the CN
  co_return st;
}

sim::Proc<void> ThreadPerClientForwarder::send_chunk(SinkTarget sink, std::uint64_t n) {
  co_await consume_cpu(extra_copy_cost(n));  // CIOD shared-memory hop
  co_await consume_cpu(sink_cpu_cost_ns(sink, n));
  co_await sink_wire(sink, n);
}

sim::Proc<Status> ThreadPerClientForwarder::read(int cn_id, int fd, std::uint64_t bytes,
                                                 SinkTarget source) {
  if (fd >= 0 && !db_.is_open(fd)) co_return Status(Errc::bad_descriptor, "fd not open");
  auto span = trace_span("read", cn_id);

  co_await control_exchange(wake_cost());

  auto& mem = pset_.ion().memory();
  if (mem.available() < static_cast<std::int64_t>(bytes) || mem.waiting() > 0) {
    c_memory_blocked_.inc();
  }
  co_await mem.acquire(static_cast<std::int64_t>(bytes));

  co_await consume_cpu(static_cast<double>(mc_.ion_syscall_ns));
  // Reads are store-and-forward in CIOD/ZOID: the handler issues one
  // blocking read into its buffer and only then streams the result down the
  // tree. (Writes get cut-through for free because the payload arrives in
  // tree packets; reads have no such chunking — this asymmetry is one of
  // the things the work-queue mechanism fixes by splitting the fetch into
  // multiplexed chunk tasks.)
  co_await sink_wire(source, bytes);
  co_await consume_cpu(sink_cpu_cost_ns(source, bytes) + extra_copy_cost(bytes));
  co_await tree_data_out(bytes);

  mem.release(static_cast<std::int64_t>(bytes));
  const Status st = deliver(cn_id, bytes);
  co_return st;
}

}  // namespace iofwd::proto
