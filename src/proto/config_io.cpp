#include "proto/config_io.hpp"

namespace iofwd::proto {

namespace {

void get_int(const Config& c, const char* key, int& out) {
  out = static_cast<int>(c.get_int(key, out));
}
void get_u64(const Config& c, const char* key, std::uint64_t& out) {
  out = static_cast<std::uint64_t>(c.get_int(key, static_cast<std::int64_t>(out)));
}
void get_time(const Config& c, const char* key, sim::SimTime& out) {
  out = c.get_int(key, out);
}
void get_double(const Config& c, const char* key, double& out) {
  out = c.get_double(key, out);
}

}  // namespace

Result<bgp::MachineConfig> apply_machine_config(const Config& cfg, bgp::MachineConfig m) {
  get_int(cfg, "machine.num_psets", m.num_psets);
  get_int(cfg, "machine.cns_per_pset", m.cns_per_pset);
  get_int(cfg, "machine.num_da_nodes", m.num_da_nodes);
  get_int(cfg, "machine.num_fsns", m.num_fsns);
  get_double(cfg, "machine.tree_raw_mb_s", m.tree_raw_mb_s);
  get_double(cfg, "machine.tree_header_bytes", m.tree_header_bytes);
  get_time(cfg, "machine.tree_latency_ns", m.tree_latency_ns);
  get_double(cfg, "machine.tree_contention_per_flow", m.tree_contention_per_flow);
  get_int(cfg, "machine.tree_contention_free_flows", m.tree_contention_free_flows);
  get_int(cfg, "machine.ion_cores", m.ion_cores);
  get_u64(cfg, "machine.ion_memory_bytes", m.ion_memory_bytes);
  get_double(cfg, "machine.ion_share_penalty", m.ion_share_penalty);
  get_double(cfg, "machine.ion_switch_penalty_thread", m.ion_switch_penalty_thread);
  get_double(cfg, "machine.ion_switch_penalty_process", m.ion_switch_penalty_process);
  get_double(cfg, "machine.ion_tcp_send_cost_ns_b", m.ion_tcp_send_cost_ns_b);
  get_double(cfg, "machine.ion_tree_recv_cost_ns_b", m.ion_tree_recv_cost_ns_b);
  get_double(cfg, "machine.ion_memcpy_cost_ns_b", m.ion_memcpy_cost_ns_b);
  get_double(cfg, "machine.cn_inject_cost_ns_b", m.cn_inject_cost_ns_b);
  get_u64(cfg, "machine.forward_chunk_bytes", m.forward_chunk_bytes);
  get_time(cfg, "machine.ion_wake_thread_ns", m.ion_wake_thread_ns);
  get_time(cfg, "machine.ion_wake_process_ns", m.ion_wake_process_ns);
  get_time(cfg, "machine.ion_syscall_ns", m.ion_syscall_ns);
  get_time(cfg, "machine.ion_poll_pass_ns", m.ion_poll_pass_ns);
  get_time(cfg, "machine.ion_enqueue_ns", m.ion_enqueue_ns);
  get_double(cfg, "machine.eth_mib_s", m.eth_mib_s);
  get_time(cfg, "machine.eth_latency_ns", m.eth_latency_ns);
  get_int(cfg, "machine.da_cores", m.da_cores);
  get_double(cfg, "machine.da_tcp_cost_ns_b", m.da_tcp_cost_ns_b);
  get_double(cfg, "machine.fsn_mib_s_each", m.fsn_mib_s_each);
  get_double(cfg, "machine.storage_aggregate_mib_s", m.storage_aggregate_mib_s);
  get_time(cfg, "machine.storage_latency_ns", m.storage_latency_ns);
  get_u64(cfg, "machine.control_msg_bytes", m.control_msg_bytes);
  get_int(cfg, "machine.control_steps", m.control_steps);

  std::string why;
  if (!m.validate(&why)) {
    return Status(Errc::invalid_argument, "machine config: " + why);
  }
  return m;
}

Result<ForwarderConfig> apply_forwarder_config(const Config& cfg, ForwarderConfig f) {
  get_int(cfg, "forwarder.workers", f.workers);
  get_int(cfg, "forwarder.multiplex_depth", f.multiplex_depth);
  f.balanced_batches = cfg.get_bool("forwarder.balanced_batches", f.balanced_batches);
  get_u64(cfg, "forwarder.bml_bytes", f.bml_bytes);
  get_u64(cfg, "forwarder.bml_min_class", f.bml_min_class);

  // Historical values (fifo|sjf|priority) plus the shared rt::SchedPolicy
  // spelling "prio" (DESIGN.md §17); edf/fair are server-only and rejected.
  const std::string policy = cfg.get("forwarder.policy", "fifo");
  if (auto p = parse_queue_policy(policy)) {
    f.policy = *p;
  } else {
    return Status(Errc::invalid_argument, "unknown forwarder.policy: " + policy);
  }

  if (f.workers < 1) return Status(Errc::invalid_argument, "forwarder.workers must be >= 1");
  if (f.multiplex_depth < 1) {
    return Status(Errc::invalid_argument, "forwarder.multiplex_depth must be >= 1");
  }
  if (f.bml_bytes == 0) return Status(Errc::invalid_argument, "forwarder.bml_bytes must be > 0");
  return f;
}

}  // namespace iofwd::proto
