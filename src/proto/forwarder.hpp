// Forwarder: the abstract I/O-forwarding mechanism under study, plus the
// data-path building blocks every mechanism composes.
//
// Four concrete mechanisms reproduce the paper's comparison:
//   * CIOD             — process-per-CN proxies, synchronous (Sec. II-B1)
//   * ZOID             — thread-per-CN, synchronous (Sec. II-B2)
//   * ZOID+sched       — shared FIFO work queue + worker pool (Sec. IV)
//   * ZOID+sched+async — the above plus BML-backed async staging (Sec. IV)
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <memory>
#include <string>

#include "bgp/machine.hpp"
#include "core/status.hpp"
#include "obs/metrics.hpp"
#include "proto/descriptor_db.hpp"
#include "proto/sched_policy.hpp"
#include "proto/types.hpp"
#include "sim/chrome_trace.hpp"
#include "sim/process.hpp"

namespace iofwd::proto {

enum class Mechanism { ciod, zoid, zoid_sched, zoid_sched_async };

[[nodiscard]] std::string to_string(Mechanism m);

struct ForwarderConfig {
  // Worker-pool size for the scheduled mechanisms ("can be controlled via an
  // environment variable during job submission", Sec. IV). The paper finds 4
  // to be the sweet spot on the 4-core ION (Fig. 11).
  int workers = 4;
  // Maximum I/O requests a worker multiplexes through one event-loop pass.
  int multiplex_depth = 8;
  // Balance each worker's batch against the current queue length instead of
  // always grabbing multiplex_depth (the paper's "simple load-balancing
  // heuristic"). Ablation: bench/abl_load_balance.
  bool balanced_batches = true;
  // Work-queue ordering policy (fifo = the paper's design; sjf/priority are
  // the extensions it suggests). See proto/sched_policy.hpp.
  QueuePolicy policy = QueuePolicy::fifo;
  // BML budget for async staging (env-controlled in the paper).
  std::uint64_t bml_bytes = 512ull << 20;
  std::uint64_t bml_min_class = 4096;
  // Fault hook: invoked at delivery; non-ok statuses exercise the deferred
  // error path. Default: everything succeeds.
  std::function<Status(int cn_id, std::uint64_t bytes)> fault_hook;
  // Record per-operation spans and queue-depth counters into a Chrome-trace
  // (chrome://tracing / Perfetto) log, retrievable via Forwarder::tracer().
  bool trace_ops = false;
  // Shared metric registry for the "fwd.*" namespace (null = the forwarder
  // owns a private one). See DESIGN.md §11.
  obs::MetricRegistry* registry = nullptr;
};

class Forwarder {
 public:
  Forwarder(bgp::Machine& machine, bgp::Pset& pset, RunMetrics& metrics, ForwarderConfig cfg);
  virtual ~Forwarder() = default;
  Forwarder(const Forwarder&) = delete;
  Forwarder& operator=(const Forwarder&) = delete;

  // Forwarded POSIX-like calls, as seen from a compute node. Each returns
  // when the *application* may continue: after full completion for the
  // synchronous mechanisms, after staging for async writes.
  virtual sim::Proc<Status> open(int cn_id, int fd);
  virtual sim::Proc<Status> write(int cn_id, int fd, std::uint64_t bytes, SinkTarget sink) = 0;
  virtual sim::Proc<Status> read(int cn_id, int fd, std::uint64_t bytes, SinkTarget source) = 0;
  virtual sim::Proc<Status> close(int cn_id, int fd);
  // Attribute query; always synchronous (Sec. IV). In the async mechanism
  // it first drains the descriptor's in-flight operations.
  virtual sim::Proc<Status> fstat(int cn_id, int fd);

  // Wait until everything accepted so far has been delivered (needed by the
  // async mechanism before stopping a benchmark clock).
  virtual sim::Proc<void> drain();

  // Stop worker processes (no-op for thread-per-CN mechanisms).
  virtual void shutdown() {}

  // Snapshot view assembled from the "fwd.*" registry metrics (deprecated
  // as an API surface, retained for tests/benches; callers binding
  // `const auto&` keep working via lifetime extension).
  [[nodiscard]] ForwarderStats stats() const;
  [[nodiscard]] DescriptorDb& descriptors() { return db_; }
  [[nodiscard]] const sim::ChromeTracer* tracer() const { return tracer_.get(); }
  // The registry backing stats() — owned unless ForwarderConfig::registry
  // was set.
  [[nodiscard]] obs::MetricRegistry& registry() const { return *reg_; }

 protected:
  // --- shared data-path pieces -------------------------------------------
  // Two-step control exchange CN->ION (params, then ready-to-send), plus the
  // handler wake-up on the ION. `wake_cost_ns` differs: thread (ZOID) vs
  // process (CIOD).
  sim::Proc<void> control_exchange(sim::SimTime wake_cost_ns);

  // Payload moving CN->ION over the tree: wire transfer and the handler's
  // per-byte reception/copy cost progress concurrently.
  sim::Proc<void> tree_data_in(std::uint64_t bytes);
  // ION->CN for reads, plus the completion ack for writes.
  sim::Proc<void> tree_data_out(std::uint64_t bytes);
  sim::Proc<void> tree_ack();

  // ION-side CPU cost to push `bytes` into the sink (TCP stack, GPFS client).
  [[nodiscard]] double sink_cpu_cost_ns(const SinkTarget& sink, std::uint64_t bytes) const;

  // The non-CPU remainder of delivery: NIC links, DA node reception,
  // storage service. For reads this models the fetch direction.
  sim::Proc<void> sink_wire(SinkTarget sink, std::uint64_t bytes);

  // Record delivery into the run metrics and apply the fault hook.
  Status deliver(int cn_id, std::uint64_t bytes);

  // Small coroutine adapters (awaitables cannot be passed to when_all
  // directly; these wrap a single resource consumption as a Proc).
  sim::Proc<void> consume_cpu(double cpu_ns);
  sim::Proc<void> da_cpu(bgp::DaNode& da, double cpu_ns);
  sim::Proc<void> cn_inject(std::uint64_t bytes);
  [[nodiscard]] double tree_recv_cost_ns_b() const;

  // Optional per-op span guard (empty when tracing is off).
  [[nodiscard]] std::optional<sim::ChromeTracer::Span> trace_span(const char* name, int tid) {
    if (tracer_) return tracer_->span(name, "op", tid);
    return std::nullopt;
  }

  bgp::Machine& machine_;
  bgp::Pset& pset_;
  RunMetrics& metrics_;
  ForwarderConfig cfg_;
  DescriptorDb db_;
  std::unique_ptr<sim::ChromeTracer> tracer_;

  // Registry-backed metrics ("fwd.*"); replaces the old stats_ member.
  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::MetricRegistry* reg_;  // never null
  obs::Counter& c_ops_enqueued_;
  obs::Counter& c_worker_batches_;
  obs::Counter& c_worker_tasks_;
  obs::Counter& c_memory_blocked_;
  obs::Gauge& g_max_queue_depth_;
  obs::Gauge& g_bml_blocked_;

  sim::Engine& eng_;
  const bgp::MachineConfig& mc_;
};

// Factory covering all four mechanisms.
std::unique_ptr<Forwarder> make_forwarder(Mechanism m, bgp::Machine& machine, bgp::Pset& pset,
                                          RunMetrics& metrics, ForwarderConfig cfg = {});

}  // namespace iofwd::proto
