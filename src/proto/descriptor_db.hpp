// Descriptor database for asynchronous data staging (paper Sec. IV).
//
// "We maintain a database of open I/O descriptors; for each, we keep a list
//  of completed and in-progress operations and their associated status,
//  including errors. We distinguish the various I/O operations performed on
//  a particular descriptor via a counter. Errors are passed to the
//  application on subsequent operations on the descriptor."
//
// This class is pure bookkeeping — no simulator or thread dependencies — so
// the simulated forwarder (proto/) and the real runtime (rt/) share it
// verbatim. Thread safety is the caller's job (the runtime wraps calls in
// its descriptor-table lock; the simulator is single-threaded).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/status.hpp"

namespace iofwd::proto {

class DescriptorDb {
 public:
  struct OpRecord {
    std::uint64_t seq = 0;
    bool completed = false;
    Status status;
  };

  // Register a descriptor (on open). Returns false if it already exists.
  bool open_descriptor(int fd);

  // Begin an asynchronous operation; returns its per-descriptor sequence
  // number, or nullopt for an unknown descriptor.
  std::optional<std::uint64_t> begin_op(int fd);

  // Complete a previously begun operation.
  // Returns false for unknown descriptor/sequence.
  bool complete_op(int fd, std::uint64_t seq, Status status);

  // The deferred-error check performed at the start of every subsequent
  // operation on `fd`: returns (and consumes) the oldest unreported error.
  // ok() if none. Unknown descriptors report bad_descriptor.
  Status consume_pending_error(int fd);

  // Non-consuming peek: true when consume_pending_error(fd) would return an
  // error. Fast-path gates (the burst buffer's pinned reads) use this to
  // miss-and-fall-back so the error still surfaces — and is consumed — on
  // the regular path.
  [[nodiscard]] bool has_pending_error(int fd) const;

  // Close: returns the first pending error (like consume, but also requires
  // all operations to have completed — callers drain first). Removes the
  // descriptor. in_flight(fd) must be 0.
  Status close_descriptor(int fd);

  [[nodiscard]] bool is_open(int fd) const { return table_.contains(fd); }
  [[nodiscard]] std::size_t in_flight(int fd) const;
  [[nodiscard]] std::size_t completed_count(int fd) const;
  [[nodiscard]] std::size_t open_count() const { return table_.size(); }

  // Drop completed-without-error records older than `keep_last` to bound
  // memory (the paper keeps the full list; we expose trimming as a knob).
  void trim_completed(int fd, std::size_t keep_last);

 private:
  struct Entry {
    std::uint64_t next_seq = 0;
    std::vector<OpRecord> ops;           // in seq order
    std::vector<Status> pending_errors;  // completed-with-error, unreported
  };
  std::unordered_map<int, Entry> table_;
};

}  // namespace iofwd::proto
