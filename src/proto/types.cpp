#include "proto/types.hpp"

#include "proto/sched_policy.hpp"

namespace iofwd::proto {

std::string to_string(OpType t) {
  switch (t) {
    case OpType::write: return "write";
    case OpType::read: return "read";
    case OpType::open: return "open";
    case OpType::close: return "close";
    case OpType::fstat: return "fstat";
  }
  return "?";
}

std::string to_string(SinkTarget::Kind k) {
  switch (k) {
    case SinkTarget::Kind::dev_null: return "dev_null";
    case SinkTarget::Kind::da_memory: return "da_memory";
    case SinkTarget::Kind::storage: return "storage";
  }
  return "?";
}

std::string to_string(QueuePolicy p) {
  switch (p) {
    case QueuePolicy::fifo: return "fifo";
    case QueuePolicy::sjf: return "sjf";
    case QueuePolicy::priority: return "priority";
  }
  return "?";
}

}  // namespace iofwd::proto
