#include "proto/bml.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace iofwd::proto {

Bml::Bml(sim::Engine& eng, std::uint64_t total_bytes, std::uint64_t min_class_bytes)
    : total_(total_bytes),
      min_class_(next_pow2(std::max<std::uint64_t>(min_class_bytes, 1))),
      pool_(eng, static_cast<std::int64_t>(total_bytes)) {
  if (total_bytes == 0) throw std::invalid_argument("BML capacity must be positive");
}

std::uint64_t Bml::size_class(std::uint64_t bytes) const {
  return std::max(min_class_, next_pow2(bytes));
}

sim::Proc<std::uint64_t> Bml::acquire(std::uint64_t bytes) {
  const std::uint64_t cls = size_class(bytes);
  assert(cls <= total_ && "request exceeds the whole BML pool");
  if (pool_.available() < static_cast<std::int64_t>(cls) || pool_.waiting() > 0) ++blocked_;
  co_await pool_.acquire(static_cast<std::int64_t>(cls));
  in_use_ += cls;
  high_watermark_ = std::max(high_watermark_, in_use_);
  co_return cls;
}

std::uint64_t Bml::try_acquire(std::uint64_t bytes) {
  const std::uint64_t cls = size_class(bytes);
  if (cls > total_ || !pool_.try_acquire(static_cast<std::int64_t>(cls))) return 0;
  in_use_ += cls;
  high_watermark_ = std::max(high_watermark_, in_use_);
  return cls;
}

void Bml::release(std::uint64_t class_bytes) {
  assert(class_bytes <= in_use_ && "releasing more than is in use");
  in_use_ -= class_bytes;
  pool_.release(static_cast<std::int64_t>(class_bytes));
}

}  // namespace iofwd::proto
