// Work-queue scheduling policies.
//
// The paper uses a plain shared FIFO and notes: "One could easily augment
// this to take the data sizes into account as well as maintain separate
// queues based on the priority of data" (Sec. IV). This header implements
// exactly those extensions for the simulated forwarder; they are evaluated
// by bench/abl_sched_policy.
//
//   * fifo      — the paper's baseline: strict arrival order.
//   * sjf       — shortest-job-first by payload size: small (latency-
//                 sensitive) operations overtake bulk data.
//   * priority  — two-level: higher `SinkTarget::priority` first, FIFO
//                 within a level (the "separate queues" formulation).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "sim/sync.hpp"

namespace iofwd::proto {

enum class QueuePolicy { fifo, sjf, priority };

[[nodiscard]] std::string to_string(QueuePolicy p);

// A policy-ordered task queue for simulated workers. Tokens flow through a
// SimChannel (giving blocking receive and close semantics); the tasks
// themselves sit in a policy-ordered store.
template <typename Task>
class SimTaskQueue {
 public:
  SimTaskQueue(sim::Engine& eng, QueuePolicy policy)
      : policy_(policy), tokens_(eng) {}

  void push(Task t) {
    tasks_.push_back(std::move(t));
    tokens_.send(0);
  }

  // Blocks for a task; nullopt once closed and drained.
  sim::Proc<std::optional<Task>> pop() {
    auto token = co_await tokens_.recv();
    if (!token) co_return std::nullopt;
    co_return take_best();
  }

  std::optional<Task> try_pop() {
    auto token = tokens_.try_recv();
    if (!token) return std::nullopt;
    return take_best();
  }

  void close() { tokens_.close(); }
  [[nodiscard]] bool closed() const { return tokens_.closed(); }
  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] QueuePolicy policy() const { return policy_; }

 private:
  Task take_best() {
    assert(!tasks_.empty());
    auto it = tasks_.begin();
    switch (policy_) {
      case QueuePolicy::fifo:
        break;
      case QueuePolicy::sjf:
        it = std::min_element(tasks_.begin(), tasks_.end(),
                              [](const Task& a, const Task& b) { return a.bytes < b.bytes; });
        break;
      case QueuePolicy::priority:
        // Highest priority wins; FIFO within a level (stable: first match).
        it = std::max_element(tasks_.begin(), tasks_.end(),
                              [](const Task& a, const Task& b) {
                                return a.sink.priority < b.sink.priority;
                              });
        break;
    }
    Task t = std::move(*it);
    tasks_.erase(it);
    return t;
  }

  QueuePolicy policy_;
  std::deque<Task> tasks_;
  sim::SimChannel<int> tokens_;
};

}  // namespace iofwd::proto
