// Work-queue scheduling policies.
//
// The paper uses a plain shared FIFO and notes: "One could easily augment
// this to take the data sizes into account as well as maintain separate
// queues based on the priority of data" (Sec. IV). This header implements
// exactly those extensions for the simulated forwarder; they are evaluated
// by bench/abl_sched_policy.
//
//   * fifo      — the paper's baseline: strict arrival order.
//   * sjf       — shortest-job-first by payload size: small (latency-
//                 sensitive) operations overtake bulk data.
//   * priority  — two-level: higher `SinkTarget::priority` first, FIFO
//                 within a level (the "separate queues" formulation).
//
// DEPRECATED as a standalone policy surface (DESIGN.md §17): the real
// server's dispatch policies live in rt/scheduler.hpp (rt::SchedPolicy:
// fifo | prio | edf | fair) and share their names with this enum through
// parse_queue_policy() below — "prio" parses as `priority` here, "priority"
// parses as `prio` there. This header remains only for the simulator
// (SimTaskQueue, bench/abl_sched_policy) and the `forwarder.policy` config
// key, whose historical values (fifo|sjf|priority) stay accepted; new code
// should use rt::SchedPolicy.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "rt/scheduler.hpp"
#include "sim/sync.hpp"

namespace iofwd::proto {

enum class QueuePolicy { fifo, sjf, priority };

[[nodiscard]] std::string to_string(QueuePolicy p);

// Parses a simulator policy name using the shared vocabulary: the
// rt::SchedPolicy spellings map onto their simulator counterparts where one
// exists (fifo, prio/priority), plus the simulator-only "sjf". edf/fair
// have no simulated equivalent and parse as nullopt here.
[[nodiscard]] inline std::optional<QueuePolicy> parse_queue_policy(const std::string& s) {
  if (s == "sjf") return QueuePolicy::sjf;
  if (auto p = rt::parse_sched_policy(s)) {
    switch (*p) {
      case rt::SchedPolicy::fifo: return QueuePolicy::fifo;
      case rt::SchedPolicy::prio: return QueuePolicy::priority;
      case rt::SchedPolicy::edf:
      case rt::SchedPolicy::fair: break;
    }
  }
  return std::nullopt;
}

// A policy-ordered task queue for simulated workers. Tokens flow through a
// SimChannel (giving blocking receive and close semantics); the tasks
// themselves sit in a policy-ordered store.
template <typename Task>
class SimTaskQueue {
 public:
  SimTaskQueue(sim::Engine& eng, QueuePolicy policy)
      : policy_(policy), tokens_(eng) {}

  void push(Task t) {
    tasks_.push_back(std::move(t));
    tokens_.send(0);
  }

  // Blocks for a task; nullopt once closed and drained.
  sim::Proc<std::optional<Task>> pop() {
    auto token = co_await tokens_.recv();
    if (!token) co_return std::nullopt;
    co_return take_best();
  }

  std::optional<Task> try_pop() {
    auto token = tokens_.try_recv();
    if (!token) return std::nullopt;
    return take_best();
  }

  void close() { tokens_.close(); }
  [[nodiscard]] bool closed() const { return tokens_.closed(); }
  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] QueuePolicy policy() const { return policy_; }

 private:
  Task take_best() {
    assert(!tasks_.empty());
    auto it = tasks_.begin();
    switch (policy_) {
      case QueuePolicy::fifo:
        break;
      case QueuePolicy::sjf:
        it = std::min_element(tasks_.begin(), tasks_.end(),
                              [](const Task& a, const Task& b) { return a.bytes < b.bytes; });
        break;
      case QueuePolicy::priority:
        // Highest priority wins; FIFO within a level (stable: first match).
        it = std::max_element(tasks_.begin(), tasks_.end(),
                              [](const Task& a, const Task& b) {
                                return a.sink.priority < b.sink.priority;
                              });
        break;
    }
    Task t = std::move(*it);
    tasks_.erase(it);
    return t;
  }

  QueuePolicy policy_;
  std::deque<Task> tasks_;
  sim::SimChannel<int> tokens_;
};

}  // namespace iofwd::proto
