// The paper's contribution: I/O scheduling with a shared FIFO work queue and
// a worker-thread pool, optionally combined with asynchronous data staging
// through the BML (Sec. IV, Figs. 7-8).
//
// Reception stays thread-per-CN (ZOID threads); instead of *executing* the
// I/O, the ZOID thread enqueues an I/O task. A small pool of worker threads
// (launched at startup, size via configuration) drains the queue, each
// worker multiplexing several tasks through one poll-based event-loop pass.
//
// Synchronous staging (async_staging = false): the application blocks until
// the worker completed the I/O — this is the "I/O scheduling" mechanism.
// Asynchronous staging (async_staging = true): data ops return as soon as
// the payload is copied into a BML buffer; completion status is recorded in
// the descriptor database and surfaced on subsequent operations.
#pragma once

#include <memory>
#include <vector>

#include "proto/bml.hpp"
#include "proto/forwarder.hpp"
#include "proto/sched_policy.hpp"

namespace iofwd::proto {

class QueueForwarder final : public Forwarder {
 public:
  QueueForwarder(bgp::Machine& machine, bgp::Pset& pset, RunMetrics& metrics, ForwarderConfig cfg,
                 bool async_staging);
  ~QueueForwarder() override;

  sim::Proc<Status> write(int cn_id, int fd, std::uint64_t bytes, SinkTarget sink) override;
  sim::Proc<Status> read(int cn_id, int fd, std::uint64_t bytes, SinkTarget source) override;
  sim::Proc<Status> close(int cn_id, int fd) override;
  sim::Proc<Status> fstat(int cn_id, int fd) override;

  sim::Proc<void> drain() override;
  void shutdown() override;

  [[nodiscard]] bool async_staging() const { return async_staging_; }
  [[nodiscard]] const Bml& bml() const { return bml_; }

 private:
  struct QTask {
    int cn_id = 0;
    int fd = -1;
    std::uint64_t seq = 0;  // descriptor-DB sequence (async data ops)
    OpType type = OpType::write;
    std::uint64_t bytes = 0;
    SinkTarget sink;
    std::uint64_t bml_class = 0;       // BML bytes to return (async)
    sim::SimEvent* completion = nullptr;  // set on delivery (sync staging)
    Status* out_status = nullptr;         // where to report (sync staging)
  };

  sim::Proc<void> worker_loop(int worker_id);
  sim::Proc<void> finish_task(QTask t);
  void enqueue(QTask t);
  void notify_op_completed();
  [[nodiscard]] int batch_target() const;

  bool async_staging_;
  Bml bml_;
  SimTaskQueue<QTask> queue_;
  std::uint64_t outstanding_ = 0;
  std::vector<std::shared_ptr<sim::SimEvent>> completion_ticks_;
};

}  // namespace iofwd::proto
