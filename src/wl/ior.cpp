#include "wl/ior.hpp"

#include <memory>
#include <vector>

#include "bgp/machine.hpp"
#include "sim/sync.hpp"

namespace iofwd::wl {

const char* to_string(IorPattern p) {
  switch (p) {
    case IorPattern::sequential: return "sequential";
    case IorPattern::strided: return "strided";
    case IorPattern::random: return "random";
  }
  return "?";
}

const char* to_string(IorDirection d) {
  switch (d) {
    case IorDirection::write_only: return "write";
    case IorDirection::read_only: return "read";
    case IorDirection::write_then_read: return "write+read";
  }
  return "?";
}

namespace {

struct Phase {
  std::uint64_t bytes = 0;
  sim::SimTime start = 0;
  sim::SimTime end = 0;
};

std::uint64_t offset_for(const IorParams& p, int global_rank, int seg, Rng& rng) {
  const std::uint64_t t = p.transfer_bytes;
  const auto nprocs = static_cast<std::uint64_t>(p.cns);
  const auto s = static_cast<std::uint64_t>(seg);
  const auto r = static_cast<std::uint64_t>(global_rank);
  if (!p.shared_file) {
    // Per-process file: plain sequential region regardless of pattern name;
    // `random` still permutes within the region.
    if (p.pattern == IorPattern::random) {
      return rng.below(static_cast<std::uint64_t>(p.segments)) * t;
    }
    return s * t;
  }
  switch (p.pattern) {
    case IorPattern::sequential:
      // Each rank owns a contiguous slab; walks it in order.
      return (r * static_cast<std::uint64_t>(p.segments) + s) * t;
    case IorPattern::strided:
      // Segment-major interleave: transfers of all ranks for segment s are
      // adjacent (classic IOR shared-file layout).
      return (s * nprocs + r) * t;
    case IorPattern::random:
      return rng.below(nprocs * static_cast<std::uint64_t>(p.segments)) * t;
  }
  return 0;
}

sim::Proc<void> ior_proc(bgp::Machine& m, proto::Forwarder& fwd, int rank, int global_rank,
                         const IorParams& p, bool reading, Phase& phase, Rng rng) {
  proto::SinkTarget st;
  st.kind = proto::SinkTarget::Kind::storage;
  for (int seg = 0; seg < p.segments; ++seg) {
    const std::uint64_t off = offset_for(p, global_rank, seg, rng);
    st.block = off / p.stripe_bytes +
               (p.shared_file ? 0 : static_cast<std::uint64_t>(global_rank) * 1024);
    if (reading) {
      (void)co_await fwd.read(rank, -1, p.transfer_bytes, st);
    } else {
      (void)co_await fwd.write(rank, -1, p.transfer_bytes, st);
    }
    phase.bytes += p.transfer_bytes;
  }
  (void)m;
}

sim::Proc<void> run_phase(bgp::Machine& m, std::vector<std::unique_ptr<proto::Forwarder>>& fwds,
                          const IorParams& p, bool reading, Phase& phase) {
  auto& eng = m.engine();
  phase.start = eng.now();
  Rng root(p.seed + (reading ? 1 : 0));
  std::vector<sim::Proc<void>> procs;
  const int cns_per_pset = m.config().cns_per_pset;
  for (int g = 0; g < p.cns; ++g) {
    procs.push_back(ior_proc(m, *fwds[static_cast<std::size_t>(g / cns_per_pset)],
                             g % cns_per_pset, g, p, reading, phase, root.fork()));
  }
  co_await sim::when_all(eng, std::move(procs));
  for (auto& f : fwds) co_await f->drain();
  phase.end = eng.now();
}

sim::Proc<void> run_phases(bgp::Machine& m, std::vector<std::unique_ptr<proto::Forwarder>>& fwds,
                           const IorParams& p, Phase& wr, Phase& rd) {
  if (p.direction != IorDirection::read_only) {
    co_await run_phase(m, fwds, p, /*reading=*/false, wr);
  }
  if (p.direction != IorDirection::write_only) {
    co_await run_phase(m, fwds, p, /*reading=*/true, rd);
  }
  for (auto& f : fwds) f->shutdown();
}

double rate_mib_s(const Phase& ph) {
  const double secs = sim::to_seconds(ph.end - ph.start);
  return secs > 0 ? static_cast<double>(ph.bytes) / (1024.0 * 1024.0) / secs : 0.0;
}

}  // namespace

IorResult run_ior(proto::Mechanism m, const bgp::MachineConfig& machine_cfg,
                  const proto::ForwarderConfig& fwd_cfg, const IorParams& params) {
  auto cfg = machine_cfg;
  cfg.num_psets = (params.cns + cfg.cns_per_pset - 1) / cfg.cns_per_pset;

  sim::Engine eng;
  bgp::Machine machine(eng, cfg);
  proto::RunMetrics metrics;
  std::vector<std::unique_ptr<proto::Forwarder>> fwds;
  for (int p = 0; p < machine.num_psets(); ++p) {
    fwds.push_back(proto::make_forwarder(m, machine, machine.pset(p), metrics, fwd_cfg));
  }

  Phase wr, rd;
  eng.spawn(run_phases(machine, fwds, params, wr, rd));
  eng.run();

  IorResult r;
  r.bytes_written = wr.bytes;
  r.bytes_read = rd.bytes;
  r.write_mib_s = rate_mib_s(wr);
  r.read_mib_s = rate_mib_s(rd);
  r.elapsed_s = sim::to_seconds(eng.now());
  return r;
}

}  // namespace iofwd::wl
