// Two-phase collective I/O over the forwarding layer.
//
// The classic ROMIO optimization, here interacting with the paper's
// forwarding mechanisms: every CN holds many small strided pieces of a
// shared file (a block-cyclic matrix, say). Two ways to write it:
//
//   * independent — each CN forwards each small piece directly: many small
//     forwarded operations, each paying the two-step control exchange the
//     paper identifies as the small-message bottleneck (Sec. V-A2);
//   * collective  — phase 1 redistributes the pieces over the 3-D torus to
//     aggregator CNs so each holds one large contiguous range; phase 2 the
//     aggregators forward few large operations.
//
// The experiment (bench/ext_collective) shows how much of collective I/O's
// advantage evaporates once the forwarding layer itself handles small
// operations well (work-queue multiplexing), and how much remains.
#pragma once

#include <cstdint>

#include "bgp/config.hpp"
#include "proto/forwarder.hpp"

namespace iofwd::wl {

enum class IoMode { independent, collective };

struct CollectiveParams {
  int cns = 64;
  int aggregators = 8;           // phase-2 writers (collective mode)
  std::uint64_t piece_bytes = 64ull << 10;  // strided piece per CN per round
  int pieces_per_cn = 32;        // rounds
  std::uint64_t stripe_bytes = 4ull << 20;

  [[nodiscard]] std::uint64_t total_bytes() const {
    return static_cast<std::uint64_t>(cns) * static_cast<std::uint64_t>(pieces_per_cn) *
           piece_bytes;
  }
};

struct CollectiveResult {
  double elapsed_s = 0;
  double throughput_mib_s = 0;
  std::uint64_t forwarded_ops = 0;  // operations that hit the forwarding layer
  double exchange_s = 0;            // time spent in the torus redistribution
};

CollectiveResult run_collective(proto::Mechanism m, IoMode mode,
                                const bgp::MachineConfig& machine_cfg,
                                const proto::ForwarderConfig& fwd_cfg,
                                const CollectiveParams& params);

[[nodiscard]] const char* to_string(IoMode m);

}  // namespace iofwd::wl
