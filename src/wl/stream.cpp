#include "wl/stream.hpp"

#include <memory>
#include <vector>

#include "bgp/machine.hpp"
#include "sim/sync.hpp"

namespace iofwd::wl {

namespace {

sim::Proc<void> cn_app(proto::Forwarder& fwd, int cn_id, proto::SinkTarget sink,
                       std::uint64_t bytes, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    (void)co_await fwd.write(cn_id, /*fd=*/-1, bytes, sink);
  }
}

sim::Proc<void> run_all(bgp::Machine& machine,
                        std::vector<std::unique_ptr<proto::Forwarder>>& fwds,
                        const StreamParams& params) {
  auto& eng = machine.engine();
  std::vector<sim::Proc<void>> apps;
  for (int p = 0; p < machine.num_psets(); ++p) {
    for (int c = 0; c < params.cns_per_pset; ++c) {
      proto::SinkTarget sink;
      sink.kind = params.sink;
      if (sink.kind == proto::SinkTarget::Kind::da_memory) {
        const int global_cn = p * machine.config().cns_per_pset + c;
        sink.da_id = params.distribute_das ? global_cn % machine.num_das() : 0;
      }
      apps.push_back(cn_app(*fwds[static_cast<std::size_t>(p)], c, sink, params.message_bytes,
                            params.iterations));
    }
  }
  co_await sim::when_all(eng, std::move(apps));
  // Async staging: wait for the last queued operations to land.
  for (auto& f : fwds) co_await f->drain();
  for (auto& f : fwds) f->shutdown();
}

}  // namespace

StreamResult run_stream(proto::Mechanism m, const bgp::MachineConfig& machine_cfg,
                        const proto::ForwarderConfig& fwd_cfg, const StreamParams& params) {
  sim::Engine eng;
  bgp::Machine machine(eng, machine_cfg);

  proto::RunMetrics metrics;
  std::vector<std::unique_ptr<proto::Forwarder>> fwds;
  fwds.reserve(static_cast<std::size_t>(machine.num_psets()));
  for (int p = 0; p < machine.num_psets(); ++p) {
    auto fc = fwd_cfg;
    if (!params.trace_path.empty() && p == 0) fc.trace_ops = true;
    fwds.push_back(proto::make_forwarder(m, machine, machine.pset(p), metrics, fc));
  }

  eng.spawn(run_all(machine, fwds, params));
  eng.run();

  if (!params.trace_path.empty() && fwds[0]->tracer() != nullptr) {
    (void)fwds[0]->tracer()->write_json(params.trace_path);
  }

  StreamResult r;
  r.metrics = metrics;
  r.elapsed = metrics.last_delivery;
  r.throughput_mib_s = metrics.throughput_mib_s(0, metrics.last_delivery);
  for (auto& f : fwds) {
    const auto& s = f->stats();
    r.stats.ops_enqueued += s.ops_enqueued;
    r.stats.max_queue_depth = std::max(r.stats.max_queue_depth, s.max_queue_depth);
    r.stats.worker_batches += s.worker_batches;
    r.stats.worker_tasks += s.worker_tasks;
    r.stats.bml_blocked += s.bml_blocked;
    r.stats.memory_blocked += s.memory_blocked;
  }
  r.sim_events = eng.events_processed();
  return r;
}

double max_of_runs(proto::Mechanism m, const bgp::MachineConfig& machine_cfg,
                   const proto::ForwarderConfig& fwd_cfg, const StreamParams& params, int runs) {
  double best = 0;
  for (int i = 0; i < runs; ++i) {
    best = std::max(best, run_stream(m, machine_cfg, fwd_cfg, params).throughput_mib_s);
  }
  return best;
}

}  // namespace iofwd::wl
