#include "wl/madbench.hpp"

#include <cassert>
#include <memory>
#include <vector>

#include "bgp/machine.hpp"
#include "sim/sync.hpp"

namespace iofwd::wl {

namespace {

struct Shared {
  std::unique_ptr<sim::SimSemaphore> read_gate;
  std::unique_ptr<sim::SimSemaphore> write_gate;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

// One MADbench2 process: S (writes), W (read+write interleaved), C (reads).
// The shared file is striped: block index derives from the byte offset so
// successive ops hit successive FSNs.
sim::Proc<void> mad_process(bgp::Machine& machine, proto::Forwarder& fwd, int rank,
                            int global_rank, const MadbenchParams& p, Shared& sh) {
  auto& eng = machine.engine();
  const std::uint64_t op_bytes = p.bytes_per_op();
  const int nprocs = p.nodes;
  const int fd = 100 + rank;
  (void)co_await fwd.open(rank, fd);

  const int s_end = p.n_matrices / 4;          // S phase: writes
  const int w_end = s_end + p.n_matrices / 2;  // W phase: read/write alternating

  for (int m = 0; m < p.n_matrices; ++m) {
    if (p.busywork_ns_per_op > 0) co_await sim::Delay{eng, p.busywork_ns_per_op};

    const bool is_read = (m >= w_end) || (m >= s_end && (m - s_end) % 2 == 1);
    // Contiguous shared-file layout: matrix m, this rank's slab.
    const std::uint64_t offset =
        (static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(nprocs) +
         static_cast<std::uint64_t>(global_rank)) *
        op_bytes;
    proto::SinkTarget st;
    st.kind = proto::SinkTarget::Kind::storage;
    st.block = offset / p.stripe_bytes;

    if (is_read) {
      co_await sh.read_gate->acquire();
      (void)co_await fwd.read(rank, fd, op_bytes, st);
      sh.read_gate->release();
      ++sh.reads;
    } else {
      co_await sh.write_gate->acquire();
      (void)co_await fwd.write(rank, fd, op_bytes, st);
      sh.write_gate->release();
      ++sh.writes;
    }
  }
  (void)co_await fwd.close(rank, fd);
}

sim::Proc<void> run_all(bgp::Machine& machine,
                        std::vector<std::unique_ptr<proto::Forwarder>>& fwds,
                        const MadbenchParams& p, Shared& sh) {
  auto& eng = machine.engine();
  std::vector<sim::Proc<void>> procs;
  const int cns_per_pset = machine.config().cns_per_pset;
  for (int g = 0; g < p.nodes; ++g) {
    const int pset = g / cns_per_pset;
    const int rank = g % cns_per_pset;
    procs.push_back(
        mad_process(machine, *fwds[static_cast<std::size_t>(pset)], rank, g, p, sh));
  }
  co_await sim::when_all(eng, std::move(procs));
  for (auto& f : fwds) co_await f->drain();
  for (auto& f : fwds) f->shutdown();
}

}  // namespace

MadbenchResult run_madbench(proto::Mechanism m, bgp::MachineConfig machine_cfg,
                            const proto::ForwarderConfig& fwd_cfg, const MadbenchParams& params) {
  assert(params.nodes % machine_cfg.cns_per_pset == 0 &&
         "nodes must be a whole number of psets");
  machine_cfg.num_psets = params.nodes / machine_cfg.cns_per_pset;

  sim::Engine eng;
  bgp::Machine machine(eng, machine_cfg);

  Shared sh;
  const int readers = std::max(1, params.nodes / std::max(1, params.rmod));
  const int writers = std::max(1, params.nodes / std::max(1, params.wmod));
  sh.read_gate = std::make_unique<sim::SimSemaphore>(eng, readers);
  sh.write_gate = std::make_unique<sim::SimSemaphore>(eng, writers);

  proto::RunMetrics metrics;
  std::vector<std::unique_ptr<proto::Forwarder>> fwds;
  for (int p = 0; p < machine.num_psets(); ++p) {
    fwds.push_back(proto::make_forwarder(m, machine, machine.pset(p), metrics, fwd_cfg));
  }

  eng.spawn(run_all(machine, fwds, params, sh));
  eng.run();

  MadbenchResult r;
  r.bytes = metrics.bytes_delivered;
  r.elapsed_s = sim::to_seconds(metrics.last_delivery);
  r.throughput_mib_s = metrics.throughput_mib_s(0, metrics.last_delivery);
  r.reads = sh.reads;
  r.writes = sh.writes;
  for (auto& f : fwds) {
    const auto& s = f->stats();
    r.stats.ops_enqueued += s.ops_enqueued;
    r.stats.worker_batches += s.worker_batches;
    r.stats.worker_tasks += s.worker_tasks;
    r.stats.bml_blocked += s.bml_blocked;
    r.stats.memory_blocked += s.memory_blocked;
  }
  return r;
}

}  // namespace iofwd::wl
