// Mixed bulk + interactive workload for evaluating work-queue scheduling
// policies (the paper's suggested extensions: size-aware and priority-aware
// queues, Sec. IV).
//
// Most CNs stream bulk 1 MiB checkpoints; a few CNs issue small
// high-priority operations (e.g. monitoring or steering messages for the
// concurrent-analysis use case of Sec. I). We measure what the policies are
// meant to trade: bulk throughput vs the latency of the small operations.
#pragma once

#include <cstdint>

#include "bgp/config.hpp"
#include "core/stats.hpp"
#include "proto/forwarder.hpp"

namespace iofwd::wl {

struct PriorityParams {
  int bulk_cns = 56;
  int interactive_cns = 8;
  std::uint64_t bulk_bytes = 1ull << 20;
  std::uint64_t interactive_bytes = 64ull << 10;
  int bulk_iterations = 200;
  int interactive_iterations = 200;
  // Think time between interactive ops (they are sporadic by nature).
  sim::SimTime interactive_gap_ns = 2'000'000;  // 2 ms
  int interactive_priority = 1;                 // bulk stays at 0
};

struct PriorityResult {
  double bulk_throughput_mib_s = 0;
  double interactive_mean_latency_us = 0;
  double interactive_p99_latency_us = 0;
  double bulk_mean_latency_ms = 0;
};

PriorityResult run_priority(proto::Mechanism m, const bgp::MachineConfig& machine_cfg,
                            const proto::ForwarderConfig& fwd_cfg, const PriorityParams& params);

}  // namespace iofwd::wl
