#include "wl/checkpoint.hpp"

#include <memory>
#include <vector>

#include "bgp/machine.hpp"
#include "sim/sync.hpp"

namespace iofwd::wl {

namespace {

// A reusable cycle barrier for the bulk-synchronous mode.
struct CycleBarrier {
  sim::Engine& eng;
  int parties;
  int waiting = 0;
  std::unique_ptr<sim::SimEvent> gate;

  explicit CycleBarrier(sim::Engine& e, int n)
      : eng(e), parties(n), gate(std::make_unique<sim::SimEvent>(e)) {}

  sim::Proc<void> arrive_and_wait() {
    auto* my_gate = gate.get();
    if (++waiting == parties) {
      waiting = 0;
      auto old = std::move(gate);
      gate = std::make_unique<sim::SimEvent>(eng);
      old->set();
      co_return;
    }
    co_await my_gate->wait();
  }
};

sim::Proc<void> cn_cycle(bgp::Machine& m, proto::Forwarder& fwd, int cn,
                         const CheckpointParams& p, CycleBarrier* barrier) {
  proto::SinkTarget sink;
  sink.kind = proto::SinkTarget::Kind::storage;
  auto& eng = m.engine();
  for (int c = 0; c < p.cycles; ++c) {
    co_await sim::Delay{eng, p.compute_ns};
    sink.block = (static_cast<std::uint64_t>(c) * static_cast<std::uint64_t>(p.cns) +
                  static_cast<std::uint64_t>(cn));
    (void)co_await fwd.write(cn, -1, p.checkpoint_bytes, sink);
    if (barrier != nullptr) co_await barrier->arrive_and_wait();
  }
}

sim::Proc<void> run_all(bgp::Machine& m, proto::Forwarder& fwd, const CheckpointParams& p) {
  std::unique_ptr<CycleBarrier> barrier;
  if (p.barrier) barrier = std::make_unique<CycleBarrier>(m.engine(), p.cns);
  std::vector<sim::Proc<void>> procs;
  for (int cn = 0; cn < p.cns; ++cn) procs.push_back(cn_cycle(m, fwd, cn, p, barrier.get()));
  co_await sim::when_all(m.engine(), std::move(procs));
  co_await fwd.drain();
  fwd.shutdown();
}

}  // namespace

CheckpointResult run_checkpoint(proto::Mechanism m, const bgp::MachineConfig& machine_cfg,
                                const proto::ForwarderConfig& fwd_cfg,
                                const CheckpointParams& params) {
  sim::Engine eng;
  bgp::Machine machine(eng, machine_cfg);
  proto::RunMetrics metrics;
  auto fwd = proto::make_forwarder(m, machine, machine.pset(0), metrics, fwd_cfg);

  eng.spawn(run_all(machine, *fwd, params));
  eng.run();

  CheckpointResult r;
  r.total_time_s = sim::to_seconds(eng.now());
  r.compute_time_s = sim::to_seconds(params.compute_ns) * params.cycles;
  if (r.compute_time_s > 0) {
    r.io_overhead_pct = 100.0 * (r.total_time_s - r.compute_time_s) / r.compute_time_s;
  }
  if (r.total_time_s > 0) {
    r.aggregate_mib_s = static_cast<double>(metrics.bytes_delivered) / (1024.0 * 1024.0) /
                        r.total_time_s;
  }
  return r;
}

}  // namespace iofwd::wl
