#include "wl/priority.hpp"

#include <memory>
#include <vector>

#include "bgp/machine.hpp"
#include "sim/sync.hpp"

namespace iofwd::wl {

namespace {

struct Collected {
  Sample interactive_latency_ns;
  Sample bulk_latency_ns;
  std::uint64_t bulk_bytes = 0;
};

sim::Proc<void> bulk_cn(bgp::Machine& m, proto::Forwarder& fwd, int cn, const PriorityParams& p,
                        Collected& out) {
  proto::SinkTarget sink;
  sink.kind = proto::SinkTarget::Kind::da_memory;
  sink.priority = 0;
  auto& eng = m.engine();
  for (int i = 0; i < p.bulk_iterations; ++i) {
    const sim::SimTime t0 = eng.now();
    (void)co_await fwd.write(cn, -1, p.bulk_bytes, sink);
    out.bulk_latency_ns.add(static_cast<double>(eng.now() - t0));
    out.bulk_bytes += p.bulk_bytes;
  }
}

sim::Proc<void> interactive_cn(bgp::Machine& m, proto::Forwarder& fwd, int cn,
                               const PriorityParams& p, Collected& out) {
  proto::SinkTarget sink;
  sink.kind = proto::SinkTarget::Kind::da_memory;
  sink.priority = p.interactive_priority;
  auto& eng = m.engine();
  for (int i = 0; i < p.interactive_iterations; ++i) {
    co_await sim::Delay{eng, p.interactive_gap_ns};
    const sim::SimTime t0 = eng.now();
    (void)co_await fwd.write(cn, -1, p.interactive_bytes, sink);
    out.interactive_latency_ns.add(static_cast<double>(eng.now() - t0));
  }
}

sim::Proc<void> run_all(bgp::Machine& m, proto::Forwarder& fwd, const PriorityParams& p,
                        Collected& out) {
  std::vector<sim::Proc<void>> procs;
  int cn = 0;
  for (int i = 0; i < p.bulk_cns; ++i) procs.push_back(bulk_cn(m, fwd, cn++, p, out));
  for (int i = 0; i < p.interactive_cns; ++i) {
    procs.push_back(interactive_cn(m, fwd, cn++, p, out));
  }
  co_await sim::when_all(m.engine(), std::move(procs));
  co_await fwd.drain();
  fwd.shutdown();
}

}  // namespace

PriorityResult run_priority(proto::Mechanism m, const bgp::MachineConfig& machine_cfg,
                            const proto::ForwarderConfig& fwd_cfg, const PriorityParams& params) {
  sim::Engine eng;
  bgp::Machine machine(eng, machine_cfg);
  proto::RunMetrics metrics;
  auto fwd = proto::make_forwarder(m, machine, machine.pset(0), metrics, fwd_cfg);

  Collected out;
  eng.spawn(run_all(machine, *fwd, params, out));
  eng.run();

  PriorityResult r;
  const double secs = sim::to_seconds(metrics.last_delivery);
  if (secs > 0) {
    r.bulk_throughput_mib_s = static_cast<double>(out.bulk_bytes) / (1024.0 * 1024.0) / secs;
  }
  r.interactive_mean_latency_us = out.interactive_latency_ns.percentile(50) / 1e3;
  r.interactive_p99_latency_us = out.interactive_latency_ns.percentile(99) / 1e3;
  r.bulk_mean_latency_ms = out.bulk_latency_ns.percentile(50) / 1e6;
  return r;
}

}  // namespace iofwd::wl
