#include "wl/collective.hpp"

#include <memory>
#include <vector>

#include "bgp/machine.hpp"
#include "sim/sync.hpp"

namespace iofwd::wl {

const char* to_string(IoMode m) {
  return m == IoMode::independent ? "independent" : "collective";
}

namespace {

struct Shared {
  std::uint64_t forwarded_ops = 0;
  sim::SimTime exchange_ns = 0;
};

// Independent mode: every CN forwards each strided piece directly.
sim::Proc<void> independent_cn(bgp::Machine& m, proto::Forwarder& fwd, int cn,
                               const CollectiveParams& p, Shared& sh) {
  proto::SinkTarget st;
  st.kind = proto::SinkTarget::Kind::storage;
  for (int r = 0; r < p.pieces_per_cn; ++r) {
    // Block-cyclic: round-major interleave of all CNs' pieces.
    const std::uint64_t off =
        (static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(p.cns) +
         static_cast<std::uint64_t>(cn)) *
        p.piece_bytes;
    st.block = off / p.stripe_bytes;
    (void)co_await fwd.write(cn, -1, p.piece_bytes, st);
    ++sh.forwarded_ops;
  }
  (void)m;
}

// Collective mode, phase 1: a CN ships all its pieces to its aggregator
// over the torus (one message per piece; they pipeline on the links).
sim::Proc<void> exchange_cn(bgp::Machine& m, bgp::Pset& pset, int cn, int aggregator,
                            const CollectiveParams& p) {
  (void)cn;
  (void)aggregator;
  (void)m;
  for (int r = 0; r < p.pieces_per_cn; ++r) {
    co_await pset.torus().transfer(p.piece_bytes);
  }
}

// Collective mode, phase 2: each aggregator forwards its large contiguous
// range in stripe-sized operations.
sim::Proc<void> aggregator_cn(bgp::Machine& m, proto::Forwarder& fwd, int agg,
                              const CollectiveParams& p, Shared& sh) {
  proto::SinkTarget st;
  st.kind = proto::SinkTarget::Kind::storage;
  const std::uint64_t range = p.total_bytes() / static_cast<std::uint64_t>(p.aggregators);
  const std::uint64_t base = static_cast<std::uint64_t>(agg) * range;
  std::uint64_t done = 0;
  while (done < range) {
    const std::uint64_t n = std::min(p.stripe_bytes, range - done);
    st.block = (base + done) / p.stripe_bytes;
    (void)co_await fwd.write(agg, -1, n, st);
    ++sh.forwarded_ops;
    done += n;
  }
  (void)m;
}

sim::Proc<void> run_mode(bgp::Machine& m, proto::Forwarder& fwd, IoMode mode,
                         const CollectiveParams& p, Shared& sh) {
  auto& eng = m.engine();
  if (mode == IoMode::independent) {
    std::vector<sim::Proc<void>> procs;
    for (int cn = 0; cn < p.cns; ++cn) procs.push_back(independent_cn(m, fwd, cn, p, sh));
    co_await sim::when_all(eng, std::move(procs));
  } else {
    // Phase 1: torus redistribution (non-aggregators ship to aggregators).
    const sim::SimTime t0 = eng.now();
    std::vector<sim::Proc<void>> xchg;
    for (int cn = 0; cn < p.cns; ++cn) {
      const int agg = cn % p.aggregators;
      if (cn / p.aggregators == 0) continue;  // aggregators keep their share locally
      xchg.push_back(exchange_cn(m, m.pset(0), cn, agg, p));
    }
    co_await sim::when_all(eng, std::move(xchg));
    sh.exchange_ns = eng.now() - t0;
    // Phase 2: aggregators write big contiguous ranges.
    std::vector<sim::Proc<void>> writes;
    for (int a = 0; a < p.aggregators; ++a) writes.push_back(aggregator_cn(m, fwd, a, p, sh));
    co_await sim::when_all(eng, std::move(writes));
  }
  co_await fwd.drain();
  fwd.shutdown();
}

}  // namespace

CollectiveResult run_collective(proto::Mechanism m, IoMode mode,
                                const bgp::MachineConfig& machine_cfg,
                                const proto::ForwarderConfig& fwd_cfg,
                                const CollectiveParams& params) {
  sim::Engine eng;
  bgp::Machine machine(eng, machine_cfg);
  proto::RunMetrics metrics;
  auto fwd = proto::make_forwarder(m, machine, machine.pset(0), metrics, fwd_cfg);

  Shared sh;
  eng.spawn(run_mode(machine, *fwd, mode, params, sh));
  eng.run();

  CollectiveResult r;
  r.elapsed_s = sim::to_seconds(eng.now());
  r.throughput_mib_s = r.elapsed_s > 0 ? static_cast<double>(params.total_bytes()) /
                                             (1024.0 * 1024.0) / r.elapsed_s
                                       : 0;
  r.forwarded_ops = sh.forwarded_ops;
  r.exchange_s = sim::to_seconds(sh.exchange_ns);
  return r;
}

}  // namespace iofwd::wl
