// MADbench2-like application benchmark (paper Sec. V-B).
//
// MADbench2 is derived from the MADspec CMB analysis code: it performs
// out-of-core matrix operations requiring successive writes and reads of
// large contiguous data. In the paper's configuration (I/O mode, busy-work
// exponent alpha = 1, RMOD = WMOD = 1, all processes doing I/O):
//
//   * 64 nodes,  NPIX = 4096: per-op size 4096^2*8/64  = 2 MiB,
//     1024 component matrices -> 128 GiB of total I/O;
//   * 256 nodes, NPIX = 8192: per-op size 8192^2*8/256 = 2 MiB,
//     1024 matrices -> 512 GiB.
//
// Our generator reproduces that I/O pattern against the simulated GPFS
// storage: phase S writes the first quarter of the matrices, phase W
// alternates reads and writes over the middle half, phase C reads the last
// quarter — successive large contiguous transfers, mixed directions, every
// process active (matching the total op count and bytes above).
#pragma once

#include <cstdint>

#include "bgp/config.hpp"
#include "proto/forwarder.hpp"

namespace iofwd::wl {

struct MadbenchParams {
  int nodes = 64;           // total compute processes (64 per pset)
  std::uint64_t npix = 4096;
  int n_matrices = 1024;    // component matrices (ops per process)
  // Busy-work: simulated compute between I/O ops (alpha=1 => none).
  sim::SimTime busywork_ns_per_op = 0;
  // Concurrency modulation: only nprocs/rmod readers (wmod writers) do I/O
  // at once; 1 = everyone (the paper's setting).
  int rmod = 1;
  int wmod = 1;
  // GPFS stripe size used to spread blocks across FSNs.
  std::uint64_t stripe_bytes = 4ull << 20;

  [[nodiscard]] std::uint64_t bytes_per_op() const {
    return npix * npix * 8 / static_cast<std::uint64_t>(nodes);
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    return npix * npix * 8 * static_cast<std::uint64_t>(n_matrices);
  }
};

struct MadbenchResult {
  double throughput_mib_s = 0;
  double elapsed_s = 0;
  std::uint64_t bytes = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  proto::ForwarderStats stats;
};

MadbenchResult run_madbench(proto::Mechanism m, bgp::MachineConfig machine_cfg,
                            const proto::ForwarderConfig& fwd_cfg, const MadbenchParams& params);

}  // namespace iofwd::wl
