// Checkpointing application workload: compute / checkpoint cycles.
//
// The paper's introduction frames the payoff of faster forwarding as
// "accelerat[ing] the time to solution or apply[ing] more complex models
// during the same time frame". This workload quantifies it: every CN
// alternates `compute_ns` of computation with a `checkpoint_bytes` write.
// With synchronous forwarding the application stalls for the full I/O time;
// with asynchronous data staging the write overlaps the next compute phase
// and the application approaches compute-bound speed.
#pragma once

#include <cstdint>

#include "bgp/config.hpp"
#include "proto/forwarder.hpp"

namespace iofwd::wl {

struct CheckpointParams {
  int cns = 64;
  int cycles = 50;
  sim::SimTime compute_ns = 400'000'000;      // 400 ms of computation per cycle
  std::uint64_t checkpoint_bytes = 4ull << 20;  // 4 MiB per CN per cycle
  // Bulk-synchronous mode: all CNs synchronize (an MPI barrier) between
  // cycles, as real stencil/spectral codes do. Without it, synchronous I/O
  // lets ranks drift out of phase and de-facto stream their checkpoints.
  bool barrier = true;
};

struct CheckpointResult {
  double total_time_s = 0;       // wall time of the whole run
  double compute_time_s = 0;     // pure computation (lower bound)
  double io_overhead_pct = 0;    // (total - compute) / compute
  double aggregate_mib_s = 0;    // checkpoint data rate over the run
};

CheckpointResult run_checkpoint(proto::Mechanism m, const bgp::MachineConfig& machine_cfg,
                                const proto::ForwarderConfig& fwd_cfg,
                                const CheckpointParams& params);

}  // namespace iofwd::wl
