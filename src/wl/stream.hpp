// Memory-to-memory streaming workload.
//
// This is the parallel data-transfer microbenchmark of Secs. III and V-A:
// every participating CN issues `iterations` forwarded writes of
// `message_bytes`, either to /dev/null on the ION (Fig. 4) or to the memory
// of data-analysis nodes over the external network (Figs. 6, 9, 10, 12).
// Aggregate delivered throughput is reported.
#pragma once

#include <cstdint>
#include <string>

#include "bgp/config.hpp"
#include "core/units.hpp"
#include "proto/forwarder.hpp"

namespace iofwd::wl {

struct StreamParams {
  int cns_per_pset = 64;        // concurrently transferring CNs in each pset
  std::uint64_t message_bytes = 1_MiB;
  int iterations = 1000;
  proto::SinkTarget::Kind sink = proto::SinkTarget::Kind::da_memory;
  // MxN distribution: spread CN connections over all DA nodes (Sec. V-A4);
  // otherwise everyone streams to DA 0.
  bool distribute_das = false;
  // When set, write a Chrome-trace JSON of pset 0's operations here.
  std::string trace_path;
};

struct StreamResult {
  double throughput_mib_s = 0;   // aggregate delivered over the full run
  proto::RunMetrics metrics;
  proto::ForwarderStats stats;   // merged across psets
  std::uint64_t sim_events = 0;
  sim::SimTime elapsed = 0;
};

// Build the machine, run the workload under mechanism `m`, tear down.
StreamResult run_stream(proto::Mechanism m, const bgp::MachineConfig& machine_cfg,
                        const proto::ForwarderConfig& fwd_cfg, const StreamParams& params);

// The paper reports the maximum of five runs on the shared network; our
// simulator is deterministic, so "runs" differ only by a seed-driven start
// stagger. Returns the max across `runs` repetitions.
double max_of_runs(proto::Mechanism m, const bgp::MachineConfig& machine_cfg,
                   const proto::ForwarderConfig& fwd_cfg, const StreamParams& params,
                   int runs = 1);

}  // namespace iofwd::wl
