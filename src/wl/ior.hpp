// IOR-like parameterized I/O benchmark on the simulated machine.
//
// IOR is the other standard parallel-I/O benchmark on leadership systems
// (Lang et al. [11], the study the paper builds on, uses it extensively).
// This generator covers its core parameter space against the simulated
// GPFS: access pattern (sequential / strided / random offsets), direction
// (write, read, or write-then-read), transfer size, segment count, shared
// vs per-process files.
#pragma once

#include <cstdint>

#include "bgp/config.hpp"
#include "core/rng.hpp"
#include "proto/forwarder.hpp"

namespace iofwd::wl {

enum class IorPattern { sequential, strided, random };
enum class IorDirection { write_only, read_only, write_then_read };

struct IorParams {
  int cns = 64;
  IorPattern pattern = IorPattern::sequential;
  IorDirection direction = IorDirection::write_only;
  std::uint64_t transfer_bytes = 1ull << 20;  // -t
  int segments = 64;                          // -s (transfers per process)
  bool shared_file = true;                    // -F inverted
  std::uint64_t stripe_bytes = 4ull << 20;
  std::uint64_t seed = 0x10f;

  [[nodiscard]] std::uint64_t bytes_per_process() const {
    return transfer_bytes * static_cast<std::uint64_t>(segments);
  }
};

struct IorResult {
  double write_mib_s = 0;
  double read_mib_s = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  double elapsed_s = 0;
};

IorResult run_ior(proto::Mechanism m, const bgp::MachineConfig& machine_cfg,
                  const proto::ForwarderConfig& fwd_cfg, const IorParams& params);

[[nodiscard]] const char* to_string(IorPattern p);
[[nodiscard]] const char* to_string(IorDirection d);

}  // namespace iofwd::wl
