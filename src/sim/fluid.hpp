// Fluid-flow (processor-sharing) resource models.
//
// These are the hardware substitution at the heart of the reproduction (see
// DESIGN.md Sec. 2): network links and CPU pools are modeled as resources
// whose instantaneous capacity is divided equally among the flows active on
// them. When a flow arrives or departs, every active flow's progress is
// advanced and the next completion event is recomputed. Within the fluid
// abstraction this is exact, and it is what makes the paper's contention
// phenomena (ION threads fighting over 4 slow cores, a shared tree link)
// emerge from first principles instead of being curve-fitted.
//
// Two concrete resources are built on the shared machinery:
//
//  * Link      — capacity in bytes/ns, optional per-flow rate cap, and a
//                fixed per-byte wire overhead (the tree network's 26 bytes
//                of headers per 256-byte payload, paper Sec. III-A).
//  * CpuPool   — capacity in core-ns/ns. A task consumes "cpu-ns". The
//                aggregate capacity degrades with the number of runnable
//                tasks: a memory/cache-contention factor applies up to the
//                core count, and a context-switch penalty applies beyond it.
//                Process-grade switches (CIOD) cost more than thread-grade
//                switches (ZOID), which the paper credits for ZOID's edge.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace iofwd::sim {

// Generic processor-sharing resource. Units are abstract ("work"); rate is
// work/ns. Flows receive min(fair share, per-flow cap).
class FluidResource {
 public:
  // total_rate(n): aggregate service rate with n active flows (work/ns).
  using CapacityFn = std::function<double(int)>;

  FluidResource(Engine& eng, CapacityFn total_rate, std::string name,
                double per_flow_cap = std::numeric_limits<double>::infinity());
  ~FluidResource();
  FluidResource(const FluidResource&) = delete;
  FluidResource& operator=(const FluidResource&) = delete;

  // Awaitable: co_await res.consume(units). Completes when `units` of work
  // have been served to this flow under fair sharing.
  struct Consume {
    FluidResource& r;
    double units;

    bool await_ready() const noexcept { return units <= 0; }
    void await_suspend(std::coroutine_handle<> h) { r.add_flow(units, h); }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Consume consume(double units) { return Consume{*this, units}; }

  [[nodiscard]] int active() const { return static_cast<int>(flows_.size()); }
  [[nodiscard]] const std::string& name() const { return name_; }

  // Observability: total work served and the integral of busy time.
  [[nodiscard]] double total_served() const { return total_served_; }
  [[nodiscard]] SimTime busy_time() const { return busy_time_; }
  [[nodiscard]] double utilization(SimTime elapsed) const {
    return elapsed > 0 ? static_cast<double>(busy_time_) / static_cast<double>(elapsed) : 0.0;
  }

  // Instantaneous per-flow rate (for tests/diagnostics).
  [[nodiscard]] double current_per_flow_rate() const;

 private:
  struct Flow {
    double remaining;
    std::coroutine_handle<> h;
  };

  void add_flow(double units, std::coroutine_handle<> h);
  void advance();       // integrate progress since last event
  void reschedule();    // plan the next completion event
  void on_timer();      // completion event fired

  Engine& eng_;
  CapacityFn total_rate_;
  std::string name_;
  double per_flow_cap_;

  std::vector<Flow> flows_;
  SimTime last_update_ = 0;
  double rate_per_flow_ = 0;  // current service rate per flow
  Engine::EventId timer_ = 0;
  bool timer_armed_ = false;

  double total_served_ = 0;
  SimTime busy_time_ = 0;
};

// ---------------------------------------------------------------------------
// Link
// ---------------------------------------------------------------------------
struct LinkSpec {
  double bandwidth_mib_s = 0;  // payload-agnostic raw capacity
  // Wire overhead: header bytes added per `payload_unit` bytes of payload.
  // The BG/P collective network adds 16 B of forwarding header plus 10 B of
  // hardware header per 256 B payload (paper Sec. III-A).
  double header_bytes_per_unit = 0;
  double payload_unit_bytes = 256;
  // Per-flow rate cap in MiB/s (e.g., a single TCP stream on a given core).
  double per_flow_cap_mib_s = std::numeric_limits<double>::infinity();
  // Fixed one-way propagation latency added to every transfer.
  SimTime latency_ns = 0;
  // Arbitration contention: aggregate capacity degrades once more than
  // `contention_free_flows` flows share the link:
  //   capacity(n) = raw / (1 + contention_per_flow * max(0, n - free)).
  // Models the BG/P tree's packet-arbitration losses with many concurrent
  // senders (the >32-CN degradation of Fig. 4).
  double contention_per_flow = 0.0;
  int contention_free_flows = 0;
};

class Link {
 public:
  Link(Engine& eng, const LinkSpec& spec, std::string name);

  // Transfer `payload_bytes` across the link: propagation latency, then the
  // wire bytes (payload + headers) served under fair sharing.
  Proc<void> transfer(std::uint64_t payload_bytes);

  // Effective peak payload throughput in MiB/s after header overhead.
  [[nodiscard]] double effective_peak_mib_s() const;

  [[nodiscard]] int active() const { return fluid_.active(); }
  [[nodiscard]] double total_payload_bytes() const { return total_payload_; }
  [[nodiscard]] const LinkSpec& spec() const { return spec_; }

 private:
  [[nodiscard]] double wire_bytes(std::uint64_t payload) const;

  Engine& eng_;
  LinkSpec spec_;
  double overhead_factor_;  // wire bytes per payload byte
  FluidResource fluid_;
  double total_payload_ = 0;
};

// ---------------------------------------------------------------------------
// CpuPool
// ---------------------------------------------------------------------------
struct CpuSpec {
  int cores = 4;
  // Cache/memory contention: fractional slowdown per additional concurrently
  // running task (up to `cores`). 0 = perfect scaling.
  double share_penalty = 0.0;
  // Scheduling overhead once runnable tasks exceed cores: fractional
  // capacity loss per excess task. Thread switches are cheap; process
  // switches (CIOD) are several times dearer.
  double switch_penalty = 0.0;
  // The overhead saturates: each quantum pays roughly one context switch no
  // matter how long the run queue is, so the loss approaches
  // switch_penalty * switch_saturation asymptotically rather than growing
  // without bound.
  double switch_saturation = 8.0;
};

class CpuPool {
 public:
  CpuPool(Engine& eng, const CpuSpec& spec, std::string name);

  // Awaitable: charge `cpu_ns` nanoseconds of single-core work.
  [[nodiscard]] FluidResource::Consume consume(double cpu_ns) { return fluid_.consume(cpu_ns); }

  // Aggregate effective capacity (in cores) with n runnable tasks. Exposed
  // for tests and for the calibration notes in EXPERIMENTS.md.
  [[nodiscard]] double effective_cores(int runnable) const;

  [[nodiscard]] int active() const { return fluid_.active(); }
  [[nodiscard]] const CpuSpec& spec() const { return spec_; }
  [[nodiscard]] double total_cpu_ns() const { return fluid_.total_served(); }

 private:
  CpuSpec spec_;
  FluidResource fluid_;
};

}  // namespace iofwd::sim
