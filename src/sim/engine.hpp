// Discrete-event simulation engine.
//
// The engine owns a min-heap of (time, sequence) ordered events. Everything
// that happens in the simulated machine is a C++20 coroutine (`Proc<T>`,
// see process.hpp) suspended on an awaitable that scheduled a wake-up event
// here. Execution is single-threaded and deterministic: ties in time are
// broken by insertion sequence.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace iofwd::sim {

template <typename T>
class Proc;

class Engine {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedule `cb` at absolute simulated time `t` (>= now). Returns an id
  // usable with cancel().
  EventId schedule_at(SimTime t, Callback cb);

  // Schedule `cb` `delay` nanoseconds from now (delay < 0 is clamped to 0).
  EventId schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + (delay > 0 ? delay : 0), std::move(cb));
  }

  // Lazily cancel a scheduled event. Cancelling an already-fired or unknown
  // id is a no-op.
  void cancel(EventId id);

  // Start a detached process at the current simulated time. The coroutine
  // frame frees itself on completion. An exception escaping a detached
  // process terminates the simulation (fail fast — simulated machinery is
  // not supposed to throw).
  void spawn(Proc<void> p);

  // Run until the event queue is empty or stop() was called.
  // Returns the number of events processed by this call.
  std::uint64_t run();

  // Run events with time <= `t`; afterwards now() == t if the queue drained
  // past it. Returns events processed.
  std::uint64_t run_until(SimTime t);

  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::size_t events_pending() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Ev {
    SimTime t;
    EventId id;
  };
  struct EvCmp {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.t != b.t ? a.t > b.t : a.id > b.id;
    }
  };

  bool fire_next(SimTime limit);

  SimTime now_ = 0;
  EventId next_id_ = 1;
  bool stopped_ = false;
  std::uint64_t processed_ = 0;
  std::priority_queue<Ev, std::vector<Ev>, EvCmp> heap_;
  // Callbacks are stored out-of-band so cancel() can drop them eagerly
  // (freeing captured resources) while the heap entry dies lazily.
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace iofwd::sim
