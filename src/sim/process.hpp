// Proc<T>: the coroutine type for simulated activities.
//
// A Proc is lazy (suspends at the start). It runs in one of two modes:
//
//   * awaited:  `T v = co_await child();` — the child starts immediately via
//     symmetric transfer; when it finishes, control returns to the awaiting
//     parent. Exceptions propagate to the parent.
//   * detached: `engine.spawn(std::move(p))` — the engine resumes it at the
//     current simulated time and the frame destroys itself at completion.
//
// Processes must run to completion: destroying a suspended, non-detached
// Proc mid-flight is a programming error (a sync primitive may still hold
// its handle) and asserts in debug builds.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdio>
#include <exception>
#include <optional>
#include <utility>

namespace iofwd::sim {

template <typename T>
class Proc;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  bool detached = false;
  bool done = false;
  std::exception_ptr exception{};

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      p.done = true;
      if (p.continuation) return p.continuation;
      if (p.detached) {
        if (p.exception) {
          // A detached simulated activity threw: there is no parent to
          // propagate to, so fail fast rather than silently dropping it.
          std::fprintf(stderr, "iofwd::sim: exception escaped detached process\n");
          std::terminate();
        }
        h.destroy();
      }
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Proc {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Proc get_return_object() {
      return Proc(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Proc(Proc&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Proc& operator=(Proc&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;
  ~Proc() { destroy(); }

  // Awaiting a Proc starts it immediately (symmetric transfer).
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        assert(p.value.has_value());
        return std::move(*p.value);
      }
    };
    return Awaiter{h_};
  }

 private:
  friend class Engine;
  explicit Proc(std::coroutine_handle<promise_type> h) : h_(h) {}

  void destroy() {
    if (h_) {
      assert((!h_.promise().done || h_.done()) && "state mismatch");
      h_.destroy();
      h_ = {};
    }
  }

  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Proc<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Proc get_return_object() {
      return Proc(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Proc(Proc&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Proc& operator=(Proc&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;
  ~Proc() { destroy(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;
      }
      void await_resume() {
        auto& p = h.promise();
        if (p.exception) std::rethrow_exception(p.exception);
      }
    };
    return Awaiter{h_};
  }

  // Used by Engine::spawn: mark detached (self-destroying) and hand over the
  // handle. The Proc wrapper relinquishes ownership.
  std::coroutine_handle<promise_type> release_detached() {
    assert(h_ && "spawning an empty Proc");
    h_.promise().detached = true;
    return std::exchange(h_, {});
  }

 private:
  explicit Proc(std::coroutine_handle<promise_type> h) : h_(h) {}

  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  std::coroutine_handle<promise_type> h_;
};

}  // namespace iofwd::sim
