// Simulated time.
//
// SimTime is integer nanoseconds from simulation start. Integer time keeps
// the event queue totally ordered and the runs bit-reproducible; fractional
// residues from the fluid-flow models are rounded up so no event ever fires
// "early".
#pragma once

#include <cstdint>

namespace iofwd::sim {

using SimTime = std::int64_t;  // nanoseconds

inline constexpr SimTime kNsPerUs = 1000;
inline constexpr SimTime kNsPerMs = 1000 * 1000;
inline constexpr SimTime kNsPerSec = 1000 * 1000 * 1000;

constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }
constexpr SimTime from_seconds(double s) { return static_cast<SimTime>(s * 1e9); }

}  // namespace iofwd::sim
