#include "sim/chrome_trace.hpp"

#include <fstream>
#include <sstream>

namespace iofwd::sim {

void ChromeTracer::instant(const std::string& name, const std::string& cat, int tid) {
  events_.push_back(Event{'i', name, cat, tid, eng_.now(), 0, 0});
}

void ChromeTracer::counter(const std::string& name, double value) {
  events_.push_back(Event{'C', name, "counter", 0, eng_.now(), 0, value});
}

void ChromeTracer::complete(const std::string& name, const std::string& cat, int tid,
                            SimTime start, SimTime end) {
  events_.push_back(Event{'X', name, cat, tid, start, end - start, 0});
}

namespace {
// Trace Event Format wants microseconds; keep sub-us precision as decimals.
void put_us(std::ostringstream& os, SimTime ns) {
  os << ns / 1000;
  const auto frac = ns % 1000;
  if (frac != 0) {
    os << '.' << (frac / 100) << ((frac / 10) % 10) << (frac % 10);
  }
}

void escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}
}  // namespace

std::string ChromeTracer::to_json() const {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"ph":")" << e.phase << R"(","name":")";
    escape(os, e.name);
    os << R"(","cat":")";
    escape(os, e.cat);
    os << R"(","pid":1,"tid":)" << e.tid << R"(,"ts":)";
    put_us(os, e.ts);
    if (e.phase == 'X') {
      os << R"(,"dur":)";
      put_us(os, e.dur);
    } else if (e.phase == 'C') {
      os << R"(,"args":{"value":)" << e.value << "}";
    } else if (e.phase == 'i') {
      os << R"(,"s":"t")";
    }
    os << "}";
  }
  os << "]\n";
  return os.str();
}

Status ChromeTracer::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status(Errc::io_error, "cannot open " + path);
  const std::string j = to_json();
  f << j;
  return f.good() ? Status::ok() : Status(Errc::io_error, "short write to " + path);
}

}  // namespace iofwd::sim
