// Awaitables and synchronization primitives for simulated processes.
//
// All primitives resume waiters through the engine's event queue (never
// inline) so that wake-ups are totally ordered with everything else and
// re-entrancy bugs cannot occur. All are FIFO-fair.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace iofwd::sim {

// ---------------------------------------------------------------------------
// Delay: co_await Delay{engine, ns};
// ---------------------------------------------------------------------------
struct Delay {
  Engine& eng;
  SimTime d;

  bool await_ready() const noexcept { return d <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    eng.schedule_after(d, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

// ---------------------------------------------------------------------------
// SimSemaphore: counting semaphore with n-unit acquire (FIFO, no barging:
// while waiters exist, new acquirers queue behind them even if the count
// would satisfy them). Used for simulated memory pools and mutexes.
// ---------------------------------------------------------------------------
class SimSemaphore {
 public:
  SimSemaphore(Engine& eng, std::int64_t initial) : eng_(eng), count_(initial) {}
  SimSemaphore(const SimSemaphore&) = delete;
  SimSemaphore& operator=(const SimSemaphore&) = delete;

  struct Acquire {
    SimSemaphore& s;
    std::int64_t n;

    bool await_ready() {
      if (s.waiters_.empty() && s.count_ >= n) {
        s.count_ -= n;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { s.waiters_.push_back({n, h}); }
    void await_resume() const noexcept {}
  };

  // co_await sem.acquire(n);
  [[nodiscard]] Acquire acquire(std::int64_t n = 1) {
    assert(n >= 0);
    return Acquire{*this, n};
  }

  // Try to take n units without waiting.
  bool try_acquire(std::int64_t n = 1) {
    if (waiters_.empty() && count_ >= n) {
      count_ -= n;
      return true;
    }
    return false;
  }

  void release(std::int64_t n = 1) {
    count_ += n;
    drain();
  }

  [[nodiscard]] std::int64_t available() const { return count_; }
  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }

 private:
  void drain() {
    while (!waiters_.empty() && count_ >= waiters_.front().need) {
      auto w = waiters_.front();
      waiters_.pop_front();
      count_ -= w.need;  // reserve now so later acquirers cannot barge
      eng_.schedule_after(0, [h = w.h] { h.resume(); });
    }
  }

  struct Waiter {
    std::int64_t need;
    std::coroutine_handle<> h;
  };
  Engine& eng_;
  std::int64_t count_;
  std::deque<Waiter> waiters_;
};

// A mutex is a binary semaphore; ScopedSimLock gives RAII in coroutines:
//   auto lock = co_await ScopedSimLock::take(mu);
class ScopedSimLock {
 public:
  static Proc<ScopedSimLock> take(SimSemaphore& mu) {
    co_await mu.acquire(1);
    co_return ScopedSimLock(&mu);
  }
  ScopedSimLock(ScopedSimLock&& o) noexcept : mu_(std::exchange(o.mu_, nullptr)) {}
  ScopedSimLock& operator=(ScopedSimLock&& o) noexcept {
    if (this != &o) {
      unlock();
      mu_ = std::exchange(o.mu_, nullptr);
    }
    return *this;
  }
  ScopedSimLock(const ScopedSimLock&) = delete;
  ScopedSimLock& operator=(const ScopedSimLock&) = delete;
  ~ScopedSimLock() { unlock(); }

 private:
  explicit ScopedSimLock(SimSemaphore* mu) : mu_(mu) {}
  void unlock() {
    if (mu_) {
      mu_->release(1);
      mu_ = nullptr;
    }
  }
  SimSemaphore* mu_;
};

// ---------------------------------------------------------------------------
// SimEvent: a manual latch. wait() suspends until set(); set() wakes all.
// ---------------------------------------------------------------------------
class SimEvent {
 public:
  explicit SimEvent(Engine& eng) : eng_(eng) {}
  SimEvent(const SimEvent&) = delete;
  SimEvent& operator=(const SimEvent&) = delete;

  struct Wait {
    SimEvent& e;
    bool await_ready() const noexcept { return e.set_; }
    void await_suspend(std::coroutine_handle<> h) { e.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Wait wait() { return Wait{*this}; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) eng_.schedule_after(0, [h] { h.resume(); });
    waiters_.clear();
  }
  [[nodiscard]] bool is_set() const { return set_; }

 private:
  Engine& eng_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// ---------------------------------------------------------------------------
// SimChannel<T>: unbounded FIFO channel. send() never blocks; recv() waits
// for an item; close() makes pending and future recv() return nullopt once
// the queue drains.
// ---------------------------------------------------------------------------
template <typename T>
class SimChannel {
 public:
  explicit SimChannel(Engine& eng) : eng_(eng) {}
  SimChannel(const SimChannel&) = delete;
  SimChannel& operator=(const SimChannel&) = delete;

  void send(T v) {
    assert(!closed_ && "send on closed channel");
    q_.push_back(std::move(v));
    wake_one();
  }

  struct Recv {
    SimChannel& c;
    bool suspended = false;

    bool await_ready() {
      // An item is available and not already promised to a scheduled waiter.
      if (c.q_.size() > c.reserved_) return true;
      return c.closed_;
    }
    void await_suspend(std::coroutine_handle<> h) {
      suspended = true;
      c.waiters_.push_back(h);
    }
    std::optional<T> await_resume() {
      if (suspended && c.reserved_ > 0 && !c.q_.empty()) {
        // We were woken by send(): consume the item reserved for us.
        // (Engine FIFO ordering guarantees send-woken waiters resume before
        // close-woken ones, so the reservation is necessarily ours.)
        --c.reserved_;
        T v = std::move(c.q_.front());
        c.q_.pop_front();
        return v;
      }
      if (c.q_.size() > c.reserved_) {  // ready path: unreserved item
        T v = std::move(c.q_.front());
        c.q_.pop_front();
        return v;
      }
      assert(c.closed_);
      return std::nullopt;
    }
  };

  // co_await ch.recv() -> std::optional<T>
  [[nodiscard]] Recv recv() { return Recv{*this}; }

  // Non-blocking receive; respects items promised to scheduled waiters.
  std::optional<T> try_recv() {
    if (q_.size() > reserved_) {
      T v = std::move(q_.front());
      q_.pop_front();
      return v;
    }
    return std::nullopt;
  }

  void close() {
    closed_ = true;
    while (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      eng_.schedule_after(0, [h] { h.resume(); });
    }
  }

  [[nodiscard]] std::size_t size() const { return q_.size(); }
  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] std::size_t waiting_receivers() const { return waiters_.size(); }

 private:
  // Awaiter bookkeeping: when an item arrives and a receiver is suspended,
  // the item is "reserved" for it so that a try_recv() or a fresh recv()
  // cannot steal it before the scheduled resume runs.
  void wake_one() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      ++reserved_;
      eng_.schedule_after(0, [h] { h.resume(); });
    }
  }

  Engine& eng_;
  std::deque<T> q_;
  std::deque<std::coroutine_handle<>> waiters_;
  std::size_t reserved_ = 0;
  bool closed_ = false;
};

// ---------------------------------------------------------------------------
// WaitGroup + when_all: structured concurrency over detached children.
// ---------------------------------------------------------------------------
class WaitGroup {
 public:
  explicit WaitGroup(Engine& eng) : eng_(eng) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void add(std::int64_t k = 1) { n_ += k; }

  void done() {
    assert(n_ > 0);
    if (--n_ == 0 && waiter_) {
      auto h = std::exchange(waiter_, {});
      eng_.schedule_after(0, [h] { h.resume(); });
    }
  }

  void record_exception(std::exception_ptr ep) {
    if (!exception_) exception_ = std::move(ep);
  }

  struct Wait {
    WaitGroup& wg;
    bool await_ready() const noexcept { return wg.n_ == 0; }
    void await_suspend(std::coroutine_handle<> h) {
      assert(!wg.waiter_ && "WaitGroup supports a single waiter");
      wg.waiter_ = h;
    }
    void await_resume() const {
      if (wg.exception_) std::rethrow_exception(wg.exception_);
    }
  };
  [[nodiscard]] Wait wait() { return Wait{*this}; }

  [[nodiscard]] std::int64_t pending() const { return n_; }

 private:
  Engine& eng_;
  std::int64_t n_ = 0;
  std::coroutine_handle<> waiter_{};
  std::exception_ptr exception_{};
};

namespace detail {
inline Proc<void> run_into_group(Proc<void> p, WaitGroup& wg) {
  try {
    co_await std::move(p);
  } catch (...) {
    wg.record_exception(std::current_exception());
  }
  wg.done();
}
}  // namespace detail

// Run all children concurrently; complete when every child completed. The
// first child exception (if any) is rethrown after all children finish.
inline Proc<void> when_all(Engine& eng, std::vector<Proc<void>> ps) {
  WaitGroup wg(eng);
  wg.add(static_cast<std::int64_t>(ps.size()));
  for (auto& p : ps) eng.spawn(detail::run_into_group(std::move(p), wg));
  co_await wg.wait();
}

// Binary convenience overload: the common "charge CPU while the wire moves
// the bytes" pattern, where an operation's elapsed time is the max of two
// concurrently progressing resource usages.
inline Proc<void> when_all(Engine& eng, Proc<void> a, Proc<void> b) {
  std::vector<Proc<void>> ps;
  ps.push_back(std::move(a));
  ps.push_back(std::move(b));
  co_await when_all(eng, std::move(ps));
}

}  // namespace iofwd::sim
