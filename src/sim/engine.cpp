#include "sim/engine.hpp"

#include <limits>
#include <utility>

#include "core/log.hpp"
#include "sim/process.hpp"

namespace iofwd::sim {

Engine::EventId Engine::schedule_at(SimTime t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  const EventId id = next_id_++;
  heap_.push(Ev{t, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

void Engine::cancel(EventId id) {
  if (callbacks_.erase(id) > 0) {
    cancelled_.insert(id);  // heap entry removed lazily in fire_next
  }
}

void Engine::spawn(Proc<void> p) {
  auto h = p.release_detached();
  schedule_at(now_, [h] { h.resume(); });
}

bool Engine::fire_next(SimTime limit) {
  while (!heap_.empty()) {
    const Ev ev = heap_.top();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      heap_.pop();
      cancelled_.erase(it);
      continue;
    }
    if (ev.t > limit) return false;
    heap_.pop();
    auto node = callbacks_.extract(ev.id);
    assert(!node.empty());
    now_ = ev.t;
    ++processed_;
    node.mapped()();
    return true;
  }
  return false;
}

std::uint64_t Engine::run() {
  const std::uint64_t start = processed_;
  while (!stopped_ && fire_next(std::numeric_limits<SimTime>::max())) {
  }
  return processed_ - start;
}

std::uint64_t Engine::run_until(SimTime t) {
  const std::uint64_t start = processed_;
  while (!stopped_ && fire_next(t)) {
  }
  if (now_ < t) now_ = t;
  return processed_ - start;
}

}  // namespace iofwd::sim
