#include "sim/fluid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/units.hpp"
#include "sim/sync.hpp"

namespace iofwd::sim {

namespace {
// Work below this threshold counts as complete (absorbs rounding residue
// from integer event times).
constexpr double kEpsilonUnits = 1e-6;
}  // namespace

FluidResource::FluidResource(Engine& eng, CapacityFn total_rate, std::string name,
                             double per_flow_cap)
    : eng_(eng),
      total_rate_(std::move(total_rate)),
      name_(std::move(name)),
      per_flow_cap_(per_flow_cap) {}

FluidResource::~FluidResource() {
  if (timer_armed_) eng_.cancel(timer_);
}

double FluidResource::current_per_flow_rate() const { return rate_per_flow_; }

void FluidResource::add_flow(double units, std::coroutine_handle<> h) {
  advance();
  flows_.push_back(Flow{units, h});
  reschedule();
}

void FluidResource::advance() {
  const SimTime now = eng_.now();
  const SimTime dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0 || flows_.empty()) return;

  const double served_per_flow = rate_per_flow_ * static_cast<double>(dt);
  for (auto& f : flows_) {
    const double s = std::min(f.remaining, served_per_flow);
    f.remaining -= s;
    total_served_ += s;
  }
  busy_time_ += dt;
}

void FluidResource::reschedule() {
  if (timer_armed_) {
    eng_.cancel(timer_);
    timer_armed_ = false;
  }
  if (flows_.empty()) {
    rate_per_flow_ = 0;
    return;
  }

  const int n = static_cast<int>(flows_.size());
  const double total = total_rate_(n);
  assert(total > 0 && "fluid resource capacity must be positive while flows are active");
  rate_per_flow_ = std::min(total / n, per_flow_cap_);

  double min_rem = std::numeric_limits<double>::infinity();
  for (const auto& f : flows_) min_rem = std::min(min_rem, f.remaining);

  // Ceil so no completion fires early; the epsilon sweep in on_timer()
  // absorbs the sub-nanosecond residue.
  const double dt = std::max(0.0, min_rem - kEpsilonUnits) / rate_per_flow_;
  const auto delay = static_cast<SimTime>(std::ceil(dt));
  timer_ = eng_.schedule_after(delay, [this] { on_timer(); });
  timer_armed_ = true;
}

void FluidResource::on_timer() {
  timer_armed_ = false;
  advance();

  // Complete every flow whose remaining work is (numerically) zero.
  std::vector<std::coroutine_handle<>> done;
  auto it = flows_.begin();
  while (it != flows_.end()) {
    if (it->remaining <= kEpsilonUnits) {
      total_served_ += it->remaining;  // account the residue
      done.push_back(it->h);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  assert(!done.empty() && "completion timer fired with no completed flow");
  for (auto h : done) {
    eng_.schedule_after(0, [h] { h.resume(); });
  }
  reschedule();
}

// ---------------------------------------------------------------------------
// Link
// ---------------------------------------------------------------------------

Link::Link(Engine& eng, const LinkSpec& spec, std::string name)
    : eng_(eng),
      spec_(spec),
      overhead_factor_(1.0 + (spec.payload_unit_bytes > 0
                                  ? spec.header_bytes_per_unit / spec.payload_unit_bytes
                                  : 0.0)),
      fluid_(
          eng,
          [rate = mib_per_s_to_bytes_per_ns(spec.bandwidth_mib_s), k = spec.contention_per_flow,
           free = spec.contention_free_flows](int n) {
            if (k <= 0 || n <= free) return rate;
            return rate / (1.0 + k * static_cast<double>(n - free));
          },
          std::move(name), mib_per_s_to_bytes_per_ns(spec.per_flow_cap_mib_s)) {}

double Link::wire_bytes(std::uint64_t payload) const {
  return static_cast<double>(payload) * overhead_factor_;
}

double Link::effective_peak_mib_s() const {
  return spec_.bandwidth_mib_s / overhead_factor_;
}

Proc<void> Link::transfer(std::uint64_t payload_bytes) {
  if (spec_.latency_ns > 0) co_await Delay{eng_, spec_.latency_ns};
  if (payload_bytes > 0) {
    total_payload_ += static_cast<double>(payload_bytes);
    co_await fluid_.consume(wire_bytes(payload_bytes));
  }
}

// ---------------------------------------------------------------------------
// CpuPool
// ---------------------------------------------------------------------------

CpuPool::CpuPool(Engine& eng, const CpuSpec& spec, std::string name)
    : spec_(spec),
      // The capacity callback captures `this`, which is safe: FluidResource
      // is non-copyable and non-movable, so CpuPool is pinned too, and
      // effective_cores() only reads spec_, initialized before fluid_.
      // Per-flow cap of 1.0: a single task cannot use more than one core.
      fluid_(
          eng, [this](int n) { return effective_cores(n); }, std::move(name),
          /*per_flow_cap=*/1.0) {}

double CpuPool::effective_cores(int runnable) const {
  if (runnable <= 0) return 0;
  const int on_core = std::min(runnable, spec_.cores);
  // Cache/memory-bus contention among co-running tasks.
  double cap = static_cast<double>(on_core) /
               (1.0 + spec_.share_penalty * static_cast<double>(on_core - 1));
  // Scheduling overhead once runnable > cores (saturating).
  if (runnable > spec_.cores) {
    const double excess = static_cast<double>(runnable - spec_.cores);
    const double sat = spec_.switch_saturation > 0 ? excess / spec_.switch_saturation : 0.0;
    cap /= 1.0 + spec_.switch_penalty * excess / (1.0 + sat);
  }
  return cap;
}

}  // namespace iofwd::sim
