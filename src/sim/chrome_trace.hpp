// Chrome-trace exporter for simulated runs.
//
// Records spans/instants/counters against *simulated* time and writes the
// Trace Event Format JSON that chrome://tracing and Perfetto load, so a
// forwarding run can be inspected visually: per-CN operation spans, worker
// batches, queue-depth counters.
//
//   ChromeTracer tracer(engine);
//   { auto s = tracer.span("write", "cn", /*tid=*/cn); co_await ...; }
//   tracer.counter("queue_depth", depth);
//   tracer.write_json("trace.json");
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "sim/engine.hpp"

namespace iofwd::sim {

class ChromeTracer {
 public:
  explicit ChromeTracer(Engine& eng) : eng_(eng) {}
  ChromeTracer(const ChromeTracer&) = delete;
  ChromeTracer& operator=(const ChromeTracer&) = delete;

  // RAII span: emits a complete ("X") event covering construction to
  // destruction in simulated time.
  class Span {
   public:
    Span(Span&& o) noexcept
        : tracer_(o.tracer_), name_(std::move(o.name_)), cat_(std::move(o.cat_)),
          tid_(o.tid_), start_(o.start_) {
      o.tracer_ = nullptr;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span& operator=(Span&&) = delete;
    ~Span() { finish(); }

    void finish() {
      if (tracer_ != nullptr) {
        tracer_->complete(name_, cat_, tid_, start_, tracer_->eng_.now());
        tracer_ = nullptr;
      }
    }

   private:
    friend class ChromeTracer;
    Span(ChromeTracer* t, std::string name, std::string cat, int tid)
        : tracer_(t), name_(std::move(name)), cat_(std::move(cat)), tid_(tid),
          start_(t->eng_.now()) {}
    ChromeTracer* tracer_;
    std::string name_;
    std::string cat_;
    int tid_;
    SimTime start_;
  };

  [[nodiscard]] Span span(std::string name, std::string cat, int tid) {
    return Span(this, std::move(name), std::move(cat), tid);
  }

  void instant(const std::string& name, const std::string& cat, int tid);
  void counter(const std::string& name, double value);
  void complete(const std::string& name, const std::string& cat, int tid, SimTime start,
                SimTime end);

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }

  // Serialize to the Trace Event Format (JSON array form).
  [[nodiscard]] std::string to_json() const;
  Status write_json(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'X' complete, 'i' instant, 'C' counter
    std::string name;
    std::string cat;
    int tid;
    SimTime ts;
    SimTime dur;   // X only
    double value;  // C only
  };

  Engine& eng_;
  std::vector<Event> events_;
};

}  // namespace iofwd::sim
