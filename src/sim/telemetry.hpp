// Telemetry: periodic sampling of resource usage during a simulation.
//
// A Sampler process wakes every `period` of simulated time and reads each
// registered gauge's cumulative work, yielding per-window utilization
// series — how busy the tree, the ION cores, and the NIC were over the run.
// The diag tool and benches use it to show *where* each mechanism's
// bottleneck sits.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/units.hpp"
#include "sim/engine.hpp"
#include "sim/fluid.hpp"
#include "sim/process.hpp"
#include "sim/sync.hpp"

namespace iofwd::sim {

class Telemetry {
 public:
  Telemetry(Engine& eng, SimTime period_ns) : eng_(eng), period_(period_ns) {}
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  // Track any cumulative-work gauge. `capacity_per_ns` converts work/ns
  // into a utilization fraction.
  void track(std::string name, std::function<double()> cumulative_work, double capacity_per_ns);

  // Convenience adapters.
  void track_link(std::string name, Link& link) {
    track(std::move(name), [&link] { return link.total_payload_bytes(); },
          iofwd::mib_per_s_to_bytes_per_ns(link.effective_peak_mib_s()));
  }
  void track_cpu(std::string name, CpuPool& cpu) {
    track(std::move(name), [&cpu] { return cpu.total_cpu_ns(); },
          static_cast<double>(cpu.spec().cores));
  }

  // Spawn the sampler on the engine. It re-arms itself each period until
  // stop() is called (call stop() before the final engine drain so the
  // sampler does not keep the event queue alive forever).
  void start();
  void stop() { running_ = false; }

  struct Series {
    std::string name;
    double capacity;
    std::vector<double> utilization;  // one entry per elapsed window
  };
  [[nodiscard]] const std::vector<Series>& series() const { return series_; }
  [[nodiscard]] SimTime period() const { return period_; }

  // Mean utilization over all complete windows (0 if none).
  [[nodiscard]] double mean_utilization(const std::string& name) const;

  [[nodiscard]] std::string render() const;  // ascii sparkline per series

 private:
  struct Gauge {
    std::function<double()> cumulative;
    double last = 0;
  };

  Proc<void> sampler();

  Engine& eng_;
  SimTime period_;
  bool running_ = false;
  std::vector<Gauge> gauges_;
  std::vector<Series> series_;
};

}  // namespace iofwd::sim
