#include "sim/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace iofwd::sim {

void Telemetry::track(std::string name, std::function<double()> cumulative_work,
                      double capacity_per_ns) {
  gauges_.push_back(Gauge{std::move(cumulative_work), 0});
  series_.push_back(Series{std::move(name), capacity_per_ns, {}});
}

void Telemetry::start() {
  running_ = true;
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    gauges_[i].last = gauges_[i].cumulative();
  }
  eng_.spawn(sampler());
}

Proc<void> Telemetry::sampler() {
  while (running_) {
    co_await Delay{eng_, period_};
    if (!running_) break;
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
      const double now_total = gauges_[i].cumulative();
      const double work = now_total - gauges_[i].last;
      gauges_[i].last = now_total;
      const double cap_work = series_[i].capacity * static_cast<double>(period_);
      series_[i].utilization.push_back(cap_work > 0 ? work / cap_work : 0.0);
    }
  }
}

double Telemetry::mean_utilization(const std::string& name) const {
  for (const auto& s : series_) {
    if (s.name != name || s.utilization.empty()) continue;
    double sum = 0;
    for (double u : s.utilization) sum += u;
    return sum / static_cast<double>(s.utilization.size());
  }
  return 0.0;
}

std::string Telemetry::render() const {
  static constexpr const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#", "%", "@"};
  std::ostringstream os;
  std::size_t width = 0;
  for (const auto& s : series_) width = std::max(width, s.name.size());
  for (const auto& s : series_) {
    os << s.name << std::string(width - s.name.size(), ' ') << " |";
    for (double u : s.utilization) {
      const int lvl = std::clamp(static_cast<int>(std::lround(u * 9)), 0, 9);
      os << kLevels[lvl];
    }
    os << "| mean " << static_cast<int>(std::lround(mean_utilization(s.name) * 100)) << "%\n";
  }
  return os.str();
}

}  // namespace iofwd::sim
