#include "fault/retry.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

namespace iofwd::fault {

bool is_transient(Errc e) {
  switch (e) {
    case Errc::io_error:      // congested/ flaky storage: worth another try
    case Errc::timed_out:     // deadline pressure may clear
    case Errc::would_block:   // resource momentarily unavailable
      return true;
    case Errc::ok:
    case Errc::bad_descriptor:
    case Errc::invalid_argument:
    case Errc::no_memory:
    case Errc::not_connected:
    case Errc::message_too_large:
    case Errc::protocol_error:
    case Errc::shutdown:
    case Errc::deferred_io_error:
    case Errc::unsupported:
    case Errc::internal:
      return false;
  }
  return false;
}

RetryingBackend::RetryingBackend(std::unique_ptr<rt::IoBackend> inner, RetryPolicy policy)
    : inner_(std::move(inner)), policy_(policy), rng_(policy.seed) {
  assert(inner_ && "RetryingBackend needs an inner backend");
  policy_.max_attempts = std::max(1, policy_.max_attempts);
  policy_.jitter = std::clamp(policy_.jitter, 0.0, 1.0);
}

std::chrono::nanoseconds RetryingBackend::backoff_for(int attempt) {
  auto backoff = std::chrono::duration_cast<std::chrono::microseconds>(
      policy_.base_backoff * (1ll << std::min(attempt - 1, 20)));
  backoff = std::min(backoff, policy_.max_backoff);
  double scale = 1.0;
  if (policy_.jitter > 0.0) {
    std::scoped_lock lock(rng_mu_);
    scale = 1.0 - policy_.jitter + 2.0 * policy_.jitter * rng_.uniform01();
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::micro>(
          static_cast<double>(backoff.count()) * scale));
}

template <typename Op>
auto RetryingBackend::with_retries(Op&& op) -> decltype(op()) {
  for (int attempt = 1;; ++attempt) {
    attempts_.fetch_add(1, std::memory_order_relaxed);
    auto r = op();
    const Errc code = r.is_ok() ? Errc::ok : r.status().code();
    if (code == Errc::ok || !is_transient(code)) return r;
    if (attempt >= policy_.max_attempts) {
      giveups_.fetch_add(1, std::memory_order_relaxed);
      return r;
    }
    const auto delay = backoff_for(attempt);
    std::this_thread::sleep_for(delay);
    backoff_ns_.fetch_add(static_cast<std::uint64_t>(delay.count()),
                          std::memory_order_relaxed);
    retries_.fetch_add(1, std::memory_order_relaxed);
  }
}

namespace {
// Adapter so with_retries can treat Status like Result (status()/is_ok()).
struct StatusLike {
  Status st;
  [[nodiscard]] bool is_ok() const { return st.is_ok(); }
  [[nodiscard]] Status status() const { return st; }
};
}  // namespace

Status RetryingBackend::open(int fd, const std::string& path) {
  return with_retries([&] { return StatusLike{inner_->open(fd, path)}; }).st;
}

Result<std::uint64_t> RetryingBackend::write(int fd, std::uint64_t offset,
                                             std::span<const std::byte> data) {
  return with_retries([&] { return inner_->write(fd, offset, data); });
}

Result<std::uint64_t> RetryingBackend::read(int fd, std::uint64_t offset,
                                            std::span<std::byte> out) {
  return with_retries([&] { return inner_->read(fd, offset, out); });
}

Status RetryingBackend::fsync(int fd) {
  return with_retries([&] { return StatusLike{inner_->fsync(fd)}; }).st;
}

Status RetryingBackend::close(int fd) {
  return with_retries([&] { return StatusLike{inner_->close(fd)}; }).st;
}

Result<std::uint64_t> RetryingBackend::size(int fd) {
  return with_retries([&] { return inner_->size(fd); });
}

RetryStats RetryingBackend::stats() const {
  RetryStats s;
  s.attempts = attempts_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.giveups = giveups_.load(std::memory_order_relaxed);
  s.backoff_ns = backoff_ns_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace iofwd::fault
