#include "fault/retry.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

namespace iofwd::fault {

bool is_transient(Errc e) {
  switch (e) {
    case Errc::io_error:       // congested/ flaky storage: worth another try
    case Errc::timed_out:      // deadline pressure may clear
    case Errc::would_block:    // resource momentarily unavailable
    case Errc::checksum_error: // bits flipped in flight: a resend is fresh bits
      return true;
    case Errc::ok:
    case Errc::bad_descriptor:
    case Errc::invalid_argument:
    case Errc::no_memory:
    case Errc::not_connected:
    case Errc::message_too_large:
    case Errc::protocol_error:
    case Errc::shutdown:
    case Errc::deferred_io_error:
    case Errc::unsupported:
    case Errc::internal:
      return false;
  }
  return false;
}

RetryingBackend::RetryingBackend(std::unique_ptr<rt::IoBackend> inner, RetryPolicy policy)
    : inner_(std::move(inner)),
      policy_(policy),
      rng_(policy.seed),
      owned_registry_(policy.registry != nullptr ? nullptr
                                                 : std::make_unique<obs::MetricRegistry>()),
      reg_(policy.registry != nullptr ? policy.registry : owned_registry_.get()),
      c_attempts_(reg_->counter("retry.attempts")),
      c_retries_(reg_->counter("retry.retries")),
      c_giveups_(reg_->counter("retry.giveups")),
      c_backoff_ns_(reg_->counter("retry.backoff_ns")) {
  assert(inner_ && "RetryingBackend needs an inner backend");
  policy_.max_attempts = std::max(1, policy_.max_attempts);
  policy_.jitter = std::clamp(policy_.jitter, 0.0, 1.0);
}

std::chrono::nanoseconds RetryingBackend::backoff_for(int attempt) {
  auto backoff = std::chrono::duration_cast<std::chrono::microseconds>(
      policy_.base_backoff * (1ll << std::min(attempt - 1, 20)));
  backoff = std::min(backoff, policy_.max_backoff);
  double scale = 1.0;
  if (policy_.jitter > 0.0) {
    std::scoped_lock lock(rng_mu_);
    scale = 1.0 - policy_.jitter + 2.0 * policy_.jitter * rng_.uniform01();
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::micro>(
          static_cast<double>(backoff.count()) * scale));
}

template <typename Op>
auto RetryingBackend::with_retries(Op&& op) -> decltype(op()) {
  for (int attempt = 1;; ++attempt) {
    c_attempts_.inc();
    auto r = op();
    const Errc code = r.is_ok() ? Errc::ok : r.status().code();
    if (code == Errc::ok || !is_transient(code)) return r;
    if (attempt >= policy_.max_attempts) {
      c_giveups_.inc();
      return r;
    }
    const auto delay = backoff_for(attempt);
    std::this_thread::sleep_for(delay);
    c_backoff_ns_.add(static_cast<std::uint64_t>(delay.count()));
    c_retries_.inc();
  }
}

namespace {
// Adapter so with_retries can treat Status like Result (status()/is_ok()).
struct StatusLike {
  Status st;
  [[nodiscard]] bool is_ok() const { return st.is_ok(); }
  [[nodiscard]] Status status() const { return st; }
};
}  // namespace

Status RetryingBackend::open(int fd, const std::string& path) {
  return with_retries([&] { return StatusLike{inner_->open(fd, path)}; }).st;
}

Result<std::uint64_t> RetryingBackend::write(int fd, std::uint64_t offset,
                                             std::span<const std::byte> data) {
  return with_retries([&] { return inner_->write(fd, offset, data); });
}

Result<std::uint64_t> RetryingBackend::read(int fd, std::uint64_t offset,
                                            std::span<std::byte> out) {
  return with_retries([&] { return inner_->read(fd, offset, out); });
}

Status RetryingBackend::fsync(int fd) {
  return with_retries([&] { return StatusLike{inner_->fsync(fd)}; }).st;
}

Status RetryingBackend::close(int fd) {
  return with_retries([&] { return StatusLike{inner_->close(fd)}; }).st;
}

Result<std::uint64_t> RetryingBackend::size(int fd) {
  return with_retries([&] { return inner_->size(fd); });
}

RetryStats RetryingBackend::stats() const {
  RetryStats s;
  s.attempts = c_attempts_.value();
  s.retries = c_retries_.value();
  s.giveups = c_giveups_.value();
  s.backoff_ns = c_backoff_ns_.value();
  return s;
}

}  // namespace iofwd::fault
