#include "fault/decorators.hpp"

#include <cassert>
#include <cstring>
#include <thread>
#include <vector>

#include "core/rng.hpp"

namespace iofwd::fault {

namespace {

// Damage `n` bytes at `p` in place according to the injection verdict.
// bit_flip inverts one seeded bit; garbage rewrites a seeded 16-byte window
// with seeded noise. Both leave the length intact (truncation is handled by
// the callers, which own the close semantics).
void corrupt_bytes(const Injection& inj, unsigned char* p, std::size_t n) {
  if (n == 0) return;
  if (inj.action == FaultAction::bit_flip) {
    const std::uint64_t bit = inj.entropy % (static_cast<std::uint64_t>(n) * 8);
    p[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
  } else if (inj.action == FaultAction::garbage) {
    Rng noise(inj.entropy);
    const std::size_t start = static_cast<std::size_t>(inj.entropy % n);
    const std::size_t len = std::min<std::size_t>(16, n - start);
    for (std::size_t i = 0; i < len; ++i) {
      p[start + i] = static_cast<unsigned char>(noise.below(256));
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultyBackend
// ---------------------------------------------------------------------------

FaultyBackend::FaultyBackend(std::unique_ptr<rt::IoBackend> inner,
                             std::shared_ptr<FaultPlan> plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {
  assert(inner_ && "FaultyBackend needs an inner backend");
  if (!plan_) plan_ = std::make_shared<FaultPlan>();
}

Status FaultyBackend::gate(OpKind k) {
  Injection inj = plan_->next(k);
  if (inj.latency.count() > 0) std::this_thread::sleep_for(inj.latency);
  if (inj.crashes() && crash_hook_) crash_hook_();
  return inj.status;
}

Status FaultyBackend::open(int fd, const std::string& path) {
  if (Status st = gate(OpKind::open); !st.is_ok()) return st;
  return inner_->open(fd, path);
}

Result<std::uint64_t> FaultyBackend::write(int fd, std::uint64_t offset,
                                           std::span<const std::byte> data) {
  if (Status st = gate(OpKind::write); !st.is_ok()) return st;
  return inner_->write(fd, offset, data);
}

Result<std::uint64_t> FaultyBackend::read(int fd, std::uint64_t offset,
                                          std::span<std::byte> out) {
  if (Status st = gate(OpKind::read); !st.is_ok()) return st;
  return inner_->read(fd, offset, out);
}

Status FaultyBackend::fsync(int fd) {
  if (Status st = gate(OpKind::fsync); !st.is_ok()) return st;
  return inner_->fsync(fd);
}

Status FaultyBackend::close(int fd) {
  if (Status st = gate(OpKind::close); !st.is_ok()) return st;
  return inner_->close(fd);
}

Result<std::uint64_t> FaultyBackend::size(int fd) {
  if (Status st = gate(OpKind::size); !st.is_ok()) return st;
  return inner_->size(fd);
}

// ---------------------------------------------------------------------------
// FaultyStream
// ---------------------------------------------------------------------------

FaultyStream::FaultyStream(std::unique_ptr<rt::ByteStream> inner,
                           std::shared_ptr<FaultPlan> plan, StreamFaultConfig cfg)
    : inner_(std::move(inner)), plan_(std::move(plan)), cfg_(cfg) {
  assert(inner_ && "FaultyStream needs an inner stream");
  if (!plan_) plan_ = std::make_shared<FaultPlan>();
}

FaultyStream::FaultyStream(std::unique_ptr<rt::ByteStream> inner,
                           std::uint64_t cut_after_write_bytes)
    : FaultyStream(std::move(inner), nullptr,
                   StreamFaultConfig{.cut_after_write_bytes = cut_after_write_bytes}) {}

Status FaultyStream::read_exact(void* buf, std::size_t n) {
  // Consult the plan only AFTER the inner read succeeds. A read that fails
  // (the peer already dropped the line) delivers nothing, so an injection
  // on it could never be observed by any validator — counting it as fired
  // would make fired() race against the peer's close timing. The stream is
  // closed on every non-ok injection anyway, so consuming the bytes before
  // deciding changes nothing the caller can observe.
  Status st = inner_->read_exact(buf, n);
  if (!st.is_ok()) return st;
  Injection inj = plan_->next(OpKind::stream_read);
  if (inj.latency.count() > 0) std::this_thread::sleep_for(inj.latency);
  if (!inj.status.is_ok()) {
    inner_->close();
    return inj.status;
  }
  if (inj.action == FaultAction::truncate) {
    // The peer "sent" only a prefix before the line died: the caller sees
    // the cut; the bytes it read stand in for the delivered prefix.
    inner_->close();
    return Status(Errc::shutdown, "injected truncation");
  }
  if (inj.corrupts()) {
    corrupt_bytes(inj, static_cast<unsigned char*>(buf), n);
  }
  return st;
}

Result<std::size_t> FaultyStream::read_some(void* buf, std::size_t n) {
  auto r = inner_->read_some(buf, n);
  if (!r.is_ok()) return r;  // would_block / EOF: no plan consultation
  Injection inj = plan_->next(OpKind::stream_read);
  if (inj.latency.count() > 0) std::this_thread::sleep_for(inj.latency);
  if (!inj.status.is_ok()) {
    inner_->close();
    return inj.status;
  }
  if (inj.action == FaultAction::truncate) {
    // The bytes already read stand in for the delivered prefix; the line
    // dies before anything else arrives.
    inner_->close();
    return Status(Errc::shutdown, "injected truncation");
  }
  if (inj.corrupts()) {
    corrupt_bytes(inj, static_cast<unsigned char*>(buf), r.value());
  }
  return r;
}

Result<std::size_t> FaultyStream::write_some(const void* buf, std::size_t n) {
  Injection inj = plan_->next(OpKind::stream_write);
  if (inj.latency.count() > 0) std::this_thread::sleep_for(inj.latency);
  if (!inj.status.is_ok()) {
    inner_->close();
    return inj.status;
  }
  if (inj.action == FaultAction::truncate) {
    const std::size_t keep = n > 0 ? static_cast<std::size_t>(inj.entropy % n) : 0;
    if (keep > 0) (void)inner_->write_all(buf, keep);
    inner_->close();
    return Status(Errc::shutdown, "injected truncation");
  }
  std::vector<unsigned char> damaged;
  if (inj.corrupts() && n > 0) {
    // Damage a copy; only the accepted prefix carries the injected bytes —
    // the caller resends the rest from its own (clean) buffer.
    damaged.assign(static_cast<const unsigned char*>(buf),
                   static_cast<const unsigned char*>(buf) + n);
    corrupt_bytes(inj, damaged.data(), n);
    buf = damaged.data();
  }
  if (cfg_.cut_after_write_bytes > 0) {
    std::scoped_lock lock(mu_);
    if (cut_) return Status(Errc::shutdown, "injected cut");
    const std::uint64_t budget = cfg_.cut_after_write_bytes - written_;
    const std::size_t attempt = static_cast<std::size_t>(std::min<std::uint64_t>(budget, n));
    auto r = inner_->write_some(buf, attempt);
    if (!r.is_ok()) return r;
    written_ += r.value();
    if (written_ >= cfg_.cut_after_write_bytes) {
      // The budget's prefix was delivered; the line drops now.
      inner_->close();
      cut_ = true;
      if (r.value() == 0) return Status(Errc::shutdown, "injected cut");
    }
    return r;
  }
  return inner_->write_some(buf, n);
}

Status FaultyStream::write_all(const void* buf, std::size_t n) {
  Injection inj = plan_->next(OpKind::stream_write);
  if (inj.latency.count() > 0) std::this_thread::sleep_for(inj.latency);
  if (!inj.status.is_ok()) {
    inner_->close();
    return inj.status;
  }
  if (inj.action == FaultAction::truncate) {
    // Deliver a seeded-length prefix, then drop the line (the caller sees
    // the cut; the peer sees a half frame followed by EOF).
    const std::size_t keep = n > 0 ? static_cast<std::size_t>(inj.entropy % n) : 0;
    if (keep > 0) (void)inner_->write_all(buf, keep);
    inner_->close();
    return Status(Errc::shutdown, "injected truncation");
  }
  std::vector<unsigned char> damaged;
  if (inj.corrupts() && n > 0) {
    damaged.assign(static_cast<const unsigned char*>(buf),
                   static_cast<const unsigned char*>(buf) + n);
    corrupt_bytes(inj, damaged.data(), n);
    buf = damaged.data();
  }
  if (cfg_.cut_after_write_bytes > 0) {
    std::scoped_lock lock(mu_);
    if (cut_) return Status(Errc::shutdown, "injected cut");
    if (written_ + n >= cfg_.cut_after_write_bytes) {
      // Deliver the prefix that fits the budget, then drop the line.
      const std::uint64_t budget = cfg_.cut_after_write_bytes - written_;
      (void)inner_->write_all(buf, static_cast<std::size_t>(std::min<std::uint64_t>(budget, n)));
      inner_->close();
      cut_ = true;
      return Status(Errc::shutdown, "injected cut");
    }
    written_ += n;
  }
  return inner_->write_all(buf, n);
}

void FaultyStream::close() { inner_->close(); }

}  // namespace iofwd::fault
