// Retry with capped exponential backoff for transient backend failures.
//
// The paper's deferred-error design (Sec. IV) reports asynchronous failures
// on a later operation — but a transient EIO from a congested file system
// should never get that far. RetryingBackend sits between the executing
// layer (server workers, burst-buffer flushers) and the terminal backend
// and retries operations whose error the classifier deems transient, with
// capped exponential backoff, seeded jitter (so a thundering herd of
// workers desynchronizes deterministically), and a per-op attempt budget.
// Permanent errors (bad descriptor, invalid argument) surface immediately.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>

#include "core/rng.hpp"
#include "obs/metrics.hpp"
#include "rt/backend.hpp"

namespace iofwd::fault {

// Error classifier: transient errors are worth retrying (the same call may
// succeed a moment later); permanent ones never will.
[[nodiscard]] bool is_transient(Errc e);

struct RetryPolicy {
  int max_attempts = 4;  // total tries per op, including the first (1 = no retry)
  std::chrono::microseconds base_backoff{100};
  std::chrono::microseconds max_backoff{20'000};
  double jitter = 0.5;        // backoff scaled by uniform [1-jitter, 1+jitter]
  std::uint64_t seed = 0x5eed;  // jitter rng stream
  // Shared metric registry for the "retry.*" namespace (null = the backend
  // owns a private one). See DESIGN.md §11.
  obs::MetricRegistry* registry = nullptr;
};

// Snapshot view over the registry's "retry.*" counters, assembled by
// stats(). Deprecated as an API surface; retained so existing tests and
// benches read fields unchanged.
struct RetryStats {
  std::uint64_t attempts = 0;   // operations issued to the inner backend
  std::uint64_t retries = 0;    // re-issues after a transient failure
  std::uint64_t giveups = 0;    // ops that exhausted the attempt budget
  std::uint64_t backoff_ns = 0;  // total time slept between attempts
};

class RetryingBackend final : public rt::IoBackend {
 public:
  RetryingBackend(std::unique_ptr<rt::IoBackend> inner, RetryPolicy policy = {});

  Status open(int fd, const std::string& path) override;
  Result<std::uint64_t> write(int fd, std::uint64_t offset,
                              std::span<const std::byte> data) override;
  Result<std::uint64_t> read(int fd, std::uint64_t offset, std::span<std::byte> out) override;
  Status fsync(int fd) override;
  Status close(int fd) override;
  Result<std::uint64_t> size(int fd) override;

  [[nodiscard]] RetryStats stats() const;
  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }
  [[nodiscard]] rt::IoBackend& inner() { return *inner_; }
  // The registry backing stats() — owned unless RetryPolicy::registry was set.
  [[nodiscard]] obs::MetricRegistry& registry() const { return *reg_; }

 private:
  // Retry loop shared by every op: calls `op` up to max_attempts times,
  // backing off between transient failures.
  template <typename Op>
  auto with_retries(Op&& op) -> decltype(op());

  // Backoff for the attempt that just failed (1-based), jittered.
  [[nodiscard]] std::chrono::nanoseconds backoff_for(int attempt);

  std::unique_ptr<rt::IoBackend> inner_;
  RetryPolicy policy_;

  std::mutex rng_mu_;
  Rng rng_;

  // Registry-backed counters ("retry.*"); replaces the old private atomics.
  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::MetricRegistry* reg_;  // never null
  obs::Counter& c_attempts_;
  obs::Counter& c_retries_;
  obs::Counter& c_giveups_;
  obs::Counter& c_backoff_ns_;
};

}  // namespace iofwd::fault
