// Deterministic, seeded fault injection for the forwarding runtime.
//
// A FaultPlan is a thread-safe schedule of FaultRules. Decorators
// (FaultyBackend, FaultyStream) ask the plan before every operation whether
// to inject a fault and/or latency; the plan decides from per-rule op
// counters and a seeded Rng, so a chaos run is reproducible bit-for-bit
// from its seed. Rules distinguish transient faults (fire for a bounded
// burst of matching calls, then clear) from permanent ones (once triggered,
// fire forever) — mirroring the retry classifier's worldview.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/rng.hpp"
#include "core/status.hpp"

namespace iofwd::fault {

// The operation classes decorators report to the plan.
enum class OpKind : std::uint8_t {
  open = 0,
  write,
  read,
  fsync,
  close,
  size,
  stream_read,   // ByteStream::read_exact
  stream_write,  // ByteStream::write_all
  any,           // rule wildcard: matches every op
};

[[nodiscard]] const char* to_string(OpKind k);
inline constexpr std::size_t kOpKinds = 9;

// What a firing rule does to the operation. `fail` bounces it with
// FaultRule::error (the classic injection). The corruption actions model a
// flaky link rather than a refusing one: the operation "succeeds" but the
// bytes are damaged in flight — only FaultyStream honors them (a backend
// has no wire to corrupt).
enum class FaultAction : std::uint8_t {
  fail = 0,
  bit_flip,  // deliver every byte, one bit inverted at a seeded position
  truncate,  // deliver a seeded-length prefix, then drop the line
  garbage,   // overwrite a seeded 16-byte window with seeded noise
  crash,     // process-level chaos: bounce the op AND fire the decorator's
             // crash hook (FaultyBackend::set_crash_hook), which the chaos
             // harness wires to kill_shard() — modelling the ION dying
             // mid-operation rather than merely refusing one
};

[[nodiscard]] const char* to_string(FaultAction a);

struct FaultRule {
  OpKind op = OpKind::any;
  FaultAction action = FaultAction::fail;
  // Trigger (pick one): fire starting at the nth matching call (1-based),
  // or independently per call with `probability` (seeded).
  std::uint64_t nth = 0;
  double probability = 0.0;
  // Transient rules fire for `burst` consecutive matching calls once
  // triggered, then clear (nth rules expire; probability rules re-arm).
  // Permanent rules latch: once triggered they fire on every later call.
  bool transient = true;
  std::uint64_t burst = 1;
  Errc error = Errc::io_error;
  // Injected latency applies whenever the rule fires (and also with
  // error == Errc::ok, which makes a pure slow-down rule).
  std::chrono::microseconds latency{0};
};

// What a decorator should do for one operation.
struct Injection {
  Status status;  // ok = execute the real operation
  std::chrono::microseconds latency{0};
  // Corruption verdict (status stays ok — the op proceeds with bad bytes).
  FaultAction action = FaultAction::fail;
  // Seeded randomness for the corruption (bit position, window offset,
  // noise seed), drawn under the plan lock so runs stay reproducible.
  std::uint64_t entropy = 0;

  [[nodiscard]] bool corrupts() const {
    // crash is deliberately excluded: it bounces the op (non-ok status) and
    // pulls the crash hook; it never delivers damaged bytes.
    return action == FaultAction::bit_flip || action == FaultAction::truncate ||
           action == FaultAction::garbage;
  }
  [[nodiscard]] bool crashes() const { return action == FaultAction::crash; }
  [[nodiscard]] bool fired() const {
    return !status.is_ok() || corrupts() || latency.count() > 0;
  }
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0x1005d) : rng_(seed) {}

  void add(FaultRule rule);
  // Drop every rule and reset counters (test disarm).
  void clear();
  // Convenience arming used by tests: fail every matching call until
  // clear() — a permanent rule with probability 1.
  void fail_always(OpKind op, Errc error);

  // Decide for the next operation of kind `k`. Thread-safe; at most one
  // rule fires per call (first match in insertion order wins).
  Injection next(OpKind k);

  // Total faults injected (non-ok decisions) since construction/clear().
  [[nodiscard]] std::uint64_t fired() const;
  // Faults injected for a specific op kind.
  [[nodiscard]] std::uint64_t fired(OpKind k) const;
  // Matching calls seen for a specific op kind (fired or not).
  [[nodiscard]] std::uint64_t calls(OpKind k) const;

 private:
  struct RuleState {
    FaultRule rule;
    std::uint64_t seen = 0;      // matching calls observed by this rule
    std::uint64_t burst_left = 0;  // transient: remaining consecutive fires
    bool latched = false;        // permanent: triggered at least once
    bool expired = false;        // transient nth rule fully consumed
  };

  mutable std::mutex mu_;
  Rng rng_;
  std::vector<RuleState> rules_;
  std::uint64_t fired_total_ = 0;
  std::uint64_t fired_by_kind_[kOpKinds] = {};
  std::uint64_t calls_by_kind_[kOpKinds] = {};
};

}  // namespace iofwd::fault
