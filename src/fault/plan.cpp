#include "fault/plan.hpp"

namespace iofwd::fault {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::open: return "open";
    case OpKind::write: return "write";
    case OpKind::read: return "read";
    case OpKind::fsync: return "fsync";
    case OpKind::close: return "close";
    case OpKind::size: return "size";
    case OpKind::stream_read: return "stream_read";
    case OpKind::stream_write: return "stream_write";
    case OpKind::any: return "any";
  }
  return "?";
}

const char* to_string(FaultAction a) {
  switch (a) {
    case FaultAction::fail: return "fail";
    case FaultAction::bit_flip: return "bit_flip";
    case FaultAction::truncate: return "truncate";
    case FaultAction::garbage: return "garbage";
    case FaultAction::crash: return "crash";
  }
  return "?";
}

void FaultPlan::add(FaultRule rule) {
  std::scoped_lock lock(mu_);
  RuleState s;
  s.rule = rule;
  rules_.push_back(s);
}

void FaultPlan::clear() {
  std::scoped_lock lock(mu_);
  rules_.clear();
  fired_total_ = 0;
  for (auto& c : fired_by_kind_) c = 0;
  for (auto& c : calls_by_kind_) c = 0;
}

void FaultPlan::fail_always(OpKind op, Errc error) {
  FaultRule r;
  r.op = op;
  r.probability = 1.0;
  r.transient = false;
  r.error = error;
  add(r);
}

Injection FaultPlan::next(OpKind k) {
  std::scoped_lock lock(mu_);
  ++calls_by_kind_[static_cast<std::size_t>(k)];
  Injection inj;
  for (auto& s : rules_) {
    if (s.expired) continue;
    if (s.rule.op != OpKind::any && s.rule.op != k) continue;
    ++s.seen;

    bool fire = false;
    if (s.latched) {
      fire = true;  // permanent rule already triggered
    } else if (s.burst_left > 0) {
      fire = true;  // transient rule mid-burst
      --s.burst_left;
      if (s.burst_left == 0 && s.rule.nth > 0) s.expired = true;
    } else if (s.rule.nth > 0) {
      if (s.seen == s.rule.nth) {
        fire = true;
        if (s.rule.transient) {
          s.burst_left = s.rule.burst > 0 ? s.rule.burst - 1 : 0;
          if (s.burst_left == 0) s.expired = true;
        } else {
          s.latched = true;
        }
      }
    } else if (s.rule.probability > 0.0 && rng_.uniform01() < s.rule.probability) {
      fire = true;
      if (s.rule.transient) {
        s.burst_left = s.rule.burst > 0 ? s.rule.burst - 1 : 0;
      } else {
        s.latched = true;
      }
    }
    if (!fire) continue;

    inj.latency = s.rule.latency;
    if (s.rule.action == FaultAction::crash) {
      // The op bounces (the crashing ION never completed it) and the
      // decorator fires its crash hook; the rule's error is used as the
      // bounce shape (io_error by default).
      inj.action = FaultAction::crash;
      inj.status = Status(s.rule.error != Errc::ok ? s.rule.error : Errc::shutdown,
                          "injected crash");
      ++fired_total_;
      ++fired_by_kind_[static_cast<std::size_t>(k)];
    } else if (s.rule.action != FaultAction::fail) {
      // Corruption: the op proceeds (status ok) but the decorator damages
      // the bytes using plan-drawn entropy, keeping the run reproducible.
      inj.action = s.rule.action;
      inj.entropy = rng_.next();
      ++fired_total_;
      ++fired_by_kind_[static_cast<std::size_t>(k)];
    } else if (s.rule.error != Errc::ok) {
      inj.status = Status(s.rule.error, "injected fault");
      ++fired_total_;
      ++fired_by_kind_[static_cast<std::size_t>(k)];
    }
    break;  // first matching rule wins
  }
  return inj;
}

std::uint64_t FaultPlan::fired() const {
  std::scoped_lock lock(mu_);
  return fired_total_;
}

std::uint64_t FaultPlan::fired(OpKind k) const {
  std::scoped_lock lock(mu_);
  return fired_by_kind_[static_cast<std::size_t>(k)];
}

std::uint64_t FaultPlan::calls(OpKind k) const {
  std::scoped_lock lock(mu_);
  return calls_by_kind_[static_cast<std::size_t>(k)];
}

}  // namespace iofwd::fault
