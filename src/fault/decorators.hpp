// FaultPlan-driven decorators for the two fault domains of the runtime:
//
//   * FaultyBackend : rt::IoBackend — injects backend faults (EIO at flush
//     time, slow storage) below the server/burst-buffer stack.
//   * FaultyStream : rt::ByteStream — injects transport faults: connections
//     cut after a byte budget (the old test-local CuttingStream), dropped
//     mid-roundtrip, or slowed down.
//
// Both consult a shared FaultPlan, so one seeded schedule can coordinate
// transport and backend faults in a single chaos run. These replace the
// ad-hoc per-test helpers (CuttingStream, MemBackend::FaultHook).
#pragma once

#include <functional>
#include <memory>

#include "fault/plan.hpp"
#include "rt/backend.hpp"
#include "rt/transport.hpp"

namespace iofwd::fault {

class FaultyBackend final : public rt::IoBackend {
 public:
  FaultyBackend(std::unique_ptr<rt::IoBackend> inner, std::shared_ptr<FaultPlan> plan);

  Status open(int fd, const std::string& path) override;
  Result<std::uint64_t> write(int fd, std::uint64_t offset,
                              std::span<const std::byte> data) override;
  Result<std::uint64_t> read(int fd, std::uint64_t offset, std::span<std::byte> out) override;
  Status fsync(int fd) override;
  Status close(int fd) override;
  Result<std::uint64_t> size(int fd) override;

  [[nodiscard]] FaultPlan& plan() { return *plan_; }
  [[nodiscard]] rt::IoBackend& inner() { return *inner_; }

  // Fired when a FaultAction::crash rule hits one of this backend's ops.
  // The hook runs on the server worker thread executing the op, so it must
  // NOT synchronously stop/join that server (deadlock) — signal a chaos
  // driver thread instead (the harness sets a flag the test thread polls,
  // then calls kill_shard() from outside). Set before serving traffic.
  void set_crash_hook(std::function<void()> hook) { crash_hook_ = std::move(hook); }

 private:
  // Consult the plan; sleeps injected latency. Non-ok = bounce the op
  // (after firing the crash hook when the verdict is a crash).
  Status gate(OpKind k);

  std::unique_ptr<rt::IoBackend> inner_;
  std::shared_ptr<FaultPlan> plan_;
  std::function<void()> crash_hook_;
};

struct StreamFaultConfig {
  // Kill the connection once this end has written >= this many bytes
  // (CuttingStream semantics: the prefix is delivered, then the line drops).
  // 0 = no byte budget.
  std::uint64_t cut_after_write_bytes = 0;
};

class FaultyStream final : public rt::ByteStream {
 public:
  FaultyStream(std::unique_ptr<rt::ByteStream> inner, std::shared_ptr<FaultPlan> plan,
               StreamFaultConfig cfg = {});
  // Byte-budget-only convenience (the old CuttingStream constructor).
  FaultyStream(std::unique_ptr<rt::ByteStream> inner, std::uint64_t cut_after_write_bytes);

  Status read_exact(void* buf, std::size_t n) override;
  Status write_all(const void* buf, std::size_t n) override;
  void close() override;

  // Readiness forwards to the inner stream so a fault-wrapped connection can
  // still live on an epoll receiver/send lane. read_some consults the plan
  // only AFTER a successful inner read: would_block polls must not consume
  // injections, or fired() accounting would drift from delivered faults.
  // write_some consults it BEFORE the inner write (like write_all) but only
  // once per frame-sized attempt that makes progress — a would_block result
  // refunds nothing because the plan was consulted first; keeping the
  // blocking and non-blocking write paths consistent matters more than
  // refunds, and latency injections on a would_block still model a slow NIC.
  [[nodiscard]] int read_readiness_fd() override { return inner_->read_readiness_fd(); }
  Result<std::size_t> read_some(void* buf, std::size_t n) override;
  [[nodiscard]] int write_readiness_fd() override { return inner_->write_readiness_fd(); }
  Result<std::size_t> write_some(const void* buf, std::size_t n) override;

  [[nodiscard]] FaultPlan& plan() { return *plan_; }

 private:
  std::unique_ptr<rt::ByteStream> inner_;
  std::shared_ptr<FaultPlan> plan_;
  StreamFaultConfig cfg_;
  std::mutex mu_;
  std::uint64_t written_ = 0;
  bool cut_ = false;
};

}  // namespace iofwd::fault
