#include "analysis/report.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/table.hpp"

namespace iofwd::analysis {

FigureReport::FigureReport(std::string fig_id, std::string title, std::string x_name,
                           std::string value_unit)
    : fig_id_(std::move(fig_id)),
      title_(std::move(title)),
      x_name_(std::move(x_name)),
      unit_(std::move(value_unit)) {}

FigureReport::Cell& FigureReport::cell(const std::string& x, const std::string& series) {
  if (std::find(xs_.begin(), xs_.end(), x) == xs_.end()) xs_.push_back(x);
  if (std::find(series_.begin(), series_.end(), series) == series_.end()) {
    series_.push_back(series);
  }
  for (auto& c : cells_) {
    if (c.x == x && c.series == series) return c;
  }
  cells_.push_back(Cell{x, series, std::nullopt, std::nullopt});
  return cells_.back();
}

const FigureReport::Cell* FigureReport::find(const std::string& x,
                                             const std::string& series) const {
  for (const auto& c : cells_) {
    if (c.x == x && c.series == series) return &c;
  }
  return nullptr;
}

void FigureReport::add(const std::string& x, const std::string& series, double value) {
  cell(x, series).measured = value;
}

void FigureReport::add_expected(const std::string& x, const std::string& series, double value) {
  cell(x, series).expected = value;
}

std::optional<double> FigureReport::get(const std::string& x, const std::string& series) const {
  const Cell* c = find(x, series);
  return c != nullptr ? c->measured : std::nullopt;
}

std::string FigureReport::render() const {
  std::string out = "== " + fig_id_ + ": " + title_ + " [" + unit_ + "] ==\n";

  bool any_expected = false;
  for (const auto& c : cells_) any_expected |= c.expected.has_value();

  std::vector<std::string> headers{x_name_};
  for (const auto& s : series_) {
    headers.push_back(s);
    if (any_expected) headers.push_back("paper:" + s);
  }
  Table t(headers);
  for (const auto& x : xs_) {
    std::vector<std::string> row{x};
    for (const auto& s : series_) {
      const Cell* c = find(x, s);
      row.push_back(c != nullptr && c->measured ? Table::num(*c->measured) : "-");
      if (any_expected) {
        row.push_back(c != nullptr && c->expected ? Table::num(*c->expected) : "-");
      }
    }
    t.add_row(std::move(row));
  }
  out += t.render();

  GroupedChart chart("measured series", series_);
  for (const auto& x : xs_) {
    std::vector<double> vals;
    for (const auto& s : series_) {
      const Cell* c = find(x, s);
      vals.push_back(c != nullptr && c->measured ? *c->measured : 0.0);
    }
    chart.add_group(x_name_ + "=" + x, std::move(vals));
  }
  out += chart.render();
  return out;
}

Status FigureReport::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status(Errc::io_error, "cannot open " + path);
  f << x_name_ << ",series,measured_" << unit_ << ",paper_" << unit_ << "\n";
  for (const auto& x : xs_) {
    for (const auto& s : series_) {
      const Cell* c = find(x, s);
      if (c == nullptr) continue;
      f << x << "," << s << ",";
      if (c->measured) f << *c->measured;
      f << ",";
      if (c->expected) f << *c->expected;
      f << "\n";
    }
  }
  return f.good() ? Status::ok() : Status(Errc::io_error, "short write to " + path);
}

DiagTable::DiagTable(std::string title) : title_(std::move(title)) {}

void DiagTable::add(const std::string& label, const std::string& value,
                    const std::string& note) {
  rows_.push_back(Row{label, value, note});
}

void DiagTable::add(const std::string& label, double value, const std::string& note) {
  add(label, Table::num(value, 2), note);
}

std::optional<std::string> DiagTable::get(const std::string& label) const {
  for (const auto& r : rows_) {
    if (r.label == label) return r.value;
  }
  return std::nullopt;
}

std::string DiagTable::render() const {
  std::string out = "-- " + title_ + " --\n";
  bool any_note = false;
  for (const auto& r : rows_) any_note |= !r.note.empty();
  Table t(any_note ? std::vector<std::string>{"stat", "value", "note"}
                   : std::vector<std::string>{"stat", "value"});
  for (const auto& r : rows_) {
    std::vector<std::string> row{r.label, r.value};
    if (any_note) row.push_back(r.note);
    t.add_row(std::move(row));
  }
  out += t.render();
  return out;
}

DiagTable burst_buffer_table(const BurstBufferDiag& d) {
  DiagTable t("burst-buffer cache");
  t.add("hit rate", Table::pct(100.0 * d.hit_rate), "read bytes served from cached extents");
  t.add("coalesce ratio", d.coalesce_ratio, "incoming writes per backend write");
  t.add("flushed", Table::num(static_cast<double>(d.flushed_bytes) / (1024.0 * 1024.0), 1) + " MiB",
        "drained to the backend");
  const double occ = d.capacity_bytes > 0 ? 100.0 * static_cast<double>(d.cached_high_watermark) /
                                                static_cast<double>(d.capacity_bytes)
                                          : 0.0;
  t.add("peak occupancy", Table::pct(occ), "high watermark over bb_bytes");
  t.add("writer stalls", Table::num(static_cast<double>(d.stall_ns) / 1e6, 2) + " ms",
        "waiting for cache space");
  t.add("evictions", static_cast<double>(d.evictions), "clean extents reclaimed");
  t.add("deferred errors", static_cast<double>(d.deferred_errors),
        "flush failures surfaced on later ops");
  return t;
}

DiagTable resilience_table(const ResilienceDiag& d) {
  DiagTable t("resilience");
  t.add("retry attempts", static_cast<double>(d.retry_attempts),
        "backend ops issued, incl. retries");
  t.add("retries", static_cast<double>(d.retries), "re-issues after a transient error");
  t.add("retry giveups", static_cast<double>(d.retry_giveups), "retry budget exhausted");
  t.add("backoff", Table::num(static_cast<double>(d.backoff_ns) / 1e6, 2) + " ms",
        "slept between attempts");
  t.add("deadline expired", static_cast<double>(d.deadline_expired),
        "ops bounced with timed_out, unexecuted");
  t.add("bml timeouts", static_cast<double>(d.bml_timeouts),
        "pool waits past bml_wait_ms");
  t.add("degraded pass-through", static_cast<double>(d.degraded_passthrough),
        "writes served without a BML lease");
  t.add("degraded sync writes", static_cast<double>(d.degraded_sync_writes),
        "staged writes forced synchronous");
  t.add("degraded spans", static_cast<double>(d.degraded_enters),
        Table::num(static_cast<double>(d.degraded_ns) / 1e6, 2) + " ms total");
  t.add("bb degraded writes", static_cast<double>(d.bb_degraded_writes),
        "cache stalls that wrote through");
  t.add("reconnects", static_cast<double>(d.reconnects), "client redials that succeeded");
  t.add("replays", static_cast<double>(d.replays), "ops completed on a retry connection");
  t.add("client timeouts", static_cast<double>(d.client_timeouts),
        "roundtrips killed by the watchdog");
  t.add("client giveups", static_cast<double>(d.giveups), "reconnect budget exhausted");
  return t;
}

DiagTable metrics_table(const obs::Snapshot& snap, const std::string& title) {
  DiagTable t(title);
  // std::map iteration gives name-sorted rows, which groups the dotted
  // namespaces ("bb.*", "client.*", "server.*") naturally.
  for (const auto& [name, v] : snap.counters) {
    t.add(name, static_cast<double>(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    t.add(name, static_cast<double>(v), "gauge");
  }
  for (const auto& [name, h] : snap.histograms) {
    t.add(name,
          "n=" + std::to_string(h.count) + " mean=" + Table::num(h.mean(), 1) +
              " p50=" + Table::num(h.p50, 1) + " p95=" + Table::num(h.p95, 1) +
              " p99=" + Table::num(h.p99, 1) + " max=" + std::to_string(h.max),
          "histogram");
  }
  return t;
}

DiagTable metrics_table(const obs::MetricRegistry& reg, const std::string& title) {
  return metrics_table(reg.snapshot(), title);
}

std::string emit(const FigureReport& report) {
  std::string rendered = report.render();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const std::string path = "results/" + report.id() + ".csv";
  if (Status st = report.write_csv(path); !st.is_ok()) {
    std::fprintf(stderr, "warning: %s\n", st.to_string().c_str());
  } else {
    std::printf("[csv] %s\n\n", path.c_str());
  }
  return path;
}

}  // namespace iofwd::analysis
