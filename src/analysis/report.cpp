#include "analysis/report.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/table.hpp"

namespace iofwd::analysis {

FigureReport::FigureReport(std::string fig_id, std::string title, std::string x_name,
                           std::string value_unit)
    : fig_id_(std::move(fig_id)),
      title_(std::move(title)),
      x_name_(std::move(x_name)),
      unit_(std::move(value_unit)) {}

FigureReport::Cell& FigureReport::cell(const std::string& x, const std::string& series) {
  if (std::find(xs_.begin(), xs_.end(), x) == xs_.end()) xs_.push_back(x);
  if (std::find(series_.begin(), series_.end(), series) == series_.end()) {
    series_.push_back(series);
  }
  for (auto& c : cells_) {
    if (c.x == x && c.series == series) return c;
  }
  cells_.push_back(Cell{x, series, std::nullopt, std::nullopt});
  return cells_.back();
}

const FigureReport::Cell* FigureReport::find(const std::string& x,
                                             const std::string& series) const {
  for (const auto& c : cells_) {
    if (c.x == x && c.series == series) return &c;
  }
  return nullptr;
}

void FigureReport::add(const std::string& x, const std::string& series, double value) {
  cell(x, series).measured = value;
}

void FigureReport::add_expected(const std::string& x, const std::string& series, double value) {
  cell(x, series).expected = value;
}

std::optional<double> FigureReport::get(const std::string& x, const std::string& series) const {
  const Cell* c = find(x, series);
  return c != nullptr ? c->measured : std::nullopt;
}

std::string FigureReport::render() const {
  std::string out = "== " + fig_id_ + ": " + title_ + " [" + unit_ + "] ==\n";

  bool any_expected = false;
  for (const auto& c : cells_) any_expected |= c.expected.has_value();

  std::vector<std::string> headers{x_name_};
  for (const auto& s : series_) {
    headers.push_back(s);
    if (any_expected) headers.push_back("paper:" + s);
  }
  Table t(headers);
  for (const auto& x : xs_) {
    std::vector<std::string> row{x};
    for (const auto& s : series_) {
      const Cell* c = find(x, s);
      row.push_back(c != nullptr && c->measured ? Table::num(*c->measured) : "-");
      if (any_expected) {
        row.push_back(c != nullptr && c->expected ? Table::num(*c->expected) : "-");
      }
    }
    t.add_row(std::move(row));
  }
  out += t.render();

  GroupedChart chart("measured series", series_);
  for (const auto& x : xs_) {
    std::vector<double> vals;
    for (const auto& s : series_) {
      const Cell* c = find(x, s);
      vals.push_back(c != nullptr && c->measured ? *c->measured : 0.0);
    }
    chart.add_group(x_name_ + "=" + x, std::move(vals));
  }
  out += chart.render();
  return out;
}

Status FigureReport::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status(Errc::io_error, "cannot open " + path);
  f << x_name_ << ",series,measured_" << unit_ << ",paper_" << unit_ << "\n";
  for (const auto& x : xs_) {
    for (const auto& s : series_) {
      const Cell* c = find(x, s);
      if (c == nullptr) continue;
      f << x << "," << s << ",";
      if (c->measured) f << *c->measured;
      f << ",";
      if (c->expected) f << *c->expected;
      f << "\n";
    }
  }
  return f.good() ? Status::ok() : Status(Errc::io_error, "short write to " + path);
}

std::string emit(const FigureReport& report) {
  std::string rendered = report.render();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const std::string path = "results/" + report.id() + ".csv";
  if (Status st = report.write_csv(path); !st.is_ok()) {
    std::fprintf(stderr, "warning: %s\n", st.to_string().c_str());
  } else {
    std::printf("[csv] %s\n\n", path.c_str());
  }
  return path;
}

}  // namespace iofwd::analysis
