// Figure reports: the harness every bench binary uses to print a paper
// figure next to the measured reproduction, and to persist the data as CSV.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "obs/metrics.hpp"

namespace iofwd::analysis {

// A grid of (x-category, series) -> value, preserving insertion order, with
// optional paper-expected values per cell for side-by-side comparison.
class FigureReport {
 public:
  FigureReport(std::string fig_id, std::string title, std::string x_name,
               std::string value_unit = "MiB/s");

  void add(const std::string& x, const std::string& series, double value);
  void add_expected(const std::string& x, const std::string& series, double value);

  [[nodiscard]] std::optional<double> get(const std::string& x, const std::string& series) const;

  // Table of measured values (one row per x, one column per series), with
  // "paper:<series>" columns interleaved where expectations were provided,
  // plus an ASCII chart of the measured series.
  [[nodiscard]] std::string render() const;

  // CSV: x,series,measured,expected
  [[nodiscard]] Status write_csv(const std::string& path) const;

  [[nodiscard]] const std::string& id() const { return fig_id_; }

 private:
  struct Cell {
    std::string x;
    std::string series;
    std::optional<double> measured;
    std::optional<double> expected;
  };
  Cell& cell(const std::string& x, const std::string& series);
  [[nodiscard]] const Cell* find(const std::string& x, const std::string& series) const;

  std::string fig_id_;
  std::string title_;
  std::string x_name_;
  std::string unit_;
  std::vector<std::string> xs_;      // insertion order
  std::vector<std::string> series_;  // insertion order
  std::vector<Cell> cells_;
};

// Convenience used by every bench main(): render to stdout and drop the CSV
// under results/ (created on demand). Returns the CSV path.
std::string emit(const FigureReport& report);

// A small titled label/value/note table for diagnostics that are not a
// figure grid (counter dumps, cache stats). Rows render in insertion order.
class DiagTable {
 public:
  explicit DiagTable(std::string title);

  void add(const std::string& label, const std::string& value, const std::string& note = "");
  void add(const std::string& label, double value, const std::string& note = "");

  [[nodiscard]] std::optional<std::string> get(const std::string& label) const;
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::string label;
    std::string value;
    std::string note;
  };
  std::string title_;
  std::vector<Row> rows_;
};

// Burst-buffer cache counters in table-ready form. Plain numbers rather than
// the bb::BurstBufferStats struct keep analysis/ independent of the runtime
// layers; callers copy the fields across.
struct BurstBufferDiag {
  double hit_rate = 0.0;        // fraction of read bytes served from cache
  double coalesce_ratio = 0.0;  // incoming writes per backend write
  std::uint64_t flushed_bytes = 0;
  std::uint64_t cached_high_watermark = 0;
  std::uint64_t capacity_bytes = 0;
  std::uint64_t stall_ns = 0;  // writer time spent waiting for cache space
  std::uint64_t evictions = 0;
  std::uint64_t deferred_errors = 0;
};

// Render the standard burst-buffer diagnostics table ("where bursts are
// absorbed"): hit rate, coalesce ratio, flushed bytes, occupancy, stalls.
DiagTable burst_buffer_table(const BurstBufferDiag& d);

// Resilience counters in table-ready form (DESIGN.md §10). Like
// BurstBufferDiag, plain numbers so analysis/ stays independent of rt/,
// bb/ and fault/; callers copy the fields they have and leave the rest 0.
struct ResilienceDiag {
  // Retry/backoff (fault::RetryingBackend).
  std::uint64_t retry_attempts = 0;   // backend ops issued, incl. retries
  std::uint64_t retries = 0;          // re-issues after a transient error
  std::uint64_t retry_giveups = 0;    // ops that exhausted the retry budget
  std::uint64_t backoff_ns = 0;       // time spent sleeping between attempts
  // Server-side (rt::ServerStats).
  std::uint64_t deadline_expired = 0;     // ops bounced past their deadline
  std::uint64_t bml_timeouts = 0;         // pool waits past bml_wait_ms
  std::uint64_t degraded_passthrough = 0; // writes served without a BML lease
  std::uint64_t degraded_sync_writes = 0; // staged writes forced synchronous
  std::uint64_t degraded_enters = 0;      // high-watermark crossings
  std::uint64_t degraded_ns = 0;          // time spent in degraded mode
  std::uint64_t bb_degraded_writes = 0;   // bb stalls that fell back to write-through
  // Client-side (rt::ClientStats).
  std::uint64_t reconnects = 0;
  std::uint64_t replays = 0;
  std::uint64_t client_timeouts = 0;
  std::uint64_t giveups = 0;
};

// Render the standard resilience diagnostics table ("how faults were
// absorbed"): retries, giveups, deadline bounces, degradation, reconnects.
DiagTable resilience_table(const ResilienceDiag& d);

// Generic dump of one obs metric snapshot: every counter and gauge as a row
// (sorted by name — one row per metric), every histogram as a
// count/mean/p50/p95/p99/max summary row. Replaces the per-subsystem table
// builders for ad-hoc "show me everything" dumps (ion_daemon SIGUSR1,
// bench footers); the curated tables above remain for figure-style output.
DiagTable metrics_table(const obs::Snapshot& snap, const std::string& title = "metrics");

// Convenience: snapshot the registry, then render.
DiagTable metrics_table(const obs::MetricRegistry& reg, const std::string& title = "metrics");

}  // namespace iofwd::analysis
