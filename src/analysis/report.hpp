// Figure reports: the harness every bench binary uses to print a paper
// figure next to the measured reproduction, and to persist the data as CSV.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/status.hpp"

namespace iofwd::analysis {

// A grid of (x-category, series) -> value, preserving insertion order, with
// optional paper-expected values per cell for side-by-side comparison.
class FigureReport {
 public:
  FigureReport(std::string fig_id, std::string title, std::string x_name,
               std::string value_unit = "MiB/s");

  void add(const std::string& x, const std::string& series, double value);
  void add_expected(const std::string& x, const std::string& series, double value);

  [[nodiscard]] std::optional<double> get(const std::string& x, const std::string& series) const;

  // Table of measured values (one row per x, one column per series), with
  // "paper:<series>" columns interleaved where expectations were provided,
  // plus an ASCII chart of the measured series.
  [[nodiscard]] std::string render() const;

  // CSV: x,series,measured,expected
  [[nodiscard]] Status write_csv(const std::string& path) const;

  [[nodiscard]] const std::string& id() const { return fig_id_; }

 private:
  struct Cell {
    std::string x;
    std::string series;
    std::optional<double> measured;
    std::optional<double> expected;
  };
  Cell& cell(const std::string& x, const std::string& series);
  [[nodiscard]] const Cell* find(const std::string& x, const std::string& series) const;

  std::string fig_id_;
  std::string title_;
  std::string x_name_;
  std::string unit_;
  std::vector<std::string> xs_;      // insertion order
  std::vector<std::string> series_;  // insertion order
  std::vector<Cell> cells_;
};

// Convenience used by every bench main(): render to stdout and drop the CSV
// under results/ (created on demand). Returns the CSV path.
std::string emit(const FigureReport& report);

}  // namespace iofwd::analysis
