// In-situ data filtering on the I/O node — the paper's stated future work
// (Sec. VII): "offload data filtering onto the I/O forwarding nodes in
// order to reduce the amount of data written to storage as well as to
// facilitate in situ analytics."
//
// A "simulation" thread writes full-resolution checkpoints of a decaying
// 2-D Gaussian field; the ION applies a filter chain on its (otherwise
// underutilized) cores:
//   1. MomentsFilter    — live min/max/mean of every checkpoint (analytics)
//   2. DownsampleFilter — stores the field at 1/4 resolution
// so storage receives a quarter of the bytes while the application still
// writes full resolution and the operator still sees full-resolution stats.
//
//   $ ./insitu_filtering
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "rt/aggregator.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"

using namespace iofwd;

int main() {
  constexpr int kGrid = 256;          // 256x256 doubles per checkpoint
  constexpr int kCheckpoints = 10;

  // ION server with the filter chain installed, writes aggregated into
  // 1 MiB backend operations.
  auto mem = std::make_unique<rt::MemBackend>();
  auto* mem_raw = mem.get();
  auto agg = std::make_unique<rt::AggregatingBackend>(std::move(mem), 1u << 20);
  auto* agg_raw = agg.get();
  rt::IonServer server(std::move(agg), {});

  rt::FilterChain chain;
  auto moments = std::make_shared<rt::MomentsFilter>();
  chain.add(moments);
  chain.add(std::make_shared<rt::DownsampleFilter>(/*stride=*/4, /*element_bytes=*/8));
  server.set_filter_chain(std::move(chain));

  auto [se, ce] = rt::InProcTransport::make_pair();
  server.serve(std::move(se));
  rt::Client client(std::move(ce));

  if (!client.open(1, "field.dat").is_ok()) return 1;

  std::vector<double> field(kGrid * kGrid);
  std::vector<std::byte> payload(field.size() * sizeof(double));
  std::uint64_t offset = 0;

  for (int step = 0; step < kCheckpoints; ++step) {
    // A Gaussian blob decaying over time.
    const double amp = 100.0 * std::exp(-0.3 * step);
    for (int y = 0; y < kGrid; ++y) {
      for (int x = 0; x < kGrid; ++x) {
        const double dx = (x - kGrid / 2) / 32.0;
        const double dy = (y - kGrid / 2) / 32.0;
        field[static_cast<std::size_t>(y) * kGrid + x] = amp * std::exp(-(dx * dx + dy * dy));
      }
    }
    std::memcpy(payload.data(), field.data(), payload.size());
    if (!client.write(1, offset, payload).is_ok()) return 1;
    offset += payload.size();

    if (!client.fsync(1).is_ok()) return 1;  // let this checkpoint land
    const auto m = moments->moments();
    std::printf("step %2d: field max %7.3f  mean %6.3f  (in-situ, full resolution)\n", step,
                m.max, m.mean());
  }
  if (!client.close(1).is_ok()) return 1;

  const auto s = server.stats();
  std::printf("\napplication wrote %.2f MiB; storage received %.2f MiB (%.0f%% reduction)\n",
              static_cast<double>(s.filter_bytes_in) / (1 << 20),
              static_cast<double>(s.filter_bytes_out) / (1 << 20),
              100.0 * (1.0 - static_cast<double>(s.filter_bytes_out) /
                                 static_cast<double>(s.filter_bytes_in)));
  std::printf("aggregation: %llu client writes -> %llu backend writes; stored file: %.2f MiB\n",
              static_cast<unsigned long long>(agg_raw->writes_in()),
              static_cast<unsigned long long>(agg_raw->writes_out()),
              static_cast<double>(mem_raw->snapshot("field.dat").size()) / (1 << 20));
  return 0;
}
