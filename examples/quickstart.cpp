// Quickstart: the forwarding runtime in one file.
//
// Starts an ION server (work-queue + asynchronous data staging, the paper's
// full mechanism) with an in-memory backend, connects a client over an
// in-process transport, and walks through the API: open, staged writes,
// deferred-error semantics, read-after-write consistency, close.
//
//   $ ./quickstart
#include <cstdio>
#include <cstring>
#include <vector>

#include "rt/client.hpp"
#include "rt/server.hpp"

using namespace iofwd;

int main() {
  // 1. An ION server: 4 worker threads (the paper's sweet spot on the
  //    4-core BG/P ION), 64 MiB of BML staging memory.
  rt::ServerConfig cfg;
  cfg.exec = rt::ExecModel::work_queue_async;
  cfg.workers = 4;
  cfg.bml_bytes = 64u << 20;
  rt::IonServer server(std::make_unique<rt::MemBackend>(), cfg);

  // 2. A client connected over an in-process transport. (Use
  //    SocketTransport::connect_unix for a real deployment — see
  //    examples/ion_daemon.cpp.)
  auto [server_end, client_end] = rt::InProcTransport::make_pair();
  server.serve(std::move(server_end));
  rt::Client client(std::move(client_end));

  // 3. Open a descriptor and write. In the async model write() returns as
  //    soon as the payload is staged in an ION buffer — the actual I/O
  //    happens in the background on the worker pool.
  if (Status st = client.open(1, "results.dat"); !st.is_ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.to_string().c_str());
    return 1;
  }

  std::vector<std::byte> block(1u << 20);
  for (std::size_t i = 0; i < block.size(); ++i) block[i] = static_cast<std::byte>(i);

  for (int i = 0; i < 8; ++i) {
    if (Status st = client.write(1, static_cast<std::uint64_t>(i) * block.size(), block);
        !st.is_ok()) {
      // A failure reported here may be a *deferred* error from an earlier
      // asynchronous write on this descriptor (paper Sec. IV).
      std::fprintf(stderr, "write %d: %s\n", i, st.to_string().c_str());
      return 1;
    }
    std::printf("write %d acknowledged (%s)\n", i,
                client.last_write_was_staged() ? "staged asynchronously" : "completed");
  }

  // 4. fsync is a completion barrier: it drains this descriptor's in-flight
  //    operations and reports any deferred error.
  if (Status st = client.fsync(1); !st.is_ok()) {
    std::fprintf(stderr, "fsync: %s\n", st.to_string().c_str());
    return 1;
  }

  // 5. Reads are always synchronous and see all staged writes.
  auto r = client.read(1, 7 * block.size(), block.size());
  if (!r.is_ok() || r.value() != block) {
    std::fprintf(stderr, "read-back mismatch\n");
    return 1;
  }
  std::printf("read-back of the last 1 MiB block verified\n");

  // 6. close() also drains and reports the final status.
  if (Status st = client.close(1); !st.is_ok()) {
    std::fprintf(stderr, "close: %s\n", st.to_string().c_str());
    return 1;
  }

  const auto s = server.stats();
  std::printf("server: %llu ops, %.1f MiB in, %llu queue batches, BML high-water %.1f MiB\n",
              static_cast<unsigned long long>(s.ops),
              static_cast<double>(s.bytes_in) / (1 << 20),
              static_cast<unsigned long long>(s.queue_batches),
              static_cast<double>(s.bml_high_watermark) / (1 << 20));
  return 0;
}
