// Real-time analysis scenario (the paper's motivating use case, Sec. I):
// a simulation on many compute nodes streams snapshots to a data-analysis
// cluster for concurrent visualization. Data travels the same forwarding
// path as file I/O, so forwarding performance decides how often snapshots
// can be shipped.
//
// This example runs the scenario on the simulated Intrepid machine: two
// psets (128 CNs) streaming 1 MiB regions to 4 Eureka analysis nodes with
// the MxN distribution, under each forwarding mechanism, and reports how
// many snapshots per second the analysis side receives.
//
//   $ ./realtime_analysis
#include <cstdio>

#include "core/table.hpp"
#include "wl/stream.hpp"

using namespace iofwd;

int main() {
  auto cfg = bgp::MachineConfig::intrepid();
  cfg.num_psets = 2;      // 128 compute nodes
  cfg.num_da_nodes = 4;   // analysis sinks

  // Each snapshot: every CN ships a 1 MiB sub-domain (a 128 MiB global
  // field, e.g. a 4096^2 slice of doubles per snapshot).
  wl::StreamParams p;
  p.cns_per_pset = cfg.cns_per_pset;
  p.message_bytes = 1_MiB;
  p.iterations = 100;  // 100 snapshots
  p.distribute_das = true;

  const double snapshot_mib =
      static_cast<double>(cfg.total_cns()) * static_cast<double>(p.message_bytes) / (1 << 20);

  std::printf("Streaming %d snapshots of %.0f MiB from %d CNs to %d analysis nodes...\n\n",
              p.iterations, snapshot_mib, cfg.total_cns(), cfg.num_da_nodes);

  Table t({"mechanism", "aggregate MiB/s", "snapshots/s", "time for 100 snapshots"});
  for (auto m : {proto::Mechanism::ciod, proto::Mechanism::zoid, proto::Mechanism::zoid_sched,
                 proto::Mechanism::zoid_sched_async}) {
    const auto r = wl::run_stream(m, cfg, {}, p);
    const double snaps_per_s = r.throughput_mib_s / snapshot_mib;
    t.add_row({proto::to_string(m), Table::num(r.throughput_mib_s),
               Table::num(snaps_per_s, 2),
               Table::num(static_cast<double>(p.iterations) / snaps_per_s, 1) + " s"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("With I/O scheduling + asynchronous staging the same simulation can ship\n"
              "snapshots ~1.5x more often — or spend the reclaimed time computing.\n");
  return 0;
}
