// ion_daemon: run the I/O forwarding server as a standalone daemon on a
// UNIX-domain socket — the deployment shape of CIOD/ZOID on a real I/O node.
//
//   $ ./ion_daemon /tmp/iofwd.sock [exec=async|queue|thread] [workers=4]
//                  [root=/tmp/iofwd_data] [bml_mib=256] [bb_mib=0]
//                  [aggregate_kib=0] [downsample=0] [rle=0]
//                  [retry=0] [bml_wait_ms=100] [degraded_high=0]
//                  [degraded_low=0] [bb_stall_ms=100]
//   $ ./ion_daemon tcp:9090 ...          # listen on TCP port instead
//
// aggregate_kib=N   coalesce sequential writes into N-KiB backend writes
// bb_mib=N          burst-buffer staging cache of N MiB (DESIGN.md §9)
// downsample=K      keep every K-th 8-byte element (in-situ data reduction)
// rle=1             zero-run-length-encode payloads before storage
//
// Resilience knobs (DESIGN.md §10):
// retry=N           wrap the backend in fault::RetryingBackend, N attempts
// bml_wait_ms=N     bounded BML wait before degraded pass-through (0=block)
// degraded_high=N   queue depth that switches async staging to synchronous
// degraded_low=N    queue depth that switches back (hysteresis)
// bb_stall_ms=N     burst-buffer stall bound before write-through (0=block)
//
// Any process may then connect with rt::SocketTransport::connect_unix and
// drive it through rt::Client (see examples/quickstart.cpp for the calls).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/report.hpp"
#include "fault/retry.hpp"
#include "rt/aggregator.hpp"
#include "rt/server.hpp"

using namespace iofwd;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

std::string arg(int argc, char** argv, const char* key, const std::string& dflt) {
  const std::size_t klen = std::strlen(key);
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], key, klen) == 0 && argv[i][klen] == '=') {
      return argv[i] + klen + 1;
    }
  }
  return dflt;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <socket-path> [exec=async|queue|thread] [workers=N] "
                 "[root=DIR] [bml_mib=N] [bb_mib=N]\n",
                 argv[0]);
    return 2;
  }
  const std::string sock_path = argv[1];
  const std::string exec = arg(argc, argv, "exec", "async");
  const std::string root = arg(argc, argv, "root", "/tmp/iofwd_data");

  rt::ServerConfig cfg;
  cfg.workers = std::atoi(arg(argc, argv, "workers", "4").c_str());
  cfg.bml_bytes = static_cast<std::uint64_t>(std::atoi(arg(argc, argv, "bml_mib", "256").c_str()))
                  << 20;
  cfg.bb_bytes = static_cast<std::uint64_t>(std::atoi(arg(argc, argv, "bb_mib", "0").c_str()))
                 << 20;
  if (exec == "thread") {
    cfg.exec = rt::ExecModel::thread_per_client;
  } else if (exec == "queue") {
    cfg.exec = rt::ExecModel::work_queue;
  } else {
    cfg.exec = rt::ExecModel::work_queue_async;
  }
  cfg.bml_wait_ms =
      static_cast<std::uint32_t>(std::atoi(arg(argc, argv, "bml_wait_ms", "100").c_str()));
  cfg.bb_max_stall_ms =
      static_cast<std::uint32_t>(std::atoi(arg(argc, argv, "bb_stall_ms", "100").c_str()));
  cfg.degraded_high_watermark =
      static_cast<std::size_t>(std::atoi(arg(argc, argv, "degraded_high", "0").c_str()));
  cfg.degraded_low_watermark =
      static_cast<std::size_t>(std::atoi(arg(argc, argv, "degraded_low", "0").c_str()));

  std::unique_ptr<rt::Listener> listener;
  if (sock_path.rfind("tcp:", 0) == 0) {
    auto port = static_cast<std::uint16_t>(std::atoi(sock_path.c_str() + 4));
    auto l = rt::TcpListener::bind(port, "0.0.0.0");
    if (!l.is_ok()) {
      std::fprintf(stderr, "bind %s: %s\n", sock_path.c_str(),
                   l.status().to_string().c_str());
      return 1;
    }
    std::printf("listening on tcp port %u\n", l.value()->port());
    listener = std::move(l).value();
  } else {
    auto l = rt::UnixListener::bind(sock_path);
    if (!l.is_ok()) {
      std::fprintf(stderr, "bind %s: %s\n", sock_path.c_str(),
                   l.status().to_string().c_str());
      return 1;
    }
    listener = std::move(l).value();
  }

  std::unique_ptr<rt::IoBackend> backend = std::make_unique<rt::FileBackend>(root);
  const int agg_kib = std::atoi(arg(argc, argv, "aggregate_kib", "0").c_str());
  if (agg_kib > 0) {
    backend = std::make_unique<rt::AggregatingBackend>(std::move(backend),
                                                       static_cast<std::uint64_t>(agg_kib) << 10);
  }
  const int retry = std::atoi(arg(argc, argv, "retry", "0").c_str());
  fault::RetryingBackend* retrier = nullptr;  // stats pointer; server owns it
  if (retry > 0) {
    fault::RetryPolicy policy;
    policy.max_attempts = retry;
    auto wrapped = std::make_unique<fault::RetryingBackend>(std::move(backend), policy);
    retrier = wrapped.get();
    backend = std::move(wrapped);
  }
  rt::IonServer server(std::move(backend), cfg);

  rt::FilterChain filters;
  const int stride = std::atoi(arg(argc, argv, "downsample", "0").c_str());
  if (stride > 1) filters.add(std::make_shared<rt::DownsampleFilter>(stride));
  if (arg(argc, argv, "rle", "0") == "1") filters.add(std::make_shared<rt::ZeroRleFilter>());
  if (!filters.empty()) server.set_filter_chain(std::move(filters));

  // Install the handlers before serving starts so a signal racing startup
  // still lands on a clean shutdown path instead of the default handler.
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  server.serve_listener(std::move(listener));
  std::printf("ion_daemon listening on %s (exec=%s, workers=%d, root=%s, bb=%llu MiB)\n",
              sock_path.c_str(), rt::to_string(cfg.exec), cfg.workers, root.c_str(),
              static_cast<unsigned long long>(cfg.bb_bytes >> 20));

  while (g_stop == 0) {
    ::pause();
  }

  // Drain first: stop() quiesces workers and flushes the burst buffer, so
  // the stats below include everything that was still in flight.
  std::printf("\nsignal received, draining...\n");
  server.stop();

  const auto s = server.stats();
  std::printf("shut down: %llu ops, %.1f MiB in, %.1f MiB out, %llu deferred errors\n",
              static_cast<unsigned long long>(s.ops),
              static_cast<double>(s.bytes_in) / (1 << 20),
              static_cast<double>(s.bytes_out) / (1 << 20),
              static_cast<unsigned long long>(s.deferred_errors));
  if (cfg.bb_bytes > 0) {
    std::printf("burst buffer: %.0f%% hit rate, %.1fx coalesce, %.1f MiB flushed\n",
                100.0 * s.bb_hit_rate, s.bb_coalesce_ratio,
                static_cast<double>(s.bb_flushed_bytes) / (1 << 20));
  }

  analysis::ResilienceDiag rd;
  if (retrier != nullptr) {
    const auto rs = retrier->stats();
    rd.retry_attempts = rs.attempts;
    rd.retries = rs.retries;
    rd.retry_giveups = rs.giveups;
    rd.backoff_ns = rs.backoff_ns;
  }
  rd.deadline_expired = s.deadline_expired;
  rd.bml_timeouts = s.bml_timeouts;
  rd.degraded_passthrough = s.degraded_passthrough_ops;
  rd.degraded_sync_writes = s.degraded_sync_writes;
  rd.degraded_enters = s.degraded_enters;
  rd.degraded_ns = s.degraded_ns;
  rd.bb_degraded_writes = s.bb_degraded_writes;
  std::fputs(analysis::resilience_table(rd).render().c_str(), stdout);
  return 0;
}
