// ion_daemon: run the I/O forwarding server as a standalone daemon on a
// UNIX-domain socket — the deployment shape of CIOD/ZOID on a real I/O node.
//
//   $ ./ion_daemon /tmp/iofwd.sock [exec=async|queue|thread] [workers=4]
//                  [recv_lanes=0] [root=/tmp/iofwd_data] [bml_mib=256] [bb_mib=0]
//                  [shards=1] [cluster_bb_mib=0]
//                  [aggregate_kib=0] [downsample=0] [rle=0]
//                  [retry=0] [bml_wait_ms=100] [degraded_high=0]
//                  [degraded_low=0] [bb_stall_ms=100]
//                  [sched=fifo] [sched_quantum_kib=256]
//                  [qos_bytes_per_sec=0] [qos_ops_per_sec=0]
//                  [qos_burst_bytes=0] [qos_burst_ops=0]
//                  [bb_journal=DIR] [bb_journal_fsync=0]
//                  [--trace-out=FILE] [stats_interval_s=0] [flight_ops=256]
//   $ ./ion_daemon tcp:9090 ...          # listen on TCP port instead
//
// Every knob also accepts GNU style (--workers=4) and an IOFWD_<KEY>
// environment fallback (core/flags.hpp). Unknown knobs — command line or
// IOFWD_* environment — are hard errors with a did-you-mean hint: a typoed
// "shardz=4" must never silently run single-sharded.
//
// recv_lanes=N      epoll receiver lanes multiplexing all connections
//                   (DESIGN.md §13); 0 = min(4, hardware threads)
// aggregate_kib=N   coalesce sequential writes into N-KiB backend writes
// bb_mib=N          burst-buffer staging cache of N MiB (DESIGN.md §9)
// downsample=K      keep every K-th 8-byte element (in-situ data reduction)
// rle=1             zero-run-length-encode payloads before storage
//
// Cluster knobs (DESIGN.md §14):
// shards=N          run an IonCluster of N IonServer shards instead of one
//                   server. Shard i listens on <socket>.<i> (or tcp port+i)
//                   and stores under <root>/shard<i>; clients route with
//                   cluster::RoutingClient over the same rendezvous map.
// cluster_bb_mib=N  global burst-buffer budget across every shard's cache
//                   (0 = per-shard watermarks only)
//
// Resilience knobs (DESIGN.md §10):
// retry=N           wrap the backend in fault::RetryingBackend, N attempts
// bml_wait_ms=N     bounded BML wait before degraded pass-through (0=block)
// degraded_high=N   queue depth that switches async staging to synchronous
// degraded_low=N    queue depth that switches back (hysteresis)
// bb_stall_ms=N     burst-buffer stall bound before write-through (0=block)
//
// Scheduling / QoS knobs (DESIGN.md §17):
// sched=P           work-queue dispatch policy: fifo (default), prio
//                   (header priority classes), edf (earliest deadline_ms
//                   first), fair (deficit round-robin on bytes per tenant)
// sched_quantum_kib=N  fair policy's per-tenant byte quantum (default 256)
// qos_bytes_per_sec=N  per-tenant byte budget; over-budget writes demote to
//                   synchronous staging (0 = unlimited)
// qos_ops_per_sec=N    per-tenant op budget (0 = unlimited)
// qos_burst_bytes=N / qos_burst_ops=N  bucket caps (0 = one second's rate)
//
// Crash survival knobs (DESIGN.md §16):
// bb_journal=DIR    write-ahead journal for the burst buffer: staged writes
//                   are persisted (CRC-framed) under DIR before they ack, and
//                   replayed when the daemon restarts over the same DIR —
//                   an ION crash loses no acknowledged data. Sharded mode
//                   derives DIR/shard<i> per shard automatically.
// bb_journal_fsync=1  fdatasync each journal append: survives host power
//                   loss, not just a dying daemon (slower; default 0)
//
// Observability knobs (DESIGN.md §11):
// --trace-out=FILE  write a Chrome-trace (Perfetto) JSON of every op on
//                   shutdown: per-op spans on worker-lane tids plus
//                   queue-depth and BML-in-use counter tracks
// stats_interval_s=N  print a one-line metric summary every N seconds
// flight_ops=N      completed-op flight-recorder ring size (0 = off)
// SIGUSR1           dump the full metrics table + the flight-recorder ring
//                   to stdout without stopping the daemon
//
// Any process may then connect with rt::SocketTransport::connect_unix and
// drive it through rt::Client (see examples/quickstart.cpp for the calls).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "analysis/report.hpp"
#include "cluster/ion_cluster.hpp"
#include "core/flags.hpp"
#include "fault/retry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/aggregator.hpp"
#include "rt/server.hpp"

using namespace iofwd;

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump = 0;
void on_signal(int) { g_stop = 1; }
void on_dump(int) { g_dump = 1; }

std::unique_ptr<rt::Listener> bind_addr(const std::string& addr) {
  if (addr.rfind("tcp:", 0) == 0) {
    auto port = static_cast<std::uint16_t>(std::atoi(addr.c_str() + 4));
    auto l = rt::TcpListener::bind(port, "0.0.0.0");
    if (!l.is_ok()) {
      std::fprintf(stderr, "bind %s: %s\n", addr.c_str(), l.status().to_string().c_str());
      return nullptr;
    }
    std::printf("listening on tcp port %u\n", l.value()->port());
    return std::move(l).value();
  }
  auto l = rt::UnixListener::bind(addr);
  if (!l.is_ok()) {
    std::fprintf(stderr, "bind %s: %s\n", addr.c_str(), l.status().to_string().c_str());
    return nullptr;
  }
  return std::move(l).value();
}

// Shard i of a cluster listens next to the single-server address: a ".<i>"
// socket suffix, or tcp base port + i.
std::string shard_addr(const std::string& base, int shard) {
  if (base.rfind("tcp:", 0) == 0) {
    return "tcp:" + std::to_string(std::atoi(base.c_str() + 4) + shard);
  }
  return base + "." + std::to_string(shard);
}

}  // namespace

int main(int argc, char** argv) {
  flags::Parser args(argc, argv);
  if (args.positionals().empty()) {
    std::fprintf(stderr,
                 "usage: %s <socket-path> [exec=async|queue|thread] [workers=N] "
                 "[recv_lanes=N] [root=DIR] [bml_mib=N] [bb_mib=N] [shards=N] "
                 "[cluster_bb_mib=N] [bb_journal=DIR] [bb_journal_fsync=0|1] "
                 "[sched=fifo|prio|edf|fair] [sched_quantum_kib=N] "
                 "[qos_bytes_per_sec=N] [qos_ops_per_sec=N] "
                 "[--trace-out=FILE] [stats_interval_s=N] [flight_ops=N]\n",
                 argv[0]);
    return 2;
  }
  const std::string sock_path = args.positional(0);
  const std::string exec = args.get("exec", "async");
  const std::string root = args.get("root", "/tmp/iofwd_data");
  const std::string trace_out = args.get("trace_out", "");
  const int stats_interval_s = args.get_int("stats_interval_s", 0);
  const int shards = args.get_int("shards", 1);
  const std::uint64_t cluster_bb_mib = args.get_u64("cluster_bb_mib", 0);

  // One registry for every layer: the server, its burst buffer, and the
  // retry decorator all record under their own prefix, so a single snapshot
  // (SIGUSR1, ticker, shutdown) covers the whole daemon. Sharded mode swaps
  // this for cluster-owned per-shard registries merged on snapshot.
  obs::MetricRegistry registry;
  obs::RuntimeTracer tracer;

  rt::ServerConfig cfg;
  cfg.workers = args.get_int("workers", 4);
  cfg.recv_lanes = args.get_int("recv_lanes", 0);
  cfg.bml_bytes = args.get_u64("bml_mib", 256) << 20;
  cfg.bb_bytes = args.get_u64("bb_mib", 0) << 20;
  if (exec == "thread") {
    cfg.exec = rt::ExecModel::thread_per_client;
  } else if (exec == "queue") {
    cfg.exec = rt::ExecModel::work_queue;
  } else {
    cfg.exec = rt::ExecModel::work_queue_async;
  }
  cfg.bb_journal_dir = args.get("bb_journal", "");
  cfg.bb_journal_fsync = args.get_int("bb_journal_fsync", 0) != 0;
  cfg.bml_wait_ms = static_cast<std::uint32_t>(args.get_int("bml_wait_ms", 100));
  cfg.bb_max_stall_ms = static_cast<std::uint32_t>(args.get_int("bb_stall_ms", 100));
  cfg.degraded_high_watermark = args.get_u64("degraded_high", 0);
  cfg.degraded_low_watermark = args.get_u64("degraded_low", 0);
  const std::string sched = args.get("sched", "fifo");
  if (auto pol = rt::parse_sched_policy(sched)) {
    cfg.sched = *pol;
  } else {
    std::fprintf(stderr, "%s: error: sched=%s (want fifo|prio|edf|fair)\n", argv[0],
                 sched.c_str());
    return 2;
  }
  cfg.sched_quantum_bytes = args.get_u64("sched_quantum_kib", 256) << 10;
  cfg.qos.bytes_per_sec = args.get_u64("qos_bytes_per_sec", 0);
  cfg.qos.ops_per_sec = args.get_u64("qos_ops_per_sec", 0);
  cfg.qos.burst_bytes = args.get_u64("qos_burst_bytes", 0);
  cfg.qos.burst_ops = args.get_u64("qos_burst_ops", 0);
  cfg.flight_recorder_ops = static_cast<std::size_t>(args.get_int("flight_ops", 256));
  if (!trace_out.empty()) cfg.tracer = &tracer;

  const int agg_kib = args.get_int("aggregate_kib", 0);
  const int retry = args.get_int("retry", 0);
  const int stride = args.get_int("downsample", 0);
  const bool rle = args.get_flag("rle");

  // Every knob has been queried; anything left over is a typo and the run
  // must not start half-configured.
  if (!args.check_strict(argv[0])) return 2;
  if (shards < 1) {
    std::fprintf(stderr, "%s: error: shards=%d (need >= 1)\n", argv[0], shards);
    return 2;
  }

  const auto make_backend = [&](const std::string& dir,
                                obs::MetricRegistry* reg) -> std::unique_ptr<rt::IoBackend> {
    std::unique_ptr<rt::IoBackend> backend = std::make_unique<rt::FileBackend>(dir);
    if (agg_kib > 0) {
      backend = std::make_unique<rt::AggregatingBackend>(
          std::move(backend), static_cast<std::uint64_t>(agg_kib) << 10);
    }
    if (retry > 0) {
      fault::RetryPolicy policy;
      policy.max_attempts = retry;
      policy.registry = reg;  // "retry.*" lands in the shared snapshot
      backend = std::make_unique<fault::RetryingBackend>(std::move(backend), policy);
    }
    return backend;
  };
  const auto make_filters = [&] {
    rt::FilterChain filters;
    if (stride > 1) filters.add(std::make_shared<rt::DownsampleFilter>(stride));
    if (rle) filters.add(std::make_shared<rt::ZeroRleFilter>());
    return filters;
  };

  // Build either the classic single server or an IonCluster fleet; both
  // expose the same snapshot/stats surface to the loop below.
  std::unique_ptr<rt::IonServer> server;
  std::unique_ptr<cluster::IonCluster> fleet;
  if (shards > 1) {
    cluster::IonClusterConfig ccfg;
    ccfg.shards = shards;
    ccfg.server = cfg;  // per-shard registries are cluster-owned
    ccfg.cluster_bb_bytes = cluster_bb_mib << 20;
    fleet = std::make_unique<cluster::IonCluster>(
        [&](int i) { return make_backend(root + "/shard" + std::to_string(i), nullptr); },
        ccfg);
  } else {
    cfg.registry = &registry;
    server = std::make_unique<rt::IonServer>(make_backend(root, &registry), cfg);
    if (auto filters = make_filters(); !filters.empty()) {
      server->set_filter_chain(std::move(filters));
    }
  }

  const auto snapshot = [&] { return fleet ? fleet->metrics() : registry.snapshot(); };
  const auto sum_counter = [&](const obs::Snapshot& snap, const std::string& name) {
    if (!fleet) return snap.counter(name);
    std::uint64_t sum = 0;
    for (int i = 0; i < shards; ++i) {
      sum += snap.counter("cluster.shard." + std::to_string(i) + "." + name);
    }
    return sum;
  };
  const auto sum_gauge = [&](const obs::Snapshot& snap, const std::string& name) {
    if (!fleet) return snap.gauge(name);
    std::int64_t sum = 0;
    for (int i = 0; i < shards; ++i) {
      sum += snap.gauge("cluster.shard." + std::to_string(i) + "." + name);
    }
    return sum;
  };
  const auto dump_observability = [&] {
    std::fputs(analysis::metrics_table(snapshot(), fleet ? "ion_daemon cluster metrics"
                                                         : "ion_daemon metrics")
                   .render()
                   .c_str(),
               stdout);
    if (server) {
      if (const obs::FlightRecorder* fr = server->flight_recorder()) {
        std::fputs(fr->dump().c_str(), stdout);
      }
    }
    std::fflush(stdout);
  };

  // Install the handlers before serving starts so a signal racing startup
  // still lands on a clean shutdown path instead of the default handler.
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGUSR1, on_dump);

  if (fleet) {
    for (int i = 0; i < shards; ++i) {
      if (auto filters = make_filters(); !filters.empty()) {
        fleet->shard(i).set_filter_chain(std::move(filters));
      }
      auto listener = bind_addr(shard_addr(sock_path, i));
      if (!listener) return 1;
      fleet->serve_listener(i, std::move(listener));
    }
  } else {
    auto listener = bind_addr(sock_path);
    if (!listener) return 1;
    server->serve_listener(std::move(listener));
  }

  char lanes[16];
  if (cfg.recv_lanes > 0) {
    std::snprintf(lanes, sizeof(lanes), "%d", cfg.recv_lanes);
  } else {
    std::snprintf(lanes, sizeof(lanes), "auto");
  }
  std::printf(
      "ion_daemon listening on %s (shards=%d, exec=%s, workers=%d, recv_lanes=%s, root=%s, "
      "bb=%llu MiB%s%s%s)\n",
      sock_path.c_str(), shards, rt::to_string(cfg.exec), cfg.workers, lanes, root.c_str(),
      static_cast<unsigned long long>(cfg.bb_bytes >> 20),
      cluster_bb_mib > 0 ? (", cluster_bb=" + std::to_string(cluster_bb_mib) + " MiB").c_str()
                         : "",
      cfg.bb_journal_dir.empty()
          ? ""
          : (", journal=" + cfg.bb_journal_dir + (cfg.bb_journal_fsync ? " (fsync)" : ""))
                .c_str(),
      trace_out.empty() ? "" : ", tracing");

  // Main loop: poll the signal flags (a flight-recorder dump must run on
  // this thread, not in the handler) and run the periodic stats ticker.
  auto last_tick = std::chrono::steady_clock::now();
  std::uint64_t last_ops = 0;
  std::uint64_t last_bytes = 0;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (g_dump != 0) {
      g_dump = 0;
      dump_observability();
    }
    if (stats_interval_s > 0 &&
        std::chrono::steady_clock::now() - last_tick >= std::chrono::seconds(stats_interval_s)) {
      last_tick = std::chrono::steady_clock::now();
      const auto snap = snapshot();
      const std::uint64_t ops = sum_counter(snap, "server.ops");
      const std::uint64_t bytes = sum_counter(snap, "server.bytes_in");
      std::printf("[stats] ops=%llu (+%llu) in=%.1f MiB (+%.1f) queue=%lld bml=%.1f MiB\n",
                  static_cast<unsigned long long>(ops),
                  static_cast<unsigned long long>(ops - last_ops),
                  static_cast<double>(bytes) / (1 << 20),
                  static_cast<double>(bytes - last_bytes) / (1 << 20),
                  static_cast<long long>(sum_gauge(snap, "server.queue_depth")),
                  static_cast<double>(sum_gauge(snap, "server.bml_in_use")) / (1 << 20));
      std::fflush(stdout);
      last_ops = ops;
      last_bytes = bytes;
    }
  }

  // Drain first: stop() quiesces workers and flushes every burst buffer, so
  // the stats below include everything that was still in flight.
  std::printf("\nsignal received, draining...\n");
  if (fleet) {
    fleet->stop();
  } else {
    server->stop();
  }

  rt::ServerStats s{};
  if (fleet) {
    for (int i = 0; i < shards; ++i) {
      const auto ss = fleet->shard(i).stats();
      s.ops += ss.ops;
      s.bytes_in += ss.bytes_in;
      s.bytes_out += ss.bytes_out;
      s.deferred_errors += ss.deferred_errors;
      s.bb_flushed_bytes += ss.bb_flushed_bytes;
    }
  } else {
    s = server->stats();
  }
  std::printf("shut down: %llu ops, %.1f MiB in, %.1f MiB out, %llu deferred errors\n",
              static_cast<unsigned long long>(s.ops),
              static_cast<double>(s.bytes_in) / (1 << 20),
              static_cast<double>(s.bytes_out) / (1 << 20),
              static_cast<unsigned long long>(s.deferred_errors));
  if (cfg.bb_bytes > 0 && !fleet) {
    std::printf("burst buffer: %.0f%% hit rate, %.1fx coalesce, %.1f MiB flushed\n",
                100.0 * s.bb_hit_rate, s.bb_coalesce_ratio,
                static_cast<double>(s.bb_flushed_bytes) / (1 << 20));
  }
  if (fleet) {
    if (const cluster::ClusterBbBudget* budget = fleet->budget()) {
      std::printf("cluster bb budget: %.1f MiB peak of %.1f MiB, %llu denials\n",
                  static_cast<double>(budget->staged_high_water()) / (1 << 20),
                  static_cast<double>(budget->capacity()) / (1 << 20),
                  static_cast<unsigned long long>(budget->denials()));
    }
  }
  dump_observability();

  if (!trace_out.empty()) {
    if (Status st = tracer.write_json(trace_out); !st.is_ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", st.to_string().c_str());
    } else {
      std::printf("[trace] %s (%zu events)\n", trace_out.c_str(), tracer.event_count());
    }
  }
  return 0;
}
