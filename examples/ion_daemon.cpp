// ion_daemon: run the I/O forwarding server as a standalone daemon on a
// UNIX-domain socket — the deployment shape of CIOD/ZOID on a real I/O node.
//
//   $ ./ion_daemon /tmp/iofwd.sock [exec=async|queue|thread] [workers=4]
//                  [recv_lanes=0] [root=/tmp/iofwd_data] [bml_mib=256] [bb_mib=0]
//                  [aggregate_kib=0] [downsample=0] [rle=0]
//                  [retry=0] [bml_wait_ms=100] [degraded_high=0]
//                  [degraded_low=0] [bb_stall_ms=100]
//                  [--trace-out=FILE] [stats_interval_s=0] [flight_ops=256]
//   $ ./ion_daemon tcp:9090 ...          # listen on TCP port instead
//
// Every knob also accepts GNU style (--workers=4) and an IOFWD_<KEY>
// environment fallback (core/flags.hpp).
//
// recv_lanes=N      epoll receiver lanes multiplexing all connections
//                   (DESIGN.md §13); 0 = min(4, hardware threads)
// aggregate_kib=N   coalesce sequential writes into N-KiB backend writes
// bb_mib=N          burst-buffer staging cache of N MiB (DESIGN.md §9)
// downsample=K      keep every K-th 8-byte element (in-situ data reduction)
// rle=1             zero-run-length-encode payloads before storage
//
// Resilience knobs (DESIGN.md §10):
// retry=N           wrap the backend in fault::RetryingBackend, N attempts
// bml_wait_ms=N     bounded BML wait before degraded pass-through (0=block)
// degraded_high=N   queue depth that switches async staging to synchronous
// degraded_low=N    queue depth that switches back (hysteresis)
// bb_stall_ms=N     burst-buffer stall bound before write-through (0=block)
//
// Observability knobs (DESIGN.md §11):
// --trace-out=FILE  write a Chrome-trace (Perfetto) JSON of every op on
//                   shutdown: per-op spans on worker-lane tids plus
//                   queue-depth and BML-in-use counter tracks
// stats_interval_s=N  print a one-line metric summary every N seconds
// flight_ops=N      completed-op flight-recorder ring size (0 = off)
// SIGUSR1           dump the full metrics table + the flight-recorder ring
//                   to stdout without stopping the daemon
//
// Any process may then connect with rt::SocketTransport::connect_unix and
// drive it through rt::Client (see examples/quickstart.cpp for the calls).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "analysis/report.hpp"
#include "core/flags.hpp"
#include "fault/retry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/aggregator.hpp"
#include "rt/server.hpp"

using namespace iofwd;

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump = 0;
void on_signal(int) { g_stop = 1; }
void on_dump(int) { g_dump = 1; }

void dump_observability(const rt::IonServer& server) {
  std::fputs(analysis::metrics_table(server.metrics(), "ion_daemon metrics").render().c_str(),
             stdout);
  if (const obs::FlightRecorder* fr = server.flight_recorder()) {
    std::fputs(fr->dump().c_str(), stdout);
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  flags::Parser args(argc, argv);
  if (args.positionals().empty()) {
    std::fprintf(stderr,
                 "usage: %s <socket-path> [exec=async|queue|thread] [workers=N] "
                 "[recv_lanes=N] [root=DIR] [bml_mib=N] [bb_mib=N] [--trace-out=FILE] "
                 "[stats_interval_s=N] [flight_ops=N]\n",
                 argv[0]);
    return 2;
  }
  const std::string sock_path = args.positional(0);
  const std::string exec = args.get("exec", "async");
  const std::string root = args.get("root", "/tmp/iofwd_data");
  const std::string trace_out = args.get("trace_out", "");
  const int stats_interval_s = args.get_int("stats_interval_s", 0);

  // One registry for every layer: the server, its burst buffer, and the
  // retry decorator all record under their own prefix, so a single snapshot
  // (SIGUSR1, ticker, shutdown) covers the whole daemon.
  obs::MetricRegistry registry;
  obs::RuntimeTracer tracer;

  rt::ServerConfig cfg;
  cfg.workers = args.get_int("workers", 4);
  cfg.recv_lanes = args.get_int("recv_lanes", 0);
  cfg.bml_bytes = args.get_u64("bml_mib", 256) << 20;
  cfg.bb_bytes = args.get_u64("bb_mib", 0) << 20;
  if (exec == "thread") {
    cfg.exec = rt::ExecModel::thread_per_client;
  } else if (exec == "queue") {
    cfg.exec = rt::ExecModel::work_queue;
  } else {
    cfg.exec = rt::ExecModel::work_queue_async;
  }
  cfg.bml_wait_ms = static_cast<std::uint32_t>(args.get_int("bml_wait_ms", 100));
  cfg.bb_max_stall_ms = static_cast<std::uint32_t>(args.get_int("bb_stall_ms", 100));
  cfg.degraded_high_watermark = args.get_u64("degraded_high", 0);
  cfg.degraded_low_watermark = args.get_u64("degraded_low", 0);
  cfg.registry = &registry;
  cfg.flight_recorder_ops = static_cast<std::size_t>(args.get_int("flight_ops", 256));
  if (!trace_out.empty()) cfg.tracer = &tracer;

  std::unique_ptr<rt::Listener> listener;
  if (sock_path.rfind("tcp:", 0) == 0) {
    auto port = static_cast<std::uint16_t>(std::atoi(sock_path.c_str() + 4));
    auto l = rt::TcpListener::bind(port, "0.0.0.0");
    if (!l.is_ok()) {
      std::fprintf(stderr, "bind %s: %s\n", sock_path.c_str(),
                   l.status().to_string().c_str());
      return 1;
    }
    std::printf("listening on tcp port %u\n", l.value()->port());
    listener = std::move(l).value();
  } else {
    auto l = rt::UnixListener::bind(sock_path);
    if (!l.is_ok()) {
      std::fprintf(stderr, "bind %s: %s\n", sock_path.c_str(),
                   l.status().to_string().c_str());
      return 1;
    }
    listener = std::move(l).value();
  }

  std::unique_ptr<rt::IoBackend> backend = std::make_unique<rt::FileBackend>(root);
  const int agg_kib = args.get_int("aggregate_kib", 0);
  if (agg_kib > 0) {
    backend = std::make_unique<rt::AggregatingBackend>(std::move(backend),
                                                       static_cast<std::uint64_t>(agg_kib) << 10);
  }
  const int retry = args.get_int("retry", 0);
  if (retry > 0) {
    fault::RetryPolicy policy;
    policy.max_attempts = retry;
    policy.registry = &registry;  // "retry.*" lands in the shared snapshot
    backend = std::make_unique<fault::RetryingBackend>(std::move(backend), policy);
  }

  rt::FilterChain filters;
  const int stride = args.get_int("downsample", 0);
  if (stride > 1) filters.add(std::make_shared<rt::DownsampleFilter>(stride));
  if (args.get_flag("rle")) filters.add(std::make_shared<rt::ZeroRleFilter>());

  for (const auto& k : args.unknown()) {
    std::fprintf(stderr, "warning: unknown knob '%s' ignored\n", k.c_str());
  }

  rt::IonServer server(std::move(backend), cfg);
  if (!filters.empty()) server.set_filter_chain(std::move(filters));

  // Install the handlers before serving starts so a signal racing startup
  // still lands on a clean shutdown path instead of the default handler.
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGUSR1, on_dump);

  server.serve_listener(std::move(listener));
  char lanes[16];
  if (cfg.recv_lanes > 0) {
    std::snprintf(lanes, sizeof(lanes), "%d", cfg.recv_lanes);
  } else {
    std::snprintf(lanes, sizeof(lanes), "auto");
  }
  std::printf(
      "ion_daemon listening on %s (exec=%s, workers=%d, recv_lanes=%s, root=%s, bb=%llu MiB%s)\n",
      sock_path.c_str(), rt::to_string(cfg.exec), cfg.workers, lanes, root.c_str(),
      static_cast<unsigned long long>(cfg.bb_bytes >> 20), trace_out.empty() ? "" : ", tracing");

  // Main loop: poll the signal flags (a flight-recorder dump must run on
  // this thread, not in the handler) and run the periodic stats ticker.
  auto last_tick = std::chrono::steady_clock::now();
  std::uint64_t last_ops = 0;
  std::uint64_t last_bytes = 0;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (g_dump != 0) {
      g_dump = 0;
      dump_observability(server);
    }
    if (stats_interval_s > 0 &&
        std::chrono::steady_clock::now() - last_tick >= std::chrono::seconds(stats_interval_s)) {
      last_tick = std::chrono::steady_clock::now();
      const auto snap = server.metrics();
      const std::uint64_t ops = snap.counter("server.ops");
      const std::uint64_t bytes = snap.counter("server.bytes_in");
      std::printf("[stats] ops=%llu (+%llu) in=%.1f MiB (+%.1f) queue=%lld bml=%.1f MiB\n",
                  static_cast<unsigned long long>(ops),
                  static_cast<unsigned long long>(ops - last_ops),
                  static_cast<double>(bytes) / (1 << 20),
                  static_cast<double>(bytes - last_bytes) / (1 << 20),
                  static_cast<long long>(snap.gauge("server.queue_depth")),
                  static_cast<double>(snap.gauge("server.bml_in_use")) / (1 << 20));
      std::fflush(stdout);
      last_ops = ops;
      last_bytes = bytes;
    }
  }

  // Drain first: stop() quiesces workers and flushes the burst buffer, so
  // the stats below include everything that was still in flight.
  std::printf("\nsignal received, draining...\n");
  server.stop();

  const auto s = server.stats();
  std::printf("shut down: %llu ops, %.1f MiB in, %.1f MiB out, %llu deferred errors\n",
              static_cast<unsigned long long>(s.ops),
              static_cast<double>(s.bytes_in) / (1 << 20),
              static_cast<double>(s.bytes_out) / (1 << 20),
              static_cast<unsigned long long>(s.deferred_errors));
  if (cfg.bb_bytes > 0) {
    std::printf("burst buffer: %.0f%% hit rate, %.1fx coalesce, %.1f MiB flushed\n",
                100.0 * s.bb_hit_rate, s.bb_coalesce_ratio,
                static_cast<double>(s.bb_flushed_bytes) / (1 << 20));
  }
  dump_observability(server);

  if (!trace_out.empty()) {
    if (Status st = tracer.write_json(trace_out); !st.is_ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", st.to_string().c_str());
    } else {
      std::printf("[trace] %s (%zu events)\n", trace_out.c_str(), tracer.event_count());
    }
  }
  return 0;
}
