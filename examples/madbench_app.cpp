// An out-of-core matrix application (MADbench2's I/O pattern, Sec. V-B)
// running on the REAL forwarding runtime: N application threads act as
// compute processes, forwarding successive large contiguous writes and
// reads of component matrices through an ION server to a file backend.
//
//   $ ./madbench_app [procs=8] [matrices=64] [mib_per_op=2]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "rt/client.hpp"
#include "rt/server.hpp"

using namespace iofwd;

namespace {

int arg(int argc, char** argv, const char* key, int dflt) {
  const std::size_t klen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, klen) == 0 && argv[i][klen] == '=') {
      return std::atoi(argv[i] + klen + 1);
    }
  }
  return dflt;
}

}  // namespace

int main(int argc, char** argv) {
  const int procs = arg(argc, argv, "procs", 8);
  const int matrices = arg(argc, argv, "matrices", 64);
  const auto op_bytes = static_cast<std::uint64_t>(arg(argc, argv, "mib_per_op", 2)) << 20;

  const auto root = std::filesystem::temp_directory_path() /
                    ("iofwd_madbench_" + std::to_string(::getpid()));

  rt::ServerConfig cfg;
  cfg.exec = rt::ExecModel::work_queue_async;
  cfg.workers = 4;
  cfg.bml_bytes = 256u << 20;
  rt::IonServer server(std::make_unique<rt::FileBackend>(root.string()), cfg);

  std::printf("MADbench-style run: %d procs x %d matrices x %.0f MiB/op -> %s\n", procs,
              matrices, static_cast<double>(op_bytes) / (1 << 20), root.c_str());

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::jthread> threads;
  std::atomic<int> failures{0};
  for (int rank = 0; rank < procs; ++rank) {
    threads.emplace_back([&, rank] {
      auto [server_end, client_end] = rt::InProcTransport::make_pair();
      server.serve(std::move(server_end));
      rt::Client client(std::move(client_end));

      const int fd = 100 + rank;
      if (!client.open(fd, "component_matrices_" + std::to_string(rank)).is_ok()) {
        ++failures;
        return;
      }
      std::vector<std::byte> block(op_bytes);
      for (std::size_t i = 0; i < block.size(); ++i) {
        block[i] = static_cast<std::byte>(i ^ static_cast<std::size_t>(rank));
      }

      // Phase S: write the first quarter of the matrices.
      // Phase W: alternate read/write over the middle half.
      // Phase C: read the last quarter back.
      const int s_end = matrices / 4;
      const int w_end = s_end + matrices / 2;
      for (int m = 0; m < matrices; ++m) {
        const auto off = static_cast<std::uint64_t>(m % std::max(1, w_end)) * op_bytes;
        const bool is_read = (m >= w_end) || (m >= s_end && (m - s_end) % 2 == 1);
        if (is_read) {
          auto r = client.read(fd, off, op_bytes);
          if (!r.is_ok()) ++failures;
        } else {
          if (!client.write(fd, off, block).is_ok()) ++failures;
        }
      }
      if (!client.fsync(fd).is_ok()) ++failures;
      if (!client.close(fd).is_ok()) ++failures;
    });
  }
  threads.clear();  // join
  const auto dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const auto s = server.stats();
  const double total_mib = static_cast<double>(s.bytes_in + s.bytes_out) / (1 << 20);
  std::printf("moved %.0f MiB in %.2f s -> %.1f MiB/s aggregate (%llu ops, %llu batches)\n",
              total_mib, dt, total_mib / dt, static_cast<unsigned long long>(s.ops),
              static_cast<unsigned long long>(s.queue_batches));
  if (failures > 0) {
    std::printf("FAILURES: %d\n", failures.load());
    return 1;
  }
  server.stop();
  std::filesystem::remove_all(root);
  return 0;
}
