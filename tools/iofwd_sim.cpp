// iofwd_sim: the standalone simulator CLI.
//
// Runs a named workload on the simulated machine with any knob overridden
// from key=value arguments or IOFWD_* environment variables:
//
//   iofwd_sim stream mech=async cns=64 msg_kib=1024 iters=500
//   iofwd_sim stream machine.ion_cores=8 forwarder.workers=8
//   iofwd_sim madbench nodes=64 matrices=256
//   iofwd_sim ior pattern=strided direction=write+read segments=32
//   iofwd_sim checkpoint cycles=20
//
// Mechanisms: ciod | zoid | sched | async.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/config.hpp"
#include "proto/config_io.hpp"
#include "wl/checkpoint.hpp"
#include "wl/ior.hpp"
#include "wl/madbench.hpp"
#include "wl/stream.hpp"

using namespace iofwd;

namespace {

proto::Mechanism parse_mech(const std::string& s) {
  if (s == "ciod") return proto::Mechanism::ciod;
  if (s == "zoid") return proto::Mechanism::zoid;
  if (s == "sched") return proto::Mechanism::zoid_sched;
  return proto::Mechanism::zoid_sched_async;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <stream|madbench|ior|checkpoint> [key=value ...]\n"
               "  common: mech=ciod|zoid|sched|async, machine.*, forwarder.*\n"
               "  stream:     cns= msg_kib= iters= sink=da|null trace=FILE.json\n"
               "  madbench:   nodes= npix= matrices=\n"
               "  ior:        cns= pattern=sequential|strided|random\n"
               "              direction=write|read|write+read segments= xfer_kib= shared=0|1\n"
               "  checkpoint: cns= cycles= compute_ms= ckpt_kib=\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string workload = argv[1];

  Config cfg;
  for (int i = 2; i < argc; ++i) {
    if (!cfg.parse_override(argv[i])) {
      std::fprintf(stderr, "bad argument: %s\n", argv[i]);
      return usage(argv[0]);
    }
  }

  auto machine = proto::apply_machine_config(cfg, bgp::MachineConfig::intrepid());
  if (!machine.is_ok()) {
    std::fprintf(stderr, "%s\n", machine.status().to_string().c_str());
    return 2;
  }
  auto fwd = proto::apply_forwarder_config(cfg, {});
  if (!fwd.is_ok()) {
    std::fprintf(stderr, "%s\n", fwd.status().to_string().c_str());
    return 2;
  }
  const auto mech = parse_mech(cfg.get("mech", "async"));

  if (workload == "stream") {
    wl::StreamParams p;
    p.cns_per_pset = static_cast<int>(cfg.get_int("cns", 64));
    p.message_bytes = static_cast<std::uint64_t>(cfg.get_int("msg_kib", 1024)) << 10;
    p.iterations = static_cast<int>(cfg.get_int("iters", 500));
    p.sink = cfg.get("sink", "da") == "null" ? proto::SinkTarget::Kind::dev_null
                                             : proto::SinkTarget::Kind::da_memory;
    p.trace_path = cfg.get("trace", "");
    const auto r = wl::run_stream(mech, machine.value(), fwd.value(), p);
    std::printf("stream %s: %.1f MiB/s (%llu ops, %.3f s simulated, %llu events)\n",
                proto::to_string(mech).c_str(), r.throughput_mib_s,
                static_cast<unsigned long long>(r.metrics.ops_completed),
                sim::to_seconds(r.elapsed), static_cast<unsigned long long>(r.sim_events));
    return 0;
  }
  if (workload == "madbench") {
    wl::MadbenchParams p;
    p.nodes = static_cast<int>(cfg.get_int("nodes", 64));
    p.npix = static_cast<std::uint64_t>(cfg.get_int("npix", 4096));
    p.n_matrices = static_cast<int>(cfg.get_int("matrices", 1024));
    const auto r = wl::run_madbench(mech, machine.value(), fwd.value(), p);
    std::printf("madbench %s: %.1f MiB/s (%.1f GiB in %.1f s; %llu writes, %llu reads)\n",
                proto::to_string(mech).c_str(), r.throughput_mib_s,
                static_cast<double>(r.bytes) / (1ull << 30), r.elapsed_s,
                static_cast<unsigned long long>(r.writes),
                static_cast<unsigned long long>(r.reads));
    return 0;
  }
  if (workload == "ior") {
    wl::IorParams p;
    p.cns = static_cast<int>(cfg.get_int("cns", 64));
    p.segments = static_cast<int>(cfg.get_int("segments", 64));
    p.transfer_bytes = static_cast<std::uint64_t>(cfg.get_int("xfer_kib", 1024)) << 10;
    p.shared_file = cfg.get_bool("shared", true);
    const std::string pat = cfg.get("pattern", "sequential");
    p.pattern = pat == "strided"  ? wl::IorPattern::strided
                : pat == "random" ? wl::IorPattern::random
                                  : wl::IorPattern::sequential;
    const std::string dir = cfg.get("direction", "write");
    p.direction = dir == "read"         ? wl::IorDirection::read_only
                  : dir == "write+read" ? wl::IorDirection::write_then_read
                                        : wl::IorDirection::write_only;
    const auto r = wl::run_ior(mech, machine.value(), fwd.value(), p);
    std::printf("ior %s %s %s: write %.1f MiB/s, read %.1f MiB/s (%.3f s)\n",
                proto::to_string(mech).c_str(), wl::to_string(p.pattern),
                wl::to_string(p.direction), r.write_mib_s, r.read_mib_s, r.elapsed_s);
    return 0;
  }
  if (workload == "checkpoint") {
    wl::CheckpointParams p;
    p.cns = static_cast<int>(cfg.get_int("cns", 64));
    p.cycles = static_cast<int>(cfg.get_int("cycles", 20));
    p.compute_ns = cfg.get_int("compute_ms", 400) * 1'000'000;
    p.checkpoint_bytes = static_cast<std::uint64_t>(cfg.get_int("ckpt_kib", 4096)) << 10;
    const auto r = wl::run_checkpoint(mech, machine.value(), fwd.value(), p);
    std::printf("checkpoint %s: total %.2f s, compute %.2f s, I/O overhead %.0f%%\n",
                proto::to_string(mech).c_str(), r.total_time_s, r.compute_time_s,
                r.io_overhead_pct);
    return 0;
  }
  return usage(argv[0]);
}
