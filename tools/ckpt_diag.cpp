#include <cstdio>
#include "wl/checkpoint.hpp"
using namespace iofwd;
int main() {
  auto cfg = bgp::MachineConfig::intrepid();
  wl::CheckpointParams p;
  p.cycles = 5;
  for (auto m : {proto::Mechanism::zoid, proto::Mechanism::zoid_sched,
                 proto::Mechanism::zoid_sched_async}) {
    auto r = wl::run_checkpoint(m, cfg, {}, p);
    printf("%-18s total=%.2fs compute=%.2fs ovh=%.0f%% rate=%.0f MiB/s\n",
           proto::to_string(m).c_str(), r.total_time_s, r.compute_time_s, r.io_overhead_pct,
           r.aggregate_mib_s);
  }
  return 0;
}
