// Diagnostic: run one streaming configuration and show where the bottleneck
// sits — per-resource utilization sparklines sampled by sim::Telemetry.
//
//   diag [ncn] [mech 0..3] [msg_kib]
#include <cstdio>
#include <memory>
#include <vector>

#include "bgp/machine.hpp"
#include "proto/forwarder.hpp"
#include "sim/sync.hpp"
#include "sim/telemetry.hpp"

using namespace iofwd;

namespace {

sim::Proc<void> cn_app(proto::Forwarder& fwd, int cn, proto::SinkTarget sink, std::uint64_t bytes,
                       int iters) {
  for (int i = 0; i < iters; ++i) (void)co_await fwd.write(cn, -1, bytes, sink);
}

sim::Proc<void> driver(bgp::Machine& m, proto::Forwarder& fwd, sim::Telemetry& tm, int ncn,
                       std::uint64_t msg, int iters) {
  std::vector<sim::Proc<void>> apps;
  proto::SinkTarget sink;
  sink.kind = proto::SinkTarget::Kind::da_memory;
  for (int c = 0; c < ncn; ++c) apps.push_back(cn_app(fwd, c, sink, msg, iters));
  co_await sim::when_all(m.engine(), std::move(apps));
  co_await fwd.drain();
  tm.stop();
  fwd.shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  const int ncn = argc > 1 ? atoi(argv[1]) : 64;
  const int mech = argc > 2 ? atoi(argv[2]) : 3;
  const std::uint64_t msg = (argc > 3 ? static_cast<std::uint64_t>(atoi(argv[3])) : 1024) << 10;

  sim::Engine eng;
  bgp::Machine m(eng, bgp::MachineConfig::intrepid());
  proto::RunMetrics metrics;
  auto fwd = proto::make_forwarder(static_cast<proto::Mechanism>(mech), m, m.pset(0), metrics, {});

  sim::Telemetry tm(eng, 20'000'000);  // 20 ms windows
  tm.track_link("tree", m.pset(0).tree());
  tm.track_cpu("ion.cpu", m.pset(0).ion().cpu());
  tm.track_link("ion.nic", m.pset(0).ion().nic());
  tm.track_link("da.nic", m.da(0).nic());
  tm.start();

  eng.spawn(driver(m, *fwd, tm, ncn, msg, 200));
  eng.run();

  const auto el = metrics.last_delivery;
  std::printf("mech=%s ncn=%d msg=%llu KiB -> %.1f MiB/s over %.3f simulated s\n\n",
              proto::to_string(static_cast<proto::Mechanism>(mech)).c_str(), ncn,
              static_cast<unsigned long long>(msg >> 10), metrics.throughput_mib_s(0, el),
              sim::to_seconds(el));
  std::printf("%s\n", tm.render().c_str());
  std::printf("(each cell = one 20 ms window; @ = saturated, . = idle)\n");
  return 0;
}
