// Quick calibration driver (not installed): prints throughput for a sweep.
#include <cstdio>
#include "wl/stream.hpp"
using namespace iofwd;
int main() {
  bgp::MachineConfig mc = bgp::MachineConfig::intrepid();
  proto::ForwarderConfig fc;
  printf("end_to_end_bound=%.1f tree_peak=%.1f ext4=%.1f ext1=%.1f ext8=%.1f\n",
         mc.end_to_end_bound_mib_s(), mc.tree_effective_peak_mib_s(),
         mc.external_peak_mib_s(4), mc.external_peak_mib_s(1), mc.external_peak_mib_s(8));
  wl::StreamParams p;
  p.iterations = 200;
  for (int ncn : {1, 2, 4, 8, 16, 32, 64}) {
    p.cns_per_pset = ncn;
    printf("ncn=%2d :", ncn);
    for (auto m : {proto::Mechanism::ciod, proto::Mechanism::zoid, proto::Mechanism::zoid_sched,
                   proto::Mechanism::zoid_sched_async}) {
      auto r = wl::run_stream(m, mc, fc, p);
      printf("  %s=%6.1f", proto::to_string(m).c_str(), r.throughput_mib_s);
    }
    printf("\n");
    fflush(stdout);
  }
  // dev_null (fig4 shape)
  printf("-- dev_null (collective network only) --\n");
  p.sink = proto::SinkTarget::Kind::dev_null;
  for (int ncn : {1, 2, 4, 8, 16, 32, 64}) {
    p.cns_per_pset = ncn;
    auto rc = wl::run_stream(proto::Mechanism::ciod, mc, fc, p);
    auto rz = wl::run_stream(proto::Mechanism::zoid, mc, fc, p);
    printf("ncn=%2d : ciod=%6.1f zoid=%6.1f\n", ncn, rc.throughput_mib_s, rz.throughput_mib_s);
    fflush(stdout);
  }
  return 0;
}
