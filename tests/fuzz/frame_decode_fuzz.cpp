// Fuzz target: FrameHeader::decode must be total over arbitrary bytes.
//
// Invariants checked on every input (violations trap):
//   * decode never crashes and rejects with exactly one of the three wire
//     statuses: checksum_error, protocol_error, message_too_large;
//   * an accepted header's payload_len is bounded by kMaxPayload — callers
//     allocate based on it, so this IS the allocation guard;
//   * accepted flag bits are within kFlagMask, the priority class is within
//     kMaxPriorityClass, and reserved is zero;
//   * accepted headers survive an encode/decode round trip bit-for-bit
//     (decode ∘ encode = id on the accepted set).
#include <cstring>
#include <span>

#include "fuzz_targets.hpp"
#include "rt/wire.hpp"

namespace iofwd::fuzz {

namespace {

using rt::FrameHeader;

bool same_header(const FrameHeader& a, const FrameHeader& b) {
  return a.magic == b.magic && a.type == b.type && a.op == b.op && a.flags == b.flags &&
         a.version == b.version && a.klass == b.klass && a.reserved == b.reserved &&
         a.fd == b.fd &&
         a.status == b.status && a.seq == b.seq && a.offset == b.offset &&
         a.payload_len == b.payload_len && a.deadline_ms == b.deadline_ms &&
         a.payload_crc == b.payload_crc;
}

}  // namespace

int frame_decode_one(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::byte> in(reinterpret_cast<const std::byte*>(data), size);
  auto r = FrameHeader::decode(in);
  if (!r.is_ok()) {
    const Errc e = r.code();
    if (e != Errc::checksum_error && e != Errc::protocol_error &&
        e != Errc::message_too_large) {
      __builtin_trap();  // rejection leaked an unexpected status
    }
    return 0;
  }

  const FrameHeader h = r.value();
  if (h.payload_len > rt::kMaxPayload) __builtin_trap();
  if ((h.flags & ~FrameHeader::kFlagMask) != 0) __builtin_trap();
  if (h.klass > rt::kMaxPriorityClass) __builtin_trap();
  if (h.reserved != 0) __builtin_trap();

  std::byte buf[FrameHeader::kWireSize];
  h.encode(std::span<std::byte, FrameHeader::kWireSize>(buf));
  auto r2 = FrameHeader::decode(std::span<const std::byte, FrameHeader::kWireSize>(buf));
  if (!r2.is_ok() || !same_header(h, r2.value())) __builtin_trap();
  // encode stamps the CRC from the bytes; an accepted input's CRC matched,
  // so re-encoding the same fields must reproduce the input exactly.
  if (std::memcmp(buf, data, FrameHeader::kWireSize) != 0) __builtin_trap();
  return 0;
}

}  // namespace iofwd::fuzz

#ifndef IOFWD_CORPUS_DRIVER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  return iofwd::fuzz::frame_decode_one(data, size);
}
#endif
