// Fuzz target: the IonServer receiver path must be total over arbitrary
// byte streams.
//
// IonServer::feed_bytes runs the real receiver loop — header CRC check,
// frame validation, payload reads, op dispatch, reply encoding — over the
// fuzz input, synchronously, against a MemBackend. The server must neither
// crash nor hang nor allocate unboundedly: payload_len is CRC-protected and
// bounded by kMaxPayload at decode, and staging allocations come from the
// (deliberately tiny) BML pool, so a hostile length bounces with no_memory
// instead of sizing a heap allocation.
//
// thread_per_client keeps execution on the feeding thread: every op the
// input manages to express completes inline, so the target is deterministic
// and single-threaded end to end.
#include <memory>
#include <span>

#include "fuzz_targets.hpp"
#include "rt/backend.hpp"
#include "rt/server.hpp"

namespace iofwd::fuzz {

int server_bytes_one(const std::uint8_t* data, std::size_t size) {
  using namespace iofwd::rt;
  ServerConfig cfg;
  cfg.exec = ExecModel::thread_per_client;  // inline, single-threaded ops
  cfg.workers = 0;
  cfg.bml_bytes = 1 << 20;       // bounds any payload staging to 1 MiB
  cfg.bml_wait_ms = 1;           // an unservable lease bounces, not blocks
  cfg.flight_recorder_ops = 0;
  IonServer server(std::make_unique<MemBackend>(), cfg);
  server.feed_bytes(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(data), size));
  server.stop();
  return 0;
}

}  // namespace iofwd::fuzz

#ifndef IOFWD_CORPUS_DRIVER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  return iofwd::fuzz::server_bytes_one(data, size);
}
#endif
