// Shared entry points for the integrity fuzz targets (DESIGN.md §12).
//
// Each target lives in its own .cpp which defines the libFuzzer
// LLVMFuzzerTestOneInput symbol when built standalone (-fsanitize=fuzzer)
// and suppresses it under IOFWD_CORPUS_DRIVER so the deterministic ctest
// driver (corpus_driver.cpp) can link both targets into one binary and
// replay the checked-in corpus without libFuzzer.
//
// Contract: a target never crashes, never aborts, and never allocates based
// on unvalidated wire input — any violation is a finding and trips
// __builtin_trap() so both libFuzzer and the plain driver flag it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace iofwd::fuzz {

// FrameHeader::decode over an arbitrary byte span, plus encode/decode
// identity when the input is accepted.
int frame_decode_one(const std::uint8_t* data, std::size_t size);

// IonServer::feed_bytes: the full receiver parse path (header decode, frame
// validation, payload reads, op dispatch) over an arbitrary byte stream
// against a MemBackend server.
int server_bytes_one(const std::uint8_t* data, std::size_t size);

}  // namespace iofwd::fuzz
