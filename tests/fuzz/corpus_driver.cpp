// Deterministic corpus driver for the integrity fuzz targets.
//
// libFuzzer needs clang and -fsanitize=fuzzer; plain ctest runs everywhere.
// This driver bridges the two: it links BOTH fuzz target bodies (compiled
// with IOFWD_CORPUS_DRIVER so their LLVMFuzzerTestOneInput symbols do not
// collide) and
//
//   1. replays every checked-in corpus file through its target, and
//   2. runs a seeded mutation storm per file (bit flips, truncations, byte
//      rewrites, duplications) so the decode/receive paths see thousands of
//      near-valid inputs on every ctest run — the corpus stays a regression
//      suite even on toolchains without libFuzzer.
//
// `--regen <corpus_root>` rewrites the seed corpus from scratch; seeds are
// built with the real encoder (valid frames for every opcode, whole
// sessions) plus surgically damaged variants (bad magic with a fixed-up
// CRC, oversize payload_len, undefined flags, flipped CRC, truncations) so
// the fuzzer starts inside the interesting part of the input space instead
// of fighting a 32-bit checksum.
//
// Usage:
//   fuzz_corpus_driver <corpus_root>            # replay + mutate (ctest)
//   fuzz_corpus_driver --regen <corpus_root>    # rewrite the seed corpus
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/crc32c.hpp"
#include "core/log.hpp"
#include "core/rng.hpp"
#include "fuzz_targets.hpp"
#include "rt/wire.hpp"

namespace fs = std::filesystem;

namespace {

using iofwd::Rng;
using iofwd::rt::FrameHeader;
using iofwd::rt::MsgType;
using iofwd::rt::OpCode;

using Bytes = std::vector<std::uint8_t>;

Bytes encode(const FrameHeader& h) {
  Bytes out(FrameHeader::kWireSize);
  h.encode(std::span<std::byte, FrameHeader::kWireSize>(
      reinterpret_cast<std::byte*>(out.data()), FrameHeader::kWireSize));
  return out;
}

// Patch raw header bytes, then restore CRC validity so decode reaches the
// field checks instead of bouncing at the checksum.
Bytes patch(Bytes b, std::size_t off, std::initializer_list<std::uint8_t> v) {
  std::copy(v.begin(), v.end(), b.begin() + static_cast<std::ptrdiff_t>(off));
  const std::uint32_t crc = iofwd::crc32c(b.data(), FrameHeader::kCrcCoverage);
  std::memcpy(b.data() + FrameHeader::kCrcCoverage, &crc, sizeof crc);
  return b;
}

void append(Bytes& out, const Bytes& frame) {
  out.insert(out.end(), frame.begin(), frame.end());
}

FrameHeader request(OpCode op, std::uint64_t seq, int fd = 1) {
  FrameHeader h;
  h.type = MsgType::request;
  h.op = op;
  h.seq = seq;
  h.fd = fd;
  h.version = iofwd::rt::kProtoVersion;
  return h;
}

Bytes payload_frame(FrameHeader h, const Bytes& payload, bool valid_crc = true) {
  h.payload_len = payload.size();
  h.stamp_payload_crc(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(payload.data()), payload.size()));
  if (!valid_crc) h.payload_crc ^= 0xdeadbeef;
  Bytes out = encode(h);
  append(out, payload);
  return out;
}

// ---------------------------------------------------------------------------
// Seed corpus
// ---------------------------------------------------------------------------

std::vector<std::pair<std::string, Bytes>> frame_decode_seeds() {
  std::vector<std::pair<std::string, Bytes>> seeds;
  for (std::uint8_t op = 1; op <= iofwd::rt::kMaxOpCode; ++op) {
    FrameHeader h = request(static_cast<OpCode>(op), op);
    h.offset = 4096;
    h.payload_len = op == 2 ? 8192 : 0;
    h.deadline_ms = 50;
    seeds.emplace_back("valid-op" + std::to_string(op), encode(h));
  }
  {
    FrameHeader rep = request(OpCode::write, 9);
    rep.type = MsgType::reply;
    rep.flags = FrameHeader::kFlagStaged;
    seeds.emplace_back("valid-staged-reply", encode(rep));
  }
  {
    FrameHeader hello = request(OpCode::hello, 1);
    hello.version = 7;  // from the future: decode accepts, receiver clamps
    seeds.emplace_back("hello-future-version", encode(hello));
  }
  const Bytes base = encode(request(OpCode::read, 3));
  seeds.emplace_back("bad-magic", patch(base, 0, {0x58, 0x58, 0x58, 0x58}));
  seeds.emplace_back("bad-type", patch(base, 4, {9}));
  seeds.emplace_back("bad-opcode", patch(base, 5, {0x7f}));
  seeds.emplace_back("undefined-flags", patch(base, 6, {0xf0, 0xff}));
  seeds.emplace_back("future-version-non-hello", patch(base, 8, {0x09, 0x00}));
  // Priority classes ride byte 10 of the old reserved field: every in-range
  // class decodes, out-of-range rejects, and the remaining reserved byte
  // (11) must still be zero.
  for (std::uint8_t k = 1; k <= iofwd::rt::kMaxPriorityClass; ++k) {
    seeds.emplace_back("class-" + std::to_string(k), patch(base, 10, {k}));
  }
  seeds.emplace_back("class-out-of-range",
                     patch(base, 10, {iofwd::rt::kMaxPriorityClass + 1}));
  seeds.emplace_back("reserved-nonzero", patch(base, 11, {0x01}));
  seeds.emplace_back("oversize-payload",
                     patch(base, 36, {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}));
  {
    Bytes flipped = base;
    flipped[20] ^= 0x01;  // body bit flip, CRC left stale -> checksum_error
    seeds.emplace_back("crc-mismatch", std::move(flipped));
  }
  seeds.emplace_back("truncated", Bytes(base.begin(), base.begin() + 20));
  seeds.emplace_back("one-byte", Bytes{0x49});
  return seeds;
}

std::vector<std::pair<std::string, Bytes>> server_bytes_seeds() {
  std::vector<std::pair<std::string, Bytes>> seeds;
  const Bytes path{'f', 'i', 'l', 'e'};
  const Bytes data(4096, 0x42);

  {
    // A complete v1 session: negotiate, open, write, read, fsync, fstat,
    // close, shutdown — every receiver-side handler in one input.
    Bytes s;
    FrameHeader hello = request(OpCode::hello, 1);
    append(s, encode(hello));
    append(s, payload_frame(request(OpCode::open, 2), path));
    FrameHeader w = request(OpCode::write, 3);
    w.offset = 0;
    w.klass = 2;  // priority-classed write through the full receive path
    append(s, payload_frame(w, data));
    FrameHeader r = request(OpCode::read, 4);
    r.payload_len = data.size();
    append(s, encode(r));
    append(s, encode(request(OpCode::fsync, 5)));
    append(s, encode(request(OpCode::fstat, 6)));
    append(s, encode(request(OpCode::close, 7)));
    append(s, encode(request(OpCode::shutdown, 8)));
    seeds.emplace_back("session-v1-full-mix", std::move(s));
  }
  {
    // Legacy v0 peer: no hello, no payload CRCs (flag clear), still served.
    Bytes s;
    FrameHeader open = request(OpCode::open, 1);
    open.version = 0;
    open.payload_len = path.size();
    append(s, encode(open));
    append(s, path);
    FrameHeader w = request(OpCode::write, 2);
    w.version = 0;
    w.payload_len = data.size();
    append(s, encode(w));
    append(s, data);
    seeds.emplace_back("session-v0-unchecked", std::move(s));
  }
  {
    // Corrupt payload: CRC flag set but wrong -> op bounces, stream survives
    // to serve the close that follows.
    Bytes s;
    append(s, payload_frame(request(OpCode::open, 1), path));
    append(s, payload_frame(request(OpCode::write, 2), data, /*valid_crc=*/false));
    append(s, encode(request(OpCode::close, 3)));
    seeds.emplace_back("session-payload-crc-bounce", std::move(s));
  }
  {
    // Corrupt header after a valid open: receiver drops the connection.
    Bytes s;
    append(s, payload_frame(request(OpCode::open, 1), path));
    Bytes bad = encode(request(OpCode::fsync, 2));
    bad[16] ^= 0x10;  // stale CRC
    append(s, bad);
    seeds.emplace_back("session-header-crc-drop", std::move(s));
  }
  {
    // Protocol violation: close must not carry a payload.
    FrameHeader h = request(OpCode::close, 1);
    h.payload_len = 64;
    Bytes s = encode(h);
    s.resize(s.size() + 64, 0xab);
    seeds.emplace_back("session-smuggled-payload", std::move(s));
  }
  {
    // Write whose payload is cut off mid-frame.
    FrameHeader w = request(OpCode::write, 1);
    w.payload_len = data.size();
    Bytes s = encode(w);
    s.insert(s.end(), data.begin(), data.begin() + 100);
    seeds.emplace_back("session-truncated-payload", std::move(s));
  }
  {
    // Oversize write: payload_len far beyond the BML pool -> swallowed and
    // bounced with no_memory, never allocated.
    FrameHeader w = request(OpCode::write, 1);
    w.payload_len = 64ull << 20;
    Bytes s = encode(w);
    s.resize(s.size() + 4096, 0x55);  // only a prefix actually "arrives"
    seeds.emplace_back("session-oversize-write", std::move(s));
  }
  return seeds;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

using Target = int (*)(const std::uint8_t*, std::size_t);

int regen(const fs::path& root) {
  const struct {
    const char* dir;
    std::vector<std::pair<std::string, Bytes>> seeds;
  } sets[] = {
      {"frame_decode", frame_decode_seeds()},
      {"server_bytes", server_bytes_seeds()},
  };
  for (const auto& set : sets) {
    const fs::path dir = root / set.dir;
    fs::create_directories(dir);
    for (const auto& [name, bytes] : set.seeds) {
      std::ofstream f(dir / name, std::ios::binary | std::ios::trunc);
      f.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
      if (!f) {
        std::fprintf(stderr, "cannot write %s\n", (dir / name).c_str());
        return 1;
      }
    }
    std::printf("regen: %zu seeds -> %s\n", set.seeds.size(), dir.c_str());
  }
  return 0;
}

// Deterministic damage: the same file always yields the same mutants.
Bytes mutate(const Bytes& in, Rng& rng) {
  Bytes b = in;
  switch (rng.below(4)) {
    case 0:  // flip 1..8 bits
      if (!b.empty()) {
        const auto flips = 1 + rng.below(8);
        for (std::uint64_t i = 0; i < flips; ++i) {
          const auto bit = rng.below(b.size() * 8);
          b[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
      }
      break;
    case 1:  // truncate
      b.resize(rng.below(b.size() + 1));
      break;
    case 2:  // rewrite a window
      if (!b.empty()) {
        const std::size_t at = rng.below(b.size());
        const std::size_t len = std::min<std::size_t>(1 + rng.below(16), b.size() - at);
        for (std::size_t i = 0; i < len; ++i) {
          b[at + i] = static_cast<std::uint8_t>(rng.below(256));
        }
      }
      break;
    default:  // duplicate (frames smuggling frames)
      b.insert(b.end(), in.begin(), in.end());
      break;
  }
  return b;
}

int replay_dir(const fs::path& dir, Target target, int mutations_per_file,
               int* files, int* runs) {
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "missing corpus dir %s (run --regen?)\n", dir.c_str());
    return 1;
  }
  std::vector<fs::path> paths;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file()) paths.push_back(e.path());
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    std::fprintf(stderr, "empty corpus dir %s\n", dir.c_str());
    return 1;
  }
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::ifstream f(paths[i], std::ios::binary);
    Bytes bytes((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
    target(bytes.data(), bytes.size());
    ++*files;
    ++*runs;
    Rng rng(0xf77a ^ (i * 0x9e3779b97f4a7c15ull));
    for (int m = 0; m < mutations_per_file; ++m) {
      const Bytes mutant = mutate(bytes, rng);
      target(mutant.data(), mutant.size());
      ++*runs;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Thousands of deliberately hostile inputs: the server's per-drop WARN
  // lines are expected, not findings.
  iofwd::Log::set_level(iofwd::LogLevel::off);
  if (argc == 3 && std::string(argv[1]) == "--regen") return regen(argv[2]);
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s [--regen] <corpus_root>\n", argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  int files = 0, runs = 0;
  // frame_decode is ~free per run; server_bytes builds a server per input.
  if (replay_dir(root / "frame_decode", iofwd::fuzz::frame_decode_one, 256, &files,
                 &runs) != 0) {
    return 1;
  }
  if (replay_dir(root / "server_bytes", iofwd::fuzz::server_bytes_one, 32, &files,
                 &runs) != 0) {
    return 1;
  }
  std::printf("PASS: %d corpus files, %d total inputs, no traps\n", files, runs);
  return 0;
}
