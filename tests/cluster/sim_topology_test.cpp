// Deterministic validation of the CNs -> many IONs -> FSN cluster topology:
// MachineConfig::intrepid_cluster holds the compute-node count fixed while
// the ION fleet grows, and the simulated stream workload must conserve
// bytes, stay bit-deterministic, and scale throughput with the fleet. The
// same ShardMap the runtime routes by lays the CNs out across simulated
// IONs, so model and runtime agree on the partitioning by construction
// (DESIGN.md §14).
#include <gtest/gtest.h>

#include <vector>

#include "bgp/config.hpp"
#include "cluster/shard_map.hpp"
#include "wl/stream.hpp"

namespace iofwd::wl {
namespace {

// The fleet under test forwards for the same 64 CNs throughout.
constexpr int kTotalCns = 64;

StreamParams fixed_total(int ions, int iters = 10) {
  StreamParams p;
  p.cns_per_pset = kTotalCns / ions;
  p.iterations = iters;
  p.distribute_das = true;
  return p;
}

bgp::MachineConfig fleet(int ions) {
  auto cfg = bgp::MachineConfig::intrepid_cluster(ions, kTotalCns);
  cfg.num_da_nodes = ions;  // the analysis tier scales with the fleet
  return cfg;
}

TEST(SimTopology, IntrepidClusterHoldsTotalCnsFixed) {
  for (int ions : {1, 2, 4, 8}) {
    const auto cfg = bgp::MachineConfig::intrepid_cluster(ions, kTotalCns);
    EXPECT_EQ(cfg.num_psets, ions);
    EXPECT_EQ(cfg.total_cns(), kTotalCns) << ions << " IONs";
    std::string why;
    EXPECT_TRUE(cfg.validate(&why)) << why;
  }
  // Degenerate inputs clamp instead of dividing by zero.
  EXPECT_EQ(bgp::MachineConfig::intrepid_cluster(0).num_psets, 1);
  EXPECT_GE(bgp::MachineConfig::intrepid_cluster(128, 64).cns_per_pset, 1);
}

TEST(SimTopology, BytesConservedAtEveryFleetSize) {
  for (int ions : {1, 2, 4}) {
    auto r = run_stream(proto::Mechanism::zoid_sched_async, fleet(ions), {},
                        fixed_total(ions));
    EXPECT_EQ(r.metrics.bytes_delivered, static_cast<std::uint64_t>(kTotalCns) * 10 * 1_MiB)
        << ions << " IONs dropped or duplicated bytes";
    EXPECT_GT(r.sim_events, 0u);
  }
}

TEST(SimTopology, DeterministicAcrossRuns) {
  const auto cfg = fleet(4);
  const auto p = fixed_total(4);
  auto a = run_stream(proto::Mechanism::zoid_sched_async, cfg, {}, p);
  auto b = run_stream(proto::Mechanism::zoid_sched_async, cfg, {}, p);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_DOUBLE_EQ(a.throughput_mib_s, b.throughput_mib_s);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(SimTopology, MoreIonsMoreThroughputAtFixedCns) {
  // 64 CNs through one ION saturate the forwarding layer; splitting the same
  // CNs across more IONs multiplies forwarding capacity against the shared
  // (far faster) FSN tier — the production question the cluster answers.
  const double t1 =
      run_stream(proto::Mechanism::zoid_sched_async, fleet(1), {}, fixed_total(1))
          .throughput_mib_s;
  const double t2 =
      run_stream(proto::Mechanism::zoid_sched_async, fleet(2), {}, fixed_total(2))
          .throughput_mib_s;
  const double t4 =
      run_stream(proto::Mechanism::zoid_sched_async, fleet(4), {}, fixed_total(4))
          .throughput_mib_s;
  EXPECT_GT(t2, 1.5 * t1) << "2 IONs should nearly double delivered bandwidth";
  EXPECT_GT(t4, 1.3 * t2) << "4 IONs should keep scaling at fixed CN count";
}

TEST(SimTopology, RuntimeShardMapLaysOutCnsAcrossIons) {
  // Assign each CN id to an ION with the runtime's own ShardMap and check
  // the layout is usable: deterministic, every ION populated, no ION
  // starved or overloaded beyond HRW's small-sample skew.
  for (int ions : {2, 4, 8}) {
    const cluster::ShardMap map(ions);
    std::vector<int> load(static_cast<std::size_t>(ions), 0);
    for (int cn = 0; cn < kTotalCns; ++cn) {
      const int ion = map.shard_of(static_cast<std::uint64_t>(cn));
      ASSERT_GE(ion, 0);
      ASSERT_LT(ion, ions);
      // The assignment is definitionally the HRW argmax — the exact rule
      // the RoutingClient applies to descriptors.
      for (int other = 0; other < ions; ++other) {
        ASSERT_LE(cluster::ShardMap::weight(static_cast<std::uint64_t>(cn), other),
                  cluster::ShardMap::weight(static_cast<std::uint64_t>(cn), ion));
      }
      ++load[static_cast<std::size_t>(ion)];
    }
    const int expect = kTotalCns / ions;
    for (int i = 0; i < ions; ++i) {
      EXPECT_GE(load[static_cast<std::size_t>(i)], expect / 4)
          << ions << " IONs: ION " << i << " starved";
      EXPECT_LE(load[static_cast<std::size_t>(i)], expect * 3)
          << ions << " IONs: ION " << i << " overloaded";
    }
  }
}

}  // namespace
}  // namespace iofwd::wl
