// ClusterBbBudget edge cases (DESIGN.md §14/§16): the global reservation
// counter must survive sloppy release patterns — double releases, releases
// racing a crash-discard's bulk return, zero-capacity configs — without
// wrapping to ~2^64 and silently disabling admission control.
#include "cluster/bb_budget.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace iofwd::cluster {
namespace {

TEST(ClusterBbBudget, DoubleReleaseClampsInsteadOfUnderflowing) {
  ClusterBbBudget b(1000);
  ASSERT_TRUE(b.try_stage(600));
  b.unstage(600);
  EXPECT_EQ(b.staged_bytes(), 0u);
  // The double release: nothing staged, 600 returned again. Without the
  // clamp staged_ would wrap and every later try_stage would "succeed".
  b.unstage(600);
  EXPECT_EQ(b.staged_bytes(), 0u);
  EXPECT_EQ(b.over_releases(), 1u);
  // Admission control still works after the bug was absorbed.
  EXPECT_TRUE(b.try_stage(1000));
  EXPECT_FALSE(b.try_stage(1));
  EXPECT_EQ(b.denials(), 1u);
}

TEST(ClusterBbBudget, PartialOverReleaseReturnsOnlyWhatWasHeld) {
  ClusterBbBudget b(1000);
  ASSERT_TRUE(b.try_stage(100));
  // Release more than is staged (a stale caller racing a crash-discard that
  // already bulk-returned the shard's bytes): only 100 can come back.
  b.unstage(400);
  EXPECT_EQ(b.staged_bytes(), 0u);
  EXPECT_EQ(b.over_releases(), 1u);
}

TEST(ClusterBbBudget, ReleaseAfterDrainIsHarmless) {
  ClusterBbBudget b(4096);
  ASSERT_TRUE(b.try_stage(4096));
  b.unstage(4096);  // the drain returned everything
  EXPECT_EQ(b.staged_bytes(), 0u);
  // Stragglers after the drain (e.g. a flusher that lost the release race).
  b.unstage(1);
  b.unstage(4096);
  EXPECT_EQ(b.staged_bytes(), 0u);
  EXPECT_EQ(b.over_releases(), 2u);
  EXPECT_TRUE(b.try_stage(4096));
}

TEST(ClusterBbBudget, ZeroCapacityDeniesEveryReservation) {
  ClusterBbBudget b(0);
  EXPECT_FALSE(b.try_stage(1));
  EXPECT_TRUE(b.try_stage(0));  // vacuous reservation stays allowed
  EXPECT_EQ(b.staged_bytes(), 0u);
  EXPECT_EQ(b.denials(), 1u);
  b.unstage(10);  // and releasing against an empty budget is absorbed
  EXPECT_EQ(b.staged_bytes(), 0u);
  EXPECT_EQ(b.over_releases(), 1u);
}

TEST(ClusterBbBudget, ConcurrentOverReleasesNeverWrap) {
  ClusterBbBudget b(1 << 20);
  ASSERT_TRUE(b.try_stage(1 << 20));
  // Many threads each return more than remains; the clamp must hold under
  // contention (each CAS takes min(n, cur)).
  std::vector<std::thread> ts;
  for (int i = 0; i < 8; ++i) {
    ts.emplace_back([&b] {
      for (int k = 0; k < 1000; ++k) b.unstage(1 << 12);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(b.staged_bytes(), 0u);
  EXPECT_GT(b.over_releases(), 0u);
  EXPECT_TRUE(b.try_stage(1 << 20));
}

}  // namespace
}  // namespace iofwd::cluster
