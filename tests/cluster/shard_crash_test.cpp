// Process-level chaos (DESIGN.md §16): a 4-shard cluster with journaled
// burst buffers loses one shard mid-run to a hard crash. The contract under
// test is the tentpole durability guarantee — zero acked-write loss: every
// write the cluster acknowledged before (or after) the crash is golden-byte
// readable at the end, the siblings keep serving while the victim is down,
// and the health/journal metrics account for the whole event.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cluster/routing_client.hpp"
#include "core/rng.hpp"
#include "core/units.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::cluster {
namespace {

using testsupport::ClusterOptions;
using testsupport::TestCluster;

struct PendingWrite {
  int fd = 0;
  std::uint64_t off = 0;
  std::vector<std::byte> bytes;
};

TEST(ShardCrash, KilledShardRecoversEveryAckedByte) {
  const std::uint64_t seed = testsupport::test_seed("shard_crash", 0x5eedc4a5u);
  Rng rng(seed);

  ClusterOptions o;
  o.shards = 4;
  o.reconnectable = true;
  o.bb_journal = true;
  o.server.exec = rt::ExecModel::work_queue_async;
  o.server.workers = 2;
  o.server.bb_bytes = 8_MiB;
  // Quiet watermarks: staged extents stay in the cache, so the journal (not
  // the flusher) is what protects acked bytes across the kill.
  o.server.bb_high_watermark = 1.0;
  o.server.bb_low_watermark = 1.0;
  o.client.reconnect_attempts = 1;
  o.client.reconnect_backoff_ms = 1;
  o.client.reconnect_backoff_max_ms = 4;
  o.breaker.probe_after_ms = 20;
  TestCluster tc(o);
  auto& rc = tc.routing_client(0);

  constexpr int kFds = 32;
  const int victim = 2;
  // Golden model of every ACKED write: fd -> contiguous append cursor +
  // bytes. Offsets per fd are disjoint and contiguous, so the expected file
  // image is just the concatenation.
  std::map<int, std::vector<std::byte>> golden;  // fd -> full expected image
  std::map<int, std::uint64_t> cursor;           // fd -> next write offset

  auto path_of = [](int fd) { return "crash-f" + std::to_string(fd); };
  auto ack = [&](int fd, std::uint64_t off, const std::vector<std::byte>& bytes) {
    auto& img = golden[fd];
    ASSERT_EQ(off, img.size()) << "golden model expects contiguous appends";
    img.insert(img.end(), bytes.begin(), bytes.end());
  };
  auto next_write = [&](int fd) {
    PendingWrite w;
    w.fd = fd;
    w.off = cursor[fd];
    w.bytes = testsupport::pattern(1024 + rng.below(16 * 1024), seed ^ (cursor[fd] << 8) ^
                                                                   static_cast<std::uint64_t>(fd));
    cursor[fd] += w.bytes.size();
    return w;
  };

  for (int fd = 1; fd <= kFds; ++fd) {
    ASSERT_TRUE(rc.open(fd, path_of(fd)).is_ok());
  }

  // Phase A: healthy soak — several rounds across every shard, all acked.
  for (int round = 0; round < 4; ++round) {
    for (int fd = 1; fd <= kFds; ++fd) {
      const PendingWrite w = next_write(fd);
      Status st = rc.write(w.fd, w.off, w.bytes);
      ASSERT_TRUE(st.is_ok()) << "fd " << fd << ": " << st.to_string();
      ack(w.fd, w.off, w.bytes);
    }
  }

  // Phase B: hard-crash the victim mid-run. Writes routed at it fail (and
  // trip its breaker); every sibling write keeps succeeding.
  tc.kill_shard(victim);
  EXPECT_EQ(tc.ion_cluster()->shard_state(victim), HealthState::down);
  std::vector<PendingWrite> pending;  // victim writes to retry after restart
  std::uint64_t sibling_acks = 0;
  for (int round = 0; round < 3; ++round) {
    for (int fd = 1; fd <= kFds; ++fd) {
      PendingWrite w = next_write(fd);
      Status st = rc.write(w.fd, w.off, w.bytes);
      if (rc.shard_of(fd) == victim) {
        EXPECT_FALSE(st.is_ok()) << "write to a crashed shard cannot ack";
        pending.push_back(std::move(w));
      } else {
        ASSERT_TRUE(st.is_ok()) << "sibling shard " << rc.shard_of(fd)
                                << " must keep serving: " << st.to_string();
        ack(w.fd, w.off, w.bytes);
        ++sibling_acks;
      }
    }
  }
  EXPECT_GT(sibling_acks, 0u);
  EXPECT_FALSE(pending.empty());

  // Phase C: restart the victim. Its burst buffer replays the journal
  // during construction, then the breaker's half-open probe readmits it.
  // Retry-until-acked for every write that failed during the outage.
  tc.restart_shard(victim);
  EXPECT_EQ(tc.ion_cluster()->shard_state(victim), HealthState::healthy);
  for (auto& w : pending) {
    Status st;
    bool acked = false;
    for (int attempt = 0; attempt < 400 && !acked; ++attempt) {
      st = rc.write(w.fd, w.off, w.bytes);
      acked = st.is_ok();
      if (!acked) std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(acked) << "retry never acked: " << st.to_string();
    ack(w.fd, w.off, w.bytes);
  }

  // Phase D: post-recovery soak — the whole fleet serves again.
  for (int fd = 1; fd <= kFds; ++fd) {
    const PendingWrite w = next_write(fd);
    Status st = rc.write(w.fd, w.off, w.bytes);
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    ack(w.fd, w.off, w.bytes);
  }

  // Metrics account for the event: one kill, one restart, and the victim's
  // fresh registry carries the journal replay counts.
  const auto snap = tc.ion_cluster()->metrics();
  EXPECT_EQ(snap.counters.at("cluster.health.kills"), 1u);
  EXPECT_EQ(snap.counters.at("cluster.health.restarts"), 1u);
  const std::string vic = "cluster.shard." + std::to_string(victim) + ".";
  ASSERT_TRUE(snap.counters.count(vic + "bb.journal.recovered"));
  EXPECT_GT(snap.counters.at(vic + "bb.journal.recovered"), 0u)
      << "the victim had acked staged extents; replay must recover them";
  const auto cstats = rc.stats();
  EXPECT_GE(cstats.breaker_opens, 1u);
  EXPECT_GE(cstats.breaker_closes, 1u);

  // Phase E: drain everything and verify golden-byte equality — zero acked
  // bytes lost, none duplicated, none reordered.
  tc.stop();
  for (int fd = 1; fd <= kFds; ++fd) {
    const auto bytes = tc.snapshot(path_of(fd));
    const auto& want = golden[fd];
    ASSERT_EQ(bytes.size(), want.size()) << "fd " << fd << " (shard " << rc.shard_of(fd) << ")";
    EXPECT_EQ(bytes, want) << "fd " << fd << " lost or corrupted acked bytes";
  }
}

}  // namespace
}  // namespace iofwd::cluster
