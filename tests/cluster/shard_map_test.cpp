// ShardMap unit coverage: the three properties the cluster leans on —
// deterministic routing, balanced distribution, and minimal movement on
// resize — each checked directly against the HRW definition.
#include "cluster/shard_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

namespace iofwd::cluster {
namespace {

constexpr std::uint64_t kKeys = 64 * 1024;

TEST(ShardMap, DeterministicAndInRange) {
  ShardMap m(5);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const int s = m.shard_of(k);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 5);
    EXPECT_EQ(s, m.shard_of(k)) << "routing must be stable";
  }
  // A second map with the same shard count routes identically — the property
  // that lets RoutingClient and IonCluster hold independent copies.
  ShardMap m2(5);
  for (std::uint64_t k = 0; k < 1000; ++k) EXPECT_EQ(m.shard_of(k), m2.shard_of(k));
}

TEST(ShardMap, SingleShardTakesEverything) {
  ShardMap m(1);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_EQ(m.shard_of(k), 0);
}

TEST(ShardMap, ShardOfMatchesWeightArgmax) {
  // shard_of is definitionally argmax_i weight(key, i); verify against the
  // exposed weight function so the sim-side cross-check stays honest.
  ShardMap m(7);
  for (std::uint64_t k = 0; k < 2000; ++k) {
    int best = 0;
    std::uint64_t best_w = ShardMap::weight(k, 0);
    for (int s = 1; s < 7; ++s) {
      const std::uint64_t w = ShardMap::weight(k, s);
      if (w > best_w) {
        best_w = w;
        best = s;
      }
    }
    ASSERT_EQ(m.shard_of(k), best) << "key " << k;
  }
}

TEST(ShardMap, BalancedDistributionOneToSixteenShards) {
  // 64k sequential keys (descriptor ids are small and dense in practice)
  // must spread evenly: max/min shard load within 15% at every fleet size.
  for (int shards = 1; shards <= 16; ++shards) {
    ShardMap m(shards);
    std::vector<std::uint64_t> load(static_cast<std::size_t>(shards), 0);
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      ++load[static_cast<std::size_t>(m.shard_of(k))];
    }
    const auto [mn, mx] = std::minmax_element(load.begin(), load.end());
    ASSERT_GT(*mn, 0u) << shards << " shards: a shard got no keys";
    EXPECT_LT(static_cast<double>(*mx) / static_cast<double>(*mn), 1.15)
        << shards << " shards: max/min load ratio too skewed";
  }
}

TEST(ShardMap, ResizeMovesOnlyTheMinimum) {
  // Growing N -> N+1 may move only keys that land on the new shard
  // (expected 1/(N+1) of the space); every other key stays put. Allow a
  // statistical margin on the fraction, but the stay-put rule is exact.
  for (int n = 1; n <= 8; ++n) {
    ShardMap before(n);
    ShardMap after = before.resized(n + 1);
    std::uint64_t moved = 0;
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      const int b = before.shard_of(k);
      const int a = after.shard_of(k);
      if (a != b) {
        ++moved;
        ASSERT_EQ(a, n) << "key " << k << " moved between two surviving shards";
      }
    }
    const double frac = static_cast<double>(moved) / static_cast<double>(kKeys);
    const double expect = 1.0 / static_cast<double>(n + 1);
    EXPECT_GT(frac, expect * 0.8) << n << "->" << n + 1;
    EXPECT_LT(frac, expect * 1.2) << n << "->" << n + 1;
  }
}

TEST(ShardMap, ShrinkReassignsOnlyTheLostShard) {
  // Shrinking N+1 -> N moves exactly the keys that lived on the removed
  // highest shard; survivors keep their assignment.
  ShardMap before(5);
  ShardMap after = before.resized(4);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const int b = before.shard_of(k);
    if (b < 4) {
      EXPECT_EQ(after.shard_of(k), b) << "key " << k;
    }
  }
}

TEST(ShardMap, EpochAdvancesThroughResize) {
  ShardMap m(2, 7);
  EXPECT_EQ(m.epoch(), 7u);
  ShardMap grown = m.resized(3);
  EXPECT_EQ(grown.epoch(), 8u);
  EXPECT_EQ(grown.shards(), 3);
  EXPECT_EQ(grown.resized(2).epoch(), 9u);
}

TEST(ShardMap, ClampsNonsenseShardCounts) {
  EXPECT_EQ(ShardMap(0).shards(), 1);
  EXPECT_EQ(ShardMap(-3).shards(), 1);
}

TEST(ShardMap, EpochBumpRacesLookupsAndCopies) {
  // Failover bumps the generation (restart_shard) while routers keep calling
  // shard_of()/epoch() and taking snapshots concurrently. The epoch is
  // atomic, so this must be TSan-clean, routing must stay byte-identical,
  // and every observed epoch monotone.
  ShardMap m(4, 100);
  constexpr int kBumps = 20000;
  std::vector<int> baseline(1024);
  for (std::uint64_t k = 0; k < baseline.size(); ++k) {
    baseline[k] = m.shard_of(k);
  }

  std::thread bumper([&m] {
    for (int i = 0; i < kBumps; ++i) m.bump_epoch();
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&m, &baseline] {
      std::uint32_t last = 0;
      for (int iter = 0; iter < 5000; ++iter) {
        const std::uint64_t k = static_cast<std::uint64_t>(iter) % baseline.size();
        ASSERT_EQ(m.shard_of(k), baseline[k]) << "routing moved under an epoch bump";
        const std::uint32_t e = m.epoch();
        ASSERT_GE(e, last) << "epoch went backwards";
        last = e;
        // Copies snapshot the epoch mid-bump without tearing.
        const ShardMap snap = m;
        ASSERT_GE(snap.epoch(), last);
        ASSERT_EQ(snap.shards(), 4);
      }
    });
  }
  bumper.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(m.epoch(), 100u + kBumps);
}

}  // namespace
}  // namespace iofwd::cluster
