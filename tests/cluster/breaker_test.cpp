// Per-shard circuit breaker (DESIGN.md §16): ops routed at a down shard
// fail fast instead of each burning a reconnect budget; a half-open ping
// probe readmits the shard after restart; siblings never notice.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "cluster/health.hpp"
#include "cluster/routing_client.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::cluster {
namespace {

using testsupport::ClusterOptions;
using testsupport::TestCluster;

// A descriptor routed to `shard` by `rc`, distinct from `avoid`.
int fd_on_shard(const RoutingClient& rc, int shard, int avoid = -1) {
  for (int fd = 1; fd < 4096; ++fd) {
    if (fd != avoid && rc.shard_of(fd) == shard) return fd;
  }
  ADD_FAILURE() << "no fd routes to shard " << shard;
  return -1;
}

ClusterOptions breaker_options() {
  ClusterOptions o;
  o.shards = 2;
  o.reconnectable = true;
  // Tight reconnect budget so a dead shard is detected in a few ms per op.
  o.client.reconnect_attempts = 1;
  o.client.reconnect_backoff_ms = 1;
  o.client.reconnect_backoff_max_ms = 2;
  // Generous probe window so the fast-fail assertions below are not racing
  // the wall clock.
  o.breaker.probe_after_ms = 200;
  return o;
}

TEST(Breaker, OpensOnDeadShardFailsFastAndReadmitsViaProbe) {
  TestCluster tc(breaker_options());
  auto& rc = tc.routing_client(0);
  const int victim = 1;
  const int sibling = 0;
  const int vfd = fd_on_shard(rc, victim);
  const int sfd = fd_on_shard(rc, sibling);

  ASSERT_TRUE(rc.open(vfd, "v").is_ok());
  ASSERT_TRUE(rc.open(sfd, "s").is_ok());
  EXPECT_EQ(rc.shard_health(victim).state(), HealthState::healthy);

  tc.kill_shard(victim);

  // Consecutive connection-shaped failures trip the breaker. Each op here
  // still pays the (tight) reconnect budget; after down_after of them the
  // shard is marked down.
  int failures = 0;
  for (int i = 0; i < 10 && rc.stats().breaker_opens == 0; ++i) {
    Status st = rc.fsync(vfd);
    EXPECT_FALSE(st.is_ok());
    ++failures;
  }
  EXPECT_EQ(rc.stats().breaker_opens, 1u);
  EXPECT_GE(failures, rc.shard_health(victim).config().down_after);
  EXPECT_EQ(rc.shard_health(victim).state(), HealthState::down);

  // Open breaker: the op is bounced before touching the wire (well inside
  // the 200 ms probe window), with the connection-shaped error reconnecting
  // callers expect.
  Status fast = rc.fsync(vfd);
  EXPECT_FALSE(fast.is_ok());
  EXPECT_EQ(fast.code(), Errc::not_connected);
  EXPECT_NE(fast.message().find("circuit open"), std::string::npos) << fast.message();
  EXPECT_GE(rc.stats().breaker_fast_fails, 1u);

  // The sibling serves throughout — per-shard health, not fleet health.
  EXPECT_TRUE(rc.fsync(sfd).is_ok());
  EXPECT_EQ(rc.shard_health(sibling).state(), HealthState::healthy);
  EXPECT_EQ(rc.stats().breaker_opens, 1u);

  tc.restart_shard(victim);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  // First op past the window is elected as the half-open probe; the probe
  // ping re-dials into the restarted shard (replaying opens), closes the
  // breaker, and the op itself proceeds.
  Status st = rc.fsync(vfd);
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(rc.shard_health(victim).state(), HealthState::healthy);
  const auto stats = rc.stats();
  EXPECT_GE(stats.breaker_probes, 1u);
  EXPECT_GE(stats.breaker_closes, 1u);

  // Readmitted for real: a write lands and reads back.
  const auto data = testsupport::pattern(512, 0x5eed);
  ASSERT_TRUE(rc.write(vfd, 0, data).is_ok());
  auto rd = rc.read(vfd, 0, data.size());
  ASSERT_TRUE(rd.is_ok());
  EXPECT_EQ(rd.value(), data);
}

TEST(Breaker, ProbeAgainstStillDeadShardReopens) {
  ClusterOptions o = breaker_options();
  o.breaker.probe_after_ms = 30;  // short window: we *want* probes here
  TestCluster tc(o);
  auto& rc = tc.routing_client(0);
  const int victim = 1;
  const int vfd = fd_on_shard(rc, victim);
  ASSERT_TRUE(rc.open(vfd, "v").is_ok());

  tc.kill_shard(victim);
  for (int i = 0; i < 10 && rc.stats().breaker_opens == 0; ++i) {
    EXPECT_FALSE(rc.fsync(vfd).is_ok());
  }
  ASSERT_EQ(rc.shard_health(victim).state(), HealthState::down);

  // Past the window against a still-dead shard: the elected probe fails and
  // the breaker snaps back open instead of letting traffic through.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Status st = rc.fsync(vfd);
  EXPECT_FALSE(st.is_ok());
  EXPECT_GE(rc.stats().breaker_probes, 1u);
  EXPECT_EQ(rc.stats().breaker_closes, 0u);
  EXPECT_EQ(rc.shard_health(victim).state(), HealthState::down);
}

}  // namespace
}  // namespace iofwd::cluster
