// IonCluster + RoutingClient end-to-end: routing across shards, per-shard
// fault isolation (kill+redial touches one shard; drain leaves siblings
// serving), the cluster-wide burst-buffer budget, and the merged
// observability snapshot — the acceptance checklist of DESIGN.md §14.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/ion_cluster.hpp"
#include "cluster/routing_client.hpp"
#include "core/units.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"
#include "rt/wire.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::cluster {
namespace {

using testsupport::ClusterOptions;
using testsupport::TestCluster;
using testsupport::pattern;

// One descriptor per shard: fds[s] routes to shard s.
std::vector<int> fds_covering_all_shards(const RoutingClient& rc) {
  std::vector<int> fds(static_cast<std::size_t>(rc.shards()), -1);
  int remaining = rc.shards();
  for (int fd = 1; remaining > 0; ++fd) {
    int& slot = fds[static_cast<std::size_t>(rc.shard_of(fd))];
    if (slot == -1) {
      slot = fd;
      --remaining;
    }
  }
  return fds;
}

TEST(Cluster, RoutesByShardMapAndReadsBack) {
  ClusterOptions o;
  o.shards = 4;
  TestCluster tc(o);
  auto& rc = tc.routing_client();
  ASSERT_EQ(rc.shards(), 4);

  // A file per shard; each lands on — and only on — its mapped shard's
  // backend, and reads route back to the same place.
  const auto fds = fds_covering_all_shards(rc);
  for (int s = 0; s < 4; ++s) {
    const int fd = fds[static_cast<std::size_t>(s)];
    const std::string path = "route" + std::to_string(s);
    ASSERT_TRUE(rc.open(fd, path).is_ok());
    const auto data = pattern(32_KiB, 40 + static_cast<std::uint64_t>(s));
    ASSERT_TRUE(rc.write(fd, 0, data).is_ok());
    auto r = rc.read(fd, 0, data.size());
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value(), data);
    ASSERT_TRUE(rc.fsync(fd).is_ok());
    ASSERT_TRUE(rc.close(fd).is_ok());
  }
  tc.stop();
  for (int s = 0; s < 4; ++s) {
    const std::string path = "route" + std::to_string(s);
    EXPECT_EQ(tc.mem(s).snapshot(path).size(), 32_KiB)
        << path << " must live on shard " << s;
    for (int other = 0; other < 4; ++other) {
      if (other == s) continue;
      EXPECT_TRUE(tc.mem(other).snapshot(path).empty())
          << path << " leaked onto shard " << other;
    }
  }
}

TEST(Cluster, PerShardKillRedialReplaysOnlyThatShard) {
  ClusterOptions o;
  o.shards = 4;
  o.clients = 0;
  TestCluster tc(o);

  // The victim shard is whichever one fd 10 routes to; only that shard's
  // connection carries a cut budget.
  TestCluster::ClientSpec spec;
  spec.reconnectable = true;
  spec.cut_after_write_bytes = rt::FrameHeader::kWireSize * 2 + 16_KiB + 8_KiB;
  {
    ShardMap probe(4);
    spec.cut_shard = probe.shard_of(10);
  }
  auto& rc = tc.routing_client(tc.add_client(std::move(spec)));
  const int victim = rc.shard_of(10);

  // Burst through the victim fd (trips the cut mid-write) and touch every
  // other shard too.
  ASSERT_TRUE(rc.open(10, "victim").is_ok());
  const auto burst = pattern(16_KiB, 50);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rc.write(10, static_cast<std::uint64_t>(i) * burst.size(), burst).is_ok())
        << "write " << i << " did not survive the cut";
  }
  const auto fds = fds_covering_all_shards(rc);
  const auto side = pattern(8_KiB, 51);
  for (int s = 0; s < 4; ++s) {
    if (s == victim) continue;
    const int fd = fds[static_cast<std::size_t>(s)];
    ASSERT_TRUE(rc.open(fd, "side" + std::to_string(s)).is_ok());
    ASSERT_TRUE(rc.write(fd, 0, side).is_ok());
  }

  // Exactly the victim shard's client reconnected and replayed; its
  // siblings never noticed.
  for (int s = 0; s < 4; ++s) {
    const auto cs = rc.shard_client(s).stats();
    if (s == victim) {
      EXPECT_GE(cs.reconnects, 1u) << "victim shard must have redialed";
      EXPECT_GE(cs.replays, 1u);
    } else {
      EXPECT_EQ(cs.reconnects, 0u) << "shard " << s << " redialed spuriously";
      EXPECT_EQ(cs.replays, 0u);
    }
    EXPECT_EQ(cs.giveups, 0u);
  }

  // Every byte survived, including the cut-then-replayed burst.
  const auto all = tc.drain_and_snapshot("victim");
  ASSERT_EQ(all.size(), 4 * burst.size());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::equal(burst.begin(), burst.end(),
                           all.begin() + static_cast<std::ptrdiff_t>(i) * 16_KiB))
        << "burst " << i << " corrupted";
  }
  for (int s = 0; s < 4; ++s) {
    if (s == victim) continue;
    EXPECT_EQ(tc.snapshot("side" + std::to_string(s)), side);
  }
}

TEST(Cluster, DrainShardLeavesSiblingsServing) {
  ClusterOptions o;
  o.shards = 2;
  o.server.bb_bytes = 1_MiB;  // staging makes the drain observable
  TestCluster tc(o);
  auto& rc = tc.routing_client();
  const auto fds = fds_covering_all_shards(rc);

  const auto data = pattern(64_KiB, 60);
  for (int s = 0; s < 2; ++s) {
    const int fd = fds[static_cast<std::size_t>(s)];
    ASSERT_TRUE(rc.open(fd, "drain" + std::to_string(s)).is_ok());
    ASSERT_TRUE(rc.write(fd, 0, data).is_ok());
  }

  // Quiesce shard 0: its dirty staged bytes must reach the terminal backend
  // (flushed extents stay cached clean for reads — that is the bb contract)
  // while shard 1 keeps serving on its untouched connection — and shard 0's
  // connection stays open too.
  tc.ion_cluster()->drain_shard(0);
  EXPECT_EQ(tc.mem(0).snapshot("drain0").size(), data.size())
      << "drained shard still holds dirty bytes";
  EXPECT_GE(tc.server(0).stats().bb_flushed_bytes, data.size());

  for (int s = 0; s < 2; ++s) {
    const int fd = fds[static_cast<std::size_t>(s)];
    ASSERT_TRUE(rc.write(fd, data.size(), data).is_ok())
        << "shard " << s << " stopped serving after a sibling drain";
    auto r = rc.read(fd, 0, data.size());
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value(), data);
  }
  tc.stop();
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(tc.snapshot("drain" + std::to_string(s)).size(), 2 * data.size());
  }
}

TEST(Cluster, GlobalBudgetCapsAggregateStagingAcrossShards) {
  // Per-shard caches are big (local watermarks never trip) but the cluster
  // budget is tiny, so the global gate is the only thing pushing back:
  // aggregate staging must stop at the budget, denied writes degrade to
  // write-through (bounded stall), and no byte is lost either way.
  ClusterOptions o;
  o.shards = 2;
  o.server.bb_bytes = 4_MiB;
  o.server.bb_max_stall_ms = 5;  // denied writers fall through fast
  o.cluster_bb_bytes = 100 * 1024;
  o.cluster_bb_high_watermark = 1.0;  // no pressure-flushing: pure admission
  TestCluster tc(o);
  auto& rc = tc.routing_client();
  auto* budget = tc.ion_cluster()->budget();
  ASSERT_NE(budget, nullptr);

  const auto fds = fds_covering_all_shards(rc);
  for (int s = 0; s < 2; ++s) {
    ASSERT_TRUE(rc.open(fds[static_cast<std::size_t>(s)], "cap" + std::to_string(s)).is_ok());
  }
  // 30 x 8 KiB alternating across shards = 240 KiB of staging demand against
  // a 100 KiB global budget.
  const auto chunk = pattern(8_KiB, 70);
  for (int i = 0; i < 30; ++i) {
    const int s = i % 2;
    ASSERT_TRUE(rc.write(fds[static_cast<std::size_t>(s)],
                         static_cast<std::uint64_t>(i / 2) * chunk.size(), chunk)
                    .is_ok())
        << "a budget-denied write must degrade, not fail";
  }

  // Quiesce before reading counters: write acks race ahead of async staging,
  // and a snapshot taken mid-storm can catch a denial between its global and
  // per-shard increments. fsync drains every in-flight write on the fd.
  for (int s = 0; s < 2; ++s) {
    ASSERT_TRUE(rc.fsync(fds[static_cast<std::size_t>(s)]).is_ok());
  }

  // The hard cap held at every instant, and the gate actually fired.
  EXPECT_LE(budget->staged_high_water(), budget->capacity());
  EXPECT_GT(budget->denials(), 0u) << "demand never hit the global gate";

  // The merged registry tells the same story (the cluster.* metrics the
  // acceptance criteria pin).
  const auto snap = tc.ion_cluster()->metrics();
  EXPECT_EQ(snap.gauge("cluster.bb.capacity"), static_cast<std::int64_t>(100 * 1024));
  EXPECT_LE(snap.gauge("cluster.bb.staged_high_watermark"),
            snap.gauge("cluster.bb.capacity"));
  EXPECT_EQ(snap.counter("cluster.bb.denials"), budget->denials());
  EXPECT_EQ(snap.counter("cluster.shard.0.bb.budget_denied") +
                snap.counter("cluster.shard.1.bb.budget_denied"),
            budget->denials())
      << "per-shard denial counters must account for every global denial";

  // Closing the descriptors drops their cached extents — clean or dirty —
  // and must hand every reserved byte back to the fleet.
  for (int s = 0; s < 2; ++s) {
    ASSERT_TRUE(rc.close(fds[static_cast<std::size_t>(s)]).is_ok());
  }
  EXPECT_EQ(budget->staged_bytes(), 0u) << "close must return every staged byte";

  // Degraded or staged, every write landed.
  tc.stop();
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(tc.snapshot("cap" + std::to_string(s)).size(), 15 * chunk.size());
  }
}

TEST(Cluster, MergedSnapshotNamespacesEveryShard) {
  ClusterOptions o;
  o.shards = 4;
  o.cluster_bb_bytes = 1_MiB;
  o.server.bb_bytes = 256_KiB;
  TestCluster tc(o);
  auto& rc = tc.routing_client();
  const auto fds = fds_covering_all_shards(rc);
  const auto data = pattern(4_KiB, 80);
  for (int s = 0; s < 4; ++s) {
    const int fd = fds[static_cast<std::size_t>(s)];
    ASSERT_TRUE(rc.open(fd, "obs" + std::to_string(s)).is_ok());
    ASSERT_TRUE(rc.write(fd, 0, data).is_ok());
    ASSERT_TRUE(rc.fsync(fd).is_ok());
  }

  const auto snap = tc.ion_cluster()->metrics();
  EXPECT_EQ(snap.gauge("cluster.shards"), 4);
  EXPECT_EQ(snap.gauge("cluster.epoch"), 0);
  EXPECT_EQ(snap.gauge("cluster.bb.capacity"), static_cast<std::int64_t>(1_MiB));
  for (int s = 0; s < 4; ++s) {
    const std::string prefix = "cluster.shard." + std::to_string(s) + ".";
    EXPECT_GT(snap.counter(prefix + "server.ops"), 0u)
        << "shard " << s << " missing from the merged snapshot";
    EXPECT_GT(snap.counter(prefix + "server.bytes_in"), 0u);
  }
}

}  // namespace
}  // namespace iofwd::cluster
