// Cluster soak matrix (ctest -L soak): {2, 4} shards × {no faults, 1%
// transient stream cuts, 0.5% bit flips}, every client spraying writes
// across every shard. The contract mirrors the single-server soak — client
// isolation, zero undetected corruption, clean drain — plus the sharded
// refinements:
//
//   * cross-shard read-your-writes — each client's round-robin stream over
//     all shards stays coherent against its golden model;
//   * per-shard fault attribution — injected faults ride per-shard stream
//     plans, so the detected==injected CRC ledger balances *per shard*, not
//     just in aggregate;
//   * fleet-wide clean drain — after stop(), no shard holds a BML lease or
//     a staged burst-buffer byte.
//
// Replay failures with the logged seed: IOFWD_TEST_SEED=0x... .
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "fault/decorators.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::cluster {
namespace {

using testsupport::ClusterOptions;
using testsupport::TestCluster;
using testsupport::pattern;

enum class FaultMode { none, transient, bit_flip };

const char* to_cstr(FaultMode m) {
  switch (m) {
    case FaultMode::none: return "nofault";
    case FaultMode::transient: return "transient";
    case FaultMode::bit_flip: return "bitflip";
  }
  return "?";
}

struct ClusterSoakParam {
  int shards;
  FaultMode mode;
};

class ClusterSoak : public ::testing::TestWithParam<ClusterSoakParam> {};

TEST_P(ClusterSoak, CrossShardReadYourWritesWithPerShardAccounting) {
  const auto [n_shards, mode] = GetParam();
  constexpr int kClients = 4;
  const std::uint64_t seed = testsupport::test_seed("Cluster.Soak", 0xc1a5) +
                             static_cast<std::uint64_t>(n_shards);

  ClusterOptions o;
  o.shards = n_shards;
  o.server.exec = rt::ExecModel::work_queue_async;
  o.server.workers = 2;
  o.server.bml_bytes = 16_MiB;
  o.server.bb_bytes = 2_MiB;
  o.server.bml_wait_ms = 50;
  o.server.bb_max_stall_ms = 50;
  o.clients = 0;
  TestCluster tc(o);

  // Per-client, per-shard stream plans: a fault fired by plans[c][s] was
  // injected on client c's connection to shard s and nowhere else.
  std::vector<std::vector<std::shared_ptr<fault::FaultPlan>>> plans(kClients);
  for (int c = 0; c < kClients; ++c) {
    TestCluster::ClientSpec spec;
    spec.cfg.roundtrip_timeout_ms = 30'000;
    spec.cfg.reconnect_attempts = 10;
    spec.cfg.reconnect_backoff_ms = 1;
    if (mode != FaultMode::none) {
      for (int s = 0; s < n_shards; ++s) {
        auto plan = std::make_shared<fault::FaultPlan>(
            seed + 100 + static_cast<std::uint64_t>(c * 16 + s));
        if (mode == FaultMode::transient) {
          plan->add({.op = fault::OpKind::stream_write,
                     .probability = 0.01,
                     .error = Errc::shutdown});
        } else {
          plan->add({.op = fault::OpKind::stream_write,
                     .action = fault::FaultAction::bit_flip,
                     .probability = 0.005});
          plan->add({.op = fault::OpKind::stream_read,
                     .action = fault::FaultAction::bit_flip,
                     .probability = 0.005});
        }
        plans[static_cast<std::size_t>(c)].push_back(plan);
        spec.shard_stream_plans.push_back(std::move(plan));
      }
      spec.reconnectable = true;
      spec.faulty_redials = true;  // the fabric stays flaky across redials
    }
    tc.add_client(std::move(spec));
  }

  // Each client opens one file per shard (fds chosen so client c's fd for
  // shard s actually routes there) and round-robins writes across them —
  // every read-back is a cross-shard read-your-writes check.
  const ShardMap map(n_shards);
  std::vector<std::vector<int>> fds(kClients,
                                    std::vector<int>(static_cast<std::size_t>(n_shards), -1));
  {
    int next_fd = 10;
    for (int c = 0; c < kClients; ++c) {
      int remaining = n_shards;
      while (remaining > 0) {
        const int fd = next_fd++;
        int& slot = fds[static_cast<std::size_t>(c)]
                       [static_cast<std::size_t>(map.shard_of(static_cast<std::uint64_t>(fd)))];
        if (slot == -1) {
          slot = fd;
          --remaining;
        }
      }
    }
  }

  const int writes_per_client = 240 / n_shards * n_shards;  // whole rounds
  std::vector<std::vector<std::vector<std::byte>>> expected(
      kClients, std::vector<std::vector<std::byte>>(static_cast<std::size_t>(n_shards)));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto& client = tc.client(static_cast<std::size_t>(c));
      Rng rng(seed ^ (0x2000 + static_cast<std::uint64_t>(c)));
      for (int s = 0; s < n_shards; ++s) {
        const int fd = fds[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)];
        if (!client.open(fd, "cs" + std::to_string(c) + "_" + std::to_string(s)).is_ok()) {
          ++failures;
          return;
        }
      }
      for (int i = 0; i < writes_per_client; ++i) {
        const int s = i % n_shards;
        const int fd = fds[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)];
        auto& file = expected[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)];
        const std::size_t n = 2_KiB + rng.below(8_KiB);
        const auto data = pattern(n, rng.next());
        if (!client.write(fd, file.size(), data).is_ok()) {
          ++failures;
          return;
        }
        file.insert(file.end(), data.begin(), data.end());

        if (i % 6 == 5) {
          // Read back a random slice of a *different* shard's file: writes
          // acknowledged on one shard must be visible while its siblings
          // absorb faults.
          const int rs = (s + 1) % n_shards;
          const auto& rfile =
              expected[static_cast<std::size_t>(c)][static_cast<std::size_t>(rs)];
          if (rfile.empty()) continue;
          const std::uint64_t off = rng.below(rfile.size());
          const std::size_t len =
              std::min<std::size_t>(1 + rng.below(4_KiB), rfile.size() - off);
          auto r = client.read(
              fds[static_cast<std::size_t>(c)][static_cast<std::size_t>(rs)], off, len);
          if (!r.is_ok() ||
              !std::equal(r.value().begin(), r.value().end(),
                          rfile.begin() + static_cast<std::ptrdiff_t>(off))) {
            ++failures;
            return;
          }
        }
      }
      for (int s = 0; s < n_shards; ++s) {
        const int fd = fds[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)];
        if (!client.fsync(fd).is_ok() || !client.close(fd).is_ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();

  // Isolation: every op on every shard succeeded (or recovered).
  EXPECT_EQ(failures, 0) << "a client failed an op it should have recovered from";
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(tc.client(static_cast<std::size_t>(c)).stats().giveups, 0u);
  }

  // Per-shard CRC ledger: every flip injected on shard s's connections was
  // detected by shard s's server or one of its clients — attribution, not
  // just an aggregate wash.
  if (mode == FaultMode::bit_flip) {
    std::uint64_t total_injected = 0;
    for (int s = 0; s < n_shards; ++s) {
      std::uint64_t injected = 0;
      std::uint64_t detected = 0;
      for (int c = 0; c < kClients; ++c) {
        injected += plans[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)]->fired();
        const auto cs = tc.routing_client(static_cast<std::size_t>(c)).shard_client(s).stats();
        detected += cs.header_crc_errors + cs.payload_crc_errors;
      }
      const auto ss = tc.server(s).stats();
      detected += ss.header_crc_errors + ss.payload_crc_errors;
      EXPECT_EQ(detected, injected) << "shard " << s << " ledger out of balance";
      total_injected += injected;
    }
    EXPECT_GT(total_injected, 0u) << "storm too quiet to prove anything";
  }

  // Fleet-wide clean drain, then golden-model integrity per (client, shard).
  tc.stop();
  for (int s = 0; s < n_shards; ++s) {
    const auto st = tc.server(s).stats();
    EXPECT_EQ(st.bml_in_use, 0u) << "shard " << s << " leaked a BML lease";
    EXPECT_EQ(st.bb_cached_bytes, 0u) << "shard " << s << " leaked staged bytes";
  }
  for (int c = 0; c < kClients; ++c) {
    for (int s = 0; s < n_shards; ++s) {
      const auto& file = expected[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)];
      const auto all = tc.snapshot("cs" + std::to_string(c) + "_" + std::to_string(s));
      ASSERT_EQ(all.size(), file.size()) << "client " << c << " shard " << s << " truncated";
      EXPECT_TRUE(std::equal(file.begin(), file.end(), all.begin()))
          << "client " << c << " shard " << s << " bytes differ from the golden model";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ClusterSoak,
    ::testing::Values(ClusterSoakParam{2, FaultMode::none},
                      ClusterSoakParam{2, FaultMode::transient},
                      ClusterSoakParam{2, FaultMode::bit_flip},
                      ClusterSoakParam{4, FaultMode::none},
                      ClusterSoakParam{4, FaultMode::transient},
                      ClusterSoakParam{4, FaultMode::bit_flip}),
    [](const auto& pinfo) {
      return "s" + std::to_string(pinfo.param.shards) + "_" + to_cstr(pinfo.param.mode);
    });

}  // namespace
}  // namespace iofwd::cluster
