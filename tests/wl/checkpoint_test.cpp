#include "wl/checkpoint.hpp"

#include <gtest/gtest.h>

namespace iofwd::wl {
namespace {

CheckpointParams quick() {
  CheckpointParams p;
  p.cycles = 5;
  p.compute_ns = 50'000'000;
  return p;
}

TEST(Checkpoint, TotalTimeExceedsComputeLowerBound) {
  const auto r = run_checkpoint(proto::Mechanism::zoid, bgp::MachineConfig::intrepid(), {},
                                quick());
  EXPECT_GT(r.total_time_s, r.compute_time_s);
  EXPECT_GT(r.io_overhead_pct, 0);
  EXPECT_GT(r.aggregate_mib_s, 0);
}

TEST(Checkpoint, MechanismLadderUnderBarriers) {
  // Bulk-synchronous cycles: CIOD/ZOID stall for the full checkpoint; the
  // scheduled mechanisms cut the stall; async staging cuts it the most.
  const auto cfg = bgp::MachineConfig::intrepid();
  const auto p = quick();
  const auto zoid = run_checkpoint(proto::Mechanism::zoid, cfg, {}, p);
  const auto sched = run_checkpoint(proto::Mechanism::zoid_sched, cfg, {}, p);
  const auto async = run_checkpoint(proto::Mechanism::zoid_sched_async, cfg, {}, p);
  EXPECT_LT(sched.io_overhead_pct, zoid.io_overhead_pct);
  EXPECT_LT(async.io_overhead_pct, sched.io_overhead_pct + 1e-9);
}

TEST(Checkpoint, BarrierCostsTimeForSyncMechanisms) {
  // Without barriers, synchronous I/O lets ranks drift and stream; with
  // them, everyone waits for the slowest rank each cycle.
  const auto cfg = bgp::MachineConfig::intrepid();
  auto p = quick();
  p.cycles = 8;
  p.barrier = false;
  const auto free_run = run_checkpoint(proto::Mechanism::zoid_sched, cfg, {}, p);
  p.barrier = true;
  const auto lockstep = run_checkpoint(proto::Mechanism::zoid_sched, cfg, {}, p);
  EXPECT_GE(lockstep.total_time_s, free_run.total_time_s * 0.99);
}

TEST(Checkpoint, MoreCyclesTakeLonger) {
  const auto cfg = bgp::MachineConfig::intrepid();
  auto p = quick();
  const auto short_run = run_checkpoint(proto::Mechanism::zoid_sched_async, cfg, {}, p);
  p.cycles = 10;
  const auto long_run = run_checkpoint(proto::Mechanism::zoid_sched_async, cfg, {}, p);
  EXPECT_GT(long_run.total_time_s, short_run.total_time_s * 1.5);
}

}  // namespace
}  // namespace iofwd::wl
