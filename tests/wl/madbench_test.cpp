#include "wl/madbench.hpp"

#include <gtest/gtest.h>

namespace iofwd::wl {
namespace {

MadbenchParams small() {
  MadbenchParams p;
  p.nodes = 64;
  p.npix = 4096;
  p.n_matrices = 32;
  return p;
}

TEST(Madbench, PerOpSizeMatchesPaper) {
  // 64 nodes, NPIX 4096 -> 2 MiB per op; 256 nodes, NPIX 8192 -> 2 MiB.
  MadbenchParams p64;
  p64.nodes = 64;
  p64.npix = 4096;
  EXPECT_EQ(p64.bytes_per_op(), 2_MiB);
  MadbenchParams p256;
  p256.nodes = 256;
  p256.npix = 8192;
  EXPECT_EQ(p256.bytes_per_op(), 2_MiB);
}

TEST(Madbench, TotalBytesMatchPaper) {
  // 1024 matrices: 128 GiB at NPIX 4096, 512 GiB at NPIX 8192.
  MadbenchParams p;
  p.npix = 4096;
  p.n_matrices = 1024;
  EXPECT_EQ(p.total_bytes(), 128_GiB);
  p.npix = 8192;
  EXPECT_EQ(p.total_bytes(), 512_GiB);
}

TEST(Madbench, DeliversAllBytes) {
  const auto p = small();
  auto r = run_madbench(proto::Mechanism::zoid, bgp::MachineConfig::intrepid(), {}, p);
  EXPECT_EQ(r.bytes, p.total_bytes());
  EXPECT_GT(r.throughput_mib_s, 0);
}

TEST(Madbench, PhaseMixIsHalfReadsHalfWrites) {
  const auto p = small();
  auto r = run_madbench(proto::Mechanism::zoid_sched_async, bgp::MachineConfig::intrepid(), {}, p);
  // S: 1/4 writes; W: half of 1/2 each; C: 1/4 reads => 50/50 overall.
  EXPECT_EQ(r.reads + r.writes, static_cast<std::uint64_t>(p.nodes) * p.n_matrices);
  EXPECT_EQ(r.reads, r.writes);
}

TEST(Madbench, MechanismLadderHolds) {
  const auto p = small();
  const auto cfg = bgp::MachineConfig::intrepid();
  const double ciod = run_madbench(proto::Mechanism::ciod, cfg, {}, p).throughput_mib_s;
  const double zoid = run_madbench(proto::Mechanism::zoid, cfg, {}, p).throughput_mib_s;
  const double async =
      run_madbench(proto::Mechanism::zoid_sched_async, cfg, {}, p).throughput_mib_s;
  EXPECT_LT(ciod, zoid);
  EXPECT_GT(async / ciod, 1.2) << "paper: +53% at 64 nodes";
  EXPECT_GT(async / zoid, 1.1) << "paper: +40% at 64 nodes";
}

TEST(Madbench, MultiPsetScalesOut) {
  auto p = small();
  p.n_matrices = 16;
  const auto cfg = bgp::MachineConfig::intrepid();
  const auto r64 = run_madbench(proto::Mechanism::zoid_sched_async, cfg, {}, p);
  p.nodes = 256;
  p.npix = 8192;
  const auto r256 = run_madbench(proto::Mechanism::zoid_sched_async, cfg, {}, p);
  // 4x the IONs and 4x the data: aggregate throughput should grow ~4x.
  EXPECT_GT(r256.throughput_mib_s, 3.0 * r64.throughput_mib_s);
}

TEST(Madbench, RmodLimitsConcurrentReaders) {
  auto p = small();
  p.rmod = 64;  // only one reader at a time
  auto r = run_madbench(proto::Mechanism::zoid, bgp::MachineConfig::intrepid(), {}, p);
  p.rmod = 1;
  auto r_all = run_madbench(proto::Mechanism::zoid, bgp::MachineConfig::intrepid(), {}, p);
  EXPECT_EQ(r.bytes, r_all.bytes);
  EXPECT_LT(r.throughput_mib_s, r_all.throughput_mib_s);
}

TEST(Madbench, BusyworkSlowsWallClock) {
  auto p = small();
  p.n_matrices = 8;
  auto fast = run_madbench(proto::Mechanism::zoid_sched_async, bgp::MachineConfig::intrepid(),
                           {}, p);
  p.busywork_ns_per_op = 300'000'000;  // 300 ms compute per op, serial per process
  auto slow = run_madbench(proto::Mechanism::zoid_sched_async, bgp::MachineConfig::intrepid(),
                           {}, p);
  // 8 ops x 300 ms of per-process compute cannot be fully hidden behind I/O.
  EXPECT_GT(slow.elapsed_s, fast.elapsed_s + 1.0);
}

}  // namespace
}  // namespace iofwd::wl
