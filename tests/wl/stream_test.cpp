#include "wl/stream.hpp"

#include <gtest/gtest.h>

namespace iofwd::wl {
namespace {

StreamParams quick(int cns, int iters = 20) {
  StreamParams p;
  p.cns_per_pset = cns;
  p.iterations = iters;
  return p;
}

TEST(Stream, DeliversExactByteCount) {
  auto r = run_stream(proto::Mechanism::zoid, bgp::MachineConfig::intrepid(), {}, quick(4, 10));
  EXPECT_EQ(r.metrics.bytes_delivered, 4ull * 10 * 1_MiB);
  EXPECT_GT(r.throughput_mib_s, 0);
  EXPECT_GT(r.sim_events, 0u);
}

TEST(Stream, AsyncDeliversSameBytesAsSync) {
  const auto cfg = bgp::MachineConfig::intrepid();
  auto sync = run_stream(proto::Mechanism::zoid, cfg, {}, quick(8, 10));
  auto async = run_stream(proto::Mechanism::zoid_sched_async, cfg, {}, quick(8, 10));
  EXPECT_EQ(sync.metrics.bytes_delivered, async.metrics.bytes_delivered);
}

TEST(Stream, DeterministicAcrossRuns) {
  const auto cfg = bgp::MachineConfig::intrepid();
  auto a = run_stream(proto::Mechanism::zoid_sched_async, cfg, {}, quick(8, 10));
  auto b = run_stream(proto::Mechanism::zoid_sched_async, cfg, {}, quick(8, 10));
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_DOUBLE_EQ(a.throughput_mib_s, b.throughput_mib_s);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(Stream, MechanismLadderHoldsAtScale) {
  // The paper's headline ordering (Fig. 9): CIOD < ZOID < scheduled.
  const auto cfg = bgp::MachineConfig::intrepid();
  const auto p = quick(32, 80);  // enough iterations to amortize ramp-up
  const double ciod = run_stream(proto::Mechanism::ciod, cfg, {}, p).throughput_mib_s;
  const double zoid = run_stream(proto::Mechanism::zoid, cfg, {}, p).throughput_mib_s;
  const double sched = run_stream(proto::Mechanism::zoid_sched, cfg, {}, p).throughput_mib_s;
  const double async = run_stream(proto::Mechanism::zoid_sched_async, cfg, {}, p).throughput_mib_s;
  EXPECT_LT(ciod, zoid);
  EXPECT_LT(zoid, sched);
  EXPECT_LT(zoid, async);
  // Async approaches the end-to-end bound (paper: ~95% of its measured
  // 650 MiB/s bound; our analytic bound is slightly higher at ~684).
  EXPECT_GT(async / cfg.end_to_end_bound_mib_s(), 0.85);
  // And the improvement over CIOD is in the paper's ballpark (roughly 1.5x).
  EXPECT_GT(async / ciod, 1.35);
  EXPECT_LT(async / ciod, 1.95);
}

TEST(Stream, DevNullSinkUsesOnlyTree) {
  auto p = quick(8, 10);
  p.sink = proto::SinkTarget::Kind::dev_null;
  auto r = run_stream(proto::Mechanism::zoid, bgp::MachineConfig::intrepid(), {}, p);
  EXPECT_EQ(r.metrics.bytes_delivered, 8ull * 10 * 1_MiB);
  // Near the collective-network effective peak, far above end-to-end rates.
  EXPECT_GT(r.throughput_mib_s, 600);
}

TEST(Stream, MultiplePsetsScaleAggregate) {
  auto cfg = bgp::MachineConfig::intrepid();
  cfg.num_psets = 2;
  cfg.num_da_nodes = 4;
  auto p = quick(16, 10);
  p.distribute_das = true;
  auto two = run_stream(proto::Mechanism::zoid_sched_async, cfg, {}, p);
  cfg.num_psets = 1;
  auto one = run_stream(proto::Mechanism::zoid_sched_async, cfg, {}, p);
  EXPECT_GT(two.throughput_mib_s, 1.6 * one.throughput_mib_s)
      << "two IONs should nearly double delivered bandwidth";
}

TEST(Stream, MaxOfRunsReturnsBest) {
  const auto cfg = bgp::MachineConfig::intrepid();
  const auto p = quick(4, 5);
  const double one = run_stream(proto::Mechanism::zoid, cfg, {}, p).throughput_mib_s;
  const double best = max_of_runs(proto::Mechanism::zoid, cfg, {}, p, 3);
  EXPECT_GE(best, one * 0.999);
}

TEST(Stream, SmallMessagesAreSlower) {
  const auto cfg = bgp::MachineConfig::intrepid();
  auto big = quick(16, 10);
  auto small = quick(16, 10);
  small.message_bytes = 16_KiB;
  const double tb =
      run_stream(proto::Mechanism::zoid, cfg, {}, big).throughput_mib_s;
  const double ts =
      run_stream(proto::Mechanism::zoid, cfg, {}, small).throughput_mib_s;
  EXPECT_LT(ts, tb) << "control-exchange overhead must gate small messages";
}

}  // namespace
}  // namespace iofwd::wl
