#include "wl/ior.hpp"

#include <gtest/gtest.h>

namespace iofwd::wl {
namespace {

IorParams quick() {
  IorParams p;
  p.cns = 16;
  p.segments = 8;
  return p;
}

TEST(Ior, WriteOnlyCountsBytes) {
  auto p = quick();
  auto r = run_ior(proto::Mechanism::zoid, bgp::MachineConfig::intrepid(), {}, p);
  EXPECT_EQ(r.bytes_written, 16ull * 8 * 1_MiB);
  EXPECT_EQ(r.bytes_read, 0u);
  EXPECT_GT(r.write_mib_s, 0);
  EXPECT_EQ(r.read_mib_s, 0);
}

TEST(Ior, WriteThenReadRunsBothPhases) {
  auto p = quick();
  p.direction = IorDirection::write_then_read;
  auto r = run_ior(proto::Mechanism::zoid_sched_async, bgp::MachineConfig::intrepid(), {}, p);
  EXPECT_EQ(r.bytes_written, r.bytes_read);
  EXPECT_GT(r.write_mib_s, 0);
  EXPECT_GT(r.read_mib_s, 0);
}

class IorPatterns : public ::testing::TestWithParam<IorPattern> {};

TEST_P(IorPatterns, AllPatternsComplete) {
  auto p = quick();
  p.pattern = GetParam();
  auto r = run_ior(proto::Mechanism::zoid_sched_async, bgp::MachineConfig::intrepid(), {}, p);
  EXPECT_EQ(r.bytes_written, p.bytes_per_process() * 16);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IorPatterns,
                         ::testing::Values(IorPattern::sequential, IorPattern::strided,
                                           IorPattern::random),
                         [](const auto& info) { return to_string(info.param); });

TEST(Ior, PerProcessFilesComplete) {
  auto p = quick();
  p.shared_file = false;
  auto r = run_ior(proto::Mechanism::zoid, bgp::MachineConfig::intrepid(), {}, p);
  EXPECT_EQ(r.bytes_written, p.bytes_per_process() * 16);
}

TEST(Ior, DeterministicAcrossRuns) {
  auto p = quick();
  p.pattern = IorPattern::random;
  const auto cfg = bgp::MachineConfig::intrepid();
  auto a = run_ior(proto::Mechanism::zoid_sched_async, cfg, {}, p);
  auto b = run_ior(proto::Mechanism::zoid_sched_async, cfg, {}, p);
  EXPECT_DOUBLE_EQ(a.write_mib_s, b.write_mib_s);
  EXPECT_DOUBLE_EQ(a.elapsed_s, b.elapsed_s);
}

TEST(Ior, MechanismLadderHoldsOnIor) {
  auto p = quick();
  p.cns = 32;
  const auto cfg = bgp::MachineConfig::intrepid();
  const auto ciod = run_ior(proto::Mechanism::ciod, cfg, {}, p);
  const auto async = run_ior(proto::Mechanism::zoid_sched_async, cfg, {}, p);
  EXPECT_GT(async.write_mib_s, ciod.write_mib_s);
}

TEST(Ior, MultiPsetWhenCnsExceedPset) {
  auto p = quick();
  p.cns = 128;  // two psets
  p.segments = 4;
  auto r = run_ior(proto::Mechanism::zoid_sched_async, bgp::MachineConfig::intrepid(), {}, p);
  EXPECT_EQ(r.bytes_written, 128ull * 4 * 1_MiB);
}

}  // namespace
}  // namespace iofwd::wl
