#include "wl/collective.hpp"

#include <gtest/gtest.h>

#include "bgp/machine.hpp"
#include "sim/sync.hpp"

namespace iofwd::wl {
namespace {

CollectiveParams quick() {
  CollectiveParams p;
  p.cns = 32;
  p.aggregators = 4;
  p.pieces_per_cn = 8;
  return p;
}

TEST(Collective, IndependentForwardsOnePiecePerOp) {
  const auto p = quick();
  auto r = run_collective(proto::Mechanism::zoid, IoMode::independent,
                          bgp::MachineConfig::intrepid(), {}, p);
  EXPECT_EQ(r.forwarded_ops, 32u * 8);
  EXPECT_EQ(r.exchange_s, 0.0);
  EXPECT_GT(r.throughput_mib_s, 0);
}

TEST(Collective, CollectiveForwardsFewLargeOps) {
  const auto p = quick();
  auto r = run_collective(proto::Mechanism::zoid, IoMode::collective,
                          bgp::MachineConfig::intrepid(), {}, p);
  // total = 32*8*64 KiB = 16 MiB over 4 aggregators in 4 MiB stripes = 4 ops.
  EXPECT_EQ(r.forwarded_ops, 4u);
  EXPECT_GT(r.exchange_s, 0.0);
}

TEST(Collective, CollectiveBeatsIndependentOnBaselines) {
  const auto p = quick();
  const auto cfg = bgp::MachineConfig::intrepid();
  const auto ind =
      run_collective(proto::Mechanism::ciod, IoMode::independent, cfg, {}, p);
  const auto col =
      run_collective(proto::Mechanism::ciod, IoMode::collective, cfg, {}, p);
  EXPECT_GT(col.throughput_mib_s, 1.5 * ind.throughput_mib_s)
      << "small strided pieces must hurt CIOD badly";
}

TEST(Collective, WorkQueueForwardingClosesTheGap) {
  const auto p = quick();
  const auto cfg = bgp::MachineConfig::intrepid();
  const auto ind =
      run_collective(proto::Mechanism::zoid_sched_async, IoMode::independent, cfg, {}, p);
  const auto col =
      run_collective(proto::Mechanism::zoid_sched_async, IoMode::collective, cfg, {}, p);
  // Within ~20% of each other: the forwarding layer absorbs small ops.
  EXPECT_LT(col.throughput_mib_s / ind.throughput_mib_s, 1.2);
  EXPECT_GT(col.throughput_mib_s / ind.throughput_mib_s, 0.8);
}

TEST(Collective, TotalBytesInvariant) {
  const auto p = quick();
  EXPECT_EQ(p.total_bytes(), 32ull * 8 * 64 * 1024);
}

sim::Proc<void> torus_move(bgp::Machine& m, std::uint64_t bytes, sim::SimTime& done) {
  co_await m.pset(0).torus().transfer(bytes);
  done = m.engine().now();
}

TEST(Torus, PerFlowCapAndAggregateCapacity) {
  sim::Engine eng;
  auto cfg = bgp::MachineConfig::intrepid();
  cfg.torus_latency_ns = 0;
  bgp::Machine m(eng, cfg);
  // One flow is capped at the per-node rate, far below the aggregate.
  sim::SimTime done = -1;
  eng.spawn(torus_move(m, 1200ull << 20, done));  // 1200 MiB at 1200 MiB/s
  eng.run();
  EXPECT_NEAR(sim::to_seconds(done), 1.0, 0.05);
}

}  // namespace
}  // namespace iofwd::wl
