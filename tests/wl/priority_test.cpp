#include "wl/priority.hpp"

#include <gtest/gtest.h>

namespace iofwd::wl {
namespace {

PriorityParams quick() {
  PriorityParams p;
  p.bulk_iterations = 30;
  p.interactive_iterations = 30;
  return p;
}

TEST(PriorityWorkload, ProducesMetrics) {
  const auto r = run_priority(proto::Mechanism::zoid_sched, bgp::MachineConfig::intrepid(), {},
                              quick());
  EXPECT_GT(r.bulk_throughput_mib_s, 0);
  EXPECT_GT(r.interactive_mean_latency_us, 0);
  EXPECT_GE(r.interactive_p99_latency_us, r.interactive_mean_latency_us);
  EXPECT_GT(r.bulk_mean_latency_ms, 0);
}

TEST(PriorityWorkload, PrioritySchedulingCutsInteractiveLatency) {
  // The headline of the paper's suggested extension: under a constrained
  // worker pool, priority scheduling protects small operations.
  const auto cfg = bgp::MachineConfig::intrepid();
  proto::ForwarderConfig fifo;
  fifo.workers = 2;
  fifo.policy = proto::QueuePolicy::fifo;
  proto::ForwarderConfig prio = fifo;
  prio.policy = proto::QueuePolicy::priority;

  const auto r_fifo = run_priority(proto::Mechanism::zoid_sched, cfg, fifo, quick());
  const auto r_prio = run_priority(proto::Mechanism::zoid_sched, cfg, prio, quick());
  EXPECT_LT(r_prio.interactive_p99_latency_us, 0.5 * r_fifo.interactive_p99_latency_us);
  // Bulk throughput is not materially harmed.
  EXPECT_GT(r_prio.bulk_throughput_mib_s, 0.9 * r_fifo.bulk_throughput_mib_s);
}

TEST(PriorityWorkload, SjfAlsoHelpsSmallOps) {
  const auto cfg = bgp::MachineConfig::intrepid();
  proto::ForwarderConfig fifo;
  fifo.workers = 2;
  proto::ForwarderConfig sjf = fifo;
  sjf.policy = proto::QueuePolicy::sjf;
  const auto r_fifo = run_priority(proto::Mechanism::zoid_sched, cfg, fifo, quick());
  const auto r_sjf = run_priority(proto::Mechanism::zoid_sched, cfg, sjf, quick());
  EXPECT_LT(r_sjf.interactive_p99_latency_us, r_fifo.interactive_p99_latency_us);
}

}  // namespace
}  // namespace iofwd::wl
