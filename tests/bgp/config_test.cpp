#include "bgp/config.hpp"

#include <gtest/gtest.h>

namespace iofwd::bgp {
namespace {

TEST(MachineConfig, IntrepidDefaultsValidate) {
  const auto cfg = MachineConfig::intrepid();
  std::string why;
  EXPECT_TRUE(cfg.validate(&why)) << why;
  EXPECT_EQ(cfg.cns_per_pset, 64);
  EXPECT_EQ(cfg.ion_cores, 4);
  EXPECT_EQ(cfg.total_cns(), 64);
}

TEST(MachineConfig, TreeEffectivePeakMatchesPaper) {
  // Paper Sec. III-A: ~731 MiBps effective after 26 B headers per 256 B.
  const auto cfg = MachineConfig::intrepid();
  EXPECT_NEAR(cfg.tree_effective_peak_mib_s(), 731.0, 8.0);
}

TEST(MachineConfig, SingleThreadExternalMatchesPaper) {
  // Paper Fig. 5: one ION thread sustains 307 MiBps of TCP.
  const auto cfg = MachineConfig::intrepid();
  EXPECT_NEAR(cfg.external_peak_mib_s(1), 307.0, 3.0);
}

TEST(MachineConfig, FourThreadExternalMatchesPaper) {
  // Paper Fig. 5: four threads sustain 791 MiBps.
  const auto cfg = MachineConfig::intrepid();
  EXPECT_NEAR(cfg.external_peak_mib_s(4), 791.0, 8.0);
}

TEST(MachineConfig, EightThreadsWorseThanFour) {
  // Paper Fig. 5 and Fig. 11: 8 threads on 4 cores regress.
  const auto cfg = MachineConfig::intrepid();
  EXPECT_LT(cfg.external_peak_mib_s(8), cfg.external_peak_mib_s(4));
}

TEST(MachineConfig, EndToEndBoundNearPaper) {
  // Paper Sec. III-C: ~650 MiBps.
  const auto cfg = MachineConfig::intrepid();
  EXPECT_NEAR(cfg.end_to_end_bound_mib_s(), 650.0, 40.0);
}

TEST(MachineConfig, ValidateRejectsBadConfigs) {
  std::string why;
  auto check_invalid = [&](auto mutate) {
    auto cfg = MachineConfig::intrepid();
    mutate(cfg);
    EXPECT_FALSE(cfg.validate(&why));
    EXPECT_FALSE(why.empty());
  };
  check_invalid([](MachineConfig& c) { c.num_psets = 0; });
  check_invalid([](MachineConfig& c) { c.cns_per_pset = 0; });
  check_invalid([](MachineConfig& c) { c.num_da_nodes = 0; });
  check_invalid([](MachineConfig& c) { c.num_fsns = -1; });
  check_invalid([](MachineConfig& c) { c.ion_cores = 0; });
  check_invalid([](MachineConfig& c) { c.tree_raw_mb_s = 0; });
  check_invalid([](MachineConfig& c) { c.eth_mib_s = -5; });
  check_invalid([](MachineConfig& c) { c.ion_tcp_send_cost_ns_b = 0; });
  check_invalid([](MachineConfig& c) { c.ion_share_penalty = -0.1; });
  check_invalid([](MachineConfig& c) { c.control_steps = 0; });
  check_invalid([](MachineConfig& c) { c.ion_memory_bytes = 0; });
}

}  // namespace
}  // namespace iofwd::bgp
