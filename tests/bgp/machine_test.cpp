#include "bgp/machine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/units.hpp"
#include "sim/sync.hpp"

namespace iofwd::bgp {
namespace {

TEST(Machine, BuildsIntrepidTopology) {
  sim::Engine eng;
  auto cfg = MachineConfig::intrepid();
  cfg.num_psets = 4;
  cfg.num_da_nodes = 20;
  Machine m(eng, cfg);
  EXPECT_EQ(m.num_psets(), 4);
  EXPECT_EQ(m.num_das(), 20);
  EXPECT_EQ(m.storage().num_fsns(), 128);
  EXPECT_EQ(m.pset(3).id(), 3);
  EXPECT_EQ(m.pset(0).num_cns(), 64);
  EXPECT_EQ(m.da(19).id(), 19);
}

TEST(Machine, RejectsInvalidConfig) {
  sim::Engine eng;
  auto cfg = MachineConfig::intrepid();
  cfg.ion_cores = 0;
  EXPECT_THROW(Machine(eng, cfg), std::invalid_argument);
}

TEST(Machine, MxnDistributionCoversAllDas) {
  sim::Engine eng;
  auto cfg = MachineConfig::intrepid();
  cfg.num_psets = 2;
  cfg.num_da_nodes = 5;
  Machine m(eng, cfg);
  // 128 CNs over 5 DAs: every DA serves some CNs, balanced within 1.
  std::vector<int> counts(5, 0);
  for (int p = 0; p < 2; ++p) {
    for (int c = 0; c < 64; ++c) ++counts[static_cast<std::size_t>(m.da_for_cn(p, c).id())];
  }
  int lo = counts[0], hi = counts[0];
  for (int x : counts) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_GT(lo, 0);
  EXPECT_LE(hi - lo, 1);
}

TEST(Machine, TreeLinkHasHeaderOverhead) {
  sim::Engine eng;
  Machine m(eng, MachineConfig::intrepid());
  EXPECT_NEAR(m.pset(0).tree().effective_peak_mib_s(), 731.0, 8.0);
}

TEST(Machine, IonMemoryMatchesConfig) {
  sim::Engine eng;
  Machine m(eng, MachineConfig::intrepid());
  EXPECT_EQ(m.pset(0).ion().memory().available(), 2ll * 1024 * 1024 * 1024);
}

sim::Proc<void> serve_and_mark(Machine& m, int fsn, std::uint64_t bytes, sim::SimTime& done,
                               sim::Engine& eng) {
  co_await m.storage().serve(fsn, bytes);
  done = eng.now();
}

TEST(Machine, StorageServesThroughFsnLink) {
  sim::Engine eng;
  auto cfg = MachineConfig::intrepid();
  cfg.storage_latency_ns = 0;
  cfg.fsn_mib_s_each = bytes_per_ns_to_mib_per_s(1.0);       // 1 B/ns per FSN
  cfg.storage_aggregate_mib_s = bytes_per_ns_to_mib_per_s(100.0);  // not binding
  Machine m(eng, cfg);
  sim::SimTime done = -1;
  eng.spawn(serve_and_mark(m, 0, 1000, done, eng));
  eng.run();
  EXPECT_EQ(done, 1000);
}

TEST(Machine, StorageAggregateCapBinds) {
  sim::Engine eng;
  auto cfg = MachineConfig::intrepid();
  cfg.storage_latency_ns = 0;
  cfg.fsn_mib_s_each = bytes_per_ns_to_mib_per_s(10.0);        // generous per-FSN
  cfg.storage_aggregate_mib_s = bytes_per_ns_to_mib_per_s(1.0);  // 1 B/ns total
  cfg.num_fsns = 4;
  Machine m(eng, cfg);
  std::vector<sim::SimTime> done(4, -1);
  for (int f = 0; f < 4; ++f) eng.spawn(serve_and_mark(m, f, 1000, done[f], eng));
  eng.run();
  // 4000 bytes through a 1 B/ns aggregate: 4000 ns, shared fairly.
  for (auto d : done) EXPECT_EQ(d, 4000);
}

TEST(Machine, StripingRoundRobins) {
  sim::Engine eng;
  Machine m(eng, MachineConfig::intrepid());
  const int n = m.storage().num_fsns();
  EXPECT_EQ(m.storage().fsn_for(0), 0);
  EXPECT_EQ(m.storage().fsn_for(1), 1);
  EXPECT_EQ(m.storage().fsn_for(static_cast<std::uint64_t>(n)), 0);
}

}  // namespace
}  // namespace iofwd::bgp
