#include "testsupport/testsupport.hpp"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include <stdlib.h>  // mkdtemp

#include "core/rng.hpp"

namespace iofwd::testsupport {

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& x : v) x = static_cast<std::byte>(rng.next());
  return v;
}

std::uint64_t test_seed(const char* label, std::uint64_t dflt) {
  std::uint64_t seed = dflt;
  const char* env = std::getenv("IOFWD_TEST_SEED");
  const bool overridden = env != nullptr && *env != '\0';
  if (overridden) {
    seed = std::strtoull(env, nullptr, 0);  // base 0: decimal or 0x hex
  }
  std::fprintf(stderr, "[%s] seed 0x%" PRIx64 "%s (replay: IOFWD_TEST_SEED=0x%" PRIx64 ")\n",
               label, seed, overridden ? " (from IOFWD_TEST_SEED)" : "", seed);
  return seed;
}

std::unique_ptr<rt::IoBackend> TestCluster::make_backend_chain(int shard) {
  // The terminal MemBackend is owned by the TestCluster and merely borrowed
  // by the chain: restart_shard() rebuilds the chain, and the shard must
  // come back over the same storage (an ION crash does not lose the PFS).
  const auto k = static_cast<std::size_t>(shard);
  while (owned_mems_.size() <= k) {
    owned_mems_.push_back(std::make_unique<rt::MemBackend>());
    mems_.push_back(owned_mems_.back().get());
  }
  std::unique_ptr<rt::IoBackend> backend = std::make_unique<BorrowedBackend>(*owned_mems_[k]);
  backend = std::make_unique<fault::FaultyBackend>(std::move(backend), backend_plan_);
  if (opts_.retry != nullptr) {
    backend = std::make_unique<fault::RetryingBackend>(std::move(backend), *opts_.retry);
  }
  return backend;
}

TestCluster::TestCluster(ClusterOptions opts) : opts_(std::move(opts)) {
  backend_plan_ = opts_.backend_plan ? opts_.backend_plan : std::make_shared<fault::FaultPlan>();

  if (opts_.bb_journal && opts_.server.bb_journal_dir.empty()) {
    char tmpl[] = "/tmp/iofwd-journal-XXXXXX";
    if (char* dir = mkdtemp(tmpl)) {
      journal_root_ = dir;
      owns_journal_root_ = true;
      opts_.server.bb_journal_dir = journal_root_;
    }
  } else if (!opts_.server.bb_journal_dir.empty()) {
    journal_root_ = opts_.server.bb_journal_dir;
  }

  if (opts_.shards > 0) {
    cluster::IonClusterConfig ccfg;
    ccfg.shards = opts_.shards;
    ccfg.server = opts_.server;
    if (opts_.with_tracer) ccfg.server.tracer = &tracer_;
    ccfg.cluster_bb_bytes = opts_.cluster_bb_bytes;
    ccfg.cluster_bb_high_watermark = opts_.cluster_bb_high_watermark;
    ccfg.cluster_bb_low_watermark = opts_.cluster_bb_low_watermark;
    cluster_ = std::make_unique<cluster::IonCluster>(
        [this](int s) { return make_backend_chain(s); }, ccfg);
  } else {
    rt::ServerConfig cfg = opts_.server;
    if (cfg.registry == nullptr) cfg.registry = &registry_;
    if (opts_.with_tracer) cfg.tracer = &tracer_;
    server_ = std::make_unique<rt::IonServer>(make_backend_chain(0), cfg);
  }

  for (int i = 0; i < opts_.clients; ++i) {
    ClientSpec spec;
    spec.cfg = opts_.client;
    spec.reconnectable = opts_.reconnectable;
    spec.faulty_redials = opts_.stream_plan != nullptr;
    add_client(std::move(spec));
  }
}

TestCluster::~TestCluster() {
  stop();
  if (owns_journal_root_ && !journal_root_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(journal_root_, ec);  // best effort
  }
}

void TestCluster::kill_shard(int i) {
  assert(cluster_ && "kill_shard() requires a sharded TestCluster");
  cluster_->kill_shard(i);
}

void TestCluster::restart_shard(int i) {
  assert(cluster_ && "restart_shard() requires a sharded TestCluster");
  cluster_->restart_shard(i);
}

rt::IonServer& TestCluster::server(int i) {
  if (cluster_) return cluster_->shard(i);
  assert(i == 0 && "classic TestCluster has exactly one server");
  return *server_;
}

cluster::RoutingClient& TestCluster::routing_client(std::size_t i) {
  auto* rc = dynamic_cast<cluster::RoutingClient*>(clients_.at(i).get());
  assert(rc != nullptr && "routing_client() requires a sharded TestCluster");
  return *rc;
}

Result<std::unique_ptr<rt::ByteStream>> TestCluster::dial(
    int shard, const std::shared_ptr<fault::FaultPlan>& stream_plan,
    std::uint64_t cut_after_write_bytes) {
  auto [s, c] = rt::InProcTransport::make_pair(opts_.pipe_bytes);
  server(shard).serve(std::move(s));
  std::unique_ptr<rt::ByteStream> stream = std::move(c);
  const auto& plan = stream_plan ? stream_plan : opts_.stream_plan;
  if (plan || cut_after_write_bytes > 0) {
    fault::StreamFaultConfig scfg;
    scfg.cut_after_write_bytes = cut_after_write_bytes;
    stream = std::make_unique<fault::FaultyStream>(std::move(stream), plan, scfg);
  }
  return stream;
}

std::size_t TestCluster::add_client(ClientSpec spec) {
  if (cluster_) {
    std::vector<cluster::RoutingClient::ShardLink> links;
    links.reserve(static_cast<std::size_t>(cluster_->shards()));
    for (int s = 0; s < cluster_->shards(); ++s) {
      const auto& plan = static_cast<std::size_t>(s) < spec.shard_stream_plans.size() &&
                                 spec.shard_stream_plans[static_cast<std::size_t>(s)]
                             ? spec.shard_stream_plans[static_cast<std::size_t>(s)]
                             : spec.stream_plan;
      const std::uint64_t cut = (spec.cut_shard < 0 || spec.cut_shard == s)
                                    ? spec.cut_after_write_bytes
                                    : 0;
      cluster::RoutingClient::ShardLink link;
      link.stream = dial(s, plan, cut).value();
      if (spec.reconnectable) {
        link.factory = factory(spec.faulty_redials ? plan : nullptr, s);
      }
      links.push_back(std::move(link));
    }
    clients_.push_back(
        std::make_unique<cluster::RoutingClient>(std::move(links), spec.cfg, opts_.breaker));
    return clients_.size() - 1;
  }

  auto stream = dial(0, spec.stream_plan, spec.cut_after_write_bytes);
  rt::StreamFactory redial;
  if (spec.reconnectable) {
    redial = factory(spec.faulty_redials ? spec.stream_plan : nullptr);
  }
  clients_.push_back(
      std::make_unique<rt::Client>(std::move(stream).value(), spec.cfg, std::move(redial)));
  return clients_.size() - 1;
}

rt::StreamFactory TestCluster::factory(std::shared_ptr<fault::FaultPlan> stream_plan,
                                       int shard) {
  // The factory outlives no one: TestCluster joins the server (and with it
  // every client connection) before its members are destroyed.
  return [this, shard, plan = std::move(stream_plan)] { return dial(shard, plan); };
}

void TestCluster::stop() {
  if (cluster_) cluster_->stop();
  if (server_) server_->stop();
}

std::vector<std::byte> TestCluster::drain_and_snapshot(const std::string& path) {
  stop();
  return snapshot(path);
}

std::vector<std::byte> TestCluster::snapshot(const std::string& path) const {
  for (rt::MemBackend* mem : mems_) {
    auto bytes = mem->snapshot(path);
    if (!bytes.empty()) return bytes;
  }
  return {};
}

}  // namespace iofwd::testsupport
