// Shared test harness for runtime end-to-end tests (README "Test harness").
//
// Nearly every rt/fault/obs test builds the same little cluster by hand: a
// MemBackend (usually behind a FaultyBackend), an IonServer with a few config
// knobs, one or more in-process clients, and a drain-then-snapshot check at
// the end. TestCluster packages exactly that shape — and nothing more: tests
// that pin unusual wiring (private registries, raw socketpairs) keep building
// by hand.
//
//   testsupport::ClusterOptions o;
//   o.server.exec = rt::ExecModel::work_queue_async;
//   o.clients = 4;
//   testsupport::TestCluster tc(o);
//   tc.client(0).open(1, "f");
//   ...
//   EXPECT_EQ(tc.drain_and_snapshot("f"), expected_bytes);
//
// Sharded deployments (src/cluster/): set options.shards > 0 and the server
// under test becomes an IonCluster of N IonServer shards, every client a
// RoutingClient over N connections — and because client() hands back the
// rt::ForwardingClient interface, the same fault-plan/cut/redial spec runs
// unchanged against one ION or a fleet. shards == 0 keeps the classic
// single-server wiring byte-for-byte.
//
// Seeded tests pull their seed through test_seed(), which honors the
// IOFWD_TEST_SEED environment override and logs the seed in use, so any
// randomized failure reproduces from the line the run printed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/ion_cluster.hpp"
#include "cluster/routing_client.hpp"
#include "fault/decorators.hpp"
#include "fault/plan.hpp"
#include "fault/retry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"
#include "rt/transport.hpp"

namespace iofwd::testsupport {

// A non-owning IoBackend view. The chaos harness hands each server chain a
// BorrowedBackend over a TestCluster-owned MemBackend, so killing and
// restarting a shard (which destroys and rebuilds its whole backend chain)
// leaves the terminal storage intact — the MemBackend plays the PFS, and
// the PFS survives an ION crash.
class BorrowedBackend final : public rt::IoBackend {
 public:
  explicit BorrowedBackend(rt::IoBackend& inner) : inner_(inner) {}

  Status open(int fd, const std::string& path) override { return inner_.open(fd, path); }
  Result<std::uint64_t> write(int fd, std::uint64_t offset,
                              std::span<const std::byte> data) override {
    return inner_.write(fd, offset, data);
  }
  Result<std::uint64_t> read(int fd, std::uint64_t offset, std::span<std::byte> out) override {
    return inner_.read(fd, offset, out);
  }
  Status fsync(int fd) override { return inner_.fsync(fd); }
  Status close(int fd) override { return inner_.close(fd); }
  Result<std::uint64_t> size(int fd) override { return inner_.size(fd); }

 private:
  rt::IoBackend& inner_;
};

// Seeded pseudo-random payload bytes (the pattern() helper formerly copied
// into each test file).
std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed);

// The seed a randomized test should run with: `dflt` unless the
// IOFWD_TEST_SEED environment variable overrides it (decimal or 0x hex).
// Logs "<label>: seed 0x..." either way, so every failure report carries
// the seed needed to replay it.
std::uint64_t test_seed(const char* label, std::uint64_t dflt);

struct ClusterOptions {
  rt::ServerConfig server;      // knobs pass through untouched
  rt::ClientConfig client;      // config for the initial clients
  int clients = 1;              // clients dialed in at construction
  std::size_t pipe_bytes = 1u << 20;  // in-proc ring capacity per direction
  // Sharded mode: > 0 builds an IonCluster of this many IonServer shards
  // (each with `server` as its config template) and every client becomes a
  // RoutingClient over one connection per shard. 0 = the classic single
  // IonServer.
  int shards = 0;
  // Cluster-wide burst-buffer budget (sharded mode only; 0 = no budget).
  std::uint64_t cluster_bb_bytes = 0;
  double cluster_bb_high_watermark = 0.75;
  double cluster_bb_low_watermark = 0.50;
  // Per-shard circuit-breaker tuning applied to every RoutingClient
  // (sharded mode; the breaker is always on — defaults only bite after an
  // inner client exhausts its reconnect budget).
  cluster::HealthConfig breaker;
  // Give the burst buffer a write-ahead journal under a fresh mkdtemp root
  // (removed at destruction). Ignored when server.bb_journal_dir is already
  // set. Required for kill_shard()/restart_shard() to recover acked writes.
  bool bb_journal = false;
  // Wrap the MemBackend in a FaultyBackend driven by this plan (a fresh,
  // empty plan is created when null, so tests can always add rules later
  // through backend_plan()). Sharded mode: one shared plan drives every
  // shard's FaultyBackend.
  std::shared_ptr<fault::FaultPlan> backend_plan;
  // Wrap the backend chain in a RetryingBackend (applied above the faults).
  const fault::RetryPolicy* retry = nullptr;
  // Wrap every dialed client stream in a FaultyStream driven by this plan.
  std::shared_ptr<fault::FaultPlan> stream_plan;
  // Give the initial clients the cluster's redial factory, so transport
  // faults reconnect-and-replay instead of surfacing.
  bool reconnectable = false;
  // Point cfg.tracer at the cluster-owned RuntimeTracer.
  bool with_tracer = false;
};

class TestCluster {
 public:
  explicit TestCluster(ClusterOptions opts = {});
  ~TestCluster();

  // The server under test. Classic mode ignores `i`; sharded mode returns
  // shard i.
  [[nodiscard]] rt::IonServer& server(int i = 0);
  // The sharded deployment, or nullptr in classic mode.
  [[nodiscard]] cluster::IonCluster* ion_cluster() { return cluster_.get(); }
  [[nodiscard]] int shards() const { return cluster_ ? cluster_->shards() : 1; }

  [[nodiscard]] rt::MemBackend& mem(int shard = 0) {
    return *mems_.at(static_cast<std::size_t>(shard));
  }
  [[nodiscard]] fault::FaultPlan& backend_plan() { return *backend_plan_; }
  [[nodiscard]] obs::MetricRegistry& registry() { return registry_; }
  [[nodiscard]] obs::RuntimeTracer& tracer() { return tracer_; }

  // The application-facing client surface: an rt::Client in classic mode, a
  // cluster::RoutingClient in sharded mode. Specs written against this
  // interface run unchanged in both.
  [[nodiscard]] rt::ForwardingClient& client(std::size_t i = 0) { return *clients_.at(i); }
  // The same client downcast to its sharded type (sharded mode only) — for
  // per-shard stats attribution in cluster tests.
  [[nodiscard]] cluster::RoutingClient& routing_client(std::size_t i = 0);
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }

  // One more client dialed into the live server, with its own fault wiring.
  struct ClientSpec {
    rt::ClientConfig cfg;
    // Wrap this client's initial stream in a FaultyStream driven by this
    // plan (falls back to the cluster-wide options.stream_plan). Sharded
    // mode: applies to every shard connection unless shard_stream_plans
    // overrides it.
    std::shared_ptr<fault::FaultPlan> stream_plan;
    // Sharded mode: per-shard stream plans (index = shard), so injected
    // faults — and their fired() accounting — attribute to one shard.
    // Shorter than the shard count is fine; missing entries fall back to
    // stream_plan.
    std::vector<std::shared_ptr<fault::FaultPlan>> shard_stream_plans;
    // Kill the initial connection after this many written bytes (the old
    // CuttingStream budget; 0 = no budget).
    std::uint64_t cut_after_write_bytes = 0;
    // Sharded mode: apply the cut budget only to this shard's connection
    // (-1 = every shard connection gets its own budget).
    int cut_shard = -1;
    bool reconnectable = false;
    // Redialed streams normally come up clean (a cut line is repaired by
    // redialing); set this to wrap every redial in stream_plan too — the
    // "whole fabric is flaky" shape of the integrity chaos tests.
    bool faulty_redials = false;
  };
  std::size_t add_client(ClientSpec spec);
  std::size_t add_client(rt::ClientConfig cfg = {}) {
    ClientSpec spec;
    spec.cfg = cfg;
    return add_client(std::move(spec));
  }

  // A StreamFactory dialing fresh connections into this server, each wrapped
  // per the explicit plan given here (NOT the cluster-wide stream_plan: a
  // redial is a fresh physical line). This is what reconnectable clients
  // redial through. Sharded mode: dials into `shard`.
  [[nodiscard]] rt::StreamFactory factory(
      std::shared_ptr<fault::FaultPlan> stream_plan = nullptr, int shard = 0);

  // Process-level chaos (sharded mode only). kill_shard hard-crashes shard
  // i: its connections drop, staged state evaporates, the journal directory
  // survives as the crash image. restart_shard rebuilds it over the SAME
  // MemBackend (the PFS survives the crash) and replays the journal, so
  // every previously acked write is readable again.
  void kill_shard(int i);
  void restart_shard(int i);

  // The journal root in use ("" when bb_journal was off).
  [[nodiscard]] const std::string& journal_dir() const { return journal_root_; }

  // Quiesce the server: joins receiver lanes/threads, drains the task queue
  // and the burst buffer. Idempotent (the destructor calls it too).
  void stop();

  // stop(), then return the terminal backend's bytes for `path` — the
  // standard end-of-test integrity check.
  std::vector<std::byte> drain_and_snapshot(const std::string& path);

  // The live backend's bytes for `path`, without quiescing first. Sharded
  // mode searches every shard's MemBackend (a path lives on exactly the
  // shard its descriptor routed to).
  [[nodiscard]] std::vector<std::byte> snapshot(const std::string& path) const;

 private:
  [[nodiscard]] Result<std::unique_ptr<rt::ByteStream>> dial(
      int shard, const std::shared_ptr<fault::FaultPlan>& stream_plan,
      std::uint64_t cut_after_write_bytes = 0);
  [[nodiscard]] std::unique_ptr<rt::IoBackend> make_backend_chain(int shard);

  ClusterOptions opts_;
  obs::MetricRegistry registry_;
  obs::RuntimeTracer tracer_;
  std::string journal_root_;   // mkdtemp root when bb_journal; removed in dtor
  bool owns_journal_root_ = false;
  // The terminal MemBackends, owned here (not by the chains) so a shard
  // restart rebuilds its chain over the same storage. Declared before the
  // servers, which hold BorrowedBackend views into them.
  std::vector<std::unique_ptr<rt::MemBackend>> owned_mems_;
  std::vector<rt::MemBackend*> mems_;  // flat view for snapshot()
  std::shared_ptr<fault::FaultPlan> backend_plan_;
  std::unique_ptr<rt::IonServer> server_;          // classic mode
  std::unique_ptr<cluster::IonCluster> cluster_;   // sharded mode
  std::vector<std::unique_ptr<rt::ForwardingClient>> clients_;
};

}  // namespace iofwd::testsupport
