// Shared test harness for runtime end-to-end tests (README "Test harness").
//
// Nearly every rt/fault/obs test builds the same little cluster by hand: a
// MemBackend (usually behind a FaultyBackend), an IonServer with a few config
// knobs, one or more in-process clients, and a drain-then-snapshot check at
// the end. TestCluster packages exactly that shape — and nothing more: tests
// that pin unusual wiring (private registries, raw socketpairs) keep building
// by hand.
//
//   testsupport::ClusterOptions o;
//   o.server.exec = rt::ExecModel::work_queue_async;
//   o.clients = 4;
//   testsupport::TestCluster tc(o);
//   tc.client(0).open(1, "f");
//   ...
//   EXPECT_EQ(tc.drain_and_snapshot("f"), expected_bytes);
//
// Seeded tests pull their seed through test_seed(), which honors the
// IOFWD_TEST_SEED environment override and logs the seed in use, so any
// randomized failure reproduces from the line the run printed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/decorators.hpp"
#include "fault/plan.hpp"
#include "fault/retry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"
#include "rt/transport.hpp"

namespace iofwd::testsupport {

// Seeded pseudo-random payload bytes (the pattern() helper formerly copied
// into each test file).
std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed);

// The seed a randomized test should run with: `dflt` unless the
// IOFWD_TEST_SEED environment variable overrides it (decimal or 0x hex).
// Logs "<label>: seed 0x..." either way, so every failure report carries
// the seed needed to replay it.
std::uint64_t test_seed(const char* label, std::uint64_t dflt);

struct ClusterOptions {
  rt::ServerConfig server;      // knobs pass through untouched
  rt::ClientConfig client;      // config for the initial clients
  int clients = 1;              // clients dialed in at construction
  std::size_t pipe_bytes = 1u << 20;  // in-proc ring capacity per direction
  // Wrap the MemBackend in a FaultyBackend driven by this plan (a fresh,
  // empty plan is created when null, so tests can always add rules later
  // through backend_plan()).
  std::shared_ptr<fault::FaultPlan> backend_plan;
  // Wrap the backend chain in a RetryingBackend (applied above the faults).
  const fault::RetryPolicy* retry = nullptr;
  // Wrap every dialed client stream in a FaultyStream driven by this plan.
  std::shared_ptr<fault::FaultPlan> stream_plan;
  // Give the initial clients the cluster's redial factory, so transport
  // faults reconnect-and-replay instead of surfacing.
  bool reconnectable = false;
  // Point cfg.tracer at the cluster-owned RuntimeTracer.
  bool with_tracer = false;
};

class TestCluster {
 public:
  explicit TestCluster(ClusterOptions opts = {});
  ~TestCluster();

  [[nodiscard]] rt::IonServer& server() { return *server_; }
  [[nodiscard]] rt::MemBackend& mem() { return *mem_; }
  [[nodiscard]] fault::FaultPlan& backend_plan() { return *backend_plan_; }
  [[nodiscard]] obs::MetricRegistry& registry() { return registry_; }
  [[nodiscard]] obs::RuntimeTracer& tracer() { return tracer_; }

  [[nodiscard]] rt::Client& client(std::size_t i = 0) { return *clients_.at(i); }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }

  // One more client dialed into the live server, with its own fault wiring.
  struct ClientSpec {
    rt::ClientConfig cfg;
    // Wrap this client's initial stream in a FaultyStream driven by this
    // plan (falls back to the cluster-wide options.stream_plan).
    std::shared_ptr<fault::FaultPlan> stream_plan;
    // Kill the initial connection after this many written bytes (the old
    // CuttingStream budget; 0 = no budget).
    std::uint64_t cut_after_write_bytes = 0;
    bool reconnectable = false;
    // Redialed streams normally come up clean (a cut line is repaired by
    // redialing); set this to wrap every redial in stream_plan too — the
    // "whole fabric is flaky" shape of the integrity chaos tests.
    bool faulty_redials = false;
  };
  std::size_t add_client(ClientSpec spec);
  std::size_t add_client(rt::ClientConfig cfg = {}) {
    ClientSpec spec;
    spec.cfg = cfg;
    return add_client(std::move(spec));
  }

  // A StreamFactory dialing fresh connections into this server, each wrapped
  // per the explicit plan given here (NOT the cluster-wide stream_plan: a
  // redial is a fresh physical line). This is what reconnectable clients
  // redial through.
  [[nodiscard]] rt::StreamFactory factory(
      std::shared_ptr<fault::FaultPlan> stream_plan = nullptr);

  // Quiesce the server: joins receiver lanes/threads, drains the task queue
  // and the burst buffer. Idempotent (the destructor calls it too).
  void stop();

  // stop(), then return the terminal backend's bytes for `path` — the
  // standard end-of-test integrity check.
  std::vector<std::byte> drain_and_snapshot(const std::string& path);

  // The live backend's bytes for `path`, without quiescing first.
  [[nodiscard]] std::vector<std::byte> snapshot(const std::string& path) const {
    return mem_->snapshot(path);
  }

 private:
  [[nodiscard]] Result<std::unique_ptr<rt::ByteStream>> dial(
      const std::shared_ptr<fault::FaultPlan>& stream_plan,
      std::uint64_t cut_after_write_bytes = 0);

  ClusterOptions opts_;
  obs::MetricRegistry registry_;
  obs::RuntimeTracer tracer_;
  rt::MemBackend* mem_ = nullptr;  // owned by the server's backend chain
  std::shared_ptr<fault::FaultPlan> backend_plan_;
  std::unique_ptr<rt::IonServer> server_;
  std::vector<std::unique_ptr<rt::Client>> clients_;
};

}  // namespace iofwd::testsupport
