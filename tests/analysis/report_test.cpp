#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace iofwd::analysis {
namespace {

TEST(FigureReport, StoresAndRetrieves) {
  FigureReport r("figX", "title", "CNs");
  r.add("4", "CIOD", 400.0);
  r.add("4", "ZOID", 440.0);
  r.add("8", "CIOD", 410.0);
  EXPECT_EQ(r.get("4", "CIOD"), 400.0);
  EXPECT_EQ(r.get("4", "ZOID"), 440.0);
  EXPECT_EQ(r.get("9", "CIOD"), std::nullopt);
  EXPECT_EQ(r.get("4", "nope"), std::nullopt);
}

TEST(FigureReport, OverwriteUpdatesCell) {
  FigureReport r("f", "t", "x");
  r.add("1", "s", 1.0);
  r.add("1", "s", 2.0);
  EXPECT_EQ(r.get("1", "s"), 2.0);
}

TEST(FigureReport, RenderContainsSeriesAndExpected) {
  FigureReport r("fig09", "ladder", "CNs");
  r.add("32", "CIOD", 390.8);
  r.add_expected("32", "CIOD", 390.0);
  const std::string out = r.render();
  EXPECT_NE(out.find("fig09"), std::string::npos);
  EXPECT_NE(out.find("CIOD"), std::string::npos);
  EXPECT_NE(out.find("paper:CIOD"), std::string::npos);
  EXPECT_NE(out.find("390.8"), std::string::npos);
}

TEST(FigureReport, RenderWithoutExpectationsOmitsPaperColumns) {
  FigureReport r("f", "t", "x");
  r.add("1", "s", 1.0);
  EXPECT_EQ(r.render().find("paper:"), std::string::npos);
}

TEST(FigureReport, MissingCellsRenderAsDash) {
  FigureReport r("f", "t", "x");
  r.add("1", "a", 1.0);
  r.add("2", "b", 2.0);  // (1,b) and (2,a) missing
  const std::string out = r.render();
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(FigureReport, CsvRoundTrip) {
  FigureReport r("figcsv", "t", "x");
  r.add("1", "s", 42.5);
  r.add_expected("1", "s", 40.0);
  const std::string path = "/tmp/iofwd_report_test.csv";
  ASSERT_TRUE(r.write_csv(path).is_ok());
  std::ifstream f(path);
  std::string header, line;
  std::getline(f, header);
  std::getline(f, line);
  EXPECT_EQ(header, "x,series,measured_MiB/s,paper_MiB/s");
  EXPECT_EQ(line, "1,s,42.5,40");
  std::remove(path.c_str());
}

TEST(FigureReport, CsvToBadPathFails) {
  FigureReport r("f", "t", "x");
  EXPECT_FALSE(r.write_csv("/nonexistent_dir_xyz/file.csv").is_ok());
}

TEST(DiagTable, RowsRenderInInsertionOrderWithNotes) {
  DiagTable t("cache");
  t.add("hits", 12.0, "served locally");
  t.add("misses", "3");
  const std::string out = t.render();
  EXPECT_NE(out.find("cache"), std::string::npos);
  EXPECT_NE(out.find("hits"), std::string::npos);
  EXPECT_NE(out.find("served locally"), std::string::npos);
  EXPECT_LT(out.find("hits"), out.find("misses"));
  EXPECT_EQ(t.get("hits"), "12.00");
  EXPECT_EQ(t.get("nope"), std::nullopt);
}

TEST(DiagTable, NoteColumnOmittedWhenUnused) {
  DiagTable t("plain");
  t.add("a", 1.0);
  EXPECT_EQ(t.render().find("note"), std::string::npos);
}

TEST(DiagTable, BurstBufferTableShowsTheHeadlineStats) {
  BurstBufferDiag d;
  d.hit_rate = 0.95;
  d.coalesce_ratio = 16.0;
  d.flushed_bytes = 32ull << 20;
  d.cached_high_watermark = 48ull << 20;
  d.capacity_bytes = 64ull << 20;
  const auto t = burst_buffer_table(d);
  const std::string out = t.render();
  EXPECT_NE(out.find("burst-buffer"), std::string::npos);
  EXPECT_NE(out.find("95%"), std::string::npos) << out;
  EXPECT_NE(out.find("16.00"), std::string::npos) << out;
  EXPECT_NE(out.find("32.0 MiB"), std::string::npos) << out;
  EXPECT_NE(out.find("75%"), std::string::npos) << out;  // 48/64 occupancy
}

}  // namespace
}  // namespace iofwd::analysis
