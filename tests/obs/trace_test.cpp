#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace iofwd::obs {
namespace {

TEST(RuntimeTracer, SpanEmitsOneCompleteEvent) {
  RuntimeTracer t;
  { auto s = t.span("write", "op", 3); }
  EXPECT_EQ(t.event_count(), 1u);
  const std::string j = t.to_json();
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"write\""), std::string::npos);
  EXPECT_NE(j.find("\"cat\":\"op\""), std::string::npos);
  EXPECT_NE(j.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(j.find("\"dur\":"), std::string::npos);
}

TEST(RuntimeTracer, MovedFromSpanDoesNotDoubleEmit) {
  RuntimeTracer t;
  {
    auto a = t.span("op", "c", 0);
    auto b = std::move(a);
    a.finish();  // moved-from: must be a no-op
  }
  EXPECT_EQ(t.event_count(), 1u);
}

TEST(RuntimeTracer, FinishIsIdempotent) {
  RuntimeTracer t;
  auto s = t.span("op", "c", 0);
  s.finish();
  s.finish();
  EXPECT_EQ(t.event_count(), 1u);
}

TEST(RuntimeTracer, CounterAndInstantEvents) {
  RuntimeTracer t;
  t.counter("queue_depth", 17.0);
  t.instant("drop", "warn", 2);
  EXPECT_EQ(t.event_count(), 2u);
  const std::string j = t.to_json();
  EXPECT_NE(j.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(j.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
}

TEST(RuntimeTracer, ThreadNameMetadataEmitted) {
  RuntimeTracer t;
  t.set_thread_name(0, "worker 0");
  t.set_thread_name(99, "inline (receivers)");
  t.set_thread_name(0, "worker zero");  // last call for a tid wins
  const std::string j = t.to_json();
  EXPECT_NE(j.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(j.find("thread_name"), std::string::npos);
  EXPECT_NE(j.find("worker zero"), std::string::npos);
  EXPECT_NE(j.find("inline (receivers)"), std::string::npos);
  EXPECT_EQ(j.find("\"worker 0\""), std::string::npos);
}

TEST(RuntimeTracer, JsonIsABalancedArray) {
  RuntimeTracer t;
  t.set_thread_name(1, "w");
  { auto s = t.span("a", "b", 1); }
  t.counter("c", 1.0);
  const std::string j = t.to_json();
  ASSERT_FALSE(j.empty());
  EXPECT_EQ(j.front(), '[');
  EXPECT_EQ(j[j.find_last_not_of(" \n")], ']');
  long depth = 0;
  for (char c : j) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(RuntimeTracer, WriteJsonRoundTrips) {
  RuntimeTracer t;
  { auto s = t.span("write", "op", 0); }
  const std::string path = ::testing::TempDir() + "iofwd_trace_test.json";
  ASSERT_TRUE(t.write_json(path).is_ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), t.to_json());
  std::remove(path.c_str());
}

TEST(RuntimeTracer, TimestampsAreRelativeToConstruction) {
  RuntimeTracer t;
  const std::uint64_t a = t.now_us();
  const std::uint64_t b = t.now_us();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace iofwd::obs
