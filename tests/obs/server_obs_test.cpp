// End-to-end observability: an IonServer wired to an external registry,
// tracer, and flight recorder, driven through a real Client. Pins the API
// redesign contract — ServerStats is a snapshot view of the registry, the
// same registry serves the burst buffer ("bb.*"), and analysis can render
// the whole thing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/report.hpp"
#include "core/units.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::rt {
namespace {

using testsupport::ClusterOptions;
using testsupport::TestCluster;

TestCluster obs_cluster(ServerConfig cfg = {}) {
  ClusterOptions o;
  o.server = cfg;
  o.server.flight_recorder_ops = 16;
  o.with_tracer = true;
  return TestCluster(o);
}

void run_ops(ForwardingClient& client) {
  ASSERT_TRUE(client.open(1, "f").is_ok());
  const std::vector<std::byte> data(64_KiB, std::byte{0x5a});
  ASSERT_TRUE(client.write(1, 0, data).is_ok());
  ASSERT_TRUE(client.fsync(1).is_ok());
  auto r = client.read(1, 0, data.size());
  ASSERT_TRUE(r.is_ok());
  ASSERT_TRUE(client.close(1).is_ok());
}

TEST(ServerObs, SharedRegistryRecordsServerNamespace) {
  TestCluster tc = obs_cluster();
  run_ops(tc.client());
  const obs::Snapshot snap = tc.server().metrics();
  // open + write + fsync + read + close = 5 ops.
  EXPECT_EQ(snap.counter("server.ops"), 5u);
  EXPECT_EQ(snap.counter("server.bytes_in"), 64_KiB);
  EXPECT_EQ(snap.counter("server.bytes_out"), 64_KiB);
  ASSERT_NE(snap.histogram("server.write_latency_us"), nullptr);
  EXPECT_EQ(snap.histogram("server.write_latency_us")->count, 1u);
  ASSERT_NE(snap.histogram("server.read_latency_us"), nullptr);
  EXPECT_EQ(snap.histogram("server.read_latency_us")->count, 1u);
  // The external registry IS the server's registry (no private copy).
  EXPECT_EQ(&tc.server().registry(), &tc.registry());
  EXPECT_EQ(tc.registry().counter("server.ops").value(), 5u);
}

TEST(ServerObs, StatsStructIsASnapshotOfTheRegistry) {
  TestCluster tc = obs_cluster();
  run_ops(tc.client());
  const ServerStats s = tc.server().stats();
  const obs::Snapshot snap = tc.server().metrics();
  EXPECT_EQ(s.ops, snap.counter("server.ops"));
  EXPECT_EQ(s.bytes_in, snap.counter("server.bytes_in"));
  EXPECT_EQ(s.bytes_out, snap.counter("server.bytes_out"));
  EXPECT_EQ(s.deferred_errors, snap.counter("server.deferred_errors"));
  EXPECT_EQ(s.deadline_expired, snap.counter("server.deadline_expired"));
}

TEST(ServerObs, BurstBufferSharesTheRegistry) {
  ServerConfig cfg;
  cfg.bb_bytes = 4_MiB;
  TestCluster tc = obs_cluster(cfg);
  run_ops(tc.client());
  const obs::Snapshot snap = tc.server().metrics();
  EXPECT_GT(snap.counter("bb.writes_in"), 0u);
  EXPECT_EQ(snap.counter("bb.bytes_in"), 64_KiB);
}

TEST(ServerObs, FlightRecorderCapturesCompletedOps) {
  TestCluster tc = obs_cluster();
  run_ops(tc.client());
  const obs::FlightRecorder* fr = tc.server().flight_recorder();
  ASSERT_NE(fr, nullptr);
  EXPECT_EQ(fr->recorded(), 5u);
  const auto snap = fr->snapshot();
  ASSERT_EQ(snap.size(), 5u);
  EXPECT_STREQ(snap[1].op, "write");
  EXPECT_EQ(snap[1].bytes, 64_KiB);
  EXPECT_EQ(snap[1].status, 0);
}

TEST(ServerObs, TracerReceivesSpansAndCounterTracks) {
  TestCluster tc = obs_cluster();
  run_ops(tc.client());
  EXPECT_GT(tc.tracer().event_count(), 0u);
  const std::string j = tc.tracer().to_json();
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(j.find("queue_depth"), std::string::npos);
}

// Hand-built on purpose: pins that a server with NO registry in its config
// self-provisions a private one (TestCluster always injects a registry).
TEST(ServerObs, DefaultConfigOwnsAPrivateRegistry) {
  ServerConfig cfg;  // no registry: the server must self-provision
  auto server = std::make_unique<IonServer>(std::make_unique<MemBackend>(), cfg);
  auto [a, b] = InProcTransport::make_pair();
  server->serve(std::move(a));
  Client client(std::move(b));
  ASSERT_TRUE(client.open(1, "f").is_ok());
  ASSERT_TRUE(client.close(1).is_ok());
  EXPECT_EQ(server->metrics().counter("server.ops"), 2u);
  EXPECT_EQ(server->stats().ops, 2u);
}

TEST(ServerObs, MetricsTableRendersEveryKind) {
  TestCluster tc = obs_cluster();
  run_ops(tc.client());
  const std::string out =
      analysis::metrics_table(tc.server().metrics(), "obs test").render();
  EXPECT_NE(out.find("server.ops"), std::string::npos);
  EXPECT_NE(out.find("server.write_latency_us"), std::string::npos);
  EXPECT_NE(out.find("p95"), std::string::npos);
  EXPECT_NE(out.find("gauge"), std::string::npos);
}

}  // namespace
}  // namespace iofwd::rt
