#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace iofwd::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentWritersLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&c] {
      for (int j = 0; j < kPerThread; ++j) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAddAndMax) {
  Gauge g;
  g.set(10);
  EXPECT_EQ(g.value(), 10);
  g.add(-15);
  EXPECT_EQ(g.value(), -5);
  g.update_max(7);
  EXPECT_EQ(g.value(), 7);
  g.update_max(3);  // below current: no change
  EXPECT_EQ(g.value(), 7);
}

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~0ull), Histogram::kBuckets - 1);
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(b)), b) << "bucket " << b;
    EXPECT_LT(Histogram::bucket_lo(b), Histogram::bucket_hi(b)) << "bucket " << b;
  }
}

TEST(Histogram, SnapshotCountSumMaxMean) {
  Histogram h;
  for (std::uint64_t x : {10u, 20u, 30u, 40u}) h.record(x);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 100u);
  EXPECT_EQ(s.max, 40u);
  EXPECT_DOUBLE_EQ(s.mean(), 25.0);
}

TEST(Histogram, EmptySnapshotIsZero) {
  Histogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, PercentilesMonotonicAndBounded) {
  Histogram h;
  for (std::uint64_t x = 1; x <= 1000; ++x) h.record(x);
  const auto s = h.snapshot();
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, static_cast<double>(s.max));
  // Log2 buckets are approximate, but p50 of uniform 1..1000 must land
  // within a factor-of-two of 500 (its bucket is [256, 512)).
  EXPECT_GE(s.p50, 256.0);
  EXPECT_LE(s.p50, 1000.0);
}

TEST(Histogram, SingleValuePercentilesClampToMax) {
  Histogram h;
  h.record(100);
  const auto s = h.snapshot();
  // 100 lands in bucket [64, 128); interpolation never exceeds the
  // observed max, so every percentile reports <= 100.
  EXPECT_LE(s.p50, 100.0);
  EXPECT_LE(s.p99, 100.0);
  EXPECT_EQ(s.max, 100u);
}

// TSan target: concurrent record() against snapshot() must be race-free and
// the final count exact.
TEST(Histogram, ConcurrentRecordersAndSnapshots) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads + 1);
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&h, i] {
      for (int j = 0; j < kPerThread; ++j) {
        h.record(static_cast<std::uint64_t>(i * kPerThread + j) % 4096);
      }
    });
  }
  ts.emplace_back([&h] {
    for (int j = 0; j < 50; ++j) {
      const auto s = h.snapshot();
      EXPECT_LE(s.p50, s.p99);
    }
  });
  for (auto& t : ts) t.join();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricRegistry, SameNameReturnsSameHandle) {
  MetricRegistry reg;
  Counter& a = reg.counter("x.ops");
  Counter& b = reg.counter("x.ops");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(&reg.gauge("x.depth"), &reg.gauge("x.depth"));
  EXPECT_EQ(&reg.histogram("x.lat"), &reg.histogram("x.lat"));
}

TEST(MetricRegistry, SnapshotCoversAllKindsByName) {
  MetricRegistry reg;
  reg.counter("a.ops").add(7);
  reg.gauge("a.depth").set(-3);
  reg.histogram("a.lat").record(12);
  const Snapshot s = reg.snapshot();
  EXPECT_EQ(s.counter("a.ops"), 7u);
  EXPECT_EQ(s.gauge("a.depth"), -3);
  ASSERT_NE(s.histogram("a.lat"), nullptr);
  EXPECT_EQ(s.histogram("a.lat")->count, 1u);
  // Unregistered names read as zero / null, so renderers need no guards.
  EXPECT_EQ(s.counter("missing"), 0u);
  EXPECT_EQ(s.gauge("missing"), 0);
  EXPECT_EQ(s.histogram("missing"), nullptr);
}

}  // namespace
}  // namespace iofwd::obs
