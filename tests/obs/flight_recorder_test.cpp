#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace iofwd::obs {
namespace {

TEST(FlightRecorder, KeepsRecordsInOrderBelowCapacity) {
  FlightRecorder fr(8);
  fr.record("write", 1, 100, 10, 0);
  fr.record("read", 1, 200, 20, 0);
  fr.record("fsync", 1, 0, 30, 0);
  const auto snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_STREQ(snap[0].op, "write");
  EXPECT_STREQ(snap[1].op, "read");
  EXPECT_STREQ(snap[2].op, "fsync");
  EXPECT_EQ(snap[0].bytes, 100u);
  EXPECT_EQ(snap[1].latency_us, 20u);
  EXPECT_EQ(fr.recorded(), 3u);
}

TEST(FlightRecorder, WrapsKeepingNewest) {
  FlightRecorder fr(4);
  for (int i = 0; i < 10; ++i) {
    fr.record("write", i, static_cast<std::uint64_t>(i), 1, 0);
  }
  const auto snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Last 4 of 10, oldest first.
  EXPECT_EQ(snap[0].fd, 6);
  EXPECT_EQ(snap[3].fd, 9);
  EXPECT_EQ(fr.recorded(), 10u);
  EXPECT_EQ(fr.capacity(), 4u);
}

TEST(FlightRecorder, DumpMentionsOpsAndStatus) {
  FlightRecorder fr(8);
  fr.record("write", 3, 4096, 250, 0);
  fr.record("read", 3, 512, 80, 5);
  const std::string d = fr.dump();
  EXPECT_NE(d.find("write"), std::string::npos);
  EXPECT_NE(d.find("read"), std::string::npos);
  EXPECT_NE(d.find("4096"), std::string::npos);
}

TEST(FlightRecorder, EmptyDumpIsWellFormed) {
  FlightRecorder fr(8);
  EXPECT_EQ(fr.snapshot().size(), 0u);
  EXPECT_EQ(fr.recorded(), 0u);
  (void)fr.dump();  // must not crash on an empty ring
}

// TSan target: record() from several threads while another snapshots.
TEST(FlightRecorder, ConcurrentRecordAndSnapshot) {
  FlightRecorder fr(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads + 1);
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&fr, i] {
      for (int j = 0; j < kPerThread; ++j) fr.record("write", i, 1, 1, 0);
    });
  }
  ts.emplace_back([&fr] {
    for (int j = 0; j < 100; ++j) {
      const auto snap = fr.snapshot();
      EXPECT_LE(snap.size(), fr.capacity());
    }
  });
  for (auto& t : ts) t.join();
  EXPECT_EQ(fr.recorded(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(fr.snapshot().size(), 64u);
}

}  // namespace
}  // namespace iofwd::obs
