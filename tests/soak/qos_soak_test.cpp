// QoS soak matrix (DESIGN.md §17): {4, 16, 64} concurrent tenants ×
// {fifo, fair, edf} scheduling, every cell under 1% transient faults on both
// the backend and every client stream, asserting the soak contract:
//
//   * per-tenant isolation — every tenant's ops succeed and its file is
//     intact even while neighbors reconnect, replay, and get throttled;
//   * the governor engaged — over-budget writes were demoted (not dropped),
//     and every tenant's traffic is attributed to its own qos bucket;
//   * clean drain — after stop(), no BML lease and no burst-buffer byte is
//     still outstanding.
//
// Each client is its own tenant (cfg.tenant = id + 1) with a deliberately
// tight byte budget, so the demotion path (async staging forced synchronous)
// runs constantly under the storm — the scenario the satellite exists for.
// Runs under the "soak" ctest label; CI repeats it on the TSan/ASan legs.
// Replay any failure with the logged seed: IOFWD_TEST_SEED=0x... .
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "fault/plan.hpp"
#include "fault/retry.hpp"
#include "rt/client.hpp"
#include "rt/scheduler.hpp"
#include "rt/server.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::rt {
namespace {

using testsupport::ClusterOptions;
using testsupport::TestCluster;
using testsupport::pattern;

struct QosSoakParam {
  int clients;
  SchedPolicy policy;
};

class QosSoak : public ::testing::TestWithParam<QosSoakParam> {};

TEST_P(QosSoak, TenantsStayIsolatedUnderThrottlingAndFaults) {
  const auto [n_clients, policy] = GetParam();
  const std::uint64_t seed =
      testsupport::test_seed("Soak.Qos", 0x905a) + static_cast<std::uint64_t>(n_clients);

  // ~constant total volume: more tenants -> fewer writes each.
  const int writes_per_client = std::max(40, 2560 / n_clients);

  fault::RetryPolicy rp;
  rp.max_attempts = 8;
  rp.base_backoff = std::chrono::microseconds(50);
  rp.max_backoff = std::chrono::microseconds(2'000);

  ClusterOptions o;
  o.server.exec = ExecModel::work_queue_async;
  o.server.workers = 2;  // a contended queue, so the policy actually orders
  o.server.sched = policy;
  o.server.bml_bytes = 16_MiB;
  o.server.bb_bytes = 4_MiB;
  o.server.bml_wait_ms = 50;
  o.server.bb_max_stall_ms = 50;
  // Tight per-tenant budget: a 64 KiB burst refilling at 256 KiB/s is far
  // below what any tenant pushes, so demotion fires throughout the run.
  o.server.qos.bytes_per_sec = 256_KiB;
  o.server.qos.burst_bytes = 64_KiB;
  o.clients = 0;
  // 1% transient backend write failures, absorbed by the retry layer.
  o.backend_plan = std::make_shared<fault::FaultPlan>(seed ^ 0xbac);
  o.backend_plan->add(
      {.op = fault::OpKind::write, .probability = 0.01, .error = Errc::io_error});
  o.retry = &rp;
  TestCluster tc(o);

  for (int id = 0; id < n_clients; ++id) {
    TestCluster::ClientSpec spec;
    spec.cfg.tenant = static_cast<std::uint64_t>(id) + 1;
    spec.cfg.priority = static_cast<std::uint8_t>(id % (kMaxPriorityClass + 1));
    if (policy == SchedPolicy::edf) spec.cfg.deadline_ms = 30'000;  // generous: order, don't bounce
    spec.cfg.roundtrip_timeout_ms = 30'000;
    spec.cfg.reconnect_attempts = 10;
    spec.cfg.reconnect_backoff_ms = 1;
    // 1% of this tenant's stream writes drop the line mid-op.
    auto plan = std::make_shared<fault::FaultPlan>(seed + 100 + static_cast<std::uint64_t>(id));
    plan->add(
        {.op = fault::OpKind::stream_write, .probability = 0.01, .error = Errc::shutdown});
    spec.stream_plan = std::move(plan);
    spec.reconnectable = true;
    spec.faulty_redials = true;
    tc.add_client(std::move(spec));
  }

  std::vector<std::vector<std::byte>> expected(static_cast<std::size_t>(n_clients));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int id = 0; id < n_clients; ++id) {
    threads.emplace_back([&, id] {
      auto& client = tc.client(static_cast<std::size_t>(id));
      Rng rng(seed ^ (0x2000 + static_cast<std::uint64_t>(id)));
      const int fd = 10 + id;
      auto& file = expected[static_cast<std::size_t>(id)];
      if (!client.open(fd, "qos" + std::to_string(id)).is_ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < writes_per_client; ++i) {
        const std::size_t n = 4_KiB + rng.below(12_KiB);
        const auto data = pattern(n, rng.next());
        if (!client.write(fd, file.size(), data).is_ok()) {
          ++failures;
          return;
        }
        file.insert(file.end(), data.begin(), data.end());

        if (i % 8 == 7) {
          // Read back a random earlier slice and compare against the model —
          // a throttled (demoted) write must still be immediately readable.
          const std::uint64_t off = rng.below(file.size());
          const std::size_t len =
              std::min<std::size_t>(1 + rng.below(8_KiB), file.size() - off);
          auto r = client.read(fd, off, len);
          if (!r.is_ok() ||
              !std::equal(r.value().begin(), r.value().end(),
                          file.begin() + static_cast<std::ptrdiff_t>(off))) {
            ++failures;
            return;
          }
        }
        if (i % 25 == 24 && !client.fsync(fd).is_ok()) {
          ++failures;
          return;
        }
      }
      if (!client.fsync(fd).is_ok() || !client.close(fd).is_ok()) ++failures;
    });
  }
  for (auto& t : threads) t.join();

  // Per-tenant isolation: every tenant completed every op despite being
  // throttled and despite the neighbors' faults.
  EXPECT_EQ(failures, 0) << "a tenant failed an op it should have recovered from";
  std::uint64_t giveups = 0;
  for (int id = 0; id < n_clients; ++id) {
    giveups += tc.client(static_cast<std::size_t>(id)).stats().giveups;
  }
  EXPECT_EQ(giveups, 0u);

  // The governor engaged, and every demotion is a sync staging, never a loss.
  const auto st = tc.server().stats();
  EXPECT_GT(st.qos_throttled_ops, 0u) << "budget too loose to prove anything";
  EXPECT_GE(st.degraded_sync_writes, st.qos_throttled_ops)
      << "every throttled write must have been demoted";

  // Per-tenant attribution: each tenant's traffic landed in its own bucket
  // (replays may admit the same bytes twice, so >= is the honest bound).
  auto& reg = tc.registry();
  for (int id = 0; id < n_clients; ++id) {
    const std::string t = std::to_string(id + 1);
    const std::uint64_t admitted = reg.counter("server.qos." + t + ".admitted_bytes").value();
    const std::uint64_t throttled = reg.counter("server.qos." + t + ".throttled_ops").value();
    EXPECT_GT(admitted + throttled, 0u) << "tenant " << t << " never reached its bucket";
  }

  // Clean drain: quiesce, then no lease may survive.
  tc.stop();
  const auto drained = tc.server().stats();
  EXPECT_EQ(drained.bml_in_use, 0u) << "BML pool leaked a lease";
  EXPECT_EQ(drained.bb_cached_bytes, 0u) << "burst-buffer cache leaked a lease";

  // Golden bytes: the terminal backend holds exactly what each tenant wrote.
  for (int id = 0; id < n_clients; ++id) {
    const auto& file = expected[static_cast<std::size_t>(id)];
    const auto all = tc.snapshot("qos" + std::to_string(id));
    ASSERT_EQ(all.size(), file.size()) << "tenant " << id + 1 << " file truncated";
    EXPECT_TRUE(std::equal(file.begin(), file.end(), all.begin()))
        << "tenant " << id + 1 << " stored bytes differ from the golden model";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, QosSoak,
    ::testing::Values(QosSoakParam{4, SchedPolicy::fifo}, QosSoakParam{4, SchedPolicy::fair},
                      QosSoakParam{4, SchedPolicy::edf}, QosSoakParam{16, SchedPolicy::fifo},
                      QosSoakParam{16, SchedPolicy::fair}, QosSoakParam{16, SchedPolicy::edf},
                      QosSoakParam{64, SchedPolicy::fifo}, QosSoakParam{64, SchedPolicy::fair},
                      QosSoakParam{64, SchedPolicy::edf}),
    [](const auto& pinfo) {
      return "c" + std::to_string(pinfo.param.clients) + "_" +
             std::string(to_string(pinfo.param.policy));
    });

}  // namespace
}  // namespace iofwd::rt
