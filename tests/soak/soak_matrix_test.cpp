// Soak matrix (README "Test harness"): {4, 16, 64} concurrent clients ×
// {no faults, 1% transient faults, 0.5% bit flips, slow readers}, every cell
// asserting the same contract:
//
//   * isolation — every client's ops succeed and its file is intact even
//     while neighbors reconnect, replay, and bounce;
//   * zero undetected corruption — read-backs and the final snapshot match
//     the per-client golden bytes, and in the bit-flip cells the CRC
//     counters account for every single injected flip;
//   * clean drain — after stop(), no BML lease and no burst-buffer byte is
//     still outstanding.
//
// Runs under the "soak" ctest label (ctest -L soak) with a generous
// per-test timeout; the CI soak leg repeats it under TSan. Total write
// volume is held roughly constant across client counts, so the 64-client
// cell stresses multiplexing, not the disk. Replay any failure with the
// logged seed: IOFWD_TEST_SEED=0x... .
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "fault/decorators.hpp"
#include "fault/retry.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::fault {
namespace {

using testsupport::ClusterOptions;
using testsupport::TestCluster;
using testsupport::pattern;

// slow_reader (DESIGN.md §15): tiny in-proc rings plus randomly delayed
// client-side reads, so server replies routinely park in the per-connection
// send queues and resume on EPOLLOUT — the cell proves a merely-slow reader
// is never dropped and every parked reply is eventually delivered.
enum class FaultMode { none, transient, bit_flip, slow_reader };

const char* to_cstr(FaultMode m) {
  switch (m) {
    case FaultMode::none: return "nofault";
    case FaultMode::transient: return "transient";
    case FaultMode::bit_flip: return "bitflip";
    case FaultMode::slow_reader: return "slowreader";
  }
  return "?";
}

struct SoakParam {
  int clients;
  FaultMode mode;
};

class SoakMatrix : public ::testing::TestWithParam<SoakParam> {};

TEST_P(SoakMatrix, EveryClientIsolatedNoSilentCorruptionCleanDrain) {
  const auto [n_clients, mode] = GetParam();
  const std::uint64_t seed =
      testsupport::test_seed("Soak.Matrix", 0x50a4) + static_cast<std::uint64_t>(n_clients);

  // ~constant total volume: more clients -> fewer writes each.
  const int writes_per_client = std::max(40, 2560 / n_clients);

  RetryPolicy rp;
  rp.max_attempts = 8;
  rp.base_backoff = std::chrono::microseconds(50);
  rp.max_backoff = std::chrono::microseconds(2'000);

  ClusterOptions o;
  o.server.exec = rt::ExecModel::work_queue_async;
  o.server.workers = 4;
  o.server.bml_bytes = 16_MiB;
  o.server.bb_bytes = 4_MiB;
  o.server.bml_wait_ms = 50;
  o.server.bb_max_stall_ms = 50;
  o.clients = 0;
  if (mode == FaultMode::transient) {
    // 1% transient backend write failures, absorbed by the retry layer.
    o.backend_plan = std::make_shared<FaultPlan>(seed ^ 0xbac);
    o.backend_plan->add({.op = OpKind::write, .probability = 0.01, .error = Errc::io_error});
    o.retry = &rp;
  }
  if (mode == FaultMode::slow_reader) {
    // Rings far smaller than a typical read reply: the reply path must park
    // in the send queue on nearly every read-back.
    o.pipe_bytes = 8_KiB;
  }
  TestCluster tc(o);

  // Per-client stream plans (kept for the fired() accounting below).
  std::vector<std::shared_ptr<FaultPlan>> stream_plans;
  for (int id = 0; id < n_clients; ++id) {
    TestCluster::ClientSpec spec;
    spec.cfg.roundtrip_timeout_ms = 30'000;
    spec.cfg.reconnect_attempts = 10;
    spec.cfg.reconnect_backoff_ms = 1;
    if (mode != FaultMode::none) {
      auto plan = std::make_shared<FaultPlan>(seed + 100 + static_cast<std::uint64_t>(id));
      if (mode == FaultMode::transient) {
        // 1% of this client's stream writes drop the line mid-op.
        plan->add({.op = OpKind::stream_write, .probability = 0.01, .error = Errc::shutdown});
      } else if (mode == FaultMode::bit_flip) {
        // 0.5% bit flips, both directions.
        plan->add(
            {.op = OpKind::stream_write, .action = FaultAction::bit_flip, .probability = 0.005});
        plan->add(
            {.op = OpKind::stream_read, .action = FaultAction::bit_flip, .probability = 0.005});
      } else {
        // slow_reader: 2% of this client's reply reads stall 300 µs — no
        // errors, just a reader that keeps falling behind the tiny ring.
        plan->add({.op = OpKind::stream_read,
                   .probability = 0.02,
                   .error = Errc::ok,
                   .latency = std::chrono::microseconds(300)});
      }
      stream_plans.push_back(plan);
      spec.stream_plan = std::move(plan);
      if (mode != FaultMode::slow_reader) {
        spec.reconnectable = true;
        spec.faulty_redials = true;  // the whole fabric stays flaky across redials
      }
    }
    tc.add_client(std::move(spec));
  }

  std::vector<std::vector<std::byte>> expected(static_cast<std::size_t>(n_clients));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int id = 0; id < n_clients; ++id) {
    threads.emplace_back([&, id] {
      auto& client = tc.client(static_cast<std::size_t>(id));
      Rng rng(seed ^ (0x1000 + static_cast<std::uint64_t>(id)));
      const int fd = 10 + id;
      auto& file = expected[static_cast<std::size_t>(id)];
      if (!client.open(fd, "soak" + std::to_string(id)).is_ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < writes_per_client; ++i) {
        const std::size_t n = 4_KiB + rng.below(12_KiB);
        const auto data = pattern(n, rng.next());
        if (!client.write(fd, file.size(), data).is_ok()) {
          ++failures;
          return;
        }
        file.insert(file.end(), data.begin(), data.end());

        if (i % 8 == 7) {
          // Read back a random earlier slice and compare against the model.
          const std::uint64_t off = rng.below(file.size());
          const std::size_t len =
              std::min<std::size_t>(1 + rng.below(8_KiB), file.size() - off);
          auto r = client.read(fd, off, len);
          if (!r.is_ok() ||
              !std::equal(r.value().begin(), r.value().end(),
                          file.begin() + static_cast<std::ptrdiff_t>(off))) {
            ++failures;
            return;
          }
        }
        if (i % 25 == 24 && !client.fsync(fd).is_ok()) {
          ++failures;
          return;
        }
      }
      if (!client.fsync(fd).is_ok() || !client.close(fd).is_ok()) ++failures;
    });
  }
  for (auto& t : threads) t.join();

  // Isolation: every client completed every op.
  EXPECT_EQ(failures, 0) << "a client failed an op it should have recovered from";
  std::uint64_t giveups = 0;
  for (int id = 0; id < n_clients; ++id) {
    giveups += tc.client(static_cast<std::size_t>(id)).stats().giveups;
  }
  EXPECT_EQ(giveups, 0u);

  // Bit-flip accounting: every injected flip was detected by a CRC check on
  // one side or the other.
  if (mode == FaultMode::bit_flip) {
    std::uint64_t injected = 0;
    std::uint64_t detected = 0;
    for (const auto& plan : stream_plans) injected += plan->fired();
    for (int id = 0; id < n_clients; ++id) {
      const auto cs = tc.client(static_cast<std::size_t>(id)).stats();
      detected += cs.header_crc_errors + cs.payload_crc_errors;
    }
    const auto ss = tc.server().stats();
    detected += ss.header_crc_errors + ss.payload_crc_errors;
    EXPECT_GT(injected, 0u) << "storm too quiet to prove anything";
    EXPECT_EQ(detected, injected) << "an injected corruption went undetected";
  }

  // Clean drain: quiesce, then no lease may survive.
  tc.stop();

  // Slow-reader accounting (after stop() has joined the lanes, so the sent
  // counter is settled): replies parked (the cell is pointless if the queue
  // never engaged), nothing dropped, nothing still queued.
  if (mode == FaultMode::slow_reader) {
    const auto ss = tc.server().stats();
    EXPECT_GT(ss.replies_enqueued, 0u);
    EXPECT_EQ(ss.reply_queue_full, 0u) << "a merely-slow reader must never be dropped";
    EXPECT_EQ(ss.reply_peer_gone, 0u);
    EXPECT_EQ(ss.replies_sent, ss.replies_enqueued) << "a parked reply was never delivered";
  }
  const auto st = tc.server().stats();
  EXPECT_EQ(st.bml_in_use, 0u) << "BML pool leaked a lease";
  EXPECT_EQ(st.bb_cached_bytes, 0u) << "burst-buffer cache leaked a lease";

  // Zero undetected corruption: the terminal backend holds the golden bytes.
  for (int id = 0; id < n_clients; ++id) {
    const auto& file = expected[static_cast<std::size_t>(id)];
    const auto all = tc.snapshot("soak" + std::to_string(id));
    ASSERT_EQ(all.size(), file.size()) << "client " << id << " file truncated";
    EXPECT_TRUE(std::equal(file.begin(), file.end(), all.begin()))
        << "client " << id << " stored bytes differ from the golden model";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SoakMatrix,
    ::testing::Values(SoakParam{4, FaultMode::none}, SoakParam{4, FaultMode::transient},
                      SoakParam{4, FaultMode::bit_flip}, SoakParam{16, FaultMode::none},
                      SoakParam{16, FaultMode::transient}, SoakParam{16, FaultMode::bit_flip},
                      SoakParam{64, FaultMode::none}, SoakParam{64, FaultMode::transient},
                      SoakParam{64, FaultMode::bit_flip}, SoakParam{4, FaultMode::slow_reader},
                      SoakParam{16, FaultMode::slow_reader},
                      SoakParam{64, FaultMode::slow_reader}),
    [](const auto& pinfo) {
      return "c" + std::to_string(pinfo.param.clients) + "_" + to_cstr(pinfo.param.mode);
    });

}  // namespace
}  // namespace iofwd::fault
