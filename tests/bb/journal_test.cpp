// Write-ahead journal semantics (DESIGN.md §16): record framing and replay,
// torn-tail and corrupt-record tolerance, idle truncation, the StagedModel's
// newest-wins byte semantics, and the full crash -> recover cycle through
// BurstBufferBackend ("acked => journaled" made observable).
#include "bb/journal.hpp"

#include <gtest/gtest.h>

#include <stdlib.h>  // mkdtemp

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bb/burst_buffer.hpp"
#include "core/rng.hpp"
#include "obs/metrics.hpp"
#include "rt/backend.hpp"

namespace iofwd::bb {
namespace {

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& x : v) x = static_cast<std::byte>(rng.next());
  return v;
}

// A fresh journal directory, removed at scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/iofwd-journal-test-XXXXXX";
    char* d = mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    if (d != nullptr) path = d;
  }
  ~TempDir() {
    if (!path.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  }
};

std::unique_ptr<Journal> open_journal(const std::string& dir,
                                      std::uint64_t segment_bytes = 8ull << 20) {
  JournalConfig cfg;
  cfg.dir = dir;
  cfg.segment_bytes = segment_bytes;
  auto r = Journal::open(cfg);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return std::move(r).value();
}

TEST(Journal, RecordsRoundTripThroughReplay) {
  TempDir td;
  const auto data = pattern(4096, 0xa11);
  {
    auto j = open_journal(td.path);
    ASSERT_TRUE(j->append_open(7, "f").is_ok());
    ASSERT_TRUE(j->append_stage(7, 100, data).is_ok());
    ASSERT_TRUE(j->append_stage(7, 8192, std::span(data).subspan(0, 512)).is_ok());
    EXPECT_EQ(j->live_bytes(), 4096u + 512u);
  }
  auto j = open_journal(td.path);
  StagedModel model;
  auto counts = j->replay(model.visitor());
  ASSERT_TRUE(counts.is_ok());
  EXPECT_EQ(counts.value().applied, 3u);
  EXPECT_FALSE(counts.value().torn);
  EXPECT_EQ(counts.value().discarded_bytes, 0u);

  auto files = model.files();
  ASSERT_EQ(files.size(), 1u);
  const auto& f = files.at(7);
  EXPECT_EQ(f.path, "f");
  ASSERT_EQ(f.runs.size(), 2u);
  EXPECT_EQ(f.runs[0].offset, 100u);
  EXPECT_EQ(f.runs[0].bytes, data);
  EXPECT_EQ(f.runs[1].offset, 8192u);
  EXPECT_EQ(f.runs[1].bytes.size(), 512u);
}

TEST(Journal, RetireAndCloseShrinkTheLiveModel) {
  TempDir td;
  const auto data = pattern(1024, 0xbee);
  auto j = open_journal(td.path);
  ASSERT_TRUE(j->append_open(1, "a").is_ok());
  ASSERT_TRUE(j->append_stage(1, 0, data).is_ok());
  ASSERT_TRUE(j->append_retire(1, 0, 256).is_ok());
  EXPECT_EQ(j->live_bytes(), 768u);

  StagedModel model;
  auto counts = j->replay(model.visitor());
  ASSERT_TRUE(counts.is_ok());
  auto files = model.files();
  ASSERT_EQ(files.at(1).runs.size(), 1u);
  EXPECT_EQ(files.at(1).runs[0].offset, 256u);
  EXPECT_EQ(files.at(1).runs[0].bytes.size(), 768u);
  EXPECT_EQ(model.live_bytes(), 768u);
}

TEST(Journal, TornTailStopsReplayAtTheLastIntactRecord) {
  TempDir td;
  const auto data = pattern(2048, 0xc0de);
  std::string seg;
  {
    auto j = open_journal(td.path);
    ASSERT_TRUE(j->append_open(3, "torn").is_ok());
    ASSERT_TRUE(j->append_stage(3, 0, data).is_ok());
    ASSERT_TRUE(j->append_stage(3, 4096, data).is_ok());
  }
  // Tear the tail: chop the last record mid-body, as a crash mid-append
  // would.
  for (const auto& e : std::filesystem::directory_iterator(td.path)) seg = e.path().string();
  ASSERT_FALSE(seg.empty());
  const auto full = std::filesystem::file_size(seg);
  std::filesystem::resize_file(seg, full - 100);

  auto j = open_journal(td.path);
  StagedModel model;
  auto counts = j->replay(model.visitor());
  ASSERT_TRUE(counts.is_ok());
  EXPECT_EQ(counts.value().applied, 2u);  // open + first stage survive
  EXPECT_TRUE(counts.value().torn);
  EXPECT_GT(counts.value().discarded_bytes, 0u);
  ASSERT_EQ(model.files().at(3).runs.size(), 1u);
  EXPECT_EQ(model.files().at(3).runs[0].bytes, data);
}

TEST(Journal, CorruptRecordDiscardsItAndEverythingAfter) {
  TempDir td;
  const auto data = pattern(512, 0xdead);
  std::string seg;
  {
    auto j = open_journal(td.path);
    ASSERT_TRUE(j->append_open(5, "x").is_ok());
    ASSERT_TRUE(j->append_stage(5, 0, data).is_ok());
    ASSERT_TRUE(j->append_stage(5, 1024, data).is_ok());
  }
  for (const auto& e : std::filesystem::directory_iterator(td.path)) seg = e.path().string();
  // Flip a byte inside the second stage record's payload (well past the
  // open + first stage records near the head).
  {
    std::FILE* f = std::fopen(seg.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const long pos = static_cast<long>(std::filesystem::file_size(seg)) - 64;
    std::fseek(f, pos, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, pos, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
  }

  auto j = open_journal(td.path);
  StagedModel model;
  auto counts = j->replay(model.visitor());
  ASSERT_TRUE(counts.is_ok());
  EXPECT_EQ(counts.value().applied, 2u);
  EXPECT_TRUE(counts.value().torn);
  EXPECT_GT(counts.value().discarded_bytes, 0u);
  ASSERT_EQ(model.files().at(5).runs.size(), 1u);
  EXPECT_EQ(model.files().at(5).runs[0].offset, 0u);
}

TEST(Journal, IdleTruncationCompactsTheLogAndKeepsOpens) {
  TempDir td;
  const auto data = pattern(4096, 0xf00);
  auto j = open_journal(td.path);
  ASSERT_TRUE(j->append_open(9, "keep").is_ok());
  ASSERT_TRUE(j->append_stage(9, 0, data).is_ok());
  const auto busy = j->size_bytes();
  // Retiring the only staged extent drops live bytes to zero: the log is
  // truncated and reseeded with the OPEN record.
  ASSERT_TRUE(j->append_retire(9, 0, 4096).is_ok());
  EXPECT_EQ(j->live_bytes(), 0u);
  EXPECT_GE(j->truncations(), 1u);
  EXPECT_LT(j->size_bytes(), busy);

  StagedModel model;
  auto counts = j->replay(model.visitor());
  ASSERT_TRUE(counts.is_ok());
  auto files = model.files();
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files.at(9).path, "keep");
  EXPECT_TRUE(files.at(9).runs.empty());
}

TEST(Journal, RotatesSegmentsPastTheConfiguredSize) {
  TempDir td;
  const auto data = pattern(1024, 0xabc);
  auto j = open_journal(td.path, /*segment_bytes=*/4096);
  ASSERT_TRUE(j->append_open(2, "rot").is_ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(j->append_stage(2, static_cast<std::uint64_t>(i) * 1024, data).is_ok());
  }
  std::size_t segments = 0;
  for (const auto& e : std::filesystem::directory_iterator(td.path)) {
    (void)e;
    ++segments;
  }
  EXPECT_GT(segments, 1u);

  StagedModel model;
  auto counts = j->replay(model.visitor());
  ASSERT_TRUE(counts.is_ok());
  EXPECT_EQ(counts.value().applied, 17u);
  EXPECT_EQ(model.live_bytes(), 16u * 1024u);
}

TEST(StagedModel, NewestWriteWinsOnOverlap) {
  StagedModel m;
  m.open(1, "w");
  const auto a = pattern(1000, 1);
  const auto b = pattern(400, 2);
  m.stage(1, 0, a);
  m.stage(1, 300, b);  // overwrite the middle
  auto files = m.files();
  const auto& runs = files.at(1).runs;
  // One contiguous byte image [0, 1000): a's head, b, a's tail.
  std::vector<std::byte> flat(1000);
  for (const auto& r : runs) {
    ASSERT_LE(r.offset + r.bytes.size(), flat.size());
    std::copy(r.bytes.begin(), r.bytes.end(),
              flat.begin() + static_cast<std::ptrdiff_t>(r.offset));
  }
  for (std::size_t i = 0; i < 300; ++i) EXPECT_EQ(flat[i], a[i]) << i;
  for (std::size_t i = 0; i < 400; ++i) EXPECT_EQ(flat[300 + i], b[i]) << i;
  for (std::size_t i = 700; i < 1000; ++i) EXPECT_EQ(flat[i], a[i]) << i;
  EXPECT_EQ(m.live_bytes(), 1000u);
}

// ---------------------------------------------------------------------------
// Crash -> recover through the burst buffer
// ---------------------------------------------------------------------------

BurstBufferConfig journaled_config(const std::string& dir, obs::MetricRegistry* reg) {
  BurstBufferConfig cfg;
  cfg.capacity_bytes = 16ull << 20;
  cfg.high_watermark = 1.0;  // quiet: no background flushing
  cfg.low_watermark = 1.0;
  cfg.write_through_bytes = cfg.capacity_bytes;
  cfg.journal_dir = dir;
  cfg.registry = reg;
  return cfg;
}

TEST(JournalRecovery, CrashLosesNothingThatWasAcked) {
  TempDir td;
  auto mem = std::make_shared<rt::MemBackend>();
  // Non-owning view so the same MemBackend survives the "crash".
  struct View final : rt::IoBackend {
    std::shared_ptr<rt::MemBackend> m;
    explicit View(std::shared_ptr<rt::MemBackend> mm) : m(std::move(mm)) {}
    Status open(int fd, const std::string& p) override { return m->open(fd, p); }
    Result<std::uint64_t> write(int fd, std::uint64_t off,
                                std::span<const std::byte> d) override {
      return m->write(fd, off, d);
    }
    Result<std::uint64_t> read(int fd, std::uint64_t off, std::span<std::byte> o) override {
      return m->read(fd, off, o);
    }
    Status fsync(int fd) override { return m->fsync(fd); }
    Status close(int fd) override { return m->close(fd); }
    Result<std::uint64_t> size(int fd) override { return m->size(fd); }
  };

  const auto d1 = pattern(8192, 0x111);
  const auto d2 = pattern(4096, 0x222);
  {
    obs::MetricRegistry reg;
    BurstBufferBackend bbuf(std::make_unique<View>(mem), journaled_config(td.path, &reg));
    ASSERT_TRUE(bbuf.open(1, "crashfile").is_ok());
    ASSERT_TRUE(bbuf.write(1, 0, d1).is_ok());
    ASSERT_TRUE(bbuf.write(1, 65536, d2).is_ok());
    // Both writes were acked into the cache; nothing has been flushed.
    EXPECT_TRUE(mem->snapshot("crashfile").empty());
    bbuf.crash_discard();
    EXPECT_TRUE(bbuf.crashed());
    // The crash destroyed the in-memory staging; the backend still has
    // nothing. Only the journal knows the bytes.
    EXPECT_TRUE(mem->snapshot("crashfile").empty());
  }

  obs::MetricRegistry reg;
  BurstBufferBackend bbuf(std::make_unique<View>(mem), journaled_config(td.path, &reg));
  // Recovery rebuilt the cache: read-your-writes works before any flush.
  std::vector<std::byte> out(d1.size());
  auto r = bbuf.read(1, 0, out);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value(), d1.size());
  EXPECT_EQ(out, d1);

  const auto snap = reg.snapshot();
  ASSERT_TRUE(snap.counters.count("bb.journal.recovered"));
  EXPECT_GE(snap.counters.at("bb.journal.recovered"), 3u);  // open + 2 stages
  EXPECT_EQ(snap.counters.at("bb.journal.discarded"), 0u);

  // Draining pushes the recovered extents to the real backend.
  bbuf.drain_all();
  auto bytes = mem->snapshot("crashfile");
  ASSERT_EQ(bytes.size(), 65536u + d2.size());
  for (std::size_t i = 0; i < d1.size(); ++i) EXPECT_EQ(bytes[i], d1[i]) << i;
  for (std::size_t i = 0; i < d2.size(); ++i) EXPECT_EQ(bytes[65536 + i], d2[i]) << i;
}

TEST(JournalRecovery, FlushedExtentsAreNotResurrected) {
  TempDir td;
  auto mem = std::make_shared<rt::MemBackend>();
  struct View final : rt::IoBackend {
    rt::MemBackend* m;
    explicit View(rt::MemBackend* mm) : m(mm) {}
    Status open(int fd, const std::string& p) override { return m->open(fd, p); }
    Result<std::uint64_t> write(int fd, std::uint64_t off,
                                std::span<const std::byte> d) override {
      return m->write(fd, off, d);
    }
    Result<std::uint64_t> read(int fd, std::uint64_t off, std::span<std::byte> o) override {
      return m->read(fd, off, o);
    }
    Status fsync(int fd) override { return m->fsync(fd); }
    Status close(int fd) override { return m->close(fd); }
    Result<std::uint64_t> size(int fd) override { return m->size(fd); }
  };

  const auto d1 = pattern(4096, 0x333);
  {
    obs::MetricRegistry reg;
    BurstBufferBackend bbuf(std::make_unique<View>(mem.get()),
                            journaled_config(td.path, &reg));
    ASSERT_TRUE(bbuf.open(1, "flushed").is_ok());
    ASSERT_TRUE(bbuf.write(1, 0, d1).is_ok());
    // fsync flushes the staged extent (and journals its RETIRE).
    ASSERT_TRUE(bbuf.fsync(1).is_ok());
    EXPECT_EQ(mem->snapshot("flushed").size(), d1.size());
    bbuf.crash_discard();
  }

  // Overwrite the flushed bytes directly in the "PFS": if recovery wrongly
  // resurrected the retired extent, a later drain would clobber this.
  const auto newer = pattern(4096, 0x444);
  ASSERT_TRUE(mem->open(99, "flushed").is_ok());
  ASSERT_TRUE(mem->write(99, 0, newer).is_ok());

  obs::MetricRegistry reg;
  BurstBufferBackend bbuf(std::make_unique<View>(mem.get()),
                          journaled_config(td.path, &reg));
  bbuf.drain_all();
  auto bytes = mem->snapshot("flushed");
  ASSERT_EQ(bytes.size(), newer.size());
  EXPECT_EQ(bytes, newer);
}

}  // namespace
}  // namespace iofwd::bb
