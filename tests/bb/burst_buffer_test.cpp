// Burst-buffer cache semantics: read-your-writes without flush barriers,
// out-of-order coalescing, capacity/watermark behaviour, per-descriptor
// drains, deferred flush errors, and composition with IonServer.
#include "bb/burst_buffer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "fault/decorators.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"

namespace iofwd::bb {
namespace {

using rt::MemBackend;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& x : v) x = static_cast<std::byte>(rng.next());
  return v;
}

// Forwards to an externally owned backend, so tests can inspect it after the
// burst buffer (which owns its inner backend) has been destroyed.
class RefBackend final : public rt::IoBackend {
 public:
  explicit RefBackend(rt::IoBackend& target) : t_(target) {}
  Status open(int fd, const std::string& path) override { return t_.open(fd, path); }
  Result<std::uint64_t> write(int fd, std::uint64_t offset,
                              std::span<const std::byte> data) override {
    return t_.write(fd, offset, data);
  }
  Result<std::uint64_t> read(int fd, std::uint64_t offset, std::span<std::byte> out) override {
    return t_.read(fd, offset, out);
  }
  Status fsync(int fd) override { return t_.fsync(fd); }
  Status close(int fd) override { return t_.close(fd); }
  Result<std::uint64_t> size(int fd) override { return t_.size(fd); }

 private:
  rt::IoBackend& t_;
};

struct Fixture {
  MemBackend* mem = nullptr;
  // Faults are injected through the shared plan (fault::FaultyBackend sits
  // between the burst buffer and the MemBackend).
  std::shared_ptr<fault::FaultPlan> plan = std::make_shared<fault::FaultPlan>();
  BurstBufferBackend bbuf;

  explicit Fixture(BurstBufferConfig cfg)
      : bbuf(
            [this] {
              auto m = std::make_unique<MemBackend>();
              mem = m.get();
              return std::make_unique<fault::FaultyBackend>(std::move(m), plan);
            }(),
            cfg) {}
};

BurstBufferConfig quiet_config(std::uint64_t capacity = 16_MiB) {
  // Watermarks at 100%: background flushing never kicks in, so tests can
  // assert exactly when data reaches the inner backend.
  BurstBufferConfig cfg;
  cfg.capacity_bytes = capacity;
  cfg.high_watermark = 1.0;
  cfg.low_watermark = 1.0;
  cfg.write_through_bytes = capacity;  // never bypass
  return cfg;
}

TEST(BurstBuffer, ReadYourWritesWithoutFlush) {
  Fixture fx(quiet_config());
  ASSERT_TRUE(fx.bbuf.open(1, "f").is_ok());
  const auto data = pattern(64_KiB, 1);
  ASSERT_TRUE(fx.bbuf.write(1, 4096, data).is_ok());

  std::vector<std::byte> out(64_KiB);
  auto r = fx.bbuf.read(1, 4096, out);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 64_KiB);
  EXPECT_EQ(out, data);
  const auto s = fx.bbuf.stats();
  EXPECT_EQ(s.backend_writes, 0u) << "read served from cache, no flush barrier";
  EXPECT_DOUBLE_EQ(s.hit_rate(), 1.0);
  EXPECT_TRUE(fx.mem->snapshot("f").empty());
}

TEST(BurstBuffer, OutOfOrderBurstCoalescesToOneBackendWrite) {
  Fixture fx(quiet_config());
  ASSERT_TRUE(fx.bbuf.open(1, "f").is_ok());
  // 16 chunks written in reverse: the sequential aggregator would issue one
  // backend write per chunk; the extent index merges them into one run.
  const auto chunk = pattern(16_KiB, 2);
  for (int i = 15; i >= 0; --i) {
    ASSERT_TRUE(fx.bbuf.write(1, static_cast<std::uint64_t>(i) * chunk.size(), chunk).is_ok());
  }
  EXPECT_EQ(fx.bbuf.stats().backend_writes, 0u);
  ASSERT_TRUE(fx.bbuf.fsync(1).is_ok());
  const auto s = fx.bbuf.stats();
  EXPECT_EQ(s.backend_writes, 1u) << "one coalesced flush for the whole burst";
  EXPECT_GT(s.coalesce_ratio(), 10.0);
  EXPECT_EQ(fx.mem->snapshot("f").size(), 16 * 16_KiB);
}

TEST(BurstBuffer, InterleavedStridedWritesCoalesce) {
  Fixture fx(quiet_config());
  ASSERT_TRUE(fx.bbuf.open(1, "f").is_ok());
  // Two interleaved strided streams (even chunks then odd chunks): never
  // sequential, but the union is one contiguous run.
  const auto chunk = pattern(8_KiB, 3);
  for (int i = 0; i < 16; i += 2) {
    ASSERT_TRUE(fx.bbuf.write(1, static_cast<std::uint64_t>(i) * chunk.size(), chunk).is_ok());
  }
  for (int i = 1; i < 16; i += 2) {
    ASSERT_TRUE(fx.bbuf.write(1, static_cast<std::uint64_t>(i) * chunk.size(), chunk).is_ok());
  }
  ASSERT_TRUE(fx.bbuf.fsync(1).is_ok());
  EXPECT_EQ(fx.bbuf.stats().backend_writes, 1u);
  EXPECT_EQ(fx.mem->snapshot("f").size(), 16 * 8_KiB);
}

TEST(BurstBuffer, CachedBytesNeverExceedCapacity) {
  BurstBufferConfig cfg;
  cfg.capacity_bytes = 256_KiB;
  cfg.high_watermark = 0.75;
  cfg.low_watermark = 0.5;
  cfg.flushers = 1;
  Fixture fx(cfg);
  ASSERT_TRUE(fx.bbuf.open(1, "f").is_ok());
  // Ingest 4 MiB through a 256 KiB cache, shuffled within 64 KiB groups so
  // runs are non-sequential; writers must stall-and-drain, never overrun.
  const auto chunk = pattern(16_KiB, 4);
  std::vector<int> order;
  for (int g = 0; g < 64; g += 4) {
    order.insert(order.end(), {g + 3, g + 1, g + 2, g});
  }
  for (int i : order) {
    ASSERT_TRUE(fx.bbuf.write(1, static_cast<std::uint64_t>(i) * chunk.size(), chunk).is_ok());
  }
  ASSERT_TRUE(fx.bbuf.fsync(1).is_ok());
  const auto s = fx.bbuf.stats();
  EXPECT_LE(s.cached_high_watermark, cfg.capacity_bytes)
      << "staged bytes must never exceed bb_bytes";
  EXPECT_LT(s.backend_writes, s.writes_in) << "coalescing still wins under pressure";
  // Every byte landed despite evictions and stalls.
  const auto stored = fx.mem->snapshot("f");
  ASSERT_EQ(stored.size(), 64 * 16_KiB);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(std::equal(chunk.begin(), chunk.end(),
                           stored.begin() + static_cast<std::ptrdiff_t>(i) * 16_KiB))
        << "chunk " << i;
  }
}

TEST(BurstBuffer, WatermarkTriggersBackgroundFlush) {
  BurstBufferConfig cfg;
  cfg.capacity_bytes = 1_MiB;
  cfg.high_watermark = 0.5;
  cfg.low_watermark = 0.25;
  cfg.flushers = 2;
  cfg.write_through_bytes = 1_MiB;
  Fixture fx(cfg);
  ASSERT_TRUE(fx.bbuf.open(1, "f").is_ok());
  // Disjoint extents totalling 768 KiB: crosses the 512 KiB high watermark.
  const auto chunk = pattern(64_KiB, 5);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(fx.bbuf.write(1, static_cast<std::uint64_t>(i) * 128_KiB, chunk).is_ok());
  }
  // No fsync: the background flushers must drain on their own.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fx.bbuf.stats().flushed_bytes == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(fx.bbuf.stats().flushed_bytes, 0u) << "flushers never woke";
  while (fx.bbuf.stats().cached_bytes > cfg.capacity_bytes / 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_LE(fx.bbuf.stats().cached_bytes, cfg.capacity_bytes / 4)
      << "flushers should drain below the low watermark";
}

TEST(BurstBuffer, FsyncDrainsOnlyThatDescriptor) {
  Fixture fx(quiet_config());
  ASSERT_TRUE(fx.bbuf.open(1, "a").is_ok());
  ASSERT_TRUE(fx.bbuf.open(2, "b").is_ok());
  const auto d = pattern(4_KiB, 6);
  ASSERT_TRUE(fx.bbuf.write(1, 0, d).is_ok());
  ASSERT_TRUE(fx.bbuf.write(2, 0, d).is_ok());
  ASSERT_TRUE(fx.bbuf.fsync(1).is_ok());
  EXPECT_EQ(fx.mem->snapshot("a").size(), 4_KiB);
  EXPECT_TRUE(fx.mem->snapshot("b").empty()) << "fd 2 still staged";
  ASSERT_TRUE(fx.bbuf.close(2).is_ok());
  EXPECT_EQ(fx.mem->snapshot("b").size(), 4_KiB);
}

TEST(BurstBuffer, ReadMixesCachedExtentsAndBackendHoles) {
  Fixture fx(quiet_config());
  ASSERT_TRUE(fx.bbuf.open(1, "f").is_ok());
  // Backend already holds [0, 12 KiB) of 'old'; stage new data over the
  // middle third only.
  const auto old_data = pattern(12_KiB, 7);
  ASSERT_TRUE(fx.mem->write(1, 0, old_data).is_ok());
  const auto fresh = pattern(4_KiB, 8);
  ASSERT_TRUE(fx.bbuf.write(1, 4_KiB, fresh).is_ok());

  std::vector<std::byte> out(12_KiB);
  auto r = fx.bbuf.read(1, 0, out);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 12_KiB);
  EXPECT_TRUE(std::equal(old_data.begin(), old_data.begin() + 4_KiB, out.begin()));
  EXPECT_TRUE(std::equal(fresh.begin(), fresh.end(), out.begin() + 4_KiB));
  EXPECT_TRUE(std::equal(old_data.begin() + 8_KiB, old_data.end(), out.begin() + 8_KiB));
  const auto s = fx.bbuf.stats();
  EXPECT_EQ(s.read_hit_bytes, 4_KiB);
  EXPECT_EQ(s.read_bytes, 12_KiB);
}

TEST(BurstBuffer, SizeSeesStagedBytes) {
  Fixture fx(quiet_config());
  ASSERT_TRUE(fx.bbuf.open(1, "f").is_ok());
  ASSERT_TRUE(fx.bbuf.write(1, 100_KiB, pattern(4_KiB, 9)).is_ok());
  auto s = fx.bbuf.size(1);
  ASSERT_TRUE(s.is_ok());
  EXPECT_EQ(s.value(), 100_KiB + 4_KiB) << "fstat must reflect unflushed extents";
}

TEST(BurstBuffer, FlushErrorIsDeferredSurfacesOnceAndDoesNotLeak) {
  Fixture fx(quiet_config());
  ASSERT_TRUE(fx.bbuf.open(1, "f").is_ok());
  ASSERT_TRUE(fx.bbuf.write(1, 0, pattern(8_KiB, 10)).is_ok());
  fx.plan->fail_always(fault::OpKind::write, Errc::io_error);
  // The drain inside fsync fails; the error surfaces on the fsync itself.
  Status st = fx.bbuf.fsync(1);
  EXPECT_EQ(st.code(), Errc::io_error);
  // Exactly once: the failed extent was dropped and the error consumed.
  fx.plan->clear();
  EXPECT_TRUE(fx.bbuf.fsync(1).is_ok());
  EXPECT_EQ(fx.bbuf.stats().cached_bytes, 0u) << "failed extent leaked its lease";
  EXPECT_EQ(fx.bbuf.stats().deferred_errors, 1u);
  EXPECT_TRUE(fx.bbuf.close(1).is_ok());
}

TEST(BurstBuffer, BackgroundFlushErrorBouncesNextOp) {
  BurstBufferConfig cfg;
  cfg.capacity_bytes = 256_KiB;
  cfg.high_watermark = 0.25;
  cfg.low_watermark = 0.0;
  cfg.flushers = 1;
  cfg.write_through_bytes = 256_KiB;
  Fixture fx(cfg);
  ASSERT_TRUE(fx.bbuf.open(1, "f").is_ok());
  fx.plan->fail_always(fault::OpKind::write, Errc::io_error);
  ASSERT_TRUE(fx.bbuf.write(1, 0, pattern(128_KiB, 11)).is_ok());  // over the watermark
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fx.bbuf.stats().deferred_errors == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(fx.bbuf.stats().deferred_errors, 0u) << "background flush never failed";
  fx.plan->clear();
  // Next op on the descriptor bounces with the recorded error, unexecuted...
  auto r = fx.bbuf.write(1, 1_MiB, pattern(4_KiB, 12));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::io_error);
  // ...and exactly once.
  EXPECT_TRUE(fx.bbuf.write(1, 1_MiB, pattern(4_KiB, 12)).is_ok());
  EXPECT_TRUE(fx.bbuf.close(1).is_ok());
  EXPECT_EQ(fx.bbuf.stats().cached_bytes, 0u);
}

TEST(BurstBuffer, DestructionDrainsEverything) {
  MemBackend mem;
  const auto data = pattern(32_KiB, 13);
  {
    BurstBufferBackend bbuf(std::make_unique<RefBackend>(mem), quiet_config());
    ASSERT_TRUE(bbuf.open(1, "f").is_ok());
    ASSERT_TRUE(bbuf.write(1, 0, data).is_ok());
    EXPECT_TRUE(mem.snapshot("f").empty());
  }  // shutdown drains all
  EXPECT_EQ(mem.snapshot("f"), data);
}

TEST(BurstBuffer, HugeWriteBypassesCacheAndSupersedesExtents) {
  BurstBufferConfig cfg = quiet_config(1_MiB);
  cfg.write_through_bytes = 256_KiB;
  Fixture fx(cfg);
  ASSERT_TRUE(fx.bbuf.open(1, "f").is_ok());
  ASSERT_TRUE(fx.bbuf.write(1, 0, pattern(16_KiB, 14)).is_ok());  // cached, will be superseded
  const auto big = pattern(512_KiB, 15);
  ASSERT_TRUE(fx.bbuf.write(1, 0, big).is_ok());
  EXPECT_EQ(fx.mem->snapshot("f").size(), 512_KiB);
  std::vector<std::byte> out(512_KiB);
  auto r = fx.bbuf.read(1, 0, out);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(out, big) << "stale cached extent must not shadow the write-through";
}

TEST(BurstBuffer, ReadPinnedServesCoveredRangeWithoutCopy) {
  Fixture fx(quiet_config());
  ASSERT_TRUE(fx.bbuf.open(1, "f").is_ok());
  const auto data = pattern(8_KiB, 20);
  ASSERT_TRUE(fx.bbuf.write(1, 0, data).is_ok());

  // A sub-range of one extent: the view must alias the staged bytes.
  auto pin = fx.bbuf.read_pinned(1, 1_KiB, 4_KiB);
  ASSERT_TRUE(pin.has_value());
  ASSERT_NE(pin->lease, nullptr);
  ASSERT_EQ(pin->bytes.size(), 4_KiB);
  EXPECT_TRUE(std::equal(pin->bytes.begin(), pin->bytes.end(), data.begin() + 1_KiB));
  const auto s = fx.bbuf.stats();
  EXPECT_EQ(s.pinned_reads, 1u);
  EXPECT_EQ(s.read_hit_bytes, 4_KiB) << "a pinned read counts as a full cache hit";
  EXPECT_EQ(s.backend_writes, 0u);
}

TEST(BurstBuffer, ReadPinnedViewSurvivesOverwriteOfTheExtent) {
  Fixture fx(quiet_config());
  ASSERT_TRUE(fx.bbuf.open(1, "f").is_ok());
  const auto before = pattern(8_KiB, 21);
  ASSERT_TRUE(fx.bbuf.write(1, 0, before).is_ok());
  auto pin = fx.bbuf.read_pinned(1, 0, 8_KiB);
  ASSERT_TRUE(pin.has_value());

  // Overwrite while the pin is live. The in-place fast path requires a
  // unique lease, so the cache must route around the pinned buffer; the
  // outstanding view keeps the pre-overwrite bytes (this is what lets a
  // parked reply writev safely while the descriptor takes new writes).
  const auto after = pattern(8_KiB, 22);
  ASSERT_TRUE(fx.bbuf.write(1, 0, after).is_ok());
  EXPECT_TRUE(std::equal(pin->bytes.begin(), pin->bytes.end(), before.begin()))
      << "a live pin must never observe later writes";

  std::vector<std::byte> out(8_KiB);
  auto r = fx.bbuf.read(1, 0, out);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(out, after) << "new readers see the overwrite";
  pin.reset();  // release the lease before the drain
  ASSERT_TRUE(fx.bbuf.close(1).is_ok());
  EXPECT_EQ(fx.mem->snapshot("f"), after);
}

TEST(BurstBuffer, ReadPinnedMissesOnHolesPartialCoverageAndUnknownFd) {
  Fixture fx(quiet_config());
  EXPECT_FALSE(fx.bbuf.read_pinned(7, 0, 4_KiB).has_value()) << "unknown descriptor";

  ASSERT_TRUE(fx.bbuf.open(1, "f").is_ok());
  // Backend-resident bytes are not pinnable: only staged extents are.
  ASSERT_TRUE(fx.mem->write(1, 0, pattern(4_KiB, 23)).is_ok());
  EXPECT_FALSE(fx.bbuf.read_pinned(1, 0, 4_KiB).has_value()) << "backend-only range";

  ASSERT_TRUE(fx.bbuf.write(1, 4_KiB, pattern(8_KiB, 24)).is_ok());  // extent [4 KiB, 12 KiB)
  EXPECT_FALSE(fx.bbuf.read_pinned(1, 16_KiB, 4_KiB).has_value()) << "hole";
  EXPECT_FALSE(fx.bbuf.read_pinned(1, 8_KiB, 8_KiB).has_value()) << "partial coverage";
  EXPECT_TRUE(fx.bbuf.read_pinned(1, 4_KiB, 8_KiB).has_value()) << "exact coverage still hits";
  EXPECT_EQ(fx.bbuf.stats().pinned_reads, 1u) << "misses must not count as pinned reads";
}

TEST(BurstBuffer, ReadPinnedDoesNotConsumeDeferredErrors) {
  BurstBufferConfig cfg;
  cfg.capacity_bytes = 256_KiB;
  cfg.high_watermark = 0.25;
  cfg.low_watermark = 0.2;  // stop draining before the small extent goes
  cfg.flushers = 1;
  cfg.write_through_bytes = 256_KiB;
  Fixture fx(cfg);
  ASSERT_TRUE(fx.bbuf.open(1, "f").is_ok());
  // A small extent parked high in the file: it survives the failed flush
  // (largest-dirty goes first, and the low watermark halts the drain).
  const auto keep = pattern(16_KiB, 25);
  ASSERT_TRUE(fx.bbuf.write(1, 1_MiB, keep).is_ok());
  fx.plan->fail_always(fault::OpKind::write, Errc::io_error);
  ASSERT_TRUE(fx.bbuf.write(1, 0, pattern(128_KiB, 26)).is_ok());  // over the watermark
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fx.bbuf.stats().deferred_errors == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(fx.bbuf.stats().deferred_errors, 0u) << "background flush never failed";
  fx.plan->clear();

  // The fast path must peek — not consume — the pending error: it misses, and
  // the error still bounces the next op exactly once.
  EXPECT_FALSE(fx.bbuf.read_pinned(1, 1_MiB, 16_KiB).has_value())
      << "a pending deferred error must force the read() fallback";
  auto r = fx.bbuf.write(1, 2_MiB, pattern(4_KiB, 27));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::io_error) << "read_pinned swallowed the deferred error";

  // Error consumed: the surviving extent is pinnable again.
  auto pin = fx.bbuf.read_pinned(1, 1_MiB, 16_KiB);
  ASSERT_TRUE(pin.has_value());
  EXPECT_TRUE(std::equal(pin->bytes.begin(), pin->bytes.end(), keep.begin()));
  pin.reset();
  EXPECT_TRUE(fx.bbuf.close(1).is_ok());
}

TEST(BurstBuffer, ComposesWithServerEndToEnd) {
  auto mem_owned = std::make_unique<MemBackend>();
  auto* mem = mem_owned.get();
  rt::ServerConfig cfg;
  cfg.exec = rt::ExecModel::work_queue_async;
  cfg.bb_bytes = 8_MiB;
  cfg.bb_high_watermark = 1.0;  // only explicit drains flush
  cfg.bb_low_watermark = 1.0;
  rt::IonServer server(std::move(mem_owned), cfg);
  ASSERT_NE(server.burst_buffer(), nullptr);

  auto [se, ce] = rt::InProcTransport::make_pair();
  server.serve(std::move(se));
  rt::Client client(std::move(ce));
  ASSERT_TRUE(client.open(1, "ckpt").is_ok());

  // Reverse-order checkpoint burst from the client.
  const auto chunk = pattern(32_KiB, 16);
  for (int i = 15; i >= 0; --i) {
    ASSERT_TRUE(client.write(1, static_cast<std::uint64_t>(i) * chunk.size(), chunk).is_ok());
  }
  // Read-after-write is served from the cache: nothing has been flushed.
  auto rd = client.read(1, 5 * chunk.size(), chunk.size());
  ASSERT_TRUE(rd.is_ok());
  EXPECT_EQ(rd.value(), chunk);
  EXPECT_TRUE(mem->snapshot("ckpt").empty()) << "read must not force a full drain";

  ASSERT_TRUE(client.fsync(1).is_ok());
  EXPECT_EQ(mem->snapshot("ckpt").size(), 16 * chunk.size());
  const auto s = server.stats();
  EXPECT_GT(s.bb_coalesce_ratio, 4.0);
  EXPECT_GT(s.bb_flushed_bytes, 0u);
  EXPECT_GT(s.bb_hit_rate, 0.0);
  ASSERT_TRUE(client.close(1).is_ok());
  server.stop();
  EXPECT_EQ(server.burst_buffer()->stats().cached_bytes, 0u);
}

}  // namespace
}  // namespace iofwd::bb
