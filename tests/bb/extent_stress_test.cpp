// Model-based stress test for ExtentIndex (README "Test harness").
//
// A seeded generator drives thousands of random operations — inserts
// (sequential, random, overlapping), clean-marking, evictions, and
// take_overlapping — against both the real index and a trivially-correct
// golden model: a flat byte array plus a validity mask. After every
// operation the index must agree with the model exactly:
//
//   * segments() tiles the whole span, holes and cached runs alternating
//     with no gaps, every cached byte valid-and-equal in the model, every
//     hole byte absent from it;
//   * data_bytes()/dirty_bytes()/extent_count()/max_end() match the same
//     figures recomputed from the segment walk and the mask.
//
// On failure the test delta-minimizes the op sequence (greedily dropping
// ops while the failure reproduces) and prints the seed plus the minimized
// sequence, so the report is a ready-made regression test. Replay with
// IOFWD_TEST_SEED=0x... .
#include "bb/extent_index.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "rt/bml.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::bb {
namespace {

constexpr std::uint64_t kFileSpan = 256_KiB;  // offsets stay below this
constexpr std::size_t kMaxWrite = 16_KiB;
constexpr std::uint64_t kSpan = kFileSpan + kMaxWrite;  // full check window
constexpr std::size_t kPoolBytes = 8_MiB;

struct Op {
  enum class Kind { insert, mark_clean, evict_clean, take_overlapping };
  Kind kind = Kind::insert;
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
  std::uint64_t data_seed = 0;  // insert payload = pattern(len, data_seed)
};

std::string to_string(const Op& op) {
  std::ostringstream os;
  switch (op.kind) {
    case Op::Kind::insert:
      os << "insert(off=" << op.offset << ", len=" << op.len << ", seed=" << op.data_seed << ")";
      break;
    case Op::Kind::mark_clean:
      os << "mark_clean(largest_dirty)";
      break;
    case Op::Kind::evict_clean:
      os << "evict(largest_clean)";
      break;
    case Op::Kind::take_overlapping:
      os << "take_overlapping(off=" << op.offset << ", len=" << op.len << ")";
      break;
  }
  return os.str();
}

// The golden model: a flat file image plus a per-byte "cached" mask.
struct Model {
  std::vector<std::byte> bytes = std::vector<std::byte>(kSpan, std::byte{0});
  std::vector<char> cached = std::vector<char>(kSpan, 0);

  void write(std::uint64_t off, std::span<const std::byte> data) {
    std::memcpy(bytes.data() + off, data.data(), data.size());
    std::fill(cached.begin() + static_cast<std::ptrdiff_t>(off),
              cached.begin() + static_cast<std::ptrdiff_t>(off + data.size()), 1);
  }
  void drop(std::uint64_t off, std::uint64_t len) {
    std::fill(cached.begin() + static_cast<std::ptrdiff_t>(off),
              cached.begin() + static_cast<std::ptrdiff_t>(off + len), 0);
  }
};

// Compare the index against the model; nullopt = consistent, otherwise a
// description of the first disagreement.
std::optional<std::string> check(const ExtentIndex& idx, const Model& model) {
  const auto segs = idx.segments(0, kSpan);
  std::uint64_t pos = 0;
  std::uint64_t seen_data = 0;
  std::uint64_t seen_dirty = 0;
  std::uint64_t model_max_end = 0;
  std::size_t seen_extents = 0;
  const Extent* prev_ext = nullptr;
  for (const auto& seg : segs) {
    if (seg.offset != pos) {
      return "segments() skipped [" + std::to_string(pos) + ", " + std::to_string(seg.offset) +
             ")";
    }
    pos += seg.len;
    if (seg.ext == nullptr) {
      for (std::uint64_t i = seg.offset; i < seg.offset + seg.len; ++i) {
        if (model.cached[i]) {
          return "hole at " + std::to_string(i) + " but the model has that byte cached";
        }
      }
      prev_ext = nullptr;
      continue;
    }
    if (seg.ext != prev_ext) {
      ++seen_extents;
      seen_data += seg.ext->len;
      if (seg.ext->dirty) seen_dirty += seg.ext->len;
      prev_ext = seg.ext;
    }
    for (std::uint64_t i = seg.offset; i < seg.offset + seg.len; ++i) {
      if (!model.cached[i]) {
        return "cached byte at " + std::to_string(i) + " the model never wrote (or dropped)";
      }
      const std::byte got = seg.ext->buf->data()[i - seg.ext->start];
      if (got != model.bytes[i]) {
        return "byte at " + std::to_string(i) + " differs from the model";
      }
    }
  }
  if (pos != kSpan) return "segments() stopped early at " + std::to_string(pos);

  std::uint64_t model_data = 0;
  for (std::uint64_t i = 0; i < kSpan; ++i) {
    if (model.cached[i]) {
      ++model_data;
      model_max_end = i + 1;
    }
  }
  if (seen_data != model_data || idx.data_bytes() != model_data) {
    return "data_bytes: index says " + std::to_string(idx.data_bytes()) + ", segment walk " +
           std::to_string(seen_data) + ", model " + std::to_string(model_data);
  }
  if (idx.dirty_bytes() != seen_dirty) {
    return "dirty_bytes: index says " + std::to_string(idx.dirty_bytes()) + ", segment walk " +
           std::to_string(seen_dirty);
  }
  if (idx.extent_count() != seen_extents) {
    return "extent_count: index says " + std::to_string(idx.extent_count()) + ", segment walk " +
           std::to_string(seen_extents);
  }
  if (idx.max_end() != model_max_end) {
    return "max_end: index says " + std::to_string(idx.max_end()) + ", model " +
           std::to_string(model_max_end);
  }
  return std::nullopt;
}

// Replay `ops` against a fresh index + model; returns the first failure as
// "op #i <op>: <disagreement>", or nullopt if the whole sequence is clean.
std::optional<std::string> run(const std::vector<Op>& ops) {
  rt::BufferPool pool(kPoolBytes);
  ExtentIndex idx;
  Model model;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    switch (op.kind) {
      case Op::Kind::insert: {
        const auto data = testsupport::pattern(op.len, op.data_seed);
        auto r = idx.insert(op.offset, data, pool);
        // would_block / message_too_large leave the index untouched by
        // contract; the model skips the op too (and check() verifies the
        // "untouched" half).
        if (r.is_ok()) model.write(op.offset, data);
        break;
      }
      case Op::Kind::mark_clean: {
        if (Extent* e = idx.largest_dirty(); e != nullptr) idx.mark_clean(*e);
        break;
      }
      case Op::Kind::evict_clean: {
        if (Extent* e = idx.largest_clean(); e != nullptr) {
          const std::uint64_t start = e->start;
          const std::uint64_t len = e->len;
          idx.evict(start);
          model.drop(start, len);
        }
        break;
      }
      case Op::Kind::take_overlapping: {
        for (const Extent& e : idx.take_overlapping(op.offset, op.len)) {
          model.drop(e.start, e.len);
        }
        break;
      }
    }
    if (auto err = check(idx, model)) {
      return "op #" + std::to_string(i) + " " + to_string(op) + ": " + *err;
    }
  }
  return std::nullopt;
}

// Greedy delta-minimization: repeatedly drop ops whose removal preserves the
// failure, until no single removal does.
std::vector<Op> minimize(std::vector<Op> ops) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = ops.size(); i-- > 0;) {
      std::vector<Op> candidate = ops;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (run(candidate).has_value()) {
        ops = std::move(candidate);
        shrunk = true;
      }
    }
  }
  return ops;
}

std::vector<Op> generate(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(count);
  std::uint64_t next_seq = 0;  // rolling append cursor for sequential runs
  for (std::size_t i = 0; i < count; ++i) {
    Op op;
    const std::uint64_t roll = rng.below(100);
    if (roll < 70) {
      op.kind = Op::Kind::insert;
      op.len = 1 + rng.below(kMaxWrite);
      if (roll < 25) {
        // Sequential append burst: the in-place fast path.
        op.offset = next_seq;
        next_seq = (next_seq + op.len) % kFileSpan;
      } else if (roll < 40) {
        // 4 KiB-aligned: adjoining and exactly-overlapping runs.
        op.offset = (rng.below(kFileSpan) / 4096) * 4096;
      } else {
        op.offset = rng.below(kFileSpan);
      }
      op.data_seed = rng.next();
    } else if (roll < 80) {
      op.kind = Op::Kind::mark_clean;
    } else if (roll < 90) {
      op.kind = Op::Kind::evict_clean;
    } else {
      op.kind = Op::Kind::take_overlapping;
      op.offset = rng.below(kFileSpan);
      op.len = 1 + rng.below(4 * kMaxWrite);
    }
    ops.push_back(op);
  }
  return ops;
}

TEST(ExtentStress, RandomOpsAgreeWithFlatModel) {
  const std::uint64_t seed = testsupport::test_seed("ExtentStress.RandomOps", 0xe47e27);
  const auto ops = generate(seed, 2000);
  auto failure = run(ops);
  if (!failure) return;

  const auto minimal = minimize(ops);
  std::ostringstream os;
  os << "ExtentIndex diverged from the flat model (seed 0x" << std::hex << seed << std::dec
     << ", replay: IOFWD_TEST_SEED=0x" << std::hex << seed << std::dec << ")\n"
     << "failure: " << *run(minimal) << "\n"
     << "minimized sequence (" << minimal.size() << " of " << ops.size() << " ops):\n";
  for (const auto& op : minimal) os << "  " << to_string(op) << "\n";
  FAIL() << os.str();
}

// A second, shorter storm at a different default seed: cheap extra coverage
// of generator phase effects (the two runs share no Rng state).
TEST(ExtentStress, SecondSeedAgreesToo) {
  const std::uint64_t seed = testsupport::test_seed("ExtentStress.SecondSeed", 0x5eed2);
  const auto ops = generate(seed ^ 0x9e3779b97f4a7c15ull, 800);
  auto failure = run(ops);
  if (!failure) return;
  const auto minimal = minimize(ops);
  std::ostringstream os;
  os << "failure: " << *run(minimal) << "\nminimized (" << minimal.size() << " ops):\n";
  for (const auto& op : minimal) os << "  " << to_string(op) << "\n";
  FAIL() << os.str();
}

}  // namespace
}  // namespace iofwd::bb
