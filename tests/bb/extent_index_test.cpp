#include "bb/extent_index.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/units.hpp"
#include "rt/bml.hpp"

namespace iofwd::bb {
namespace {

std::vector<std::byte> fill(std::size_t n, std::uint8_t v) {
  return std::vector<std::byte>(n, static_cast<std::byte>(v));
}

// Reassemble the indexed bytes over [0, len) for content checks; holes are 0.
std::vector<std::byte> materialize(const ExtentIndex& idx, std::uint64_t len) {
  std::vector<std::byte> out(len, std::byte{0});
  for (const auto& seg : idx.segments(0, len)) {
    if (seg.ext == nullptr) continue;
    std::memcpy(out.data() + seg.offset, seg.ext->buf->data() + (seg.offset - seg.ext->start),
                seg.len);
  }
  return out;
}

TEST(ExtentIndex, SequentialAppendsStayOneExtent) {
  rt::BufferPool pool(1_MiB);
  ExtentIndex idx;
  // 4 KiB min class: the first insert leases 4 KiB, the rest fill in place.
  for (int i = 0; i < 4; ++i) {
    auto r = idx.insert(static_cast<std::uint64_t>(i) * 1024, fill(1024, 0xa), pool);
    ASSERT_TRUE(r.is_ok());
    if (i > 0) {
      EXPECT_EQ(r.value(), ExtentIndex::Insert::in_place);
    }
  }
  EXPECT_EQ(idx.extent_count(), 1u);
  EXPECT_EQ(idx.data_bytes(), 4096u);
  EXPECT_EQ(idx.dirty_bytes(), 4096u);
}

TEST(ExtentIndex, OutOfOrderWritesMergeIntoOneExtent) {
  rt::BufferPool pool(1_MiB);
  ExtentIndex idx;
  // Reverse order: the aggregator's sequential window cannot absorb this.
  ASSERT_TRUE(idx.insert(8192, fill(4096, 3), pool).is_ok());
  ASSERT_TRUE(idx.insert(4096, fill(4096, 2), pool).is_ok());
  ASSERT_TRUE(idx.insert(0, fill(4096, 1), pool).is_ok());
  EXPECT_EQ(idx.extent_count(), 1u);
  EXPECT_EQ(idx.data_bytes(), 12288u);
  const auto m = materialize(idx, 12288);
  EXPECT_EQ(m[0], std::byte{1});
  EXPECT_EQ(m[4096], std::byte{2});
  EXPECT_EQ(m[8192], std::byte{3});
}

TEST(ExtentIndex, OverlappingWriteWins) {
  rt::BufferPool pool(1_MiB);
  ExtentIndex idx;
  ASSERT_TRUE(idx.insert(0, fill(8192, 1), pool).is_ok());
  ASSERT_TRUE(idx.insert(4096, fill(8192, 2), pool).is_ok());
  const auto m = materialize(idx, 12288);
  EXPECT_EQ(m[0], std::byte{1});
  EXPECT_EQ(m[4095], std::byte{1});
  EXPECT_EQ(m[4096], std::byte{2});
  EXPECT_EQ(m[12287], std::byte{2});
  EXPECT_EQ(idx.extent_count(), 1u);
}

TEST(ExtentIndex, DisjointWritesKeepSeparateExtents) {
  rt::BufferPool pool(1_MiB);
  ExtentIndex idx;
  ASSERT_TRUE(idx.insert(0, fill(1024, 1), pool).is_ok());
  ASSERT_TRUE(idx.insert(1_MiB / 2, fill(1024, 2), pool).is_ok());
  EXPECT_EQ(idx.extent_count(), 2u);
  auto segs = idx.segments(0, 1_MiB / 2 + 1024);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_NE(segs[0].ext, nullptr);
  EXPECT_EQ(segs[1].ext, nullptr) << "hole between the extents";
  EXPECT_NE(segs[2].ext, nullptr);
}

TEST(ExtentIndex, PoolExhaustionLeavesIndexUnchanged) {
  rt::BufferPool pool(8192, 4096);
  ExtentIndex idx;
  ASSERT_TRUE(idx.insert(0, fill(8192, 1), pool).is_ok());  // pool now full
  auto r = idx.insert(100_KiB, fill(4096, 2), pool);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::would_block);
  EXPECT_EQ(idx.extent_count(), 1u);
  EXPECT_EQ(idx.data_bytes(), 8192u);
}

TEST(ExtentIndex, OversizeMergeReportsTooLarge) {
  rt::BufferPool pool(64_KiB, 4096);
  ExtentIndex idx;
  ASSERT_TRUE(idx.insert(0, fill(4096, 1), pool).is_ok());
  // Adjoining write whose merged run would exceed the whole pool.
  auto r = idx.insert(4096, fill(60 * 1024 + 4096, 2), pool);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::message_too_large);
  EXPECT_EQ(idx.extent_count(), 1u);
}

TEST(ExtentIndex, LargestDirtySelection) {
  rt::BufferPool pool(1_MiB);
  ExtentIndex idx;
  ASSERT_TRUE(idx.insert(0, fill(4096, 1), pool).is_ok());
  ASSERT_TRUE(idx.insert(1_MiB / 2, fill(16384, 2), pool).is_ok());
  Extent* e = idx.largest_dirty();
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->start, 1_MiB / 2);
  idx.mark_clean(*e);
  EXPECT_EQ(idx.dirty_bytes(), 4096u);
  e = idx.largest_dirty();
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->start, 0u);
  Extent* c = idx.largest_clean();
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->start, 1_MiB / 2);
}

TEST(ExtentIndex, EvictReleasesLease) {
  rt::BufferPool pool(1_MiB);
  ExtentIndex idx;
  ASSERT_TRUE(idx.insert(0, fill(4096, 1), pool).is_ok());
  EXPECT_GT(pool.in_use(), 0u);
  idx.evict(0);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(idx.data_bytes(), 0u);
  EXPECT_EQ(idx.dirty_bytes(), 0u);
}

TEST(ExtentIndex, TakeOverlappingRemovesOnlyTouchedExtents) {
  rt::BufferPool pool(1_MiB);
  ExtentIndex idx;
  ASSERT_TRUE(idx.insert(0, fill(4096, 1), pool).is_ok());
  ASSERT_TRUE(idx.insert(100_KiB, fill(4096, 2), pool).is_ok());
  ASSERT_TRUE(idx.insert(200_KiB, fill(4096, 3), pool).is_ok());
  auto taken = idx.take_overlapping(100_KiB, 4096);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].start, 100_KiB);
  EXPECT_EQ(idx.extent_count(), 2u);
}

TEST(ExtentIndex, ClearReturnsEverythingToPool) {
  rt::BufferPool pool(1_MiB);
  ExtentIndex idx;
  ASSERT_TRUE(idx.insert(0, fill(4096, 1), pool).is_ok());
  ASSERT_TRUE(idx.insert(100_KiB, fill(4096, 2), pool).is_ok());
  idx.clear();
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(idx.max_end(), 0u);
}

TEST(ExtentIndex, MaxEndTracksHighestStagedByte) {
  rt::BufferPool pool(1_MiB);
  ExtentIndex idx;
  ASSERT_TRUE(idx.insert(100_KiB, fill(4096, 1), pool).is_ok());
  EXPECT_EQ(idx.max_end(), 100_KiB + 4096);
}

}  // namespace
}  // namespace iofwd::bb
