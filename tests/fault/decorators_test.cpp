// FaultyBackend / FaultyStream decorator behavior: plan-driven errors on
// every op kind, byte-budget connection cuts, latency injection.
#include "fault/decorators.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "rt/transport.hpp"

namespace iofwd::fault {
namespace {

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> v(std::strlen(s));
  std::memcpy(v.data(), s, v.size());
  return v;
}

TEST(FaultyBackend, PassesThroughWhenPlanIsQuiet) {
  auto plan = std::make_shared<FaultPlan>();
  FaultyBackend be(std::make_unique<rt::MemBackend>(), plan);
  ASSERT_TRUE(be.open(1, "f").is_ok());
  ASSERT_TRUE(be.write(1, 0, bytes_of("hello")).is_ok());
  std::vector<std::byte> out(5);
  auto r = be.read(1, 0, out);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 5u);
  EXPECT_EQ(std::memcmp(out.data(), "hello", 5), 0);
  EXPECT_TRUE(be.fsync(1).is_ok());
  EXPECT_EQ(be.size(1).value_or(0), 5u);
  EXPECT_TRUE(be.close(1).is_ok());
}

TEST(FaultyBackend, InjectsOnEveryOpKind) {
  auto plan = std::make_shared<FaultPlan>();
  FaultyBackend be(std::make_unique<rt::MemBackend>(), plan);
  ASSERT_TRUE(be.open(1, "f").is_ok());
  plan->fail_always(OpKind::any, Errc::io_error);
  EXPECT_EQ(be.open(2, "g").code(), Errc::io_error);
  EXPECT_EQ(be.write(1, 0, bytes_of("x")).code(), Errc::io_error);
  std::vector<std::byte> out(1);
  EXPECT_EQ(be.read(1, 0, out).code(), Errc::io_error);
  EXPECT_EQ(be.fsync(1).code(), Errc::io_error);
  EXPECT_EQ(be.size(1).code(), Errc::io_error);
  EXPECT_EQ(be.close(1).code(), Errc::io_error);
  EXPECT_EQ(plan->fired(), 6u);
}

TEST(FaultyBackend, FaultedOpDoesNotReachInner) {
  auto plan = std::make_shared<FaultPlan>();
  FaultyBackend be(std::make_unique<rt::MemBackend>(), plan);
  ASSERT_TRUE(be.open(1, "f").is_ok());
  plan->add({.op = OpKind::write, .nth = 1, .error = Errc::io_error});
  EXPECT_FALSE(be.write(1, 0, bytes_of("poison")).is_ok());
  auto* mem = static_cast<rt::MemBackend*>(&be.inner());
  EXPECT_TRUE(mem->snapshot("f").empty()) << "a faulted write must not execute";
}

TEST(FaultyBackend, InjectedLatencyIsObservable) {
  auto plan = std::make_shared<FaultPlan>();
  FaultyBackend be(std::make_unique<rt::MemBackend>(), plan);
  ASSERT_TRUE(be.open(1, "f").is_ok());
  plan->add({.op = OpKind::write,
             .nth = 1,
             .error = Errc::ok,
             .latency = std::chrono::microseconds(20'000)});
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(be.write(1, 0, bytes_of("slow")).is_ok());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15)) << "latency rule was not applied";
}

TEST(FaultyStream, ByteBudgetCutDeliversPrefixThenDropsLine) {
  auto [a, b] = rt::InProcTransport::make_pair();
  FaultyStream faulty(std::move(a), /*cut_after_write_bytes=*/10);

  // 6 bytes fit the budget and arrive intact.
  ASSERT_TRUE(faulty.write_all("abcdef", 6).is_ok());
  std::byte got[6];
  ASSERT_TRUE(b->read_exact(got, 6).is_ok());

  // The next 8 bytes cross the 10-byte budget: 4 delivered, line cut.
  Status st = faulty.write_all("ghijklmn", 8);
  EXPECT_EQ(st.code(), Errc::shutdown);
  std::byte tail[4];
  ASSERT_TRUE(b->read_exact(tail, 4).is_ok()) << "the in-budget prefix must be delivered";
  EXPECT_EQ(static_cast<char>(tail[0]), 'g');
  EXPECT_EQ(static_cast<char>(tail[3]), 'j');
  // The peer then sees the closed connection.
  std::byte more[1];
  EXPECT_FALSE(b->read_exact(more, 1).is_ok());

  // The cut latches: every later write fails without touching the wire.
  EXPECT_EQ(faulty.write_all("x", 1).code(), Errc::shutdown);
}

TEST(FaultyStream, PlanDrivenReadFaultClosesInner) {
  auto [a, b] = rt::InProcTransport::make_pair();
  auto plan = std::make_shared<FaultPlan>();
  plan->add({.op = OpKind::stream_read, .nth = 1, .error = Errc::io_error});
  FaultyStream faulty(std::move(a), plan);

  ASSERT_TRUE(b->write_all("zz", 2).is_ok());
  std::byte got[2];
  EXPECT_EQ(faulty.read_exact(got, 2).code(), Errc::io_error);
  // The inner stream was closed, so the peer's next read unblocks with an
  // error instead of hanging.
  std::byte more[1];
  EXPECT_FALSE(b->read_exact(more, 1).is_ok());
}

TEST(FaultyStream, PlanDrivenWriteFaultSkipsTheWire) {
  auto [a, b] = rt::InProcTransport::make_pair();
  auto plan = std::make_shared<FaultPlan>();
  plan->add({.op = OpKind::stream_write, .nth = 2, .error = Errc::shutdown});
  FaultyStream faulty(std::move(a), plan);

  ASSERT_TRUE(faulty.write_all("ok", 2).is_ok());
  std::byte got[2];
  ASSERT_TRUE(b->read_exact(got, 2).is_ok());
  EXPECT_EQ(faulty.write_all("nope", 4).code(), Errc::shutdown);
}

// ---------------------------------------------------------------------------
// Corruption actions (DESIGN.md §12): the op proceeds, the bytes lie.
// ---------------------------------------------------------------------------

int bit_difference(std::span<const std::byte> a, std::span<const std::byte> b) {
  int bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto x = static_cast<unsigned char>(a[i] ^ b[i]);
    while (x != 0) {
      bits += x & 1;
      x >>= 1;
    }
  }
  return bits;
}

TEST(FaultyStream, BitFlipDamagesExactlyOneBitInFlight) {
  auto [a, b] = rt::InProcTransport::make_pair();
  auto plan = std::make_shared<FaultPlan>(/*seed=*/7);
  plan->add({.op = OpKind::stream_write, .action = FaultAction::bit_flip, .nth = 2});
  FaultyStream faulty(std::move(a), plan);

  const auto sent = bytes_of("a message that must arrive bit-perfect");
  ASSERT_TRUE(faulty.write_all(sent.data(), sent.size()).is_ok());
  std::vector<std::byte> got(sent.size());
  ASSERT_TRUE(b->read_exact(got.data(), got.size()).is_ok());
  EXPECT_EQ(got, sent) << "rule arms on the 2nd write";

  ASSERT_TRUE(faulty.write_all(sent.data(), sent.size()).is_ok())
      << "bit_flip must not fail the write";
  ASSERT_TRUE(b->read_exact(got.data(), got.size()).is_ok());
  EXPECT_EQ(bit_difference(sent, got), 1);
  EXPECT_EQ(plan->fired(), 1u) << "corruption counts as a fired fault";

  // The caller's buffer is never touched — only the wire copy is damaged.
  EXPECT_EQ(sent, bytes_of("a message that must arrive bit-perfect"));
}

TEST(FaultyStream, BitFlipOnReadDamagesTheReceivedCopy) {
  auto [a, b] = rt::InProcTransport::make_pair();
  auto plan = std::make_shared<FaultPlan>(/*seed=*/8);
  plan->add({.op = OpKind::stream_read, .action = FaultAction::bit_flip, .nth = 1});
  FaultyStream faulty(std::move(a), plan);

  const auto sent = bytes_of("reply payload");
  ASSERT_TRUE(b->write_all(sent.data(), sent.size()).is_ok());
  std::vector<std::byte> got(sent.size());
  ASSERT_TRUE(faulty.read_exact(got.data(), got.size()).is_ok());
  EXPECT_EQ(bit_difference(sent, got), 1);
}

TEST(FaultyStream, GarbageScribblesABoundedWindow) {
  auto [a, b] = rt::InProcTransport::make_pair();
  auto plan = std::make_shared<FaultPlan>(/*seed=*/9);
  plan->add({.op = OpKind::stream_write, .action = FaultAction::garbage, .nth = 1});
  FaultyStream faulty(std::move(a), plan);

  const std::vector<std::byte> sent(256, std::byte{0x5a});
  ASSERT_TRUE(faulty.write_all(sent.data(), sent.size()).is_ok());
  std::vector<std::byte> got(sent.size());
  ASSERT_TRUE(b->read_exact(got.data(), got.size()).is_ok());
  std::size_t damaged = 0;
  for (std::size_t i = 0; i < got.size(); ++i) damaged += got[i] != sent[i] ? 1 : 0;
  EXPECT_GT(damaged, 0u);
  EXPECT_LE(damaged, 16u) << "garbage is a bounded window, not the whole frame";
}

TEST(FaultyStream, TruncateDeliversPrefixThenDropsLine) {
  auto [a, b] = rt::InProcTransport::make_pair();
  auto plan = std::make_shared<FaultPlan>(/*seed=*/10);
  plan->add({.op = OpKind::stream_write, .action = FaultAction::truncate, .nth = 1});
  FaultyStream faulty(std::move(a), plan);

  const std::vector<std::byte> sent(128, std::byte{0x11});
  EXPECT_EQ(faulty.write_all(sent.data(), sent.size()).code(), Errc::shutdown);
  // The peer drains whatever prefix arrived, then hits the closed line.
  std::byte one[1];
  while (b->read_exact(one, 1).is_ok()) {
  }
  SUCCEED();
}

TEST(FaultyStream, CorruptionIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    auto [a, b] = rt::InProcTransport::make_pair();
    auto plan = std::make_shared<FaultPlan>(seed);
    plan->add({.op = OpKind::stream_write, .action = FaultAction::bit_flip,
               .probability = 1.0});
    FaultyStream faulty(std::move(a), plan);
    const std::vector<std::byte> sent(64, std::byte{0});
    [&] { ASSERT_TRUE(faulty.write_all(sent.data(), sent.size()).is_ok()); }();
    std::vector<std::byte> got(sent.size());
    [&] { ASSERT_TRUE(b->read_exact(got.data(), got.size()).is_ok()); }();
    return got;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43)) << "different seeds flip different bits";
}

}  // namespace
}  // namespace iofwd::fault
