// Per-op deadlines: wire round-trip, server-side enforcement (expired ops
// bounce with timed_out, unexecuted), and the client roundtrip watchdog.
#include <gtest/gtest.h>

#include <chrono>

#include "core/units.hpp"
#include "fault/decorators.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"

namespace iofwd::fault {
namespace {

using namespace std::chrono_literals;

TEST(Deadline, FrameHeaderCarriesDeadline) {
  rt::FrameHeader h;
  h.type = rt::MsgType::request;
  h.op = rt::OpCode::write;
  h.deadline_ms = 1234;
  std::byte buf[rt::FrameHeader::kWireSize];
  h.encode(std::span<std::byte, rt::FrameHeader::kWireSize>(buf));
  auto d = rt::FrameHeader::decode(std::span<const std::byte, rt::FrameHeader::kWireSize>(buf));
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().deadline_ms, 1234u);
}

TEST(Deadline, ServerBouncesExpiredOpWithoutExecuting) {
  // A backend write slowed to 300ms holds the drain barrier; the fsync that
  // follows carries a 20ms deadline and must bounce with timed_out after the
  // drain instead of executing.
  auto plan = std::make_shared<FaultPlan>();
  rt::ServerConfig cfg;
  cfg.exec = rt::ExecModel::work_queue_async;
  rt::IonServer server(
      std::make_unique<FaultyBackend>(std::make_unique<rt::MemBackend>(), plan), cfg);

  auto [s, c] = rt::InProcTransport::make_pair();
  server.serve(std::move(s));
  rt::ClientConfig ccfg;
  ccfg.deadline_ms = 20;
  rt::Client client(std::move(c), ccfg);

  ASSERT_TRUE(client.open(1, "f").is_ok());
  plan->add({.op = OpKind::write, .nth = 1, .error = Errc::ok, .latency = 300'000us});
  std::vector<std::byte> data(4096, std::byte{0x42});
  ASSERT_TRUE(client.write(1, 0, data).is_ok()) << "staged ack arrives before the slow flush";

  Status st = client.fsync(1);
  EXPECT_EQ(st.code(), Errc::timed_out) << st.to_string();
  EXPECT_GE(server.stats().deadline_expired, 1u);
}

TEST(Deadline, UnexpiredOpsAreUnaffected) {
  rt::ServerConfig cfg;
  cfg.exec = rt::ExecModel::work_queue_async;
  rt::IonServer server(std::make_unique<rt::MemBackend>(), cfg);
  auto [s, c] = rt::InProcTransport::make_pair();
  server.serve(std::move(s));
  rt::ClientConfig ccfg;
  ccfg.deadline_ms = 10'000;  // generous: nothing should expire
  rt::Client client(std::move(c), ccfg);

  ASSERT_TRUE(client.open(1, "f").is_ok());
  std::vector<std::byte> data(64_KiB, std::byte{0x17});
  ASSERT_TRUE(client.write(1, 0, data).is_ok());
  ASSERT_TRUE(client.fsync(1).is_ok());
  auto r = client.read(1, 0, data.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), data);
  EXPECT_TRUE(client.close(1).is_ok());
  EXPECT_EQ(server.stats().deadline_expired, 0u);
}

TEST(Deadline, ClientWatchdogKillsHungRoundtrip) {
  // No server behind the pair: the roundtrip would block forever without
  // the watchdog.
  auto [s, c] = rt::InProcTransport::make_pair();
  rt::ClientConfig ccfg;
  ccfg.roundtrip_timeout_ms = 50;
  rt::Client client(std::move(c), ccfg);

  const auto t0 = std::chrono::steady_clock::now();
  Status st = client.open(1, "never");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(st.code(), Errc::timed_out) << st.to_string();
  EXPECT_LT(elapsed, 5s) << "watchdog did not fire";
  EXPECT_EQ(client.stats().timeouts, 1u);
  s->close();
}

TEST(Deadline, WatchdogDoesNotFireOnFastRoundtrips) {
  rt::IonServer server(std::make_unique<rt::MemBackend>(), {});
  auto [s, c] = rt::InProcTransport::make_pair();
  server.serve(std::move(s));
  rt::ClientConfig ccfg;
  ccfg.roundtrip_timeout_ms = 5'000;
  rt::Client client(std::move(c), ccfg);

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client.open(i, "f" + std::to_string(i)).is_ok());
    ASSERT_TRUE(client.close(i).is_ok());
  }
  EXPECT_EQ(client.stats().timeouts, 0u);
}

}  // namespace
}  // namespace iofwd::fault
