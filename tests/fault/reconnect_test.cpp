// Client reconnect with idempotent replay: a connection cut mid-burst is
// redialed through the StreamFactory, descriptors are re-opened, and the
// failed op replays transparently.
#include <gtest/gtest.h>

#include "core/units.hpp"
#include "fault/decorators.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::fault {
namespace {

using testsupport::ClusterOptions;
using testsupport::TestCluster;
using testsupport::pattern;

TestCluster cluster() {
  ClusterOptions o;
  o.clients = 0;
  return TestCluster(o);
}

// A reconnectable client whose first connection dies after `cut_after`
// written bytes; redials come up clean.
std::size_t add_cut_client(TestCluster& tc, std::uint64_t cut_after) {
  TestCluster::ClientSpec spec;
  spec.cut_after_write_bytes = cut_after;
  spec.reconnectable = true;
  return tc.add_client(std::move(spec));
}

TEST(Reconnect, MidBurstCutReplaysTransparently) {
  TestCluster tc = cluster();
  // First connection dies once this end has written ~1.5 frames of a
  // 16 KiB-per-write burst; the cut lands mid-payload.
  auto& client =
      tc.client(add_cut_client(tc, rt::FrameHeader::kWireSize * 2 + 16_KiB + 8_KiB));
  ASSERT_TRUE(client.open(1, "burst").is_ok());

  const auto data = pattern(16_KiB, 11);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.write(1, static_cast<std::uint64_t>(i) * data.size(), data).is_ok())
        << "write " << i << " did not survive the cut";
  }
  ASSERT_TRUE(client.fsync(1).is_ok());
  ASSERT_TRUE(client.close(1).is_ok());

  // Every byte of every burst landed, including the cut-then-replayed one.
  const auto all = tc.snapshot("burst");
  ASSERT_EQ(all.size(), 8 * data.size());
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(std::equal(data.begin(), data.end(),
                           all.begin() + static_cast<std::ptrdiff_t>(i * data.size())))
        << "burst " << i << " corrupted";
  }
  const auto cs = client.stats();
  EXPECT_GE(cs.reconnects, 1u);
  EXPECT_GE(cs.replays, 1u);
  EXPECT_EQ(cs.giveups, 0u);
}

TEST(Reconnect, ReplayedReadAfterReconnectSeesEarlierWrites) {
  TestCluster tc = cluster();
  // Budget: hello + open + first write survive; the read request later hits
  // the cut (hello 56 B, open 56+2 B, write 56 B + 4 KiB, then 10 B of the
  // read header).
  auto& client =
      tc.client(add_cut_client(tc, rt::FrameHeader::kWireSize * 3 + 4_KiB + 12));

  ASSERT_TRUE(client.open(3, "rr").is_ok());
  const auto data = pattern(4_KiB, 12);
  ASSERT_TRUE(client.write(3, 0, data).is_ok());
  auto r = client.read(3, 0, data.size());
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value(), data);
  EXPECT_GE(client.stats().reconnects, 1u);
}

TEST(Reconnect, WithoutFactoryTheCutSurfaces) {
  TestCluster tc = cluster();
  // hello + open (1-byte path) fit; the write's header hits the cut.
  TestCluster::ClientSpec spec;
  spec.cut_after_write_bytes = rt::FrameHeader::kWireSize * 2 + 10;
  auto& client = tc.client(tc.add_client(std::move(spec)));  // no StreamFactory
  ASSERT_TRUE(client.open(1, "x").is_ok());
  EXPECT_FALSE(client.write(1, 0, pattern(4_KiB, 13)).is_ok());
}

TEST(Reconnect, BoundedAttemptsThenGiveup) {
  // The factory always dials a connection that dies immediately, so every
  // replay fails; the client must stop after its attempt budget. The dead
  // factory is hand-built — TestCluster factories always reach the server.
  TestCluster tc = cluster();
  int dials = 0;
  rt::StreamFactory dead_factory = [&]() -> Result<std::unique_ptr<rt::ByteStream>> {
    ++dials;
    auto [s, c] = rt::InProcTransport::make_pair();
    s->close();  // server side never serves: instant dead line
    return std::unique_ptr<rt::ByteStream>(std::move(c));
  };
  auto first = tc.factory()();
  ASSERT_TRUE(first.is_ok());
  // hello + open fit; the write's header hits the cut.
  auto cut = std::make_unique<FaultyStream>(std::move(first).value(),
                                            rt::FrameHeader::kWireSize * 2 + 5);

  rt::ClientConfig cfg;
  cfg.reconnect_attempts = 2;
  cfg.reconnect_backoff_ms = 1;  // keep the test fast
  rt::Client client(std::move(cut), cfg, std::move(dead_factory));

  ASSERT_TRUE(client.open(1, "x").is_ok());
  Status st = client.write(1, 0, pattern(4_KiB, 14));
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(dials, 2) << "exactly reconnect_attempts dials";
  EXPECT_EQ(client.stats().giveups, 1u);
  EXPECT_EQ(client.stats().replays, 0u);
}

TEST(Reconnect, ShutdownOpcodeNeverReconnects) {
  TestCluster tc = cluster();
  int dials = 0;
  rt::StreamFactory counting = [&]() -> Result<std::unique_ptr<rt::ByteStream>> {
    ++dials;
    return tc.factory()();
  };
  auto first = tc.factory()();
  ASSERT_TRUE(first.is_ok());
  auto cut = std::make_unique<FaultyStream>(std::move(first).value(), 1);  // dies on first frame
  rt::Client client(std::move(cut), {}, std::move(counting));
  EXPECT_FALSE(client.shutdown().is_ok());
  EXPECT_EQ(dials, 0) << "a failed polite shutdown must not redial";
}

}  // namespace
}  // namespace iofwd::fault
