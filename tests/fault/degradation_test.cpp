// Graceful degradation: bounded BML waits that fall back to pass-through
// execution, burst-buffer stall bounds that fall back to write-through, and
// the queue-depth hysteresis that switches async staging to sync staging.
#include <gtest/gtest.h>

#include <future>

#include "bb/burst_buffer.hpp"
#include "core/units.hpp"
#include "fault/decorators.hpp"
#include "rt/async_client.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::fault {
namespace {

using namespace std::chrono_literals;
using testsupport::ClusterOptions;
using testsupport::TestCluster;
using testsupport::pattern;

TEST(Degradation, BmlExhaustionFallsBackToPassThrough) {
  // The pool holds exactly one 64 KiB buffer. The first write leases it and
  // then sits in a 400ms-slow backend write; the second write cannot lease
  // within bml_wait_ms and must execute inline, BML-less, instead of
  // blocking until the first completes.
  ClusterOptions o;
  o.server.exec = rt::ExecModel::work_queue_async;
  o.server.bml_bytes = 64_KiB;
  o.server.bml_wait_ms = 20;
  TestCluster tc(o);
  auto& client = tc.client();

  ASSERT_TRUE(client.open(1, "f").is_ok());
  tc.backend_plan().add({.op = OpKind::write, .nth = 1, .error = Errc::ok, .latency = 400'000us});
  const auto a = pattern(64_KiB, 1);
  const auto b = pattern(64_KiB, 2);
  ASSERT_TRUE(client.write(1, 0, a).is_ok());  // staged; flush is slow
  ASSERT_TRUE(client.write(1, a.size(), b).is_ok()) << "degraded write must still succeed";

  ASSERT_TRUE(client.fsync(1).is_ok());
  const auto st = tc.server().stats();
  EXPECT_GE(st.bml_timeouts, 1u);
  EXPECT_GE(st.degraded_passthrough_ops, 1u);

  // Data integrity across both paths.
  const auto all = tc.snapshot("f");
  ASSERT_EQ(all.size(), a.size() + b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), all.begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), all.begin() + static_cast<std::ptrdiff_t>(a.size())));
  EXPECT_TRUE(client.close(1).is_ok());
}

TEST(Degradation, OversizeWriteStillBouncesNoMemory) {
  // The degraded path must not swallow the documented oversize bounce.
  ClusterOptions o;
  o.server.exec = rt::ExecModel::work_queue_async;
  o.server.bml_bytes = 64_KiB;
  o.server.bml_wait_ms = 10;
  TestCluster tc(o);
  ASSERT_TRUE(tc.client().open(1, "f").is_ok());
  EXPECT_EQ(tc.client().write(1, 0, pattern(1_MiB, 3)).code(), Errc::no_memory);
}

TEST(Degradation, BurstBufferStallBoundWritesThrough) {
  // Inner writes are slowed to 100ms, so the flushers cannot free capacity
  // within the 10ms stall bound; a writer facing a full cache must fall back
  // to a synchronous write-through instead of stalling indefinitely.
  // Hand-built: this exercises the raw BurstBufferBackend, no server at all.
  auto plan = std::make_shared<FaultPlan>();
  plan->add({.op = OpKind::write,
             .probability = 1.0,
             .transient = false,
             .error = Errc::ok,
             .latency = 100'000us});
  bb::BurstBufferConfig cfg;
  cfg.capacity_bytes = 64_KiB;
  cfg.high_watermark = 1.0;  // only stall pressure drives flushing
  cfg.low_watermark = 1.0;
  cfg.write_through_bytes = 1_MiB;  // never bypass by size
  cfg.max_stall_ms = 10;
  cfg.flushers = 1;

  auto faulty = std::make_unique<FaultyBackend>(std::make_unique<rt::MemBackend>(), plan);
  auto* mem = static_cast<rt::MemBackend*>(&faulty->inner());
  bb::BurstBufferBackend bbuf(std::move(faulty), cfg);

  ASSERT_TRUE(bbuf.open(1, "f").is_ok());
  const auto a = pattern(48_KiB, 4);
  const auto b = pattern(48_KiB, 5);
  // Disjoint, non-adjacent runs: the second cannot merge with the first, so
  // it needs its own lease from a pool the first already exhausted.
  const std::uint64_t off_b = 1_MiB;
  ASSERT_TRUE(bbuf.write(1, 0, a).is_ok());  // fits the cache
  // No lease available: stalls, gives up after max_stall_ms, writes through.
  ASSERT_TRUE(bbuf.write(1, off_b, b).is_ok());
  EXPECT_GE(bbuf.stats().degraded_writes, 1u);

  ASSERT_TRUE(bbuf.fsync(1).is_ok());
  const auto all = mem->snapshot("f");
  ASSERT_EQ(all.size(), off_b + b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), all.begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), all.begin() + static_cast<std::ptrdiff_t>(off_b)));
  EXPECT_TRUE(bbuf.close(1).is_ok());
}

TEST(Degradation, QueueDepthWatermarkForcesSyncStaging) {
  // One worker, 30ms per backend write, 24 pipelined writes: the queue depth
  // crosses the high watermark, so later writes must be staged synchronously
  // (acknowledged only on completion) until the queue drains below the low
  // watermark.
  ClusterOptions o;
  o.server.exec = rt::ExecModel::work_queue_async;
  o.server.workers = 1;
  o.server.degraded_high_watermark = 4;
  o.server.degraded_low_watermark = 1;
  o.clients = 0;  // the pipelined AsyncClient below is the only client
  TestCluster tc(o);
  tc.backend_plan().add({.op = OpKind::write,
                         .probability = 1.0,
                         .transient = false,
                         .error = Errc::ok,
                         .latency = 30'000us});

  auto stream = tc.factory()();
  ASSERT_TRUE(stream.is_ok());
  rt::AsyncClient client(std::move(stream).value(), /*window=*/32);

  ASSERT_TRUE(client.open(1, "q").get().is_ok());
  const auto data = pattern(4_KiB, 6);
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(client.write(1, static_cast<std::uint64_t>(i) * data.size(), data));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().is_ok());
  ASSERT_TRUE(client.fsync(1).get().is_ok());

  const auto st = tc.server().stats();
  EXPECT_GE(st.degraded_enters, 1u) << "queue depth never crossed the watermark";
  EXPECT_GE(st.degraded_sync_writes, 1u);
  EXPECT_GT(st.degraded_ns, 0u);
  EXPECT_TRUE(client.close_fd(1).get().is_ok());
}

}  // namespace
}  // namespace iofwd::fault
