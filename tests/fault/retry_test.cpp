// RetryingBackend: the transient/permanent classifier, bounded retry with
// backoff, and giveup accounting.
#include "fault/retry.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "fault/decorators.hpp"

namespace iofwd::fault {
namespace {

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> v(std::strlen(s));
  std::memcpy(v.data(), s, v.size());
  return v;
}

RetryPolicy fast_policy(int attempts = 4) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.base_backoff = std::chrono::microseconds(10);  // keep tests quick
  p.max_backoff = std::chrono::microseconds(100);
  return p;
}

TEST(RetryClassifier, TransientVsPermanent) {
  EXPECT_TRUE(is_transient(Errc::io_error));
  EXPECT_TRUE(is_transient(Errc::timed_out));
  EXPECT_TRUE(is_transient(Errc::would_block));

  EXPECT_FALSE(is_transient(Errc::ok));
  EXPECT_FALSE(is_transient(Errc::bad_descriptor));
  EXPECT_FALSE(is_transient(Errc::invalid_argument));
  EXPECT_FALSE(is_transient(Errc::no_memory));
  EXPECT_FALSE(is_transient(Errc::protocol_error));
  EXPECT_FALSE(is_transient(Errc::shutdown));
  EXPECT_FALSE(is_transient(Errc::deferred_io_error));
}

TEST(RetryingBackend, TransientFaultIsAbsorbed) {
  auto plan = std::make_shared<FaultPlan>();
  RetryingBackend be(
      std::make_unique<FaultyBackend>(std::make_unique<rt::MemBackend>(), plan), fast_policy());
  ASSERT_TRUE(be.open(1, "f").is_ok());
  // The next two backend writes fail transiently; attempt 3 succeeds.
  plan->add({.op = OpKind::write, .nth = 1, .burst = 2, .error = Errc::io_error});
  auto r = be.write(1, 0, bytes_of("payload"));
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const auto s = be.stats();
  EXPECT_EQ(s.retries, 2u);
  EXPECT_EQ(s.giveups, 0u);
  EXPECT_EQ(s.attempts, 4u);  // open + three write attempts
  EXPECT_GT(s.backoff_ns, 0u);
}

TEST(RetryingBackend, PermanentErrorFailsImmediately) {
  auto plan = std::make_shared<FaultPlan>();
  RetryingBackend be(
      std::make_unique<FaultyBackend>(std::make_unique<rt::MemBackend>(), plan), fast_policy());
  ASSERT_TRUE(be.open(1, "f").is_ok());
  plan->fail_always(OpKind::write, Errc::invalid_argument);
  EXPECT_EQ(be.write(1, 0, bytes_of("x")).code(), Errc::invalid_argument);
  const auto s = be.stats();
  EXPECT_EQ(s.retries, 0u) << "permanent errors must not be retried";
  EXPECT_EQ(s.giveups, 0u);
}

TEST(RetryingBackend, ExhaustedBudgetIsAGiveup) {
  auto plan = std::make_shared<FaultPlan>();
  RetryingBackend be(
      std::make_unique<FaultyBackend>(std::make_unique<rt::MemBackend>(), plan), fast_policy(3));
  ASSERT_TRUE(be.open(1, "f").is_ok());
  plan->fail_always(OpKind::write, Errc::io_error);
  EXPECT_EQ(be.write(1, 0, bytes_of("x")).code(), Errc::io_error);
  const auto s = be.stats();
  EXPECT_EQ(s.retries, 2u);  // 3 attempts = 2 retries
  EXPECT_EQ(s.giveups, 1u);
  EXPECT_EQ(plan->calls(OpKind::write), 3u);
}

TEST(RetryingBackend, UnknownFdErrorPassesThroughUnretried) {
  RetryingBackend be(std::make_unique<rt::MemBackend>(), fast_policy());
  EXPECT_EQ(be.write(77, 0, bytes_of("x")).code(), Errc::bad_descriptor);
  EXPECT_EQ(be.stats().retries, 0u);
}

TEST(RetryingBackend, AllOpsGoThroughTheRetryLoop) {
  auto plan = std::make_shared<FaultPlan>();
  RetryingBackend be(
      std::make_unique<FaultyBackend>(std::make_unique<rt::MemBackend>(), plan), fast_policy());
  // One transient fault on each op kind: every public call must recover.
  plan->add({.op = OpKind::open, .nth = 1, .error = Errc::io_error});
  plan->add({.op = OpKind::write, .nth = 1, .error = Errc::io_error});
  plan->add({.op = OpKind::read, .nth = 1, .error = Errc::io_error});
  plan->add({.op = OpKind::fsync, .nth = 1, .error = Errc::io_error});
  plan->add({.op = OpKind::size, .nth = 1, .error = Errc::io_error});
  plan->add({.op = OpKind::close, .nth = 1, .error = Errc::io_error});

  EXPECT_TRUE(be.open(1, "f").is_ok());
  EXPECT_TRUE(be.write(1, 0, bytes_of("data")).is_ok());
  std::vector<std::byte> out(4);
  EXPECT_TRUE(be.read(1, 0, out).is_ok());
  EXPECT_TRUE(be.fsync(1).is_ok());
  EXPECT_TRUE(be.size(1).is_ok());
  EXPECT_TRUE(be.close(1).is_ok());
  EXPECT_EQ(be.stats().retries, 6u);
}

TEST(RetryingBackend, DataLandsCorrectlyAfterRetries) {
  auto plan = std::make_shared<FaultPlan>();
  auto faulty = std::make_unique<FaultyBackend>(std::make_unique<rt::MemBackend>(), plan);
  auto* mem = static_cast<rt::MemBackend*>(&faulty->inner());
  // Deterministic seeds, generous attempt budget: the 30% schedule is
  // reproducible and 8 attempts make a giveup virtually impossible.
  RetryingBackend be(std::move(faulty), fast_policy(8));
  ASSERT_TRUE(be.open(1, "f").is_ok());
  plan->add({.op = OpKind::write, .probability = 0.3, .error = Errc::io_error});
  const auto data = bytes_of("0123456789abcdef");
  for (std::uint64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(be.write(1, i * data.size(), data).is_ok()) << "write " << i;
  }
  EXPECT_EQ(mem->snapshot("f").size(), 32 * data.size());
  EXPECT_GT(be.stats().retries, 0u) << "the 50% fault rate should have caused retries";
}

}  // namespace
}  // namespace iofwd::fault
