// End-to-end integrity chaos (DESIGN.md §12): a client works through a full
// op mix while a seeded FaultPlan flips bits on 1% of its stream operations,
// in both directions (requests corrupt on write_all, replies corrupt on
// read_exact). The integrity contract under test:
//
//   1. every injected corruption is DETECTED — the CRC counters across
//      client and server sum to exactly the plan's fired() count;
//   2. every op still SUCCEEDS — checksum faults are retryable transport
//      faults, recovered by bounce-and-replay or reconnect-and-replay;
//   3. the stored bytes match the golden model bit-for-bit, and reads
//      return golden data — zero undetected corruptions.
//
// Replay any failure with the seed the run logs: IOFWD_TEST_SEED=0x... .
#include <gtest/gtest.h>

#include <map>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "fault/decorators.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::fault {
namespace {

using testsupport::ClusterOptions;
using testsupport::TestCluster;
using testsupport::pattern;

TEST(IntegrityChaos, OnePercentBitFlipsAllDetectedAllRecovered) {
  const std::uint64_t seed =
      testsupport::test_seed("IntegrityChaos.OnePercentBitFlips", 0x1f1d5);

  auto plan = std::make_shared<FaultPlan>(seed);
  plan->add({.op = OpKind::stream_write, .action = FaultAction::bit_flip, .probability = 0.01});
  plan->add({.op = OpKind::stream_read, .action = FaultAction::bit_flip, .probability = 0.01});

  ClusterOptions o;
  o.server.bml_bytes = 16_MiB;
  o.clients = 0;
  TestCluster tc(o);

  // Every stream the client uses — the first dial and every reconnect — goes
  // through the same plan, so plan->fired() is the total injected count.
  TestCluster::ClientSpec spec;
  spec.cfg.reconnect_attempts = 10;   // ~4 corruption chances per roundtrip at 1%
  spec.cfg.reconnect_backoff_ms = 0;  // keep the storm fast
  spec.stream_plan = plan;
  spec.reconnectable = true;
  spec.faulty_redials = true;
  auto& client = tc.client(tc.add_client(std::move(spec)));

  // Golden model: what the file must contain if no corruption slipped by.
  std::map<std::uint64_t, std::vector<std::byte>> golden;
  Rng rng(seed ^ 0xdada);

  ASSERT_TRUE(client.open(1, "chaos").is_ok());
  std::uint64_t next_off = 0;
  for (int i = 0; i < 600; ++i) {
    const std::size_t n = 1_KiB + rng.below(31_KiB);
    const auto data = pattern(n, rng.next());
    ASSERT_TRUE(client.write(1, next_off, data).is_ok()) << "write " << i;
    golden[next_off] = data;
    next_off += n;

    if (i % 10 == 9) {
      // Read back a random earlier extent and check it against the model.
      auto it = golden.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(golden.size())));
      auto r = client.read(1, it->first, it->second.size());
      ASSERT_TRUE(r.is_ok()) << "read @" << it->first << ": " << r.status().to_string();
      ASSERT_EQ(r.value(), it->second) << "read @" << it->first << " returned corrupt data";
    }
    if (i % 50 == 49) {
      ASSERT_TRUE(client.fsync(1).is_ok());
    }
  }
  auto sz = client.fstat_size(1);
  ASSERT_TRUE(sz.is_ok());
  EXPECT_EQ(sz.value(), next_off);
  ASSERT_TRUE(client.close(1).is_ok());

  // --- 1. every corruption detected -------------------------------------
  const auto cs = client.stats();
  const auto ss = tc.server().stats();
  const std::uint64_t injected = plan->fired();
  const std::uint64_t detected = cs.header_crc_errors + cs.payload_crc_errors +
                                 ss.header_crc_errors + ss.payload_crc_errors;
  EXPECT_GT(injected, 10u) << "storm too quiet to prove anything";
  EXPECT_EQ(detected, injected) << "an injected corruption went undetected";
  // A request-payload bounce is the server detecting + the client replaying.
  EXPECT_EQ(cs.request_bounces, ss.payload_crc_errors);

  // --- 2. every op succeeded via replay ----------------------------------
  EXPECT_EQ(cs.giveups, 0u);
  EXPECT_GE(cs.reconnects + cs.request_bounces, 1u) << "recovery paths never exercised";

  // --- 3. stored bytes match the golden model ----------------------------
  const auto all = tc.snapshot("chaos");
  ASSERT_EQ(all.size(), next_off);
  for (const auto& [off, data] : golden) {
    ASSERT_TRUE(std::equal(data.begin(), data.end(),
                           all.begin() + static_cast<std::ptrdiff_t>(off)))
        << "extent @" << off << " corrupted in storage";
  }
}

TEST(IntegrityChaos, V0PeersStayBlindToCorruption) {
  // Control experiment: with checksums negotiated OFF (v0 client), the same
  // storm corrupts silently — demonstrating the integrity layer is what
  // detects it, not some other mechanism. One flipped write payload lands
  // in storage undetected.
  auto plan = std::make_shared<FaultPlan>(99);
  // Deterministic single flip: 4th stream write = payload of the 2nd write
  // op (hello is suppressed at v0; open is hdr+path, writes are hdr+payload).
  plan->add({.op = OpKind::stream_write, .action = FaultAction::bit_flip, .nth = 6});

  ClusterOptions o;
  o.clients = 0;
  TestCluster tc(o);

  TestCluster::ClientSpec spec;
  spec.cfg.max_wire_version = 0;  // legacy client: no hello, no checksums
  spec.stream_plan = plan;
  spec.reconnectable = true;
  spec.faulty_redials = true;
  auto& client = tc.client(tc.add_client(std::move(spec)));

  ASSERT_TRUE(client.open(1, "blind").is_ok());
  const auto data = pattern(4_KiB, 5);
  ASSERT_TRUE(client.write(1, 0, data).is_ok());
  ASSERT_TRUE(client.write(1, data.size(), data).is_ok());
  ASSERT_TRUE(client.write(1, 2 * data.size(), data).is_ok());
  ASSERT_TRUE(client.close(1).is_ok());

  ASSERT_EQ(plan->fired(), 1u);
  EXPECT_EQ(tc.server().stats().payload_crc_errors, 0u);
  EXPECT_EQ(tc.server().stats().header_crc_errors, 0u);
  const auto all = tc.snapshot("blind");
  ASSERT_EQ(all.size(), 3 * data.size());
  std::size_t mismatched = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    mismatched += all[i] != data[i % data.size()] ? 1 : 0;
  }
  EXPECT_EQ(mismatched, 1u) << "exactly the flipped bit's byte differs, silently";
}

}  // namespace
}  // namespace iofwd::fault
