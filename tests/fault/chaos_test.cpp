// Seeded cross-stack chaos: N clients hammer a burst-buffered, retry-wrapped
// server while a deterministic FaultPlan injects transport cuts and backend
// faults. Asserts the resilience contract: no hangs (wall-clock bound), no
// leaked BML/pool leases after drain, healthy clients fully served with
// intact data, and acknowledged synchronous bytes readable.
//
// Replay any failure with the seed the run logs: IOFWD_TEST_SEED=0x... .
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "bb/burst_buffer.hpp"
#include "core/units.hpp"
#include "fault/decorators.hpp"
#include "fault/retry.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::fault {
namespace {

using namespace std::chrono_literals;
using testsupport::ClusterOptions;
using testsupport::TestCluster;
using testsupport::pattern;

TEST(Chaos, SeededFaultStormLeavesServerHealthy) {
  const std::uint64_t seed = testsupport::test_seed("Chaos.SeededFaultStorm", 0xC405);
  const auto t0 = std::chrono::steady_clock::now();

  // Backend chain: bb cache (server-owned) -> retry -> seeded faults -> mem.
  auto backend_plan = std::make_shared<FaultPlan>(seed);
  backend_plan->add({.op = OpKind::write, .probability = 0.05, .error = Errc::io_error});
  backend_plan->add({.op = OpKind::fsync, .probability = 0.02, .error = Errc::timed_out});
  RetryPolicy rp;
  rp.max_attempts = 8;
  rp.base_backoff = std::chrono::microseconds(50);
  rp.max_backoff = std::chrono::microseconds(2'000);

  ClusterOptions o;
  o.server.exec = rt::ExecModel::work_queue_async;
  o.server.workers = 4;
  o.server.bml_bytes = 8_MiB;
  o.server.bb_bytes = 4_MiB;
  o.server.bml_wait_ms = 50;
  o.server.bb_max_stall_ms = 50;
  o.server.degraded_high_watermark = 32;
  o.server.degraded_low_watermark = 8;
  o.backend_plan = backend_plan;
  o.retry = &rp;
  o.clients = 0;  // every client below has bespoke fault wiring
  TestCluster tc(o);

  constexpr int kFaulty = 4;
  constexpr int kHealthy = 2;
  constexpr int kBursts = 12;
  const std::size_t kBurstSize = 16_KiB;

  // Faulty clients: their connections are cut by seeded schedules; with a
  // StreamFactory they reconnect and replay (redials come up clean). They
  // may ultimately give up (bounded attempts) but must never hang or corrupt
  // others.
  for (int id = 0; id < kFaulty; ++id) {
    auto stream_plan = std::make_shared<FaultPlan>(seed + 100 + static_cast<std::uint64_t>(id));
    stream_plan->add({.op = OpKind::stream_write, .probability = 0.03, .error = Errc::shutdown});
    TestCluster::ClientSpec spec;
    spec.cfg.roundtrip_timeout_ms = 10'000;
    spec.cfg.reconnect_attempts = 4;
    spec.cfg.reconnect_backoff_ms = 1;
    spec.stream_plan = std::move(stream_plan);
    spec.reconnectable = true;
    tc.add_client(std::move(spec));
  }
  // Healthy clients: clean connections; every call must succeed and every
  // acknowledged byte must be readable afterwards.
  for (int id = 0; id < kHealthy; ++id) {
    TestCluster::ClientSpec spec;
    spec.cfg.roundtrip_timeout_ms = 30'000;
    spec.reconnectable = true;
    tc.add_client(std::move(spec));
  }

  std::vector<std::thread> threads;
  std::vector<int> healthy_ok(kHealthy, 0);

  for (int id = 0; id < kFaulty; ++id) {
    threads.emplace_back([&, id] {
      auto& client = tc.client(static_cast<std::size_t>(id));
      const int fd = 10 + id;
      if (!client.open(fd, "faulty" + std::to_string(id)).is_ok()) return;
      const auto data = pattern(kBurstSize, seed + static_cast<std::uint64_t>(id));
      for (int i = 0; i < kBursts; ++i) {
        if (!client.write(fd, static_cast<std::uint64_t>(i) * data.size(), data).is_ok()) return;
      }
      (void)client.fsync(fd);
      (void)client.close(fd);
    });
  }

  for (int id = 0; id < kHealthy; ++id) {
    threads.emplace_back([&, id] {
      auto& client = tc.client(static_cast<std::size_t>(kFaulty + id));
      const int fd = 50 + id;
      const std::string path = "healthy" + std::to_string(id);
      ASSERT_TRUE(client.open(fd, path).is_ok());
      const auto data = pattern(kBurstSize, seed + 50 + static_cast<std::uint64_t>(id));
      for (int i = 0; i < kBursts; ++i) {
        ASSERT_TRUE(client.write(fd, static_cast<std::uint64_t>(i) * data.size(), data).is_ok())
            << "healthy client " << id << " write " << i;
      }
      ASSERT_TRUE(client.fsync(fd).is_ok()) << "healthy client " << id;
      // Read-back integrity through the live server (bb read-your-writes).
      for (int i = 0; i < kBursts; ++i) {
        auto r = client.read(fd, static_cast<std::uint64_t>(i) * data.size(), data.size());
        ASSERT_TRUE(r.is_ok()) << "healthy client " << id << " read " << i;
        ASSERT_EQ(r.value(), data) << "healthy client " << id << " burst " << i << " corrupted";
      }
      ASSERT_TRUE(client.close(fd).is_ok());
      healthy_ok[static_cast<std::size_t>(id)] = 1;
    });
  }

  for (auto& t : threads) t.join();

  // No hangs: the whole storm fits comfortably under a minute.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 60s) << "chaos run took suspiciously long";
  for (int id = 0; id < kHealthy; ++id) {
    EXPECT_EQ(healthy_ok[static_cast<std::size_t>(id)], 1)
        << "healthy client " << id << " did not complete";
  }

  // Quiesce, then check the ledgers: no leaked BML leases, no leaked cache
  // leases, and the healthy files fully landed in the terminal backend.
  tc.stop();
  const auto st = tc.server().stats();
  EXPECT_EQ(st.bml_in_use, 0u) << "BML pool leaked a lease";
  EXPECT_EQ(st.bb_cached_bytes, 0u) << "burst-buffer cache leaked a lease";

  for (int id = 0; id < kHealthy; ++id) {
    const auto all = tc.snapshot("healthy" + std::to_string(id));
    const auto data = pattern(kBurstSize, seed + 50 + static_cast<std::uint64_t>(id));
    ASSERT_EQ(all.size(), static_cast<std::size_t>(kBursts) * kBurstSize)
        << "healthy file " << id << " truncated";
    for (int i = 0; i < kBursts; ++i) {
      EXPECT_TRUE(std::equal(data.begin(), data.end(),
                             all.begin() + static_cast<std::ptrdiff_t>(i) *
                                 static_cast<std::ptrdiff_t>(kBurstSize)))
          << "healthy file " << id << " burst " << i << " corrupted after drain";
    }
  }
}

}  // namespace
}  // namespace iofwd::fault
