// FaultPlan semantics: deterministic seeded schedules, nth/probability
// triggers, transient bursts vs permanent latching, latency injection.
#include "fault/plan.hpp"

#include <gtest/gtest.h>

namespace iofwd::fault {
namespace {

TEST(FaultPlan, EmptyPlanNeverFires) {
  FaultPlan plan;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(plan.next(OpKind::write).status.is_ok());
  }
  EXPECT_EQ(plan.fired(), 0u);
  EXPECT_EQ(plan.calls(OpKind::write), 100u);
}

TEST(FaultPlan, NthRuleFiresExactlyOnce) {
  FaultPlan plan;
  plan.add({.op = OpKind::write, .nth = 3, .error = Errc::io_error});
  EXPECT_TRUE(plan.next(OpKind::write).status.is_ok());
  EXPECT_TRUE(plan.next(OpKind::write).status.is_ok());
  EXPECT_EQ(plan.next(OpKind::write).status.code(), Errc::io_error);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(plan.next(OpKind::write).status.is_ok()) << "transient nth rule must expire";
  }
  EXPECT_EQ(plan.fired(OpKind::write), 1u);
}

TEST(FaultPlan, NthRuleIgnoresOtherOpKinds) {
  FaultPlan plan;
  plan.add({.op = OpKind::fsync, .nth = 1, .error = Errc::io_error});
  EXPECT_TRUE(plan.next(OpKind::write).status.is_ok());
  EXPECT_TRUE(plan.next(OpKind::read).status.is_ok());
  EXPECT_EQ(plan.next(OpKind::fsync).status.code(), Errc::io_error);
}

TEST(FaultPlan, TransientBurstFiresForConsecutiveCalls) {
  FaultPlan plan;
  plan.add({.op = OpKind::write, .nth = 2, .burst = 3, .error = Errc::timed_out});
  EXPECT_TRUE(plan.next(OpKind::write).status.is_ok());
  EXPECT_EQ(plan.next(OpKind::write).status.code(), Errc::timed_out);
  EXPECT_EQ(plan.next(OpKind::write).status.code(), Errc::timed_out);
  EXPECT_EQ(plan.next(OpKind::write).status.code(), Errc::timed_out);
  EXPECT_TRUE(plan.next(OpKind::write).status.is_ok());
  EXPECT_EQ(plan.fired(OpKind::write), 3u);
}

TEST(FaultPlan, PermanentNthRuleLatches) {
  FaultPlan plan;
  plan.add({.op = OpKind::write, .nth = 2, .transient = false, .error = Errc::io_error});
  EXPECT_TRUE(plan.next(OpKind::write).status.is_ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(plan.next(OpKind::write).status.code(), Errc::io_error)
        << "permanent rule must keep firing once triggered";
  }
}

TEST(FaultPlan, WildcardMatchesEveryKind) {
  FaultPlan plan;
  plan.add({.op = OpKind::any, .probability = 1.0, .transient = false, .error = Errc::io_error});
  EXPECT_FALSE(plan.next(OpKind::open).status.is_ok());
  EXPECT_FALSE(plan.next(OpKind::stream_read).status.is_ok());
  EXPECT_FALSE(plan.next(OpKind::size).status.is_ok());
}

TEST(FaultPlan, ProbabilityScheduleIsDeterministicForASeed) {
  auto run = [](std::uint64_t seed) {
    FaultPlan plan(seed);
    plan.add({.op = OpKind::write, .probability = 0.3, .error = Errc::io_error});
    std::vector<bool> fired;
    fired.reserve(200);
    for (int i = 0; i < 200; ++i) fired.push_back(!plan.next(OpKind::write).status.is_ok());
    return fired;
  };
  EXPECT_EQ(run(42), run(42)) << "same seed must reproduce the schedule bit-for-bit";
  EXPECT_NE(run(42), run(43)) << "different seeds should differ";
}

TEST(FaultPlan, ProbabilityRoughlyMatchesRate) {
  FaultPlan plan(7);
  plan.add({.op = OpKind::write, .probability = 0.25, .error = Errc::io_error});
  const int n = 4000;
  for (int i = 0; i < n; ++i) (void)plan.next(OpKind::write);
  const double rate = static_cast<double>(plan.fired(OpKind::write)) / n;
  EXPECT_NEAR(rate, 0.25, 0.05);
}

TEST(FaultPlan, FirstMatchingRuleWins) {
  FaultPlan plan;
  plan.add({.op = OpKind::write, .nth = 1, .error = Errc::timed_out});
  plan.add({.op = OpKind::write, .nth = 1, .error = Errc::io_error});
  EXPECT_EQ(plan.next(OpKind::write).status.code(), Errc::timed_out);
}

TEST(FaultPlan, LatencyOnlyRuleSlowsWithoutFailing) {
  FaultPlan plan;
  plan.add({.op = OpKind::read,
            .nth = 1,
            .error = Errc::ok,
            .latency = std::chrono::microseconds(500)});
  Injection inj = plan.next(OpKind::read);
  EXPECT_TRUE(inj.status.is_ok());
  EXPECT_EQ(inj.latency.count(), 500);
  EXPECT_TRUE(inj.fired());
  EXPECT_EQ(plan.fired(), 0u) << "pure latency is not an injected error";
}

TEST(FaultPlan, ClearDisarmsAndResetsCounters) {
  FaultPlan plan;
  plan.fail_always(OpKind::write, Errc::io_error);
  EXPECT_FALSE(plan.next(OpKind::write).status.is_ok());
  plan.clear();
  EXPECT_TRUE(plan.next(OpKind::write).status.is_ok());
  EXPECT_EQ(plan.fired(), 0u);
  EXPECT_EQ(plan.calls(OpKind::write), 1u) << "calls restart after clear()";
}

TEST(FaultPlan, FailAlwaysFiresUntilCleared) {
  FaultPlan plan;
  plan.fail_always(OpKind::fsync, Errc::io_error);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(plan.next(OpKind::fsync).status.code(), Errc::io_error);
  }
  EXPECT_TRUE(plan.next(OpKind::write).status.is_ok());
}

TEST(FaultPlan, OpKindNamesAreDistinct) {
  for (std::size_t a = 0; a < kOpKinds; ++a) {
    for (std::size_t b = a + 1; b < kOpKinds; ++b) {
      EXPECT_STRNE(to_string(static_cast<OpKind>(a)), to_string(static_cast<OpKind>(b)));
    }
  }
}

}  // namespace
}  // namespace iofwd::fault
