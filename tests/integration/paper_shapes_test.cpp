// Paper-shape regression suite.
//
// Asserts the headline shapes of every reproduced figure with explicit
// tolerances, so a calibration or scheduler change that silently breaks the
// reproduction fails CI instead of EXPERIMENTS.md. Iteration counts are
// reduced relative to the bench binaries; tolerances account for that.
#include <gtest/gtest.h>

#include "bgp/machine.hpp"
#include "wl/stream.hpp"

namespace iofwd {
namespace {

using proto::Mechanism;

double stream(Mechanism m, int cns, std::uint64_t msg = 1_MiB, int iters = 120,
              proto::SinkTarget::Kind sink = proto::SinkTarget::Kind::da_memory,
              int workers = 4) {
  wl::StreamParams p;
  p.cns_per_pset = cns;
  p.message_bytes = msg;
  p.iterations = iters;
  p.sink = sink;
  proto::ForwarderConfig fc;
  fc.workers = workers;
  return wl::run_stream(m, bgp::MachineConfig::intrepid(), fc, p).throughput_mib_s;
}

// ---- Fig. 4: collective network ------------------------------------------

TEST(PaperShapes, Fig4_TreePeaksNear680AtMidCounts) {
  const double t8 = stream(Mechanism::ciod, 8, 1_MiB, 120, proto::SinkTarget::Kind::dev_null);
  EXPECT_NEAR(t8, 690, 40) << "paper: ~680 MiB/s at 4-8 CNs";
}

TEST(PaperShapes, Fig4_DegradesBeyond32Cns) {
  const double t8 = stream(Mechanism::ciod, 8, 1_MiB, 120, proto::SinkTarget::Kind::dev_null);
  const double t64 = stream(Mechanism::ciod, 64, 1_MiB, 120, proto::SinkTarget::Kind::dev_null);
  EXPECT_LT(t64, 0.95 * t8) << "paper: performance reduces beyond 32 CNs";
}

TEST(PaperShapes, Fig4_SingleCnIsInjectionLimited) {
  const double t1 = stream(Mechanism::zoid, 1, 1_MiB, 120, proto::SinkTarget::Kind::dev_null);
  EXPECT_LT(t1, 500) << "one CN cannot saturate the tree";
}

TEST(PaperShapes, Fig4_ZoidEdgesCiod) {
  const double ciod = stream(Mechanism::ciod, 8, 1_MiB, 120, proto::SinkTarget::Kind::dev_null);
  const double zoid = stream(Mechanism::zoid, 8, 1_MiB, 120, proto::SinkTarget::Kind::dev_null);
  EXPECT_GT(zoid, ciod) << "paper: ~2% improvement";
  EXPECT_LT(zoid, 1.10 * ciod) << "...but only a few percent";
}

// ---- Fig. 5: external network (config-level model) ------------------------

TEST(PaperShapes, Fig5_ExternalThreadScaling) {
  const auto cfg = bgp::MachineConfig::intrepid();
  EXPECT_NEAR(cfg.external_peak_mib_s(1), 307, 5);
  EXPECT_NEAR(cfg.external_peak_mib_s(4), 791, 10);
  EXPECT_LT(cfg.external_peak_mib_s(8), cfg.external_peak_mib_s(4));
}

// ---- Fig. 6: end-to-end baselines ------------------------------------------

TEST(PaperShapes, Fig6_SyncPeakNearTwoThirdsOfBound) {
  const auto cfg = bgp::MachineConfig::intrepid();
  const double peak = stream(Mechanism::ciod, 4);
  const double eff = peak / cfg.end_to_end_bound_mib_s();
  EXPECT_NEAR(eff, 0.63, 0.08) << "paper: ~66% of the achievable maximum";
}

TEST(PaperShapes, Fig6_DeclinesWithCnCount) {
  EXPECT_LT(stream(Mechanism::zoid, 64), stream(Mechanism::zoid, 4));
}

// ---- Fig. 9: the mechanism ladder ------------------------------------------

TEST(PaperShapes, Fig9_ImprovementRatiosAt32Cns) {
  const double ciod = stream(Mechanism::ciod, 32);
  const double zoid = stream(Mechanism::zoid, 32);
  const double async = stream(Mechanism::zoid_sched_async, 32);
  // Paper: +57% over CIOD, +40% over ZOID.
  EXPECT_NEAR(async / ciod, 1.57, 0.15);
  EXPECT_NEAR(async / zoid, 1.40, 0.15);
}

TEST(PaperShapes, Fig9_AsyncNearTheBound) {
  const auto cfg = bgp::MachineConfig::intrepid();
  const double async = stream(Mechanism::zoid_sched_async, 32, 1_MiB, 200);
  EXPECT_GT(async / cfg.end_to_end_bound_mib_s(), 0.85) << "paper: ~95% of its 650 bound";
}

// ---- Fig. 10: message-size behaviour ----------------------------------------

TEST(PaperShapes, Fig10_GainsPersistAcrossSizes) {
  for (std::uint64_t msg : {256_KiB, 1_MiB, 4_MiB}) {
    const double zoid = stream(Mechanism::zoid, 64, msg, 60);
    const double async = stream(Mechanism::zoid_sched_async, 64, msg, 60);
    EXPECT_GT(async, 1.2 * zoid) << "msg=" << msg;
  }
}

TEST(PaperShapes, Fig10_SmallMessagesGatedByControlExchange) {
  const double small = stream(Mechanism::zoid, 64, 64_KiB, 120);
  const double large = stream(Mechanism::zoid, 64, 1_MiB, 120);
  EXPECT_LT(small, 0.8 * large);
}

// ---- Fig. 11: worker-pool size ----------------------------------------------

TEST(PaperShapes, Fig11_OneWorkerCappedByOneCore) {
  const double w1 = stream(Mechanism::zoid_sched_async, 64, 1_MiB, 120,
                           proto::SinkTarget::Kind::da_memory, 1);
  EXPECT_NEAR(w1, 300, 40) << "paper: a single thread cannot exceed ~300 MiB/s";
}

TEST(PaperShapes, Fig11_FourWorkersIsTheSweetSpot) {
  const double w2 = stream(Mechanism::zoid_sched_async, 64, 1_MiB, 120,
                           proto::SinkTarget::Kind::da_memory, 2);
  const double w4 = stream(Mechanism::zoid_sched_async, 64, 1_MiB, 120,
                           proto::SinkTarget::Kind::da_memory, 4);
  const double w8 = stream(Mechanism::zoid_sched_async, 64, 1_MiB, 120,
                           proto::SinkTarget::Kind::da_memory, 8);
  EXPECT_GT(w4, w2);
  EXPECT_LT(w8, w4) << "paper: 8 threads regress vs 4 on the 4-core ION";
}

// ---- Fig. 12: weak scaling ---------------------------------------------------

TEST(PaperShapes, Fig12_ThroughputScalesWithIonCount) {
  auto run = [](int psets) {
    auto cfg = bgp::MachineConfig::intrepid();
    cfg.num_psets = psets;
    cfg.num_da_nodes = 20;
    wl::StreamParams p;
    p.iterations = 40;
    p.distribute_das = true;
    return wl::run_stream(Mechanism::zoid_sched_async, cfg, {}, p).throughput_mib_s;
  };
  const double one = run(1);
  const double four = run(4);
  EXPECT_GT(four, 3.5 * one) << "every pset adds its own tree + ION";
}

}  // namespace
}  // namespace iofwd
