// Randomized cross-stack integration tests.
//
// A seeded generator drives random operation mixes through (a) every
// simulated forwarding mechanism and (b) the real runtime, then checks
// system invariants:
//   * every accepted byte is delivered exactly once;
//   * BML / ION memory accounting returns to zero;
//   * the simulation is deterministic per seed;
//   * the runtime's stored data matches a golden in-memory model.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "bgp/machine.hpp"
#include "core/rng.hpp"
#include "core/units.hpp"
#include "proto/queue_forwarder.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"
#include "sim/sync.hpp"
#include "wl/stream.hpp"

namespace iofwd {
namespace {

// ---------------------------------------------------------------------------
// Simulated stack
// ---------------------------------------------------------------------------

struct SimFuzzResult {
  std::uint64_t issued_bytes = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t failed_ops = 0;
  sim::SimTime end_time = 0;
};

sim::Proc<void> fuzz_cn(bgp::Machine& m, proto::Forwarder& fwd, int cn, Rng rng, int ops,
                        SimFuzzResult& out) {
  auto& eng = m.engine();
  const int fd = 10 + cn;
  (void)co_await fwd.open(cn, fd);
  for (int i = 0; i < ops; ++i) {
    // Random think time, size, sink, direction, priority.
    co_await sim::Delay{eng, static_cast<sim::SimTime>(rng.below(2'000'000))};
    const std::uint64_t bytes = 1 + rng.below(2_MiB);
    proto::SinkTarget sink;
    const auto kind = rng.below(3);
    sink.kind = kind == 0   ? proto::SinkTarget::Kind::dev_null
                : kind == 1 ? proto::SinkTarget::Kind::da_memory
                            : proto::SinkTarget::Kind::storage;
    sink.block = rng.below(1 << 20);
    sink.priority = static_cast<int>(rng.below(3));
    Status st;
    if (rng.below(4) == 0) {
      st = co_await fwd.read(cn, fd, bytes, sink);
    } else {
      st = co_await fwd.write(cn, fd, bytes, sink);
    }
    if (st.is_ok()) {
      out.issued_bytes += bytes;
    } else {
      ++out.failed_ops;
    }
  }
  (void)co_await fwd.close(cn, fd);
}

SimFuzzResult run_sim_fuzz(proto::Mechanism mech, std::uint64_t seed, int cns, int ops,
                           proto::ForwarderConfig fc = {}) {
  sim::Engine eng;
  bgp::Machine machine(eng, bgp::MachineConfig::intrepid());
  proto::RunMetrics metrics;
  auto fwd = proto::make_forwarder(mech, machine, machine.pset(0), metrics, fc);

  SimFuzzResult out;
  eng.spawn([](bgp::Machine& m, proto::Forwarder& f, Rng root, int n_cns, int n_ops,
               SimFuzzResult& res) -> sim::Proc<void> {
    std::vector<sim::Proc<void>> procs;
    for (int cn = 0; cn < n_cns; ++cn) {
      procs.push_back(fuzz_cn(m, f, cn, root.fork(), n_ops, res));
    }
    co_await sim::when_all(m.engine(), std::move(procs));
    co_await f.drain();
    f.shutdown();
  }(machine, *fwd, Rng(seed), cns, ops, out));
  eng.run();

  out.delivered_bytes = metrics.bytes_delivered;
  out.end_time = eng.now();

  // Post-conditions that must hold for every mechanism and seed:
  EXPECT_EQ(machine.pset(0).ion().memory().available(),
            static_cast<std::int64_t>(machine.config().ion_memory_bytes))
      << "ION memory leaked";
  if (auto* qf = dynamic_cast<proto::QueueForwarder*>(fwd.get())) {
    EXPECT_EQ(qf->bml().in_use(), 0u) << "BML leaked";
  }
  return out;
}

class SimFuzz : public ::testing::TestWithParam<std::tuple<proto::Mechanism, std::uint64_t>> {};

TEST_P(SimFuzz, ConservationAndCleanup) {
  const auto [mech, seed] = GetParam();
  const auto r = run_sim_fuzz(mech, seed, /*cns=*/12, /*ops=*/15);
  EXPECT_EQ(r.failed_ops, 0u);
  EXPECT_EQ(r.delivered_bytes, r.issued_bytes) << "bytes lost or duplicated";
  EXPECT_GT(r.end_time, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimFuzz,
    ::testing::Combine(::testing::Values(proto::Mechanism::ciod, proto::Mechanism::zoid,
                                         proto::Mechanism::zoid_sched,
                                         proto::Mechanism::zoid_sched_async),
                       ::testing::Values(1u, 42u, 1337u)),
    [](const auto& info) {
      std::string s = proto::to_string(std::get<0>(info.param)) + "_seed" +
                      std::to_string(std::get<1>(info.param));
      for (auto& ch : s) {
        if (ch == '+') ch = '_';
      }
      return s;
    });

TEST(SimFuzz, DeterministicPerSeed) {
  const auto a = run_sim_fuzz(proto::Mechanism::zoid_sched_async, 7, 8, 10);
  const auto b = run_sim_fuzz(proto::Mechanism::zoid_sched_async, 7, 8, 10);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
}

TEST(SimFuzz, DifferentSeedsDiffer) {
  const auto a = run_sim_fuzz(proto::Mechanism::zoid_sched_async, 7, 8, 10);
  const auto b = run_sim_fuzz(proto::Mechanism::zoid_sched_async, 8, 8, 10);
  EXPECT_NE(a.end_time, b.end_time);
}

TEST(SimFuzz, PoliciesPreserveConservation) {
  for (auto pol : {proto::QueuePolicy::sjf, proto::QueuePolicy::priority}) {
    proto::ForwarderConfig fc;
    fc.policy = pol;
    const auto r = run_sim_fuzz(proto::Mechanism::zoid_sched_async, 99, 10, 12, fc);
    EXPECT_EQ(r.delivered_bytes, r.issued_bytes) << proto::to_string(pol);
  }
}

TEST(SimFuzz, TinyBmlStillConserves) {
  proto::ForwarderConfig fc;
  fc.bml_bytes = 1_MiB;  // heavy staging pressure
  const auto r = run_sim_fuzz(proto::Mechanism::zoid_sched_async, 5, 10, 12, fc);
  EXPECT_EQ(r.delivered_bytes, r.issued_bytes);
}

// ---------------------------------------------------------------------------
// Real runtime
// ---------------------------------------------------------------------------

TEST(RtFuzz, RandomOpsMatchGoldenModel) {
  for (const std::uint64_t seed : {11u, 23u}) {
    auto backend = std::make_unique<rt::MemBackend>();
    auto* mem = backend.get();
    rt::ServerConfig cfg;
    cfg.workers = 1;  // FIFO execution: overlapping writes apply in program order
    rt::IonServer server(std::move(backend), cfg);
    auto [se, ce] = rt::InProcTransport::make_pair();
    server.serve(std::move(se));
    rt::Client client(std::move(ce));

    Rng rng(seed);
    std::map<std::string, std::vector<std::byte>> golden;
    ASSERT_TRUE(client.open(1, "fuzz").is_ok());
    auto& gfile = golden["fuzz"];

    for (int i = 0; i < 200; ++i) {
      const std::uint64_t off = rng.below(1 << 20);
      const std::uint64_t len = 1 + rng.below(64 * 1024);
      if (rng.below(3) == 0) {
        // Read and compare against the golden model.
        auto r = client.read(1, off, len);
        ASSERT_TRUE(r.is_ok());
        std::vector<std::byte> expect;
        if (off < gfile.size()) {
          const auto n = std::min<std::uint64_t>(len, gfile.size() - off);
          expect.assign(gfile.begin() + static_cast<std::ptrdiff_t>(off),
                        gfile.begin() + static_cast<std::ptrdiff_t>(off + n));
        }
        ASSERT_EQ(r.value(), expect) << "read mismatch at op " << i;
      } else {
        std::vector<std::byte> data(len);
        for (auto& b : data) b = static_cast<std::byte>(rng.next());
        ASSERT_TRUE(client.write(1, off, data).is_ok());
        if (gfile.size() < off + len) gfile.resize(off + len);
        std::copy(data.begin(), data.end(),
                  gfile.begin() + static_cast<std::ptrdiff_t>(off));
      }
    }
    ASSERT_TRUE(client.fsync(1).is_ok());
    EXPECT_EQ(mem->snapshot("fuzz"), gfile);
    ASSERT_TRUE(client.close(1).is_ok());
    server.stop();
  }
}

}  // namespace
}  // namespace iofwd
