#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace iofwd {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowIsInRange) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowZeroBound) {
  Rng r(9);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, Uniform01Range) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng r(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, RangeInclusive) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(42);
  Rng child = parent.fork();
  // Child stream differs from the parent continuing.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRoughlyUniform) {
  Rng r(17);
  constexpr int buckets = 10;
  int counts[buckets] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.below(buckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / buckets, n / buckets * 0.1);
  }
}

}  // namespace
}  // namespace iofwd
