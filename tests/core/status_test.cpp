#include "core/status.hpp"

#include <gtest/gtest.h>

namespace iofwd {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), Errc::ok);
}

TEST(Status, ErrorCarriesMessage) {
  Status s(Errc::io_error, "disk on fire");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), Errc::io_error);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.to_string(), "io_error: disk on fire");
}

TEST(Status, EqualityIgnoresMessage) {
  EXPECT_EQ(Status(Errc::io_error, "a"), Status(Errc::io_error, "b"));
  EXPECT_FALSE(Status(Errc::io_error, "a") == Status(Errc::no_memory, "a"));
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(Errc::internal); ++c) {
    EXPECT_NE(errc_name(static_cast<Errc>(c)), "unknown") << "code " << c;
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.code(), Errc::ok);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsStatus) {
  Result<int> r = Status(Errc::bad_descriptor, "fd 7");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::bad_descriptor);
  EXPECT_EQ(r.status().message(), "fd 7");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ErrcConstructor) {
  Result<std::string> r(Errc::no_memory, "pool empty");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::no_memory);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(Result, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

}  // namespace
}  // namespace iofwd
