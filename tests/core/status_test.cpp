#include "core/status.hpp"

#include <gtest/gtest.h>

namespace iofwd {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), Errc::ok);
}

TEST(Status, ErrorCarriesMessage) {
  Status s(Errc::io_error, "disk on fire");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), Errc::io_error);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.to_string(), "io_error: disk on fire");
}

TEST(Status, EqualityIgnoresMessage) {
  EXPECT_EQ(Status(Errc::io_error, "a"), Status(Errc::io_error, "b"));
  EXPECT_FALSE(Status(Errc::io_error, "a") == Status(Errc::no_memory, "a"));
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c < kErrcCount; ++c) {
    EXPECT_NE(errc_name(static_cast<Errc>(c)), "unknown") << "code " << c;
  }
}

TEST(Status, ErrcNameRoundTripsEveryEnumerator) {
  for (std::int32_t c = 0; c < kErrcCount; ++c) {
    const auto e = static_cast<Errc>(c);
    const auto back = errc_from_name(errc_name(e));
    ASSERT_TRUE(back.has_value()) << "no inverse for " << errc_name(e);
    EXPECT_EQ(*back, e) << "round-trip mismatch for " << errc_name(e);
  }
}

TEST(Status, ErrcNamesAreUnique) {
  // A copy-pasted case label in errc_name would alias two codes; the
  // round-trip above would then still "succeed" for one of them.
  for (std::int32_t a = 0; a < kErrcCount; ++a) {
    for (std::int32_t b = a + 1; b < kErrcCount; ++b) {
      EXPECT_NE(errc_name(static_cast<Errc>(a)), errc_name(static_cast<Errc>(b)))
          << "codes " << a << " and " << b << " share a name";
    }
  }
}

TEST(Status, ErrcFromNameRejectsUnknown) {
  EXPECT_FALSE(errc_from_name("").has_value());
  EXPECT_FALSE(errc_from_name("unknown").has_value());
  EXPECT_FALSE(errc_from_name("IO_ERROR").has_value()) << "lookup is case-sensitive";
  EXPECT_FALSE(errc_from_name("io_error ").has_value());
}

TEST(Status, ToStringOmitsSeparatorWithoutMessage) {
  EXPECT_EQ(Status(Errc::timed_out, "").to_string(), "timed_out");
  EXPECT_EQ(Status::ok().to_string(), "ok");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.code(), Errc::ok);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsStatus) {
  Result<int> r = Status(Errc::bad_descriptor, "fd 7");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::bad_descriptor);
  EXPECT_EQ(r.status().message(), "fd 7");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ErrcConstructor) {
  Result<std::string> r(Errc::no_memory, "pool empty");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::no_memory);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(Result, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(Result, StatusPropagatesMessageThroughLayers) {
  // The common decorator pattern: a Result error is rewrapped as a Status
  // and back; code and message must survive every hop.
  Result<int> inner = Status(Errc::io_error, "sector 12 unreadable");
  Status hop = inner.status();
  Result<std::string> outer = hop;
  EXPECT_EQ(outer.code(), Errc::io_error);
  EXPECT_EQ(outer.status().message(), "sector 12 unreadable");
  EXPECT_EQ(outer.status().to_string(), "io_error: sector 12 unreadable");
}

TEST(Result, OkResultYieldsOkStatusWithEmptyMessage) {
  Result<int> r = 3;
  EXPECT_TRUE(r.status().is_ok());
  EXPECT_TRUE(r.status().message().empty());
}

}  // namespace
}  // namespace iofwd
