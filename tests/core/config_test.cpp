#include "core/config.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace iofwd {
namespace {

TEST(Config, DefaultsWhenUnset) {
  Config c;
  EXPECT_EQ(c.get("nope", "dflt"), "dflt");
  EXPECT_EQ(c.get_int("nope", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("nope", 2.5), 2.5);
  EXPECT_TRUE(c.get_bool("nope", true));
  EXPECT_FALSE(c.contains("nope"));
}

TEST(Config, SetAndGet) {
  Config c;
  c.set("ion.workers", "4");
  EXPECT_EQ(c.get_int("ion.workers", 0), 4);
  EXPECT_TRUE(c.contains("ion.workers"));
  c.set_int("bml.bytes", 1073741824);
  EXPECT_EQ(c.get_int("bml.bytes", 0), 1073741824);
  c.set_double("net.bw", 731.5);
  EXPECT_DOUBLE_EQ(c.get_double("net.bw", 0), 731.5);
}

TEST(Config, BoolParsing) {
  Config c;
  for (const char* t : {"1", "true", "Yes", "ON"}) {
    c.set("flag", t);
    EXPECT_TRUE(c.get_bool("flag", false)) << t;
  }
  for (const char* f : {"0", "false", "No", "off"}) {
    c.set("flag", f);
    EXPECT_FALSE(c.get_bool("flag", true)) << f;
  }
  c.set("flag", "banana");
  EXPECT_TRUE(c.get_bool("flag", true));  // unparseable -> default
}

TEST(Config, BadIntFallsBack) {
  Config c;
  c.set("n", "not-a-number");
  EXPECT_EQ(c.get_int("n", -3), -3);
}

TEST(Config, EnvOverridesExplicit) {
  // Mirrors the paper: worker count is controlled by an environment variable
  // at job launch (Sec. IV).
  ::setenv("IOFWD_ION_WORKERS", "8", 1);
  Config c;
  c.set("ion.workers", "4");
  EXPECT_EQ(c.get_int("ion.workers", 0), 8);
  EXPECT_TRUE(c.contains("ion.workers"));
  ::unsetenv("IOFWD_ION_WORKERS");
  EXPECT_EQ(c.get_int("ion.workers", 0), 4);
}

TEST(Config, ParseOverride) {
  Config c;
  EXPECT_TRUE(c.parse_override("a.b=xyz"));
  EXPECT_EQ(c.get("a.b"), "xyz");
  EXPECT_FALSE(c.parse_override("noequals"));
  EXPECT_FALSE(c.parse_override("=v"));
  EXPECT_TRUE(c.parse_override("k="));  // empty value is allowed
  EXPECT_EQ(c.get("k", "d"), "");       // explicit empty value wins over default
}

}  // namespace
}  // namespace iofwd
