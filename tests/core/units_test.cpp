#include "core/units.hpp"

#include <gtest/gtest.h>

namespace iofwd {
namespace {

TEST(Units, Literals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(2_GiB, 2147483648u);
}

TEST(Units, TimeLiterals) {
  EXPECT_EQ(5_us, 5000);
  EXPECT_EQ(3_ms, 3000000);
  EXPECT_EQ(2_sec, 2000000000);
}

TEST(Units, RateRoundTrip) {
  const double mib_s = 731.0;
  EXPECT_NEAR(bytes_per_ns_to_mib_per_s(mib_per_s_to_bytes_per_ns(mib_s)), mib_s, 1e-9);
}

TEST(Units, RateMagnitude) {
  // 1 MiB/s == 1048576 bytes per 1e9 ns.
  EXPECT_NEAR(mib_per_s_to_bytes_per_ns(1.0), 1048576.0 / 1e9, 1e-12);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1024), "1 KiB");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(1048576), "1 MiB");
  EXPECT_EQ(format_bytes(3u << 30), "3 GiB");
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(format_duration_ns(12), "12 ns");
  EXPECT_EQ(format_duration_ns(1500), "1.50 us");
  EXPECT_EQ(format_duration_ns(2500000), "2.50 ms");
  EXPECT_EQ(format_duration_ns(1250000000), "1.250 s");
}

TEST(Units, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
  EXPECT_EQ(next_pow2((1ull << 40) + 1), 1ull << 41);
}

TEST(Units, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(4097));
  EXPECT_FALSE(is_pow2(3));
}

class NextPow2Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NextPow2Property, ResultIsPow2AndTight) {
  const auto v = GetParam();
  const auto p = next_pow2(v);
  EXPECT_TRUE(is_pow2(p));
  EXPECT_GE(p, v);
  if (p > 1) { EXPECT_LT(p / 2, std::max<std::uint64_t>(v, 1)); }
}

INSTANTIATE_TEST_SUITE_P(Sweep, NextPow2Property,
                         ::testing::Values(0u, 1u, 2u, 5u, 7u, 63u, 64u, 65u, 100u, 255u, 257u,
                                           4095u, 4096u, 4097u, 1u << 20, (1u << 20) + 1));

}  // namespace
}  // namespace iofwd
