#include "core/table.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iofwd {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "MiB/s"});
  t.add_row({"CIOD", "420.0"});
  t.add_row({"ZOID+async", "618.3"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("CIOD"), std::string::npos);
  EXPECT_NE(out.find("618.3"), std::string::npos);
  // Frame lines present.
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW({ auto s = t.render(); });
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(5.0, 0), "5");
  EXPECT_EQ(Table::num(std::nan(""), 1), "-");
  EXPECT_EQ(Table::pct(95.4), "95%");
}

TEST(BarChart, ScalesToMax) {
  BarChart c("title", 10);
  c.add("full", 100);
  c.add("half", 50);
  c.add("zero", 0);
  const std::string out = c.render();
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);
  EXPECT_NE(out.find("title"), std::string::npos);
}

TEST(BarChart, EmptyIsJustTitle) {
  BarChart c("nothing");
  EXPECT_EQ(c.render(), "nothing\n");
}

TEST(GroupedChart, RendersAllSeriesPerGroup) {
  GroupedChart g("fig", {"CIOD", "ZOID"}, 20);
  g.add_group("n=4", {100, 120});
  g.add_group("n=8", {90, 130});
  const std::string out = g.render();
  EXPECT_NE(out.find("n=4"), std::string::npos);
  EXPECT_NE(out.find("n=8"), std::string::npos);
  // Each group lists both series.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1 + 2 * 3);
}

TEST(GroupedChart, MissingValuesPadToZero) {
  GroupedChart g("fig", {"a", "b", "c"});
  g.add_group("x", {1.0});
  EXPECT_NO_THROW({ auto s = g.render(); });
}

}  // namespace
}  // namespace iofwd
