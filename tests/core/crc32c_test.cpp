#include "core/crc32c.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "core/rng.hpp"

namespace iofwd {
namespace {

// One-shot software CRC via the raw-state extend API: state 0 == fresh CRC.
std::uint32_t sw_oneshot(const void* data, std::size_t n) {
  return crc32c_sw_extend(0, data, n);
}

// RFC 3720 appendix B.4 reference vectors (iSCSI CRC32C).
TEST(Crc32c, KnownVectors) {
  EXPECT_EQ(crc32c(nullptr, 0), 0x00000000u);
  EXPECT_EQ(crc32c("a", 1), 0xC1D04330u);
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);

  std::vector<unsigned char> buf(32, 0x00);
  EXPECT_EQ(crc32c(buf.data(), buf.size()), 0x8A9136AAu);

  std::fill(buf.begin(), buf.end(), 0xFF);
  EXPECT_EQ(crc32c(buf.data(), buf.size()), 0x62A8AB43u);

  std::iota(buf.begin(), buf.end(), 0);  // 0x00..0x1F ascending
  EXPECT_EQ(crc32c(buf.data(), buf.size()), 0x46DD794Eu);

  for (int i = 0; i < 32; ++i) buf[static_cast<std::size_t>(i)] = static_cast<unsigned char>(31 - i);
  EXPECT_EQ(crc32c(buf.data(), buf.size()), 0x113FDB5Cu);
}

TEST(Crc32c, SoftwareMatchesKnownVectors) {
  // The software path must be correct even on machines where hardware
  // dispatch wins — it is the cross-check for the hw instruction.
  EXPECT_EQ(sw_oneshot("123456789", 9), 0xE3069283u);
  EXPECT_EQ(sw_oneshot("a", 1), 0xC1D04330u);
  EXPECT_EQ(sw_oneshot(nullptr, 0), 0x00000000u);
}

TEST(Crc32c, DispatchedMatchesSoftwareAcrossSizesAndAlignments) {
  Rng rng(0x1234abcdULL);
  std::vector<unsigned char> buf(4096 + 16);
  for (auto& b : buf) b = static_cast<unsigned char>(rng.below(256));

  const std::size_t sizes[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 1024, 4093, 4096};
  for (std::size_t align = 0; align < 9; ++align) {
    for (std::size_t n : sizes) {
      const unsigned char* p = buf.data() + align;
      EXPECT_EQ(crc32c(p, n), sw_oneshot(p, n)) << "align=" << align << " n=" << n;
    }
  }
}

TEST(Crc32c, DispatchedMatchesSoftwareAcrossInterleaveThreshold) {
  // The hardware path switches to three interleaved streams with lane
  // recombination once buffers reach 3 lanes; cover sizes straddling that
  // threshold, non-multiples that exercise the serial tail after interleaved
  // rounds, and a full wire-payload-sized buffer.
  Rng rng(0xc0ffeeULL);
  std::vector<unsigned char> buf(256 * 1024 + 9);
  for (auto& b : buf) b = static_cast<unsigned char>(rng.below(256));

  const std::size_t sizes[] = {12287, 12288, 12289, 12295, 16384, 24576, 24577,
                               36864, 40000,  65536, 131072, 262144};
  for (std::size_t align = 0; align < 9; align += 4) {
    for (std::size_t n : sizes) {
      const unsigned char* p = buf.data() + align;
      EXPECT_EQ(crc32c(p, n), sw_oneshot(p, n)) << "align=" << align << " n=" << n;
    }
  }

  // Streaming across the threshold must agree with one-shot too.
  const std::uint32_t whole = crc32c(buf.data(), 262144);
  for (std::size_t split : {std::size_t{1}, std::size_t{12288}, std::size_t{100000}}) {
    std::uint32_t part = crc32c(buf.data(), split);
    part = crc32c_extend(part, buf.data() + split, 262144 - split);
    EXPECT_EQ(part, whole) << "split=" << split;
  }
}

TEST(Crc32c, StreamingExtendEqualsOneShot) {
  Rng rng(0xfeedf00dULL);
  std::vector<unsigned char> buf(2048);
  for (auto& b : buf) b = static_cast<unsigned char>(rng.below(256));

  const std::uint32_t whole = crc32c(buf.data(), buf.size());
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
                            std::size_t{100}, std::size_t{1024}, std::size_t{2047},
                            std::size_t{2048}}) {
    std::uint32_t part = crc32c(buf.data(), split);
    part = crc32c_extend(part, buf.data() + split, buf.size() - split);
    EXPECT_EQ(part, whole) << "split=" << split;
  }

  // Many small chunks with random boundaries.
  std::uint32_t acc = 0;
  std::size_t pos = 0;
  while (pos < buf.size()) {
    std::size_t step = std::min<std::size_t>(1 + rng.below(97), buf.size() - pos);
    acc = crc32c_extend(acc, buf.data() + pos, step);
    pos += step;
  }
  EXPECT_EQ(acc, whole);
}

TEST(Crc32c, SpanOverloadMatchesPointerOverload) {
  const char* msg = "io-forwarding integrity layer";
  const std::size_t n = std::strlen(msg);
  std::span<const std::byte> sp(reinterpret_cast<const std::byte*>(msg), n);
  EXPECT_EQ(crc32c(sp), crc32c(msg, n));
  EXPECT_EQ(crc32c_extend(0, sp), crc32c(msg, n));
}

TEST(Crc32c, DetectsSingleBitFlips) {
  Rng rng(0x5eedULL);
  std::vector<unsigned char> buf(512);
  for (auto& b : buf) b = static_cast<unsigned char>(rng.below(256));
  const std::uint32_t good = crc32c(buf.data(), buf.size());
  for (int trial = 0; trial < 64; ++trial) {
    const std::size_t bit = rng.below(buf.size() * 8);
    buf[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    EXPECT_NE(crc32c(buf.data(), buf.size()), good) << "flip at bit " << bit;
    buf[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
  }
  EXPECT_EQ(crc32c(buf.data(), buf.size()), good);
}

TEST(Crc32c, ImplNameIsConsistentWithAvailability) {
  const std::string impl = crc32c_impl();
  if (crc32c_hw_available()) {
    EXPECT_TRUE(impl == "sse4.2" || impl == "armv8-crc") << impl;
  } else {
    EXPECT_EQ(impl, "software");
  }
}

}  // namespace
}  // namespace iofwd
