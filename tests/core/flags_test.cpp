#include "core/flags.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace iofwd::flags {
namespace {

// argv helper: the parser never mutates its arguments.
std::vector<char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<char*> v;
  v.push_back(const_cast<char*>("prog"));
  for (const char* a : args) v.push_back(const_cast<char*>(a));
  return v;
}

TEST(Flags, KeyValueAndGnuStyleAreEquivalent) {
  auto av = argv_of({"workers=4", "--bml-mib=256"});
  Parser p(static_cast<int>(av.size()), av.data());
  EXPECT_EQ(p.get_int("workers", 0), 4);
  EXPECT_EQ(p.get_u64("bml_mib", 0), 256u);   // '-' normalizes to '_'
  EXPECT_EQ(p.get_u64("bml-mib", 0), 256u);   // query side normalizes too
}

TEST(Flags, BareDashedTokenIsABooleanFlag) {
  auto av = argv_of({"--quick"});
  Parser p(static_cast<int>(av.size()), av.data());
  EXPECT_TRUE(p.get_flag("quick"));
  EXPECT_FALSE(p.get_flag("verbose"));
}

TEST(Flags, FalseyValuesDisableAFlag) {
  auto av = argv_of({"rle=0", "verbose=false"});
  Parser p(static_cast<int>(av.size()), av.data());
  EXPECT_FALSE(p.get_flag("rle"));
  EXPECT_FALSE(p.get_flag("verbose"));
  EXPECT_TRUE(p.has("rle"));
}

TEST(Flags, PositionalsKeepOrder) {
  auto av = argv_of({"/tmp/a.sock", "workers=2", "second"});
  Parser p(static_cast<int>(av.size()), av.data());
  ASSERT_EQ(p.positionals().size(), 2u);
  EXPECT_EQ(p.positional(0), "/tmp/a.sock");
  EXPECT_EQ(p.positional(1), "second");
  EXPECT_EQ(p.positional(5, "dflt"), "dflt");
}

TEST(Flags, DefaultsWhenAbsent) {
  auto av = argv_of({});
  Parser p(static_cast<int>(av.size()), av.data());
  EXPECT_EQ(p.get("root", "/tmp/x"), "/tmp/x");
  EXPECT_EQ(p.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(p.get_double("f", 1.5), 1.5);
  EXPECT_FALSE(p.has("root"));
}

TEST(Flags, EnvironmentFallback) {
  ::setenv("IOFWD_TEST_ONLY_KNOB", "123", 1);
  auto av = argv_of({"test_only_knob=456"});
  Parser cmdline(static_cast<int>(av.size()), av.data());
  EXPECT_EQ(cmdline.get_int("test_only_knob", 0), 456);  // cmdline wins

  auto av2 = argv_of({});
  Parser env_only(static_cast<int>(av2.size()), av2.data());
  EXPECT_EQ(env_only.get_int("test_only_knob", 0), 123);
  EXPECT_EQ(env_only.get_int("test-only-knob", 0), 123);  // normalized
  ::unsetenv("IOFWD_TEST_ONLY_KNOB");
}

TEST(Flags, UnknownReportsOnlyUnqueriedKeys) {
  auto av = argv_of({"workers=4", "tpyo=1"});
  Parser p(static_cast<int>(av.size()), av.data());
  (void)p.get_int("workers", 0);
  const auto unknown = p.unknown();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "tpyo");
}

TEST(Flags, CheckStrictPassesWhenEveryKnobWasQueried) {
  auto av = argv_of({"shards=4", "--bml-mib=256"});
  Parser p(static_cast<int>(av.size()), av.data());
  (void)p.get_int("shards", 1);
  (void)p.get_u64("bml_mib", 0);
  EXPECT_TRUE(p.check_strict("prog"));
}

TEST(Flags, CheckStrictRejectsMisspelledKnob) {
  // The motivating bug: "shardz=4" silently running single-sharded. It must
  // fail loudly instead.
  auto av = argv_of({"shardz=4"});
  Parser p(static_cast<int>(av.size()), av.data());
  EXPECT_EQ(p.get_int("shards", 1), 1) << "the typo must not reach the knob";
  EXPECT_FALSE(p.check_strict("prog"));
}

TEST(Flags, CheckStrictRejectsEnvironmentTypo) {
  ::setenv("IOFWD_SHARDZ", "4", 1);
  auto av = argv_of({});
  Parser p(static_cast<int>(av.size()), av.data());
  (void)p.get_int("shards", 1);
  const auto bad = p.unknown_env();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], "IOFWD_SHARDZ");
  EXPECT_FALSE(p.check_strict("prog"));
  ::unsetenv("IOFWD_SHARDZ");
}

TEST(Flags, CheckStrictAllowsMatchingEnvOverride) {
  // A correctly spelled env override is a queried knob, not a typo.
  ::setenv("IOFWD_SHARDS", "4", 1);
  auto av = argv_of({});
  Parser p(static_cast<int>(av.size()), av.data());
  EXPECT_EQ(p.get_int("shards", 1), 4);
  EXPECT_TRUE(p.unknown_env().empty());
  EXPECT_TRUE(p.check_strict("prog"));
  ::unsetenv("IOFWD_SHARDS");
}

TEST(Flags, EnvAllowlistCoversHarnessVariables) {
  // IOFWD_TEST_SEED is read by the test harness outside any Parser; the
  // typo scan must not flag it.
  ::setenv("IOFWD_TEST_SEED", "0x123", 1);
  auto av = argv_of({});
  Parser p(static_cast<int>(av.size()), av.data());
  (void)p.get_int("shards", 1);
  EXPECT_TRUE(p.unknown_env().empty());
  EXPECT_TRUE(p.check_strict("prog"));
  ::unsetenv("IOFWD_TEST_SEED");
}

}  // namespace
}  // namespace iofwd::flags
