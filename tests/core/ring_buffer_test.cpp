#include "core/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <string>

namespace iofwd {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
  EXPECT_EQ(rb.pop(), std::nullopt);
}

TEST(RingBuffer, PushPopFifo) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_TRUE(rb.push(3));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.push(4));
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_TRUE(rb.push(4));
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapAroundManyTimes) {
  RingBuffer<int> rb(5);
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 100; ++round) {
    while (rb.push(next_in)) ++next_in;
    while (auto v = rb.pop()) {
      EXPECT_EQ(*v, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(RingBuffer, FrontPeeksOldest) {
  RingBuffer<std::string> rb(2);
  rb.push("a");
  rb.push("b");
  EXPECT_EQ(rb.front(), "a");
  rb.pop();
  EXPECT_EQ(rb.front(), "b");
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_TRUE(rb.push(9));
  EXPECT_EQ(rb.pop(), 9);
}

TEST(RingBuffer, MoveOnlyElements) {
  RingBuffer<std::unique_ptr<int>> rb(2);
  rb.push(std::make_unique<int>(5));
  auto v = rb.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

class RingBufferCapacity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingBufferCapacity, FillDrainProperty) {
  const std::size_t cap = GetParam();
  RingBuffer<std::size_t> rb(cap);
  for (std::size_t i = 0; i < cap; ++i) EXPECT_TRUE(rb.push(i));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.push(999));
  for (std::size_t i = 0; i < cap; ++i) {
    auto v = rb.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(rb.empty());
}

INSTANTIATE_TEST_SUITE_P(Sweep, RingBufferCapacity, ::testing::Values(1u, 2u, 3u, 7u, 64u, 1024u));

}  // namespace
}  // namespace iofwd
