#include "core/stats.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace iofwd {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, Basic) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 100;
    (i < 400 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeEmptyWithEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
}

TEST(RunningStats, MergeVarianceMatchesSinglePassReference) {
  // Two-pass reference: sum of squared deviations / (n - 1).
  const double xs[] = {1.0, 2.5, 2.5, 7.0, 11.0, 13.5, 20.0};
  RunningStats a, b;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= 7.0;
  double ssd = 0.0;
  for (double x : xs) ssd += (x - mean) * (x - mean);
  for (int i = 0; i < 3; ++i) a.add(xs[i]);
  for (int i = 3; i < 7; ++i) b.add(xs[i]);
  a.merge(b);
  EXPECT_NEAR(a.mean(), mean, 1e-12);
  EXPECT_NEAR(a.variance(), ssd / 6.0, 1e-12);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 3.0);
}

TEST(Sample, Percentiles) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
}

TEST(Sample, SingleElement) {
  // rank = p/100 * (n-1) = 0 for every p: the lone element is every
  // percentile (linear interpolation, not nearest-rank).
  Sample s;
  s.add(42.0);
  EXPECT_EQ(s.percentile(0), 42.0);
  EXPECT_EQ(s.median(), 42.0);
  EXPECT_EQ(s.percentile(99), 42.0);
  EXPECT_EQ(s.percentile(100), 42.0);
  EXPECT_EQ(s.max(), 42.0);
}

TEST(Sample, TwoElementsInterpolateLinearly) {
  // Nearest-rank would snap to one of the two elements; the implementation
  // interpolates: percentile(p) = lo + p/100 * (hi - lo).
  Sample s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 12.5);
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
  EXPECT_DOUBLE_EQ(s.percentile(75), 17.5);
  EXPECT_DOUBLE_EQ(s.percentile(100), 20.0);
}

TEST(Sample, AddAfterQueryResorts) {
  Sample s;
  s.add(10.0);
  EXPECT_EQ(s.max(), 10.0);
  s.add(20.0);
  s.add(5.0);
  EXPECT_EQ(s.max(), 20.0);
  EXPECT_EQ(s.min(), 5.0);
}

TEST(Sample, EmptyIsZero) {
  Sample s;
  EXPECT_EQ(s.median(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

}  // namespace
}  // namespace iofwd
