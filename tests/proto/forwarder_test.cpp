#include "proto/forwarder.hpp"

#include <gtest/gtest.h>

#include "bgp/machine.hpp"
#include "core/units.hpp"
#include "proto/queue_forwarder.hpp"
#include "proto/thread_forwarder.hpp"
#include "sim/sync.hpp"

namespace iofwd::proto {
namespace {

struct Fixture {
  sim::Engine eng;
  bgp::Machine machine;
  RunMetrics metrics;

  explicit Fixture(bgp::MachineConfig cfg = bgp::MachineConfig::intrepid())
      : machine(eng, cfg) {}

  std::unique_ptr<Forwarder> make(Mechanism m, ForwarderConfig fc = {}) {
    return make_forwarder(m, machine, machine.pset(0), metrics, std::move(fc));
  }
};

const Mechanism kAll[] = {Mechanism::ciod, Mechanism::zoid, Mechanism::zoid_sched,
                          Mechanism::zoid_sched_async};

sim::Proc<void> one_write(Forwarder& f, std::uint64_t bytes, Status& out, SinkTarget sink = {}) {
  out = co_await f.write(0, -1, bytes, sink);
}

class ForwarderMechanism : public ::testing::TestWithParam<Mechanism> {};

TEST_P(ForwarderMechanism, SingleWriteDeliversAllBytes) {
  Fixture fx;
  auto f = fx.make(GetParam());
  Status st(Errc::internal, "not run");
  SinkTarget da;
  da.kind = SinkTarget::Kind::da_memory;
  fx.eng.spawn(one_write(*f, 1_MiB, st, da));
  fx.eng.run();
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(fx.metrics.bytes_delivered, 1_MiB);
  EXPECT_GE(fx.metrics.ops_completed, 1u);
  EXPECT_GT(fx.metrics.last_delivery, 0);
}

TEST_P(ForwarderMechanism, WriteToUnknownFdFails) {
  Fixture fx;
  auto f = fx.make(GetParam());
  Status st;
  fx.eng.spawn([](Forwarder& fw, Status& out) -> sim::Proc<void> {
    out = co_await fw.write(0, /*fd=*/42, 4096, SinkTarget{});
  }(*f, st));
  fx.eng.run();
  EXPECT_EQ(st.code(), Errc::bad_descriptor);
}

TEST_P(ForwarderMechanism, OpenWriteCloseLifecycle) {
  Fixture fx;
  auto f = fx.make(GetParam());
  Status o, w, c;
  fx.eng.spawn([](Forwarder& fw, Status& so, Status& sw, Status& sc) -> sim::Proc<void> {
    so = co_await fw.open(0, 7);
    sw = co_await fw.write(0, 7, 64_KiB, SinkTarget{});
    sc = co_await fw.close(0, 7);
  }(*f, o, w, c));
  fx.eng.run();
  EXPECT_TRUE(o.is_ok());
  EXPECT_TRUE(w.is_ok());
  EXPECT_TRUE(c.is_ok()) << c.to_string();
  EXPECT_FALSE(f->descriptors().is_open(7));
}

TEST_P(ForwarderMechanism, DoubleOpenRejected) {
  Fixture fx;
  auto f = fx.make(GetParam());
  Status a, b;
  fx.eng.spawn([](Forwarder& fw, Status& sa, Status& sb) -> sim::Proc<void> {
    sa = co_await fw.open(0, 1);
    sb = co_await fw.open(0, 1);
  }(*f, a, b));
  fx.eng.run();
  EXPECT_TRUE(a.is_ok());
  EXPECT_EQ(b.code(), Errc::invalid_argument);
}

TEST_P(ForwarderMechanism, ReadDeliversBytes) {
  Fixture fx;
  auto f = fx.make(GetParam());
  Status st(Errc::internal, "not run");
  fx.eng.spawn([](Forwarder& fw, Status& out) -> sim::Proc<void> {
    SinkTarget src;
    src.kind = SinkTarget::Kind::storage;
    out = co_await fw.read(0, -1, 1_MiB, src);
  }(*f, st));
  fx.eng.run();
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(fx.metrics.bytes_delivered, 1_MiB);
}

TEST_P(ForwarderMechanism, FstatSynchronousAndDeferredErrors) {
  Fixture fx;
  ForwarderConfig fc;
  int fail_once = 1;
  fc.fault_hook = [&](int, std::uint64_t) {
    return fail_once-- > 0 ? Status(Errc::io_error, "injected") : Status::ok();
  };
  auto f = fx.make(GetParam(), fc);
  Status unknown, st_clean, st_after;
  const bool async = GetParam() == Mechanism::zoid_sched_async;
  fx.eng.spawn([](Forwarder& fw, Status& s_unknown, Status& s_clean, Status& s_after,
                  bool is_async) -> sim::Proc<void> {
    s_unknown = co_await fw.fstat(0, 9);  // never opened
    (void)co_await fw.open(0, 5);
    s_clean = co_await fw.fstat(0, 5);
    (void)co_await fw.write(0, 5, 4096, SinkTarget{});  // fails at delivery
    co_await fw.drain();
    // fstat drains and surfaces the deferred failure in async mode; in the
    // sync mechanisms the write itself reported it, so fstat stays clean.
    s_after = co_await fw.fstat(0, 5);
    (void)is_async;
    (void)co_await fw.close(0, 5);
  }(*f, unknown, st_clean, st_after, async));
  fx.eng.run();
  EXPECT_EQ(unknown.code(), Errc::bad_descriptor);
  EXPECT_TRUE(st_clean.is_ok());
  if (async) {
    EXPECT_EQ(st_after.code(), Errc::io_error);
  } else {
    EXPECT_TRUE(st_after.is_ok());
  }
}

TEST_P(ForwarderMechanism, FaultHookPropagatesOnSyncPaths) {
  Fixture fx;
  ForwarderConfig fc;
  fc.fault_hook = [](int, std::uint64_t) { return Status(Errc::io_error, "injected"); };
  auto f = fx.make(GetParam(), fc);
  Status st;
  const bool async = GetParam() == Mechanism::zoid_sched_async;
  fx.eng.spawn(one_write(*f, 4096, st));
  fx.eng.run();
  if (async) {
    // fd = -1: no descriptor tracking; async write reports staging success.
    EXPECT_TRUE(st.is_ok());
  } else {
    EXPECT_EQ(st.code(), Errc::io_error);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, ForwarderMechanism, ::testing::ValuesIn(kAll),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& ch : s) {
                             if (ch == '+') ch = '_';
                           }
                           return s;
                         });

// ---------------------------------------------------------------------------
// Async staging specifics
// ---------------------------------------------------------------------------

TEST(AsyncStaging, DeferredErrorSurfacesOnNextOp) {
  Fixture fx;
  ForwarderConfig fc;
  int fails_left = 4;  // 1 MiB = 4 chunk deliveries; fail them all
  fc.fault_hook = [&](int, std::uint64_t) {
    if (fails_left > 0) {
      --fails_left;
      return Status(Errc::io_error, "injected");
    }
    return Status::ok();
  };
  auto f = fx.make(Mechanism::zoid_sched_async, fc);
  Status w1, w2, w3;
  fx.eng.spawn([](Forwarder& fw, Status& a, Status& b, Status& c) -> sim::Proc<void> {
    (void)co_await fw.open(0, 5);
    a = co_await fw.write(0, 5, 1_MiB, SinkTarget{});  // will fail in background
    co_await fw.drain();
    b = co_await fw.write(0, 5, 4096, SinkTarget{});   // surfaces deferred error
    co_await fw.drain();
    c = co_await fw.write(0, 5, 4096, SinkTarget{});   // error consumed; clean again...
  }(*f, w1, w2, w3));
  fx.eng.run();
  EXPECT_TRUE(w1.is_ok()) << "async write reports staging success";
  EXPECT_EQ(w2.code(), Errc::io_error) << "deferred error expected";
}

TEST(AsyncStaging, CloseReportsDeferredError) {
  Fixture fx;
  ForwarderConfig fc;
  fc.fault_hook = [](int, std::uint64_t) { return Status(Errc::io_error, "injected"); };
  auto f = fx.make(Mechanism::zoid_sched_async, fc);
  Status w, c;
  fx.eng.spawn([](Forwarder& fw, Status& sw, Status& sc) -> sim::Proc<void> {
    (void)co_await fw.open(0, 5);
    sw = co_await fw.write(0, 5, 4096, SinkTarget{});
    sc = co_await fw.close(0, 5);  // close drains, then reports the failure
  }(*f, w, c));
  fx.eng.run();
  EXPECT_TRUE(w.is_ok());
  EXPECT_EQ(c.code(), Errc::io_error);
}

TEST(AsyncStaging, ReturnsBeforeDelivery) {
  // The application is unblocked after staging; delivery happens later.
  Fixture fx;
  auto f = fx.make(Mechanism::zoid_sched_async);
  sim::SimTime returned_at = -1;
  fx.eng.spawn([](Forwarder& fw, sim::Engine& eng, sim::SimTime& t) -> sim::Proc<void> {
    SinkTarget da;
    da.kind = SinkTarget::Kind::da_memory;
    (void)co_await fw.write(0, -1, 1_MiB, da);
    t = eng.now();
    co_await fw.drain();
  }(*f, fx.eng, returned_at));
  fx.eng.run();
  ASSERT_GT(returned_at, 0);
  EXPECT_GT(fx.metrics.last_delivery, returned_at)
      << "delivery must finish after the app was unblocked";
}

TEST(AsyncStaging, BmlExhaustionBlocksStaging) {
  Fixture fx;
  ForwarderConfig fc;
  fc.bml_bytes = 512 * 1024;  // two 256 KiB chunks only
  auto f = fx.make(Mechanism::zoid_sched_async, fc);
  Status st;
  fx.eng.spawn([](Forwarder& fw, Status& out) -> sim::Proc<void> {
    SinkTarget da;
    da.kind = SinkTarget::Kind::da_memory;
    for (int i = 0; i < 8; ++i) {
      out = co_await fw.write(0, -1, 1_MiB, da);
    }
    co_await fw.drain();
  }(*f, st));
  fx.eng.run();
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(fx.metrics.bytes_delivered, 8_MiB);
  auto* qf = dynamic_cast<QueueForwarder*>(f.get());
  ASSERT_NE(qf, nullptr);
  EXPECT_GT(qf->bml().blocked_acquires(), 0u) << "staging must have blocked on the pool";
  EXPECT_EQ(qf->bml().in_use(), 0u);
}

TEST(SyncMechanisms, IonMemoryBlocksLargeTransfers) {
  // "For large transfers, both CIOD and ZOID block the I/O operation till
  // sufficient memory is present on the I/O Node" (Sec. IV).
  auto cfg = bgp::MachineConfig::intrepid();
  cfg.ion_memory_bytes = 1_MiB;  // tiny ION memory
  Fixture fx(cfg);
  auto f = fx.make(Mechanism::zoid);
  std::vector<Status> st(4);
  for (int i = 0; i < 4; ++i) {
    fx.eng.spawn([](Forwarder& fw, Status& out, int cn) -> sim::Proc<void> {
      out = co_await fw.write(cn, -1, 1_MiB, SinkTarget{});
    }(*f, st[i], i));
  }
  fx.eng.run();
  for (const auto& s : st) EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(fx.metrics.bytes_delivered, 4_MiB);
  EXPECT_GT(f->stats().memory_blocked, 0u);
}

// ---------------------------------------------------------------------------
// Work-queue mechanics
// ---------------------------------------------------------------------------

TEST(QueueForwarder, WorkersBatchTasks) {
  Fixture fx;
  ForwarderConfig fc;
  fc.workers = 2;
  fc.multiplex_depth = 8;
  auto f = fx.make(Mechanism::zoid_sched_async, fc);
  std::vector<Status> st(16);
  for (int i = 0; i < 16; ++i) {
    fx.eng.spawn([](Forwarder& fw, Status& out, int cn) -> sim::Proc<void> {
      SinkTarget da;
      da.kind = SinkTarget::Kind::da_memory;
      out = co_await fw.write(cn, -1, 1_MiB, da);
      co_await fw.drain();
    }(*f, st[i], i));
  }
  fx.eng.run();
  const auto& s = f->stats();
  EXPECT_EQ(s.worker_tasks, 64u);  // 16 ops x 4 chunks
  EXPECT_LT(s.worker_batches, s.worker_tasks) << "multiplexing must batch";
  EXPECT_GT(s.avg_batch(), 1.0);
}

TEST(QueueForwarder, ShutdownStopsWorkers) {
  Fixture fx;
  auto f = fx.make(Mechanism::zoid_sched);
  Status st;
  fx.eng.spawn(one_write(*f, 4096, st));
  fx.eng.run();
  f->shutdown();
  fx.eng.run();
  EXPECT_TRUE(st.is_ok());
  // Idempotent.
  EXPECT_NO_THROW(f->shutdown());
}

TEST(QueueForwarder, DrainWithNothingOutstandingReturnsImmediately) {
  Fixture fx;
  auto f = fx.make(Mechanism::zoid_sched_async);
  bool drained = false;
  fx.eng.spawn([](Forwarder& fw, bool& d) -> sim::Proc<void> {
    co_await fw.drain();
    d = true;
  }(*f, drained));
  fx.eng.run();
  EXPECT_TRUE(drained);
}

class WorkerCount : public ::testing::TestWithParam<int> {};

TEST_P(WorkerCount, AllWorkDeliveredRegardlessOfPoolSize) {
  Fixture fx;
  ForwarderConfig fc;
  fc.workers = GetParam();
  auto f = fx.make(Mechanism::zoid_sched_async, fc);
  std::vector<Status> st(8);
  for (int i = 0; i < 8; ++i) {
    fx.eng.spawn([](Forwarder& fw, Status& out, int cn) -> sim::Proc<void> {
      SinkTarget da;
      da.kind = SinkTarget::Kind::da_memory;
      out = co_await fw.write(cn, -1, 1_MiB, da);
      co_await fw.drain();
    }(*f, st[i], i));
  }
  fx.eng.run();
  EXPECT_EQ(fx.metrics.bytes_delivered, 8_MiB);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WorkerCount, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace iofwd::proto
