#include "proto/descriptor_db.hpp"

#include <gtest/gtest.h>

namespace iofwd::proto {
namespace {

TEST(DescriptorDb, OpenIsIdempotentlyRejected) {
  DescriptorDb db;
  EXPECT_TRUE(db.open_descriptor(3));
  EXPECT_FALSE(db.open_descriptor(3));
  EXPECT_TRUE(db.is_open(3));
  EXPECT_FALSE(db.is_open(4));
  EXPECT_EQ(db.open_count(), 1u);
}

TEST(DescriptorDb, BeginOpUnknownDescriptor) {
  DescriptorDb db;
  EXPECT_EQ(db.begin_op(9), std::nullopt);
}

TEST(DescriptorDb, SequenceNumbersAreDistinctAndMonotone) {
  // "We distinguish the various I/O operations performed on a particular
  // descriptor via a counter" (Sec. IV).
  DescriptorDb db;
  db.open_descriptor(1);
  auto a = db.begin_op(1);
  auto b = db.begin_op(1);
  auto c = db.begin_op(1);
  ASSERT_TRUE(a && b && c);
  EXPECT_LT(*a, *b);
  EXPECT_LT(*b, *c);
  EXPECT_EQ(db.in_flight(1), 3u);
}

TEST(DescriptorDb, CountersIndependentPerDescriptor) {
  DescriptorDb db;
  db.open_descriptor(1);
  db.open_descriptor(2);
  EXPECT_EQ(db.begin_op(1), 0u);
  EXPECT_EQ(db.begin_op(2), 0u);
  EXPECT_EQ(db.begin_op(1), 1u);
}

TEST(DescriptorDb, CompleteTransitionsInFlight) {
  DescriptorDb db;
  db.open_descriptor(1);
  auto seq = db.begin_op(1);
  EXPECT_EQ(db.in_flight(1), 1u);
  EXPECT_TRUE(db.complete_op(1, *seq, Status::ok()));
  EXPECT_EQ(db.in_flight(1), 0u);
  EXPECT_EQ(db.completed_count(1), 1u);
  // Double-complete and unknown seq are rejected.
  EXPECT_FALSE(db.complete_op(1, *seq, Status::ok()));
  EXPECT_FALSE(db.complete_op(1, 999, Status::ok()));
  EXPECT_FALSE(db.complete_op(7, 0, Status::ok()));
}

TEST(DescriptorDb, ErrorsDeferredToNextOperation) {
  // "Errors are passed to the application on subsequent operations on the
  // descriptor" (Sec. IV).
  DescriptorDb db;
  db.open_descriptor(1);
  auto s1 = db.begin_op(1);
  db.complete_op(1, *s1, Status(Errc::io_error, "write failed"));
  // First check surfaces the error once...
  Status e = db.consume_pending_error(1);
  EXPECT_EQ(e.code(), Errc::io_error);
  // ...and consuming it clears it.
  EXPECT_TRUE(db.consume_pending_error(1).is_ok());
}

TEST(DescriptorDb, MultipleErrorsSurfaceInOrder) {
  DescriptorDb db;
  db.open_descriptor(1);
  auto a = db.begin_op(1);
  auto b = db.begin_op(1);
  db.complete_op(1, *a, Status(Errc::io_error, "first"));
  db.complete_op(1, *b, Status(Errc::not_connected, "second"));
  EXPECT_EQ(db.consume_pending_error(1).code(), Errc::io_error);
  EXPECT_EQ(db.consume_pending_error(1).code(), Errc::not_connected);
  EXPECT_TRUE(db.consume_pending_error(1).is_ok());
}

TEST(DescriptorDb, ConsumeOnUnknownDescriptor) {
  DescriptorDb db;
  EXPECT_EQ(db.consume_pending_error(4).code(), Errc::bad_descriptor);
}

TEST(DescriptorDb, CloseReportsPendingError) {
  DescriptorDb db;
  db.open_descriptor(1);
  auto s = db.begin_op(1);
  db.complete_op(1, *s, Status(Errc::io_error, "late failure"));
  EXPECT_EQ(db.close_descriptor(1).code(), Errc::io_error);
  EXPECT_FALSE(db.is_open(1));
  EXPECT_EQ(db.close_descriptor(1).code(), Errc::bad_descriptor);
}

TEST(DescriptorDb, CloseCleanDescriptorIsOk) {
  DescriptorDb db;
  db.open_descriptor(1);
  auto s = db.begin_op(1);
  db.complete_op(1, *s, Status::ok());
  EXPECT_TRUE(db.close_descriptor(1).is_ok());
}

TEST(DescriptorDb, TrimKeepsErrorsAndInFlight) {
  DescriptorDb db;
  db.open_descriptor(1);
  for (int i = 0; i < 10; ++i) {
    auto s = db.begin_op(1);
    if (i == 3) {
      db.complete_op(1, *s, Status(Errc::io_error, "bad"));
    } else if (i < 8) {
      db.complete_op(1, *s, Status::ok());
    }  // ops 8, 9 stay in flight
  }
  db.trim_completed(1, 2);
  EXPECT_EQ(db.in_flight(1), 2u);
  // Deferred error still reported after trimming.
  EXPECT_EQ(db.consume_pending_error(1).code(), Errc::io_error);
}

class DescriptorDbMany : public ::testing::TestWithParam<int> {};

TEST_P(DescriptorDbMany, ManyOpsRoundTrip) {
  const int n = GetParam();
  DescriptorDb db;
  db.open_descriptor(0);
  std::vector<std::uint64_t> seqs;
  for (int i = 0; i < n; ++i) seqs.push_back(*db.begin_op(0));
  EXPECT_EQ(db.in_flight(0), static_cast<std::size_t>(n));
  // Complete out of order (reverse).
  for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
    EXPECT_TRUE(db.complete_op(0, *it, Status::ok()));
  }
  EXPECT_EQ(db.in_flight(0), 0u);
  EXPECT_TRUE(db.close_descriptor(0).is_ok());
}

INSTANTIATE_TEST_SUITE_P(Sweep, DescriptorDbMany, ::testing::Values(1, 2, 16, 256));

}  // namespace
}  // namespace iofwd::proto
